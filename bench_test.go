package twohot

// This file regenerates every table and figure of the paper's evaluation
// (see EXPERIMENTS.md for the index and for paper-vs-measured numbers).
// Each benchmark prints the same rows/series the paper reports; absolute
// hardware numbers differ from the authors' testbeds, but the shapes (who
// wins, by what factor, where crossovers fall) are the reproduction target.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The heavier figure harnesses (7 and 8) run reduced problem sizes by default
// so that the full suite completes in minutes on a laptop.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"twohot/internal/comm"
	"twohot/internal/core"
	"twohot/internal/multipole"
	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/traverse"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// ---------------------------------------------------------------------------
// Table 3: gravitational micro-kernel performance (Gflop/s, 28 flops per
// monopole interaction), scalar vs m x n blocked, float32.
// ---------------------------------------------------------------------------

func microKernelData(m, n int) (*multipole.Source32, *multipole.Sink32) {
	rng := rand.New(rand.NewSource(1))
	src := multipole.NewSource32(m)
	for j := 0; j < m; j++ {
		src.Append(rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()+0.5)
	}
	xs := make([]float32, n)
	ys := make([]float32, n)
	zs := make([]float32, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i], zs[i] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	return src, multipole.NewSink32(xs, ys, zs)
}

func reportGflops(b *testing.B, interactionsPerOp int64) {
	b.ReportMetric(float64(interactionsPerOp*multipole.FlopsPerMonopole)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
	b.ReportMetric(float64(interactionsPerOp)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minter/s")
}

func BenchmarkTable3MicrokernelBlocked(b *testing.B) {
	const m, n = 256, 64
	src, snk := microKernelData(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multipole.BlockedMonopole32(src, snk, 1e-6)
	}
	reportGflops(b, int64(m*n))
}

func BenchmarkTable3MicrokernelScalar(b *testing.B) {
	const m, n = 256, 64
	src, snk := microKernelData(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multipole.ScalarMonopole32(src, snk, 1e-6)
	}
	reportGflops(b, int64(m*n))
}

func BenchmarkTable3MicrokernelAllCores(b *testing.B) {
	const m, n = 256, 64
	workers := runtime.GOMAXPROCS(0)
	srcs := make([]*multipole.Source32, workers)
	snks := make([]*multipole.Sink32, workers)
	for w := range srcs {
		srcs[w], snks[w] = microKernelData(m, n)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src, snk := microKernelData(m, n)
		for pb.Next() {
			multipole.BlockedMonopole32(src, snk, 1e-6)
		}
	})
	reportGflops(b, int64(m*n))
}

// ---------------------------------------------------------------------------
// Section 3.3 ablation: m x n blocking vs per-source scalar updates at
// several block shapes.
// ---------------------------------------------------------------------------

func BenchmarkBlockingAblation(b *testing.B) {
	for _, shape := range []struct{ m, n int }{{16, 16}, {64, 32}, {256, 64}, {1024, 64}} {
		b.Run(fmt.Sprintf("m=%d/n=%d", shape.m, shape.n), func(b *testing.B) {
			src, snk := microKernelData(shape.m, shape.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				multipole.BlockedMonopole32(src, snk, 1e-6)
			}
			reportGflops(b, int64(shape.m*shape.n))
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 6: multipole error vs distance for p = 0..8, with a float32 direct
// sum for comparison, on 512 random particles in a unit cube.
// ---------------------------------------------------------------------------

func BenchmarkFigure6MultipoleError(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const n = 512
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1.0 / n
	}
	center := vec.V3{0.5, 0.5, 0.5}
	orders := []int{0, 2, 4, 6, 8}
	exps := map[int]*multipole.Expansion{}
	for _, p := range orders {
		e := multipole.NewExpansion(p, center)
		e.AddParticles(pos, mass)
		e.FinalizeNorms()
		exps[p] = e
	}
	direct := func(x vec.V3) vec.V3 {
		var a vec.V3
		for i := range pos {
			d := pos[i].Sub(x)
			r := d.Norm()
			a = a.Add(d.Scale(mass[i] / (r * r * r)))
		}
		return a
	}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		if iter > 0 {
			continue // the table only needs to be produced once
		}
		fmt.Println("\nFigure 6: relative acceleration error vs distance (512 particles, unit cube)")
		fmt.Printf("%6s %12s %12s %12s %12s %12s %12s\n", "r", "p=0", "p=2", "p=4", "p=6", "p=8", "float32")
		for _, r := range []float64{0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0} {
			x := center.Add(vec.V3{r, 0, 0})
			ref := direct(x)
			row := fmt.Sprintf("%6.2f", r)
			for _, p := range orders {
				res := exps[p].Evaluate(x)
				row += fmt.Sprintf(" %12.3e", res.Acc.Sub(ref).Norm()/ref.Norm())
			}
			a32, _ := core.Direct32Forces(pos, mass, x)
			row += fmt.Sprintf(" %12.3e", a32.Sub(ref).Norm()/ref.Norm())
			fmt.Println(row)
		}
		// Histogram of errors at r=4 over random directions (the lower panel).
		fmt.Println("Figure 6 (lower): error distribution at r=4 (100 random directions), log10 median")
		for _, p := range orders {
			med := medianErrAtR(exps[p], pos, mass, center, 4.0, rng)
			fmt.Printf("  p=%d: median rel err %.3e\n", p, med)
		}
	}
}

func medianErrAtR(e *multipole.Expansion, pos []vec.V3, mass []float64, center vec.V3, r float64, rng *rand.Rand) float64 {
	var errs []float64
	for k := 0; k < 100; k++ {
		d := vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		d = d.Scale(r / d.Norm())
		x := center.Add(d)
		var ref vec.V3
		for i := range pos {
			dd := pos[i].Sub(x)
			rr := dd.Norm()
			ref = ref.Add(dd.Scale(mass[i] / (rr * rr * rr)))
		}
		res := e.Evaluate(x)
		errs = append(errs, res.Acc.Sub(ref).Norm()/ref.Norm())
	}
	// median
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j] < errs[j-1]; j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
	return errs[len(errs)/2]
}

// ---------------------------------------------------------------------------
// Section 2.2.1 / Conclusion ablation: background subtraction reduces the
// interaction count at fixed tolerance on an early-time configuration.
// ---------------------------------------------------------------------------

func BenchmarkAblationBackgroundSubtraction(b *testing.B) {
	nSide := 24
	if testing.Short() {
		nSide = 16
	}
	rng := rand.New(rand.NewSource(7))
	var pos []vec.V3
	var mass []float64
	h := 1.0 / float64(nSide)
	for i := 0; i < nSide; i++ {
		for j := 0; j < nSide; j++ {
			for k := 0; k < nSide; k++ {
				pos = append(pos, vec.V3{
					vec.PeriodicWrap((float64(i)+0.5)*h+0.02*h*rng.NormFloat64(), 1),
					vec.PeriodicWrap((float64(j)+0.5)*h+0.02*h*rng.NormFloat64(), 1),
					vec.PeriodicWrap((float64(k)+0.5)*h+0.02*h*rng.NormFloat64(), 1),
				})
				mass = append(mass, 1)
			}
		}
	}
	base := core.TreeConfig{Order: 4, ErrTol: 1e-5, Periodic: true, BoxSize: 1, WS: 1}
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		if iter > 0 {
			continue
		}
		with := base
		with.BackgroundSubtraction = true
		without := base
		rBG, _ := core.NewTreeSolver(with).Forces(pos, mass)
		rNo, _ := core.NewTreeSolver(without).Forces(pos, mass)
		tBG := rBG.Counters.P2P + rBG.Counters.CellInteractions()
		tNo := rNo.Counters.P2P + rNo.Counters.CellInteractions()
		fmt.Printf("\nBackground-subtraction ablation (N=%d^3 early-time box, errtol=1e-5):\n", nSide)
		fmt.Printf("  with subtraction:    %d interactions (%d flops/particle)\n", tBG, rBG.Counters.Flops()/int64(len(pos)))
		fmt.Printf("  without subtraction: %d interactions (%d flops/particle)\n", tNo, rNo.Counters.Flops()/int64(len(pos)))
		fmt.Printf("  reduction factor:    %.2f (paper reports ~3x at production tolerance, 5x at early times)\n",
			float64(tNo)/float64(tBG))
		b.ReportMetric(float64(tNo)/float64(tBG), "reduction_factor")
	}
}

// ---------------------------------------------------------------------------
// Table 1 & Figure 5: whole-step performance and strong scaling over ranks.
// ---------------------------------------------------------------------------

func clusteredParticleSet(n int, seed int64) *particle.Set {
	return particle.Clustered(n, seed)
}

func BenchmarkTable1MachinePerformance(b *testing.B) {
	// The historical table cannot be reproduced on one host; instead report
	// the effective Gflop/s of a full force computation here, the number a
	// new row of Table 1 would record for this machine.
	n := 30000
	if testing.Short() {
		n = 10000
	}
	set := clusteredParticleSet(n, 3)
	cfg := core.TreeConfig{Order: 4, ErrTol: 1e-5, Kernel: softening.Plummer, Eps: 0.002,
		Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1}
	solver := core.NewTreeSolver(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Forces(set.Pos, set.Mass)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			gf := core.EffectiveGflops(res.Counters, res.Timings.TreeTraversal)
			fmt.Printf("\nTable 1 (this machine): N=%d, %d cores, force step %.3fs, %.2f effective Gflop/s\n",
				n, runtime.GOMAXPROCS(0), res.Timings.Total.Seconds(), gf)
			b.ReportMetric(gf, "Gflop/s")
			b.ReportMetric(float64(n)/res.Timings.Total.Seconds(), "particles/s")
		}
	}
}

func BenchmarkFigure5StrongScaling(b *testing.B) {
	n := 20000
	if testing.Short() {
		n = 8000
	}
	maxRanks := runtime.GOMAXPROCS(0)
	for ranks := 1; ranks <= maxRanks; ranks *= 2 {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var baseline time.Duration
			for i := 0; i < b.N; i++ {
				set := clusteredParticleSet(n, 3)
				cfg := core.DistributedConfig{
					Tree: core.TreeConfig{Order: 4, ErrTol: 1e-4, Kernel: softening.Plummer, Eps: 0.002,
						Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1},
					NRanks:         ranks,
					BranchExchange: "ring",
				}
				res, err := core.DistributedStep(set, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					gf := core.EffectiveGflops(res.Counters, res.Timings.Total)
					if ranks == 1 {
						baseline = res.Timings.Total
					}
					_ = baseline
					fmt.Printf("Figure 5: ranks=%d  N=%d  step=%.3fs  %.2f Gflop/s  imbalance=%.2f\n",
						ranks, n, res.Timings.Total.Seconds(), gf, res.Imbalance)
					b.ReportMetric(gf, "Gflop/s")
					b.ReportMetric(res.Imbalance, "imbalance")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 2: breakdown of the computation stages of one distributed timestep,
// with interaction counts by order and flops/particle.
// ---------------------------------------------------------------------------

func BenchmarkTable2StageBreakdown(b *testing.B) {
	n := 30000
	if testing.Short() {
		n = 10000
	}
	for i := 0; i < b.N; i++ {
		set := clusteredParticleSet(n, 5)
		cfg := core.DistributedConfig{
			Tree: core.TreeConfig{Order: 4, ErrTol: 1e-5, Kernel: softening.Plummer, Eps: 0.002,
				Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1},
			NRanks:         runtime.GOMAXPROCS(0),
			BranchExchange: "ring",
			UseWorkWeights: true,
		}
		res, err := core.DistributedStep(set, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			c := res.Counters
			fmt.Printf("\nTable 2: stage breakdown of one timestep (N=%d, %d ranks)\n", n, res.NRanks)
			fmt.Printf("  %-38s %10.1f ms\n", "Domain Decomposition", res.Timings.DomainDecomposition.Seconds()*1e3)
			fmt.Printf("  %-38s %10.1f ms\n", "Tree Build", res.Timings.TreeBuild.Seconds()*1e3)
			fmt.Printf("  %-38s %10.1f ms\n", "Tree Traversal", res.Timings.TreeTraversal.Seconds()*1e3)
			fmt.Printf("  %-38s %10.1f ms\n", "Data Communication During Traversal", res.Timings.Communication.Seconds()*1e3)
			fmt.Printf("  %-38s %10.1f ms\n", "Force Evaluation", res.Timings.ForceEvaluation.Seconds()*1e3)
			fmt.Printf("  %-38s %10.1f ms\n", "Load Imbalance", res.Timings.LoadImbalance.Seconds()*1e3)
			fmt.Printf("  %-38s %10.1f ms\n", "Total", res.Timings.Total.Seconds()*1e3)
			var hex, quad, mono int64
			for q, cnt := range c.CellByOrder {
				switch {
				case q >= 3:
					hex += cnt
				case q >= 1:
					quad += cnt
				default:
					mono += cnt
				}
			}
			fmt.Printf("  interactions: %.3g hexadecapole, %.3g quadrupole, %.3g monopole (+%.3g p-p)\n",
				float64(hex), float64(quad), float64(mono), float64(c.P2P))
			fmt.Printf("  flops/particle: %d\n", c.Flops()/int64(n))
			b.ReportMetric(float64(c.Flops()/int64(n)), "flops/particle")
		}
	}
}

// ---------------------------------------------------------------------------
// Section 3.1: Alltoall implementation comparison.
// ---------------------------------------------------------------------------

func BenchmarkAlltoallVariants(b *testing.B) {
	payload := make([]byte, 16*1024)
	for _, tc := range []struct {
		name string
		algo comm.AlltoallAlgorithm
	}{
		{"direct", comm.AlltoallDirect},
		{"pairwise", comm.AlltoallPairwise},
		{"hierarchical", comm.AlltoallHierarchical},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ranks := 8
			w := comm.NewWorld(ranks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := w.Run(func(r *comm.Rank) error {
					send := make([][]byte, ranks)
					for d := range send {
						send[d] = payload
					}
					_, err := r.AlltoallvBytes(send, tc.algo)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(ranks * ranks * len(payload)))
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 7: power-spectrum ratios between runs with different code settings,
// including the TreePM (GADGET-2 style) baseline.
// ---------------------------------------------------------------------------

func BenchmarkFigure7PowerSpectra(b *testing.B) {
	// Sized so the full sweep (nine complete simulations) finishes in about a
	// minute; increase for production-quality curves.
	nGrid := 16
	steps := 8
	runOne := func(mutate func(*Config)) []float64 {
		cfg := DefaultConfig()
		cfg.NGrid = nGrid
		cfg.BoxSize = 150
		cfg.ZInit = 19
		cfg.ZFinal = 1
		cfg.NSteps = steps
		cfg.ErrTol = 1e-5
		cfg.WS = 1
		cfg.LatticeOrder = 0
		cfg.PMGrid = 2 * nGrid
		if mutate != nil {
			mutate(&cfg)
		}
		sim, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
		ps := sim.PowerSpectrum(2 * nGrid)
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = p.P
		}
		return out
	}
	for iter := 0; iter < b.N; iter++ {
		if iter > 0 {
			continue
		}
		ref := runOne(func(c *Config) { c.ErrTol = 1e-6; c.NSteps *= 2 }) // reference: tight tolerance, dt/2
		variants := []struct {
			name string
			mut  func(*Config)
		}{
			{"errtol=1e-5 (standard)", nil},
			{"errtol=1e-4", func(c *Config) { c.ErrTol = 1e-4 }},
			{"no 2LPTIC", func(c *Config) { c.Use2LPT = false }},
			{"no DEC", func(c *Config) { c.UseDEC = false }},
			{"1.4x smoothing", func(c *Config) { c.SofteningFrac = 1.4 / 20 }},
			{"spline kernel", func(c *Config) { c.Kernel = "spline" }},
			{"TreePM (GADGET2-like)", func(c *Config) { c.Solver = SolverTreePM }},
			{"TreePM PMGRID=2x", func(c *Config) { c.Solver = SolverTreePM; c.PMGrid = 4 * nGrid }},
		}
		sim, _ := New(DefaultConfig())
		_ = sim
		fmt.Printf("\nFigure 7: P(k)/P_ref(k) at z=1 (N=%d^3, L=150 Mpc/h)\n", nGrid)
		// k values from the reference run binning
		cfg := DefaultConfig()
		cfg.NGrid = nGrid
		cfg.BoxSize = 150
		_ = cfg
		for _, v := range variants {
			p := runOne(v.mut)
			row := fmt.Sprintf("  %-24s", v.name)
			for i := 0; i < len(ref) && i < 8; i++ {
				if ref[i] > 0 {
					row += fmt.Sprintf(" %7.4f", p[i]/ref[i])
				}
			}
			fmt.Println(row)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 8: mass function over Tinker08 at two box sizes.
// ---------------------------------------------------------------------------

func BenchmarkFigure8MassFunction(b *testing.B) {
	// Small-volume analogue sized for the benchmark suite.
	nGrid := 16
	steps := 10
	for iter := 0; iter < b.N; iter++ {
		if iter > 0 {
			continue
		}
		fmt.Println("\nFigure 8: SO mass function / Tinker08 (small-volume analogue)")
		for _, box := range []float64{64, 128} {
			cfg := DefaultConfig()
			cfg.NGrid = nGrid
			cfg.BoxSize = box
			cfg.ZInit = 24
			cfg.ZFinal = 0
			cfg.NSteps = steps
			cfg.ErrTol = 1e-4
			cfg.WS = 1
			cfg.LatticeOrder = 0
			sim, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.Run(); err != nil {
				b.Fatal(err)
			}
			_, m, ratio := sim.MassFunction(20, 6)
			fmt.Printf("  L=%g Mpc/h: %d halo mass bins\n", box, len(m))
			for i := range m {
				fmt.Printf("    M200b=%.3e Msun/h  N/Tinker08=%.2f\n", m[i]*1e10, ratio[i])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Section 2.4: cost and accuracy of the periodic boundary treatment.
// ---------------------------------------------------------------------------

func BenchmarkPeriodicCost(b *testing.B) {
	set := clusteredParticleSet(8000, 11)
	for _, tc := range []struct {
		name string
		cfg  core.TreeConfig
	}{
		{"open", core.TreeConfig{Order: 4, ErrTol: 1e-5}},
		{"periodic-ws1", core.TreeConfig{Order: 4, ErrTol: 1e-5, Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1}},
		{"periodic-ws2+lattice", core.TreeConfig{Order: 4, ErrTol: 1e-5, Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 2, LatticeOrder: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			solver := core.NewTreeSolver(tc.cfg)
			for i := 0; i < b.N; i++ {
				if _, err := solver.Forces(set.Pos, set.Mass); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Tree construction: the parallel build pipeline (parallel keying, record
// sort, concurrent subtree arenas) against the serial reference.  The
// equivalence suite in internal/tree proves both produce bit-identical
// trees; this benchmark tracks the speedup.
// ---------------------------------------------------------------------------

func BenchmarkTreeBuild(b *testing.B) {
	sizes := []int{65536, 262144}
	if testing.Short() {
		sizes = []int{65536}
	}
	box := vec.CubeBox(vec.V3{}, 1)
	for _, n := range sizes {
		set := clusteredParticleSet(n, 21)
		workerCounts := []int{1}
		if g := runtime.GOMAXPROCS(0); g > 1 {
			workerCounts = append(workerCounts, g)
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("N=%d/workers=%d", n, w), func(b *testing.B) {
				pos := make([]vec.V3, n)
				mass := make([]float64, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Build reorders in place; restore outside the timer so
					// the serial memcpy does not dilute the speedup number.
					b.StopTimer()
					copy(pos, set.Pos)
					copy(mass, set.Mass)
					b.StartTimer()
					if _, err := tree.Build(pos, mass, box, tree.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparticles/s")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Tree traversal: the list-inheriting path (hierarchical interaction-list
// reuse + batched SoA kernels) against the legacy per-group gather it
// replaced.  The equivalence suite in internal/traverse proves the two are
// bit-identical; this benchmark tracks the single-core speedup, the
// replica-walk reduction and allocations/op.  `2hot-bench -traverse` writes
// the same numbers to BENCH_traverse.json.
// ---------------------------------------------------------------------------

func traversalBenchWalker(b *testing.B, n int, periodic bool, ws int, bg bool) *traverse.Walker {
	b.Helper()
	set := clusteredParticleSet(n, 13)
	total := 0.0
	for _, m := range set.Mass {
		total += m
	}
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	copy(pos, set.Pos)
	copy(mass, set.Mass)
	box := vec.CubeBox(vec.V3{}, 1)
	rhoBar := 0.0
	if bg {
		rhoBar = total
	}
	tr, err := tree.Build(pos, mass, box, tree.Options{Order: 4, LeafSize: 16, RhoBar: rhoBar})
	if err != nil {
		b.Fatal(err)
	}
	cfg := traverse.Config{
		MAC: traverse.MACAbsoluteError, AccTol: 1e-5 * total / (0.5 * 0.5),
		Kernel: softening.Plummer, Eps: 0.002,
		Periodic: periodic, BoxSize: 1, WS: ws,
	}
	return traverse.NewWalker(tr, cfg)
}

func BenchmarkTraversal(b *testing.B) {
	n := 20000
	if testing.Short() {
		n = 8000
	}
	for _, tc := range []struct {
		name     string
		periodic bool
		ws       int
		bg       bool
	}{
		{"open", false, 0, false},
		{"periodic-ws1", true, 1, true},
		{"periodic-ws2", true, 2, true},
	} {
		w := traversalBenchWalker(b, n, tc.periodic, tc.ws, tc.bg)
		// The legacy per-group gather is a test-only oracle since PR 4; its
		// timing baseline lives in internal/traverse's
		// BenchmarkLegacyVsInherit, next to the bit-equivalence suite.
		b.Run(tc.name+"/inherit", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.ForcesForAll(1)
			}
			b.ReportMetric(float64(w.LastStats.ReplicaWalks), "replica-walks")
			b.ReportMetric(float64(w.LastStats.InheritedItems), "inherited-items")
		})
	}
}

// BenchmarkTreeTraversal provides the plain per-force-solve cost on a
// clustered snapshot (the number every other benchmark builds on).
func BenchmarkTreeTraversal(b *testing.B) {
	for _, n := range []int{10000, 30000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			set := clusteredParticleSet(n, 13)
			solver := core.NewTreeSolver(core.TreeConfig{Order: 4, ErrTol: 1e-5,
				Kernel: softening.Plummer, Eps: 0.002})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := solver.Forces(set.Pos, set.Mass)
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
			b.ReportMetric(float64(n), "particles")
		})
	}
}

// Guard against accidental unused imports when benchmarks are trimmed.
var _ = traverse.MACBarnesHut
