package twohot

import (
	"fmt"
	"os"
	"strconv"

	"twohot/internal/analysis"
	"twohot/internal/massfunc"
	"twohot/internal/sdf"
)

// AnalysisInfo is the payload delivered to analysis observers: why the output
// fired, the measured catalog, and where it was persisted.
type AnalysisInfo struct {
	// Trigger describes the schedule firing that produced the catalog.
	Trigger analysis.Trigger
	// Catalog is the measurement result.  Observers must treat it as
	// read-only; it is shared between observers and the file writer.
	Catalog *analysis.Catalog
	// Path is the catalog file written for this firing, or "" when file
	// output is disabled (Config.Analysis.NoFiles).
	Path string
}

// AnalysisObserver receives every scheduled in-situ analysis result.  Like
// step observers, implementations run synchronously from the stepping loop in
// registration order: a slow observer slows the run but cannot corrupt it.
type AnalysisObserver interface {
	OnAnalysis(info AnalysisInfo)
}

// AnalysisFunc adapts a free function to the AnalysisObserver interface.
type AnalysisFunc func(info AnalysisInfo)

// OnAnalysis implements AnalysisObserver.
func (f AnalysisFunc) OnAnalysis(info AnalysisInfo) { f(info) }

// AddAnalysisObserver registers an observer for all subsequent scheduled
// analysis outputs.  Observers run in registration order.
func (s *Simulation) AddAnalysisObserver(obs AnalysisObserver) {
	s.analysisObs = append(s.analysisObs, obs)
}

// Analyze measures the configured analyzers over the current state and
// returns the catalog, outside any schedule: no synchronize, no file, no
// observer fan-out.  It is the programmatic probe; scheduled outputs during
// Run go through the full pipeline instead.
func (s *Simulation) Analyze() (*analysis.Catalog, error) {
	return s.analysisCatalog(analysis.Trigger{Kind: analysis.TriggerManual, Step: s.StepCount})
}

// analysisCatalog measures one catalog of the current state with the
// configuration's analyzers and theory curves at the current redshift.
func (s *Simulation) analysisCatalog(trig analysis.Trigger) (*analysis.Catalog, error) {
	if s.P == nil {
		return nil, fmt.Errorf("twohot: no particles loaded")
	}
	z := s.Redshift()
	th := analysis.Theory{
		Pred:     massfunc.NewPredictor(s.Par, s.Spec, z),
		LinearPk: func(k float64) float64 { return s.Spec.PAt(k, z) },
	}
	meta := analysis.Meta{Name: s.Cfg.Name, Step: s.StepCount, A: s.A, Trigger: trig}
	return analysis.Run(s.P, meta, s.Cfg.analysisOptions(), th)
}

// AnalysisPath is where a scheduled output with the given trigger label is
// written: "<name>-analysis-<label>.json" in the output directory.
func (s *Simulation) AnalysisPath(label string) string {
	return s.OutputPath(s.Cfg.Name + "-analysis-" + label + ".json")
}

// runScheduledAnalysis measures, persists and fans out one catalog per due
// trigger.  Triggers fire in the order given (redshift crossings in the order
// they are reached, then the cadence), each against the same state.
func (s *Simulation) runScheduledAnalysis(due []analysis.Trigger) error {
	if len(due) > 0 && !s.Cfg.Analysis.NoFiles && s.Cfg.OutputDir != "" {
		if err := os.MkdirAll(s.Cfg.OutputDir, 0o755); err != nil {
			return err
		}
	}
	for _, trig := range due {
		cat, err := s.analysisCatalog(trig)
		if err != nil {
			return err
		}
		path := ""
		if !s.Cfg.Analysis.NoFiles {
			path = s.AnalysisPath(trig.Label())
			if err := analysis.WriteCatalog(path, cat); err != nil {
				return err
			}
		}
		info := AnalysisInfo{Trigger: trig, Catalog: cat, Path: path}
		for _, o := range s.analysisObs {
			o.OnAnalysis(info)
		}
	}
	return nil
}

// AnalyzeSnapshot measures the configuration's analyzers over a snapshot file
// — the post-hoc counterpart of in-situ analysis, used to analyze cluster
// results and archived states.  The trigger is recorded verbatim in the
// catalog; passing the trigger an in-situ run would have used makes the
// output byte-comparable with the in-situ catalog of the same state (analysis
// canonicalizes particle order by ID, so the snapshot's on-disk order does
// not matter).  The snapshot's completed-step count ("step" in its header)
// overrides the trigger's Step when present and the trigger leaves it zero.
func AnalyzeSnapshot(cfg Config, path string, trig analysis.Trigger) (*analysis.Catalog, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	snap, err := sdf.Read(path)
	if err != nil {
		return nil, err
	}
	if trig.Step == 0 {
		if n, err := strconv.Atoi(snap.Extra["step"]); err == nil && n > 0 {
			trig.Step = n
		}
	}
	s.P = snap.Particles
	s.A = snap.ScaleFac
	s.AMom = snap.MomentumScaleFac
	s.StepCount = trig.Step
	return s.analysisCatalog(trig)
}
