package twohot

import (
	"strings"
	"testing"
)

// TestConfigValidate is the table of accept/reject branches for the stepping
// and deployment combinations, with the distributed block-timestep rows
// spelled out: block_steps now composes with ranks > 1 (activity masks, rungs
// and momentum epochs travel the rank exchange) and with checkpoint_every
// (checkpoints land only at synchronized block boundaries), while the
// combinations that are still meaningless stay rejected.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // "" = must validate; otherwise a substring of the error
	}{
		{"default", func(c *Config) {}, ""},

		// Long-standing gates, kept in the table so the whole accept/reject
		// surface reads in one place.
		{"unknown solver", func(c *Config) { c.Solver = "warp-drive" }, "solver"},
		{"z_init below z_final", func(c *Config) { c.ZInit = 0; c.ZFinal = 5 }, "z_init"},
		{"unknown kernel", func(c *Config) { c.Kernel = "gaussian9000" }, "kernel"},
		{"ranks without tree", func(c *Config) { c.Ranks = 2; c.Solver = SolverPM }, "ranks > 1"},

		// Block stepping alone.
		{"block steps with tree", func(c *Config) { c.BlockSteps = 3 }, ""},
		{"block steps with treepm", func(c *Config) { c.BlockSteps = 3; c.Solver = SolverTreePM }, ""},
		{"block steps with pm", func(c *Config) { c.BlockSteps = 3; c.Solver = SolverPM }, "tree-based solver"},
		{"block steps with direct", func(c *Config) { c.BlockSteps = 3; c.Solver = SolverDirect }, "tree-based solver"},
		{"block steps beyond rung cap", func(c *Config) { c.BlockSteps = 64 }, "block_steps"},
		{"negative block steps", func(c *Config) { c.BlockSteps = -1 }, "block_steps"},
		{"negative displacement frac", func(c *Config) { c.RungDisplacementFrac = -1 }, "rung_displacement_frac"},

		// Block stepping over ranks: valid since the exchange carries the
		// per-particle stepping state and the ranks agree on each block's
		// schedule collectively.
		{"block steps over ranks", func(c *Config) { c.BlockSteps = 3; c.Ranks = 2 }, ""},
		{"block steps over ranks on tcp", func(c *Config) {
			c.BlockSteps = 3
			c.Ranks = 2
			c.Transport = "tcp"
		}, ""},
		// ranks > 1 still runs the distributed tree only, block or not.
		{"block steps over ranks with treepm", func(c *Config) {
			c.BlockSteps = 3
			c.Ranks = 2
			c.Solver = SolverTreePM
		}, "ranks > 1 requires the tree solver"},

		// Checkpointing against block boundaries: valid since due checkpoints
		// synchronize the leapfrog first.
		{"checkpoints with block steps", func(c *Config) { c.BlockSteps = 3; c.CheckpointEvery = 2 }, ""},
		{"checkpoints with block steps over ranks", func(c *Config) {
			c.BlockSteps = 3
			c.CheckpointEvery = 2
			c.Ranks = 2
			c.Transport = "tcp"
		}, ""},
		{"negative checkpoint cadence", func(c *Config) { c.CheckpointEvery = -1 }, "checkpoint_every"},

		// Transport gates, unchanged.
		{"tcp without ranks", func(c *Config) { c.Transport = "tcp" }, `transport "tcp"`},
		{"unknown transport", func(c *Config) { c.Transport = "carrier-pigeon" }, "transport"},

		// Name is interpolated into CheckpointPath/OutputPath/AnalysisPath;
		// a crafted name must not be able to escape OutputDir.
		{"name with slash", func(c *Config) { c.Name = "runs/box" }, "name"},
		{"name with backslash", func(c *Config) { c.Name = `runs\box` }, "name"},
		{"name with dotdot", func(c *Config) { c.Name = "..box" }, "name"},
		{"name escaping output dir", func(c *Config) { c.Name = "../../etc/passwd" }, "name"},
		{"empty name", func(c *Config) { c.Name = "" }, ""},
		{"dotted name", func(c *Config) { c.Name = "box.v2" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate rejected the config: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate accepted the config; want an error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
