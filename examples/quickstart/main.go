// Command quickstart is the smallest complete use of the 2HOT force solver:
// it builds a Plummer-sphere particle distribution, computes gravitational
// accelerations with the hashed oct-tree at two accuracy settings, verifies
// them against direct summation, and integrates a few dynamical times.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"twohot/internal/core"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

// plummerSphere samples positions from a Plummer model with scale radius a.
func plummerSphere(n int, a float64, seed int64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := 0; i < n; i++ {
		// Inverse-transform sample of the Plummer cumulative mass profile.
		x := rng.Float64()
		r := a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
		u := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		s := math.Sqrt(1 - u*u)
		pos[i] = vec.V3{r * s * math.Cos(phi), r * s * math.Sin(phi), r * u}
		mass[i] = 1.0 / float64(n)
	}
	return pos, mass
}

func main() {
	const n = 20000
	pos, mass := plummerSphere(n, 1.0, 42)
	eps := 0.02

	fmt.Printf("2HOT quickstart: %d-particle Plummer sphere\n\n", n)

	// Reference forces on a subsample by direct summation.
	direct := &core.DirectSolver{Kernel: softening.Plummer, Eps: eps}
	sub := 2000
	refRes, err := direct.Forces(pos[:sub], mass[:sub])
	if err != nil {
		panic(err)
	}
	_ = refRes

	for _, errTol := range []float64{1e-3, 1e-5} {
		solver := core.NewTreeSolver(core.TreeConfig{
			Order:  4,
			ErrTol: errTol,
			Kernel: softening.Plummer,
			Eps:    eps,
		})
		res, err := solver.Forces(pos, mass)
		if err != nil {
			panic(err)
		}
		// Verify the subsample against direct summation.
		directAll := &core.DirectSolver{Kernel: softening.Plummer, Eps: eps}
		ref, _ := directAll.Forces(pos, mass)
		stats := core.CompareAccelerations(res.Acc, ref.Acc)
		fmt.Printf("errtol=%.0e: %d cell + %d particle interactions, rms force error %.2e, %.0f ms\n",
			errTol, res.Counters.CellInteractions(), res.Counters.P2P,
			stats.RMS, res.Timings.Total.Seconds()*1e3)
	}

	// Integrate a few steps with a simple leapfrog (non-cosmological): the
	// Plummer sphere is in equilibrium, so the density profile should hold.
	solver := core.NewTreeSolver(core.TreeConfig{Order: 4, ErrTol: 1e-4, Kernel: softening.Plummer, Eps: eps})
	vel := make([]vec.V3, n) // start cold: the sphere will collapse slightly and oscillate
	dt := 0.01
	for step := 0; step < 20; step++ {
		res, err := solver.Forces(pos, mass)
		if err != nil {
			panic(err)
		}
		for i := range pos {
			vel[i] = vel[i].Add(res.Acc[i].Scale(dt))
			pos[i] = pos[i].Add(vel[i].Scale(dt))
		}
	}
	// Report the half-mass radius after the short integration.
	r2 := make([]float64, n)
	for i, p := range pos {
		r2[i] = p.Norm2()
	}
	fmt.Printf("\nafter 20 cold-collapse steps: half-mass radius %.3f (initial Plummer a=1)\n", halfMassRadius(r2))
}

func halfMassRadius(r2 []float64) float64 {
	cp := append([]float64(nil), r2...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return math.Sqrt(cp[len(cp)/2])
}
