// Command quickstart is the smallest complete use of the 2HOT force engine
// through the public ForceSolver interface: it builds a Plummer-sphere
// particle set, computes gravitational accelerations with the hashed
// oct-tree backend at two accuracy settings, verifies them against the
// direct-summation backend behind the same interface, and integrates a few
// dynamical times.
package main

import (
	"fmt"
	"math"
	"math/rand"

	twohot "twohot"
	"twohot/internal/core"
	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

// plummerSet samples a particle set from a Plummer model with scale radius a.
func plummerSet(n int, a float64, seed int64) *particle.Set {
	rng := rand.New(rand.NewSource(seed))
	set := particle.New(n)
	for i := 0; i < n; i++ {
		// Inverse-transform sample of the Plummer cumulative mass profile.
		x := rng.Float64()
		r := a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
		u := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		s := math.Sqrt(1 - u*u)
		pos := vec.V3{r * s * math.Cos(phi), r * s * math.Sin(phi), r * u}
		set.Append(pos, vec.V3{}, 1.0/float64(n), int64(i))
	}
	return set
}

func main() {
	const n = 20000
	eps := 0.02
	set := plummerSet(n, 1.0, 42)

	fmt.Printf("2HOT quickstart: %d-particle Plummer sphere\n\n", n)

	// Reference forces through the direct-summation backend of the same
	// ForceSolver interface the tree implements.
	direct := twohot.NewDirectForceSolver(core.DirectSolver{Kernel: softening.Plummer, Eps: eps})
	ref, err := direct.Accelerations(set)
	if err != nil {
		panic(err)
	}

	for _, errTol := range []float64{1e-3, 1e-5} {
		solver := twohot.NewTreeForceSolver(core.TreeConfig{
			Order:  4,
			ErrTol: errTol,
			Kernel: softening.Plummer,
			Eps:    eps,
		})
		res, err := solver.Accelerations(set)
		if err != nil {
			panic(err)
		}
		stats := core.CompareAccelerations(res.Acc, ref.Acc)
		fmt.Printf("errtol=%.0e: %d cell + %d particle interactions, rms force error %.2e, %.0f ms\n",
			errTol, res.Counters.CellInteractions(), res.Counters.P2P,
			stats.RMS, res.Timings.Total.Seconds()*1e3)
	}

	// Integrate a few steps with a simple leapfrog (non-cosmological): the
	// sphere starts cold, collapses slightly and oscillates.  The solver's
	// Incremental capability makes consecutive solves reuse the previous
	// step's sorted order, bit-identically to from-scratch solves.
	solver := twohot.NewTreeForceSolver(core.TreeConfig{
		Order: 4, ErrTol: 1e-4, Kernel: softening.Plummer, Eps: eps, Incremental: true,
	})
	dt := 0.01
	for step := 0; step < 20; step++ {
		res, err := solver.Accelerations(set)
		if err != nil {
			panic(err)
		}
		for i := range set.Pos {
			set.Mom[i] = set.Mom[i].Add(res.Acc[i].Scale(dt))
			set.Pos[i] = set.Pos[i].Add(set.Mom[i].Scale(dt))
		}
	}
	// Report the half-mass radius after the short integration.
	r2 := make([]float64, n)
	for i, p := range set.Pos {
		r2[i] = p.Norm2()
	}
	fmt.Printf("\nafter 20 cold-collapse steps: half-mass radius %.3f (initial Plummer a=1)\n", halfMassRadius(r2))
}

func halfMassRadius(r2 []float64) float64 {
	cp := append([]float64(nil), r2...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return math.Sqrt(cp[len(cp)/2])
}
