// Command cosmobox runs a small periodic cosmological simulation end to end:
// 2LPT initial conditions from the Planck 2013 power spectrum, evolution to
// z=0 with the 2HOT tree solver (background subtraction, absolute-error MAC,
// compensating softening), and the standard measurements — matter power
// spectrum, FOF/SO halo catalog and the mass function compared against the
// Tinker08 fit.
package main

import (
	"flag"
	"fmt"

	twohot "twohot"
)

func main() {
	nGrid := flag.Int("n", 24, "particles per dimension")
	box := flag.Float64("box", 100, "box size in Mpc/h")
	steps := flag.Int("steps", 16, "number of timesteps")
	zInit := flag.Float64("zi", 24, "starting redshift")
	flag.Parse()

	cfg := twohot.DefaultConfig()
	cfg.Name = "cosmobox"
	cfg.NGrid = *nGrid
	cfg.BoxSize = *box
	cfg.ZInit = *zInit
	cfg.ZFinal = 0
	cfg.NSteps = *steps
	cfg.ErrTol = 1e-5
	cfg.WS = 1

	sim, err := twohot.New(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cosmobox: %d^3 particles, L=%g Mpc/h, %s cosmology\n",
		cfg.NGrid, cfg.BoxSize, cfg.Cosmology)
	fmt.Printf("particle mass: %.3e Msun/h\n", sim.Par.ParticleMass(cfg.BoxSize, cfg.NGrid*cfg.NGrid*cfg.NGrid)*1e10)

	if err := sim.GenerateICs(); err != nil {
		panic(err)
	}
	fmt.Printf("initial conditions at z=%.1f (2LPT)\n", sim.Redshift())

	// Per-step diagnostics through the Observer API: the StepInfo payload
	// carries the force result, so the hook needs no reach into the
	// Simulation.
	sim.AddObserver(twohot.ObserverFuncs{
		Step: func(info twohot.StepInfo) {
			if info.Step%4 == 0 {
				fmt.Printf("  step %3d  z=%6.2f  interactions/particle=%d\n",
					info.Step, info.Z,
					(info.Force.Counters.P2P+info.Force.Counters.CellInteractions())/int64(sim.NumParticles()))
			}
		},
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	fmt.Println("\nmatter power spectrum at z=0:")
	for i, p := range sim.PowerSpectrum(0) {
		if i%4 == 0 {
			fmt.Printf("  k=%.3f h/Mpc  P=%.4g (Mpc/h)^3\n", p.K, p.P)
		}
	}

	halos := sim.Halos(20)
	fmt.Printf("\n%d FOF halos with at least 20 particles\n", len(halos))
	for i, h := range halos {
		if i >= 5 {
			break
		}
		fmt.Printf("  halo %d: N=%d  M_FOF=%.3e  M200b=%.3e Msun/h\n",
			i, h.N, h.Mass*1e10, h.M200b*1e10)
	}

	_, m, ratio := sim.MassFunction(20, 5)
	if len(m) > 0 {
		fmt.Println("\nmass function / Tinker08:")
		for i := range m {
			fmt.Printf("  M200b=%.3e Msun/h  ratio=%.2f\n", m[i]*1e10, ratio[i])
		}
	}

	out := sim.OutputPath("cosmobox_z0.sdf")
	if err := sim.WriteCheckpoint(out); err != nil {
		panic(err)
	}
	fmt.Printf("\nfinal snapshot written to %s\n", out)
}
