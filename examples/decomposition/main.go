// Command decomposition reproduces the content of Figure 4: it decomposes a
// clustered particle distribution over many processor domains with the
// space-filling-curve sort and renders one face of the volume as a PPM image,
// cycling colors by domain.  It also prints the load balance achieved, then
// runs the same set through the distributed tree backend of the public
// ForceSolver interface — the full message-passing pipeline (decomposition,
// branch exchange, remote cell fetching) behind one method call.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	twohot "twohot"
	"twohot/internal/comm"
	"twohot/internal/core"
	"twohot/internal/domain"
	"twohot/internal/keys"
	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

func main() {
	nRanks := flag.Int("ranks", 2, "number of processor domains (in-process ranks)")
	n := flag.Int("n", 60000, "number of particles")
	curveName := flag.String("curve", "hilbert", "space-filling curve: morton or hilbert")
	out := flag.String("o", "decomposition.ppm", "output PPM image")
	flag.Parse()

	curve := keys.Hilbert
	if *curveName == "morton" {
		curve = keys.Morton
	}

	// Clustered distribution similar to an evolved cosmological volume.
	rng := rand.New(rand.NewSource(12))
	set := particle.New(*n)
	nBlob := 12
	centers := make([]vec.V3, nBlob)
	for i := range centers {
		centers[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for i := 0; i < *n; i++ {
		var p vec.V3
		if i%3 == 0 {
			p = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		} else {
			c := centers[rng.Intn(nBlob)]
			p = vec.V3{
				vec.PeriodicWrap(c[0]+0.06*rng.NormFloat64(), 1),
				vec.PeriodicWrap(c[1]+0.06*rng.NormFloat64(), 1),
				vec.PeriodicWrap(c[2]+0.06*rng.NormFloat64(), 1),
			}
		}
		set.Append(p, vec.V3{}, 1, int64(i))
	}
	box := vec.CubeBox(vec.V3{}, 1)

	// Decompose: each rank starts with a slice of the particles.
	world := comm.NewWorld(*nRanks)
	perRank := make([]*particle.Set, *nRanks)
	chunk := (*n + *nRanks - 1) / *nRanks
	for r := 0; r < *nRanks; r++ {
		perRank[r] = particle.New(chunk)
		for i := r * chunk; i < (r+1)*chunk && i < *n; i++ {
			perRank[r].AppendFrom(set, i)
		}
	}
	var decomp *domain.Decomposition
	counts := make([]int, *nRanks)
	if err := world.Run(func(r *comm.Rank) error {
		d, err := domain.Decompose(r, perRank[r.ID], box, domain.Options{Curve: curve}, nil)
		if err != nil {
			return err
		}
		if r.ID == 0 {
			decomp = d
		}
		counts[r.ID] = perRank[r.ID].Len()
		return nil
	}); err != nil {
		panic(err)
	}

	fmt.Printf("decomposed %d particles over %d domains along the %s curve\n", *n, *nRanks, curve)
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	fmt.Printf("domain sizes: min=%d max=%d (imbalance %.2f)\n", min, max,
		float64(max)*float64(*nRanks)/float64(*n))

	// Render one face (particles with z < 0.1), coloring by owner.
	const img = 512
	pixels := make([]int, img*img)
	for i := range pixels {
		pixels[i] = -1
	}
	palette := [][3]byte{
		{0, 0, 0}, {230, 25, 75}, {60, 180, 75}, {0, 130, 200}, {70, 240, 240},
		{0, 0, 128}, {170, 110, 40}, {145, 30, 180}, {255, 255, 255},
		{255, 225, 25}, {245, 130, 48}, {240, 50, 230}, {210, 245, 60},
		{250, 190, 212}, {0, 128, 128}, {220, 190, 255},
	}
	for i := 0; i < set.Len(); i++ {
		p := set.Pos[i]
		if p[2] > 0.1 {
			continue
		}
		owner := decomp.OwnerOfPosition(p)
		px := int(p[0] * img)
		py := int(p[1] * img)
		if px >= 0 && px < img && py >= 0 && py < img {
			pixels[py*img+px] = owner
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "P6\n%d %d\n255\n", img, img)
	buf := make([]byte, 0, img*img*3)
	for _, v := range pixels {
		var c [3]byte
		if v >= 0 {
			c = palette[v%len(palette)]
		} else {
			c = [3]byte{20, 20, 20}
		}
		buf = append(buf, c[0], c[1], c[2])
	}
	f.Write(buf)
	fmt.Printf("wrote %s (one face of the volume, colored by processor domain)\n", *out)

	// The same decomposition machinery, driven end to end: one ForceSolver
	// call runs the full distributed pipeline (work-weighted domain cut,
	// branch exchange, remote cell fetching) and regroups the set by owning
	// rank in place.
	solver := twohot.NewDistributedTreeForceSolver(core.TreeConfig{
		Order: 4, ErrTol: 1e-4,
		Kernel: softening.Plummer, Eps: 0.002,
		Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1,
	}, *nRanks)
	start := time.Now()
	res, err := solver.Accelerations(set)
	if err != nil {
		panic(err)
	}
	fmt.Printf("distributed force solve over %d ranks: %d particles in %.0f ms (%d P2P + %d cell interactions)\n",
		*nRanks, set.Len(), time.Since(start).Seconds()*1e3,
		res.Counters.P2P, res.Counters.CellInteractions())
}
