// Command insitu demonstrates observer-driven in-situ analysis: a small
// cosmological box that measures itself while it runs.  The analysis
// schedule fires at configured redshift crossings, on a step cadence, and at
// the end of the run; each trigger produces a halo catalog (FOF + spherical
// overdensity), the halo mass function against the Warren06/Tinker08 fits,
// and the matter power spectrum — delivered to an AnalysisObserver hook and
// written as atomic JSON files, with no snapshot post-processing round trip.
//
// The same measurement is available post-hoc over any snapshot
// (twohot.AnalyzeSnapshot, or cmd/2hot -analyze-z/-analyze-every), and the
// catalogs are byte-identical either way — the determinism contract is
// documented in internal/analysis/doc.go.
package main

import (
	"flag"
	"fmt"
	"os"

	twohot "twohot"
)

func main() {
	nGrid := flag.Int("n", 16, "particles per dimension")
	box := flag.Float64("box", 40, "box size in Mpc/h")
	steps := flag.Int("steps", 16, "number of timesteps")
	every := flag.Int("every", 4, "analysis cadence in steps (0 disables)")
	outDir := flag.String("o", "out-insitu", "output directory for the catalog files")
	flag.Parse()

	cfg := twohot.DefaultConfig()
	cfg.Name = "insitu"
	cfg.NGrid = *nGrid
	cfg.BoxSize = *box
	cfg.NSteps = *steps
	cfg.ErrTol = 1e-4
	cfg.OutputDir = *outDir

	// The schedule: measure when the run crosses z=2 and z=1, every -every
	// steps, and once more at the end.  MinMembers is lowered to suit the
	// tiny example box; zero-valued fields keep their documented defaults
	// (all analyzers enabled, mass bins, mesh size).
	cfg.Analysis = twohot.AnalysisConfig{
		Redshifts:  []float64{2, 1},
		EverySteps: *every,
		AtEnd:      true,
		MinMembers: 10,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The observer receives every catalog as it is measured, while the
	// simulation is still running — the in-situ hook an on-the-fly pipeline
	// (light-cone accumulation, convergence monitoring, early stopping)
	// would attach to.
	sim, err := twohot.New(cfg, twohot.WithAnalysisObserver(
		twohot.AnalysisFunc(func(info twohot.AnalysisInfo) {
			cat := info.Catalog
			largestN := 0
			for _, h := range cat.Halos {
				if h.N > largestN {
					largestN = h.N
				}
			}
			fmt.Printf("  %-9s z=%6.3f  halos=%-3d largest=%d particles  -> %s\n",
				cat.Trigger.Label(), cat.Z, cat.NumHalos, largestN, info.Path)
		})))
	if err != nil {
		panic(err)
	}

	fmt.Printf("insitu: %d^3 particles, L=%g Mpc/h, %d steps, analysis at z=2, z=1, every %d steps, and at the end\n",
		cfg.NGrid, cfg.BoxSize, cfg.NSteps, *every)
	if err := sim.GenerateICs(); err != nil {
		panic(err)
	}
	if err := sim.Run(); err != nil {
		panic(err)
	}

	// The final catalog is also available programmatically at any time via
	// sim.Analyze() — here used to close with a summary measured from the
	// exact end state.
	cat, err := sim.Analyze()
	if err != nil {
		panic(err)
	}
	fmt.Printf("final state: %d halos above the cut", cat.NumHalos)
	if mf := cat.MassFunction; mf != nil {
		populated := 0
		for _, b := range mf.FOF {
			if b.Count > 0 {
				populated++
			}
		}
		fmt.Printf(", FOF mass function populated in %d bins", populated)
	}
	fmt.Println()
	fmt.Printf("catalog files in %s (one per trigger)\n", *outDir)
}
