// Command multiscale demonstrates the activity-driven stepping subsystem on
// a workload with a wide spread of dynamical timescales: a cosmological box
// whose collapsing regions demand far shorter timesteps than the quiet
// voids.  The same initial conditions are evolved twice — once with global
// steps and once with a three-level block-timestep hierarchy — and the run
// reports, per block step, how the rung populations, the dirty-set subtree
// reuse and the activity-pruned traversal behave, then compares the final
// states.
//
// With most particles parked on rung 0, a substep that only advances the
// fast tail rebuilds only the dirty spine of the tree (the frozen subtrees
// are copied bit for bit, moments included) and descends only the sink
// subtrees that hold active particles.  The closing comparison shows the
// frozen-source approximation's cost: a displacement gap orders of magnitude
// below the interparticle separation.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	twohot "twohot"
)

// reuseObserver reports, after every block step, how the rung populations,
// the dirty-set subtree reuse and the activity-pruned traversal behaved —
// everything it needs arrives in the StepInfo payload.
func reuseObserver() twohot.Observer {
	return twohot.ObserverFuncs{
		Step: func(info twohot.StepInfo) {
			b := info.Force.Build
			tr := info.Force.Traversal
			fmt.Printf("  step %d (z=%5.2f): rungs %v  reused %d cells in %d subtrees, "+
				"bounds cache %d cells, pruned %d sink subtrees\n",
				info.Step-1, info.Z, info.Rungs, b.ReusedCells, b.ReusedSubtrees,
				tr.BoundsReusedCells, tr.PrunedInactive)
		},
	}
}

func run(cfg twohot.Config, report bool) (*twohot.Simulation, time.Duration, error) {
	var opts []twohot.Option
	if report {
		opts = append(opts, twohot.WithObserver(reuseObserver()))
	}
	sim, err := twohot.New(cfg, opts...)
	if err != nil {
		return nil, 0, err
	}
	if err := sim.GenerateICs(); err != nil {
		return nil, 0, err
	}
	aFinal := 1 / (1 + cfg.ZFinal)
	dlnA := math.Log(aFinal/sim.A) / float64(cfg.NSteps)
	start := time.Now()
	for s := 0; s < cfg.NSteps; s++ {
		if err := sim.StepOnce(dlnA); err != nil {
			return nil, 0, err
		}
	}
	if err := sim.Synchronize(); err != nil {
		return nil, 0, err
	}
	return sim, time.Since(start), nil
}

func main() {
	cfg := twohot.DefaultConfig()
	cfg.Name = "multiscale"
	cfg.NGrid = 16
	cfg.BoxSize = 200
	cfg.ZInit = 19
	cfg.ZFinal = 7
	cfg.NSteps = 5
	cfg.ErrTol = 1e-4
	cfg.WS = 1
	cfg.LatticeOrder = 0

	fmt.Printf("multiscale: %d^3 particles, z=%g -> %g in %d base steps\n\n",
		cfg.NGrid, cfg.ZInit, cfg.ZFinal, cfg.NSteps)

	fmt.Println("global stepping:")
	global, tGlobal, err := run(cfg, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "global run:", err)
		os.Exit(1)
	}
	fmt.Printf("  %d steps in %.1fs\n\n", cfg.NSteps, tGlobal.Seconds())

	bcfg := cfg
	bcfg.BlockSteps = 3
	bcfg.RungDisplacementFrac = 0.01
	fmt.Println("block stepping (3 rung levels, displacement criterion 0.01 sep/step):")
	block, tBlock, err := run(bcfg, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "block run:", err)
		os.Exit(1)
	}
	fmt.Printf("  %d block steps in %.1fs\n\n", cfg.NSteps, tBlock.Seconds())

	// The two runs integrate the same physics on different step ladders, so
	// they agree to the truncation error of the coarse rungs plus the
	// frozen-source approximation.
	sep := cfg.BoxSize / float64(cfg.NGrid)
	maxDev := 0.0
	for i := range global.P.Pos {
		d := block.P.Pos[i].Sub(global.P.Pos[i])
		for c := 0; c < 3; c++ {
			if d[c] > cfg.BoxSize/2 {
				d[c] -= cfg.BoxSize
			}
			if d[c] < -cfg.BoxSize/2 {
				d[c] += cfg.BoxSize
			}
		}
		if dev := d.Norm() / sep; dev > maxDev {
			maxDev = dev
		}
	}
	fmt.Printf("final state: z=%.2f both runs, max position deviation %.2e of the "+
		"mean interparticle separation\n", global.Redshift(), maxDev)
	fmt.Println("\n(A block step whose particles all sit on rung 0 is bit-identical to a")
	fmt.Println("global step; the deviation above is purely the multi-rate truncation.)")
}
