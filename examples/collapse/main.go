// Command collapse follows the classic cold spherical-collapse problem with
// open (vacuum) boundary conditions: a uniform cold sphere collapses under
// self gravity, and the force-smoothing kernel controls how violently the
// center is resolved.  It demonstrates the non-periodic code path and the
// kernel options of Section 2.5, driving the tree backend through the public
// ForceSolver interface.
package main

import (
	"fmt"
	"math"
	"math/rand"

	twohot "twohot"
	"twohot/internal/core"
	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

func coldSphere(n int, radius float64, seed int64) *particle.Set {
	rng := rand.New(rand.NewSource(seed))
	set := particle.New(n)
	for set.Len() < n {
		p := vec.V3{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
		if p.Norm() > 1 {
			continue
		}
		set.Append(p.Scale(radius), vec.V3{}, 1.0/float64(n), int64(set.Len()))
	}
	return set
}

func main() {
	const n = 8000
	for _, kernel := range []softening.Kernel{softening.Plummer, softening.DehnenK1} {
		set := coldSphere(n, 1.0, 7)
		solver := twohot.NewTreeForceSolver(core.TreeConfig{
			Order: 4, ErrTol: 1e-4,
			Kernel: kernel, Eps: 0.05,
			Incremental: true,
		})
		// The free-fall time of a uniform unit-mass, unit-radius sphere
		// (G=1) is t_ff = pi/2 * sqrt(R^3/(2GM)) ~ 1.11.
		dt := 0.01
		var minRadius float64 = math.Inf(1)
		for step := 0; step <= 150; step++ {
			res, err := solver.Accelerations(set)
			if err != nil {
				panic(err)
			}
			for i := range set.Pos {
				set.Mom[i] = set.Mom[i].Add(res.Acc[i].Scale(dt))
				set.Pos[i] = set.Pos[i].Add(set.Mom[i].Scale(dt))
			}
			if r := halfMass(set.Pos); r < minRadius {
				minRadius = r
			}
			if step%50 == 0 {
				fmt.Printf("kernel=%-10s t=%.2f  half-mass radius=%.3f\n", kernel, float64(step)*dt, halfMass(set.Pos))
			}
		}
		fmt.Printf("kernel=%-10s maximum collapse: half-mass radius %.3f\n\n", kernel, minRadius)
	}
	fmt.Println("(The compensating Dehnen-style kernel lets the collapse reach a deeper, less biased center.)")
}

func halfMass(pos []vec.V3) float64 {
	var com vec.V3
	for _, p := range pos {
		com = com.Add(p)
	}
	com = com.Scale(1 / float64(len(pos)))
	r := make([]float64, len(pos))
	for i, p := range pos {
		r[i] = p.Sub(com).Norm()
	}
	// nth_element-ish: simple sort is fine at this size.
	for i := 1; i < len(r); i++ {
		for j := i; j > 0 && r[j] < r[j-1]; j-- {
			r[j], r[j-1] = r[j-1], r[j]
		}
	}
	return r[len(r)/2]
}
