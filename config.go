package twohot

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"twohot/internal/analysis"
	"twohot/internal/core"
	"twohot/internal/cosmo"
	"twohot/internal/halo"
	"twohot/internal/pm"
	"twohot/internal/softening"
	"twohot/internal/step"
	"twohot/internal/traverse"
)

// SolverKind selects the gravity solver.
type SolverKind string

const (
	// SolverTree is the 2HOT hashed oct-tree solver (the paper's method).
	SolverTree SolverKind = "tree"
	// SolverTreePM is the GADGET-2-style TreePM baseline (mesh long range +
	// direct short range with an erfc split).
	SolverTreePM SolverKind = "treepm"
	// SolverPM is a pure particle-mesh solver.
	SolverPM SolverKind = "pm"
	// SolverDirect is the O(N^2) reference (verification only).
	SolverDirect SolverKind = "direct"
)

// Config fully describes a simulation.  The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	Name string `json:"name"`

	// Cosmology.
	Cosmology string  `json:"cosmology"` // planck2013, wmap7, wmap1, eds
	Sigma8    float64 `json:"sigma8,omitempty"`

	// Initial conditions.
	BoxSize    float64 `json:"box_size"` // Mpc/h
	NGrid      int     `json:"n_grid"`   // particles per dimension
	ZInit      float64 `json:"z_init"`
	Seed       int64   `json:"seed"`
	Use2LPT    bool    `json:"use_2lpt"`
	UseDEC     bool    `json:"use_dec"`
	SphereMode bool    `json:"sphere_mode"`

	// Force solver.
	Solver                SolverKind `json:"solver"`
	Order                 int        `json:"order"`
	ErrTol                float64    `json:"err_tol"`
	MAC                   string     `json:"mac"` // "abs" or "bh"
	Theta                 float64    `json:"theta"`
	BackgroundSubtraction bool       `json:"background_subtraction"`
	WS                    int        `json:"ws"`
	LatticeOrder          int        `json:"lattice_order"`
	Kernel                string     `json:"kernel"`         // plummer, spline, dehnen-k1
	SofteningFrac         float64    `json:"softening_frac"` // fraction of the mean interparticle separation
	Softening             float64    `json:"softening"`      // absolute override (Mpc/h)
	PMGrid                int        `json:"pm_grid"`        // mesh for pm/treepm
	Asmth                 float64    `json:"asmth"`          // treepm split in mesh cells
	RCut                  float64    `json:"rcut,omitempty"` // treepm short-range cutoff in units of the split scale (0 = 4.5)
	Workers               int        `json:"workers"`        // goroutines for tree build + traversal (0 = GOMAXPROCS)
	// Incremental reuses each step's sorted particle order to seed the next
	// step's tree build (bit-identical to a from-scratch build; near-static
	// steps skip the full radix sort).
	Incremental bool `json:"incremental"`
	// Ranks, when > 1, runs every force solve through the message-passing
	// DistributedStep pipeline on that many in-process ranks, with
	// work-weighted domain rebalancing fed back from step to step.
	Ranks int `json:"ranks,omitempty"`
	// Transport selects the fabric a Ranks > 1 run communicates over:
	// "chan" (the default, also the empty string) runs every rank as a
	// goroutine of this process over shared-memory channels, while "tcp"
	// runs them as separate supervised worker processes over TCP loopback —
	// the fault-tolerant deployment mode, with checkpoint-based recovery
	// when a rank process dies (see RunClusterSupervised and cmd/2hot).
	// Both fabrics produce bit-identical results.
	Transport string `json:"transport,omitempty"`
	// BlockSteps, when positive, replaces every global step with a
	// hierarchical block step of that many power-of-two rung levels:
	// particles are assigned to rungs at each block start by the
	// displacement criterion below, and each substep drifts/kicks only the
	// active rungs while the force solve computes sinks for them against
	// the frozen positions of everything else.  The tree rebuild reuses
	// the subtrees no active particle touched, bit for bit.  A block step
	// whose particles all sit on rung 0 is bit-identical to the global
	// step.  Requires a tree-based solver.  With Ranks > 1 the block
	// engine runs distributed: rungs, momentum epochs and activity flags
	// travel with the particles through the rank exchange, every rank
	// agrees on the block's substep schedule by summing per-rank rung
	// histograms, and each substep solves only the active sinks.
	BlockSteps int `json:"block_steps,omitempty"`
	// RungDisplacementFrac is the per-particle rung criterion: a particle
	// may stay on a rung only if one step on it moves the particle less
	// than this fraction of the mean interparticle separation (the
	// per-particle analogue of SuggestTimestep's limit).  0 means the
	// default of 0.1.
	RungDisplacementFrac float64 `json:"rung_displacement_frac,omitempty"`

	// Time integration.
	ZFinal float64 `json:"z_final"`
	NSteps int     `json:"n_steps"` // number of equal steps in ln(a)

	// CheckpointEvery, when positive, writes an atomic checkpoint (see
	// Simulation.CheckpointPath) after every CheckpointEvery-th step, so a
	// crashed run can resume from the last completed multiple instead of
	// the beginning.  With BlockSteps > 0 checkpoints land only at
	// synchronized block boundaries: mid-block, block-stepped momenta sit
	// at per-particle epochs a single-epoch snapshot cannot represent, so
	// a due checkpoint first closes the leapfrog (Synchronize) at the
	// block boundary, then writes.  A resumed run re-primes its rungs and
	// epochs from the synchronized snapshot, bit-identically.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// Output.
	OutputDir string `json:"output_dir"`

	// Analysis schedules in-situ measurements during Run; the zero value
	// never fires.  See AnalysisConfig and internal/analysis for the
	// schedule and determinism contract.
	Analysis AnalysisConfig `json:"analysis,omitempty"`
}

// AnalysisConfig schedules in-situ analysis outputs — halo catalogs, mass
// functions, power spectra measured from the live particle set while Run
// advances.  The zero value never fires.  Results reach the caller through
// analysis observers (WithAnalysisObserver, AddAnalysisObserver) and, unless
// NoFiles is set, as atomic JSON catalog files in the output directory named
// "<name>-analysis-<trigger>.json".
type AnalysisConfig struct {
	// Redshifts fire on the step that crosses each value (stateless crossing
	// detection on the run's step grid, so a checkpoint resume fires on
	// exactly the steps the uninterrupted run fires on).  Each value must lie
	// in [z_final, z_init).
	Redshifts []float64 `json:"redshifts,omitempty"`
	// EverySteps fires after every k-th completed step, on the same step grid
	// checkpoints preserve.
	EverySteps int `json:"every_steps,omitempty"`
	// AtEnd fires once after the run's final synchronize.
	AtEnd bool `json:"at_end,omitempty"`

	// Analyzer selection.  When none is set, all three run — an empty
	// selection is read as "everything", never as "nothing" (a schedule that
	// fires must measure something).
	Halos         bool `json:"halos,omitempty"`
	MassFunction  bool `json:"mass_function,omitempty"`
	PowerSpectrum bool `json:"power_spectrum,omitempty"`

	// Synchronize closes the leapfrog before every scheduled measurement, so
	// momenta refer to the output epoch.  The built-in analyzers read only
	// positions and are exact either way; block-stepped runs whose momenta
	// sit at per-particle epochs synchronize regardless (the same gate
	// checkpoints use).  A mid-run synchronize restarts the leapfrog at the
	// output epoch: the trajectory afterwards is second-order accurate but
	// not bit-identical to a run without the output, while runs sharing a
	// schedule stay bit-identical to each other.
	Synchronize bool `json:"synchronize,omitempty"`
	// NoFiles suppresses the catalog files; results then reach only the
	// registered analysis observers.
	NoFiles bool `json:"no_files,omitempty"`

	// Analyzer parameters; zero values mean the documented defaults.
	LinkingLength float64 `json:"linking_length,omitempty"` // FOF b (0 = 0.2)
	MinMembers    int     `json:"min_members,omitempty"`    // FOF cut (0 = 20, 1 = no cut)
	MassBins      int     `json:"mass_bins,omitempty"`      // mass-function bins (0 = 16)
	Mesh          int     `json:"mesh,omitempty"`           // P(k) grid per side (0 = 2*NGrid)
	MaxHalos      int     `json:"max_halos,omitempty"`      // per-halo entries kept in the catalog (0 = all)
}

// Enabled reports whether the configuration schedules any output.
func (a AnalysisConfig) Enabled() bool { return !a.schedule().Empty() }

// schedule converts the scheduling fields to the internal form.
func (a AnalysisConfig) schedule() analysis.Schedule {
	return analysis.Schedule{Redshifts: a.Redshifts, EverySteps: a.EverySteps, AtEnd: a.AtEnd}
}

// DefaultConfig returns a small but complete cosmological configuration.
func DefaultConfig() Config {
	return Config{
		Name:                  "quick-box",
		Cosmology:             "planck2013",
		BoxSize:               128,
		NGrid:                 32,
		ZInit:                 24,
		Seed:                  12345,
		Use2LPT:               true,
		UseDEC:                true,
		Solver:                SolverTree,
		Order:                 4,
		ErrTol:                1e-5,
		MAC:                   "abs",
		Theta:                 0.6,
		BackgroundSubtraction: true,
		WS:                    1,
		LatticeOrder:          2,
		Kernel:                "dehnen-k1",
		SofteningFrac:         1.0 / 20.0,
		PMGrid:                64,
		Asmth:                 1.25,
		Incremental:           true,
		ZFinal:                0,
		NSteps:                32,
	}
}

// Validate checks the configuration for obvious inconsistencies.
func (c *Config) Validate() error {
	// Name is interpolated into file paths under OutputDir (CheckpointPath,
	// OutputPath, AnalysisPath); a separator or a ".." component would let a
	// crafted name escape the output directory.
	if strings.ContainsAny(c.Name, `/\`) || strings.Contains(c.Name, "..") || strings.ContainsRune(c.Name, 0) {
		return fmt.Errorf("config: name %q must not contain path separators, \"..\" or NUL", c.Name)
	}
	if c.BoxSize <= 0 {
		return fmt.Errorf("config: box_size must be positive")
	}
	if c.NGrid < 2 {
		return fmt.Errorf("config: n_grid must be at least 2")
	}
	if c.ZInit <= c.ZFinal {
		return fmt.Errorf("config: z_init (%g) must exceed z_final (%g)", c.ZInit, c.ZFinal)
	}
	if c.NSteps < 1 {
		return fmt.Errorf("config: n_steps must be at least 1")
	}
	if _, err := cosmo.ByName(c.Cosmology); err != nil {
		return err
	}
	switch c.Solver {
	case SolverTree, SolverTreePM, SolverPM, SolverDirect:
	default:
		return fmt.Errorf("config: unknown solver %q", c.Solver)
	}
	if _, ok := softening.ParseKernel(c.Kernel); !ok {
		return fmt.Errorf("config: unknown kernel %q", c.Kernel)
	}
	if c.MAC != "" && c.MAC != "abs" && c.MAC != "bh" {
		return fmt.Errorf("config: mac must be \"abs\" or \"bh\"")
	}
	if c.Order < 0 || c.Order > 8 {
		return fmt.Errorf("config: order must be between 0 and 8")
	}
	if c.Ranks < 0 {
		return fmt.Errorf("config: ranks must not be negative")
	}
	if c.Ranks > 1 && c.Solver != SolverTree {
		return fmt.Errorf("config: ranks > 1 requires the tree solver, not %q", c.Solver)
	}
	switch c.Transport {
	case "", "chan":
	case "tcp":
		if c.Ranks < 2 {
			return fmt.Errorf("config: transport \"tcp\" requires ranks > 1")
		}
	default:
		return fmt.Errorf("config: transport must be \"chan\" or \"tcp\", not %q", c.Transport)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("config: checkpoint_every must not be negative")
	}
	// checkpoint_every + block_steps was rejected until the block engine
	// learned to close the leapfrog before a due checkpoint (mid-block
	// momenta sit at per-particle epochs a single-epoch snapshot cannot
	// represent); checkpoints now land only at synchronized block
	// boundaries, so the combination is valid.
	if c.BlockSteps < 0 || c.BlockSteps > step.MaxRungs {
		return fmt.Errorf("config: block_steps must be between 0 and %d", step.MaxRungs)
	}
	if c.BlockSteps > 0 && c.Solver != SolverTree && c.Solver != SolverTreePM {
		return fmt.Errorf("config: block_steps requires a tree-based solver (tree or treepm), not %q", c.Solver)
	}
	// block_steps + ranks > 1 was rejected while activity masks stopped at
	// the rank boundary; rungs, momentum epochs and flags now travel with
	// the particles through the exchange and the ranks agree on each
	// block's schedule by a rung-histogram reduction, so the distributed
	// block composition is valid (the solver constraint above still
	// applies: ranks > 1 runs the distributed tree).
	if c.RungDisplacementFrac < 0 {
		return fmt.Errorf("config: rung_displacement_frac must not be negative")
	}
	if c.RCut < 0 {
		return fmt.Errorf("config: rcut must not be negative")
	}
	if c.Solver == SolverTreePM {
		// The short-range walk covers replica images with a single shell, so
		// the truncation radius must stay inside the half box.
		opt := c.pmOptions()
		if rcut := opt.RCut * opt.Asmth * c.BoxSize / float64(opt.Mesh); rcut >= c.BoxSize/2 {
			return fmt.Errorf("config: treepm short-range cutoff %g reaches half the box %g; raise pm_grid or lower asmth/rcut",
				rcut, c.BoxSize/2)
		}
	}
	if err := c.Analysis.schedule().Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	for _, z := range c.Analysis.Redshifts {
		// A crossing outside [z_final, z_init) never fires; surface the
		// mistake instead of silently producing nothing.
		if z >= c.ZInit || z < c.ZFinal {
			return fmt.Errorf("config: analysis redshift %g outside the run (z_final %g <= z < z_init %g)",
				z, c.ZFinal, c.ZInit)
		}
	}
	if c.Transport == "tcp" && (len(c.Analysis.Redshifts) > 0 || c.Analysis.EverySteps > 0) {
		// Supervised worker processes advance without the in-process
		// observer loop; only the end-of-run catalog (measured by the
		// supervisor from the gathered snapshot) is available there.
		return fmt.Errorf("config: analysis redshift/cadence outputs require an in-process run; transport \"tcp\" supports only at_end")
	}
	if c.Analysis.Enabled() {
		if err := c.analysisOptions().Validate(); err != nil {
			return fmt.Errorf("config: %w", err)
		}
	}
	return nil
}

// analysisOptions derives the analyzer options the scheduled analysis runs
// with: box, worker count and halo-finder parameters inherited from the
// run's own, the P(k) mesh defaulting to 2*NGrid like PowerSpectrum(0), and
// an empty analyzer selection reading as all three.
func (c *Config) analysisOptions() analysis.Options {
	a := c.Analysis
	halos, mf, pk := a.Halos, a.MassFunction, a.PowerSpectrum
	if !halos && !mf && !pk {
		halos, mf, pk = true, true, true
	}
	mesh := a.Mesh
	if mesh == 0 {
		mesh = 2 * c.NGrid
	}
	return analysis.Options{
		BoxSize:       c.BoxSize,
		Workers:       c.Workers,
		Halos:         halos,
		MassFunction:  mf,
		PowerSpectrum: pk,
		Halo: halo.Options{
			BoxSize:       c.BoxSize,
			LinkingLength: a.LinkingLength,
			MinMembers:    a.MinMembers,
			Workers:       c.Workers,
		},
		MassBins: a.MassBins,
		Mesh:     mesh,
		MaxHalos: a.MaxHalos,
	}
}

// treeConfig derives the tree-solver configuration NewForceSolver hands to
// core.NewTreeSolver.
func (c *Config) treeConfig() core.TreeConfig {
	return core.TreeConfig{
		Order:                 c.Order,
		ErrTol:                c.ErrTol,
		MAC:                   c.macType(),
		Theta:                 c.Theta,
		Kernel:                c.kernel(),
		Eps:                   c.SofteningLength(),
		G:                     cosmo.G,
		Periodic:              true,
		BoxSize:               c.BoxSize,
		BackgroundSubtraction: c.BackgroundSubtraction,
		WS:                    c.WS,
		LatticeOrder:          c.LatticeOrder,
		Workers:               c.Workers,
		Incremental:           c.Incremental,
	}
}

// pmOptions derives the mesh-solver options NewForceSolver hands to
// pm.NewSolver: a pure PM solver runs without a force split (Asmth 0), the
// TreePM composite defaults to the GADGET-2 split of 1.25 mesh cells.
func (c *Config) pmOptions() pm.Options {
	mesh := c.PMGrid
	if mesh == 0 {
		mesh = 2 * c.NGrid
	}
	asmth := c.Asmth
	if c.Solver == SolverPM {
		asmth = 0
	} else if asmth == 0 {
		asmth = 1.25
	}
	rcut := c.RCut
	if rcut == 0 {
		rcut = 4.5
	}
	return pm.Options{
		Mesh:          mesh,
		BoxSize:       c.BoxSize,
		DeconvolveCIC: true,
		Asmth:         asmth,
		RCut:          rcut,
		Eps:           c.SofteningLength(),
		Workers:       c.Workers,
	}
}

// treePMTreeConfig derives the short-range tree configuration of the TreePM
// composite: the force-split scale comes from the mesh options, background
// subtraction and the far lattice are disabled (the mesh owns the mean
// density and the infinite replica sum), and a single replica shell covers
// the cutoff (Validate pins it inside the half box).
func (c *Config) treePMTreeConfig() core.TreeConfig {
	tc := c.treeConfig()
	opt := c.pmOptions()
	rs := opt.Asmth * c.BoxSize / float64(opt.Mesh)
	tc.BackgroundSubtraction = false
	tc.LatticeOrder = 0
	tc.WS = 1
	tc.SplitRS = rs
	tc.SplitRCut = opt.RCut * rs
	return tc
}

// macType converts the MAC string.
func (c *Config) macType() traverse.MACType {
	if c.MAC == "bh" {
		return traverse.MACBarnesHut
	}
	return traverse.MACAbsoluteError
}

// kernel returns the parsed smoothing kernel.
func (c *Config) kernel() softening.Kernel {
	k, _ := softening.ParseKernel(c.Kernel)
	return k
}

// SofteningLength returns the absolute smoothing scale in Mpc/h.
func (c *Config) SofteningLength() float64 {
	if c.Softening > 0 {
		return c.Softening
	}
	frac := c.SofteningFrac
	if frac == 0 {
		frac = 1.0 / 20.0
	}
	sep := c.BoxSize / float64(c.NGrid)
	return frac * sep
}

// LoadConfig reads a JSON configuration file.
func LoadConfig(path string) (Config, error) {
	var c Config
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Save writes the configuration as JSON.
func (c Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
