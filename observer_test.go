package twohot

// Observer and Stepper seam tests: hook firing semantics, the progress
// migration path, custom-engine injection, and the pin that the rung-aware
// work decay steers only schedules — never a trajectory bit.

import (
	"testing"

	"twohot/internal/core"
	"twohot/internal/particle"
	"twohot/internal/step"
)

func TestObserversFire(t *testing.T) {
	cfg := conformanceConfig(SolverTree)
	var steps, forces, syncs int
	var progress []int
	var sim *Simulation
	sim, err := New(cfg,
		WithObserver(ObserverFuncs{
			Step: func(info StepInfo) {
				steps++
				if info.Force == nil {
					t.Error("OnStep delivered no force result")
				}
				if info.DlnA <= 0 {
					t.Errorf("OnStep delivered dlnA %g", info.DlnA)
				}
				if kin, _ := info.Energy(); kin <= 0 {
					t.Errorf("OnStep delivered kinetic energy %g", kin)
				}
				if info.Step != sim.StepCount {
					t.Errorf("OnStep step %d, simulation at %d", info.Step, sim.StepCount)
				}
			},
			Force: func(res *core.Result) {
				forces++
				if res == nil || res.Acc == nil {
					t.Error("OnForce delivered an empty result")
				}
			},
			Sync: func(info StepInfo) { syncs++ },
		}),
		WithProgress(func(step int, z float64) { progress = append(progress, step) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != cfg.NSteps {
		t.Errorf("OnStep fired %d times, want %d", steps, cfg.NSteps)
	}
	// Every step solves once, and the closing synchronization solves again.
	if forces < cfg.NSteps+1 {
		t.Errorf("OnForce fired %d times, want at least %d", forces, cfg.NSteps+1)
	}
	if syncs != 1 {
		t.Errorf("OnSynchronize fired %d times, want 1", syncs)
	}
	if len(progress) != cfg.NSteps || progress[0] != 1 || progress[len(progress)-1] != cfg.NSteps {
		t.Errorf("progress observer saw steps %v, want 1..%d", progress, cfg.NSteps)
	}
}

// countingStepper wraps an engine and records its calls — a stand-in for an
// externally supplied integrator (the seam a distributed block stepper will
// use).
type countingStepper struct {
	inner    Stepper
	advances int
	syncs    int
}

func (c *countingStepper) Advance(f step.Forcer, p *particle.Set, clk *step.Clock, dlnA float64) (*core.Result, error) {
	c.advances++
	return c.inner.Advance(f, p, clk, dlnA)
}

func (c *countingStepper) Synchronize(f step.Forcer, p *particle.Set, clk *step.Clock) (*core.Result, error) {
	c.syncs++
	return c.inner.Synchronize(f, p, clk)
}

func (c *countingStepper) CheckpointReady(aMom float64) error { return c.inner.CheckpointReady(aMom) }

func (c *countingStepper) Reset() { c.inner.Reset() }

// TestWithStepperInjection pins the Stepper seam: a custom engine drives the
// run, and a delegating wrapper around the built-in global leapfrog must
// reproduce the default run bit for bit.
func TestWithStepperInjection(t *testing.T) {
	cfg := conformanceConfig(SolverTree)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	par := ref.Par
	cs := &countingStepper{inner: step.NewGlobal(par, cfg.BoxSize)}
	sim, err := New(cfg, WithStepper(cs))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if cs.advances != cfg.NSteps || cs.syncs == 0 {
		t.Fatalf("custom stepper saw %d advances and %d syncs", cs.advances, cs.syncs)
	}
	for i := range ref.P.Pos {
		if ref.P.Pos[i] != sim.P.Pos[i] || ref.P.Mom[i] != sim.P.Mom[i] {
			t.Fatalf("particle %d: injected global engine diverged from the default", i)
		}
	}
}

// TestWorkDecayNeverChangesTrajectory pins the satellite's safety contract:
// the between-block work decay adjusts only the scheduling weights, so a
// multi-rung block-stepped run with decay on and off must produce
// bit-identical positions and momenta (the weights feed domain.SplitWeighted
// shard cuts, which are schedule-only by the PR 3 equivalence guarantee).
func TestWorkDecayNeverChangesTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung integration run")
	}
	cfg := conformanceConfig(SolverTree)
	cfg.BlockSteps = 3
	cfg.RungDisplacementFrac = 0.01

	// The decayed weights live between a block's end and the next solve
	// (which consumes them for shard balancing, then refreshes them), so the
	// comparison snapshots them per step through an observer.
	run := func(decay float64) (*Simulation, [][]float64) {
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sep := cfg.BoxSize / float64(cfg.NGrid)
		eng := step.NewBlock(sim.Par, cfg.BoxSize, sep, cfg.BlockSteps, cfg.RungDisplacementFrac)
		eng.WorkDecay = decay
		WithStepper(eng)(sim)
		var snaps [][]float64
		sim.AddObserver(ObserverFuncs{Step: func(StepInfo) {
			snaps = append(snaps, append([]float64(nil), sim.P.Work...))
		}})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if eng.State() == nil {
			t.Fatal("block engine kept no state")
		}
		return sim, snaps
	}
	on, onW := run(step.DefaultWorkDecay)
	off, offW := run(0)
	if bs := blockState(on); bs.MaxRung() == 0 {
		t.Skip("criterion produced a single rung; decay unexercised")
	}
	for i := range on.P.Pos {
		if on.P.Pos[i] != off.P.Pos[i] || on.P.Mom[i] != off.P.Mom[i] {
			t.Fatalf("particle %d: work decay changed the trajectory", i)
		}
	}
	decayed := false
	for s := range onW {
		for i := range onW[s] {
			if onW[s][i] != offW[s][i] {
				decayed = true
			}
		}
	}
	if !decayed {
		t.Error("work decay left every weight untouched in a multi-rung run")
	}
}
