package twohot

// Public-API surface gate: api.txt is a golden listing of every exported
// symbol of the root package — functions, methods, types with their exported
// fields, constants and variables — and this test fails whenever the surface
// drifts from it.  An intentional API change is made visible in review by
// regenerating the golden file:
//
//	go test -run TestAPISurface -update-api .
//
// The listing is produced from the AST (no build artifacts, no go doc
// subprocess), normalized to one sorted line per declaration, with
// unexported struct fields and unexported methods omitted.

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite api.txt with the current public API surface")

func TestAPISurface(t *testing.T) {
	got := renderAPISurface(t)
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("api.txt rewritten")
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("missing golden file: %v\n(run `go test -run TestAPISurface -update-api .`)", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed.\n--- api.txt (reviewed)\n+++ current\n%s\n"+
			"If the change is intentional, regenerate with `go test -run TestAPISurface -update-api .` "+
			"and include the api.txt diff in review.", surfaceDiff(string(want), got))
	}
}

// renderAPISurface parses the root package (test files excluded) and renders
// one normalized line per exported declaration.
func renderAPISurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["twohot"]
	if !ok {
		t.Fatal("package twohot not found")
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				fn := *d
				fn.Body = nil
				fn.Doc = nil
				lines = append(lines, renderNode(t, fset, &fn))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						cp := *sp
						cp.Doc = nil
						cp.Comment = nil
						stripUnexportedFields(&cp)
						lines = append(lines, "type "+renderNode(t, fset, &cp))
					case *ast.ValueSpec:
						exported := false
						for _, n := range sp.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if !exported {
							continue
						}
						cp := *sp
						cp.Doc = nil
						cp.Comment = nil
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						lines = append(lines, kw+" "+renderNode(t, fset, &cp))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedReceiver reports whether a method's receiver type is exported
// (plain functions pass trivially).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// stripUnexportedFields removes unexported fields from struct type specs
// (they are implementation detail, not API) and strips comments.
func stripUnexportedFields(sp *ast.TypeSpec) {
	st, ok := sp.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	kept := st.Fields.List[:0:0]
	for _, f := range st.Fields.List {
		f.Doc = nil
		f.Comment = nil
		if len(f.Names) == 0 {
			// Embedded field: keep when the embedded type name is exported.
			typ := f.Type
			if star, ok := typ.(*ast.StarExpr); ok {
				typ = star.X
			}
			if sel, ok := typ.(*ast.SelectorExpr); ok {
				typ = sel.Sel
			}
			if id, ok := typ.(*ast.Ident); ok && !id.IsExported() {
				continue
			}
			kept = append(kept, f)
			continue
		}
		names := f.Names[:0:0]
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		f.Names = names
		kept = append(kept, f)
	}
	cp := *st
	fl := *st.Fields
	fl.List = kept
	cp.Fields = &fl
	sp.Type = &cp
}

// renderNode prints an AST node and collapses it to one whitespace-normalized
// line.
func renderNode(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// surfaceDiff renders a minimal line diff of the two surfaces.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
