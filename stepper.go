package twohot

import (
	"twohot/internal/core"
	"twohot/internal/particle"
	"twohot/internal/step"
)

// Stepper is the pluggable time-integration engine of a Simulation: it
// advances a particle set by leapfrog steps of size dlnA (in ln a) against
// whatever ForceSolver the simulation carries, and closes the leapfrog when
// asked to synchronize.  The built-in engines live in internal/step — the
// global single-rung leapfrog (step.Global) and the hierarchical
// block-timestep integrator (step.Block) — and a Simulation selects between
// them from Config.BlockSteps, or accepts a custom engine via WithStepper
// (the seam a future distributed block stepper slots into).
//
// Both Advance and Synchronize mutate the particle set and the clock in
// place and return the last force result of the call (nil when no solve was
// needed).
//
// CheckpointReady is part of the contract — not an optional extra — so a
// wrapper around an engine cannot silently drop the checkpoint gate: a
// stepper carrying per-particle state a single-epoch snapshot cannot
// represent (the block engine mid-block) must refuse, and WriteCheckpoint
// propagates the refusal.  Engines without such state return nil
// unconditionally.
type Stepper interface {
	Advance(f step.Forcer, p *particle.Set, clk *step.Clock, dlnA float64) (*core.Result, error)
	Synchronize(f step.Forcer, p *particle.Set, clk *step.Clock) (*core.Result, error)
	// CheckpointReady reports whether the stepper's integrator state
	// collapses to the single momentum epoch aMom (see WriteCheckpoint).
	CheckpointReady(aMom float64) error
	// Reset drops per-particle integrator history, as after installing a
	// new particle load.
	Reset()
}

// newStepper constructs the stepping engine a configuration describes.
func newStepper(s *Simulation) Stepper {
	cfg := s.Cfg
	if cfg.BlockSteps > 0 {
		sep := cfg.BoxSize / float64(cfg.NGrid)
		return step.NewBlock(s.Par, cfg.BoxSize, sep, cfg.BlockSteps, cfg.RungDisplacementFrac)
	}
	return step.NewGlobal(s.Par, cfg.BoxSize)
}
