package twohot

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// Cooperative cancellation: RunContext stops at a step boundary, leaving the
// simulation in exactly the state a shorter sequence of StepOnce calls would
// have produced — which is what makes "suspend" just cancel + checkpoint, and
// what the serving layer (internal/serve) builds its whole lifecycle on.

// TestRunContextCancelBeforeStart pins that a context canceled before Run
// starts touches nothing: no ICs generated, no steps taken.
func TestRunContextCancelBeforeStart(t *testing.T) {
	sim, err := New(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on a canceled context returned %v, want context.Canceled", err)
	}
	if sim.P != nil || sim.StepCount != 0 {
		t.Fatalf("canceled-before-start run mutated the simulation: P=%v steps=%d", sim.P != nil, sim.StepCount)
	}
}

// TestRunContextSuspendResumeBitIdentical is the suspend/resume contract: a
// run canceled at a step boundary, checkpointed, and continued by a fresh
// Simulation restored from that checkpoint finishes bit-identical to the
// uninterrupted run of the same configuration.
func TestRunContextSuspendResumeBitIdentical(t *testing.T) {
	cfg := checkpointConfig()

	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Run(); err != nil {
		t.Fatal(err)
	}

	// Suspended run: cancel from an observer after step 3 completes; the
	// cancellation lands on the step boundary, where the global stepper's
	// state is checkpoint-representable without a synchronize.
	suspended, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	suspended.AddObserver(ProgressObserver(func(step int, z float64) {
		if step == 3 {
			cancel(fmt.Errorf("suspend requested"))
		}
	}))
	err = suspended.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled in the chain", err)
	}
	if suspended.StepCount != 3 {
		t.Fatalf("canceled run stopped after %d steps, want 3 (cancel must land on the boundary)", suspended.StepCount)
	}
	path := filepath.Join(t.TempDir(), "suspend.sdf")
	if err := suspended.Stepper().CheckpointReady(suspended.AMom); err != nil {
		// Global stepping: the boundary state is representable as-is.
		t.Fatalf("step-boundary state not checkpoint-ready: %v", err)
	}
	if err := suspended.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	// Resume in a cold process stand-in: fresh Simulation, fresh solver.
	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := resumed.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	if resumed.StepCount != full.StepCount || resumed.A != full.A || resumed.AMom != full.AMom {
		t.Fatalf("resumed grid differs: steps %d/%d a %v/%v a_mom %v/%v",
			resumed.StepCount, full.StepCount, resumed.A, full.A, resumed.AMom, full.AMom)
	}
	for i := range full.P.Pos {
		if full.P.ID[i] != resumed.P.ID[i] {
			t.Fatalf("particle %d: IDs differ", i)
		}
		if full.P.Pos[i] != resumed.P.Pos[i] || full.P.Mom[i] != resumed.P.Mom[i] {
			t.Fatalf("particle %d: suspended+resumed trajectory is not bit-identical (%v/%v vs %v/%v)",
				i, full.P.Pos[i], full.P.Mom[i], resumed.P.Pos[i], resumed.P.Mom[i])
		}
	}
}
