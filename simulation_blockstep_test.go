package twohot

// Equivalence and physics suite for the hierarchical block-timestep
// integrator (Config.BlockSteps).
//
//   - A block-step run whose particles all land on rung 0 — either because
//     the hierarchy has a single level or because the displacement criterion
//     puts everyone there — must reproduce the global-step run BIT FOR BIT:
//     same positions, momenta and epochs after every step and after the
//     closing synchronization.
//   - A genuinely multi-rung run must stay physical (finite, periodic
//     positions), must actually occupy several rungs, must reuse clean
//     subtrees in its partial substeps, and must track the global-step run
//     to within the truncation error of the coarse rungs.

import (
	"math"
	"testing"

	"twohot/internal/step"
)

// blockState reaches into the block-timestep engine of a simulation for the
// per-particle integrator state (nil when the stepper is not a block engine
// or no block has run).
func blockState(s *Simulation) *step.State {
	if b, ok := s.Stepper().(*step.Block); ok {
		return b.State()
	}
	return nil
}

// blockConfig is smallConfig tuned so a handful of steps finishes quickly
// under -race while still exercising the periodic tree path.
func blockConfig() Config {
	cfg := smallConfig()
	cfg.ZInit = 19
	cfg.ZFinal = 9
	cfg.NSteps = 4
	return cfg
}

// runSim generates ICs and runs the configured number of steps.
func runSim(t *testing.T, cfg Config) *Simulation {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return sim
}

func assertBitIdentical(t *testing.T, name string, ref, got *Simulation) {
	t.Helper()
	if ref.A != got.A || ref.AMom != got.AMom || ref.StepCount != got.StepCount {
		t.Fatalf("%s: epochs differ: A %v/%v AMom %v/%v steps %d/%d",
			name, ref.A, got.A, ref.AMom, got.AMom, ref.StepCount, got.StepCount)
	}
	for i := range ref.P.Pos {
		if ref.P.Pos[i] != got.P.Pos[i] || ref.P.Mom[i] != got.P.Mom[i] {
			t.Fatalf("%s: particle %d differs:\n  pos %v vs %v\n  mom %v vs %v",
				name, i, ref.P.Pos[i], got.P.Pos[i], ref.P.Mom[i], got.P.Mom[i])
		}
	}
}

func TestBlockStepAllRungZeroMatchesGlobal(t *testing.T) {
	base := blockConfig()
	ref := runSim(t, base)

	// BlockSteps=1: a single-level hierarchy is definitionally one substep.
	single := base
	single.BlockSteps = 1
	assertBitIdentical(t, "blocksteps=1", ref, runSim(t, single))

	// BlockSteps=4 with a displacement limit so loose nobody leaves rung 0:
	// the multi-rung machinery must collapse to the global step.
	loose := base
	loose.BlockSteps = 4
	loose.RungDisplacementFrac = 1e12
	got := runSim(t, loose)
	if blockState(got) == nil {
		t.Fatal("block-step run kept no block state")
	}
	if blockState(got).MaxRung() != 0 {
		t.Fatalf("loose criterion still assigned rungs up to %d", blockState(got).MaxRung())
	}
	assertBitIdentical(t, "blocksteps=4/loose", ref, got)
}

func TestBlockStepMultiRung(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung integration is covered by the full run")
	}
	base := blockConfig()
	ref := runSim(t, base)

	cfg := base
	cfg.BlockSteps = 3
	// A displacement limit inside the IC velocity spread: most particles
	// stay on rung 0 (clean, reusable), the fast tail populates the finer
	// rungs — the regime the subsystem exists for.
	cfg.RungDisplacementFrac = 0.01
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateICs(); err != nil {
		t.Fatal(err)
	}
	aFinal := 1 / (1 + cfg.ZFinal)
	dlnA := math.Log(aFinal/sim.A) / float64(cfg.NSteps)

	reusedCells := 0
	prunedSubtrees := int64(0)
	for stp := 0; stp < cfg.NSteps; stp++ {
		if err := sim.StepOnce(dlnA); err != nil {
			t.Fatal(err)
		}
		// LastForce belongs to the block's final substep — a partial one
		// whenever several rungs are occupied, so it should have reused
		// clean subtrees and pruned inactive sink trees.
		reusedCells += sim.LastForce.Build.ReusedCells
		prunedSubtrees += sim.LastForce.Traversal.PrunedInactive
	}
	if err := sim.Synchronize(); err != nil {
		t.Fatal(err)
	}

	occupied := map[int8]bool{}
	for _, r := range blockState(sim).Rung {
		occupied[r] = true
	}
	if len(occupied) < 2 {
		t.Fatalf("displacement criterion produced a single rung (%v); tighten the test config", occupied)
	}
	if reusedCells == 0 {
		t.Error("no tree cells were reused across any partial substep")
	}
	if prunedSubtrees == 0 {
		t.Error("no sink subtrees were pruned in any partial substep")
	}

	// Physics: finite, in the box, and close to the global-step run.  The
	// frozen-source approximation perturbs at the truncation-error level of
	// the coarse rungs, so the comparison is a loose displacement bound in
	// units of the mean interparticle separation.
	sep := cfg.BoxSize / float64(cfg.NGrid)
	maxDev := 0.0
	for i, p := range sim.P.Pos {
		for c := 0; c < 3; c++ {
			if math.IsNaN(p[c]) || p[c] < 0 || p[c] >= cfg.BoxSize {
				t.Fatalf("particle %d left the box: %v", i, p)
			}
		}
		d := p.Sub(ref.P.Pos[i])
		for c := 0; c < 3; c++ {
			// Periodic minimum-image distance.
			if d[c] > cfg.BoxSize/2 {
				d[c] -= cfg.BoxSize
			}
			if d[c] < -cfg.BoxSize/2 {
				d[c] += cfg.BoxSize
			}
		}
		if dev := d.Norm() / sep; dev > maxDev {
			maxDev = dev
		}
	}
	if maxDev > 0.5 {
		t.Errorf("block-step run deviates %.3f interparticle separations from the global run", maxDev)
	}
	t.Logf("rungs occupied: %d, reused cells: %d, pruned sink subtrees: %d, max deviation: %.4f sep",
		len(occupied), reusedCells, prunedSubtrees, maxDev)
}

// TestBlockStepCheckpointGate pins the checkpoint contract of block-stepped
// runs: a multi-rung state carries per-particle momentum epochs the snapshot
// format cannot represent, so WriteCheckpoint must refuse until Synchronize
// collapses them — and succeed afterwards.
func TestBlockStepCheckpointGate(t *testing.T) {
	cfg := blockConfig()
	cfg.NSteps = 1
	cfg.BlockSteps = 3
	cfg.RungDisplacementFrac = 0.01
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.GenerateICs(); err != nil {
		t.Fatal(err)
	}
	aFinal := 1 / (1 + cfg.ZFinal)
	dlnA := math.Log(aFinal/sim.A) / float64(cfg.NSteps)
	if err := sim.StepOnce(dlnA); err != nil {
		t.Fatal(err)
	}
	if blockState(sim).MaxRung() == 0 {
		t.Skip("criterion produced a single rung; gate not exercisable")
	}
	path := t.TempDir() + "/mid.sdf"
	if err := sim.WriteCheckpoint(path); err == nil {
		t.Fatal("WriteCheckpoint accepted a multi-rung unsynchronized state")
	}
	if err := sim.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := sim.WriteCheckpoint(path); err != nil {
		t.Fatalf("WriteCheckpoint after Synchronize: %v", err)
	}
}

// TestBlockStepValidation pins the configuration gates.
func TestBlockStepValidation(t *testing.T) {
	cfg := blockConfig()
	cfg.BlockSteps = 2
	cfg.Solver = SolverPM
	if err := cfg.Validate(); err == nil {
		t.Error("block_steps with the PM solver must not validate")
	}
	// The treepm composite routes its short range through the tree and
	// inherits active-subset support, so block stepping is allowed.
	cfg = blockConfig()
	cfg.BlockSteps = 2
	cfg.Solver = SolverTreePM
	if err := cfg.Validate(); err != nil {
		t.Errorf("block_steps with the treepm solver must validate: %v", err)
	}
	// The distributed tree carries activity masks across the rank exchange
	// now, so the block/ranks composition is valid.
	cfg = blockConfig()
	cfg.BlockSteps = 2
	cfg.Ranks = 2
	if err := cfg.Validate(); err != nil {
		t.Errorf("block_steps with ranks > 1 must validate: %v", err)
	}
	cfg = blockConfig()
	cfg.BlockSteps = 64
	if err := cfg.Validate(); err == nil {
		t.Error("block_steps beyond the rung cap must not validate")
	}
	cfg = blockConfig()
	cfg.RungDisplacementFrac = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative rung_displacement_frac must not validate")
	}
}
