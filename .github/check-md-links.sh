#!/bin/sh
# Checks that every relative link target in the repository's markdown files
# exists on disk.  External (http/https/mailto) links are skipped — CI must
# not depend on the network — and so are pure #fragment links.  No
# dependencies beyond POSIX sh + grep/sed, so it runs identically in CI and
# locally:  sh .github/check-md-links.sh
set -eu

cd "$(dirname "$0")/.."

status=0
for f in $(find . -name '*.md' -not -path './.git/*'); do
    dir=$(dirname "$f")
    # Extract the (target) of every [text](target), strip fragments/titles.
    for link in $(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' \
            -e 's/ ".*"$//' -e 's/#.*$//'); do
        case "$link" in
            ''|http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$dir/$link" ]; then
            echo "$f: broken link: $link" >&2
            status=1
        fi
    done
done
if [ "$status" -ne 0 ]; then
    echo "markdown link check failed" >&2
fi
exit $status
