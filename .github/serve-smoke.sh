#!/bin/sh
# Smoke test for cmd/2hot-serve: boot the server, drive a full
# submit -> run -> suspend -> resume -> complete cycle through the public API
# with plain curl, and shut the server down cleanly with SIGINT.  This is the
# black-box counterpart to the in-process tests in internal/serve — it proves
# the shipped binary serves the documented endpoints.
set -eu

ADDR=127.0.0.1:8037
BASE="http://$ADDR/api"
DATA=$(mktemp -d)
trap 'rm -rf "$DATA"; kill "$SERVER_PID" 2>/dev/null || true' EXIT

go build -o "$DATA/2hot-serve" ./cmd/2hot-serve
"$DATA/2hot-serve" -addr "$ADDR" -data "$DATA/root" -pool 1 &
SERVER_PID=$!

# Wait for the listener.
for i in $(seq 1 100); do
  if curl -sf "$BASE/stats" >/dev/null 2>&1; then break; fi
  [ "$i" = 100 ] && { echo "server never came up"; exit 1; }
  sleep 0.1
done

# Submit a tiny simulation (216 particles, 12 steps).
cat > "$DATA/cfg.json" <<'EOF'
{
  "name": "smoke", "n_grid": 6, "box_size": 48,
  "z_init": 19, "z_final": 9, "n_steps": 12,
  "err_tol": 1e-3, "ws": 1, "lattice_order": 1,
  "pm_grid": 12, "workers": 1, "seed": 7
}
EOF
ID=$(curl -sf -X POST -H 'X-Tenant: smoke' --data @"$DATA/cfg.json" "$BASE/sims" \
  | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "submit returned no id"; exit 1; }
echo "submitted $ID"

# Wait for some steps, then suspend.
for i in $(seq 1 300); do
  STEP=$(curl -sf "$BASE/sims/$ID/stats" | sed -n 's/.*"step": *\([0-9]*\).*/\1/p')
  [ "${STEP:-0}" -ge 2 ] && break
  sleep 0.1
done
[ "${STEP:-0}" -ge 2 ] || { echo "run never reached step 2"; exit 1; }
curl -sf -X POST "$BASE/sims/$ID/suspend" >/dev/null
for i in $(seq 1 300); do
  STATE=$(curl -sf "$BASE/sims/$ID" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')
  [ "$STATE" = suspended ] && break
  sleep 0.1
done
[ "$STATE" = suspended ] || { echo "suspend never landed (state=$STATE)"; exit 1; }
echo "suspended at step $(curl -sf "$BASE/sims/$ID/stats" | sed -n 's/.*"step": *\([0-9]*\).*/\1/p')"

# Resume and run to completion.
curl -sf -X POST "$BASE/sims/$ID/resume" >/dev/null
for i in $(seq 1 600); do
  STATE=$(curl -sf "$BASE/sims/$ID" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')
  [ "$STATE" = completed ] && break
  sleep 0.1
done
[ "$STATE" = completed ] || { echo "resumed run never completed (state=$STATE)"; exit 1; }

# The stats and listing endpoints reflect the finished run.
STATS=$(curl -sf "$BASE/sims/$ID/stats")
echo "$STATS" | grep -q '"step": *12' || { echo "bad final stats: $STATS"; exit 1; }
curl -sf "$BASE/sims?perPage=10" | grep -q "\"$ID\"" || { echo "listing lost the sim"; exit 1; }
test -f "$DATA/root/smoke/$ID/smoke-final.sdf" || { echo "final artifact missing"; exit 1; }
echo "completed: $STATS"

# Graceful shutdown: SIGINT must drain and exit zero.
kill -INT "$SERVER_PID"
wait "$SERVER_PID"
echo "serve smoke OK"
