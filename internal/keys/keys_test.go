package keys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twohot/internal/vec"
)

func TestMortonRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		c := Coords{x & (coordMax - 1), y & (coordMax - 1), z & (coordMax - 1)}
		k := FromCoords(c, Morton)
		return ToCoords(k, Morton) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		c := Coords{x & (coordMax - 1), y & (coordMax - 1), z & (coordMax - 1)}
		k := FromCoords(c, Hilbert)
		return ToCoords(k, Hilbert) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHilbertLocality(t *testing.T) {
	// Adjacent steps along the Hilbert curve must be adjacent lattice sites
	// (the defining property); sample a small 2^4 cube by brute force.
	const b = 4
	n := 1 << b
	byKey := map[Key]Coords{}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				c := Coords{uint32(x) << (MaxDepth - b), uint32(y) << (MaxDepth - b), uint32(z) << (MaxDepth - b)}
				byKey[FromCoords(c, Hilbert)] = c
			}
		}
	}
	if len(byKey) != n*n*n {
		t.Fatalf("hilbert keys are not unique: %d of %d", len(byKey), n*n*n)
	}
}

func TestBodyKeyLevelAndRange(t *testing.T) {
	c := Coords{123456, 654321, 999999}
	k := FromCoords(c, Morton)
	if k.Level() != MaxDepth {
		t.Fatalf("body key level = %d", k.Level())
	}
	if RootKey.Level() != 0 {
		t.Fatal("root level")
	}
	lo, hi := RootKey.BodyRange()
	if uint64(lo) != 1<<63 || uint64(hi) != ^uint64(0) {
		t.Errorf("root body range [%x, %x]", lo, hi)
	}
	// Every ancestor's range contains the body key.
	for level := 0; level <= MaxDepth; level++ {
		a := k.AncestorAt(level)
		alo, ahi := a.BodyRange()
		if k < alo || k > ahi {
			t.Errorf("ancestor at level %d does not cover the body key", level)
		}
		if !a.IsAncestorOf(k) {
			t.Errorf("IsAncestorOf false at level %d", level)
		}
	}
}

func TestParentChildOctant(t *testing.T) {
	k := RootKey
	for oct := 0; oct < 8; oct++ {
		child := k.Child(oct)
		if child.Parent() != k {
			t.Errorf("parent of child %d", oct)
		}
		if child.Octant() != oct {
			t.Errorf("octant of child %d = %d", oct, child.Octant())
		}
		if child.Level() != 1 {
			t.Errorf("child level")
		}
	}
}

func TestCellBoxConsistentWithQuantization(t *testing.T) {
	// A particle's body key must lie inside the box of every ancestor cell.
	rng := rand.New(rand.NewSource(4))
	root := vec.CubeBox(vec.V3{-3, 2, 10}, 7.5)
	for trial := 0; trial < 200; trial++ {
		p := vec.V3{
			root.Lo[0] + rng.Float64()*7.5,
			root.Lo[1] + rng.Float64()*7.5,
			root.Lo[2] + rng.Float64()*7.5,
		}
		k := FromPosition(p, root, Morton)
		for level := 0; level <= 8; level++ {
			cb := k.AncestorAt(level).CellBox(root)
			if !cb.ContainsClosed(p) {
				t.Fatalf("level %d cell box %v does not contain %v", level, cb, p)
			}
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	a := RootKey.Child(3).Child(5).Child(1)
	b := RootKey.Child(3).Child(5).Child(7)
	if got := CommonAncestor(a, b); got != RootKey.Child(3).Child(5) {
		t.Errorf("common ancestor: %v", got)
	}
	c := RootKey.Child(2)
	if got := CommonAncestor(a, c); got != RootKey {
		t.Errorf("common ancestor across octants: %v", got)
	}
}

func TestHashDistribution(t *testing.T) {
	// The key hash should not collide trivially for sequential cell keys.
	seen := map[uint64]bool{}
	k := RootKey
	count := 0
	var walk func(Key, int)
	walk = func(key Key, depth int) {
		if depth == 0 {
			return
		}
		h := key.Hash()
		if seen[h] {
			t.Fatalf("hash collision at %x", uint64(key))
		}
		seen[h] = true
		count++
		for o := 0; o < 8; o++ {
			walk(key.Child(o), depth-1)
		}
	}
	walk(k, 4)
	if count < 500 {
		t.Fatalf("walked too few keys: %d", count)
	}
}

func TestKeysSortLikePositionsAlongCurve(t *testing.T) {
	// Keys of positions in the same octant share the level-1 prefix.
	root := vec.UnitBox()
	p1 := vec.V3{0.1, 0.1, 0.1}
	p2 := vec.V3{0.2, 0.3, 0.4}
	p3 := vec.V3{0.9, 0.8, 0.9}
	k1 := FromPosition(p1, root, Morton).AncestorAt(1)
	k2 := FromPosition(p2, root, Morton).AncestorAt(1)
	k3 := FromPosition(p3, root, Morton).AncestorAt(1)
	if k1 != k2 {
		t.Error("nearby points should share the level-1 cell")
	}
	if k1 == k3 {
		t.Error("distant points should not share the level-1 cell")
	}
}
