// Package keys implements the space-filling-curve key machinery at the heart
// of the hashed oct-tree (HOT) method of Warren & Salmon.  Particle positions
// are mapped to 63-bit keys by bit interleaving (Morton order) or by the
// Hilbert curve; cell keys are prefixes of body keys with a leading
// placeholder bit, so that the parent of a cell key is obtained by a 3-bit
// right shift.  The keys serve three purposes, exactly as in the paper:
//
//  1. they define the domain decomposition (a parallel sort of keys),
//  2. they name cells in the hashed oct-tree (the hash-table key),
//  3. they order particles for memory-hierarchy friendly updates.
package keys

import (
	"math/bits"

	"twohot/internal/vec"
)

// Key is a hashed oct-tree key: a placeholder bit followed by up to
// 3*MaxDepth interleaved coordinate bits.
type Key uint64

// MaxDepth is the number of key bits per dimension (21 bits x 3 dims + 1
// placeholder bit = 64 bits), matching the HOT layout.
const MaxDepth = 21

// RootKey is the key of the root cell (the placeholder bit alone).
const RootKey Key = 1

// InvalidKey is a sentinel that is never a valid key (no placeholder bit).
const InvalidKey Key = 0

// coordMax is the number of cells per dimension at the deepest level.
const coordMax = 1 << MaxDepth

// Curve selects the space-filling curve used for domain decomposition.
type Curve int

const (
	// Morton interleaves coordinate bits directly (Z-order).
	Morton Curve = iota
	// Hilbert applies the Hilbert transformation before interleaving,
	// which improves domain compactness.
	Hilbert
)

func (c Curve) String() string {
	switch c {
	case Morton:
		return "morton"
	case Hilbert:
		return "hilbert"
	default:
		return "unknown"
	}
}

// Coords are integer lattice coordinates at the deepest level, in [0, 2^21).
type Coords [3]uint32

// Quantize maps a position inside box to lattice coordinates.  Positions on
// the upper boundary are clamped into the box.
func Quantize(p vec.V3, box vec.Box) Coords {
	var c Coords
	size := box.Size()
	for i := 0; i < 3; i++ {
		f := (p[i] - box.Lo[i]) / size[i]
		if f < 0 {
			f = 0
		}
		v := int64(f * coordMax)
		if v >= coordMax {
			v = coordMax - 1
		}
		if v < 0 {
			v = 0
		}
		c[i] = uint32(v)
	}
	return c
}

// Unquantize returns the position of the lattice cell center inside box.
func Unquantize(c Coords, box vec.Box) vec.V3 {
	size := box.Size()
	var p vec.V3
	for i := 0; i < 3; i++ {
		p[i] = box.Lo[i] + (float64(c[i])+0.5)/coordMax*size[i]
	}
	return p
}

// spread3 spreads the low 21 bits of x so that there are two zero bits
// between each original bit.
func spread3(x uint32) uint64 {
	v := uint64(x) & 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact3 is the inverse of spread3.
func compact3(v uint64) uint32 {
	v &= 0x1249249249249249
	v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3
	v = (v ^ (v >> 4)) & 0x100f00f00f00f00f
	v = (v ^ (v >> 8)) & 0x1f0000ff0000ff
	v = (v ^ (v >> 16)) & 0x1f00000000ffff
	v = (v ^ (v >> 32)) & 0x1fffff
	return uint32(v)
}

// FromCoords builds a body key (deepest level) from lattice coordinates using
// the given curve.
func FromCoords(c Coords, curve Curve) Key {
	if curve == Hilbert {
		c = AxesToTranspose(c, MaxDepth)
	}
	k := spread3(c[0])<<2 | spread3(c[1])<<1 | spread3(c[2])
	return Key(k) | Key(1)<<(3*MaxDepth)
}

// ToCoords recovers lattice coordinates from a body key.
func ToCoords(k Key, curve Curve) Coords {
	v := uint64(k) &^ (uint64(1) << (3 * MaxDepth))
	c := Coords{compact3(v >> 2), compact3(v >> 1), compact3(v)}
	if curve == Hilbert {
		c = TransposeToAxes(c, MaxDepth)
	}
	return c
}

// FromPosition maps a position inside box to a body key.
func FromPosition(p vec.V3, box vec.Box, curve Curve) Key {
	return FromCoords(Quantize(p, box), curve)
}

// ToPosition maps a body key back to the center of its deepest-level cell.
func ToPosition(k Key, box vec.Box, curve Curve) vec.V3 {
	return Unquantize(ToCoords(k, curve), box)
}

// Level returns the tree level of a cell key: 0 for the root, MaxDepth for a
// body key.
func (k Key) Level() int {
	if k == 0 {
		return -1
	}
	return (63 - bits.LeadingZeros64(uint64(k))) / 3
}

// Parent returns the key of the parent cell.
func (k Key) Parent() Key { return k >> 3 }

// Child returns the key of child octant o (0..7).
func (k Key) Child(o int) Key { return k<<3 | Key(o&7) }

// Octant returns which child of its parent this key is.
func (k Key) Octant() int { return int(k & 7) }

// AncestorAt returns the ancestor of k at the given level.  It panics if
// level exceeds the key's own level.
func (k Key) AncestorAt(level int) Key {
	l := k.Level()
	if level > l {
		panic("keys: AncestorAt level deeper than key")
	}
	return k >> uint(3*(l-level))
}

// IsAncestorOf reports whether k is an ancestor of (or equal to) other.
func (k Key) IsAncestorOf(other Key) bool {
	lk, lo := k.Level(), other.Level()
	if lk > lo {
		return false
	}
	return other>>uint(3*(lo-lk)) == k
}

// BodyRange returns the closed range [lo, hi] of body keys covered by cell
// key k.  (An inclusive upper bound avoids overflowing the 64-bit key space
// for the root cell's last octant.)
func (k Key) BodyRange() (lo, hi Key) {
	shift := uint(3 * (MaxDepth - k.Level()))
	lo = k << shift
	hi = lo + (Key(1)<<shift - 1)
	return lo, hi
}

// CellBox returns the spatial region of cell key k inside the root box,
// assuming Morton ordering of the cell hierarchy.  (The Hilbert curve is only
// used for ordering bodies in the domain decomposition; the oct-tree cells
// themselves are always the regular octant hierarchy.)
func (k Key) CellBox(root vec.Box) vec.Box {
	level := k.Level()
	v := uint64(k) &^ (uint64(1) << (3 * level))
	cx := uint32(compact3(v >> 2))
	cy := uint32(compact3(v >> 1))
	cz := uint32(compact3(v))
	n := float64(uint64(1) << uint(level))
	size := root.Size()
	lo := vec.V3{
		root.Lo[0] + float64(cx)/n*size[0],
		root.Lo[1] + float64(cy)/n*size[1],
		root.Lo[2] + float64(cz)/n*size[2],
	}
	hi := vec.V3{
		lo[0] + size[0]/n,
		lo[1] + size[1]/n,
		lo[2] + size[2]/n,
	}
	return vec.Box{Lo: lo, Hi: hi}
}

// CellKeyForBox returns the Morton cell key at the given level containing
// position p.
func CellKeyForBox(p vec.V3, root vec.Box, level int) Key {
	body := FromPosition(p, root, Morton)
	return body.AncestorAt(level)
}

// CommonAncestor returns the deepest cell key that is an ancestor of both a
// and b (both must be valid keys).
func CommonAncestor(a, b Key) Key {
	la, lb := a.Level(), b.Level()
	if la > lb {
		a = a.AncestorAt(lb)
		la = lb
	} else if lb > la {
		b = b.AncestorAt(la)
	}
	for a != b {
		a >>= 3
		b >>= 3
	}
	return a
}

// Hash mixes a key into a 64-bit hash value (splitmix64 finalizer).  The
// hashed oct-tree uses this to index its open-addressing cell table.
func (k Key) Hash() uint64 {
	z := uint64(k)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// AxesToTranspose converts lattice coordinates into the "transpose" form of
// the Hilbert index (Skilling 2004).  b is the number of bits per dimension.
func AxesToTranspose(x Coords, b int) Coords {
	m := uint32(1) << (b - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if x[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		x[i] ^= t
	}
	return x
}

// TransposeToAxes is the inverse of AxesToTranspose.
func TransposeToAxes(x Coords, b int) Coords {
	n := uint32(2) << (b - 1)
	// Gray decode by H ^ (H/2).
	t := x[2] >> 1
	for i := 2; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := 2; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	return x
}
