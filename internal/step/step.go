package step

import (
	"math"
	"math/bits"
)

// MaxRungs caps the rung hierarchy (Config.BlockSteps): 16 levels span a
// factor 2^15 between the coarsest and the finest step, far beyond any
// dynamic range a single block step should bridge.
const MaxRungs = 16

// RungFor returns the smallest rung r in [0, maxRung] whose step base/2^r
// does not exceed maxStep — the paper's policy of restricting per-particle
// timestep changes to exact factors of two, applied hierarchically.  A
// non-positive maxStep lands on maxRung; an infinite one (a particle at
// rest) on rung 0.
func RungFor(base, maxStep float64, maxRung int) int {
	r := 0
	s := base
	for r < maxRung && s > maxStep {
		s /= 2
		r++
	}
	return r
}

// Schedule describes the substep ladder of one block step whose finest
// occupied rung is MaxRung: the block is divided into 2^MaxRung substeps,
// and rung r steps once every 2^(MaxRung-r) of them.  All rungs are active
// at substep 0, which is where rung reassignment is allowed — every
// particle's position sits at the block-start epoch there.
type Schedule struct{ MaxRung int }

// Substeps returns the number of substeps in the block.
func (s Schedule) Substeps() int { return 1 << s.MaxRung }

// Span returns how many substeps one step of rung r covers.
func (s Schedule) Span(r int) int { return 1 << (s.MaxRung - r) }

// LowestActive returns the coarsest rung active at substep k: rung r is
// active iff k is a multiple of Span(r), i.e. iff r >= LowestActive(k).
func (s Schedule) LowestActive(k int) int {
	if k == 0 {
		return 0
	}
	r := s.MaxRung - bits.TrailingZeros(uint(k))
	if r < 0 {
		r = 0
	}
	return r
}

// Active reports whether rung r steps at substep k.
func (s Schedule) Active(r, k int) bool { return r >= s.LowestActive(k) }

// State is the per-particle integrator state a block-stepped run carries
// between substeps: the rung assignment of the current block, each
// particle's momentum epoch (particles on different rungs trail their
// positions by different half-steps, and a particle that changes rung keeps
// its old epoch until its next kick bridges the gap — exactly how the global
// leapfrog primes itself), the active mask of the current substep, and the
// set of particles drifted since the last force solve (the dirty set of the
// next incremental tree rebuild).
type State struct {
	Rung   []int8
	AMom   []float64
	Active []bool
	// Moved marks the particles whose positions changed since the most
	// recent force solve; it is only meaningful when MovedValid is set
	// (false right after construction, when no solve has seen the current
	// positions yet).
	Moved      []bool
	MovedValid bool
}

// NewState returns a state for n particles, all on rung 0 with their momenta
// at epoch aMom.
func NewState(n int, aMom float64) *State {
	st := &State{
		Rung:   make([]int8, n),
		AMom:   make([]float64, n),
		Active: make([]bool, n),
		Moved:  make([]bool, n),
	}
	for i := range st.AMom {
		st.AMom[i] = aMom
	}
	return st
}

// MaxRung returns the finest rung currently assigned (0 for an empty state).
func (st *State) MaxRung() int {
	r := int8(0)
	for _, v := range st.Rung {
		if v > r {
			r = v
		}
	}
	return int(r)
}

// FactorCache memoizes a two-point integral factor (a cosmological kick or
// drift factor) for one fixed target epoch over the distinct "from" epochs
// appearing in a substep.  Particles sharing a rung history share a momentum
// epoch bit for bit, so a substep touches only a handful of distinct keys no
// matter how many particles it kicks — and when every particle shares one
// epoch (a single-rung run), the factor is computed by exactly one call with
// exactly the arguments the global integrator would pass, which is what
// keeps the all-rung-0 block step bit-identical to the global step.
type FactorCache struct {
	f  func(a1, a2 float64) float64
	to float64
	m  map[uint64]float64
}

// NewFactorCache wraps the factor integral f(a1, a2).
func NewFactorCache(f func(a1, a2 float64) float64) *FactorCache {
	return &FactorCache{f: f, m: make(map[uint64]float64)}
}

// SetTarget fixes the target epoch and invalidates all memoized factors.
func (c *FactorCache) SetTarget(to float64) {
	c.to = to
	clear(c.m)
}

// At returns f(from, target), memoized on the bit pattern of from.
func (c *FactorCache) At(from float64) float64 {
	k := math.Float64bits(from)
	if v, ok := c.m[k]; ok {
		return v
	}
	v := c.f(from, c.to)
	c.m[k] = v
	return v
}
