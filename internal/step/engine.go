package step

import (
	"fmt"
	"math"

	"twohot/internal/core"
	"twohot/internal/cosmo"
	"twohot/internal/particle"
	"twohot/internal/vec"
)

// Forcer is the solver contract the integrator engines drive: a full solve
// and an active-subset solve over a particle set.  It is the internal face of
// the root package's ForceSolver interface (which satisfies it structurally),
// so the engines never know which backend — tree, TreePM, mesh or direct
// summation — produces the accelerations.
//
// Both methods return results in the set's particle order and leave the set's
// Acc/Pot/Work arrays to the caller: the engine decides which slots of a
// subset solve are written back (Scatter).
type Forcer interface {
	// Accelerations computes forces for every particle of p.
	Accelerations(p *particle.Set) (*core.Result, error)
	// ActiveForces restricts the sinks to the active mask (nil = all) and
	// passes the moved mask (nil = unknown) to incremental backends.
	ActiveForces(p *particle.Set, active, moved []bool) (*core.Result, error)
}

// Clock is the integrator-owned time state of a simulation: the scale factor
// of the positions and the scale factor of the canonical momenta (half a
// step behind once the leapfrog is primed).  Engines mutate it in place; the
// owner (the root Simulation) copies it back after each call.
type Clock struct {
	A    float64
	AMom float64
}

// Scatter writes a solve's results back into the particle set: every slot
// for a full solve (active == nil), only the active slots otherwise — the
// slots of inactive particles are unspecified in a subset solve's Result and
// must keep their previous values.  Nil Result arrays (backends without
// potential or work support) leave the corresponding particle arrays
// untouched.
func Scatter(p *particle.Set, res *core.Result, active []bool) {
	if active == nil {
		copy(p.Acc, res.Acc)
		if res.Pot != nil {
			copy(p.Pot, res.Pot)
		}
		if res.Work != nil {
			copy(p.Work, res.Work)
		}
		return
	}
	for i, a := range active {
		if !a {
			continue
		}
		p.Acc[i] = res.Acc[i]
		if res.Pot != nil {
			p.Pot[i] = res.Pot[i]
		}
		if res.Work != nil {
			p.Work[i] = res.Work[i]
		}
	}
}

// Global is the single-rung stepping engine: the symplectic comoving
// leapfrog of Quinn et al. (1997), kicking every momentum from its current
// epoch to the half step and drifting every position across the full step.
// The first Advance on a fresh Clock (AMom == A) primes the half-step offset.
type Global struct {
	Par     cosmo.Params
	BoxSize float64
}

// NewGlobal returns a global-leapfrog engine for the given background
// cosmology and periodic box.
func NewGlobal(par cosmo.Params, boxSize float64) *Global {
	return &Global{Par: par, BoxSize: boxSize}
}

// Advance performs one kick-drift step of size dlnA and returns the step's
// force result.
func (g *Global) Advance(f Forcer, p *particle.Set, clk *Clock, dlnA float64) (*core.Result, error) {
	aNow := clk.A
	aNext := aNow * math.Exp(dlnA)
	if aNext > 1 {
		aNext = 1
	}
	aHalfNext := math.Sqrt(aNow * aNext)

	res, err := f.Accelerations(p)
	if err != nil {
		return nil, err
	}
	Scatter(p, res, nil)

	// Kick the momenta from wherever they currently are (a_init on the very
	// first step, the previous half step afterwards) to the next half step.
	kick := g.Par.KickFactor(clk.AMom, aHalfNext)
	for i := range p.Mom {
		p.Mom[i] = p.Mom[i].Add(res.Acc[i].Scale(kick))
	}
	clk.AMom = aHalfNext

	// Drift the positions across the full step using the half-step momenta.
	drift := g.Par.DriftFactor(aNow, aNext)
	l := g.BoxSize
	for i := range p.Pos {
		p.Pos[i] = vec.WrapV(p.Pos[i].Add(p.Mom[i].Scale(drift)), l)
	}
	clk.A = aNext
	return res, nil
}

// Synchronize closes the leapfrog by kicking the momenta from the half step
// up to the position epoch.  Returns (nil, nil) when the clock is already
// synchronized.
func (g *Global) Synchronize(f Forcer, p *particle.Set, clk *Clock) (*core.Result, error) {
	if clk.AMom == clk.A {
		return nil, nil
	}
	res, err := f.Accelerations(p)
	if err != nil {
		return nil, err
	}
	Scatter(p, res, nil)
	kick := g.Par.KickFactor(clk.AMom, clk.A)
	for i := range p.Mom {
		p.Mom[i] = p.Mom[i].Add(res.Acc[i].Scale(kick))
	}
	clk.AMom = clk.A
	return res, nil
}

// Reset implements the engine contract; the global leapfrog carries no
// per-particle state.
func (g *Global) Reset() {}

// CheckpointReady implements the engine contract: the global leapfrog's
// state is fully described by the clock, so a snapshot can always represent
// it.
func (g *Global) CheckpointReady(aMom float64) error { return nil }

// DefaultWorkDecay is the rate at which Block pulls the stale work weights of
// long-inactive particles back toward the mean at the end of each block (see
// decayStaleWork).
const DefaultWorkDecay = 0.5

// Block is the hierarchical block-timestep engine: each Advance runs one
// block of 2^maxUsedRung substeps, with rungs assigned at the block start
// from the per-particle displacement criterion, and each substep solving
// forces only for the sinks on its active rungs while the inactive particles
// stay frozen (which is what lets the tree rebuild and the traversal reuse
// their subtrees bit-identically).  A block whose particles all land on
// rung 0 reproduces Global's arithmetic bit for bit.
//
// The per-particle integrator state (rung, momentum epoch, activity flags)
// lives in the particle set itself (Set.Rung/MomEpoch/Flags), so a Forcer
// that regroups particles — the distributed solvers exchange them between
// ranks mid-substep — carries the state along with the particle.  The engine
// re-derives its activity masks from the set after every solve; the kick and
// drift arithmetic depends only on each particle's own state and the block's
// scalar epochs, so a regrouped order changes no result bit.
type Block struct {
	Par     cosmo.Params
	BoxSize float64

	// Levels is the number of rung levels (Config.BlockSteps); rungs range
	// over [0, Levels-1].
	Levels int
	// DisplacementFrac is the per-particle rung criterion: one rung-r step
	// may move a particle at most this fraction of Sep.  0 means 0.1.
	DisplacementFrac float64
	// Sep is the mean interparticle separation the criterion is measured
	// against.
	Sep float64
	// WorkDecay is the rate of the between-block work-weight decay
	// (decayStaleWork); 0 disables it.  NewBlock sets DefaultWorkDecay.
	WorkDecay float64

	// AgreeRungs, when set, merges the per-rank rung histograms at the start
	// of each block so every rank derives the same substep schedule: it
	// receives this rank's histogram (length Levels, index = rung) and must
	// return the element-wise global sum — one allgather+sum in a distributed
	// run, identity when nil.  The agreed histogram also becomes
	// RungHistogram's value, so observers see global occupancy on every rank.
	AgreeRungs func(local []int) ([]int, error)

	p          *particle.Set
	primed     bool
	movedValid bool
	hist       []int
	active     []bool
	moved      []bool
}

// NewBlock returns a block-timestep engine with levels rung levels and the
// given displacement criterion (frac 0 = the 0.1 default), measured against
// the mean interparticle separation sep.
func NewBlock(par cosmo.Params, boxSize, sep float64, levels int, frac float64) *Block {
	return &Block{
		Par: par, BoxSize: boxSize,
		Levels: levels, DisplacementFrac: frac, Sep: sep,
		WorkDecay: DefaultWorkDecay,
	}
}

// State exposes the per-particle integrator state of the current block (nil
// until the first Advance) for diagnostics and tests.  Rung and AMom alias
// the particle set's own Rung/MomEpoch arrays; the activity masks are decoded
// copies of the set's flag bits.
func (b *Block) State() *State {
	if !b.primed || b.p == nil {
		return nil
	}
	n := b.p.Len()
	st := &State{
		Rung:       b.p.Rung,
		AMom:       b.p.MomEpoch,
		Active:     make([]bool, n),
		Moved:      make([]bool, n),
		MovedValid: b.movedValid,
	}
	for i, fl := range b.p.Flags {
		st.Active[i] = fl&particle.FlagActive != 0
		st.Moved[i] = fl&particle.FlagMoved != 0
	}
	return st
}

// RungHistogram returns the particle count per timestep rung of the current
// block (index = rung level), or nil when no block has run yet.  With an
// AgreeRungs hook installed the histogram is the agreed global one, identical
// on every rank; otherwise it counts the local particles.
func (b *Block) RungHistogram() []int {
	if !b.primed || b.hist == nil {
		return nil
	}
	return append([]int(nil), b.hist...)
}

// Reset drops the per-particle integrator history, as after installing a new
// particle load.  The next Advance re-primes every particle's momentum epoch
// from the clock.
func (b *Block) Reset() {
	b.p = nil
	b.primed = false
	b.movedValid = false
	b.hist = nil
}

// CheckpointReady implements the engine contract: a multi-rung block leaves
// every particle's momentum at its own rung's half step, which a
// single-epoch snapshot cannot represent.
func (b *Block) CheckpointReady(aMom float64) error {
	if !b.primed || b.p == nil {
		return nil
	}
	for _, am := range b.p.MomEpoch {
		if am != aMom {
			return fmt.Errorf("step: block-stepped momenta sit at per-particle epochs; call Synchronize before writing a checkpoint")
		}
	}
	return nil
}

// resizeBool returns s with length n, reallocating only on growth.
func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Advance performs one hierarchical block step of total size dlnA.
func (b *Block) Advance(f Forcer, p *particle.Set, clk *Clock, dlnA float64) (*core.Result, error) {
	b.p = p
	if !b.primed {
		for i := range p.MomEpoch {
			p.MomEpoch[i] = clk.AMom
		}
		b.movedValid = false
		b.primed = true
	}

	// Rung assignment from the current momenta: one rung-r step may move a
	// particle at most frac of the mean interparticle separation (the
	// per-particle form of the displacement limit).
	maxRung := b.Levels - 1
	frac := b.DisplacementFrac
	if frac == 0 {
		frac = 0.1
	}
	limit := frac * b.Sep * clk.A * clk.A * b.Par.Hubble(clk.A)
	for i := range p.Rung {
		v := p.Mom[i].Norm()
		if v == 0 {
			p.Rung[i] = 0
			continue
		}
		p.Rung[i] = int8(RungFor(dlnA, limit/v, maxRung))
	}

	// Rung agreement: every rank must derive the same substep schedule, so
	// the block's depth comes from the (agreed) histogram, not the local max.
	local := make([]int, b.Levels)
	for _, r := range p.Rung {
		local[r]++
	}
	agreed := local
	if b.AgreeRungs != nil {
		var err error
		if agreed, err = b.AgreeRungs(local); err != nil {
			return nil, err
		}
	}
	maxUsed := 0
	for r, c := range agreed {
		if c > 0 {
			maxUsed = r
		}
	}
	b.hist = append([]int(nil), agreed[:maxUsed+1]...)

	sched := Schedule{MaxRung: maxUsed}
	nSub := sched.Substeps()
	h := dlnA / float64(nSub)
	nRungs := sched.MaxRung + 1

	// Per-rung epochs: every rung starts the block at clk.A and advances by
	// its own span, so all rungs land on the block boundary together.
	aPos := make([]float64, nRungs)
	aNext := make([]float64, nRungs)
	aHalf := make([]float64, nRungs)
	drift := make([]float64, nRungs)
	kicks := make([]*FactorCache, nRungs)
	for r := range aPos {
		aPos[r] = clk.A
		kicks[r] = NewFactorCache(b.Par.KickFactor)
	}

	var last *core.Result
	aMomEnd := clk.AMom
	for k := 0; k < nSub; k++ {
		rMin := sched.LowestActive(k)
		n := p.Len()
		b.active = resizeBool(b.active, n)
		nActive := 0
		for i, r := range p.Rung {
			a := int(r) >= rMin
			b.active[i] = a
			if a {
				nActive++
				p.Flags[i] |= particle.FlagActive
			} else {
				p.Flags[i] &^= particle.FlagActive
			}
		}
		var moved []bool
		if b.movedValid {
			b.moved = resizeBool(b.moved, n)
			for i, fl := range p.Flags {
				b.moved[i] = fl&particle.FlagMoved != 0
			}
			moved = b.moved
		}

		var active []bool
		if nActive < n {
			active = b.active
		}
		// A fully active substep passes a nil mask: it is identical to the
		// global force path (the moved set still prunes the tree rebuild).
		res, err := f.ActiveForces(p, active, moved)
		if err != nil {
			return nil, err
		}
		// A distributed forcer may have regrouped the set (particles shipped
		// between ranks travel with their Rung/MomEpoch/Flags); rebuild the
		// activity mask from the set before touching any particle.
		n = p.Len()
		b.active = resizeBool(b.active, n)
		nActive = 0
		for i, r := range p.Rung {
			a := int(r) >= rMin
			b.active[i] = a
			if a {
				nActive++
			}
		}
		active = nil
		if nActive < n {
			active = b.active
		}
		Scatter(p, res, active)
		last = res

		for r := rMin; r < nRungs; r++ {
			span := sched.Span(r)
			an := aPos[r] * math.Exp(float64(span)*h)
			if an > 1 {
				an = 1
			}
			aNext[r] = an
			aHalf[r] = math.Sqrt(aPos[r] * an)
			drift[r] = b.Par.DriftFactor(aPos[r], an)
			kicks[r].SetTarget(aHalf[r])
		}
		if k == 0 {
			// Rung 0's half step is the block-level momentum epoch the
			// global bookkeeping (and checkpoints) track.
			aMomEnd = aHalf[0]
		}

		// Kick, then drift, each over the active particles in index order —
		// the exact update order of the global step.  Each update reads only
		// the particle's own state and the per-rung scalars, so the bits are
		// independent of the set's ordering.
		for i := range p.Mom {
			if !b.active[i] {
				continue
			}
			r := int(p.Rung[i])
			p.Mom[i] = p.Mom[i].Add(p.Acc[i].Scale(kicks[r].At(p.MomEpoch[i])))
			p.MomEpoch[i] = aHalf[r]
		}
		l := b.BoxSize
		for i := range p.Pos {
			if !b.active[i] {
				continue
			}
			p.Pos[i] = vec.WrapV(p.Pos[i].Add(p.Mom[i].Scale(drift[int(p.Rung[i])])), l)
		}
		for i := range p.Flags {
			if b.active[i] {
				p.Flags[i] |= particle.FlagMoved
			} else {
				p.Flags[i] &^= particle.FlagMoved
			}
		}
		b.movedValid = true
		for r := rMin; r < nRungs; r++ {
			aPos[r] = aNext[r]
		}
	}
	clk.A = aPos[0]
	clk.AMom = aMomEnd
	b.decayStaleWork(p, sched)
	return last, nil
}

// decayStaleWork pulls the work weights of particles that were inactive for
// most of the block back toward the mean.  A rung-r particle's weight was
// last refreshed Span(r) substeps before the block boundary, so coarse-rung
// weights describe a progressively older force solve; left alone they make
// domain.SplitWeighted chase hot spots that have since cooled.  The blend
// factor WorkDecay*(1 - 1/Span(r)) grows with staleness and vanishes for the
// finest rung and for single-rung blocks — weights steer only the worker
// shards, never a result bit, so the all-rung-0 bit-identity with Global is
// untouched (and so is every force of a multi-rung block).
func (b *Block) decayStaleWork(p *particle.Set, sched Schedule) {
	if b.WorkDecay == 0 || sched.MaxRung == 0 || p.Len() == 0 {
		return
	}
	mean := 0.0
	for _, w := range p.Work {
		mean += w
	}
	mean /= float64(p.Len())
	for i := range p.Work {
		span := sched.Span(int(p.Rung[i]))
		if span <= 1 {
			continue
		}
		alpha := b.WorkDecay * (1 - 1/float64(span))
		p.Work[i] += alpha * (mean - p.Work[i])
	}
}

// Synchronize closes the leapfrog of a block-stepped run: positions all sit
// at the block boundary clk.A, and each particle's momentum is kicked from
// its own epoch up to it.  When every particle shares one epoch the factor
// cache degenerates to the exact arithmetic of the global Synchronize, bit
// for bit.  Before the first block (no per-particle state yet) the global
// closing kick applies.
func (b *Block) Synchronize(f Forcer, p *particle.Set, clk *Clock) (*core.Result, error) {
	if !b.primed || b.p == nil {
		return (&Global{Par: b.Par, BoxSize: b.BoxSize}).Synchronize(f, p, clk)
	}
	b.p = p
	synced := true
	for _, am := range p.MomEpoch {
		if am != clk.A {
			synced = false
			break
		}
	}
	if synced {
		clk.AMom = clk.A
		return nil, nil
	}
	var moved []bool
	if b.movedValid {
		b.moved = resizeBool(b.moved, p.Len())
		for i, fl := range p.Flags {
			b.moved[i] = fl&particle.FlagMoved != 0
		}
		moved = b.moved
	}
	res, err := f.ActiveForces(p, nil, moved)
	if err != nil {
		return nil, err
	}
	Scatter(p, res, nil)
	// The solve consumed the current positions; nothing has moved since.
	for i := range p.Flags {
		p.Flags[i] &^= particle.FlagMoved
	}
	b.movedValid = true

	cache := NewFactorCache(b.Par.KickFactor)
	cache.SetTarget(clk.A)
	for i := range p.Mom {
		p.Mom[i] = p.Mom[i].Add(res.Acc[i].Scale(cache.At(p.MomEpoch[i])))
		p.MomEpoch[i] = clk.A
	}
	clk.AMom = clk.A
	return res, nil
}
