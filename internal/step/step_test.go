package step

import (
	"math"
	"testing"
)

func TestRungFor(t *testing.T) {
	for _, tc := range []struct {
		base, maxStep float64
		maxRung, want int
	}{
		{1, 1, 4, 0},           // fits at the base step
		{1, 2, 4, 0},           // coarser than base still lands on rung 0
		{1, 0.5, 4, 1},         // exactly half: one halving
		{1, 0.26, 4, 2},        // between /4 and /2
		{1, 1e-9, 4, 4},        // clamped at maxRung
		{1, 0, 4, 4},           // non-positive limit: finest rung
		{1, math.Inf(1), 4, 0}, // particle at rest
		{1, 0.3, 0, 0},         // single-rung hierarchy
	} {
		if got := RungFor(tc.base, tc.maxStep, tc.maxRung); got != tc.want {
			t.Errorf("RungFor(%g, %g, %d) = %d, want %d",
				tc.base, tc.maxStep, tc.maxRung, got, tc.want)
		}
	}
	// NaN limits must not loop or land below rung 0.
	if got := RungFor(1, math.NaN(), 4); got != 0 {
		t.Errorf("NaN limit: got %d", got)
	}
}

// TestScheduleLadder checks the defining properties of the substep ladder:
// rung r is active exactly at multiples of its span, every rung is active at
// substep 0, and each rung takes exactly 2^r steps per block — so all
// position epochs align again at the block boundary.
func TestScheduleLadder(t *testing.T) {
	for R := 0; R <= 5; R++ {
		s := Schedule{MaxRung: R}
		if s.Substeps() != 1<<R {
			t.Fatalf("R=%d: substeps %d", R, s.Substeps())
		}
		steps := make([]int, R+1)
		for k := 0; k < s.Substeps(); k++ {
			lo := s.LowestActive(k)
			for r := 0; r <= R; r++ {
				active := s.Active(r, k)
				if active != (k%s.Span(r) == 0) {
					t.Fatalf("R=%d k=%d r=%d: Active=%v but span=%d", R, k, r, active, s.Span(r))
				}
				if active != (r >= lo) {
					t.Fatalf("R=%d k=%d r=%d: LowestActive=%d inconsistent", R, k, r, lo)
				}
				if active {
					steps[r]++
				}
			}
			if k == 0 && lo != 0 {
				t.Fatalf("R=%d: block start must activate every rung", R)
			}
		}
		for r := 0; r <= R; r++ {
			if steps[r] != 1<<r {
				t.Fatalf("R=%d rung %d stepped %d times, want %d", R, r, steps[r], 1<<r)
			}
		}
	}
}

func TestMaxRung(t *testing.T) {
	maxStep := []float64{2, 0.5, 0.1, math.Inf(1)}
	dst := make([]int8, len(maxStep))
	for i, ms := range maxStep {
		dst[i] = int8(RungFor(1, ms, 3))
	}
	want := []int8{0, 1, 3, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("rung[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	st := &State{Rung: dst}
	if st.MaxRung() != 3 {
		t.Errorf("MaxRung = %d, want 3", st.MaxRung())
	}
}

func TestFactorCache(t *testing.T) {
	calls := 0
	c := NewFactorCache(func(a1, a2 float64) float64 {
		calls++
		return a2 - a1
	})
	c.SetTarget(1.0)
	if v := c.At(0.25); v != 0.75 {
		t.Fatalf("At(0.25) = %g", v)
	}
	if v := c.At(0.25); v != 0.75 || calls != 1 {
		t.Fatalf("second At(0.25) = %g with %d calls", v, calls)
	}
	if v := c.At(0.5); v != 0.5 || calls != 2 {
		t.Fatalf("At(0.5) = %g with %d calls", v, calls)
	}
	// Retargeting must invalidate every memoized entry.
	c.SetTarget(2.0)
	if v := c.At(0.25); v != 1.75 || calls != 3 {
		t.Fatalf("after retarget: At(0.25) = %g with %d calls", v, calls)
	}
}

func TestNewState(t *testing.T) {
	st := NewState(3, 0.5)
	if st.MovedValid {
		t.Error("fresh state claims a valid moved set")
	}
	for i := range st.AMom {
		if st.AMom[i] != 0.5 || st.Rung[i] != 0 {
			t.Errorf("particle %d: amom %g rung %d", i, st.AMom[i], st.Rung[i])
		}
	}
}
