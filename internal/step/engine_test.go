package step

import (
	"math"
	"testing"

	"twohot/internal/core"
	"twohot/internal/cosmo"
	"twohot/internal/particle"
	"twohot/internal/vec"
)

// fakeForcer returns constant tiny accelerations and per-particle work equal
// to the particle index, recording every call's active mask.
type fakeForcer struct {
	calls   int
	actives [][]bool
}

func (f *fakeForcer) Accelerations(p *particle.Set) (*core.Result, error) {
	return f.ActiveForces(p, nil, nil)
}

func (f *fakeForcer) ActiveForces(p *particle.Set, active, moved []bool) (*core.Result, error) {
	f.calls++
	var cp []bool
	if active != nil {
		cp = append([]bool(nil), active...)
	}
	f.actives = append(f.actives, cp)
	n := p.Len()
	res := &core.Result{
		Acc:  make([]vec.V3, n),
		Pot:  make([]float64, n),
		Work: make([]float64, n),
	}
	for i := range res.Acc {
		res.Acc[i] = vec.V3{1e-9, 0, 0}
		res.Work[i] = float64(100 * (i + 1))
	}
	return res, nil
}

func testParams(t *testing.T) cosmo.Params {
	t.Helper()
	par, err := cosmo.ByName("planck2013")
	if err != nil {
		t.Fatal(err)
	}
	return par
}

// testSet builds n particles with momenta that put particle i on roughly
// rung i%levels under the given displacement criterion.
func testSet(n int) *particle.Set {
	set := particle.New(n)
	for i := 0; i < n; i++ {
		set.Append(
			vec.V3{float64(i) + 0.5, 0.5, 0.5},
			vec.V3{math.Pow(2, float64(i%4)) * 10, 0, 0},
			1, int64(i),
		)
	}
	return set
}

// TestBlockWorkDecay pins the rung-aware work-decay satellite: after a
// multi-rung block, the work weights of particles on coarse rungs (long
// inactive, stale weights) are pulled toward the mean by
// WorkDecay*(1-1/Span(r)), while finest-rung weights are untouched; with
// WorkDecay 0 or a single-rung block, no weight changes at all.
func TestBlockWorkDecay(t *testing.T) {
	par := testParams(t)
	const n = 32
	const dlnA = 0.05

	run := func(decay float64, frac float64, spread bool) (*particle.Set, *Block, *fakeForcer) {
		set := testSet(n)
		b := NewBlock(par, 1e6, 1.0, 4, frac)
		b.WorkDecay = decay
		clk := &Clock{A: 0.05, AMom: 0.05}
		if spread {
			// Momenta engineered so particle i lands exactly on rung i%4:
			// the criterion compares limit/|mom| against dlnA/2^r.
			limit := frac * b.Sep * clk.A * clk.A * par.Hubble(clk.A)
			for i := range set.Mom {
				k := float64(i % 4)
				set.Mom[i] = vec.V3{0.999 * limit * math.Pow(2, k) / dlnA, 0, 0}
			}
		}
		f := &fakeForcer{}
		if _, err := b.Advance(f, set, clk, dlnA); err != nil {
			t.Fatal(err)
		}
		return set, b, f
	}

	// Momenta spread over four rungs; the forcer's work output is 100*(i+1),
	// so the post-scatter weights are known exactly and the decay's pull is
	// directly checkable.
	set, b, f := run(0.5, 1.0, true)
	st := b.State()
	if st.MaxRung() == 0 {
		t.Fatalf("criterion produced a single rung; momenta spread %v", set.Mom[:4])
	}
	sched := Schedule{MaxRung: st.MaxRung()}
	if f.calls != sched.Substeps() {
		t.Fatalf("block ran %d solves, want %d", f.calls, sched.Substeps())
	}
	// Reference: the undecayed weights straight from the forcer.
	raw := make([]float64, n)
	mean := 0.0
	for i := range raw {
		raw[i] = float64(100 * (i + 1))
		mean += raw[i]
	}
	mean /= n
	decayedCoarse := false
	for i := 0; i < n; i++ {
		span := sched.Span(int(st.Rung[i]))
		want := raw[i]
		if span > 1 {
			alpha := 0.5 * (1 - 1/float64(span))
			want += alpha * (mean - want)
			if want != raw[i] {
				decayedCoarse = true
			}
		}
		if math.Abs(set.Work[i]-want) > 1e-12*math.Abs(want) {
			t.Fatalf("particle %d (rung %d, span %d): work %g, want %g", i, st.Rung[i], span, set.Work[i], want)
		}
	}
	if !decayedCoarse {
		t.Fatal("no coarse-rung weight was decayed")
	}

	// WorkDecay 0: weights stay exactly what the last scatter left.
	set0, b0, _ := run(0, 1.0, true)
	st0 := b0.State()
	if st0.MaxRung() == 0 {
		t.Fatal("criterion produced a single rung in the no-decay run")
	}
	for i := range raw {
		if set0.Work[i] != raw[i] {
			t.Fatalf("WorkDecay=0 changed particle %d work: %g vs %g", i, set0.Work[i], raw[i])
		}
	}

	// Single-rung block (loose criterion): decay must be a no-op even when
	// enabled — this is part of the all-rung-0 bit-identity contract.
	set1, b1, _ := run(0.5, 1e12, false)
	if b1.State().MaxRung() != 0 {
		t.Fatal("loose criterion still assigned rungs")
	}
	for i := range raw {
		if set1.Work[i] != raw[i] {
			t.Fatalf("single-rung decay changed particle %d work: %g vs %g", i, set1.Work[i], raw[i])
		}
	}
}

// TestBlockCheckpointGate pins CheckpointReady: ready before any block, not
// ready while per-particle epochs diverge, ready again once they collapse.
func TestBlockCheckpointGate(t *testing.T) {
	par := testParams(t)
	b := NewBlock(par, 1e6, 1.0, 4, 1e-11)
	if err := b.CheckpointReady(0.05); err != nil {
		t.Fatalf("fresh engine not checkpoint-ready: %v", err)
	}
	set := testSet(16)
	f := &fakeForcer{}
	clk := &Clock{A: 0.05, AMom: 0.05}
	if _, err := b.Advance(f, set, clk, 0.05); err != nil {
		t.Fatal(err)
	}
	if b.State().MaxRung() == 0 {
		t.Skip("criterion produced a single rung; gate not exercisable")
	}
	if err := b.CheckpointReady(clk.AMom); err == nil {
		t.Fatal("multi-rung state reported checkpoint-ready")
	}
	if _, err := b.Synchronize(f, set, clk); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckpointReady(clk.AMom); err != nil {
		t.Fatalf("synchronized state not checkpoint-ready: %v", err)
	}
}

// TestBlockRungHistogram checks the diagnostic surface observers consume.
func TestBlockRungHistogram(t *testing.T) {
	par := testParams(t)
	b := NewBlock(par, 1e6, 1.0, 4, 1e-11)
	if b.RungHistogram() != nil {
		t.Fatal("histogram before any block")
	}
	set := testSet(16)
	clk := &Clock{A: 0.05, AMom: 0.05}
	if _, err := b.Advance(&fakeForcer{}, set, clk, 0.05); err != nil {
		t.Fatal(err)
	}
	hist := b.RungHistogram()
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != set.Len() {
		t.Fatalf("histogram sums to %d, want %d", total, set.Len())
	}
	if len(hist) != b.State().MaxRung()+1 {
		t.Fatalf("histogram has %d rungs, want %d", len(hist), b.State().MaxRung()+1)
	}
}

// TestScatterSubset pins Scatter's contract: a subset scatter must leave
// inactive slots untouched and nil Result arrays must not clobber anything.
func TestScatterSubset(t *testing.T) {
	set := testSet(4)
	for i := range set.Work {
		set.Work[i] = float64(i)
		set.Pot[i] = float64(10 + i)
	}
	res := &core.Result{Acc: make([]vec.V3, 4)}
	for i := range res.Acc {
		res.Acc[i] = vec.V3{float64(i), 0, 0}
	}
	active := []bool{true, false, true, false}
	Scatter(set, res, active)
	for i := range active {
		if active[i] && set.Acc[i] != res.Acc[i] {
			t.Fatalf("active slot %d not written", i)
		}
		if !active[i] && set.Acc[i] != (vec.V3{}) {
			t.Fatalf("inactive slot %d clobbered", i)
		}
		if set.Pot[i] != float64(10+i) || set.Work[i] != float64(i) {
			t.Fatalf("nil Result arrays clobbered slot %d", i)
		}
	}
}
