// Package step implements the time-integration engines of the simulation —
// the global symplectic leapfrog (Global) and the hierarchical
// block-timestep integrator (Block), both driving an abstract force backend
// (Forcer) against an integrator clock (Clock) — plus the scheduler the
// block engine is built from: power-of-two rung assignment, the substep
// ladder, and the per-particle integrator state a block-stepped run carries
// between substeps.
//
// # Engines
//
// An engine mutates the particle set and the Clock in place; the root
// package's Simulation owns both and selects an engine from its Config (or
// accepts an injected one through its public Stepper seam, which this
// package's engines implement structurally).  Engines never know which
// backend computes forces: Forcer is satisfied by the root package's
// ForceSolver adapters — tree, TreePM, mesh, direct — and the engines gate
// nothing on the backend kind.  Scatter defines which Result slots a solve
// writes back into the set.  Block additionally applies a between-block
// work-weight decay (decayStaleWork): coarse-rung particles' stale weights
// are pulled toward the mean so the shard balancer stops chasing cooled hot
// spots — schedule-only, never a result bit.
//
// # Contract
//
// A block step of base size dlnA is divided among rung levels 0..maxRung:
// rung r steps with dlnA/2^r, the block runs 2^maxUsedRung substeps, and
// rung r is active exactly at substep indices divisible by its span
// (Schedule).  Particles are assigned to rungs at block boundaries — the
// only instants at which every particle's position epoch coincides — by a
// per-particle step limit quantized to the next power-of-two division
// (RungFor), the hierarchical form of the paper's factor-of-two timestep
// policy.  Between its own steps a particle is frozen: its
// position does not move and its momentum epoch (State.AMom) trails by its
// own rung's half step, which is precisely what lets the tree build reuse
// the subtrees it occupies bit for bit (tree.Options.Dirty) and the
// traversal skip its sink groups (traverse.Walker.SinkActive).
//
// # Bit-identity invariants
//
// The scheduler itself computes no physics; it decides who steps when.  The
// one arithmetic helper, FactorCache, memoizes a kick/drift integral on the
// exact bit pattern of the "from" epoch — so when every particle shares one
// epoch, the factor is obtained by exactly one call with exactly the
// arguments the global integrator would pass.  That degeneracy is what
// makes a block step whose particles all sit on rung 0 bit-identical to the
// global leapfrog step (pinned by simulation_blockstep_test.go at the
// repository root).
//
// # Distributed block stepping
//
// The block engine runs unchanged over message-passing ranks because its
// per-particle state is not engine-private: rungs, momentum epochs and
// activity flags live in the particle set itself (particle.Set.Rung,
// MomEpoch, Flags), travel inside the wire record of every exchange, and the
// engine re-reads them from whatever set the Forcer hands back — so a solve
// that regroups particles across ranks cannot strand integrator state.  Two
// protocol points make the composition deterministic:
//
//   - Rung agreement.  Each rank assigns rungs locally, then the optional
//     AgreeRungs hook combines the per-rank rung histograms (the cluster
//     runner sums them with one allgather).  Every rank derives the block's
//     substep schedule from the agreed histogram, never from its local
//     maximum, so the worlds march in lockstep even when the finest occupied
//     rung lives on one rank.
//
//   - Synchronized checkpoint boundaries.  CheckpointReady reports whether
//     the momenta collapse to a single epoch; mid-block (or after a genuinely
//     multi-rung block) they do not, and a snapshot cannot represent them.
//     Distributed runners must decide collectively — a one-float allreduce of
//     the local verdicts — whether to Synchronize before writing, because a
//     rank-local decision would diverge and deadlock the collectives.
//
// When every particle sits on rung 0 the schedule has one substep, the
// engine hands the solver a nil activity mask, and the distributed block run
// is bit-identical to the distributed global run — the same degeneracy as in
// the single-rank case, pinned across transports by internal/cluster's
// block-mode tests.
//
// # Concurrency model
//
// Everything here is plain data owned by one integrator: no goroutines, no
// shared state.  A State or FactorCache must not be used from multiple
// goroutines concurrently.
package step
