// Package step implements the hierarchical block-timestep scheduler of the
// activity-driven stepping subsystem: power-of-two rung assignment, the
// substep ladder, and the per-particle integrator state a block-stepped run
// carries between substeps.
//
// # Contract
//
// A block step of base size dlnA is divided among rung levels 0..maxRung:
// rung r steps with dlnA/2^r, the block runs 2^maxUsedRung substeps, and
// rung r is active exactly at substep indices divisible by its span
// (Schedule).  Particles are assigned to rungs at block boundaries — the
// only instants at which every particle's position epoch coincides — by a
// per-particle step limit quantized to the next power-of-two division
// (RungFor), the hierarchical form of the paper's factor-of-two timestep
// policy.  Between its own steps a particle is frozen: its
// position does not move and its momentum epoch (State.AMom) trails by its
// own rung's half step, which is precisely what lets the tree build reuse
// the subtrees it occupies bit for bit (tree.Options.Dirty) and the
// traversal skip its sink groups (traverse.Walker.SinkActive).
//
// # Bit-identity invariants
//
// The scheduler itself computes no physics; it decides who steps when.  The
// one arithmetic helper, FactorCache, memoizes a kick/drift integral on the
// exact bit pattern of the "from" epoch — so when every particle shares one
// epoch, the factor is obtained by exactly one call with exactly the
// arguments the global integrator would pass.  That degeneracy is what
// makes a block step whose particles all sit on rung 0 bit-identical to the
// global leapfrog step (pinned by simulation_blockstep_test.go at the
// repository root).
//
// # Concurrency model
//
// Everything here is plain data owned by one integrator: no goroutines, no
// shared state.  A State or FactorCache must not be used from multiple
// goroutines concurrently.
package step
