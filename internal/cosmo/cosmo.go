// Package cosmo implements the cosmological background on which 2HOT
// integrates the equations of motion (Section 2.1 and 2.3 of the paper):
// the Friedmann equation with radiation, matter, curvature and dark energy,
// the linear growth factor (with and without radiation, mirroring the paper's
// point that neglecting radiation shifts the age by millions of years and the
// growth from z=99 by almost 5%), and the symplectic drift/kick integrals of
// Quinn et al. (1997) used by the comoving leapfrog integrator.
//
// In the paper these quantities are obtained from the CLASS Boltzmann code;
// here they are computed directly from the Friedmann equation, which is exact
// for the background (the transfer function approximation lives in package
// transfer).
package cosmo

import (
	"fmt"
	"math"
)

// Internal unit system (the "Gadget-like" h-free convention):
//
//	length   Mpc/h
//	velocity km/s
//	mass     1e10 Msun/h
//
// so that H0 = 100 km/s/(Mpc/h) regardless of h, and G below.
const (
	// G is Newton's constant in internal units.
	G = 43.0071
	// H0 is the Hubble constant in internal units (km/s per Mpc/h).
	H0 = 100.0
	// RhoCrit0 is the critical density today in internal units,
	// 3 H0^2 / (8 pi G).
	RhoCrit0 = 3 * H0 * H0 / (8 * math.Pi * G)
	// HubbleTime is 1/H0 in internal time units ((Mpc/h)/(km/s)).
	HubbleTime = 1.0 / H0
	// GyrPerTimeUnit converts internal time units ((Mpc/h)/(km/s)) to Gyr/h.
	GyrPerTimeUnit = 977.8139
)

// Params holds the parameters of a Friedmann background plus the primordial
// spectrum parameters used by package transfer.
type Params struct {
	Name string

	H float64 // dimensionless Hubble parameter h

	OmegaM float64 // total matter (CDM + baryons) today
	OmegaB float64 // baryons today
	OmegaL float64 // dark energy today
	OmegaK float64 // curvature today

	// Radiation.  If IncludeRadiation is true, OmegaG (photons) and OmegaNu
	// (massless neutrinos) are derived from TCMB and Neff unless set
	// explicitly.
	IncludeRadiation bool
	TCMB             float64 // CMB temperature in K (default 2.7255)
	Neff             float64 // effective number of neutrino species (default 3.046)
	OmegaG           float64
	OmegaNu          float64

	// Dark energy equation of state w(a) = W0 + (1-a) WA.
	W0 float64
	WA float64

	// Primordial spectrum.
	Ns     float64 // spectral index
	Sigma8 float64 // normalization
}

// Planck2013 returns the Planck 2013 parameter set used for the paper's
// headline simulations.
func Planck2013() Params {
	p := Params{
		Name:             "planck2013",
		H:                0.6711,
		OmegaM:           0.3175,
		OmegaB:           0.0490,
		OmegaL:           0.6825,
		IncludeRadiation: true,
		W0:               -1,
		Ns:               0.9624,
		Sigma8:           0.8344,
	}
	p.fillDefaults()
	return p
}

// WMAP7 returns the WMAP 7-year parameter set.
func WMAP7() Params {
	p := Params{
		Name:             "wmap7",
		H:                0.704,
		OmegaM:           0.272,
		OmegaB:           0.0455,
		OmegaL:           0.728,
		IncludeRadiation: true,
		W0:               -1,
		Ns:               0.967,
		Sigma8:           0.810,
	}
	p.fillDefaults()
	return p
}

// WMAP1 returns the WMAP first-year parameter set against which the Tinker08
// mass function was calibrated (used by the Figure 8 comparison).
func WMAP1() Params {
	p := Params{
		Name:             "wmap1",
		H:                0.72,
		OmegaM:           0.27,
		OmegaB:           0.046,
		OmegaL:           0.73,
		IncludeRadiation: true,
		W0:               -1,
		Ns:               0.99,
		Sigma8:           0.90,
	}
	p.fillDefaults()
	return p
}

// Einstein–de Sitter toy model (matter only), useful in tests.
func EdS() Params {
	p := Params{
		Name:   "eds",
		H:      0.7,
		OmegaM: 1.0,
		OmegaB: 0.05,
		OmegaL: 0.0,
		W0:     -1,
		Ns:     1.0,
		Sigma8: 0.8,
	}
	p.fillDefaults()
	return p
}

// ByName returns a named preset.
func ByName(name string) (Params, error) {
	switch name {
	case "planck2013", "planck":
		return Planck2013(), nil
	case "wmap7":
		return WMAP7(), nil
	case "wmap1":
		return WMAP1(), nil
	case "eds":
		return EdS(), nil
	default:
		return Params{}, fmt.Errorf("cosmo: unknown parameter set %q", name)
	}
}

func (p *Params) fillDefaults() {
	if p.TCMB == 0 {
		p.TCMB = 2.7255
	}
	if p.Neff == 0 {
		p.Neff = 3.046
	}
	if p.IncludeRadiation {
		if p.OmegaG == 0 {
			// Omega_gamma h^2 = 2.469e-5 at TCMB = 2.725 K, scaling as T^4.
			t := p.TCMB / 2.725
			p.OmegaG = 2.469e-5 * t * t * t * t / (p.H * p.H)
		}
		if p.OmegaNu == 0 {
			p.OmegaNu = p.OmegaG * 0.2271 * p.Neff
		}
	}
	// Close the universe through curvature if OmegaK not set explicitly.
	if p.OmegaK == 0 {
		p.OmegaK = 1 - p.OmegaM - p.OmegaL - p.OmegaR()
	}
}

// Validate checks the parameter set for consistency.
func (p Params) Validate() error {
	if p.H <= 0 {
		return fmt.Errorf("cosmo: h must be positive, got %g", p.H)
	}
	if p.OmegaM <= 0 {
		return fmt.Errorf("cosmo: OmegaM must be positive, got %g", p.OmegaM)
	}
	if p.OmegaB < 0 || p.OmegaB > p.OmegaM {
		return fmt.Errorf("cosmo: OmegaB must lie in [0, OmegaM]")
	}
	total := p.OmegaM + p.OmegaL + p.OmegaK + p.OmegaR()
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("cosmo: density parameters sum to %g, want 1", total)
	}
	return nil
}

// OmegaR returns the total relativistic density parameter today.
func (p Params) OmegaR() float64 {
	if !p.IncludeRadiation {
		return 0
	}
	return p.OmegaG + p.OmegaNu
}

// OmegaCDM returns the cold dark matter density parameter today.
func (p Params) OmegaCDM() float64 { return p.OmegaM - p.OmegaB }

// darkEnergyDensity returns the dark-energy density relative to today as a
// function of the scale factor for the w0/wa parameterization.
func (p Params) darkEnergyDensity(a float64) float64 {
	if p.W0 == -1 && p.WA == 0 {
		return 1
	}
	return math.Pow(a, -3*(1+p.W0+p.WA)) * math.Exp(-3*p.WA*(1-a))
}

// E returns H(a)/H0.
func (p Params) E(a float64) float64 {
	a2 := a * a
	return math.Sqrt(p.OmegaR()/(a2*a2) + p.OmegaM/(a2*a) + p.OmegaK/a2 + p.OmegaL*p.darkEnergyDensity(a))
}

// H returns the Hubble rate at scale factor a in internal units.
func (p Params) Hubble(a float64) float64 { return H0 * p.E(a) }

// OmegaMatterAt returns Omega_m(a).
func (p Params) OmegaMatterAt(a float64) float64 {
	e := p.E(a)
	return p.OmegaM / (a * a * a) / (e * e)
}

// MeanMatterDensity returns the comoving mean matter density in internal
// units (independent of a in comoving coordinates).
func (p Params) MeanMatterDensity() float64 { return p.OmegaM * RhoCrit0 }

// ParticleMass returns the particle mass for N^3... rather, for np particles
// filling a periodic box of comoving side boxSize (Mpc/h).
func (p Params) ParticleMass(boxSize float64, np int) float64 {
	return p.MeanMatterDensity() * boxSize * boxSize * boxSize / float64(np)
}

// integrate performs adaptive Simpson integration of f over [a, b].
func integrate(f func(float64) float64, a, b float64) float64 {
	if a == b {
		return 0
	}
	const n = 512
	h := (b - a) / n
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// Age returns the age of the universe at scale factor a in internal time
// units; multiply by GyrPerTimeUnit/h for Gyr.
func (p Params) Age(a float64) float64 {
	f := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 / (x * p.Hubble(x))
	}
	return integrate(f, 1e-9, a)
}

// AgeGyr returns the age at scale factor a in Gyr (not Gyr/h).
func (p Params) AgeGyr(a float64) float64 {
	return p.Age(a) * GyrPerTimeUnit / p.H
}

// LookupTime returns the cosmic time difference between two scale factors.
func (p Params) LookupTime(a1, a2 float64) float64 {
	f := func(x float64) float64 { return 1 / (x * p.Hubble(x)) }
	return integrate(f, a1, a2)
}

// DriftFactor returns the symplectic drift integral int_{a1}^{a2} da /
// (a^3 H(a)) used to advance comoving positions with the canonical momentum
// p = a^2 dx/dt (Quinn et al. 1997).
func (p Params) DriftFactor(a1, a2 float64) float64 {
	f := func(a float64) float64 { return 1 / (a * a * a * p.Hubble(a)) }
	return integrate(f, a1, a2)
}

// KickFactor returns the symplectic kick integral int_{a1}^{a2} da /
// (a^2 H(a)) used to advance canonical momenta with the comoving
// accelerations.
func (p Params) KickFactor(a1, a2 float64) float64 {
	f := func(a float64) float64 { return 1 / (a * a * p.Hubble(a)) }
	return integrate(f, a1, a2)
}

// GrowthFactor returns the linear growth factor D(a) normalized to D(1) = 1,
// obtained by integrating the growth ODE
//
//	D'' + (2 + dlnH/dlna) D' - (3/2) Omega_m(a) D = 0
//
// in ln a with the full background (including radiation when enabled).
func (p Params) GrowthFactor(a float64) float64 {
	d, _ := p.growthODE(a)
	d1, _ := p.growthODE(1)
	return d / d1
}

// GrowthRate returns f = dlnD/dlna at scale factor a.
func (p Params) GrowthRate(a float64) float64 {
	d, dp := p.growthODE(a)
	return dp / d
}

// growthODE integrates the growth ODE from deep in matter domination to a,
// returning (D, dD/dlna) with arbitrary normalization.
func (p Params) growthODE(a float64) (float64, float64) {
	const aStart = 1e-4
	if a <= aStart {
		return a, a
	}
	lnaStart := math.Log(aStart)
	lna := math.Log(a)
	n := 2000
	h := (lna - lnaStart) / float64(n)
	// Initial conditions: D proportional to a in matter domination.
	d := aStart
	dp := aStart
	deriv := func(lna, d, dp float64) (float64, float64) {
		aa := math.Exp(lna)
		om := p.OmegaMatterAt(aa)
		dlnH := p.dlnHdlna(aa)
		return dp, -(2+dlnH)*dp + 1.5*om*d
	}
	for i := 0; i < n; i++ {
		x := lnaStart + float64(i)*h
		k1d, k1p := deriv(x, d, dp)
		k2d, k2p := deriv(x+h/2, d+h/2*k1d, dp+h/2*k1p)
		k3d, k3p := deriv(x+h/2, d+h/2*k2d, dp+h/2*k2p)
		k4d, k4p := deriv(x+h, d+h*k3d, dp+h*k3p)
		d += h / 6 * (k1d + 2*k2d + 2*k3d + k4d)
		dp += h / 6 * (k1p + 2*k2p + 2*k3p + k4p)
	}
	return d, dp
}

func (p Params) dlnHdlna(a float64) float64 {
	const eps = 1e-5
	return (math.Log(p.E(a*(1+eps))) - math.Log(p.E(a*(1-eps)))) / (2 * eps)
}

// GrowthFactorAnalytic returns the classic integral expression for the growth
// factor, valid for LambdaCDM without radiation:
//
//	D(a) proportional to H(a) int_0^a da' / (a' H(a'))^3
//
// normalized to D(1) = 1.  2HOT keeps this analytic path so it can be
// compared against codes that do not model radiation.
func (p Params) GrowthFactorAnalytic(a float64) float64 {
	noRad := p
	noRad.IncludeRadiation = false
	noRad.OmegaG, noRad.OmegaNu = 0, 0
	noRad.OmegaK = 1 - noRad.OmegaM - noRad.OmegaL
	g := func(a float64) float64 {
		f := func(x float64) float64 {
			if x < 1e-9 {
				return 0
			}
			e := noRad.E(x)
			return 1 / (x * x * x * e * e * e)
		}
		return noRad.E(a) * integrate(f, 1e-9, a)
	}
	return g(a) / g(1)
}
