package cosmo

import (
	"math"
	"testing"
)

func TestPresetsAreConsistent(t *testing.T) {
	for _, name := range []string{"planck2013", "wmap7", "wmap1", "eds"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if math.Abs(p.E(1)-1) > 1e-12 {
			t.Errorf("%s: E(1) = %g, want 1", name, p.E(1))
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("expected error for unknown preset")
	}
}

func TestCriticalDensityValue(t *testing.T) {
	// rho_crit = 2.775e11 Msun/h / (Mpc/h)^3 = 27.75 in internal units.
	if math.Abs(RhoCrit0-27.75)/27.75 > 1e-3 {
		t.Errorf("RhoCrit0 = %g", RhoCrit0)
	}
}

func TestAgeOfUniverse(t *testing.T) {
	p := Planck2013()
	age := p.AgeGyr(1)
	if age < 13.5 || age > 14.2 {
		t.Errorf("Planck 2013 age of the universe = %.2f Gyr, expected about 13.8", age)
	}
	// The paper's point: dropping radiation changes the age by a few Myr.
	noRad := p
	noRad.IncludeRadiation = false
	noRad.OmegaG, noRad.OmegaNu = 0, 0
	noRad.OmegaK = 1 - noRad.OmegaM - noRad.OmegaL
	diffMyr := math.Abs(noRad.AgeGyr(1)-age) * 1000
	if diffMyr < 1 || diffMyr > 20 {
		t.Errorf("age difference without radiation = %.1f Myr, expected a few Myr", diffMyr)
	}
}

func TestGrowthFactorProperties(t *testing.T) {
	p := Planck2013()
	if math.Abs(p.GrowthFactor(1)-1) > 1e-12 {
		t.Error("GrowthFactor(1) must be 1")
	}
	// Monotonic growth.
	prev := 0.0
	for _, a := range []float64{0.01, 0.05, 0.1, 0.3, 0.5, 0.8, 1.0} {
		d := p.GrowthFactor(a)
		if d <= prev {
			t.Errorf("growth factor not monotonic at a=%g", a)
		}
		prev = d
	}
	// Einstein-de Sitter: D(a) = a exactly (without radiation).
	eds := EdS()
	eds.IncludeRadiation = false
	eds.OmegaG, eds.OmegaNu = 0, 0
	eds.OmegaK = 0
	for _, a := range []float64{0.1, 0.5, 1.0} {
		if math.Abs(eds.GrowthFactor(a)-a)/a > 5e-3 {
			t.Errorf("EdS growth at a=%g: %g", a, eds.GrowthFactor(a))
		}
	}
	// LambdaCDM growth is suppressed relative to EdS at late times.
	if p.GrowthFactor(0.5) <= 0.5 {
		t.Error("LCDM growth at a=0.5 should exceed a (normalized to 1 today)")
	}
}

func TestRadiationEffectOnGrowth(t *testing.T) {
	// The paper: the linear growth factor from z=99 changes by almost 5% if
	// photons and massless neutrinos are not treated.
	p := Planck2013()
	noRad := p
	noRad.IncludeRadiation = false
	noRad.OmegaG, noRad.OmegaNu = 0, 0
	noRad.OmegaK = 1 - noRad.OmegaM - noRad.OmegaL
	a99 := 1.0 / 100.0
	g1 := 1 / p.GrowthFactor(a99)     // growth from z=99 to 0 with radiation
	g2 := 1 / noRad.GrowthFactor(a99) // without
	rel := math.Abs(g1-g2) / g2
	t.Logf("growth from z=99: with radiation %.2f, without %.2f (%.1f%% difference)", g1, g2, 100*rel)
	if rel < 0.01 || rel > 0.10 {
		t.Errorf("radiation effect on growth from z=99 is %.2f%%, expected a few percent", 100*rel)
	}
}

func TestGrowthAnalyticMatchesODE(t *testing.T) {
	p := Planck2013()
	p.IncludeRadiation = false
	p.OmegaG, p.OmegaNu = 0, 0
	p.OmegaK = 1 - p.OmegaM - p.OmegaL
	for _, a := range []float64{0.1, 0.3, 0.7, 1.0} {
		ode := p.GrowthFactor(a)
		ana := p.GrowthFactorAnalytic(a)
		if math.Abs(ode-ana)/ana > 5e-3 {
			t.Errorf("a=%g: ODE growth %g vs analytic %g", a, ode, ana)
		}
	}
}

func TestDriftKickFactors(t *testing.T) {
	p := EdS()
	p.IncludeRadiation = false
	p.OmegaG, p.OmegaNu = 0, 0
	p.OmegaK = 0
	// For EdS, H = H0 a^{-3/2}:
	//   kick  = int da/(a^2 H) = (2/H0)(sqrt(a2) - sqrt(a1))
	//   drift = int da/(a^3 H) = (2/H0)(1/sqrt(a1) - 1/sqrt(a2))
	a1, a2 := 0.25, 0.36
	kick := p.KickFactor(a1, a2)
	drift := p.DriftFactor(a1, a2)
	wantKick := 2.0 / H0 * (math.Sqrt(a2) - math.Sqrt(a1))
	wantDrift := 2.0 / H0 * (1/math.Sqrt(a1) - 1/math.Sqrt(a2))
	if math.Abs(kick-wantKick)/wantKick > 1e-6 {
		t.Errorf("kick factor %g, want %g", kick, wantKick)
	}
	if math.Abs(drift-wantDrift)/wantDrift > 1e-6 {
		t.Errorf("drift factor %g, want %g", drift, wantDrift)
	}
	// Factors over adjacent intervals must add.
	mid := 0.3
	if math.Abs(p.KickFactor(a1, mid)+p.KickFactor(mid, a2)-kick) > 1e-9*kick {
		t.Error("kick factors are not additive")
	}
}

func TestParticleMass(t *testing.T) {
	p := Planck2013()
	m := p.ParticleMass(1000, 1024*1024*1024)
	// 1 Gpc/h box with 1024^3 particles: ~8e10 Msun/h per particle, i.e. ~8
	// internal mass units.
	if m < 4 || m > 12 {
		t.Errorf("particle mass = %g internal units", m)
	}
}

func TestGrowthRatePositive(t *testing.T) {
	p := Planck2013()
	f := p.GrowthRate(1)
	// f ~ Omega_m^0.55 ~ 0.52 for Planck today.
	if f < 0.4 || f > 0.7 {
		t.Errorf("growth rate today = %g", f)
	}
}
