package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	twohot "twohot"
)

func httpServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func submitHTTP(t *testing.T, ts *httptest.Server, tenant string, cfg twohot.Config) Info {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/api/sims", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

type listResponse struct {
	Sims    []Info `json:"sims"`
	Page    int    `json:"page"`
	PerPage int    `json:"perPage"`
	Total   int    `json:"total"`
}

// TestHandlersPaginationAndNotFound drives the listing the way Snippet 2
// specifies: 1-based pages, perPage default 50 capped at 200, a stable total,
// and clean 404s for unknown resources.
func TestHandlersPaginationAndNotFound(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1, QueueCap: 16})
	ts := httpServer(t, s)

	// Hold the single slot so the listing is stable while we page.
	holder := submitHTTP(t, ts, "alfa", testConfig("hold", 500))
	waitState(t, s, holder.ID, StateRunning, 30*time.Second)
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, submitHTTP(t, ts, "alfa", testConfig("page", 2)).ID)
	}

	var page1 listResponse
	getJSON(t, ts.URL+"/api/sims?page=1&perPage=2", &page1)
	if page1.Total != 5 || len(page1.Sims) != 2 || page1.PerPage != 2 {
		t.Fatalf("page 1: got %d sims of total %d perPage %d, want 2 of 5 per 2", len(page1.Sims), page1.Total, page1.PerPage)
	}
	var page3 listResponse
	getJSON(t, ts.URL+"/api/sims?page=3&perPage=2", &page3)
	if len(page3.Sims) != 1 {
		t.Fatalf("page 3 has %d sims, want the 1 remainder", len(page3.Sims))
	}
	var beyond listResponse
	getJSON(t, ts.URL+"/api/sims?page=9&perPage=2", &beyond)
	if len(beyond.Sims) != 0 {
		t.Fatalf("page beyond the end returned %d sims", len(beyond.Sims))
	}
	var capped listResponse
	getJSON(t, ts.URL+"/api/sims?perPage=9999", &capped)
	if capped.PerPage != 200 {
		t.Fatalf("perPage=9999 served %d, want the 200 cap", capped.PerPage)
	}
	var queuedOnly listResponse
	getJSON(t, ts.URL+"/api/sims?state=queued", &queuedOnly)
	if len(queuedOnly.Sims) != 4 {
		t.Fatalf("state=queued filter returned %d sims, want 4", len(queuedOnly.Sims))
	}

	for _, url := range []string{
		ts.URL + "/api/sims/s-999999",
		ts.URL + "/api/sims/s-999999/stats",
		ts.URL + "/api/sims/s-999999/catalogs",
		ts.URL + "/api/sims/s-999999/events",
	} {
		if resp := getJSON(t, url, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s returned %d, want 404", url, resp.StatusCode)
		}
	}

	// Drain.
	for _, id := range append(ids, holder.ID) {
		if _, err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHandlersBackpressure429 pins the HTTP face of the bounded queue: 429
// with a Retry-After header.
func TestHandlersBackpressure429(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1, QueueCap: 1})
	ts := httpServer(t, s)
	holder := submitHTTP(t, ts, "alfa", testConfig("hold", 500))
	waitState(t, s, holder.ID, StateRunning, 30*time.Second)
	queued := submitHTTP(t, ts, "alfa", testConfig("q", 2))

	body, _ := json.Marshal(testConfig("q", 2))
	req, _ := http.NewRequest("POST", ts.URL+"/api/sims", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "alfa")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	for _, id := range []string{holder.ID, queued.ID} {
		if _, err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHandlersTenantIsolationAndDelete pins the namespacing contract: two
// tenants submitting the SAME simulation name never share artifacts, and
// deleting one removes exactly its directory.
func TestHandlersTenantIsolationAndDelete(t *testing.T) {
	root := t.TempDir()
	s := newTestServer(t, Options{Dir: root, PoolWorkers: 2, QueueCap: 8})
	ts := httpServer(t, s)

	a := submitHTTP(t, ts, "alfa", testConfig("samename", 2))
	b := submitHTTP(t, ts, "bravo", testConfig("samename", 2))
	waitState(t, s, a.ID, StateCompleted, 60*time.Second)
	waitState(t, s, b.ID, StateCompleted, 60*time.Second)

	aFinal := filepath.Join(root, "alfa", a.ID, "samename-final.sdf")
	bFinal := filepath.Join(root, "bravo", b.ID, "samename-final.sdf")
	for _, p := range []string{aFinal, bFinal} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("final artifact missing: %v", err)
		}
	}

	// Delete tenant alfa's sim; bravo's identically-named artifacts survive.
	req, _ := http.NewRequest("DELETE", ts.URL+"/api/sims/"+a.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete returned %d, want 204", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(root, "alfa", a.ID)); !os.IsNotExist(err) {
		t.Fatal("deleted simulation's directory still exists")
	}
	if _, err := os.Stat(bFinal); err != nil {
		t.Fatalf("delete removed the other tenant's artifact: %v", err)
	}
	if resp := getJSON(t, ts.URL+"/api/sims/"+a.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted sim still served: %d", resp.StatusCode)
	}
	// Running/queued sims refuse deletion (409) — exercised via a fresh run.
	c := submitHTTP(t, ts, "alfa", testConfig("busy", 500))
	waitState(t, s, c.ID, StateRunning, 30*time.Second)
	req, _ = http.NewRequest("DELETE", ts.URL+"/api/sims/"+c.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("deleting a running sim returned %d, want 409", resp.StatusCode)
	}
	if _, err := s.Cancel(c.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHandlersCatalogsAndEvents runs a simulation with a scheduled end-of-run
// analysis and checks both diagnostics surfaces: the catalog endpoints and
// the SSE stream (state → step… → analysis → done).
func TestHandlersCatalogsAndEvents(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1, QueueCap: 4})
	ts := httpServer(t, s)
	cfg := testConfig("cat", 3)
	cfg.Analysis.AtEnd = true
	cfg.Analysis.MinMembers = 1
	info := submitHTTP(t, ts, "alfa", cfg)

	// Subscribe before completion so the stream carries the run.
	resp, err := http.Get(ts.URL + "/api/sims/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var steps, analyses, dones int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: step"):
			steps++
		case strings.HasPrefix(line, "event: analysis"):
			analyses++
		case strings.HasPrefix(line, "event: done"):
			dones++
		}
	}
	if steps == 0 || analyses != 1 || dones != 1 {
		t.Fatalf("stream carried %d step, %d analysis, %d done events; want >0, 1, 1", steps, analyses, dones)
	}

	waitState(t, s, info.ID, StateCompleted, 60*time.Second)
	var cats struct {
		Catalogs []CatalogEntry `json:"catalogs"`
	}
	getJSON(t, ts.URL+"/api/sims/"+info.ID+"/catalogs", &cats)
	if len(cats.Catalogs) != 1 || cats.Catalogs[0].Label != "final" {
		t.Fatalf("catalogs listing %+v, want exactly the end-of-run catalog", cats.Catalogs)
	}
	var catalog map[string]any
	if resp := getJSON(t, ts.URL+"/api/sims/"+info.ID+"/catalogs/final", &catalog); resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog fetch returned %d", resp.StatusCode)
	}
	if catalog["name"] != "cat" {
		t.Fatalf("catalog payload lacks the simulation name: %v", catalog["name"])
	}
	// Traversal attempts bounce off the label validation.  A literal ".."
	// never reaches the handler (ServeMux cleans the path into a redirect);
	// escaped forms do reach it with the decoded value, and must be refused.
	for _, label := range []string{"%2e%2e", "..%2fescape", "a%2fb"} {
		resp, err := http.Get(ts.URL + "/api/sims/" + info.ID + "/catalogs/" + label)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("catalog label %q served", label)
		}
	}

	// Stats endpoint reflects the finished run.
	var st struct {
		ID    string `json:"id"`
		State State  `json:"state"`
		Stats
	}
	getJSON(t, ts.URL+"/api/sims/"+info.ID+"/stats", &st)
	if st.State != StateCompleted || st.Step != cfg.NSteps || st.Particles != 6*6*6 {
		t.Fatalf("stats %+v, want completed at step %d with %d particles", st, cfg.NSteps, 6*6*6)
	}
	if st.Kinetic <= 0 {
		t.Fatal("stats carry no kinetic energy tally")
	}
	var srv ServerStats
	getJSON(t, ts.URL+"/api/stats", &srv)
	if srv.PoolWorkers != 1 || srv.Sims[StateCompleted] != 1 {
		t.Fatalf("server stats %+v", srv)
	}
}

// TestHandlersRejectBadSubmissions covers the 400 face of the submission
// gates.
func TestHandlersRejectBadSubmissions(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1})
	ts := httpServer(t, s)
	post := func(tenant, body string) int {
		req, _ := http.NewRequest("POST", ts.URL+"/api/sims", strings.NewReader(body))
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("alfa", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad JSON returned %d", code)
	}
	if code := post("../up", `{}`); code != http.StatusBadRequest {
		t.Fatalf("bad tenant returned %d", code)
	}
	cfg := testConfig("x", 2)
	cfg.Name = "../../escape"
	body, _ := json.Marshal(cfg)
	if code := post("alfa", string(body)); code != http.StatusBadRequest {
		t.Fatalf("path-escaping name returned %d", code)
	}
	if code := post("alfa", `{"unknown_field": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown config field returned %d", code)
	}
}
