package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	twohot "twohot"
)

// Handler returns the server's REST surface (shape per SNIPPETS.md
// Snippet 2: a paginated resource with per-item /stats):
//
//	POST   /api/sims                      submit a twohot.Config (tenant from X-Tenant)
//	GET    /api/sims?page=&perPage=       paginated listing (also ?tenant=, ?state=)
//	GET    /api/sims/{id}                 one simulation
//	GET    /api/sims/{id}/stats           live step/redshift/energy/rung stats
//	GET    /api/sims/{id}/catalogs        list in-situ analysis catalogs
//	GET    /api/sims/{id}/catalogs/{label} fetch one catalog (JSON)
//	GET    /api/sims/{id}/events          SSE stream (state/step/analysis events)
//	POST   /api/sims/{id}/suspend         checkpoint at the next step boundary
//	POST   /api/sims/{id}/resume          re-enqueue a suspended simulation
//	POST   /api/sims/{id}/cancel          stop without a checkpoint
//	DELETE /api/sims/{id}                 remove a stopped simulation + artifacts
//	GET    /api/stats                     server-wide pool/queue view
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/sims", s.handleSubmit)
	mux.HandleFunc("GET /api/sims", s.handleList)
	mux.HandleFunc("GET /api/sims/{id}", s.handleGet)
	mux.HandleFunc("GET /api/sims/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /api/sims/{id}/catalogs", s.handleCatalogs)
	mux.HandleFunc("GET /api/sims/{id}/catalogs/{label}", s.handleCatalog)
	mux.HandleFunc("GET /api/sims/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /api/sims/{id}/suspend", s.lifecycle(s.Suspend))
	mux.HandleFunc("POST /api/sims/{id}/resume", s.lifecycle(s.Resume))
	mux.HandleFunc("POST /api/sims/{id}/cancel", s.lifecycle(s.Cancel))
	mux.HandleFunc("DELETE /api/sims/{id}", s.handleDelete)
	mux.HandleFunc("GET /api/stats", s.handleServerStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// fail maps the server's error values onto HTTP semantics: unknown id 404,
// full queue 429 + Retry-After (backpressure, the client should resubmit),
// lifecycle misuse 409, everything else a plain 400.
func fail(w http.ResponseWriter, err error) {
	var conflict conflictError
	switch {
	case errors.Is(err, errNotFound):
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
	case errors.As(err, &conflict):
		writeJSON(w, http.StatusConflict, apiError{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	// Submissions layer over the defaults, like cmd/2hot's config files do:
	// a client states only what differs, and omitted knobs stay sane.
	cfg := twohot.DefaultConfig()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		fail(w, fmt.Errorf("serve: bad config: %w", err))
		return
	}
	info, err := s.Submit(tenant, cfg)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, _ := strconv.Atoi(q.Get("page"))
	perPage, _ := strconv.Atoi(q.Get("perPage"))
	sims, pageNum, per, total := s.List(q.Get("tenant"), State(q.Get("state")), page, perPage)
	writeJSON(w, http.StatusOK, struct {
		Sims    []Info `json:"sims"`
		Page    int    `json:"page"`
		PerPage int    `json:"perPage"`
		Total   int    `json:"total"`
	}{sims, pageNum, per, total})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Get(r.PathValue("id"))
	if !ok {
		fail(w, errNotFound)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Get(r.PathValue("id"))
	if !ok {
		fail(w, errNotFound)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID    string `json:"id"`
		State State  `json:"state"`
		Stats
	}{info.ID, info.State, info.Stats})
}

// lifecycle adapts Suspend/Resume/Cancel to a handler; all three answer 202
// (the state machine moves asynchronously, poll or stream to observe it).
func (s *Server) lifecycle(op func(id string) (Info, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		info, err := op(r.PathValue("id"))
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, info)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("id")); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// CatalogEntry is one row of the catalogs listing.
type CatalogEntry struct {
	Label string `json:"label"`
	File  string `json:"file"`
}

// catalogDir resolves a sim's artifact directory and catalog name prefix.
func (s *Server) catalogDir(id string) (dir, prefix string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.sims[id]
	if !ok {
		return "", "", errNotFound
	}
	return sm.dir, sm.cfg.Name + "-analysis-", nil
}

func (s *Server) handleCatalogs(w http.ResponseWriter, r *http.Request) {
	dir, prefix, err := s.catalogDir(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	entries, _ := os.ReadDir(dir) // no dir yet = no catalogs yet
	cats := []CatalogEntry{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		cats = append(cats, CatalogEntry{
			Label: strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".json"),
			File:  name,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Catalogs []CatalogEntry `json:"catalogs"`
	}{cats})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	if !safeName(label) {
		fail(w, fmt.Errorf("serve: invalid catalog label %q", label))
		return
	}
	dir, prefix, err := s.catalogDir(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	data, err := os.ReadFile(filepath.Join(dir, prefix+label+".json"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{fmt.Sprintf("serve: no catalog %q", label)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleEvents is the SSE stream: an initial "state" event with the current
// Info, then every broker event for the simulation until the topic finishes
// (terminal state), the client disconnects, or the subscriber is dropped for
// falling behind.  The stream ends with an explicit "done" event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.Get(id)
	if !ok {
		fail(w, errNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{"serve: streaming unsupported"})
		return
	}
	ch, cancelSub := s.broker.subscribe(id)
	defer cancelSub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	snap, _ := json.Marshal(info)
	fmt.Fprintf(w, "event: state\ndata: %s\n\n", snap)
	fl.Flush()

	for {
		select {
		case ev, open := <-ch:
			if !open {
				fmt.Fprint(w, "event: done\ndata: {}\n\n")
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, ev.Data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
