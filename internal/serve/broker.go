package serve

import (
	"encoding/json"
	"sync"
)

// Event is one item of a simulation's diagnostic stream, rendered as an SSE
// "event:"/"data:" pair by the events handler.
type Event struct {
	Kind string // "state", "step", "analysis"
	Data []byte // JSON payload, marshaled once per publish
}

// broker is the bounded fan-out between the stepping loops and the event
// streams.  Publishing never blocks: a subscriber whose buffer is full is
// dropped (its channel closed, the drop counted) instead of stalling the
// simulation that produced the event.  Topics are per-simulation IDs; a
// finished topic rejects new subscribers with an already-closed channel.
type broker struct {
	buf int

	mu      sync.Mutex
	topics  map[string]map[chan Event]struct{}
	done    map[string]bool
	dropped int
}

func newBroker(buf int) *broker {
	return &broker{
		buf:    buf,
		topics: map[string]map[chan Event]struct{}{},
		done:   map[string]bool{},
	}
}

// subscribe returns a receive channel for the topic and a cancel function.
// The channel is closed by cancel, by a slow-subscriber drop, or when the
// topic finishes — receivers must treat channel close as end-of-stream.
func (b *broker) subscribe(id string) (<-chan Event, func()) {
	ch := make(chan Event, b.buf)
	b.mu.Lock()
	if b.done[id] {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	subs := b.topics[id]
	if subs == nil {
		subs = map[chan Event]struct{}{}
		b.topics[id] = subs
	}
	subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() { b.unsubscribe(id, ch) }
}

func (b *broker) unsubscribe(id string, ch chan Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if subs, ok := b.topics[id]; ok {
		if _, live := subs[ch]; live {
			delete(subs, ch)
			close(ch)
		}
	}
}

// publish marshals v once and offers it to every subscriber of the topic,
// dropping any whose buffer is full.
func (b *broker) publish(id, kind string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := Event{Kind: kind, Data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.topics[id] {
		select {
		case ch <- ev:
		default:
			delete(b.topics[id], ch)
			close(ch)
			b.dropped++
		}
	}
}

// finish closes the topic: every subscriber's channel is closed and future
// subscribers get an already-closed channel.
func (b *broker) finish(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.topics[id] {
		close(ch)
	}
	delete(b.topics, id)
	b.done[id] = true
}

// closeAll finishes every topic (server shutdown).
func (b *broker) closeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, subs := range b.topics {
		for ch := range subs {
			close(ch)
		}
		delete(b.topics, id)
		b.done[id] = true
	}
}

func (b *broker) droppedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
