package serve

import (
	"testing"
)

// TestBrokerDropsSlowSubscriber pins the bounded fan-out contract: a
// subscriber that stops draining is dropped (channel closed, drop counted)
// while publishing proceeds for everyone else — the stepping loop is never
// the one that waits.
func TestBrokerDropsSlowSubscriber(t *testing.T) {
	b := newBroker(2)
	slow, cancelSlow := b.subscribe("sim")
	defer cancelSlow()
	fast, cancelFast := b.subscribe("sim")
	defer cancelFast()

	for i := 0; i < 5; i++ {
		b.publish("sim", "step", map[string]int{"i": i})
		// The fast subscriber drains every event; the slow one never reads.
		select {
		case <-fast:
		default:
			t.Fatalf("publish %d did not reach the draining subscriber", i)
		}
	}
	if n := b.droppedCount(); n != 1 {
		t.Fatalf("dropped %d subscribers, want exactly the slow one", n)
	}
	// The slow subscriber's channel holds the buffered prefix, then closes.
	got := 0
	for range slow {
		got++
	}
	if got != 2 {
		t.Fatalf("slow subscriber drained %d buffered events, want 2 (the buffer size)", got)
	}
}

// TestBrokerFinish pins end-of-stream semantics: finish closes live
// subscribers and later subscriptions come back already closed.
func TestBrokerFinish(t *testing.T) {
	b := newBroker(4)
	ch, cancel := b.subscribe("sim")
	defer cancel()
	b.publish("sim", "state", "x")
	b.finish("sim")
	n := 0
	for range ch {
		n++
	}
	if n != 1 {
		t.Fatalf("drained %d events through finish, want 1", n)
	}
	late, cancelLate := b.subscribe("sim")
	defer cancelLate()
	if _, open := <-late; open {
		t.Fatal("subscription to a finished topic delivered an event; want an already-closed channel")
	}
	// Unsubscribe after finish must not double-close.
	cancel()
}
