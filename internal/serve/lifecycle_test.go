package serve

import (
	"net/http"
	"path/filepath"
	"testing"
	"time"

	twohot "twohot"
	"twohot/internal/sdf"
)

// TestLifecycleSuspendResumeBitIdentical is the end-to-end serving contract,
// driven entirely over the HTTP API: submit → run → suspend (checkpoint at a
// step boundary) → resume (fresh Simulation in the runner, cold caches) →
// complete, with the final state bit-identical to an uninterrupted run of
// the same configuration.  This is the first consumer exercising
// WriteCheckpoint/RestoreCheckpoint and the observer hooks under real
// concurrency, so it runs under -race in CI.
func TestLifecycleSuspendResumeBitIdentical(t *testing.T) {
	cfg := testConfig("lifecycle", 24)

	// Reference: the uninterrupted run.
	refCfg := cfg
	refCfg.OutputDir = t.TempDir()
	ref, err := twohot.New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(refCfg.OutputDir, "ref-final.sdf")
	if err := ref.WriteCheckpoint(refPath); err != nil {
		t.Fatal(err)
	}

	// Served run with a mid-flight suspend/resume cycle.
	root := t.TempDir()
	s := newTestServer(t, Options{Dir: root, PoolWorkers: 1, QueueCap: 4})
	ts := httpServer(t, s)
	info := submitHTTP(t, ts, "alice", cfg)

	// Wait until the run is past its first steps, then suspend.  The run has
	// 24 steps; polling every millisecond reaches it long before the end.
	waitFor(t, "step >= 2", 60*time.Second, func() bool {
		var st struct{ Stats }
		getJSON(t, ts.URL+"/api/sims/"+info.ID+"/stats", &st)
		return st.Step >= 2
	})
	resp, err := http.Post(ts.URL+"/api/sims/"+info.ID+"/suspend", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("suspend returned %d", resp.StatusCode)
	}
	suspended := waitState(t, s, info.ID, StateSuspended, 60*time.Second)
	if suspended.Stats.Step >= cfg.NSteps {
		t.Fatalf("suspended only at step %d of %d — the cycle did not interrupt the run", suspended.Stats.Step, cfg.NSteps)
	}
	ckpt := filepath.Join(root, "alice", info.ID, cfg.Name+"-ckpt.sdf")
	if _, err := sdf.Read(ckpt); err != nil {
		t.Fatalf("suspend left no readable checkpoint: %v", err)
	}

	resp, err = http.Post(ts.URL+"/api/sims/"+info.ID+"/resume", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume returned %d", resp.StatusCode)
	}
	final := waitState(t, s, info.ID, StateCompleted, 120*time.Second)
	if final.Stats.Suspends != 1 || final.Stats.Resumes != 1 {
		t.Fatalf("lifecycle counters suspends=%d resumes=%d, want 1/1", final.Stats.Suspends, final.Stats.Resumes)
	}
	if final.Stats.Step != cfg.NSteps {
		t.Fatalf("resumed run finished at step %d, want %d (must continue the original grid)", final.Stats.Step, cfg.NSteps)
	}

	// Bit-identity of the final synchronized state.
	refSnap, err := sdf.Read(refPath)
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := sdf.Read(filepath.Join(root, "alice", info.ID, cfg.Name+"-final.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	if refSnap.ScaleFac != gotSnap.ScaleFac || refSnap.MomentumScaleFac != gotSnap.MomentumScaleFac {
		t.Fatalf("epochs differ: a %v/%v a_mom %v/%v",
			refSnap.ScaleFac, gotSnap.ScaleFac, refSnap.MomentumScaleFac, gotSnap.MomentumScaleFac)
	}
	rp, gp := refSnap.Particles, gotSnap.Particles
	if rp.Len() != gp.Len() {
		t.Fatalf("particle counts differ: %d vs %d", rp.Len(), gp.Len())
	}
	for i := range rp.Pos {
		if rp.ID[i] != gp.ID[i] {
			t.Fatalf("particle %d: IDs differ", i)
		}
		if rp.Pos[i] != gp.Pos[i] || rp.Mom[i] != gp.Mom[i] {
			t.Fatalf("particle %d: served suspend/resume trajectory is not bit-identical (%v/%v vs %v/%v)",
				i, rp.Pos[i], rp.Mom[i], gp.Pos[i], gp.Mom[i])
		}
	}
}

// TestCloseSuspendsRunning pins graceful shutdown: Close drains the pool by
// suspending running simulations with a checkpoint, so nothing is lost.
func TestCloseSuspendsRunning(t *testing.T) {
	root := t.TempDir()
	s := newTestServer(t, Options{Dir: root, PoolWorkers: 1, QueueCap: 4})
	info, err := s.Submit("alfa", testConfig("drain", 500))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, info.ID, StateRunning, 30*time.Second)
	waitFor(t, "a completed step", 30*time.Second, func() bool {
		st, _ := s.Get(info.ID)
		return st.Stats.Step >= 1
	})
	queued, err := s.Submit("alfa", testConfig("parked", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(info.ID)
	if got.State != StateSuspended {
		t.Fatalf("running sim drained into %q, want suspended", got.State)
	}
	if _, err := sdf.Read(filepath.Join(root, "alfa", info.ID, "drain-ckpt.sdf")); err != nil {
		t.Fatalf("shutdown suspend left no readable checkpoint: %v", err)
	}
	parked, _ := s.Get(queued.ID)
	if parked.State != StateSuspended {
		t.Fatalf("queued sim drained into %q, want suspended", parked.State)
	}
	// Post-shutdown submissions are refused.
	if _, err := s.Submit("alfa", testConfig("late", 2)); err == nil {
		t.Fatal("submission accepted after Close")
	}
}
