package serve

import (
	"testing"
	"time"

	twohot "twohot"
)

// testConfig is a tiny but real simulation: 216 particles, a handful of
// steps, the tree solver — seconds even under the race detector.
func testConfig(name string, steps int) twohot.Config {
	cfg := twohot.DefaultConfig()
	cfg.Name = name
	cfg.NGrid = 6
	cfg.BoxSize = 48
	cfg.ZInit = 19
	cfg.ZFinal = 9
	cfg.NSteps = steps
	cfg.ErrTol = 1e-3
	cfg.WS = 1
	cfg.LatticeOrder = 1
	cfg.PMGrid = 12
	cfg.Workers = 1
	cfg.Seed = 999
	return cfg
}

// newTestServer builds a Server rooted in a test temp dir.
func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// waitFor polls fn until it returns true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitState polls until the simulation reaches the wanted state.
func waitState(t *testing.T, s *Server, id string, want State, timeout time.Duration) Info {
	t.Helper()
	var last Info
	waitFor(t, string(want)+" of "+id, timeout, func() bool {
		info, ok := s.Get(id)
		if !ok {
			t.Fatalf("simulation %s disappeared while waiting for %s", id, want)
		}
		last = info
		return info.State == want
	})
	return last
}
