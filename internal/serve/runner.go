package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"time"

	twohot "twohot"
)

// runSim is the goroutine behind one running simulation: it drives the run,
// translates the outcome into the lifecycle state, returns the pool slots and
// closes the event stream on terminal states.
func (s *Server) runSim(sm *sim, ctx context.Context) {
	defer s.wg.Done()
	s.mu.Lock()
	ckpt := sm.ckpt
	s.mu.Unlock()

	err := s.drive(sm, ctx, ckpt)

	s.mu.Lock()
	intent := sm.intent
	switch {
	case err == nil:
		sm.state = StateCompleted
	case errors.Is(err, context.Canceled) && intent == intentSuspend:
		sm.state = StateSuspended
		sm.stats.Suspends++
	case errors.Is(err, context.Canceled) && intent == intentCancel:
		sm.state = StateCanceled
	default:
		sm.state = StateFailed
		sm.errMsg = err.Error()
	}
	sm.finished = time.Now()
	sm.intent = intentNone
	s.publishStateLocked(sm)
	terminal := sm.state.Terminal()
	s.releaseLocked(sm)
	s.mu.Unlock()
	if terminal {
		s.broker.finish(sm.id)
	}
}

// drive runs one (possibly resumed) simulation to completion, suspension,
// cancellation or failure.  On completion the final synchronized state is
// written as "<name>-final.sdf"; on suspension the checkpoint lands at the
// simulation's CheckpointPath and is recorded for the next resume.  The
// suspend checkpoint closes the leapfrog only when the stepper's
// step-boundary state is not checkpoint-representable (multi-rung block
// state) — the same gate Run's periodic checkpoints use — so global-stepped
// runs suspend without disturbing the trajectory at all.
func (s *Server) drive(sm *sim, ctx context.Context, ckpt string) error {
	if err := os.MkdirAll(sm.dir, 0o755); err != nil {
		return err
	}
	tw, err := twohot.New(sm.cfg)
	if err != nil {
		return err
	}
	tw.AddObserver(twohot.ObserverFuncs{
		Step: func(info twohot.StepInfo) { s.onStep(sm, tw, info) },
	})
	tw.AddAnalysisObserver(twohot.AnalysisFunc(func(info twohot.AnalysisInfo) {
		s.onAnalysis(sm, info)
	}))
	if ckpt != "" {
		if err := tw.RestoreCheckpoint(ckpt); err != nil {
			return err
		}
		s.onResume(sm, tw)
	}

	runErr := tw.RunContext(ctx)
	if runErr == nil {
		return tw.WriteCheckpoint(filepath.Join(sm.dir, sm.cfg.Name+"-final.sdf"))
	}
	if errors.Is(runErr, context.Canceled) && s.intentOf(sm) == intentSuspend {
		if tw.Stepper().CheckpointReady(tw.AMom) != nil {
			if err := tw.Synchronize(); err != nil {
				return err
			}
		}
		path := tw.CheckpointPath()
		if err := tw.WriteCheckpoint(path); err != nil {
			return err
		}
		s.mu.Lock()
		sm.ckpt = path
		s.mu.Unlock()
	}
	return runErr
}

func (s *Server) intentOf(sm *sim) intent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sm.intent
}

// stepEvent is the "step" SSE payload.
type stepEvent struct {
	ID    string `json:"id"`
	Stats Stats  `json:"stats"`
}

// analysisEvent is the "analysis" SSE payload.
type analysisEvent struct {
	ID    string  `json:"id"`
	Label string  `json:"label"`
	Path  string  `json:"path,omitempty"`
	Z     float64 `json:"z"`
	Halos int     `json:"halos"`
}

// onStep folds a completed step into the stats snapshot and fans it out.
// It runs on the runner goroutine, synchronously with the stepping loop; the
// broker guarantees the fan-out cannot block it.
func (s *Server) onStep(sm *sim, tw *twohot.Simulation, info twohot.StepInfo) {
	kin, pot := info.Energy()
	n := tw.NumParticles()
	s.mu.Lock()
	sm.stats.Step = info.Step
	sm.stats.Z = info.Z
	sm.stats.A = info.A
	sm.stats.Particles = n
	sm.stats.Kinetic = kin
	sm.stats.Potential = pot
	sm.stats.Rungs = info.Rungs
	snap := sm.stats
	s.mu.Unlock()
	s.broker.publish(sm.id, "step", stepEvent{ID: sm.id, Stats: snap})
}

// onResume refreshes the stats snapshot from a just-restored checkpoint so
// the first poll after a resume reports the restored epoch, not the
// pre-suspend one.
func (s *Server) onResume(sm *sim, tw *twohot.Simulation) {
	s.mu.Lock()
	sm.stats.Step = tw.StepCount
	sm.stats.Z = tw.Redshift()
	sm.stats.A = tw.A
	sm.stats.Particles = tw.NumParticles()
	s.mu.Unlock()
}

// onAnalysis fans one scheduled in-situ catalog out to the event stream.
func (s *Server) onAnalysis(sm *sim, info twohot.AnalysisInfo) {
	s.broker.publish(sm.id, "analysis", analysisEvent{
		ID:    sm.id,
		Label: info.Trigger.Label(),
		Path:  info.Path,
		Z:     info.Catalog.Z,
		Halos: info.Catalog.NumHalos,
	})
}

// publishStateLocked fans the simulation's current Info out as a "state"
// event; callers hold Server.mu.
func (s *Server) publishStateLocked(sm *sim) {
	s.broker.publish(sm.id, "state", sm.infoLocked())
}
