package serve

import (
	"context"
	"sort"
	"time"
)

// dispatchLocked admits queued simulations until nothing more fits.  Callers
// hold Server.mu.
//
// Admission is fair-share: each pass scans the tenants that have queued work
// in a rotation starting just after the last-served tenant, admitting the
// head of the first tenant queue whose cost fits both the free pool slots
// and that tenant's budget.  One admission per scan keeps the rotation
// honest — a tenant with many queued jobs gets one slot per turn, not the
// whole pool — while FIFO order is preserved within each tenant.  A tenant
// whose head job does not fit is skipped, never waited on, so a wide job at
// the head of one queue cannot idle slots other tenants could use.
func (s *Server) dispatchLocked() {
	for s.admitOneLocked() {
	}
}

// admitOneLocked starts at most one queued simulation; reports whether it did.
func (s *Server) admitOneLocked() bool {
	if s.closed {
		return false
	}
	tens := s.tenantsWithWork()
	if len(tens) == 0 {
		return false
	}
	// Rotation start: the first tenant strictly after the last one served.
	start := sort.SearchStrings(tens, s.lastServed+"\x00")
	for i := range tens {
		ten := tens[(start+i)%len(tens)]
		sm := s.queue[ten][0]
		if s.used+sm.cost > s.opt.PoolWorkers || s.tenantUse[ten]+sm.cost > s.opt.TenantWorkers {
			continue
		}
		s.queue[ten] = s.queue[ten][1:]
		s.queued--
		s.used += sm.cost
		s.tenantUse[ten] += sm.cost
		if s.used > s.maxUsed {
			s.maxUsed = s.used
		}
		if s.tenantUse[ten] > s.maxTenantUsed[ten] {
			s.maxTenantUsed[ten] = s.tenantUse[ten]
		}
		s.lastServed = ten
		sm.state = StateRunning
		sm.started = time.Now()
		ctx, cancel := context.WithCancelCause(context.Background())
		sm.cancel = cancel
		s.publishStateLocked(sm)
		s.wg.Add(1)
		go s.runSim(sm, ctx)
		return true
	}
	return false
}

// releaseLocked returns a finished runner's slots to the pool and admits
// whatever now fits; callers hold Server.mu.
func (s *Server) releaseLocked(sm *sim) {
	s.used -= sm.cost
	s.tenantUse[sm.tenant] -= sm.cost
	s.dispatchLocked()
}
