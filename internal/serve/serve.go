package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	twohot "twohot"
)

// Options configures a Server.  The zero value of every field means the
// documented default.
type Options struct {
	// Dir is the artifact root; simulation sm of tenant t writes exclusively
	// under Dir/t/sm ("" = "2hot-serve-data").
	Dir string
	// PoolWorkers bounds the summed Workers cost of concurrently running
	// simulations (0 = GOMAXPROCS).
	PoolWorkers int
	// TenantWorkers bounds the pool slots any single tenant may hold at once
	// (0 = PoolWorkers, i.e. no per-tenant cap beyond the pool).
	TenantWorkers int
	// QueueCap bounds the number of queued submissions across all tenants; a
	// full queue answers 429 + Retry-After (0 = 64).
	QueueCap int
	// EventBuffer is the per-subscriber event buffer; a subscriber whose
	// buffer overflows is dropped rather than blocking the stepping loop
	// (0 = 64).
	EventBuffer int
}

func (o *Options) defaults() {
	if o.Dir == "" {
		o.Dir = "2hot-serve-data"
	}
	if o.PoolWorkers <= 0 {
		o.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if o.TenantWorkers <= 0 || o.TenantWorkers > o.PoolWorkers {
		o.TenantWorkers = o.PoolWorkers
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 64
	}
}

// ErrQueueFull is returned by Submit (and surfaced as HTTP 429) when the
// bounded job queue is at capacity.
var ErrQueueFull = errors.New("serve: job queue full")

// errServerClosing is the cancel cause of runs suspended by Close.
var errServerClosing = errors.New("server shutting down")

// Server hosts many concurrent simulations over one bounded worker pool.
// Construct with New, expose with Handler, drain with Close.
type Server struct {
	opt    Options
	broker *broker

	mu         sync.Mutex
	closed     bool
	nextID     int
	sims       map[string]*sim
	order      []string          // creation order; pagination iterates this
	queue      map[string][]*sim // per-tenant FIFO of queued sims
	lastServed string            // fair-share cursor: admission resumes after this tenant
	queued     int
	used       int            // pool slots held by running sims
	tenantUse  map[string]int // pool slots held per tenant

	// High-water marks, kept so tests (and /api/stats consumers) can assert
	// the budgets were never exceeded rather than trusting the code path.
	maxUsed       int
	maxTenantUsed map[string]int

	wg sync.WaitGroup
}

// New creates a Server and its artifact root directory.
func New(opt Options) (*Server, error) {
	opt.defaults()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Server{
		opt:           opt,
		broker:        newBroker(opt.EventBuffer),
		sims:          map[string]*sim{},
		queue:         map[string][]*sim{},
		tenantUse:     map[string]int{},
		maxTenantUsed: map[string]int{},
	}, nil
}

// Submit validates and enqueues one simulation for the given tenant.  The
// configuration's OutputDir is replaced by the per-tenant, per-simulation
// artifact directory — callers never choose where the server writes.
func (s *Server) Submit(tenant string, cfg twohot.Config) (Info, error) {
	if !safeName(tenant) {
		return Info{}, fmt.Errorf("serve: invalid tenant %q (letters, digits, '-', '_', '.', '+'; no \"..\")", tenant)
	}
	if cfg.Transport == "tcp" {
		// TCP runs are supervised worker processes (RunClusterSupervised);
		// the server hosts in-process runs only.
		return Info{}, fmt.Errorf("serve: transport \"tcp\" is not servable; use ranks over the in-process \"chan\" fabric")
	}
	cost := cfg.Workers
	if cost < 1 {
		cost = 1
	}
	if cost > s.opt.PoolWorkers || cost > s.opt.TenantWorkers {
		return Info{}, fmt.Errorf("serve: job needs %d workers but the budget is min(pool %d, tenant %d)",
			cost, s.opt.PoolWorkers, s.opt.TenantWorkers)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Info{}, errors.New("serve: server is shutting down")
	}
	if s.queued >= s.opt.QueueCap {
		return Info{}, ErrQueueFull
	}
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	cfg.OutputDir = filepath.Join(s.opt.Dir, tenant, id)
	if err := cfg.Validate(); err != nil {
		return Info{}, err
	}
	sm := &sim{
		id:      id,
		tenant:  tenant,
		cfg:     cfg,
		cost:    cost,
		dir:     cfg.OutputDir,
		state:   StateQueued,
		created: time.Now(),
		stats:   Stats{TotalSteps: cfg.NSteps, Z: cfg.ZInit},
	}
	s.sims[id] = sm
	s.order = append(s.order, id)
	s.queue[tenant] = append(s.queue[tenant], sm)
	s.queued++
	s.dispatchLocked()
	return sm.infoLocked(), nil
}

// Get returns the Info view of one simulation.
func (s *Server) Get(id string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.sims[id]
	if !ok {
		return Info{}, false
	}
	return sm.infoLocked(), true
}

// List returns one page of the simulation listing in creation order,
// optionally filtered by tenant and state.
func (s *Server) List(tenant string, state State, page, perPage int) (sims []Info, pageNum, per, total int) {
	s.mu.Lock()
	all := s.listLocked(tenant, state)
	s.mu.Unlock()
	sims, pageNum, per = paginate(all, page, perPage)
	return sims, pageNum, per, len(all)
}

// Suspend asks a simulation to stop at its next step boundary and write a
// resumable checkpoint.  A queued simulation is dequeued immediately (it has
// no state to checkpoint); a running one drains through "suspending" and the
// runner writes the checkpoint.  Idempotent on already-suspended sims.
func (s *Server) Suspend(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.sims[id]
	if !ok {
		return Info{}, errNotFound
	}
	switch sm.state {
	case StateQueued:
		s.dequeueLocked(sm)
		sm.state = StateSuspended
		s.publishStateLocked(sm)
	case StateRunning:
		sm.state = StateSuspending
		sm.intent = intentSuspend
		sm.cancel(errors.New("suspend requested"))
		s.publishStateLocked(sm)
	case StateSuspending, StateSuspended:
		// Already on the way; idempotent.
	default:
		return Info{}, stateConflict("suspend", sm.state)
	}
	return sm.infoLocked(), nil
}

// Resume re-enqueues a suspended simulation.  If a checkpoint exists the
// restored run continues the original step grid bit-identically; a
// suspended-while-queued simulation starts fresh.
func (s *Server) Resume(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Info{}, errors.New("serve: server is shutting down")
	}
	sm, ok := s.sims[id]
	if !ok {
		return Info{}, errNotFound
	}
	if sm.state != StateSuspended {
		return Info{}, stateConflict("resume", sm.state)
	}
	if s.queued >= s.opt.QueueCap {
		return Info{}, ErrQueueFull
	}
	sm.state = StateQueued
	sm.intent = intentNone
	sm.finished = time.Time{}
	sm.stats.Resumes++
	s.queue[sm.tenant] = append(s.queue[sm.tenant], sm)
	s.queued++
	s.publishStateLocked(sm)
	s.dispatchLocked()
	return sm.infoLocked(), nil
}

// Cancel stops a simulation without writing a checkpoint: a queued one is
// dequeued, a running one drains through "canceling", a suspended one is
// marked canceled.  Idempotent on sims already canceled or draining.
func (s *Server) Cancel(id string) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sm, ok := s.sims[id]
	if !ok {
		return Info{}, errNotFound
	}
	switch sm.state {
	case StateQueued:
		s.dequeueLocked(sm)
		sm.state = StateCanceled
		sm.finished = time.Now()
		s.publishStateLocked(sm)
		s.broker.finish(sm.id)
	case StateRunning, StateSuspending:
		sm.state = StateCanceling
		sm.intent = intentCancel
		sm.cancel(errors.New("cancel requested"))
		s.publishStateLocked(sm)
	case StateSuspended:
		sm.state = StateCanceled
		sm.finished = time.Now()
		s.publishStateLocked(sm)
		s.broker.finish(sm.id)
	case StateCanceling, StateCanceled:
		// Idempotent.
	default:
		return Info{}, stateConflict("cancel", sm.state)
	}
	return sm.infoLocked(), nil
}

// Delete removes a stopped simulation's record and artifact directory.
// Running or queued simulations must be canceled or suspended first.
func (s *Server) Delete(id string) error {
	s.mu.Lock()
	sm, ok := s.sims[id]
	if !ok {
		s.mu.Unlock()
		return errNotFound
	}
	if !sm.state.stopped() {
		s.mu.Unlock()
		return stateConflict("delete", sm.state)
	}
	delete(s.sims, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	dir := sm.dir
	s.mu.Unlock()
	s.broker.finish(id)
	return os.RemoveAll(dir)
}

// Stats returns the server-wide pool/queue view.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// Close drains the server: running simulations are suspended (checkpoint
// written, resumable after a restart from the same artifact directory),
// queued ones are parked as suspended, and Close returns once every runner
// has exited and every event stream is closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, sm := range s.sims {
		switch sm.state {
		case StateRunning:
			sm.state = StateSuspending
			sm.intent = intentSuspend
			sm.cancel(errServerClosing)
			s.publishStateLocked(sm)
		case StateQueued:
			s.dequeueLocked(sm)
			sm.state = StateSuspended
			s.publishStateLocked(sm)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.broker.closeAll()
	return nil
}

// dequeueLocked removes a queued sim from its tenant's FIFO; callers hold
// Server.mu and adjust the sim's state themselves.
func (s *Server) dequeueLocked(sm *sim) {
	q := s.queue[sm.tenant]
	for i, other := range q {
		if other == sm {
			s.queue[sm.tenant] = append(q[:i], q[i+1:]...)
			s.queued--
			return
		}
	}
}

// errNotFound maps to HTTP 404.
var errNotFound = errors.New("serve: no such simulation")

// conflictError maps to HTTP 409: the operation is meaningless in the
// simulation's current state.
type conflictError struct {
	op    string
	state State
}

func (e conflictError) Error() string {
	return fmt.Sprintf("serve: cannot %s a %s simulation", e.op, e.state)
}

func stateConflict(op string, st State) error { return conflictError{op, st} }
