package serve

import (
	"bufio"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestSoakMultiTenant is the concurrency gate for the whole subsystem: several
// tenants submit identically-named simulations at once while seeded drivers
// fire random suspend/resume/cancel cycles over HTTP and SSE subscribers hang
// off the streams.  It runs under -race in CI and asserts the two invariants
// that matter: the worker pool and per-tenant budgets are never exceeded
// (high-water marks), and no two simulations ever share an artifact directory.
func TestSoakMultiTenant(t *testing.T) {
	tenants := []string{"alfa", "bravo", "charlie", "delta"}
	perTenant := 3
	if testing.Short() {
		tenants = tenants[:2]
		perTenant = 2
	}

	root := t.TempDir()
	s := newTestServer(t, Options{Dir: root, PoolWorkers: 3, TenantWorkers: 2, QueueCap: 64})
	ts := httpServer(t, s)

	var wg sync.WaitGroup
	idCh := make(chan string, len(tenants)*perTenant)
	for ti, tenant := range tenants {
		// One SSE subscriber per tenant rides along for the whole storm; it
		// subscribes to the tenant's first sim and drains until the broker
		// closes the stream (or drops it — both are valid under load).
		for j := 0; j < perTenant; j++ {
			wg.Add(1)
			go func(tenant string, seed int64, follow bool) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				// Every sim shares one name: isolation must come from the
				// tenant/id namespace, not from the config.
				info := submitHTTP(t, ts, tenant, testConfig("soak", 6))
				idCh <- info.ID
				if follow {
					go followEvents(t, ts, info.ID)
				}
				driveLifecycle(t, ts, s, info.ID, rng)
			}(tenant, int64(ti*100+j), j == 0)
		}
	}
	wg.Wait()
	close(idCh)
	var ids []string
	for id := range idCh {
		ids = append(ids, id)
	}

	// Everything must settle into a terminal-or-suspended state; resume the
	// suspended stragglers so the final census only has terminal states.
	for _, id := range ids {
		waitFor(t, "settled "+id, 120*time.Second, func() bool {
			info, ok := s.Get(id)
			if !ok {
				t.Fatalf("sim %s vanished", id)
			}
			if info.State == StateSuspended {
				resp, err := http.Post(ts.URL+"/api/sims/"+id+"/resume", "", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				return false
			}
			return info.State.Terminal()
		})
	}

	// Invariant 1: budgets were never exceeded, even transiently.
	s.mu.Lock()
	maxUsed := s.maxUsed
	maxTenant := make(map[string]int, len(s.maxTenantUsed))
	for ten, n := range s.maxTenantUsed {
		maxTenant[ten] = n
	}
	s.mu.Unlock()
	if maxUsed > s.opt.PoolWorkers {
		t.Errorf("pool high-water mark %d exceeded PoolWorkers=%d", maxUsed, s.opt.PoolWorkers)
	}
	for ten, n := range maxTenant {
		if n > s.opt.TenantWorkers {
			t.Errorf("tenant %s high-water mark %d exceeded TenantWorkers=%d", ten, n, s.opt.TenantWorkers)
		}
	}

	// Invariant 2: no cross-tenant artifact collisions.  Every sim has its own
	// directory, and every completed sim left its final snapshot in it.
	dirs := map[string]string{}
	completed := 0
	for _, id := range ids {
		info, _ := s.Get(id)
		dir := filepath.Join(root, info.Tenant, info.ID)
		for prev, other := range dirs {
			if other == dir {
				t.Fatalf("sims %s and %s share directory %s", prev, id, dir)
			}
		}
		dirs[id] = dir
		if info.State == StateCompleted {
			completed++
			if _, err := os.Stat(filepath.Join(dir, "soak-final.sdf")); err != nil {
				t.Errorf("completed sim %s missing final artifact: %v", id, err)
			}
		}
	}
	if completed == 0 {
		t.Error("soak completed zero simulations — the drivers canceled everything, weakening the test")
	}

	// The paginated listing walks every record exactly once.
	seen := map[string]bool{}
	for page := 1; ; page++ {
		var lr listResponse
		getJSON(t, fmt.Sprintf("%s/api/sims?page=%d&perPage=3", ts.URL, page), &lr)
		if len(lr.Sims) == 0 {
			break
		}
		for _, info := range lr.Sims {
			if seen[info.ID] {
				t.Fatalf("sim %s appeared on two pages", info.ID)
			}
			seen[info.ID] = true
		}
	}
	if len(seen) != len(ids) {
		t.Fatalf("pagination walked %d sims, want %d", len(seen), len(ids))
	}

	// Server-level stats agree with the census.
	var srv ServerStats
	getJSON(t, ts.URL+"/api/stats", &srv)
	total := 0
	for _, n := range srv.Sims {
		total += n
	}
	if total != len(ids) {
		t.Fatalf("server stats count %d sims, want %d", total, len(ids))
	}
}

// driveLifecycle fires a seeded random sequence of suspend/resume/cancel calls
// at a running simulation over HTTP, then waits for it to settle.  Conflicts
// (409) are expected — the sim may complete mid-action — and tolerated; what
// is never tolerated is a 5xx or a hung state.
func driveLifecycle(t *testing.T, ts *httptest.Server, s *Server, id string, rng *rand.Rand) {
	post := func(action string) int {
		resp, err := http.Post(ts.URL+"/api/sims/"+id+"/"+action, "", nil)
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Errorf("%s %s returned %d", action, id, resp.StatusCode)
		}
		return resp.StatusCode
	}
	cycles := 1 + rng.Intn(2)
	for c := 0; c < cycles; c++ {
		// Let the run make progress (or sit queued) before acting.
		time.Sleep(time.Duration(1+rng.Intn(20)) * time.Millisecond)
		switch rng.Intn(4) {
		case 0: // cancel outright, ~25% of actions
			post("cancel")
			return
		default:
			post("suspend")
			// Wait until the suspend lands (or the sim finished first).
			deadline := time.Now().Add(60 * time.Second)
			for time.Now().Before(deadline) {
				info, ok := s.Get(id)
				if !ok || info.State.Terminal() || info.State == StateSuspended {
					break
				}
				time.Sleep(time.Millisecond)
			}
			post("resume")
		}
		// Poll the stats endpoint as part of the storm.
		var st struct{ Stats }
		getJSON(t, ts.URL+"/api/sims/"+id+"/stats", &st)
	}
}

// followEvents drains a simulation's SSE stream until the broker ends it.
func followEvents(t *testing.T, ts *httptest.Server, id string) {
	resp, err := http.Get(ts.URL + "/api/sims/" + id + "/events")
	if err != nil {
		t.Error(err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
	}
}
