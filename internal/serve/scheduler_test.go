package serve

import (
	"errors"
	"sort"
	"testing"
	"time"
)

// TestSchedulerFairShare pins the admission rotation: with a one-slot pool
// and two tenants, a tenant that queued three jobs first cannot run them
// back to back — admission alternates tenants while FIFO order holds within
// each tenant.
func TestSchedulerFairShare(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1, TenantWorkers: 1, QueueCap: 16})
	cfg := testConfig("fair", 2)
	var ids []string
	for i := 0; i < 3; i++ {
		info, err := s.Submit("bravo", cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for i := 0; i < 3; i++ {
		info, err := s.Submit("alfa", cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		waitState(t, s, id, StateCompleted, 60*time.Second)
	}

	// Reconstruct the admission order from the start timestamps (the pool
	// has one slot, so starts are strictly ordered).
	infos := make([]Info, 0, len(ids))
	for _, id := range ids {
		info, _ := s.Get(id)
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Started.Before(*infos[j].Started) })
	var tenants []string
	for _, in := range infos {
		tenants = append(tenants, in.Tenant)
	}
	want := []string{"bravo", "alfa", "bravo", "alfa", "bravo", "alfa"}
	for i := range want {
		if tenants[i] != want[i] {
			t.Fatalf("admission order %v, want alternating %v (tenant bravo must not monopolize the pool)", tenants, want)
		}
	}
}

// TestSchedulerBackpressure pins the bounded queue: with the single pool slot
// held by a long run, submissions beyond QueueCap come back ErrQueueFull.
func TestSchedulerBackpressure(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1, QueueCap: 2})
	long := testConfig("long", 500)
	holder, err := s.Submit("alfa", long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, holder.ID, StateRunning, 30*time.Second)

	var queued []string
	for i := 0; i < 2; i++ {
		info, err := s.Submit("alfa", testConfig("q", 2))
		if err != nil {
			t.Fatalf("submission %d within QueueCap rejected: %v", i, err)
		}
		queued = append(queued, info.ID)
	}
	if _, err := s.Submit("alfa", testConfig("q", 2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submission beyond QueueCap returned %v, want ErrQueueFull", err)
	}
	// Backpressure is per queue slot, not per tenant: another tenant is
	// rejected just the same.
	if _, err := s.Submit("bravo", testConfig("q", 2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("cross-tenant submission beyond QueueCap returned %v, want ErrQueueFull", err)
	}

	// Drain: cancel the holder and the queued jobs.
	for _, id := range append([]string{holder.ID}, queued...) {
		if _, err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range append([]string{holder.ID}, queued...) {
		waitState(t, s, id, StateCanceled, 30*time.Second)
	}
}

// TestSchedulerRejectsOversizedJobs pins that a job whose Workers cost can
// never fit the pool or the tenant budget is rejected at submit, not queued
// forever.
func TestSchedulerRejectsOversizedJobs(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 4, TenantWorkers: 2, QueueCap: 4})
	cfg := testConfig("wide", 2)
	cfg.Workers = 3 // fits the pool, exceeds the tenant budget
	if _, err := s.Submit("alfa", cfg); err == nil {
		t.Fatal("job wider than the tenant budget was accepted")
	}
	cfg.Workers = 5 // exceeds the pool outright
	if _, err := s.Submit("alfa", cfg); err == nil {
		t.Fatal("job wider than the pool was accepted")
	}
}

// TestSubmitRejectsUnservableConfigs pins the submission gates: invalid
// tenant names, the tcp transport (supervised subprocesses, not servable
// in-process) and configurations that fail Validate.
func TestSubmitRejectsUnservableConfigs(t *testing.T) {
	s := newTestServer(t, Options{PoolWorkers: 1})
	if _, err := s.Submit("../escape", testConfig("x", 2)); err == nil {
		t.Fatal("path-escaping tenant accepted")
	}
	if _, err := s.Submit("a/b", testConfig("x", 2)); err == nil {
		t.Fatal("tenant with separator accepted")
	}
	cfg := testConfig("x", 2)
	cfg.Transport = "tcp"
	cfg.Ranks = 2
	if _, err := s.Submit("alfa", cfg); err == nil {
		t.Fatal("tcp transport accepted by the in-process server")
	}
	bad := testConfig("x", 2)
	bad.Solver = "warp-drive"
	if _, err := s.Submit("alfa", bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	evil := testConfig("../../etc/cron", 2)
	if _, err := s.Submit("alfa", evil); err == nil {
		t.Fatal("path-escaping simulation name accepted")
	}
}
