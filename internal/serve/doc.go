// Package serve is the simulation-as-a-service layer: a long-running,
// multi-tenant server hosting many concurrent simulations over one bounded
// worker pool, composed entirely from primitives the library already
// guarantees — bit-identical checkpoint/restore (Simulation.WriteCheckpoint /
// RestoreCheckpoint), cooperative run cancellation (Simulation.RunContext),
// and the Observer / AnalysisObserver hooks.
//
// # Lifecycle
//
// A submission (a twohot.Config POSTed by a tenant) moves through a small
// state machine:
//
//	queued ──────► running ──────────────► completed
//	   │              │  ╲                     │
//	   │          suspending ► suspended ──► (resume ► queued)
//	   │              │                        │
//	   └─── canceled ◄┴── canceling      canceled
//	                  │
//	              failed
//
// Suspend cancels the run at the next step boundary and writes a checkpoint
// (closing the leapfrog first only when the stepper's state is not
// checkpoint-representable, exactly like Run's periodic checkpoints); resume
// re-enqueues the job, and the restored run continues the original step grid
// — the resumed trajectory is bit-identical to the uninterrupted run, which
// the lifecycle test pins end to end over the HTTP API.  Cancel stops at the
// next boundary without a checkpoint.  Delete is valid only for stopped
// simulations (suspended or terminal) and removes the record and every
// artifact.  Server.Close suspends all running simulations, so a drained
// server leaves only resumable state behind.
//
// # Scheduling and isolation
//
// Each job costs max(1, Config.Workers) slots of a global pool
// (Options.PoolWorkers).  A per-tenant budget (Options.TenantWorkers) caps
// the slots any one tenant holds, and admission is fair-share: tenants with
// queued work are served round-robin (FIFO within a tenant), so a tenant
// with a deep queue cannot starve the others.  The queue itself is bounded
// (Options.QueueCap); a full queue answers HTTP 429 with a Retry-After
// header — backpressure, not buffering.  Every simulation writes exclusively
// under Dir/<tenant>/<id>/, so identically-named configs from different
// tenants (or the same one) never collide, and Config.Validate rejects names
// that could escape that directory.
//
// # Diagnostics
//
// A per-simulation event stream (GET /api/sims/{id}/events, Server-Sent
// Events) carries "state", "step" (step, redshift, energy tallies, rung
// histogram — the StepInfo payload) and "analysis" events, fed from the
// observer hooks through a bounded fan-out broker.  Publishing never blocks
// the stepping loop: a subscriber whose buffer is full is dropped (and
// counted), never waited on.  The stream closes when the simulation reaches
// a terminal state; a suspended simulation's stream stays open and carries
// the resume.
//
// The REST surface follows the paginated resource + /stats exemplar
// (SNIPPETS.md Snippet 2); see the README "Serving simulations" section for
// the endpoint table.
package serve
