package serve

import (
	"sort"
	"strings"
	"time"

	twohot "twohot"
)

// State is a simulation's position in the serving lifecycle.
type State string

const (
	StateQueued     State = "queued"
	StateRunning    State = "running"
	StateSuspending State = "suspending" // suspend requested, run draining to its step boundary
	StateSuspended  State = "suspended"  // stopped with (usually) a checkpoint; resumable
	StateCanceling  State = "canceling"  // cancel requested, run draining
	StateCanceled   State = "canceled"
	StateCompleted  State = "completed"
	StateFailed     State = "failed"
)

// Terminal reports whether the state is final: the simulation will never run
// again (suspended is NOT terminal — it resumes).
func (st State) Terminal() bool {
	return st == StateCanceled || st == StateCompleted || st == StateFailed
}

// stopped reports whether the simulation holds no pool slots and no queue
// position: the states delete accepts.
func (st State) stopped() bool { return st.Terminal() || st == StateSuspended }

// Stats is the live diagnostic snapshot of a simulation, updated after every
// completed step from the Observer hook (the StepInfo payload).
type Stats struct {
	Step       int     `json:"step"`
	TotalSteps int     `json:"totalSteps"`
	Z          float64 `json:"z"`
	A          float64 `json:"a"`
	Particles  int     `json:"particles"`
	Kinetic    float64 `json:"kinetic"`
	Potential  float64 `json:"potential"`
	Rungs      []int   `json:"rungs,omitempty"`
	Suspends   int     `json:"suspends"`
	Resumes    int     `json:"resumes"`
}

// Info is the JSON view of a simulation record served by the API.
type Info struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	Name     string     `json:"name"`
	State    State      `json:"state"`
	Workers  int        `json:"workers"` // pool slots the job costs
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	Stats    Stats      `json:"stats"`
}

// sim is the server-side record.  Every field except cfg, id, tenant, dir and
// cost (immutable after Submit) is guarded by Server.mu.
type sim struct {
	id     string
	tenant string
	cfg    twohot.Config
	cost   int    // pool slots: max(1, cfg.Workers)
	dir    string // Dir/<tenant>/<id>; all artifacts live here

	state    State
	intent   intent // why the running context was canceled
	cancel   func(error)
	ckpt     string // checkpoint to resume from ("" = fresh start)
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	stats    Stats
}

// intent distinguishes the two reasons a running simulation's context gets
// canceled; the runner turns the same context.Canceled into a suspend
// checkpoint or a plain stop accordingly.
type intent int

const (
	intentNone intent = iota
	intentSuspend
	intentCancel
)

// infoLocked renders the JSON view; callers hold Server.mu.
func (sm *sim) infoLocked() Info {
	in := Info{
		ID:      sm.id,
		Tenant:  sm.tenant,
		Name:    sm.cfg.Name,
		State:   sm.state,
		Workers: sm.cost,
		Created: sm.created,
		Error:   sm.errMsg,
		Stats:   sm.stats,
	}
	if !sm.started.IsZero() {
		t := sm.started
		in.Started = &t
	}
	if !sm.finished.IsZero() {
		t := sm.finished
		in.Finished = &t
	}
	return in
}

// listLocked returns the Info views in creation order, optionally filtered by
// tenant and state; callers hold Server.mu.
func (s *Server) listLocked(tenant string, state State) []Info {
	out := make([]Info, 0, len(s.order))
	for _, id := range s.order {
		sm := s.sims[id]
		if tenant != "" && sm.tenant != tenant {
			continue
		}
		if state != "" && sm.state != state {
			continue
		}
		out = append(out, sm.infoLocked())
	}
	return out
}

// paginate slices one page out of the full listing, Snippet 2 style: pages
// are 1-based, perPage defaults to 50 and is capped at 200.
func paginate(all []Info, page, perPage int) (pageOut []Info, pageNum, per int) {
	if perPage <= 0 {
		perPage = 50
	}
	if perPage > 200 {
		perPage = 200
	}
	if page <= 0 {
		page = 1
	}
	lo := (page - 1) * perPage
	if lo >= len(all) {
		return []Info{}, page, perPage
	}
	hi := lo + perPage
	if hi > len(all) {
		hi = len(all)
	}
	return all[lo:hi], page, perPage
}

// safeName reports whether s is safe to interpolate into a single path
// component: non-empty, no separators, no "..", a conservative charset.
// Tenant names and catalog labels go through this.
func safeName(s string) bool {
	if s == "" || strings.Contains(s, "..") {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.' || r == '+':
		default:
			return false
		}
	}
	return true
}

// ServerStats is the server-wide /api/stats payload.
type ServerStats struct {
	PoolWorkers    int            `json:"poolWorkers"`
	TenantWorkers  int            `json:"tenantWorkers"`
	UsedWorkers    int            `json:"usedWorkers"`
	QueueCap       int            `json:"queueCap"`
	Queued         int            `json:"queued"`
	Sims           map[State]int  `json:"sims"`
	Tenants        map[string]int `json:"tenants"` // pool slots held per tenant
	DroppedStreams int            `json:"droppedStreams"`
}

// statsLocked assembles the server-wide view; callers hold Server.mu.
func (s *Server) statsLocked() ServerStats {
	st := ServerStats{
		PoolWorkers:   s.opt.PoolWorkers,
		TenantWorkers: s.opt.TenantWorkers,
		UsedWorkers:   s.used,
		QueueCap:      s.opt.QueueCap,
		Queued:        s.queued,
		Sims:          map[State]int{},
		Tenants:       map[string]int{},
	}
	for _, sm := range s.sims {
		st.Sims[sm.state]++
	}
	for t, n := range s.tenantUse {
		if n > 0 {
			st.Tenants[t] = n
		}
	}
	st.DroppedStreams = s.broker.droppedCount()
	return st
}

// tenantsWithWork returns the sorted tenants that have queued submissions;
// callers hold Server.mu.
func (s *Server) tenantsWithWork() []string {
	var tens []string
	for t, q := range s.queue {
		if len(q) > 0 {
			tens = append(tens, t)
		}
	}
	sort.Strings(tens)
	return tens
}
