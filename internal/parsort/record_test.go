package parsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// kvShapes generates the input distributions the record sort must handle:
// uniform random keys, heavily duplicated keys (only a handful of distinct
// values), all-equal keys, already-sorted and reverse-sorted input.
func kvShapes(n int, rng *rand.Rand) map[string][]KV {
	mk := func(key func(i int) uint64) []KV {
		recs := make([]KV, n)
		for i := range recs {
			recs[i] = KV{Key: key(i), Idx: int32(i)}
		}
		return recs
	}
	shapes := map[string][]KV{
		"random":     mk(func(int) uint64 { return rng.Uint64() }),
		"duplicates": mk(func(int) uint64 { return uint64(rng.Intn(5)) * 0x0123456789abcdef }),
		"all-equal":  mk(func(int) uint64 { return 0xdeadbeefcafe }),
	}
	sorted := mk(func(int) uint64 { return rng.Uint64() })
	sort.Slice(sorted, func(i, j int) bool { return kvLess(sorted[i], sorted[j]) })
	// Re-index so Idx is again the record's position (sorted input with
	// in-order indices, the common already-decomposed case).
	for i := range sorted {
		sorted[i].Idx = int32(i)
	}
	shapes["sorted"] = sorted

	reversed := make([]KV, n)
	for i := range reversed {
		reversed[i] = sorted[n-1-i]
		reversed[i].Idx = int32(i)
	}
	shapes["reversed"] = reversed
	return shapes
}

func TestSortKVMatchesReferenceAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Sizes straddle the insertion cutoff, the parallel cutoff, and odd
	// non-power-of-two lengths.
	sizes := []int{0, 1, 7, 100, 4097, 20000}
	if testing.Short() {
		sizes = []int{0, 1, 7, 100, 9000}
	}
	for _, n := range sizes {
		for name, input := range kvShapes(n, rng) {
			ref := append([]KV(nil), input...)
			sort.Slice(ref, func(i, j int) bool { return kvLess(ref[i], ref[j]) })
			for _, workers := range []int{1, 2, 3, 8} {
				got := append([]KV(nil), input...)
				SortKV(got, workers)
				if !KVIsSorted(got) {
					t.Fatalf("n=%d %s workers=%d: output not sorted", n, name, workers)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("n=%d %s workers=%d: record %d = %+v, want %+v",
							n, name, workers, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func TestSortKVQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12000)
		// Small key cardinality forces long tie runs resolved by Idx.
		card := 1 + rng.Intn(50)
		recs := make([]KV, n)
		for i := range recs {
			recs[i] = KV{Key: uint64(rng.Intn(card)) << uint(rng.Intn(40)), Idx: int32(i)}
		}
		ref := append([]KV(nil), recs...)
		sort.Slice(ref, func(i, j int) bool { return kvLess(ref[i], ref[j]) })
		SortKV(recs, 1+rng.Intn(8))
		for i := range ref {
			if recs[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAmericanFlagSortDuplicatesAndSortedInput extends the key-array sort's
// coverage to the shapes the tree build produces: heavily duplicated keys
// (equal-position particles) and already-sorted input (rebuilds of an
// unchanged snapshot).
func TestAmericanFlagSortDuplicatesAndSortedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{100, 5000} {
		dup := make([]uint64, n)
		perm := make([]int32, n)
		for i := range dup {
			dup[i] = uint64(rng.Intn(3)) * 0x1111111111111111
			perm[i] = int32(i)
		}
		orig := append([]uint64(nil), dup...)
		AmericanFlagSort(dup, perm)
		if !IsSorted(dup) {
			t.Fatalf("n=%d: duplicated keys not sorted", n)
		}
		for i := range dup {
			if orig[perm[i]] != dup[i] {
				t.Fatalf("n=%d: permutation does not carry duplicated keys", n)
			}
		}

		asc := make([]uint64, n)
		for i := range asc {
			asc[i] = uint64(i) * 7
		}
		AmericanFlagSort(asc, nil)
		if !IsSorted(asc) {
			t.Fatalf("n=%d: already-sorted input scrambled", n)
		}
	}
}
