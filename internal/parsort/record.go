package parsort

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// KV is a packed (key, index) sort record: the Morton/Hilbert key of a
// particle together with its index in the caller's original ordering.  The
// tree build sorts these records instead of permuting an index array through
// an indirect comparison sort, which both removes the pointer-chasing
// comparator and gives the parallel sort a flat, cache-friendly layout.
type KV struct {
	Key uint64
	Idx int32
}

// kvLess orders records by (Key, Idx), with Idx compared as unsigned so the
// comparison path and the radix path (kvByte) agree for every possible bit
// pattern.  The index tie-break makes the order total (indices are
// distinct), so the sorted sequence is unique: every correct sort of the
// same input produces bit-identical output regardless of algorithm, chunking
// or worker count.  This is the canonical particle order the deterministic
// parallel tree build relies on.
func kvLess(a, b KV) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return uint32(a.Idx) < uint32(b.Idx)
}

// kvDigits is the number of radix bytes in the composite (Key, Idx) sort key:
// eight key bytes followed by four index bytes.
const kvDigits = 12

// kvByte extracts radix digit d (most significant first) of the composite
// sort key.
func kvByte(r KV, d int) int {
	if d < 8 {
		return int((r.Key >> uint(56-8*d)) & 0xff)
	}
	return int((uint32(r.Idx) >> uint(24-8*(d-8))) & 0xff)
}

// SortKV sorts records by (Key, Idx) ascending using up to the given number
// of worker goroutines (workers <= 1 sorts serially).  Because the order is
// total, the output is identical for every worker count.
func SortKV(recs []KV, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(recs)
	if workers <= 1 || n < parallelSortCutoff {
		americanFlagKV(recs, 0)
		return
	}
	parallelSortKV(recs, workers, 0)
}

// parallelSortCutoff is the array size below which the scatter/merge overhead
// of the parallel sort exceeds its benefit.
const parallelSortCutoff = 1 << 13

// parallelSortKV is an MSD radix sort parallelized over both phases: a
// chunked counting/scatter pass on the byte at digit distributes the records
// into 256 buckets of a scratch array (chunk-ordered within each bucket, so
// even the intermediate state is deterministic), then the buckets are sorted
// independently by workers pulling from an atomic counter and copied back.
// A bucket holding most of the records — the norm on clustered inputs, where
// every key shares its leading bytes — would serialize that last phase, so
// oversized buckets recurse into this parallel sort on the next digit
// instead of being handed to a single worker.
func parallelSortKV(recs []KV, workers, digit int) {
	n := len(recs)
	if workers <= 1 || n < parallelSortCutoff || digit >= kvDigits {
		// digit can only exhaust for duplicate records, which distinct Idx
		// values rule out; the guard keeps the recursion well-founded.
		americanFlagKV(recs, digit)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk

	// Phase 1: per-chunk histograms of the current byte.
	counts := make([][256]int, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				counts[c][kvByte(recs[i], digit)]++
			}
		}(c, lo, hi)
	}
	wg.Wait()

	var total [256]int
	for c := 0; c < nChunks; c++ {
		for b := 0; b < 256; b++ {
			total[b] += counts[c][b]
		}
	}

	// All records in one bucket — every key shares this byte, the norm for
	// the leading digits of clustered input.  Scattering would only copy the
	// array onto itself; move straight to the next digit instead.
	occupied := 0
	for b := 0; b < 256; b++ {
		if total[b] > 0 {
			occupied++
		}
	}
	if occupied == 1 {
		parallelSortKV(recs, workers, digit+1)
		return
	}

	// Bucket start offsets, then per-chunk write cursors within each bucket:
	// chunk c writes bucket b at start[b] + sum of counts[<c][b].
	var start [257]int
	sum := 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += total[b]
	}
	start[256] = sum
	offsets := make([][256]int, nChunks)
	for b := 0; b < 256; b++ {
		off := start[b]
		for c := 0; c < nChunks; c++ {
			offsets[c][b] = off
			off += counts[c][b]
		}
	}

	// Phase 2: parallel scatter into scratch.
	scratch := make([]KV, n)
	for c := 0; c < nChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			cur := offsets[c]
			for i := lo; i < hi; i++ {
				b := kvByte(recs[i], digit)
				scratch[cur[b]] = recs[i]
				cur[b]++
			}
		}(c, lo, hi)
	}
	wg.Wait()

	// Phase 3: buckets small enough for one goroutine go to a worker pool;
	// oversized buckets are sorted afterwards with the full worker set, one
	// at a time, by recursing on the next digit.
	bigCut := n / (2 * workers)
	if bigCut < parallelSortCutoff {
		bigCut = parallelSortCutoff
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= 256 {
					return
				}
				lo, hi := start[b], start[b+1]
				if hi-lo > 0 && hi-lo <= bigCut {
					americanFlagKV(scratch[lo:hi], digit+1)
					copy(recs[lo:hi], scratch[lo:hi])
				}
			}
		}()
	}
	wg.Wait()
	for b := 0; b < 256; b++ {
		lo, hi := start[b], start[b+1]
		if hi-lo > bigCut {
			parallelSortKV(scratch[lo:hi], workers, digit+1)
			copy(recs[lo:hi], scratch[lo:hi])
		}
	}
}

// americanFlagKV is the serial in-place MSD radix sort over the composite
// (Key, Idx) digits, the record twin of americanFlag.
func americanFlagKV(recs []KV, digit int) {
	n := len(recs)
	if n < 2 {
		return
	}
	if n <= afsCutoff || digit >= kvDigits {
		insertionSortKV(recs)
		return
	}
	var count [256]int
	for _, r := range recs {
		count[kvByte(r, digit)]++
	}
	var start, end [256]int
	sum := 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += count[b]
		end[b] = sum
	}
	next := start
	for b := 0; b < 256; b++ {
		for next[b] < end[b] {
			i := next[b]
			rb := kvByte(recs[i], digit)
			if rb == b {
				next[b]++
				continue
			}
			j := next[rb]
			recs[i], recs[j] = recs[j], recs[i]
			next[rb]++
		}
	}
	for b := 0; b < 256; b++ {
		lo, hi := start[b], end[b]
		if hi-lo > 1 {
			americanFlagKV(recs[lo:hi], digit+1)
		}
	}
}

func insertionSortKV(recs []KV) {
	for i := 1; i < len(recs); i++ {
		r := recs[i]
		j := i - 1
		for j >= 0 && kvLess(r, recs[j]) {
			recs[j+1] = recs[j]
			j--
		}
		recs[j+1] = r
	}
}

// KVIsSorted reports whether recs are in (Key, Idx) order.
func KVIsSorted(recs []KV) bool {
	for i := 1; i < len(recs); i++ {
		if kvLess(recs[i], recs[i-1]) {
			return false
		}
	}
	return true
}
