package parsort

import (
	"sort"

	"twohot/internal/comm"
)

// AmericanFlagSort sorts keys in place (ascending) using the in-place MSD
// radix sort of McIlroy, Bostic & McIlroy that the paper uses for the on-node
// portion of the decomposition sort.  perm, if non-nil, must have the same
// length and is permuted alongside the keys (carrying particle indices).
func AmericanFlagSort(keys []uint64, perm []int32) {
	if perm != nil && len(perm) != len(keys) {
		panic("parsort: perm length mismatch")
	}
	americanFlag(keys, perm, 56)
}

const afsCutoff = 32

func americanFlag(keys []uint64, perm []int32, shift int) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n <= afsCutoff || shift < 0 {
		insertionSort(keys, perm)
		return
	}
	var count [256]int
	for _, k := range keys {
		count[(k>>uint(shift))&0xff]++
	}
	var start, end [256]int
	sum := 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += count[b]
		end[b] = sum
	}
	// Permute in place ("flag" distribution).
	next := start
	for b := 0; b < 256; b++ {
		for next[b] < end[b] {
			i := next[b]
			kb := int((keys[i] >> uint(shift)) & 0xff)
			if kb == b {
				next[b]++
				continue
			}
			j := next[kb]
			keys[i], keys[j] = keys[j], keys[i]
			if perm != nil {
				perm[i], perm[j] = perm[j], perm[i]
			}
			next[kb]++
		}
	}
	// Recurse into buckets on the next byte.
	for b := 0; b < 256; b++ {
		lo, hi := start[b], end[b]
		if hi-lo > 1 {
			var p []int32
			if perm != nil {
				p = perm[lo:hi]
			}
			americanFlag(keys[lo:hi], p, shift-8)
		}
	}
}

func insertionSort(keys []uint64, perm []int32) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		var p int32
		if perm != nil {
			p = perm[i]
		}
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			if perm != nil {
				perm[j+1] = perm[j]
			}
			j--
		}
		keys[j+1] = k
		if perm != nil {
			perm[j+1] = p
		}
	}
}

// IsSorted reports whether keys are non-decreasing.
func IsSorted(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// ChooseSplitters performs the sampling phase of the distributed sample sort:
// every rank contributes a weighted sample of its keys, the concatenated
// sample is sorted, and nRanks-1 splitter keys are chosen so that the
// cumulative weight between consecutive splitters is approximately equal.
// If prev is non-nil it is used to seed the sample (the paper's optimization
// of placing samples near the previous decomposition's splits).
func ChooseSplitters(r *comm.Rank, keys []uint64, weights []float64, samplesPerRank int, prev []uint64) ([]uint64, error) {
	if samplesPerRank < 1 {
		samplesPerRank = 1
	}
	n := len(keys)
	type kw struct {
		k uint64
		w float64
	}
	// Evenly spaced local sample (keys need not be sorted; sampling evenly
	// spaced indices of an unsorted array still samples the distribution).
	local := make([]uint64, 0, samplesPerRank+len(prev))
	for s := 0; s < samplesPerRank && n > 0; s++ {
		idx := s * n / samplesPerRank
		local = append(local, keys[idx])
	}
	// Seed with previous splitters so refinement is cheap when the
	// distribution barely moved.
	local = append(local, prev...)
	all, err := r.AllgatherUint64(local)
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	// Weight-balanced choice: compute local weight below each candidate,
	// reduce across ranks, then pick candidates at the weight quantiles.
	totalLocal := 0.0
	if weights == nil {
		totalLocal = float64(n)
	} else {
		for _, w := range weights {
			totalLocal += w
		}
	}
	totalWeight, err := r.AllreduceFloat64(totalLocal, "sum")
	if err != nil {
		return nil, err
	}

	sortedLocal := make([]kw, n)
	for i := range keys {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		sortedLocal[i] = kw{keys[i], w}
	}
	sort.Slice(sortedLocal, func(i, j int) bool { return sortedLocal[i].k < sortedLocal[j].k })
	cum := make([]float64, n+1)
	for i, e := range sortedLocal {
		cum[i+1] = cum[i] + e.w
	}
	weightBelow := func(key uint64) float64 {
		lo := sort.Search(n, func(i int) bool { return sortedLocal[i].k >= key })
		return cum[lo]
	}

	// Global weight below each distinct candidate (one reduction per
	// candidate, identical candidate list on every rank).
	candidates := dedup(all)
	globalBelow := make([]float64, len(candidates))
	for i, cand := range candidates {
		gb, err := r.AllreduceFloat64(weightBelow(cand), "sum")
		if err != nil {
			return nil, err
		}
		globalBelow[i] = gb
	}

	nr := r.N()
	splitters := make([]uint64, 0, nr-1)
	for s := 1; s < nr; s++ {
		target := totalWeight * float64(s) / float64(nr)
		best := candidates[0]
		bestDiff := -1.0
		for i, cand := range candidates {
			diff := globalBelow[i] - target
			if diff < 0 {
				diff = -diff
			}
			if bestDiff < 0 || diff < bestDiff {
				bestDiff = diff
				best = cand
			}
		}
		splitters = append(splitters, best)
	}
	sort.Slice(splitters, func(i, j int) bool { return splitters[i] < splitters[j] })
	return splitters, nil
}

func dedup(sorted []uint64) []uint64 {
	out := sorted[:0:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// OwnerOf returns the rank owning a key given the nRanks-1 sorted splitters:
// rank i owns keys in [splitters[i-1], splitters[i]).
func OwnerOf(key uint64, splitters []uint64) int {
	return sort.Search(len(splitters), func(i int) bool { return key < splitters[i] })
}
