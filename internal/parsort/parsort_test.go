package parsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"twohot/internal/comm"
)

func TestAmericanFlagSortMatchesStdSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		keys := make([]uint64, n)
		perm := make([]int32, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			perm[i] = int32(i)
		}
		orig := append([]uint64(nil), keys...)
		AmericanFlagSort(keys, perm)
		if !IsSorted(keys) {
			return false
		}
		// The permutation must carry the original keys along.
		for i := range keys {
			if orig[perm[i]] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAmericanFlagSortDuplicatesAndSmall(t *testing.T) {
	keys := []uint64{5, 5, 5, 1, 1, 9}
	AmericanFlagSort(keys, nil)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("duplicates not sorted")
	}
	empty := []uint64{}
	AmericanFlagSort(empty, nil)
	one := []uint64{42}
	AmericanFlagSort(one, nil)
}

func TestOwnerOf(t *testing.T) {
	splitters := []uint64{100, 200, 300}
	cases := map[uint64]int{0: 0, 99: 0, 100: 1, 250: 2, 300: 3, 1000: 3}
	for k, want := range cases {
		if got := OwnerOf(k, splitters); got != want {
			t.Errorf("OwnerOf(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestChooseSplittersBalances(t *testing.T) {
	const nRanks = 4
	const perRank = 2000
	w := comm.NewWorld(nRanks)
	counts := make([][]int, nRanks)
	err := w.Run(func(r *comm.Rank) error {
		rng := rand.New(rand.NewSource(int64(r.ID) + 1))
		keys := make([]uint64, perRank)
		for i := range keys {
			keys[i] = uint64(rng.Int63())
		}
		splitters, err := ChooseSplitters(r, keys, nil, 64, nil)
		if err != nil {
			return err
		}
		// Count how many local keys fall in each owner range; accumulate.
		c := make([]int, nRanks)
		for _, k := range keys {
			c[OwnerOf(k, splitters)]++
		}
		counts[r.ID] = c
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := make([]int, nRanks)
	for _, c := range counts {
		for i, v := range c {
			total[i] += v
		}
	}
	mean := float64(nRanks*perRank) / nRanks
	for i, v := range total {
		if float64(v) < 0.5*mean || float64(v) > 1.5*mean {
			t.Errorf("rank %d would own %d keys (mean %g): imbalanced splitters", i, v, mean)
		}
	}
}
