package parsort

// Near-sorted fast path for the record sort.
//
// Warren's production runs amortize the decomposition sort across timesteps:
// particles barely move per step, so re-keying them in the previous step's
// sorted order yields a record array that is already almost in (key, idx)
// order.  A full MSD radix pass gains nothing from that structure — it touches
// every byte of every record regardless — so the incremental tree rebuild
// routes through SortKVAdaptive instead: displaced records are peeled off the
// sorted spine, sorted on their own, and merged back, O(n + d·log d) for d
// displaced records.  When the disorder is too large for the fast path to pay
// off the input is handed to the parallel radix sort unchanged.
//
// Both paths implement the same total order (kvLess), so the output is
// bit-identical to SortKV whichever path runs — the property the incremental
// build's bit-identity guarantee rests on.

// AdaptiveStats reports what SortKVAdaptive did, so callers (and the step
// benchmark) can see how sorted their input really was.
type AdaptiveStats struct {
	// Displaced is the number of records peeled off the sorted spine (0 for
	// perfectly sorted input).  When FastPath is false it is the spine-scan
	// count at which the fast path was abandoned.
	Displaced int
	// FastPath reports whether the displaced-merge path ran; false means the
	// input was disordered enough to fall back to the full radix sort.
	FastPath bool
}

// adaptiveMaxDisorder bounds the displaced fraction the fast path accepts.
// The fast path costs three linear passes plus a radix sort of the displaced
// records; the full radix sort costs several scatter passes over everything.
// Up to about a quarter of the records displaced the fast path still wins —
// clustered snapshots displace noticeably more records per unit of drift than
// uniform ones (tiny key gaps inside the blobs), so the bound errs high.
func adaptiveMaxDisorder(n int) int { return n / 4 }

// SortKVAdaptive sorts recs exactly like SortKV but exploits pre-existing
// order: a single scan finds the records that break the ascending spine; if
// they are few they are extracted, sorted alone and merged back, otherwise the
// call degrades to SortKV(recs, workers).  The scan and the merge are single
// memory-bound passes, so they run on the calling goroutine; workers only
// matter for the fallback.
func SortKVAdaptive(recs []KV, workers int) AdaptiveStats {
	n := len(recs)
	if n < 2 {
		return AdaptiveStats{FastPath: true}
	}

	// Pass 1: walk the array keeping a greedy ascending spine; count the
	// records that would have to move.  A record nudged slightly out of place
	// displaces only itself, which is the near-static workload this path is
	// for.  The greedy spine has one pathology — a large element arriving
	// early poisons the running maximum and displaces everything after it —
	// and the abort threshold catches exactly that, handing the array to the
	// radix sort before anything has been moved.
	maxDisplaced := adaptiveMaxDisorder(n)
	displaced := 0
	last := recs[0]
	for i := 1; i < n; i++ {
		if kvLess(recs[i], last) {
			displaced++
			if displaced > maxDisplaced {
				SortKV(recs, workers)
				return AdaptiveStats{Displaced: displaced, FastPath: false}
			}
		} else {
			last = recs[i]
		}
	}
	if displaced == 0 {
		return AdaptiveStats{FastPath: true}
	}

	// Pass 2: stable-compact the spine to the front of recs and collect the
	// displaced records.  Spine elements only move left, so the compaction is
	// safe in place and preserves their (already sorted) order.
	buf := make([]KV, 0, displaced)
	keep := 1
	last = recs[0]
	for i := 1; i < n; i++ {
		if kvLess(recs[i], last) {
			buf = append(buf, recs[i])
			continue
		}
		last = recs[i]
		recs[keep] = recs[i]
		keep++
	}
	americanFlagKV(buf, 0)

	// Pass 3: merge the spine recs[:keep] and the sorted buffer into
	// recs[:n] from the back.  The write cursor stays strictly ahead of the
	// unread spine suffix (w >= i+j+1 > i), so the merge is safe in place.
	// The order is total (indices are distinct), so ties cannot occur and the
	// result is the unique sorted sequence — bit-identical to SortKV.
	i, j := keep-1, len(buf)-1
	for w := n - 1; j >= 0; w-- {
		if i >= 0 && kvLess(buf[j], recs[i]) {
			recs[w] = recs[i]
			i--
		} else {
			recs[w] = buf[j]
			j--
		}
	}
	return AdaptiveStats{Displaced: displaced, FastPath: true}
}
