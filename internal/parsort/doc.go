// Package parsort implements the sorting machinery behind the space-filling
// curve domain decomposition (Section 3.1 of the paper) and the incremental
// stepping pipeline built on top of it.
//
// # Contract
//
// Three layers share one total order:
//
//   - AmericanFlagSort: an in-place MSD radix sort over raw uint64 keys
//     (McIlroy, Bostic & McIlroy), optionally permuting a parallel index
//     array, used for the on-node portion of the distributed sample sort.
//   - SortKV / SortKVAdaptive: a worker-parallel sort of packed (key, index)
//     records — the tree build's sort stage.  The order is total: ties on
//     the key are broken by the original index, so the sorted sequence is a
//     pure function of the multiset of records, never of scheduling.
//     SortKVAdaptive additionally detects a near-sorted input (the previous
//     step's order re-keyed) and merges the displaced records into the
//     sorted spine instead of re-running the radix passes; its Stats report
//     whether the fast path ran and how many records had moved.
//   - ChooseSplitters / OwnerOf: the distributed sample sort over the comm
//     runtime, picking processor-domain splitter keys (optionally weighted
//     by per-particle work) and routing keys to owning ranks.
//
// # Bit-identity invariants
//
// Because the record order is total, every consumer — the hashed oct-tree
// build above all — produces bit-identical results regardless of the worker
// count, of whether the adaptive fast path or the full radix sort ran, and
// of how stale the "previous order" hint was.  The property tests in this
// package pin SortKV against the serial reference sort and SortKVAdaptive
// against SortKV for arbitrary displacement fractions.
//
// # Concurrency model
//
// Sort calls partition their input into disjoint ranges per worker and join
// before returning; the API is synchronous and the slices are owned by the
// caller.  Individual sorts must not be invoked concurrently on overlapping
// slices.  ChooseSplitters participates in collective communication and
// must be called by every rank of the communicator, like any collective.
package parsort
