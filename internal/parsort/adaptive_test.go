package parsort

import (
	"math/rand"
	"testing"
)

// adaptiveInput builds a near-sorted record array: a sorted base with a
// fraction of the records swapped forward by up to maxJump slots.  Small
// jumps model near-static drift (each swap displaces about one record from
// the greedy spine); large jumps displace the whole skipped run, modelling
// heavier mixing.
func adaptiveInput(n int, frac float64, maxJump int, seed int64) []KV {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]KV, n)
	for i := range recs {
		recs[i] = KV{Key: uint64(i) * 7, Idx: int32(i)}
	}
	moved := int(frac * float64(n))
	for m := 0; m < moved; m++ {
		i := rng.Intn(n)
		j := i + 1 + rng.Intn(maxJump)
		if j >= n {
			j = n - 1
		}
		recs[i], recs[j] = recs[j], recs[i]
	}
	return recs
}

// sortKVRefEqual asserts recs match a SortKV-sorted copy of want exactly.
func sortKVRefEqual(t *testing.T, label string, got, want []KV) {
	t.Helper()
	ref := append([]KV(nil), want...)
	SortKV(ref, 1)
	if len(got) != len(ref) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("%s: record %d differs: %+v vs %+v", label, i, got[i], ref[i])
		}
	}
}

func TestSortKVAdaptiveMatchesReference(t *testing.T) {
	cases := []struct {
		name     string
		make     func() []KV
		fastPath bool // expected path (informational assertions below)
	}{
		{"sorted", func() []KV { return adaptiveInput(5000, 0, 2, 1) }, true},
		{"near-sorted-1pct", func() []KV { return adaptiveInput(5000, 0.01, 2, 2) }, true},
		{"near-sorted-3pct", func() []KV { return adaptiveInput(5000, 0.03, 2, 3) }, true},
		{"disordered-20pct", func() []KV { return adaptiveInput(5000, 0.2, 16, 8) }, false},
		{"random", func() []KV {
			rng := rand.New(rand.NewSource(4))
			recs := make([]KV, 5000)
			for i := range recs {
				recs[i] = KV{Key: rng.Uint64(), Idx: int32(i)}
			}
			return recs
		}, false},
		{"reversed", func() []KV {
			recs := make([]KV, 5000)
			for i := range recs {
				recs[i] = KV{Key: uint64(5000 - i), Idx: int32(i)}
			}
			return recs
		}, false},
		{"rogue-head", func() []KV {
			// One huge element first: the greedy spine would displace every
			// later record, so the fast path must abort cleanly.
			recs := adaptiveInput(5000, 0, 2, 5)
			recs[0].Key = ^uint64(0)
			return recs
		}, false},
		{"duplicate-keys", func() []KV {
			// Ties broken by Idx: near-sorted array of heavily duplicated
			// keys still has a unique sorted order.
			rng := rand.New(rand.NewSource(6))
			recs := make([]KV, 5000)
			for i := range recs {
				recs[i] = KV{Key: uint64(i / 50), Idx: int32(i)}
			}
			for m := 0; m < 100; m++ {
				i := rng.Intn(len(recs) - 1)
				recs[i], recs[i+1] = recs[i+1], recs[i]
			}
			return recs
		}, true},
		{"tiny", func() []KV { return []KV{{Key: 9, Idx: 0}, {Key: 3, Idx: 1}} }, true},
		{"empty", func() []KV { return nil }, true},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			in := tc.make()
			orig := append([]KV(nil), in...)
			st := SortKVAdaptive(in, workers)
			sortKVRefEqual(t, tc.name, in, orig)
			if len(orig) >= 100 && st.FastPath != tc.fastPath {
				t.Errorf("%s: FastPath = %v, want %v (displaced %d)", tc.name, st.FastPath, tc.fastPath, st.Displaced)
			}
			if tc.name == "sorted" && st.Displaced != 0 {
				t.Errorf("sorted input reported %d displaced records", st.Displaced)
			}
		}
	}
}

func TestSortKVAdaptiveQuickProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		frac := rng.Float64() * rng.Float64() // biased toward small disorder
		recs := adaptiveInput(n, frac, 1+rng.Intn(16), rng.Int63())
		orig := append([]KV(nil), recs...)
		SortKVAdaptive(recs, 1+rng.Intn(4))
		if !KVIsSorted(recs) {
			t.Fatalf("trial %d (n=%d frac=%.3f): output not sorted", trial, n, frac)
		}
		sortKVRefEqual(t, "quick", recs, orig)
	}
}
