// Package grid implements mesh operations shared by the initial-condition
// generator, the particle-mesh baseline solver and the measurement pipeline:
// cloud-in-cell (CIC) mass deposit and interpolation, density-contrast
// fields, and power-spectrum estimation with CIC deconvolution and shot-noise
// subtraction (the diagnostic of Figure 7).
package grid

import (
	"math"
	"runtime"
	"sync"

	"twohot/internal/fft"
	"twohot/internal/vec"
)

// Mesh is a scalar field sampled on a regular N^3 grid covering a periodic
// cube of side L.
type Mesh struct {
	N    int
	L    float64
	Data []float64
}

// NewMesh allocates an N^3 mesh for box size L.
func NewMesh(n int, l float64) *Mesh {
	return &Mesh{N: n, L: l, Data: make([]float64, n*n*n)}
}

// Index returns the linear index of cell (i, j, k) with periodic wrapping.
func (m *Mesh) Index(i, j, k int) int {
	n := m.N
	i = ((i % n) + n) % n
	j = ((j % n) + n) % n
	k = ((k % n) + n) % n
	return (i*n+j)*n + k
}

// At returns the value of cell (i,j,k).
func (m *Mesh) At(i, j, k int) float64 { return m.Data[m.Index(i, j, k)] }

// CellSize returns L/N.
func (m *Mesh) CellSize() float64 { return m.L / float64(m.N) }

// Clear zeroes the mesh.
func (m *Mesh) Clear() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Total returns the sum over all cells.
func (m *Mesh) Total() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// cicWeights returns the base cell and the per-dimension weights of the
// cloud-in-cell assignment for a position.
func (m *Mesh) cicWeights(p vec.V3) (base [3]int, w [3][2]float64) {
	inv := float64(m.N) / m.L
	for d := 0; d < 3; d++ {
		x := p[d] * inv
		// Center-of-cell convention: cell i covers [i, i+1); the CIC cloud
		// is centered on the particle.
		x -= 0.5
		i := int(math.Floor(x))
		f := x - float64(i)
		base[d] = i
		w[d][0] = 1 - f
		w[d][1] = f
	}
	return base, w
}

// DepositCIC adds mass contributions from particles onto the mesh using
// cloud-in-cell weights.  Positions must lie within [0, L).
func (m *Mesh) DepositCIC(pos []vec.V3, mass []float64) {
	for idx, p := range pos {
		mm := 1.0
		if mass != nil {
			mm = mass[idx]
		}
		base, w := m.cicWeights(p)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				for c := 0; c < 2; c++ {
					m.Data[m.Index(base[0]+a, base[1]+b, base[2]+c)] += mm * w[0][a] * w[1][b] * w[2][c]
				}
			}
		}
	}
}

// InterpolateCIC evaluates the mesh at the particle positions using the same
// cloud-in-cell kernel used for deposit.
func (m *Mesh) InterpolateCIC(pos []vec.V3, out []float64) {
	for idx, p := range pos {
		base, w := m.cicWeights(p)
		v := 0.0
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				for c := 0; c < 2; c++ {
					v += m.At(base[0]+a, base[1]+b, base[2]+c) * w[0][a] * w[1][b] * w[2][c]
				}
			}
		}
		out[idx] = v
	}
}

// Overdensity converts a deposited mass mesh into the density contrast
// delta = rho/rho_mean - 1 in place.  It returns the mean cell mass.
func (m *Mesh) Overdensity() float64 {
	mean := m.Total() / float64(len(m.Data))
	if mean == 0 {
		return 0
	}
	for i := range m.Data {
		m.Data[i] = m.Data[i]/mean - 1
	}
	return mean
}

// ToComplex copies the mesh into a complex FFT grid.
func (m *Mesh) ToComplex() *fft.Grid3 {
	g := fft.NewCube(m.N)
	for i, v := range m.Data {
		g.Data[i] = complex(v, 0)
	}
	return g
}

// FromComplex copies the real part of a complex grid into the mesh.
func (m *Mesh) FromComplex(g *fft.Grid3) {
	for i := range m.Data {
		m.Data[i] = real(g.Data[i])
	}
}

// PowerSpectrumResult is one k bin of a measured spectrum.
type PowerSpectrumResult struct {
	K     float64 // bin-averaged wavenumber [h/Mpc]
	P     float64 // power [(Mpc/h)^3]
	Modes int     // number of Fourier modes in the bin
}

// PowerSpectrumOptions controls the estimator.
type PowerSpectrumOptions struct {
	NBins          int     // number of logarithmic bins (default: N/2 linear-ish bins)
	DeconvolveCIC  bool    // divide by the CIC assignment window
	SubtractShot   bool    // subtract 1/n shot noise
	NumParticles   int     // needed when SubtractShot is set
	LogarithmicK   bool    // logarithmic binning (default linear in k)
	KMin, KMax     float64 // bin range; defaults to fundamental..Nyquist
	InterlaceAlias bool    // reserved; not implemented
	// Workers bounds the goroutines of the mode-binning sweep (0 =
	// GOMAXPROCS).  Each i-plane of k space is accumulated into its own
	// partial bins and the partials are reduced in plane order, so the
	// floating-point sums — and therefore the emitted spectra — are
	// bit-identical for every worker count.
	Workers int
}

// MeasurePower estimates the power spectrum of the density contrast held in
// the mesh.  The mesh must already contain delta (use Overdensity).
func (m *Mesh) MeasurePower(opt PowerSpectrumOptions) []PowerSpectrumResult {
	n := m.N
	l := m.L
	kf := 2 * math.Pi / l
	kny := kf * float64(n) / 2
	if opt.KMin == 0 {
		opt.KMin = kf
	}
	if opt.KMax == 0 {
		opt.KMax = kny
	}
	if opt.NBins == 0 {
		opt.NBins = n / 2
	}

	g := m.ToComplex()
	g.Forward()

	binOf := func(k float64) int {
		if k < opt.KMin || k > opt.KMax {
			return -1
		}
		if opt.LogarithmicK {
			return int(float64(opt.NBins) * math.Log(k/opt.KMin) / math.Log(opt.KMax/opt.KMin))
		}
		return int(float64(opt.NBins) * (k - opt.KMin) / (opt.KMax - opt.KMin))
	}

	vol := l * l * l
	norm := vol / float64(n*n*n) / float64(n*n*n) // V |delta_k|^2 / N^6

	// Per-plane partial bins, filled concurrently (each i-plane is written by
	// exactly one worker) and reduced sequentially in plane order below, so
	// the bin sums carry the same floating-point association for every
	// worker count.
	planeP := make([][]float64, n)
	planeK := make([][]float64, n)
	planeCnt := make([][]int, n)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	planes := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range planes {
				sumP := make([]float64, opt.NBins)
				sumK := make([]float64, opt.NBins)
				cnt := make([]int, opt.NBins)
				ki := float64(fft.FreqIndex(i, n)) * kf
				for j := 0; j < n; j++ {
					kj := float64(fft.FreqIndex(j, n)) * kf
					for k := 0; k < n; k++ {
						if i == 0 && j == 0 && k == 0 {
							continue
						}
						kk := float64(fft.FreqIndex(k, n)) * kf
						kmag := math.Sqrt(ki*ki + kj*kj + kk*kk)
						b := binOf(kmag)
						if b < 0 || b >= opt.NBins {
							continue
						}
						c := g.At(i, j, k)
						p := (real(c)*real(c) + imag(c)*imag(c)) * norm
						if opt.DeconvolveCIC {
							w := cicWindow(ki, kj, kk, l, n)
							if w > 1e-8 {
								p /= w * w
							}
						}
						if opt.SubtractShot && opt.NumParticles > 0 {
							p -= vol / float64(opt.NumParticles)
						}
						sumP[b] += p
						sumK[b] += kmag
						cnt[b]++
					}
				}
				planeP[i], planeK[i], planeCnt[i] = sumP, sumK, cnt
			}
		}()
	}
	for i := 0; i < n; i++ {
		planes <- i
	}
	close(planes)
	wg.Wait()

	sumP := make([]float64, opt.NBins)
	sumK := make([]float64, opt.NBins)
	cnt := make([]int, opt.NBins)
	for i := 0; i < n; i++ {
		for b := 0; b < opt.NBins; b++ {
			sumP[b] += planeP[i][b]
			sumK[b] += planeK[i][b]
			cnt[b] += planeCnt[i][b]
		}
	}

	var out []PowerSpectrumResult
	for b := 0; b < opt.NBins; b++ {
		if cnt[b] == 0 {
			continue
		}
		out = append(out, PowerSpectrumResult{
			K:     sumK[b] / float64(cnt[b]),
			P:     sumP[b] / float64(cnt[b]),
			Modes: cnt[b],
		})
	}
	return out
}

// cicWindow is the Fourier-space CIC assignment window
// prod_i sinc^2(k_i L / (2N)).
func cicWindow(kx, ky, kz, l float64, n int) float64 {
	h := l / float64(n)
	s := func(k float64) float64 {
		x := k * h / 2
		if math.Abs(x) < 1e-12 {
			return 1
		}
		v := math.Sin(x) / x
		return v * v
	}
	return s(kx) * s(ky) * s(kz)
}

// CICWindow exposes the assignment window for use by the initial-condition
// discreteness correction (DEC).
func CICWindow(kx, ky, kz, l float64, n int) float64 { return cicWindow(kx, ky, kz, l, n) }

// MeasureParticlePower is a convenience helper: deposit particles, convert to
// overdensity and measure the power spectrum.
func MeasureParticlePower(pos []vec.V3, l float64, nMesh int, opt PowerSpectrumOptions) []PowerSpectrumResult {
	m := NewMesh(nMesh, l)
	m.DepositCIC(pos, nil)
	m.Overdensity()
	if opt.NumParticles == 0 {
		opt.NumParticles = len(pos)
	}
	opt.DeconvolveCIC = true
	return m.MeasurePower(opt)
}
