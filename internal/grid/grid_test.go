package grid

import (
	"math"
	"math/rand"
	"testing"

	"twohot/internal/vec"
)

func TestCICConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMesh(16, 100)
	n := 500
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	total := 0.0
	for i := range pos {
		pos[i] = vec.V3{100 * rng.Float64(), 100 * rng.Float64(), 100 * rng.Float64()}
		mass[i] = rng.Float64() + 0.5
		total += mass[i]
	}
	m.DepositCIC(pos, mass)
	if math.Abs(m.Total()-total)/total > 1e-12 {
		t.Errorf("CIC deposit lost mass: %g vs %g", m.Total(), total)
	}
}

func TestCICInterpolationOfLinearField(t *testing.T) {
	// CIC interpolation reproduces a linear field exactly (away from the
	// periodic wrap).
	n := 16
	l := 1.0
	m := NewMesh(n, l)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x := (float64(i) + 0.5) / float64(n)
				m.Data[m.Index(i, j, k)] = 2*x + 1
			}
		}
	}
	pos := []vec.V3{{0.4, 0.5, 0.5}, {0.52, 0.22, 0.7}}
	out := make([]float64, len(pos))
	m.InterpolateCIC(pos, out)
	for i, p := range pos {
		want := 2*p[0] + 1
		if math.Abs(out[i]-want) > 1e-12 {
			t.Errorf("interpolation at %v: %g want %g", p, out[i], want)
		}
	}
}

func TestPowerSpectrumOfPlaneWave(t *testing.T) {
	// delta(x) = A cos(k1 x) has P concentrated in the k1 bin with amplitude
	// A^2 V / 2 (for the discrete convention used here).
	n := 32
	l := 200.0
	amp := 0.25
	mode := 4
	m := NewMesh(n, l)
	for i := 0; i < n; i++ {
		v := amp * math.Cos(2*math.Pi*float64(mode)*float64(i)/float64(n))
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				m.Data[m.Index(i, j, k)] = v
			}
		}
	}
	res := m.MeasurePower(PowerSpectrumOptions{NBins: n / 2})
	kTarget := 2 * math.Pi / l * float64(mode)
	vol := l * l * l
	// The wave contributes V A^2/4 at +k and at -k; both land in the same
	// |k| bin, so the bin's total power must be V A^2/2.
	wantTotal := amp * amp * vol / 2
	// The peak lands in the single bin containing kTarget; all the power
	// must be there and nowhere else.
	best := -1
	for i, r := range res {
		if best < 0 || math.Abs(r.K-kTarget) < math.Abs(res[best].K-kTarget) {
			best = i
		}
	}
	if best < 0 {
		t.Fatal("no spectrum bins measured")
	}
	binTotal := res[best].P * float64(res[best].Modes)
	if math.Abs(binTotal-wantTotal)/wantTotal > 0.05 {
		t.Errorf("plane-wave power: bin total %g, want %g", binTotal, wantTotal)
	}
	for i, r := range res {
		if i != best && r.P*float64(r.Modes) > 1e-6*wantTotal {
			t.Errorf("unexpected power %g in bin k=%g", r.P*float64(r.Modes), r.K)
		}
	}
}

func TestOverdensityMeanZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMesh(8, 1)
	pos := make([]vec.V3, 2000)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	m.DepositCIC(pos, nil)
	m.Overdensity()
	mean := m.Total() / float64(len(m.Data))
	if math.Abs(mean) > 1e-12 {
		t.Errorf("overdensity mean = %g", mean)
	}
}

func TestCICWindowLimits(t *testing.T) {
	if math.Abs(CICWindow(0, 0, 0, 100, 32)-1) > 1e-12 {
		t.Error("window at k=0 must be 1")
	}
	ny := math.Pi * 32 / 100
	if CICWindow(ny, 0, 0, 100, 32) >= 1 {
		t.Error("window at the Nyquist frequency must be < 1")
	}
}
