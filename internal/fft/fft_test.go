package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(N^2) reference.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 6, 12, 17, 30} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*(1+cmplx.Abs(want[i])) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		if rng.Intn(2) == 0 {
			n += rng.Intn(5) // exercise the Bluestein path too
		}
		if n < 1 {
			n = 1
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		p := NewPlan(n)
		p.Forward(y)
		p.Inverse(y)
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsevalTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	x := make([]complex128, n)
	sumX := 0.0
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		sumX += real(x[i]) * real(x[i])
	}
	NewPlan(n).Forward(x)
	sumK := 0.0
	for _, v := range x {
		sumK += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(sumK/float64(n)-sumX)/sumX > 1e-10 {
		t.Errorf("Parseval violated: %g vs %g", sumK/float64(n), sumX)
	}
}

func TestGrid3PlaneWave(t *testing.T) {
	n := 16
	g := NewCube(n)
	// A single plane wave along x must transform to two delta functions.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				g.Set(i, j, k, complex(math.Cos(2*math.Pi*3*float64(i)/float64(n)), 0))
			}
		}
	}
	g.Forward()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				mag := cmplx.Abs(g.At(i, j, k))
				expectPeak := (i == 3 || i == n-3) && j == 0 && k == 0
				if expectPeak && mag < float64(n*n*n)/4 {
					t.Errorf("missing peak at (%d,%d,%d): %g", i, j, k, mag)
				}
				if !expectPeak && mag > 1e-6*float64(n*n*n) {
					t.Errorf("unexpected power at (%d,%d,%d): %g", i, j, k, mag)
				}
			}
		}
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid3(8, 4, 16)
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = g.Data[i]
	}
	g.Forward()
	g.Inverse()
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3-D round trip failed at %d", i)
		}
	}
}

func TestFreqIndex(t *testing.T) {
	if FreqIndex(0, 8) != 0 || FreqIndex(1, 8) != 1 || FreqIndex(7, 8) != -1 || FreqIndex(5, 8) != -3 {
		t.Error("FreqIndex mapping")
	}
}
