// Package fft provides the fast Fourier transforms required by the
// simulation pipeline: initial-condition generation (2LPT), the particle-mesh
// baseline solver, and power-spectrum measurement.  The paper links against
// FFTW; this stdlib-only implementation supplies an iterative radix-2
// Cooley–Tukey transform, a Bluestein fallback for arbitrary lengths, and
// goroutine-parallel 3-D transforms.
package fft

import (
	"math"
	"math/cmplx"
	"runtime"
	"sync"
)

// Plan is a reusable 1-D complex FFT plan for a fixed length.
type Plan struct {
	N       int
	pow2    bool
	perm    []int          // bit-reversal permutation (radix-2 path)
	twiddle []complex128   // stage twiddle factors (radix-2 path)
	bs      *bluesteinPlan // arbitrary-length path
}

// NewPlan builds a plan for length n (n >= 1).
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic("fft: length must be positive")
	}
	p := &Plan{N: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.perm = bitReversePermutation(n)
		p.twiddle = make([]complex128, n/2)
		for i := 0; i < n/2; i++ {
			angle := -2 * math.Pi * float64(i) / float64(n)
			p.twiddle[i] = cmplx.Exp(complex(0, angle))
		}
	} else {
		p.bs = newBluestein(n)
	}
	return p
}

func bitReversePermutation(n int) []int {
	perm := make([]int, n)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		perm[i] = r
	}
	return perm
}

// Forward transforms data in place with the e^{-2 pi i k x / N} convention.
func (p *Plan) Forward(data []complex128) { p.transform(data, false) }

// Inverse transforms data in place, including the 1/N normalization.
func (p *Plan) Inverse(data []complex128) {
	p.transform(data, true)
	scale := complex(1/float64(p.N), 0)
	for i := range data {
		data[i] *= scale
	}
}

func (p *Plan) transform(data []complex128, inverse bool) {
	if len(data) != p.N {
		panic("fft: data length does not match plan")
	}
	if p.pow2 {
		p.radix2(data, inverse)
		return
	}
	p.bs.transform(data, inverse)
}

func (p *Plan) radix2(data []complex128, inverse bool) {
	n := p.N
	// Bit-reversal reorder.
	for i, j := range p.perm {
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := data[start+k]
				b := data[start+k+half] * w
				data[start+k] = a + b
				data[start+k+half] = a - b
			}
		}
	}
}

// bluesteinPlan implements the chirp-z transform for arbitrary lengths using
// a power-of-two convolution.
type bluesteinPlan struct {
	n     int
	m     int
	chirp []complex128 // chirp[k] = exp(-i pi k^2 / n)
	fb    []complex128 // FFT of the padded conjugate chirp
	inner *Plan
}

func newBluestein(n int) *bluesteinPlan {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	bs := &bluesteinPlan{n: n, m: m, inner: NewPlan(m)}
	bs.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		angle := math.Pi * float64(k) * float64(k) / float64(n)
		bs.chirp[k] = cmplx.Exp(complex(0, -angle))
	}
	b := make([]complex128, m)
	b[0] = cmplx.Conj(bs.chirp[0])
	for k := 1; k < n; k++ {
		b[k] = cmplx.Conj(bs.chirp[k])
		b[m-k] = cmplx.Conj(bs.chirp[k])
	}
	bs.inner.Forward(b)
	bs.fb = b
	return bs
}

func (bs *bluesteinPlan) transform(data []complex128, inverse bool) {
	n, m := bs.n, bs.m
	a := make([]complex128, m)
	for k := 0; k < n; k++ {
		x := data[k]
		if inverse {
			x = cmplx.Conj(x)
		}
		a[k] = x * bs.chirp[k]
	}
	bs.inner.Forward(a)
	for i := 0; i < m; i++ {
		a[i] *= bs.fb[i]
	}
	bs.inner.Inverse(a)
	for k := 0; k < n; k++ {
		y := a[k] * bs.chirp[k]
		if inverse {
			y = cmplx.Conj(y)
		}
		data[k] = y
	}
}

// Grid3 is an N0 x N1 x N2 complex grid with in-place 3-D transforms.
type Grid3 struct {
	N    [3]int
	Data []complex128
	plan [3]*Plan
}

// NewGrid3 allocates a grid of the given dimensions.
func NewGrid3(n0, n1, n2 int) *Grid3 {
	g := &Grid3{N: [3]int{n0, n1, n2}, Data: make([]complex128, n0*n1*n2)}
	g.plan[0] = NewPlan(n0)
	g.plan[1] = NewPlan(n1)
	if n2 == n1 {
		g.plan[2] = g.plan[1]
	} else {
		g.plan[2] = NewPlan(n2)
	}
	if n1 == n0 {
		g.plan[1] = g.plan[0]
		if n2 == n0 {
			g.plan[2] = g.plan[0]
		}
	}
	return g
}

// NewCube returns a cubic grid of side n.
func NewCube(n int) *Grid3 { return NewGrid3(n, n, n) }

// Index returns the linear index of (i, j, k).
func (g *Grid3) Index(i, j, k int) int { return (i*g.N[1]+j)*g.N[2] + k }

// At returns the value at (i, j, k).
func (g *Grid3) At(i, j, k int) complex128 { return g.Data[g.Index(i, j, k)] }

// Set stores a value at (i, j, k).
func (g *Grid3) Set(i, j, k int, v complex128) { g.Data[g.Index(i, j, k)] = v }

// Fill sets all entries to v.
func (g *Grid3) Fill(v complex128) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Forward performs the 3-D forward transform in place.
func (g *Grid3) Forward() { g.transform(false) }

// Inverse performs the 3-D inverse transform (with 1/N^3 normalization) in
// place.
func (g *Grid3) Inverse() { g.transform(true) }

func (g *Grid3) transform(inverse bool) {
	n0, n1, n2 := g.N[0], g.N[1], g.N[2]
	workers := runtime.GOMAXPROCS(0)
	// Transform along axis 2 (contiguous lines).
	parallelFor(n0*n1, workers, func(line int) {
		i := line / n1
		j := line % n1
		row := g.Data[g.Index(i, j, 0) : g.Index(i, j, 0)+n2]
		if inverse {
			g.plan[2].Inverse(row)
		} else {
			g.plan[2].Forward(row)
		}
	})
	// Axis 1: stride n2.
	parallelFor(n0*n2, workers, func(line int) {
		i := line / n2
		k := line % n2
		buf := make([]complex128, n1)
		for j := 0; j < n1; j++ {
			buf[j] = g.Data[g.Index(i, j, k)]
		}
		if inverse {
			g.plan[1].Inverse(buf)
		} else {
			g.plan[1].Forward(buf)
		}
		for j := 0; j < n1; j++ {
			g.Data[g.Index(i, j, k)] = buf[j]
		}
	})
	// Axis 0: stride n1*n2.
	parallelFor(n1*n2, workers, func(line int) {
		j := line / n2
		k := line % n2
		buf := make([]complex128, n0)
		for i := 0; i < n0; i++ {
			buf[i] = g.Data[g.Index(i, j, k)]
		}
		if inverse {
			g.plan[0].Inverse(buf)
		} else {
			g.plan[0].Forward(buf)
		}
		for i := 0; i < n0; i++ {
			g.Data[g.Index(i, j, k)] = buf[i]
		}
	})
}

// parallelFor runs body(i) for i in [0, n) across the given number of
// workers.
func parallelFor(n, workers int, body func(int)) {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n < 2*workers {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FreqIndex maps a grid index to the signed frequency index (-N/2 .. N/2-1).
func FreqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}
