package comm

import (
	"fmt"
	"sync"
	"time"
)

// ABM is the Asynchronous Batched Message layer of Section 3.2: an
// active-message abstraction in which requests (batches of 64-bit keys,
// in practice hashed oct-tree cell keys) are shipped to the owning rank,
// processed by an event-driven handler against that rank's read-only data,
// and answered with an opaque reply per key.  Requests to the same
// destination are batched to amortize message overhead, and replies can be
// consumed asynchronously so that tree traversal overlaps communication with
// computation.
//
// The handler runs on a service goroutine of the owning rank concurrently
// with that rank's own computation, so it must only read data that is
// immutable while the ABM is open (the built tree).  The service goroutine
// matches only the ABM tags, so it cannot steal collective messages or
// application point-to-point traffic from the rank's main goroutine.
type ABM struct {
	rank    *Rank
	handler Handler

	wg sync.WaitGroup

	mu      sync.Mutex
	waiters map[uint64]*abmFuture // request id -> future
	nextID  uint64
	failed  error // first service-loop failure; poisons later requests
}

// Handler answers a batch of keys requested by rank src.  It must return one
// reply per key, in order.
type Handler func(src int, keys []uint64) [][]byte

type abmRequest struct {
	src  int
	id   uint64
	keys []uint64
}

type abmReply struct {
	id   uint64
	data [][]byte
}

type abmFuture struct {
	done chan struct{}
	data [][]byte
	keys []uint64
	err  error
}

const (
	tagABMRequest = 9000
	tagABMReply   = 9001
	tagABMStop    = 9002
)

// matchABM filters the service goroutine's receives to the ABM tag space.
func matchABM(tag int) bool {
	return tag == tagABMRequest || tag == tagABMReply || tag == tagABMStop
}

// DefaultBatchSize is the number of keys accumulated per destination before
// a request batch is flushed automatically.
const DefaultBatchSize = 64

// NewABM opens the active-message layer on this rank with the given handler.
// Every rank in the world must open an ABM (with its own handler) before any
// rank issues requests, which is guaranteed by the internal barrier.
func (r *Rank) NewABM(handler Handler) (*ABM, error) {
	a := &ABM{
		rank:    r,
		handler: handler,
		waiters: make(map[uint64]*abmFuture),
	}
	a.wg.Add(1)
	go a.serve()
	if err := r.Barrier(); err != nil {
		a.shutdown(fmt.Errorf("abm open barrier: %w", err))
		return nil, fmt.Errorf("abm open barrier: %w", err)
	}
	return a, nil
}

// serve processes incoming requests and replies until the stop message (or a
// transport failure, which fails every outstanding and future request).
func (a *ABM) serve() {
	defer a.wg.Done()
	for {
		msg, err := a.rank.t.Recv(-1, matchABM, time.Time{})
		if err != nil {
			a.fail(fmt.Errorf("abm service recv: %w", err))
			return
		}
		switch p := msg.Payload.(type) {
		case abmRequest:
			a.rank.stats.countABM(int64(len(p.keys)))
			data := a.handler(msg.Src, p.keys)
			if err := a.rank.Send(msg.Src, tagABMReply, abmReply{id: p.id, data: data}); err != nil {
				a.fail(fmt.Errorf("abm reply to rank %d: %w", msg.Src, err))
				return
			}
		case abmReply:
			a.mu.Lock()
			f := a.waiters[p.id]
			delete(a.waiters, p.id)
			a.mu.Unlock()
			if f != nil {
				f.data = p.data
				close(f.done)
			}
		case string:
			if p == "stop" {
				return
			}
		}
	}
}

// fail poisons the ABM: every outstanding and future request resolves with
// err instead of blocking on a reply that can no longer arrive.
func (a *ABM) fail(err error) {
	a.mu.Lock()
	if a.failed == nil {
		a.failed = err
	}
	waiters := a.waiters
	a.waiters = make(map[uint64]*abmFuture)
	a.mu.Unlock()
	for _, f := range waiters {
		f.err = err
		close(f.done)
	}
}

// Request enqueues keys destined for rank dst and returns a Future that
// resolves once the request has been answered (or the transport failed).
func (a *ABM) Request(dst int, keys []uint64) (*Future, error) {
	a.mu.Lock()
	if a.failed != nil {
		err := a.failed
		a.mu.Unlock()
		return nil, err
	}
	id := a.nextID
	a.nextID++
	fut := &abmFuture{done: make(chan struct{}), keys: keys}
	a.waiters[id] = fut
	a.mu.Unlock()
	if err := a.rank.Send(dst, tagABMRequest, abmRequest{src: a.rank.ID, id: id, keys: keys}); err != nil {
		a.mu.Lock()
		delete(a.waiters, id)
		a.mu.Unlock()
		return nil, fmt.Errorf("abm request to rank %d: %w", dst, err)
	}
	return &Future{fut: fut, keys: keys}, nil
}

// RequestSync is a convenience wrapper that sends immediately and waits.
func (a *ABM) RequestSync(dst int, keys []uint64) ([][]byte, error) {
	f, err := a.Request(dst, keys)
	if err != nil {
		return nil, err
	}
	data, _, err := f.Wait()
	return data, err
}

// Future resolves to the replies for one batch of keys.
type Future struct {
	fut  *abmFuture
	keys []uint64
}

// Wait blocks until the replies are available and returns them, one per key
// in the order the keys were requested.  It fails when the transport failed
// before the reply arrived.
func (f *Future) Wait() ([][]byte, []uint64, error) {
	<-f.fut.done
	if f.fut.err != nil {
		return nil, f.keys, f.fut.err
	}
	return f.fut.data, f.keys, nil
}

// Close shuts down the service goroutine on every rank.  It must be called
// collectively (all ranks) after all requests have been answered.
func (a *ABM) Close() error {
	if err := a.rank.Barrier(); err != nil {
		a.shutdown(fmt.Errorf("abm close barrier: %w", err))
		return fmt.Errorf("abm close barrier: %w", err)
	}
	a.shutdown(ErrClosed)
	return a.rank.Barrier()
}

// shutdown stops the service goroutine (by a stop message to self) and
// resolves outstanding futures with cause.
func (a *ABM) shutdown(cause error) {
	// The self-send cannot fail on a live transport; if it does the service
	// loop is already dead from the same underlying failure.
	_ = a.rank.Send(a.rank.ID, tagABMStop, "stop")
	a.wg.Wait()
	a.fail(cause)
}
