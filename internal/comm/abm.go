package comm

import (
	"sync"
)

// ABM is the Asynchronous Batched Message layer of Section 3.2: an
// active-message abstraction in which requests (batches of 64-bit keys,
// in practice hashed oct-tree cell keys) are shipped to the owning rank,
// processed by an event-driven handler against that rank's read-only data,
// and answered with an opaque reply per key.  Requests to the same
// destination are batched to amortize message overhead, and replies can be
// consumed asynchronously so that tree traversal overlaps communication with
// computation.
//
// The handler runs on a service goroutine of the owning rank concurrently
// with that rank's own computation, so it must only read data that is
// immutable while the ABM is open (the built tree).
type ABM struct {
	rank    *Rank
	handler Handler

	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	pending map[int][]uint64      // destination -> batched keys
	waiters map[uint64]*abmFuture // request id -> future
	nextID  uint64

	batchSize int
}

// Handler answers a batch of keys requested by rank src.  It must return one
// reply per key, in order.
type Handler func(src int, keys []uint64) [][]byte

type abmRequest struct {
	src  int
	id   uint64
	keys []uint64
}

type abmReply struct {
	id   uint64
	data [][]byte
}

type abmFuture struct {
	done chan struct{}
	data [][]byte
	keys []uint64
}

const (
	tagABMRequest = 9000
	tagABMReply   = 9001
	tagABMStop    = 9002
)

// DefaultBatchSize is the number of keys accumulated per destination before
// a request batch is flushed automatically.
const DefaultBatchSize = 64

// NewABM opens the active-message layer on this rank with the given handler.
// Every rank in the world must open an ABM (with its own handler) before any
// rank issues requests, which is guaranteed by the internal barrier.
func (r *Rank) NewABM(handler Handler) *ABM {
	a := &ABM{
		rank:      r,
		handler:   handler,
		stop:      make(chan struct{}),
		pending:   make(map[int][]uint64),
		waiters:   make(map[uint64]*abmFuture),
		batchSize: DefaultBatchSize,
	}
	a.wg.Add(1)
	go a.serve()
	r.Barrier()
	return a
}

// serve processes incoming requests and replies until Close.
func (a *ABM) serve() {
	defer a.wg.Done()
	for {
		payload, src := a.rank.Recv(-1, -1)
		switch msg := payload.(type) {
		case abmRequest:
			a.rank.world.mu.Lock()
			a.rank.world.stats.ABMRequests += int64(len(msg.keys))
			a.rank.world.stats.ABMBatches++
			a.rank.world.mu.Unlock()
			data := a.handler(src, msg.keys)
			a.rank.Send(src, tagABMReply, abmReply{id: msg.id, data: data})
		case abmReply:
			a.mu.Lock()
			f := a.waiters[msg.id]
			delete(a.waiters, msg.id)
			a.mu.Unlock()
			if f != nil {
				f.data = msg.data
				close(f.done)
			}
		case string:
			if msg == "stop" {
				return
			}
		}
	}
}

// Request enqueues keys destined for rank dst and returns a Future that
// resolves once the (batched) request has been answered.  Batches are flushed
// when they reach the batch size or when Flush/Wait is called.
func (a *ABM) Request(dst int, keys []uint64) *Future {
	f := a.flushLockedAppend(dst, keys)
	return f
}

// RequestSync is a convenience wrapper that flushes immediately and waits.
func (a *ABM) RequestSync(dst int, keys []uint64) [][]byte {
	a.mu.Lock()
	id := a.nextID
	a.nextID++
	fut := &abmFuture{done: make(chan struct{}), keys: keys}
	a.waiters[id] = fut
	a.mu.Unlock()
	a.rank.Send(dst, tagABMRequest, abmRequest{src: a.rank.ID, id: id, keys: keys})
	<-fut.done
	return fut.data
}

// Future resolves to the replies for one batch of keys.
type Future struct {
	fut  *abmFuture
	keys []uint64
}

// Wait blocks until the replies are available and returns them, one per key
// in the order the keys were requested.
func (f *Future) Wait() ([][]byte, []uint64) {
	<-f.fut.done
	return f.fut.data, f.keys
}

func (a *ABM) flushLockedAppend(dst int, keys []uint64) *Future {
	a.mu.Lock()
	id := a.nextID
	a.nextID++
	fut := &abmFuture{done: make(chan struct{}), keys: keys}
	a.waiters[id] = fut
	a.mu.Unlock()
	a.rank.Send(dst, tagABMRequest, abmRequest{src: a.rank.ID, id: id, keys: keys})
	return &Future{fut: fut, keys: keys}
}

// Close shuts down the service goroutine on every rank.  It must be called
// collectively (all ranks) after all requests have been answered.
func (a *ABM) Close() {
	a.rank.Barrier()
	a.rank.Send(a.rank.ID, tagABMStop, "stop")
	a.wg.Wait()
	a.rank.Barrier()
}
