// Package comm is the message-passing runtime on which the distributed
// phases of 2HOT run.  The paper uses MPI on up to 262,144 processes; in this
// shared-memory reproduction each "rank" is a goroutine and messages travel
// over channels, but the communication *patterns* the paper discusses are
// implemented faithfully:
//
//   - point-to-point sends and receives with tag matching,
//   - collectives (Barrier, Allreduce, Allgather, Broadcast),
//   - three Alltoallv implementations (direct, pairwise exchange, and the
//     hierarchical node-leader relay the authors had to write when the
//     library implementations stopped scaling, Section 3.1),
//   - the Asynchronous Batched Message (ABM) active-message layer used to
//     fetch remote tree cells during traversal (Section 3.2).
package comm

import (
	"fmt"
	"sync"
)

// World is a communicator spanning NRanks ranks.
type World struct {
	NRanks int

	barrier *reusableBarrier
	// staging area for the direct collectives: slot[src][dst]
	stage [][]any
	// reduction scratch
	reduceBuf []any

	mailboxes []*mailbox

	// Statistics (updated atomically under mu).
	mu    sync.Mutex
	stats Stats
}

// Stats counts messages and bytes moved through the world, used by the
// Table 2 style breakdowns and the Alltoall benchmarks.
type Stats struct {
	PointToPointMsgs  int64
	PointToPointBytes int64
	CollectiveCalls   int64
	ABMRequests       int64
	ABMBatches        int64
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("comm: world size must be >= 1")
	}
	w := &World{
		NRanks:    n,
		barrier:   newReusableBarrier(n),
		stage:     make([][]any, n),
		reduceBuf: make([]any, n),
		mailboxes: make([]*mailbox, n),
	}
	for i := range w.stage {
		w.stage[i] = make([]any, n)
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Stats returns a snapshot of the communication counters.
func (w *World) Statistics() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ResetStatistics zeroes the counters.
func (w *World) ResetStatistics() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats = Stats{}
}

func (w *World) countMsg(bytes int) {
	w.mu.Lock()
	w.stats.PointToPointMsgs++
	w.stats.PointToPointBytes += int64(bytes)
	w.mu.Unlock()
}

// Run executes fn on every rank concurrently and waits for all ranks to
// finish.  It may be called repeatedly on the same world; rank-local state
// should live in caller-owned per-rank slices.  A panic on any rank is
// re-raised on the caller.
func (w *World) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make([]any, w.NRanks)
	for i := 0; i < w.NRanks; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[id] = p
				}
			}()
			fn(&Rank{world: w, ID: id})
		}(i)
	}
	wg.Wait()
	for id, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("comm: rank %d panicked: %v", id, p))
		}
	}
}

// Rank is the per-goroutine handle to the world.
type Rank struct {
	world *World
	ID    int
}

// N returns the number of ranks in the world.
func (r *Rank) N() int { return r.world.NRanks }

// World returns the underlying world.
func (r *Rank) World() *World { return r.world }

// Barrier blocks until all ranks reach it.
func (r *Rank) Barrier() { r.world.barrier.await() }

// --- Point-to-point ----------------------------------------------------

type envelope struct {
	src, tag int
	payload  any
}

// mailbox delivers envelopes to a rank with (src, tag) matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []envelope
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	m.pending = append(m.pending, e)
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) get(src, tag int) envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, e := range m.pending {
			if (src < 0 || e.src == src) && (tag < 0 || e.tag == tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return e
			}
		}
		m.cond.Wait()
	}
}

// Send delivers payload to rank dst with the given tag.  It does not block on
// the receiver (buffered semantics).
func (r *Rank) Send(dst, tag int, payload any) {
	r.world.countMsg(payloadSize(payload))
	r.world.mailboxes[dst].put(envelope{src: r.ID, tag: tag, payload: payload})
}

// Recv blocks until a message from src (or any source if src < 0) with the
// given tag (any tag if tag < 0) arrives, and returns its payload and source.
func (r *Rank) Recv(src, tag int) (any, int) {
	e := r.world.mailboxes[r.ID].get(src, tag)
	return e.payload, e.src
}

func payloadSize(p any) int {
	switch v := p.(type) {
	case []byte:
		return len(v)
	case []float64:
		return 8 * len(v)
	case []uint64:
		return 8 * len(v)
	case []int:
		return 8 * len(v)
	default:
		return 64
	}
}

// --- Collectives ---------------------------------------------------------

// Broadcast distributes root's value to all ranks and returns it.
func (r *Rank) Broadcast(root int, value any) any {
	w := r.world
	if r.ID == root {
		for i := 0; i < w.NRanks; i++ {
			w.stage[root][i] = value
		}
	}
	r.Barrier()
	out := w.stage[root][r.ID]
	r.Barrier()
	return out
}

// AllreduceFloat64 sums (or reduces with op) one float64 per rank and returns
// the result on every rank.  op is one of "sum", "min", "max".
func (r *Rank) AllreduceFloat64(v float64, op string) float64 {
	w := r.world
	w.reduceBuf[r.ID] = v
	r.Barrier()
	var out float64
	switch op {
	case "min":
		out = w.reduceBuf[0].(float64)
		for i := 1; i < w.NRanks; i++ {
			if x := w.reduceBuf[i].(float64); x < out {
				out = x
			}
		}
	case "max":
		out = w.reduceBuf[0].(float64)
		for i := 1; i < w.NRanks; i++ {
			if x := w.reduceBuf[i].(float64); x > out {
				out = x
			}
		}
	default:
		for i := 0; i < w.NRanks; i++ {
			out += w.reduceBuf[i].(float64)
		}
	}
	r.Barrier()
	return out
}

// AllreduceInt64 sums one int64 per rank across the world.
func (r *Rank) AllreduceInt64(v int64) int64 {
	w := r.world
	w.reduceBuf[r.ID] = v
	r.Barrier()
	var out int64
	for i := 0; i < w.NRanks; i++ {
		out += w.reduceBuf[i].(int64)
	}
	r.Barrier()
	return out
}

// Allgather collects one value per rank into a slice indexed by rank,
// returned on every rank.  The caller must not mutate the result.
func (r *Rank) Allgather(v any) []any {
	w := r.world
	w.reduceBuf[r.ID] = v
	r.Barrier()
	out := make([]any, w.NRanks)
	copy(out, w.reduceBuf)
	r.Barrier()
	return out
}

// AllgatherUint64 gathers variable-length uint64 slices from every rank and
// returns the concatenation (in rank order) on every rank.
func (r *Rank) AllgatherUint64(v []uint64) []uint64 {
	parts := r.Allgather(v)
	var out []uint64
	for _, p := range parts {
		out = append(out, p.([]uint64)...)
	}
	return out
}

// AlltoallAlgorithm selects the data-exchange implementation.
type AlltoallAlgorithm int

const (
	// AlltoallDirect stages every block in shared memory (the idealized
	// library implementation).
	AlltoallDirect AlltoallAlgorithm = iota
	// AlltoallPairwise loops over all pairs of processes exchanging data,
	// the "trivial implementation" that outperformed the system MPI at
	// 32k+ processes in the paper.
	AlltoallPairwise
	// AlltoallHierarchical relays messages through one leader per node
	// group, the rewrite that fixed the buffer blow-up in OpenMPI.
	AlltoallHierarchical
)

// AlltoallvBytes exchanges send[dst] with every destination and returns
// recv[src].  All ranks must call it with the same algorithm.
func (r *Rank) AlltoallvBytes(send [][]byte, algo AlltoallAlgorithm) [][]byte {
	if len(send) != r.N() {
		panic("comm: Alltoallv send length must equal world size")
	}
	w := r.world
	w.mu.Lock()
	w.stats.CollectiveCalls++
	w.mu.Unlock()
	switch algo {
	case AlltoallPairwise:
		return r.alltoallPairwise(send)
	case AlltoallHierarchical:
		return r.alltoallHierarchical(send)
	default:
		return r.alltoallDirect(send)
	}
}

func (r *Rank) alltoallDirect(send [][]byte) [][]byte {
	w := r.world
	for dst := 0; dst < w.NRanks; dst++ {
		w.stage[r.ID][dst] = send[dst]
	}
	r.Barrier()
	recv := make([][]byte, w.NRanks)
	for src := 0; src < w.NRanks; src++ {
		b, _ := w.stage[src][r.ID].([]byte)
		recv[src] = b
	}
	r.Barrier()
	return recv
}

const tagAlltoall = 1000

func (r *Rank) alltoallPairwise(send [][]byte) [][]byte {
	n := r.N()
	recv := make([][]byte, n)
	recv[r.ID] = send[r.ID]
	// Loop over all pairs: at step s exchange with partner = rank XOR s for
	// power-of-two sizes, otherwise (rank + s) mod n with a matched recv.
	for s := 1; s < n; s++ {
		dst := (r.ID + s) % n
		src := (r.ID - s + n) % n
		r.Send(dst, tagAlltoall+s, send[dst])
		payload, _ := r.Recv(src, tagAlltoall+s)
		recv[src], _ = payload.([]byte)
	}
	r.Barrier()
	return recv
}

// alltoallHierarchical relays all traffic through group leaders: ranks are
// grouped into "nodes" of size g; only leaders exchange inter-node traffic.
func (r *Rank) alltoallHierarchical(send [][]byte) [][]byte {
	n := r.N()
	g := nodeGroupSize(n)
	leader := (r.ID / g) * g
	nGroups := (n + g - 1) / g

	const (
		tagUp    = 2000
		tagInter = 3000
		tagDown  = 4000
	)

	if r.ID != leader {
		// Send all outgoing blocks to the leader, then receive all incoming.
		for dst := 0; dst < n; dst++ {
			r.Send(leader, tagUp+dst, send[dst])
		}
		recv := make([][]byte, n)
		for src := 0; src < n; src++ {
			p, _ := r.Recv(leader, tagDown+src)
			recv[src], _ = p.([]byte)
		}
		r.Barrier()
		return recv
	}

	// Leader: gather blocks from group members (including itself).
	groupHi := leader + g
	if groupHi > n {
		groupHi = n
	}
	// blocks[srcLocal][dst]
	blocks := make(map[int][][]byte)
	blocks[r.ID] = send
	for m := leader + 1; m < groupHi; m++ {
		mb := make([][]byte, n)
		for dst := 0; dst < n; dst++ {
			p, _ := r.Recv(m, tagUp+dst)
			mb[dst], _ = p.([]byte)
		}
		blocks[m] = mb
	}
	// Exchange bundles between leaders.
	type bundle struct {
		Src  []int
		Dst  []int
		Data [][]byte
	}
	for gi := 0; gi < nGroups; gi++ {
		otherLeader := gi * g
		if otherLeader == leader {
			continue
		}
		otherHi := otherLeader + g
		if otherHi > n {
			otherHi = n
		}
		var b bundle
		for src := leader; src < groupHi; src++ {
			for dst := otherLeader; dst < otherHi; dst++ {
				b.Src = append(b.Src, src)
				b.Dst = append(b.Dst, dst)
				b.Data = append(b.Data, blocks[src][dst])
			}
		}
		r.Send(otherLeader, tagInter+leader, b)
	}
	// Receive bundles from other leaders and deliver to members.
	incoming := make(map[int]map[int][]byte) // dst -> src -> data
	for dst := leader; dst < groupHi; dst++ {
		incoming[dst] = make(map[int][]byte)
	}
	// Intra-group traffic.
	for src := leader; src < groupHi; src++ {
		for dst := leader; dst < groupHi; dst++ {
			incoming[dst][src] = blocks[src][dst]
		}
	}
	for gi := 0; gi < nGroups; gi++ {
		otherLeader := gi * g
		if otherLeader == leader {
			continue
		}
		p, _ := r.Recv(otherLeader, tagInter+otherLeader)
		b := p.(bundle)
		for i := range b.Src {
			incoming[b.Dst[i]][b.Src[i]] = b.Data[i]
		}
	}
	// Deliver to members.
	for m := leader + 1; m < groupHi; m++ {
		for src := 0; src < n; src++ {
			r.Send(m, tagDown+src, incoming[m][src])
		}
	}
	recv := make([][]byte, n)
	for src := 0; src < n; src++ {
		recv[src] = incoming[r.ID][src]
	}
	r.Barrier()
	return recv
}

// nodeGroupSize picks the "node" size for the hierarchical relay.
func nodeGroupSize(n int) int {
	g := 1
	for g*g < n {
		g++
	}
	if g < 1 {
		g = 1
	}
	return g
}

// --- Barrier -------------------------------------------------------------

type reusableBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase int
}

func newReusableBarrier(n int) *reusableBarrier {
	b := &reusableBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *reusableBarrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for phase == b.phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
