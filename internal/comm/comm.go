package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// World is an in-process communicator spanning NRanks ranks: every rank is a
// goroutine of Run and messages travel through shared-memory mailboxes.  It
// is the reference Transport implementation the process-spanning transports
// (JoinTCP) are pinned against, and the fabric the distributed solver uses
// when Config.Ranks > 1 without a TCP deployment.
type World struct {
	NRanks int

	fabric *chanFabric
	stats  statsSink
}

// Stats counts messages and bytes moved through a communicator, used by the
// Table 2 style breakdowns and the Alltoall benchmarks.  Point-to-point
// counters cover application sends (including the ABM and the alltoall
// algorithms built on them); collective counters cover the sequenced
// messages of Barrier/Broadcast/Allreduce/Allgather.
type Stats struct {
	PointToPointMsgs  int64
	PointToPointBytes int64
	CollectiveCalls   int64
	CollectiveMsgs    int64
	ABMRequests       int64
	ABMBatches        int64
}

// statsSink is a mutex-guarded Stats accumulator shared by the ranks of a
// world (or owned by a single TCP rank).
type statsSink struct {
	mu sync.Mutex
	s  Stats
}

func (ss *statsSink) countMsg(bytes int) {
	ss.mu.Lock()
	ss.s.PointToPointMsgs++
	ss.s.PointToPointBytes += int64(bytes)
	ss.mu.Unlock()
}

func (ss *statsSink) countCollective(call bool, msgs int64) {
	ss.mu.Lock()
	if call {
		ss.s.CollectiveCalls++
	}
	ss.s.CollectiveMsgs += msgs
	ss.mu.Unlock()
}

func (ss *statsSink) countABM(requests int64) {
	ss.mu.Lock()
	ss.s.ABMRequests += requests
	ss.s.ABMBatches++
	ss.mu.Unlock()
}

func (ss *statsSink) snapshot() Stats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s
}

func (ss *statsSink) reset() {
	ss.mu.Lock()
	ss.s = Stats{}
	ss.mu.Unlock()
}

// NewWorld creates an in-process communicator with n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("comm: world size must be >= 1")
	}
	w := &World{NRanks: n}
	w.fabric = newChanFabric(n)
	return w
}

// Statistics returns a snapshot of the communication counters.
func (w *World) Statistics() Stats { return w.stats.snapshot() }

// ResetStatistics zeroes the counters.
func (w *World) ResetStatistics() { w.stats.reset() }

// Run executes fn on every rank concurrently and waits for all ranks to
// finish, returning the joined errors of the ranks that failed (nil when
// every rank succeeded).  A panic on a rank is recovered into that rank's
// error.  It may be called repeatedly on the same world; rank-local state
// should live in caller-owned per-rank slices.
//
// When a rank returns (or fails), it is marked gone: a peer still waiting on
// a message from it receives a PeerDeadError instead of blocking forever —
// the closed-world guarantee that turns protocol imbalances and rank deaths
// into errors rather than deadlocks.
func (w *World) Run(fn func(r *Rank) error) error {
	w.fabric.reset()
	var wg sync.WaitGroup
	errs := make([]error, w.NRanks)
	for i := 0; i < w.NRanks; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("comm: rank %d panicked: %v", id, p)
				}
				w.fabric.markDone(id, errs[id])
			}()
			errs[id] = fn(&Rank{ID: id, t: w.fabric.transports[id], stats: &w.stats})
		}(i)
	}
	wg.Wait()
	var failed []error
	for id, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("rank %d: %w", id, err))
		}
	}
	return errors.Join(failed...)
}

// --- In-process transport ------------------------------------------------

// chanFabric is the shared-memory message fabric of a World: one mailbox per
// rank plus the liveness table the closed-world detection reads.
type chanFabric struct {
	n          int
	mailboxes  []*mailbox
	transports []*chanTransport

	mu   sync.Mutex
	done []error // non-nil once the rank's fn returned; wraps its error
}

// errRankReturned marks a rank that finished its Run function normally.
var errRankReturned = errors.New("rank function returned")

func newChanFabric(n int) *chanFabric {
	f := &chanFabric{n: n, done: make([]error, n)}
	f.mailboxes = make([]*mailbox, n)
	f.transports = make([]*chanTransport, n)
	for i := 0; i < n; i++ {
		f.mailboxes[i] = newMailbox(f.peerDown)
		f.transports[i] = &chanTransport{fabric: f, self: i}
	}
	return f
}

// reset clears the liveness table for a fresh Run on the same world.
func (f *chanFabric) reset() {
	f.mu.Lock()
	for i := range f.done {
		f.done[i] = nil
	}
	f.mu.Unlock()
}

// markDone records that a rank's fn returned (err non-nil when it failed)
// and wakes every blocked receive so closed-world checks re-evaluate.
func (f *chanFabric) markDone(id int, err error) {
	f.mu.Lock()
	if err != nil {
		f.done[id] = fmt.Errorf("rank failed: %w", err)
	} else {
		f.done[id] = errRankReturned
	}
	f.mu.Unlock()
	for _, m := range f.mailboxes {
		m.wake()
	}
}

// peerDown implements the mailbox liveness view: src >= 0 asks about one
// rank, src < 0 asks whether every rank is gone (the wildcard-receive
// condition; the receiver itself is by construction not gone, so "all done
// but one" can only be satisfied by the caller's own rank).
func (f *chanFabric) peerDown(src int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if src >= 0 {
		return f.done[src]
	}
	live := 0
	for _, d := range f.done {
		if d == nil {
			live++
		}
	}
	if live <= 1 {
		return errors.New("every other rank returned")
	}
	return nil
}

// chanTransport is one rank's endpoint of a chanFabric.
type chanTransport struct {
	fabric *chanFabric
	self   int
}

func (t *chanTransport) Self() int { return t.self }
func (t *chanTransport) N() int    { return t.fabric.n }

func (t *chanTransport) Send(dst, tag int, payload any) error {
	if dst < 0 || dst >= t.fabric.n {
		return fmt.Errorf("comm: send to invalid rank %d (world size %d)", dst, t.fabric.n)
	}
	if dst != t.self {
		if reason := t.fabric.peerDown(dst); reason != nil {
			return &PeerDeadError{Rank: dst, Reason: reason.Error()}
		}
	}
	t.fabric.mailboxes[dst].put(envelope{src: t.self, tag: tag, payload: payload})
	return nil
}

func (t *chanTransport) Recv(src int, match func(tag int) bool, deadline time.Time) (Message, error) {
	e, err := t.fabric.mailboxes[t.self].get(t.self, src, match, deadline)
	if err != nil {
		return Message{}, err
	}
	return Message{Src: e.src, Tag: e.tag, Payload: e.payload}, nil
}

func (t *chanTransport) Close() error { return nil }

// --- Rank ----------------------------------------------------------------

// Rank is the per-goroutine (or per-process) handle to a communicator: one
// Transport endpoint plus the collective protocol state.  A Rank's methods
// must be called from one goroutine at a time, except Send, which service
// goroutines (the ABM handler) may call concurrently.
type Rank struct {
	ID int

	t     Transport
	stats *statsSink

	// collSeq sequences the collectives: ranks call them in lockstep (the
	// SPMD contract), so the per-call counter agrees across ranks and keys
	// the internal tag space, preventing crosstalk between consecutive
	// collectives even when ranks race ahead.
	collSeq int64
}

// Join wraps an externally constructed Transport (for example a TCP
// transport from JoinTCP's options, or a test double) as a Rank with its own
// statistics sink.
func Join(t Transport) *Rank {
	return &Rank{ID: t.Self(), t: t, stats: &statsSink{}}
}

// N returns the number of ranks in the world.
func (r *Rank) N() int { return r.t.N() }

// Transport returns the rank's transport endpoint.
func (r *Rank) Transport() Transport { return r.t }

// Statistics returns a snapshot of this rank's communication counters (for
// an in-process World the sink is shared by all its ranks).
func (r *Rank) Statistics() Stats { return r.stats.snapshot() }

// Close closes the underlying transport.  In-process ranks need no close;
// process-spanning ranks must close before exit.
func (r *Rank) Close() error { return r.t.Close() }

// Send delivers payload to rank dst with the given tag.  It does not block
// on the receiver (buffered semantics) and fails when dst is known dead.
func (r *Rank) Send(dst, tag int, payload any) error {
	if tag < 0 || tag >= internalTagBase {
		return fmt.Errorf("comm: application tags must be in [0, 2^40); got %d", tag)
	}
	r.stats.countMsg(payloadSize(payload))
	return r.t.Send(dst, tag, payload)
}

// Recv blocks until a message from src (or any source if src < 0) with the
// given tag (any application tag if tag < 0) arrives, and returns its
// payload and source.  It fails instead of blocking forever when the
// awaited peer is gone or the transport's default deadline passes.
func (r *Rank) Recv(src, tag int) (any, int, error) {
	return r.RecvDeadline(src, tag, 0)
}

// RecvDeadline is Recv with an explicit timeout (0 = the transport's
// default).
func (r *Rank) RecvDeadline(src, tag int, timeout time.Duration) (any, int, error) {
	var match func(int) bool
	if tag >= 0 {
		match = matchExact(tag)
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	msg, err := r.t.Recv(src, match, deadline)
	if err != nil {
		return nil, 0, err
	}
	return msg.Payload, msg.Src, nil
}

// payloadSize estimates the byte size of a payload for the statistics.
func payloadSize(p any) int {
	switch v := p.(type) {
	case []byte:
		return len(v)
	case []float64:
		return 8 * len(v)
	case []uint64:
		return 8 * len(v)
	case []int:
		return 8 * len(v)
	default:
		return 64
	}
}
