package comm

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback addresses by briefly listening on
// port 0.  There is a small window between Close and JoinTCP's own listen,
// but collisions just fail the join loudly.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// runTCPWorld joins n TCP ranks (as goroutines of this process, each with
// its own real TCP transport over loopback) and runs body on each,
// collecting per-rank errors.
func runTCPWorld(t *testing.T, n int, opt func(*TCPOptions), body func(r *Rank) error) []error {
	t.Helper()
	addrs := freeAddrs(t, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			o := TCPOptions{Rank: id, N: n, Addrs: addrs, RecvTimeout: 20 * time.Second}
			if opt != nil {
				opt(&o)
			}
			r, err := JoinTCP(o)
			if err != nil {
				errs[id] = err
				return
			}
			defer r.Close()
			errs[id] = body(r)
		}(i)
	}
	wg.Wait()
	return errs
}

func checkErrs(t *testing.T, errs []error) {
	t.Helper()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", id, err)
		}
	}
}

// tcpExercise is the shared protocol workout: point-to-point, barrier, all
// the collectives, the three alltoall algorithms, and the ABM — the same
// patterns DistributedRankForces drives.
func tcpExercise(t *testing.T, r *Rank) error {
	n := r.N()
	// Ring point-to-point.
	if err := r.Send((r.ID+1)%n, 7, []int{r.ID}); err != nil {
		return err
	}
	payload, src, err := r.Recv((r.ID-1+n)%n, 7)
	if err != nil {
		return err
	}
	if got := payload.([]int)[0]; got != src {
		return fmt.Errorf("ring recv got %d from %d", got, src)
	}
	if err := r.Barrier(); err != nil {
		return err
	}
	// Collectives.
	sum, err := r.AllreduceFloat64(float64(r.ID+1), "sum")
	if err != nil {
		return err
	}
	if want := float64(n*(n+1)) / 2; sum != want {
		return fmt.Errorf("allreduce sum %g want %g", sum, want)
	}
	v, err := r.Broadcast(0, "from-zero")
	if err != nil {
		return err
	}
	if v.(string) != "from-zero" {
		return fmt.Errorf("broadcast got %v", v)
	}
	all, err := r.AllgatherUint64([]uint64{uint64(r.ID)})
	if err != nil {
		return err
	}
	for i, u := range all {
		if u != uint64(i) {
			return fmt.Errorf("allgather %v", all)
		}
	}
	// Alltoall, all three algorithms.
	for _, algo := range []AlltoallAlgorithm{AlltoallDirect, AlltoallPairwise, AlltoallHierarchical} {
		send := make([][]byte, n)
		for dst := 0; dst < n; dst++ {
			send[dst] = []byte(fmt.Sprintf("%d->%d", r.ID, dst))
		}
		recv, err := r.AlltoallvBytes(send, algo)
		if err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			if want := fmt.Sprintf("%d->%d", src, r.ID); string(recv[src]) != want {
				return fmt.Errorf("alltoall algo %d: got %q want %q", algo, recv[src], want)
			}
		}
	}
	// ABM request/reply.
	abm, err := r.NewABM(func(src int, keys []uint64) [][]byte {
		out := make([][]byte, len(keys))
		for i, k := range keys {
			out[i] = []byte(fmt.Sprintf("r%d k%d", r.ID, k))
		}
		return out
	})
	if err != nil {
		return err
	}
	for dst := 0; dst < n; dst++ {
		if dst == r.ID {
			continue
		}
		replies, err := abm.RequestSync(dst, []uint64{uint64(100 + r.ID)})
		if err != nil {
			return err
		}
		if want := fmt.Sprintf("r%d k%d", dst, 100+r.ID); string(replies[0]) != want {
			return fmt.Errorf("abm reply %q want %q", replies[0], want)
		}
	}
	return abm.Close()
}

func TestTCPTransportProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP loopback test skipped in -short")
	}
	for _, n := range []int{2, 3, 4} {
		checkErrs(t, runTCPWorld(t, n, nil, func(r *Rank) error { return tcpExercise(t, r) }))
	}
}

// TestTCPChaosConvergence runs the full protocol workout under injected
// drops, delays, duplicates, and corruption: the reliability layer must
// deliver exactly-once regardless, so every collective still returns the
// correct value.
func TestTCPChaosConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		checkErrs(t, runTCPWorld(t, 3, func(o *TCPOptions) {
			o.RetryBase = 10 * time.Millisecond
			o.Chaos = &ChaosOptions{
				Seed:          seed,
				DropRate:      0.10,
				DelayRate:     0.10,
				DuplicateRate: 0.10,
				CorruptRate:   0.10,
				MaxDelay:      5 * time.Millisecond,
			}
		}, func(r *Rank) error {
			for iter := 0; iter < 3; iter++ {
				if err := tcpExercise(t, r); err != nil {
					return fmt.Errorf("iter %d: %w", iter, err)
				}
			}
			return nil
		}))
	}
}

// TestTCPPeerDeathDetected pins the liveness monitor: when a rank's process
// vanishes abruptly (simulated by slamming its connections shut), a peer
// blocked on it gets a PeerDeadError instead of hanging.
func TestTCPPeerDeathDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness test skipped in -short")
	}
	errs := runTCPWorld(t, 2, func(o *TCPOptions) {
		o.HeartbeatInterval = 20 * time.Millisecond
		o.LivenessTimeout = 200 * time.Millisecond
	}, func(r *Rank) error {
		if r.ID == 1 {
			// Die without a word: close the transport's sockets directly.
			return r.Transport().Close()
		}
		_, _, err := r.Recv(1, 5)
		if !IsPeerDead(err) {
			return fmt.Errorf("recv from killed peer: got %v, want PeerDeadError", err)
		}
		return nil
	})
	checkErrs(t, errs)
}

// TestTCPSendToDeadPeerFails pins the send-side error path.
func TestTCPSendToDeadPeerFails(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness test skipped in -short")
	}
	errs := runTCPWorld(t, 2, func(o *TCPOptions) {
		o.HeartbeatInterval = 20 * time.Millisecond
		o.LivenessTimeout = 150 * time.Millisecond
		o.RetryBase = 10 * time.Millisecond
		o.MaxSendAttempts = 3
	}, func(r *Rank) error {
		if r.ID == 1 {
			return r.Transport().Close()
		}
		// Eventually sends must fail once liveness (or ack exhaustion)
		// declares the peer dead.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if err := r.Send(1, 9, []byte("x")); err != nil {
				if !IsPeerDead(err) {
					return fmt.Errorf("send error %v, want PeerDeadError", err)
				}
				return nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return fmt.Errorf("sends to a dead peer kept succeeding")
	})
	checkErrs(t, errs)
}
