package comm

import (
	"fmt"
	"time"
)

// The collectives are built on point-to-point messages in the reserved
// internal tag space, so they work identically over every Transport (the
// in-process fabric and TCP).  Each collective call consumes one sequence
// number from the rank's counter; since all ranks call collectives in
// lockstep (the SPMD contract), the counters agree across ranks and the
// sequence-keyed tags isolate consecutive collectives from each other even
// when some ranks race ahead — no barrier separators needed.

// collTag maps (collective sequence, sub-channel) into the internal tag
// space.  The sub-channel distinguishes message roles within one collective
// (barrier rounds, alltoall steps, hierarchical up/inter/down lanes).
func collTag(seq int64, sub int) int {
	if sub < 0 || sub >= 1<<20 {
		panic(fmt.Sprintf("comm: collective sub-channel %d out of range", sub))
	}
	return internalTagBase + int(seq)<<20 + sub
}

func (r *Rank) nextSeq() int64 {
	s := r.collSeq
	r.collSeq++
	return s
}

// isend sends an internal (collective) message, counted separately from the
// application point-to-point statistics.
func (r *Rank) isend(dst, tag int, payload any) error {
	r.stats.countCollective(false, 1)
	return r.t.Send(dst, tag, payload)
}

// irecv receives an internal message by exact (src, tag) with the
// transport's default deadline.
func (r *Rank) irecv(src, tag int) (any, error) {
	msg, err := r.t.Recv(src, matchExact(tag), time.Time{})
	if err != nil {
		return nil, err
	}
	return msg.Payload, nil
}

// Barrier blocks until all ranks reach it.  It fails (instead of hanging)
// when a participating rank is gone.
func (r *Rank) Barrier() error {
	r.stats.countCollective(true, 0)
	n := r.N()
	if n == 1 {
		return nil
	}
	seq := r.nextSeq()
	// Dissemination barrier: log2(n) rounds of shifted token exchange.  The
	// round index keys the sub-channel; within a round each rank receives
	// from exactly one distinct source, so exact (src, tag) matching holds.
	round := 0
	for d := 1; d < n; d <<= 1 {
		tag := collTag(seq, round)
		if err := r.isend((r.ID+d)%n, tag, nil); err != nil {
			return fmt.Errorf("barrier round %d: %w", round, err)
		}
		if _, err := r.irecv((r.ID-d+n)%n, tag); err != nil {
			return fmt.Errorf("barrier round %d: %w", round, err)
		}
		round++
	}
	return nil
}

// Broadcast distributes root's value to all ranks and returns it.
func (r *Rank) Broadcast(root int, value any) (any, error) {
	r.stats.countCollective(true, 0)
	seq := r.nextSeq()
	if r.N() == 1 {
		return value, nil
	}
	tag := collTag(seq, 0)
	if r.ID == root {
		for dst := 0; dst < r.N(); dst++ {
			if dst == root {
				continue
			}
			if err := r.isend(dst, tag, value); err != nil {
				return nil, fmt.Errorf("broadcast to rank %d: %w", dst, err)
			}
		}
		return value, nil
	}
	v, err := r.irecv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("broadcast from root %d: %w", root, err)
	}
	return v, nil
}

// gatherRoot collects one value per rank, in rank order, on rank 0; other
// ranks receive nil.  Used by the reductions so the combining order (and
// therefore the floating-point rounding) is the rank order, matching the
// serial reference.
func (r *Rank) gatherRoot(seq int64, v any) ([]any, error) {
	tag := collTag(seq, 1)
	if r.ID != 0 {
		if err := r.isend(0, tag, v); err != nil {
			return nil, fmt.Errorf("gather to root: %w", err)
		}
		return nil, nil
	}
	buf := make([]any, r.N())
	buf[0] = v
	for src := 1; src < r.N(); src++ {
		p, err := r.irecv(src, tag)
		if err != nil {
			return nil, fmt.Errorf("gather from rank %d: %w", src, err)
		}
		buf[src] = p
	}
	return buf, nil
}

// AllreduceFloat64 reduces one float64 per rank with op ("sum", "min",
// "max") and returns the result on every rank.  The reduction combines
// contributions in rank order on rank 0, so the result is bitwise
// deterministic for a given rank count.
func (r *Rank) AllreduceFloat64(v float64, op string) (float64, error) {
	r.stats.countCollective(true, 0)
	seq := r.nextSeq()
	if r.N() == 1 {
		return reduceFloat64([]any{v}, op), nil
	}
	buf, err := r.gatherRoot(seq, v)
	if err != nil {
		return 0, fmt.Errorf("allreduce float64: %w", err)
	}
	var out float64
	tag := collTag(seq, 2)
	if r.ID == 0 {
		out = reduceFloat64(buf, op)
		for dst := 1; dst < r.N(); dst++ {
			if err := r.isend(dst, tag, out); err != nil {
				return 0, fmt.Errorf("allreduce float64: %w", err)
			}
		}
		return out, nil
	}
	p, err := r.irecv(0, tag)
	if err != nil {
		return 0, fmt.Errorf("allreduce float64: %w", err)
	}
	return p.(float64), nil
}

func reduceFloat64(buf []any, op string) float64 {
	out := buf[0].(float64)
	switch op {
	case "min":
		for i := 1; i < len(buf); i++ {
			if x := buf[i].(float64); x < out {
				out = x
			}
		}
	case "max":
		for i := 1; i < len(buf); i++ {
			if x := buf[i].(float64); x > out {
				out = x
			}
		}
	default:
		for i := 1; i < len(buf); i++ {
			out += buf[i].(float64)
		}
	}
	return out
}

// AllreduceInt64 sums one int64 per rank across the world.
func (r *Rank) AllreduceInt64(v int64) (int64, error) {
	r.stats.countCollective(true, 0)
	seq := r.nextSeq()
	if r.N() == 1 {
		return v, nil
	}
	buf, err := r.gatherRoot(seq, v)
	if err != nil {
		return 0, fmt.Errorf("allreduce int64: %w", err)
	}
	tag := collTag(seq, 2)
	if r.ID == 0 {
		var out int64
		for _, p := range buf {
			out += p.(int64)
		}
		for dst := 1; dst < r.N(); dst++ {
			if err := r.isend(dst, tag, out); err != nil {
				return 0, fmt.Errorf("allreduce int64: %w", err)
			}
		}
		return out, nil
	}
	p, err := r.irecv(0, tag)
	if err != nil {
		return 0, fmt.Errorf("allreduce int64: %w", err)
	}
	return p.(int64), nil
}

// Allgather collects one value per rank into a slice indexed by rank,
// returned on every rank.  The caller must not mutate the result.
func (r *Rank) Allgather(v any) ([]any, error) {
	r.stats.countCollective(true, 0)
	seq := r.nextSeq()
	if r.N() == 1 {
		return []any{v}, nil
	}
	buf, err := r.gatherRoot(seq, v)
	if err != nil {
		return nil, fmt.Errorf("allgather: %w", err)
	}
	tag := collTag(seq, 2)
	if r.ID == 0 {
		for dst := 1; dst < r.N(); dst++ {
			if err := r.isend(dst, tag, buf); err != nil {
				return nil, fmt.Errorf("allgather: %w", err)
			}
		}
		return buf, nil
	}
	p, err := r.irecv(0, tag)
	if err != nil {
		return nil, fmt.Errorf("allgather: %w", err)
	}
	return p.([]any), nil
}

// AllgatherUint64 gathers variable-length uint64 slices from every rank and
// returns the concatenation (in rank order) on every rank.
func (r *Rank) AllgatherUint64(v []uint64) ([]uint64, error) {
	parts, err := r.Allgather(v)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, p := range parts {
		out = append(out, p.([]uint64)...)
	}
	return out, nil
}

// AlltoallAlgorithm selects the data-exchange implementation.
type AlltoallAlgorithm int

const (
	// AlltoallDirect posts every outgoing block eagerly, then receives in
	// source order (the idealized library implementation).
	AlltoallDirect AlltoallAlgorithm = iota
	// AlltoallPairwise loops over all pairs of processes exchanging data,
	// the "trivial implementation" that outperformed the system MPI at
	// 32k+ processes in the paper.
	AlltoallPairwise
	// AlltoallHierarchical relays messages through one leader per node
	// group, the rewrite that fixed the buffer blow-up in OpenMPI.
	AlltoallHierarchical
)

// AlltoallvBytes exchanges send[dst] with every destination and returns
// recv[src].  All ranks must call it with the same algorithm.
func (r *Rank) AlltoallvBytes(send [][]byte, algo AlltoallAlgorithm) ([][]byte, error) {
	if len(send) != r.N() {
		return nil, fmt.Errorf("comm: Alltoallv send length %d must equal world size %d", len(send), r.N())
	}
	r.stats.countCollective(true, 0)
	seq := r.nextSeq()
	switch algo {
	case AlltoallPairwise:
		return r.alltoallPairwise(seq, send)
	case AlltoallHierarchical:
		return r.alltoallHierarchical(seq, send)
	default:
		return r.alltoallDirect(seq, send)
	}
}

func (r *Rank) alltoallDirect(seq int64, send [][]byte) ([][]byte, error) {
	n := r.N()
	tag := collTag(seq, 0)
	for dst := 0; dst < n; dst++ {
		if dst == r.ID {
			continue
		}
		if err := r.isend(dst, tag, send[dst]); err != nil {
			return nil, fmt.Errorf("alltoall direct send to %d: %w", dst, err)
		}
	}
	recv := make([][]byte, n)
	recv[r.ID] = send[r.ID]
	for src := 0; src < n; src++ {
		if src == r.ID {
			continue
		}
		p, err := r.irecv(src, tag)
		if err != nil {
			return nil, fmt.Errorf("alltoall direct recv from %d: %w", src, err)
		}
		recv[src], _ = p.([]byte)
	}
	return recv, nil
}

func (r *Rank) alltoallPairwise(seq int64, send [][]byte) ([][]byte, error) {
	n := r.N()
	recv := make([][]byte, n)
	recv[r.ID] = send[r.ID]
	// Loop over all pairs: at step s exchange with dst = (rank + s) mod n and
	// src = (rank - s) mod n; the step index keys the sub-channel.
	for s := 1; s < n; s++ {
		dst := (r.ID + s) % n
		src := (r.ID - s + n) % n
		tag := collTag(seq, s)
		if err := r.isend(dst, tag, send[dst]); err != nil {
			return nil, fmt.Errorf("alltoall pairwise step %d send: %w", s, err)
		}
		p, err := r.irecv(src, tag)
		if err != nil {
			return nil, fmt.Errorf("alltoall pairwise step %d recv: %w", s, err)
		}
		recv[src], _ = p.([]byte)
	}
	return recv, nil
}

// bundle is the leader-to-leader unit of the hierarchical relay: the blocks
// from every source in one group to every destination in another.
type bundle struct {
	Src  []int
	Dst  []int
	Data [][]byte
}

// alltoallHierarchical relays all traffic through group leaders: ranks are
// grouped into "nodes" of size g; only leaders exchange inter-node traffic.
// Sub-channels: [0,n) member->leader uploads by destination, [n,2n)
// leader->leader bundles by sending leader, [2n,3n) leader->member
// deliveries by original source.
func (r *Rank) alltoallHierarchical(seq int64, send [][]byte) ([][]byte, error) {
	n := r.N()
	g := nodeGroupSize(n)
	leader := (r.ID / g) * g
	nGroups := (n + g - 1) / g

	if r.ID != leader {
		// Send all outgoing blocks to the leader, then receive all incoming.
		for dst := 0; dst < n; dst++ {
			if err := r.isend(leader, collTag(seq, dst), send[dst]); err != nil {
				return nil, fmt.Errorf("alltoall hierarchical upload: %w", err)
			}
		}
		recv := make([][]byte, n)
		for src := 0; src < n; src++ {
			p, err := r.irecv(leader, collTag(seq, 2*n+src))
			if err != nil {
				return nil, fmt.Errorf("alltoall hierarchical delivery: %w", err)
			}
			recv[src], _ = p.([]byte)
		}
		return recv, nil
	}

	// Leader: gather blocks from group members (including itself).
	groupHi := leader + g
	if groupHi > n {
		groupHi = n
	}
	// blocks[srcLocal][dst]
	blocks := make(map[int][][]byte)
	blocks[r.ID] = send
	for m := leader + 1; m < groupHi; m++ {
		mb := make([][]byte, n)
		for dst := 0; dst < n; dst++ {
			p, err := r.irecv(m, collTag(seq, dst))
			if err != nil {
				return nil, fmt.Errorf("alltoall hierarchical gather from member %d: %w", m, err)
			}
			mb[dst], _ = p.([]byte)
		}
		blocks[m] = mb
	}
	// Exchange bundles between leaders.
	for gi := 0; gi < nGroups; gi++ {
		otherLeader := gi * g
		if otherLeader == leader {
			continue
		}
		otherHi := otherLeader + g
		if otherHi > n {
			otherHi = n
		}
		var b bundle
		for src := leader; src < groupHi; src++ {
			for dst := otherLeader; dst < otherHi; dst++ {
				b.Src = append(b.Src, src)
				b.Dst = append(b.Dst, dst)
				b.Data = append(b.Data, blocks[src][dst])
			}
		}
		if err := r.isend(otherLeader, collTag(seq, n+leader), b); err != nil {
			return nil, fmt.Errorf("alltoall hierarchical inter-leader send: %w", err)
		}
	}
	// Receive bundles from other leaders.
	incoming := make(map[int]map[int][]byte) // dst -> src -> data
	for dst := leader; dst < groupHi; dst++ {
		incoming[dst] = make(map[int][]byte)
	}
	// Intra-group traffic.
	for src := leader; src < groupHi; src++ {
		for dst := leader; dst < groupHi; dst++ {
			incoming[dst][src] = blocks[src][dst]
		}
	}
	for gi := 0; gi < nGroups; gi++ {
		otherLeader := gi * g
		if otherLeader == leader {
			continue
		}
		p, err := r.irecv(otherLeader, collTag(seq, n+otherLeader))
		if err != nil {
			return nil, fmt.Errorf("alltoall hierarchical inter-leader recv: %w", err)
		}
		b := p.(bundle)
		for i := range b.Src {
			incoming[b.Dst[i]][b.Src[i]] = b.Data[i]
		}
	}
	// Deliver to members.
	for m := leader + 1; m < groupHi; m++ {
		for src := 0; src < n; src++ {
			if err := r.isend(m, collTag(seq, 2*n+src), incoming[m][src]); err != nil {
				return nil, fmt.Errorf("alltoall hierarchical deliver to member %d: %w", m, err)
			}
		}
	}
	recv := make([][]byte, n)
	for src := 0; src < n; src++ {
		recv[src] = incoming[r.ID][src]
	}
	return recv, nil
}

// nodeGroupSize picks the "node" size for the hierarchical relay.
func nodeGroupSize(n int) int {
	g := 1
	for g*g < n {
		g++
	}
	if g < 1 {
		g = 1
	}
	return g
}
