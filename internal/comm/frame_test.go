package comm

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{kind: kindData, src: 3, seq: 42, tag: 7, payload: []byte("hello")},
		{kind: kindAck, src: 0, seq: 1},
		{kind: kindHeartbeat, src: 9},
		{kind: kindHello, src: 2},
		{kind: kindData, src: 1, seq: 2, tag: internalTagBase + 12345, payload: make([]byte, 4096)},
	}
	var wire []byte
	for _, f := range frames {
		wire = appendFrame(wire, f)
	}
	rd := bytes.NewReader(wire)
	for i, want := range frames {
		got, err := readFrame(rd, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.kind != want.kind || got.src != want.src || got.seq != want.seq || got.tag != want.tag {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	wire := appendFrame(nil, frame{kind: kindData, src: 1, seq: 5, tag: 3, payload: []byte("payload")})

	// Payload corruption: checksum failure, recoverable.
	bad := append([]byte(nil), wire...)
	bad[frameHeaderSize+2] ^= 0xFF
	if _, err := readFrame(bytes.NewReader(bad), nil); err != errFrameChecksum {
		t.Errorf("payload corruption: got %v, want errFrameChecksum", err)
	}

	// Magic corruption: fatal desync.
	bad = append([]byte(nil), wire...)
	bad[0] ^= 0xFF
	if _, err := readFrame(bytes.NewReader(bad), nil); err == nil || err == errFrameChecksum {
		t.Errorf("magic corruption: got %v, want fatal error", err)
	}

	// Implausible length prefix: fatal, no huge allocation.
	bad = append([]byte(nil), wire...)
	binary.LittleEndian.PutUint32(bad[23:], math.MaxUint32)
	if _, err := readFrame(bytes.NewReader(bad), nil); err == nil || err == errFrameChecksum {
		t.Errorf("huge length: got %v, want fatal error", err)
	}

	// Truncated stream: short read error.
	if _, err := readFrame(bytes.NewReader(wire[:len(wire)-3]), nil); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	values := []any{
		nil,
		[]byte{1, 2, 3},
		[]byte{},
		[]uint64{7, 8, 9},
		[]float64{1.5, -2.25, math.Inf(1)},
		[]int{-1, 0, 42},
		3.14159,
		int64(-77),
		12345,
		uint64(1 << 60),
		"a string payload",
		true,
		false,
		abmRequest{src: 2, id: 99, keys: []uint64{5, 6}},
		abmReply{id: 99, data: [][]byte{[]byte("a"), nil, []byte("ccc")}},
		bundle{Src: []int{0, 1}, Dst: []int{2, 3}, Data: [][]byte{[]byte("x"), nil}},
		[]any{[]byte("nested"), 5, nil, []uint64{1}},
	}
	for i, v := range values {
		buf, err := encodePayload(nil, v)
		if err != nil {
			t.Fatalf("value %d (%T): encode: %v", i, v, err)
		}
		got, rest, err := decodePayload(buf)
		if err != nil {
			t.Fatalf("value %d (%T): decode: %v", i, v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("value %d (%T): %d trailing bytes", i, v, len(rest))
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("value %d: got %#v want %#v", i, got, v)
		}
	}
	// Unencodable type fails loudly.
	if _, err := encodePayload(nil, struct{ X int }{1}); err == nil {
		t.Error("arbitrary struct encoded without error")
	}
}

// FuzzReadFrame hammers the frame decoder with malformed input: arbitrary
// bytes, truncations, and flipped length prefixes must never panic or
// over-allocate — they fail with an error (or errFrameChecksum).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, frame{kind: kindData, src: 1, seq: 1, tag: 5, payload: []byte("seed")}))
	f.Add(appendFrame(nil, frame{kind: kindHeartbeat, src: 2}))
	long := appendFrame(nil, frame{kind: kindData, src: 0, seq: 9, tag: internalTagBase, payload: make([]byte, 512)})
	f.Add(long)
	f.Add(long[:17])
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		for {
			g, err := readFrame(rd, nil)
			if err != nil {
				if err == errFrameChecksum {
					continue
				}
				return
			}
			// A frame that decodes must re-encode to a parseable frame.
			if len(g.payload) > maxFramePayload {
				t.Fatalf("oversized payload accepted: %d", len(g.payload))
			}
			reenc := appendFrame(nil, g)
			if _, err := readFrame(bytes.NewReader(reenc), nil); err != nil {
				t.Fatalf("re-encoded frame rejected: %v", err)
			}
		}
	})
}

// FuzzDecodePayload does the same for the payload codec.
func FuzzDecodePayload(f *testing.F) {
	seedValues := []any{
		[]byte("bytes"), []uint64{1, 2}, []float64{3.5}, "str", 7, int64(-1),
		abmRequest{src: 1, id: 2, keys: []uint64{3}},
		abmReply{id: 4, data: [][]byte{[]byte("d")}},
		bundle{Src: []int{0}, Dst: []int{1}, Data: [][]byte{[]byte("b")}},
		[]any{1, "two"},
	}
	for _, v := range seedValues {
		buf, err := encodePayload(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := decodePayload(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("decode returned more input than given")
		}
		// A decoded value must re-encode (closed type set).
		if _, err := encodePayload(nil, v); err != nil {
			t.Fatalf("decoded value %T not re-encodable: %v", v, err)
		}
	})
}
