package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The payload codec gives the TCP transport the by-value twin of the
// in-process by-reference payload passing: the closed set of Go values the
// communication patterns exchange (raw byte blocks, numeric slices, scalars,
// the ABM request/reply pair, the hierarchical-alltoall bundle, and the
// []any used by Allgather) round-trips through a type-prefixed binary
// encoding.  Decoding applies the same hardening as the wire frame: every
// length is bounds-checked against the remaining input before allocation.

const (
	ptNil = uint8(iota)
	ptBytes
	ptUint64s
	ptFloat64s
	ptInts
	ptFloat64
	ptInt64
	ptInt
	ptUint64
	ptString
	ptBool
	ptABMRequest
	ptABMReply
	ptBundle
	ptAnySlice
)

// encodePayload appends the encoding of v to buf.  It fails on a type
// outside the codec's closed set — process-spanning transports cannot ship
// arbitrary Go values.
func encodePayload(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, ptNil), nil
	case []byte:
		buf = append(buf, ptBytes)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case []uint64:
		buf = append(buf, ptUint64s)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, u := range x {
			buf = binary.LittleEndian.AppendUint64(buf, u)
		}
		return buf, nil
	case []float64:
		buf = append(buf, ptFloat64s)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, f := range x {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf, nil
	case []int:
		buf = append(buf, ptInts)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, i := range x {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(i))
		}
		return buf, nil
	case float64:
		buf = append(buf, ptFloat64)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case int64:
		buf = append(buf, ptInt64)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case int:
		buf = append(buf, ptInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case uint64:
		buf = append(buf, ptUint64)
		return binary.LittleEndian.AppendUint64(buf, x), nil
	case string:
		buf = append(buf, ptString)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case bool:
		buf = append(buf, ptBool)
		if x {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case abmRequest:
		buf = append(buf, ptABMRequest)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.src))
		buf = binary.LittleEndian.AppendUint64(buf, x.id)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.keys)))
		for _, k := range x.keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
		return buf, nil
	case abmReply:
		buf = append(buf, ptABMReply)
		buf = binary.LittleEndian.AppendUint64(buf, x.id)
		return appendByteBlocks(buf, x.data), nil
	case bundle:
		buf = append(buf, ptBundle)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Src)))
		for _, s := range x.Src {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(s))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Dst)))
		for _, d := range x.Dst {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(d))
		}
		return appendByteBlocks(buf, x.Data), nil
	case []any:
		buf = append(buf, ptAnySlice)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		var err error
		for _, e := range x {
			if buf, err = encodePayload(buf, e); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("comm: payload type %T is not wire-encodable", v)
	}
}

func appendByteBlocks(buf []byte, blocks [][]byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blocks)))
	for _, b := range blocks {
		// Distinguish nil from empty so by-value decoding mirrors the
		// by-reference in-process payloads exactly.
		if b == nil {
			buf = binary.LittleEndian.AppendUint32(buf, ^uint32(0))
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// decodePayload decodes one value and returns it with the remaining input.
func decodePayload(buf []byte) (any, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("comm: empty payload")
	}
	pt, rest := buf[0], buf[1:]
	switch pt {
	case ptNil:
		return nil, rest, nil
	case ptBytes:
		n, rest, err := decodeLen(rest, 1)
		if err != nil {
			return nil, nil, err
		}
		out := make([]byte, n)
		copy(out, rest[:n])
		return out, rest[n:], nil
	case ptUint64s:
		n, rest, err := decodeLen(rest, 8)
		if err != nil {
			return nil, nil, err
		}
		out := make([]uint64, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
		return out, rest[8*n:], nil
	case ptFloat64s:
		n, rest, err := decodeLen(rest, 8)
		if err != nil {
			return nil, nil, err
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return out, rest[8*n:], nil
	case ptInts:
		n, rest, err := decodeLen(rest, 8)
		if err != nil {
			return nil, nil, err
		}
		out := make([]int, n)
		for i := range out {
			out[i] = int(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return out, rest[8*n:], nil
	case ptFloat64:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("comm: truncated float64 payload")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case ptInt64:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("comm: truncated int64 payload")
		}
		return int64(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case ptInt:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("comm: truncated int payload")
		}
		return int(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case ptUint64:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("comm: truncated uint64 payload")
		}
		return binary.LittleEndian.Uint64(rest), rest[8:], nil
	case ptString:
		n, rest, err := decodeLen(rest, 1)
		if err != nil {
			return nil, nil, err
		}
		return string(rest[:n]), rest[n:], nil
	case ptBool:
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("comm: truncated bool payload")
		}
		return rest[0] != 0, rest[1:], nil
	case ptABMRequest:
		if len(rest) < 12 {
			return nil, nil, fmt.Errorf("comm: truncated abm request")
		}
		req := abmRequest{
			src: int(binary.LittleEndian.Uint32(rest)),
			id:  binary.LittleEndian.Uint64(rest[4:]),
		}
		n, rest, err := decodeLen(rest[12:], 8)
		if err != nil {
			return nil, nil, err
		}
		req.keys = make([]uint64, n)
		for i := range req.keys {
			req.keys[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
		return req, rest[8*n:], nil
	case ptABMReply:
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("comm: truncated abm reply")
		}
		rep := abmReply{id: binary.LittleEndian.Uint64(rest)}
		data, rest, err := decodeByteBlocks(rest[8:])
		if err != nil {
			return nil, nil, err
		}
		rep.data = data
		return rep, rest, nil
	case ptBundle:
		var b bundle
		n, rest, err := decodeLen(rest, 8)
		if err != nil {
			return nil, nil, err
		}
		b.Src = make([]int, n)
		for i := range b.Src {
			b.Src[i] = int(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*n:]
		n, rest, err = decodeLen(rest, 8)
		if err != nil {
			return nil, nil, err
		}
		b.Dst = make([]int, n)
		for i := range b.Dst {
			b.Dst[i] = int(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		b.Data, rest, err = decodeByteBlocks(rest[8*n:])
		if err != nil {
			return nil, nil, err
		}
		return b, rest, nil
	case ptAnySlice:
		n, rest, err := decodeLen(rest, 1)
		if err != nil {
			return nil, nil, err
		}
		out := make([]any, n)
		for i := range out {
			out[i], rest, err = decodePayload(rest)
			if err != nil {
				return nil, nil, err
			}
		}
		return out, rest, nil
	default:
		return nil, nil, fmt.Errorf("comm: unknown payload type %d", pt)
	}
}

// decodeLen reads a u32 count and verifies that count*elemSize bytes remain,
// so a corrupted length cannot drive an implausible allocation.
func decodeLen(buf []byte, elemSize int) (int, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("comm: truncated length prefix")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	rest := buf[4:]
	if n < 0 || n*elemSize > len(rest) {
		return 0, nil, fmt.Errorf("comm: implausible element count %d for %d remaining bytes", n, len(rest))
	}
	return n, rest, nil
}

func decodeByteBlocks(buf []byte) ([][]byte, []byte, error) {
	n, rest, err := decodeLen(buf, 4)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]byte, n)
	for i := range out {
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("comm: truncated block length")
		}
		bl := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if bl == ^uint32(0) {
			out[i] = nil
			continue
		}
		if int(bl) > len(rest) {
			return nil, nil, fmt.Errorf("comm: implausible block length %d for %d remaining bytes", bl, len(rest))
		}
		out[i] = make([]byte, bl)
		copy(out[i], rest[:bl])
		rest = rest[bl:]
	}
	return out, rest, nil
}
