// Package comm is the message-passing runtime of the distributed solver: the
// in-repo analogue of the MPI layer the paper's code runs on.  A simulation
// world is N ranks exchanging tagged messages; everything above this package
// (domain decomposition, the distributed tree build, the solver's data
// exchange) is written against ranks and tags only, never against sockets or
// channels.
//
// # Communication patterns
//
// Three pattern families are built on the Transport seam:
//
//   - Point-to-point: Rank.Send and Rank.Recv move a tagged payload between
//     two ranks.  Sends are buffered (never block on the receiver); receives
//     block until a match, a deadline (DeadlineError), or peer death
//     (PeerDeadError).
//   - Collectives: Barrier, Broadcast, Allreduce*, Allgather* and
//     AlltoallvBytes are deterministic message schedules over point-to-point
//     sends.  Each call stamps its messages with a per-rank sequence number
//     in a reserved internal tag space, so collectives cannot be confused
//     with application traffic or with each other, and reductions combine
//     contributions in rank order — bitwise reproducible for a fixed rank
//     count.  AlltoallvBytes implements the direct, pairwise and
//     hierarchical algorithms the paper compares.
//   - ABM: the asynchronous batched messaging service of the HOT codes
//     (NewABM) — a background request/reply engine for remote tree-node
//     fetches during traversal, multiplexed over the same transport via a
//     wildcard receive that is blind to internal tags.
//
// # Transports
//
// Transport is the seam between those patterns and the machinery that moves
// bytes; see its contract.  Two implementations ship:
//
//   - NewWorld runs all ranks as goroutines of one process over
//     shared-memory mailboxes — the reference implementation and the
//     fabric behind Config.Ranks > 1 runs.
//   - JoinTCP connects one rank process into a fully-connected TCP mesh.
//     Every frame is length-prefixed and CRC32-checksummed; data frames are
//     acknowledged, retransmitted with exponentially backed-off jittered
//     retries (TCPOptions.RetryBase, MaxSendAttempts) and deduplicated by
//     sequence number on receipt, so a frame lost, delayed, duplicated or
//     corrupted in flight never changes what the application observes.
//     Idle connections carry heartbeats; a peer silent past
//     LivenessTimeout — or whose retries exhaust — is declared dead, and
//     every receive that could only be satisfied by dead peers fails with
//     PeerDeadError instead of hanging.
//
// The same rank body runs bit-identically on either transport; the TCP
// world's results are pinned against the in-process world's byte for byte
// (see internal/cluster).
//
// # Failure model
//
// All operations return errors rather than panicking or blocking forever:
// closed transports yield ErrClosed, timeouts DeadlineError, dead peers
// PeerDeadError (test with IsPeerDead).  Callers treat peer death as fatal
// for the world — recovery is by restart from a checkpoint, orchestrated
// one level up by internal/cluster's supervisor — so no transport attempts
// to reintegrate a lost rank.
//
// ChaosOptions injects seeded, deterministic faults (drop, delay, duplicate,
// corrupt, kill-process) into first-attempt outgoing frames, which is how
// the recovery machinery is exercised in tests and CI without flakiness.
package comm
