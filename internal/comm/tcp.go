package comm

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPOptions configures one rank of a multi-process TCP world.
type TCPOptions struct {
	// Rank and N identify this process within the world.
	Rank, N int
	// Addrs[i] is the listen address of rank i (host:port), length N.
	Addrs []string

	// DialTimeout bounds the total time spent connecting to each lower
	// peer during the join handshake (ranks start at different times, so
	// dialing retries until the peer's listener is up).  Default 15s.
	DialTimeout time.Duration
	// RecvTimeout is the default Recv deadline (a backstop against protocol
	// bugs; peer death is detected much faster by the liveness monitor).
	// Default 120s; negative disables it.
	RecvTimeout time.Duration
	// HeartbeatInterval is the idle keepalive cadence.  Default 250ms.
	HeartbeatInterval time.Duration
	// LivenessTimeout declares a peer dead when nothing (heartbeats
	// included) has arrived from it for this long.  Default 10 heartbeat
	// intervals.
	LivenessTimeout time.Duration
	// MaxSendAttempts bounds the retransmissions of an unacknowledged
	// frame before the peer is declared dead.  Default 8.
	MaxSendAttempts int
	// RetryBase is the first retransmission backoff; attempt k waits
	// RetryBase<<(k-1) plus deterministic jitter.  Default 25ms.
	RetryBase time.Duration

	// Chaos, when non-nil, injects seeded deterministic faults into
	// first-attempt outgoing frames (see ChaosOptions).
	Chaos *ChaosOptions
}

func (o *TCPOptions) defaults() error {
	if o.N < 1 || o.Rank < 0 || o.Rank >= o.N {
		return fmt.Errorf("comm: invalid rank %d of %d", o.Rank, o.N)
	}
	if len(o.Addrs) != o.N {
		return fmt.Errorf("comm: %d addresses for %d ranks", len(o.Addrs), o.N)
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.RecvTimeout == 0 {
		o.RecvTimeout = 120 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.LivenessTimeout <= 0 {
		o.LivenessTimeout = 10 * o.HeartbeatInterval
	}
	if o.MaxSendAttempts <= 0 {
		o.MaxSendAttempts = 8
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	return nil
}

// JoinTCP connects this process into an N-rank TCP world and returns its
// Rank handle.  Every rank listens on its own address and the mesh is fully
// connected: rank i dials every j < i and accepts from every j > i, so each
// pair shares one bidirectional connection.  The returned Rank speaks the
// same collective and ABM protocols as an in-process world — the same rank
// body runs bit-identically on either transport.
func JoinTCP(opt TCPOptions) (*Rank, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	t := &tcpTransport{
		opt:    opt,
		closed: make(chan struct{}),
		peers:  make([]*tcpPeer, opt.N),
	}
	t.mbox = newMailbox(t.peerDown)
	if opt.Chaos != nil {
		t.chaos = newChaosInjector(*opt.Chaos, opt.Rank)
	}

	ln, err := net.Listen("tcp", opt.Addrs[opt.Rank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen %s: %w", opt.Rank, opt.Addrs[opt.Rank], err)
	}
	t.listener = ln

	// Dial lower ranks and accept higher ranks concurrently: the dial side
	// identifies itself with a hello frame.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = t.dialLower()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[1] = t.acceptHigher()
	}()
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			t.Close()
			return nil, e
		}
	}

	for _, p := range t.peers {
		if p != nil {
			t.startPeer(p)
		}
	}
	return Join(t), nil
}

// tcpTransport is one process's endpoint of a TCP world.
type tcpTransport struct {
	opt      TCPOptions
	mbox     *mailbox
	listener net.Listener
	peers    []*tcpPeer // indexed by rank; nil at opt.Rank
	chaos    *chaosInjector

	closeOnce sync.Once
	closed    chan struct{}
}

// tcpPeer is the reliability state for one connection.
type tcpPeer struct {
	rank int
	conn net.Conn

	wmu sync.Mutex // serializes writes (main goroutine + ABM service + retry)

	// Reliability: outgoing frames carry a per-peer sequence number and are
	// retransmitted with exponential backoff until acknowledged.
	amu     sync.Mutex
	sendSeq uint64
	unacked map[uint64]*pendingFrame
	rng     *rand.Rand // jitter; deterministically seeded per (self, peer)

	// Dedup of retransmitted deliveries: floor is the highest sequence
	// below which everything has been delivered; seen holds delivered
	// sequences above it.
	dmu   sync.Mutex
	floor uint64
	seen  map[uint64]bool

	lastSeen atomic.Int64 // unix nanos of the last frame from this peer

	dead atomic.Pointer[string] // non-nil reason once declared dead
}

type pendingFrame struct {
	wire     []byte
	attempts int
	nextTry  time.Time
}

func (t *tcpTransport) Self() int { return t.opt.Rank }
func (t *tcpTransport) N() int    { return t.opt.N }

// --- Join handshake ------------------------------------------------------

func (t *tcpTransport) dialLower() error {
	for dst := 0; dst < t.opt.Rank; dst++ {
		deadline := time.Now().Add(t.opt.DialTimeout)
		var conn net.Conn
		var err error
		for {
			conn, err = net.DialTimeout("tcp", t.opt.Addrs[dst], time.Second)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("comm: rank %d dial rank %d (%s): %w", t.opt.Rank, dst, t.opt.Addrs[dst], err)
		}
		hello := appendFrame(nil, frame{kind: kindHello, src: uint32(t.opt.Rank)})
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			return fmt.Errorf("comm: rank %d hello to rank %d: %w", t.opt.Rank, dst, err)
		}
		t.peers[dst] = t.newPeer(dst, conn)
	}
	return nil
}

func (t *tcpTransport) acceptHigher() error {
	need := t.opt.N - 1 - t.opt.Rank
	for i := 0; i < need; i++ {
		if d, ok := t.listener.(*net.TCPListener); ok {
			d.SetDeadline(time.Now().Add(t.opt.DialTimeout))
		}
		conn, err := t.listener.Accept()
		if err != nil {
			return fmt.Errorf("comm: rank %d accept: %w", t.opt.Rank, err)
		}
		conn.SetReadDeadline(time.Now().Add(t.opt.DialTimeout))
		f, err := readFrame(conn, nil)
		if err != nil || f.kind != kindHello {
			conn.Close()
			return fmt.Errorf("comm: rank %d bad hello: %v", t.opt.Rank, err)
		}
		conn.SetReadDeadline(time.Time{})
		src := int(f.src)
		if src <= t.opt.Rank || src >= t.opt.N || t.peers[src] != nil {
			conn.Close()
			return fmt.Errorf("comm: rank %d unexpected hello from rank %d", t.opt.Rank, src)
		}
		t.peers[src] = t.newPeer(src, conn)
	}
	return nil
}

func (t *tcpTransport) newPeer(rank int, conn net.Conn) *tcpPeer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p := &tcpPeer{
		rank:    rank,
		conn:    conn,
		unacked: make(map[uint64]*pendingFrame),
		seen:    make(map[uint64]bool),
		rng:     rand.New(rand.NewSource(int64(t.opt.Rank)<<20 ^ int64(rank))),
	}
	p.lastSeen.Store(time.Now().UnixNano())
	return p
}

func (t *tcpTransport) startPeer(p *tcpPeer) {
	go t.readLoop(p)
	go t.retryLoop(p)
	go t.heartbeatLoop(p)
}

// --- Liveness ------------------------------------------------------------

func (t *tcpTransport) markDead(p *tcpPeer, reason string) {
	if p.dead.CompareAndSwap(nil, &reason) {
		p.conn.Close() // unblocks the read loop
		t.mbox.wake()  // re-evaluate blocked receives
	}
}

// peerDown implements the mailbox liveness view (see chanFabric.peerDown
// for the wildcard convention).
func (t *tcpTransport) peerDown(src int) error {
	if src >= 0 {
		if src == t.opt.Rank || src >= t.opt.N {
			return nil
		}
		if r := t.peers[src].dead.Load(); r != nil {
			return fmt.Errorf("%s", *r)
		}
		return nil
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		if p.dead.Load() == nil {
			return nil
		}
	}
	return fmt.Errorf("every peer is gone")
}

// --- Send path -----------------------------------------------------------

func (t *tcpTransport) Send(dst, tag int, payload any) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if dst < 0 || dst >= t.opt.N {
		return fmt.Errorf("comm: send to invalid rank %d (world size %d)", dst, t.opt.N)
	}
	if dst == t.opt.Rank {
		t.mbox.put(envelope{src: dst, tag: tag, payload: payload})
		return nil
	}
	p := t.peers[dst]
	if r := p.dead.Load(); r != nil {
		return &PeerDeadError{Rank: dst, Reason: *r}
	}
	body, err := encodePayload(nil, payload)
	if err != nil {
		return err
	}
	p.amu.Lock()
	p.sendSeq++
	seq := p.sendSeq
	wire := appendFrame(nil, frame{kind: kindData, src: uint32(t.opt.Rank), seq: seq, tag: int64(tag), payload: body})
	p.unacked[seq] = &pendingFrame{wire: wire, attempts: 1, nextTry: time.Now().Add(t.backoff(p, 1))}
	p.amu.Unlock()
	t.writeFrame(p, wire, kindData, true)
	return nil
}

// writeFrame writes one wire frame, routing first-attempt data and ack
// frames through the chaos injector when one is installed.  Write errors
// mark the peer dead (retransmission cannot help a broken connection).
func (t *tcpTransport) writeFrame(p *tcpPeer, wire []byte, kind uint8, firstAttempt bool) {
	if t.chaos != nil && firstAttempt && (kind == kindData || kind == kindAck) {
		switch act, delay := t.chaos.onSend(p.rank, kind, wire); act {
		case chaosDrop:
			return // the retry loop (or the sender's retransmit) recovers it
		case chaosDuplicate:
			t.rawWrite(p, wire)
		case chaosCorrupt:
			wire = corruptFrame(append([]byte(nil), wire...), t.chaos)
		case chaosDelay:
			wireCopy := append([]byte(nil), wire...)
			time.AfterFunc(delay, func() { t.rawWrite(p, wireCopy) })
			return
		}
	}
	t.rawWrite(p, wire)
}

func (t *tcpTransport) rawWrite(p *tcpPeer, wire []byte) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() != nil {
		return
	}
	p.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := p.conn.Write(wire); err != nil {
		t.markDead(p, fmt.Sprintf("write failed: %v", err))
	}
}

// backoff returns the wait before retransmission attempt k (1-based):
// exponential with deterministic jitter.
func (t *tcpTransport) backoff(p *tcpPeer, attempt int) time.Duration {
	d := t.opt.RetryBase << (attempt - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	// rng is guarded by amu at every call site.
	return d + time.Duration(p.rng.Int63n(int64(t.opt.RetryBase)/2+1))
}

// --- Background loops ----------------------------------------------------

func (t *tcpTransport) readLoop(p *tcpPeer) {
	var hdr [frameHeaderSize]byte
	for {
		f, err := readFrame(p.conn, hdr[:])
		if err == errFrameChecksum {
			continue // aligned stream, corrupted frame: retransmission recovers
		}
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			t.markDead(p, fmt.Sprintf("connection lost: %v", err))
			return
		}
		p.lastSeen.Store(time.Now().UnixNano())
		switch f.kind {
		case kindData:
			// Always (re-)acknowledge: the previous ack may have been lost.
			ack := appendFrame(nil, frame{kind: kindAck, src: uint32(t.opt.Rank), seq: f.seq})
			t.writeFrame(p, ack, kindAck, true)
			if !p.firstDelivery(f.seq) {
				continue // duplicate retransmission
			}
			v, _, err := decodePayload(f.payload)
			if err != nil {
				// A checksummed frame that fails to decode is a protocol bug,
				// not line noise; fail loudly.
				t.markDead(p, fmt.Sprintf("undecodable payload: %v", err))
				return
			}
			t.mbox.put(envelope{src: p.rank, tag: int(f.tag), payload: v})
		case kindAck:
			p.amu.Lock()
			delete(p.unacked, f.seq)
			p.amu.Unlock()
		case kindHeartbeat, kindHello:
			// lastSeen already updated; nothing else to do.
		}
	}
}

// firstDelivery records seq as delivered and reports whether it was new.
func (p *tcpPeer) firstDelivery(seq uint64) bool {
	p.dmu.Lock()
	defer p.dmu.Unlock()
	if seq <= p.floor || p.seen[seq] {
		return false
	}
	p.seen[seq] = true
	for p.seen[p.floor+1] {
		p.floor++
		delete(p.seen, p.floor)
	}
	return true
}

func (t *tcpTransport) retryLoop(p *tcpPeer) {
	tick := t.opt.RetryBase / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
		}
		if p.dead.Load() != nil {
			return
		}
		// Liveness: declare the peer dead when nothing has arrived for the
		// timeout (heartbeats should arrive every interval).
		if idle := time.Since(time.Unix(0, p.lastSeen.Load())); idle > t.opt.LivenessTimeout {
			t.markDead(p, fmt.Sprintf("no heartbeat for %v", idle.Round(time.Millisecond)))
			return
		}
		now := time.Now()
		var resend [][]byte
		p.amu.Lock()
		for seq, pf := range p.unacked {
			if now.Before(pf.nextTry) {
				continue
			}
			pf.attempts++
			if pf.attempts > t.opt.MaxSendAttempts {
				p.amu.Unlock()
				t.markDead(p, fmt.Sprintf("no ack for frame %d after %d attempts", seq, t.opt.MaxSendAttempts))
				return
			}
			pf.nextTry = now.Add(t.backoff(p, pf.attempts))
			resend = append(resend, pf.wire)
		}
		p.amu.Unlock()
		for _, wire := range resend {
			// Retransmissions bypass the chaos injector, so injected drop and
			// corrupt faults always converge to delivery.
			t.writeFrame(p, wire, kindData, false)
		}
	}
}

func (t *tcpTransport) heartbeatLoop(p *tcpPeer) {
	ticker := time.NewTicker(t.opt.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
		}
		if p.dead.Load() != nil {
			return
		}
		hb := appendFrame(nil, frame{kind: kindHeartbeat, src: uint32(t.opt.Rank)})
		t.writeFrame(p, hb, kindHeartbeat, true)
	}
}

// --- Recv and close ------------------------------------------------------

func (t *tcpTransport) Recv(src int, match func(tag int) bool, deadline time.Time) (Message, error) {
	if deadline.IsZero() && t.opt.RecvTimeout > 0 {
		deadline = time.Now().Add(t.opt.RecvTimeout)
	}
	e, err := t.mbox.get(t.opt.Rank, src, match, deadline)
	if err != nil {
		return Message{}, err
	}
	return Message{Src: e.src, Tag: e.tag, Payload: e.payload}, nil
}

func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		// Drain before teardown: a frame this rank sent may have been
		// dropped or delayed (by the network or the chaos injector) and not
		// yet retransmitted — closing now would strand a peer that still
		// needs it.  Wait until every outgoing frame is acknowledged or its
		// peer is dead, bounded in case a peer dies undetected mid-drain.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			pending := false
			for _, p := range t.peers {
				if p == nil || p.dead.Load() != nil {
					continue
				}
				p.amu.Lock()
				n := len(p.unacked)
				p.amu.Unlock()
				if n > 0 {
					pending = true
					break
				}
			}
			if !pending {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		close(t.closed)
		if t.listener != nil {
			t.listener.Close()
		}
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		t.mbox.close(ErrClosed)
	})
	return nil
}
