package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The TCP transport moves length-prefixed, checksummed frames:
//
//	magic   uint16  frameMagic — stream-alignment sentinel
//	kind    uint8   data | ack | heartbeat | hello
//	src     uint32  sending rank
//	seq     uint64  per-peer reliability sequence (0 for unsequenced kinds)
//	tag     int64   message tag (data frames)
//	plen    uint32  payload length
//	payload [plen]  codec-encoded message body
//	crc     uint32  IEEE CRC32 over header+payload
//
// A frame whose checksum fails but whose header parsed cleanly is dropped —
// the stream is still aligned, and the reliability layer retransmits the
// payload.  A bad magic or an implausible length means the stream itself has
// desynchronized, which is unrecoverable for that connection.

const (
	frameMagic      = uint16(0x2B07)
	frameHeaderSize = 2 + 1 + 4 + 8 + 8 + 4
	// maxFramePayload caps plen, the same implausible-size rejection the
	// cell serialization uses: large enough for any particle exchange block,
	// small enough to fail fast on a desynchronized stream.
	maxFramePayload = 1 << 30
)

const (
	kindData      = uint8(1)
	kindAck       = uint8(2)
	kindHeartbeat = uint8(3)
	kindHello     = uint8(4)
)

// frame is one decoded wire frame.
type frame struct {
	kind    uint8
	src     uint32
	seq     uint64
	tag     int64
	payload []byte
}

// errFrameChecksum marks a frame dropped for a checksum mismatch.  The
// connection remains usable: the header framed the payload correctly, so the
// reader is still byte-aligned with the stream.
var errFrameChecksum = errors.New("comm: frame checksum mismatch")

// appendFrame encodes f into buf (wire format above) and returns the
// extended slice.
func appendFrame(buf []byte, f frame) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, frameMagic)
	buf = append(buf, f.kind)
	buf = binary.LittleEndian.AppendUint32(buf, f.src)
	buf = binary.LittleEndian.AppendUint64(buf, f.seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.tag))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.payload)))
	buf = append(buf, f.payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// readFrame reads and validates one frame.  An errFrameChecksum return is
// recoverable (skip the frame, keep reading); every other error is a
// connection-fatal desync or I/O failure.
func readFrame(r io.Reader, hdr []byte) (frame, error) {
	if len(hdr) < frameHeaderSize {
		hdr = make([]byte, frameHeaderSize)
	}
	hdr = hdr[:frameHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frame{}, err
	}
	if magic := binary.LittleEndian.Uint16(hdr[0:]); magic != frameMagic {
		return frame{}, fmt.Errorf("comm: bad frame magic %#04x: stream desynchronized", magic)
	}
	f := frame{
		kind: hdr[2],
		src:  binary.LittleEndian.Uint32(hdr[3:]),
		seq:  binary.LittleEndian.Uint64(hdr[7:]),
		tag:  int64(binary.LittleEndian.Uint64(hdr[15:])),
	}
	if f.kind < kindData || f.kind > kindHello {
		return frame{}, fmt.Errorf("comm: unknown frame kind %d", f.kind)
	}
	plen := binary.LittleEndian.Uint32(hdr[23:])
	if plen > maxFramePayload {
		return frame{}, fmt.Errorf("comm: implausible frame payload length %d", plen)
	}
	body := make([]byte, int(plen)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, fmt.Errorf("comm: short frame body: %w", err)
	}
	wantCRC := binary.LittleEndian.Uint32(body[plen:])
	h := crc32.NewIEEE()
	h.Write(hdr)
	h.Write(body[:plen])
	if h.Sum32() != wantCRC {
		return frame{}, errFrameChecksum
	}
	f.payload = body[:plen]
	return f, nil
}
