package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Message is the unit of exchange between ranks: a tagged payload stamped
// with its source rank.
type Message struct {
	Src, Tag int
	Payload  any
}

// Transport is the seam between the communication patterns (point-to-point
// matching, collectives, ABM) and the machinery that actually moves bytes.
// Two implementations ship with the package: the in-process channel/mailbox
// fabric (the reference, NewWorld) and the multi-process TCP transport
// (JoinTCP).  A Rank drives exactly one Transport.
//
// Contract:
//   - Send must not block on the receiver (buffered semantics) and returns
//     an error when dst is known dead or the transport is closed.  It never
//     blocks forever.
//   - Recv blocks until a matching message arrives, the deadline passes
//     (DeadlineError), the matched peer set is known dead (PeerDeadError),
//     or the transport closes (ErrClosed).  A zero deadline means the
//     transport's configured default; transports whose default is zero wait
//     without a time limit but still fail fast on peer death.
//   - Payloads cross Send/Recv by reference in process and by value (through
//     the wire codec) across processes; callers must not mutate a payload
//     after sending it.
type Transport interface {
	// Self returns the local rank id.
	Self() int
	// N returns the world size.
	N() int
	// Send delivers payload to rank dst with the given tag.
	Send(dst, tag int, payload any) error
	// Recv returns the next message matching (src, match): src < 0 matches
	// any source, and match (nil = any application tag) filters tags.
	Recv(src int, match func(tag int) bool, deadline time.Time) (Message, error)
	// Close releases the transport's resources.  For process-spanning
	// transports it also announces departure to the peers.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("comm: transport closed")

// DeadlineError reports a receive that timed out before a matching message
// arrived.
type DeadlineError struct {
	Src, Tag int
	Waited   time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("comm: recv (src %d, tag %d) timed out after %v", e.Src, e.Tag, e.Waited)
}

// PeerDeadError reports that a peer rank is gone — its process died, its
// heartbeats lapsed, or (in process) its rank function returned — while a
// matching message was still awaited.  Rank < 0 means "every peer that could
// have matched".
type PeerDeadError struct {
	Rank   int
	Reason string
}

func (e *PeerDeadError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("comm: all candidate peers are gone (%s)", e.Reason)
	}
	return fmt.Sprintf("comm: rank %d is gone (%s)", e.Rank, e.Reason)
}

// IsPeerDead reports whether err wraps a PeerDeadError.
func IsPeerDead(err error) bool {
	var pd *PeerDeadError
	return errors.As(err, &pd)
}

// internalTagBase is the start of the tag space reserved for the
// collectives' sequenced messages.  A wildcard-tag Recv never matches an
// internal tag, so a concurrently running service goroutine (the ABM) cannot
// steal barrier tokens or reduction fragments from the rank's main
// goroutine.
const internalTagBase = 1 << 40

// matchAppTag is the wildcard matcher: any application (non-internal) tag.
func matchAppTag(tag int) bool { return tag < internalTagBase }

// matchExact returns a matcher for one exact tag (which may itself be an
// internal tag — matching an internal tag explicitly is always allowed).
func matchExact(want int) func(int) bool {
	return func(tag int) bool { return tag == want }
}

// envelope is a queued message.
type envelope struct {
	src, tag int
	payload  any
}

// mailbox delivers envelopes to one rank with (src, tag) matching, a
// deadline, and closed-world failure: a receive whose candidate source set
// is known dead returns an error instead of blocking forever.  peerDown
// reports why a given source can no longer send (nil = alive); it is
// consulted only when no pending envelope matches.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []envelope
	closed  error

	// peerDown(src) returns a non-nil reason when rank src can no longer
	// deliver messages here; peerDown(-1) answers for the wildcard — a
	// non-nil reason only when every other rank is down.  Installed by the
	// owning transport.
	peerDown func(src int) error
}

func newMailbox(peerDown func(src int) error) *mailbox {
	m := &mailbox{peerDown: peerDown}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put delivers an envelope.  Delivery to a closed mailbox is dropped.
func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	if m.closed == nil {
		m.pending = append(m.pending, e)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// close fails every current and future receive with cause.
func (m *mailbox) close(cause error) {
	m.mu.Lock()
	if m.closed == nil {
		m.closed = cause
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// wake re-evaluates every blocked receive (after peer liveness changed).
func (m *mailbox) wake() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// get blocks until an envelope matching (src, match) is available and
// removes it from the queue.  src < 0 matches any source; match nil matches
// any application tag.  It fails with DeadlineError when the deadline (if
// non-zero) passes, with PeerDeadError when every candidate source is down,
// and with the close cause when the mailbox is closed.
func (m *mailbox) get(self, src int, match func(tag int) bool, deadline time.Time) (envelope, error) {
	if match == nil {
		match = matchAppTag
	}
	var timer *time.Timer
	if !deadline.IsZero() {
		// sync.Cond has no timed wait; a timer broadcast bounds the sleep.
		timer = time.AfterFunc(time.Until(deadline), func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, e := range m.pending {
			if (src < 0 || e.src == src) && match(e.tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return e, nil
			}
		}
		if m.closed != nil {
			return envelope{}, m.closed
		}
		if err := m.candidatesDown(self, src); err != nil {
			return envelope{}, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return envelope{}, &DeadlineError{Src: src, Tag: -1, Waited: time.Since(start)}
		}
		m.cond.Wait()
	}
}

// candidatesDown reports an error when no candidate source of a receive can
// still deliver: the specific source for src >= 0, every rank but self for
// the wildcard.
func (m *mailbox) candidatesDown(self, src int) error {
	if m.peerDown == nil {
		return nil
	}
	if src == self {
		return nil // a rank can always still send to itself
	}
	if reason := m.peerDown(src); reason != nil {
		return &PeerDeadError{Rank: src, Reason: reason.Error()}
	}
	return nil
}
