package comm

import (
	"encoding/binary"
	"math/rand"
	"os"
	"sync"
	"time"
)

// ChaosOptions configures the deterministic fault-injection wrapper of the
// TCP transport.  Faults apply only to first-attempt data and ack frames:
// retransmissions, heartbeats, and the join handshake are exempt, so every
// injected fault is recoverable by the reliability layer (drop and corrupt
// are retransmitted, duplicates are deduplicated, delays reorder) and the
// liveness channel stays honest.  KillAfter is the exception — it terminates
// the process abruptly, modeling node death for the supervisor to handle.
//
// Rates are per-frame probabilities drawn from a rand stream seeded by
// (Seed, rank, destination), so a given topology and seed replays the same
// fault pattern per connection.
type ChaosOptions struct {
	Seed int64

	DropRate      float64
	DelayRate     float64
	DuplicateRate float64
	CorruptRate   float64

	// MaxDelay bounds injected delays.  Default 20ms.
	MaxDelay time.Duration

	// KillAfter, when positive, terminates this process (os.Exit with
	// ChaosKillExitCode) after that many outgoing data frames — the
	// injected analogue of a node dying mid-step.
	KillAfter int
}

// ChaosKillExitCode is the exit status of a chaos-killed rank process, so a
// supervisor can tell an injected kill from an ordinary failure.
const ChaosKillExitCode = 37

type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosDrop
	chaosDelay
	chaosDuplicate
	chaosCorrupt
)

// chaosInjector draws per-frame fault decisions.  One rand stream per
// destination keeps the decision sequence on each connection a function of
// that connection's own traffic only.
type chaosInjector struct {
	opt  ChaosOptions
	rank int

	mu         sync.Mutex
	perDst     map[int]*rand.Rand
	dataFrames int
}

func newChaosInjector(opt ChaosOptions, rank int) *chaosInjector {
	if opt.MaxDelay <= 0 {
		opt.MaxDelay = 20 * time.Millisecond
	}
	return &chaosInjector{opt: opt, rank: rank, perDst: make(map[int]*rand.Rand)}
}

// onSend decides the fate of one first-attempt outgoing frame.
func (c *chaosInjector) onSend(dst int, kind uint8, wire []byte) (chaosAction, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if kind == kindData && c.opt.KillAfter > 0 {
		c.dataFrames++
		if c.dataFrames >= c.opt.KillAfter {
			os.Exit(ChaosKillExitCode)
		}
	}
	rng := c.perDst[dst]
	if rng == nil {
		rng = rand.New(rand.NewSource(c.opt.Seed ^ int64(c.rank)<<32 ^ int64(dst)))
		c.perDst[dst] = rng
	}
	x := rng.Float64()
	switch {
	case x < c.opt.DropRate:
		return chaosDrop, 0
	case x < c.opt.DropRate+c.opt.DelayRate:
		return chaosDelay, time.Duration(rng.Int63n(int64(c.opt.MaxDelay) + 1))
	case x < c.opt.DropRate+c.opt.DelayRate+c.opt.DuplicateRate:
		return chaosDuplicate, 0
	case x < c.opt.DropRate+c.opt.DelayRate+c.opt.DuplicateRate+c.opt.CorruptRate:
		return chaosCorrupt, 0
	}
	return chaosNone, 0
}

// corruptFrame flips bytes inside the frame's payload (or its checksum when
// the payload is empty), leaving the header intact: the receiver's stream
// stays aligned, the CRC check rejects the frame, and the retransmission
// delivers the true bytes.
func corruptFrame(wire []byte, c *chaosInjector) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	plen := int(binary.LittleEndian.Uint32(wire[23:]))
	rng := c.perDst[-1]
	if rng == nil {
		rng = rand.New(rand.NewSource(c.opt.Seed ^ int64(c.rank)<<32 ^ -1))
		c.perDst[-1] = rng
	}
	if plen > 0 {
		wire[frameHeaderSize+rng.Intn(plen)] ^= 0xFF
	} else {
		wire[len(wire)-1-rng.Intn(4)] ^= 0xFF
	}
	return wire
}
