package comm

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestPointToPointAndBarrier(t *testing.T) {
	w := NewWorld(4)
	var counter int64
	w.Run(func(r *Rank) {
		// Ring send: each rank sends its id to the next.
		next := (r.ID + 1) % r.N()
		r.Send(next, 7, []int{r.ID})
		payload, src := r.Recv((r.ID-1+r.N())%r.N(), 7)
		got := payload.([]int)[0]
		if got != src {
			t.Errorf("rank %d received %d from %d", r.ID, got, src)
		}
		r.Barrier()
		atomic.AddInt64(&counter, 1)
		r.Barrier()
		if atomic.LoadInt64(&counter) != int64(r.N()) {
			t.Errorf("barrier did not synchronize")
		}
	})
}

func TestCollectives(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(r *Rank) {
		sum := r.AllreduceFloat64(float64(r.ID+1), "sum")
		if sum != 15 {
			t.Errorf("allreduce sum = %g", sum)
		}
		if mx := r.AllreduceFloat64(float64(r.ID), "max"); mx != 4 {
			t.Errorf("allreduce max = %g", mx)
		}
		if mn := r.AllreduceFloat64(float64(r.ID), "min"); mn != 0 {
			t.Errorf("allreduce min = %g", mn)
		}
		v := r.Broadcast(2, fmt.Sprintf("hello-%d", r.ID))
		if v.(string) != "hello-2" {
			t.Errorf("broadcast got %v", v)
		}
		all := r.AllgatherUint64([]uint64{uint64(r.ID), uint64(r.ID * 10)})
		if len(all) != 10 {
			t.Errorf("allgather length %d", len(all))
		}
	})
}

func TestAlltoallVariantsAgree(t *testing.T) {
	for _, algo := range []AlltoallAlgorithm{AlltoallDirect, AlltoallPairwise, AlltoallHierarchical} {
		for _, n := range []int{1, 2, 3, 4, 7} {
			w := NewWorld(n)
			w.Run(func(r *Rank) {
				send := make([][]byte, n)
				for dst := 0; dst < n; dst++ {
					send[dst] = []byte(fmt.Sprintf("from %d to %d", r.ID, dst))
				}
				recv := r.AlltoallvBytes(send, algo)
				for src := 0; src < n; src++ {
					want := fmt.Sprintf("from %d to %d", src, r.ID)
					if string(recv[src]) != want {
						t.Errorf("algo %d n=%d rank %d: got %q want %q", algo, n, r.ID, recv[src], want)
					}
				}
			})
		}
	}
}

func TestABMRequestReply(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(r *Rank) {
		abm := r.NewABM(func(src int, keys []uint64) [][]byte {
			out := make([][]byte, len(keys))
			for i, k := range keys {
				out[i] = []byte(fmt.Sprintf("rank %d key %d", r.ID, k))
			}
			return out
		})
		// Every rank asks every other rank for two keys.
		for dst := 0; dst < r.N(); dst++ {
			if dst == r.ID {
				continue
			}
			replies := abm.RequestSync(dst, []uint64{uint64(r.ID * 100), uint64(r.ID*100 + 1)})
			if len(replies) != 2 {
				t.Errorf("expected 2 replies, got %d", len(replies))
				continue
			}
			want := fmt.Sprintf("rank %d key %d", dst, r.ID*100)
			if string(replies[0]) != want {
				t.Errorf("reply %q, want %q", replies[0], want)
			}
		}
		abm.Close()
	})
	stats := w.Statistics()
	if stats.ABMRequests == 0 || stats.ABMBatches == 0 {
		t.Error("ABM statistics not recorded")
	}
}

func TestWorldStatistics(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, []byte("abc"))
		} else {
			r.Recv(0, 1)
		}
		r.Barrier()
	})
	s := w.Statistics()
	if s.PointToPointMsgs != 1 || s.PointToPointBytes != 3 {
		t.Errorf("stats %+v", s)
	}
	w.ResetStatistics()
	if w.Statistics().PointToPointMsgs != 0 {
		t.Error("reset failed")
	}
}
