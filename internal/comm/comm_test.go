package comm

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// must fails the test on err; the rank bodies below use it for operations the
// scenario expects to succeed.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected comm error: %v", err)
	}
}

func TestPointToPointAndBarrier(t *testing.T) {
	w := NewWorld(4)
	var counter int64
	err := w.Run(func(r *Rank) error {
		// Ring send: each rank sends its id to the next.
		next := (r.ID + 1) % r.N()
		must(t, r.Send(next, 7, []int{r.ID}))
		payload, src, err := r.Recv((r.ID-1+r.N())%r.N(), 7)
		must(t, err)
		got := payload.([]int)[0]
		if got != src {
			t.Errorf("rank %d received %d from %d", r.ID, got, src)
		}
		must(t, r.Barrier())
		atomic.AddInt64(&counter, 1)
		must(t, r.Barrier())
		if atomic.LoadInt64(&counter) != int64(r.N()) {
			t.Errorf("barrier did not synchronize")
		}
		return nil
	})
	must(t, err)
}

func TestCollectives(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(r *Rank) error {
		sum, err := r.AllreduceFloat64(float64(r.ID+1), "sum")
		must(t, err)
		if sum != 15 {
			t.Errorf("allreduce sum = %g", sum)
		}
		mx, err := r.AllreduceFloat64(float64(r.ID), "max")
		must(t, err)
		if mx != 4 {
			t.Errorf("allreduce max = %g", mx)
		}
		mn, err := r.AllreduceFloat64(float64(r.ID), "min")
		must(t, err)
		if mn != 0 {
			t.Errorf("allreduce min = %g", mn)
		}
		v, err := r.Broadcast(2, fmt.Sprintf("hello-%d", r.ID))
		must(t, err)
		if v.(string) != "hello-2" {
			t.Errorf("broadcast got %v", v)
		}
		all, err := r.AllgatherUint64([]uint64{uint64(r.ID), uint64(r.ID * 10)})
		must(t, err)
		if len(all) != 10 {
			t.Errorf("allgather length %d", len(all))
		}
		n, err := r.AllreduceInt64(1)
		must(t, err)
		if n != 5 {
			t.Errorf("allreduce int64 = %d", n)
		}
		return nil
	})
	must(t, err)
}

func TestAlltoallVariantsAgree(t *testing.T) {
	for _, algo := range []AlltoallAlgorithm{AlltoallDirect, AlltoallPairwise, AlltoallHierarchical} {
		for _, n := range []int{1, 2, 3, 4, 7} {
			w := NewWorld(n)
			err := w.Run(func(r *Rank) error {
				send := make([][]byte, n)
				for dst := 0; dst < n; dst++ {
					send[dst] = []byte(fmt.Sprintf("from %d to %d", r.ID, dst))
				}
				recv, err := r.AlltoallvBytes(send, algo)
				must(t, err)
				for src := 0; src < n; src++ {
					want := fmt.Sprintf("from %d to %d", src, r.ID)
					if string(recv[src]) != want {
						t.Errorf("algo %d n=%d rank %d: got %q want %q", algo, n, r.ID, recv[src], want)
					}
				}
				return nil
			})
			must(t, err)
		}
	}
}

func TestABMRequestReply(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(r *Rank) error {
		abm, err := r.NewABM(func(src int, keys []uint64) [][]byte {
			out := make([][]byte, len(keys))
			for i, k := range keys {
				out[i] = []byte(fmt.Sprintf("rank %d key %d", r.ID, k))
			}
			return out
		})
		must(t, err)
		// Every rank asks every other rank for two keys.
		for dst := 0; dst < r.N(); dst++ {
			if dst == r.ID {
				continue
			}
			replies, err := abm.RequestSync(dst, []uint64{uint64(r.ID * 100), uint64(r.ID*100 + 1)})
			must(t, err)
			if len(replies) != 2 {
				t.Errorf("expected 2 replies, got %d", len(replies))
				continue
			}
			want := fmt.Sprintf("rank %d key %d", dst, r.ID*100)
			if string(replies[0]) != want {
				t.Errorf("reply %q, want %q", replies[0], want)
			}
		}
		return abm.Close()
	})
	must(t, err)
	stats := w.Statistics()
	if stats.ABMRequests == 0 || stats.ABMBatches == 0 {
		t.Error("ABM statistics not recorded")
	}
}

func TestWorldStatistics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			must(t, r.Send(1, 1, []byte("abc")))
		} else {
			_, _, err := r.Recv(0, 1)
			must(t, err)
		}
		return r.Barrier()
	})
	must(t, err)
	s := w.Statistics()
	if s.PointToPointMsgs != 1 || s.PointToPointBytes != 3 {
		t.Errorf("stats %+v", s)
	}
	if s.CollectiveCalls != 2 || s.CollectiveMsgs == 0 {
		t.Errorf("collective stats %+v", s)
	}
	w.ResetStatistics()
	if w.Statistics().PointToPointMsgs != 0 {
		t.Error("reset failed")
	}
}

// TestRecvFromDeadPeer is the regression for the mailbox hanging forever: a
// rank waiting on a peer that already returned (the in-process analogue of a
// killed process) must get a PeerDeadError instead of deadlocking.
func TestRecvFromDeadPeer(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 1 {
			return nil // dies immediately without sending
		}
		_, _, err := r.Recv(1, 42)
		if !IsPeerDead(err) {
			t.Errorf("recv from dead peer: got %v, want PeerDeadError", err)
		}
		return nil
	})
	must(t, err)
}

// TestCollectiveFailsOnDeadPeer pins the error path through the collectives:
// a barrier with a dead participant must fail, not hang, and Run must report
// which rank died.
func TestCollectiveFailsOnDeadPeer(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(r *Rank) error {
		if r.ID == 2 {
			return errors.New("simulated crash")
		}
		if err := r.Barrier(); err == nil {
			t.Error("barrier with dead rank succeeded")
		} else if !IsPeerDead(err) {
			t.Errorf("barrier error %v, want PeerDeadError", err)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "simulated crash") {
		t.Errorf("Run error %v, want the crashed rank's error", err)
	}
}

// TestRecvDeadline pins the deadline surface: a receive with no matching
// sender times out with a DeadlineError.
func TestRecvDeadline(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			_, _, err := r.RecvDeadline(1, 5, 20*time.Millisecond)
			var de *DeadlineError
			if !errors.As(err, &de) {
				t.Errorf("recv deadline: got %v, want DeadlineError", err)
			}
			must(t, r.Send(1, 6, nil)) // release rank 1
			return nil
		}
		_, _, err := r.Recv(0, 6)
		return err
	})
	must(t, err)
}

// TestRunReportsPanic pins that a panicking rank surfaces as a Run error
// (not a re-raised panic) and that the surviving ranks unblock.
func TestRunReportsPanic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			panic("boom")
		}
		_, _, err := r.Recv(0, 1)
		if !IsPeerDead(err) {
			t.Errorf("survivor recv: got %v, want PeerDeadError", err)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Run error %v, want the panic message", err)
	}
}

// TestWildcardRecvSkipsInternalTags pins the tag-space separation: a
// wildcard receive must not steal collective-protocol messages.
func TestWildcardRecvSkipsInternalTags(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		// Interleave a collective with app-tag traffic: the wildcard recv on
		// rank 0 must see only the app message even though barrier tokens
		// flow through the same mailbox.
		if r.ID == 1 {
			must(t, r.Send(0, 3, []byte("app")))
		}
		must(t, r.Barrier())
		if r.ID == 0 {
			p, src, err := r.Recv(-1, -1)
			must(t, err)
			if src != 1 || string(p.([]byte)) != "app" {
				t.Errorf("wildcard recv got %v from %d", p, src)
			}
		}
		return r.Barrier()
	})
	must(t, err)
}
