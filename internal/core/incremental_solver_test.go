package core

import (
	"math/rand"
	"testing"

	"twohot/internal/softening"
	"twohot/internal/vec"
)

// This file pins the persistent TreeSolver pipeline: incremental rebuilds and
// work-weighted shard scheduling must be invisible in every result bit, while
// the reuse bookkeeping (BuildStats, Result.Work) reports what happened.

func driftPositions(pos []vec.V3, sigma float64, box float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range pos {
		pos[i] = vec.V3{
			vec.PeriodicWrap(pos[i][0]+sigma*rng.NormFloat64(), box),
			vec.PeriodicWrap(pos[i][1]+sigma*rng.NormFloat64(), box),
			vec.PeriodicWrap(pos[i][2]+sigma*rng.NormFloat64(), box),
		}
	}
}

func TestTreeSolverIncrementalStepsBitIdentical(t *testing.T) {
	pos, mass := randomCluster(2500, 31)
	cfg := TreeConfig{
		Order: 4, ErrTol: 1e-4,
		Kernel: softening.Plummer, Eps: 0.002,
		Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1,
		Workers: 3,
	}
	incCfg := cfg
	incCfg.Incremental = true

	fresh := NewTreeSolver(cfg) // rebuilt every step, the reference
	inc := NewTreeSolver(incCfg)

	var work []float64
	for step := 0; step < 4; step++ {
		if step > 0 {
			driftPositions(pos, 3e-6, 1, int64(step))
		}
		ref, err := NewTreeSolver(cfg).Forces(pos, mass)
		if err != nil {
			t.Fatal(err)
		}
		// The persistent solvers: one plain, one incremental + work-fed.
		plain, err := fresh.Forces(pos, mass)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.ForcesWithWork(pos, mass, work)
		if err != nil {
			t.Fatal(err)
		}
		work = got.Work

		for name, res := range map[string]*Result{"persistent": plain, "incremental": got} {
			if res.Counters != ref.Counters {
				t.Fatalf("step %d %s: counters differ", step, name)
			}
			for i := range ref.Acc {
				if res.Acc[i] != ref.Acc[i] || res.Pot[i] != ref.Pot[i] {
					t.Fatalf("step %d %s: particle %d differs: acc %v vs %v",
						step, name, i, res.Acc[i], ref.Acc[i])
				}
			}
		}
		if plain.Build.Reused {
			t.Fatalf("step %d: non-incremental solver reused the previous order", step)
		}
		if step == 0 && got.Build.Reused {
			t.Fatal("first incremental solve cannot reuse anything")
		}
		if step > 0 {
			if !got.Build.Reused {
				t.Fatalf("step %d: incremental solver did not reuse the previous order", step)
			}
			if !got.Build.FastPath {
				t.Fatalf("step %d: near-static drift fell back to the radix sort (displaced %d)",
					step, got.Build.Displaced)
			}
			if got.Traversal.ShardImbalance < 1 {
				t.Fatalf("step %d: work-fed schedule did not report shard imbalance", step)
			}
		}
		// Work feedback must reproduce the counters when summed.
		sum := 0.0
		for _, v := range got.Work {
			sum += v
		}
		if want := float64(got.Counters.P2P + got.Counters.CellInteractions() + got.Counters.BgCubes); sum != want {
			t.Fatalf("step %d: sum(Work) = %v, want %v", step, sum, want)
		}
	}
}

func TestTreeSolverResetReuse(t *testing.T) {
	cfg := TreeConfig{Order: 2, ErrTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01, Incremental: true}
	s := NewTreeSolver(cfg)
	pos, mass := randomCluster(600, 7)
	if _, err := s.Forces(pos, mass); err != nil {
		t.Fatal(err)
	}
	s.ResetReuse()
	res, err := s.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	if res.Build.Reused {
		t.Error("solve after ResetReuse still reused the dropped tree")
	}

	// A particle count change must silently disable the reuse, not corrupt
	// the build.
	pos2, mass2 := randomCluster(900, 8)
	res2, err := s.Forces(pos2, mass2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Build.Reused {
		t.Error("reuse across a particle-count change")
	}
	ref, err := NewTreeSolver(cfg).Forces(pos2, mass2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Acc {
		if res2.Acc[i] != ref.Acc[i] {
			t.Fatalf("particle %d differs after size change", i)
		}
	}
}
