package core

import (
	"testing"

	"twohot/internal/comm"
	"twohot/internal/particle"
	"twohot/internal/softening"
)

func TestDistributedStepMatchesSharedSolver(t *testing.T) {
	pos, mass := randomCluster(3000, 9)
	set := particle.New(len(pos))
	for i := range pos {
		set.Append(pos[i], pos[i], mass[i], int64(i))
	}
	cfg := DistributedConfig{
		Tree: TreeConfig{
			Order: 4, ErrTol: 1e-4,
			Kernel: softening.Plummer, Eps: 0.002,
		},
		NRanks:         2,
		Alltoall:       comm.AlltoallPairwise,
		BranchExchange: "ring",
	}
	res, err := DistributedStep(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParticlesOut.Len() != set.Len() {
		t.Fatalf("particles lost: %d of %d", res.ParticlesOut.Len(), set.Len())
	}
	if res.Counters.P2P == 0 || res.Counters.CellInteractions() == 0 {
		t.Error("no interactions recorded")
	}
	if res.Timings.Total <= 0 || res.Timings.TreeBuild <= 0 {
		t.Error("timings not recorded")
	}

	stats, err := VerifyAgainstShared(res.ParticlesOut, cfg.Tree)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("distributed vs shared: rms=%.3g max=%.3g; imbalance=%.2f; ABM batches=%d",
		stats.RMS, stats.Max, res.Imbalance, res.Comm.ABMBatches)
	if stats.RMS > 5e-4 {
		t.Errorf("distributed forces differ from the shared solver: rms %.3g", stats.RMS)
	}
}

func TestDistributedStepAllgatherExchange(t *testing.T) {
	pos, mass := randomCluster(1200, 10)
	set := particle.New(len(pos))
	for i := range pos {
		set.Append(pos[i], pos[i], mass[i], int64(i))
	}
	cfg := DistributedConfig{
		Tree:           TreeConfig{Order: 2, ErrTol: 1e-3, Kernel: softening.Plummer, Eps: 0.002},
		NRanks:         3,
		BranchExchange: "allgather",
	}
	res, err := DistributedStep(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := VerifyAgainstShared(res.ParticlesOut, cfg.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RMS > 5e-3 {
		t.Errorf("allgather-exchange distributed forces differ: rms %.3g", stats.RMS)
	}
}
