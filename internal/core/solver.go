// Package core assembles the paper's primary contribution: the 2HOT force
// solvers.  The shared-memory TreeSolver couples the hashed oct-tree, the
// Cartesian multipole machinery, background subtraction, the absolute-error
// MAC, force smoothing and the periodic-boundary treatment into a single
// force calculation; the DirectSolver (float64 and float32) and the Ewald
// reference provide the lower rungs of the verification "distance ladder" of
// Section 5; and the distributed solver (distributed.go) runs the same
// physics across message-passing ranks with domain decomposition, branch
// exchange and ABM tree-cell fetching.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"twohot/internal/cosmo"
	"twohot/internal/ewald"
	"twohot/internal/softening"
	"twohot/internal/traverse"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// Result is the outcome of a force computation.
type Result struct {
	Acc      []vec.V3  // accelerations, in the caller's particle order
	Pot      []float64 // kernel sums (physical potential = -Pot)
	Counters traverse.Counters
	// Traversal reports how the interaction lists were built (replica walks,
	// list inheritance) for solvers that traverse a tree.
	Traversal traverse.TraversalStats
	// Work is the per-particle interaction count of this solve, in the
	// caller's particle order — the feedback the stepping pipeline's
	// work-weighted rebalancing consumes.  Only the tree solver fills it.
	Work []float64
	// Build reports how the tree build's sort phase ran (incremental order
	// reuse, near-sorted fast path).  Only the tree solver fills it.
	Build   tree.BuildStats
	Timings Timings
}

// Timings breaks a force computation into the stages reported by Table 2.
type Timings struct {
	DomainDecomposition time.Duration
	TreeBuild           time.Duration
	TreeTraversal       time.Duration
	Communication       time.Duration
	ForceEvaluation     time.Duration
	LoadImbalance       time.Duration
	Total               time.Duration
}

// Solver is a gravitational force solver.
type Solver interface {
	// Forces computes accelerations and kernel sums for the particle set.
	Forces(pos []vec.V3, mass []float64) (*Result, error)
	Name() string
}

// TreeConfig configures the 2HOT tree solver.
type TreeConfig struct {
	Order    int // multipole order p (2 = quadrupole, 4 = hexadecapole, up to 8)
	LeafSize int

	MAC    traverse.MACType
	Theta  float64 // Barnes-Hut opening angle (MACBarnesHut)
	ErrTol float64 // dimensionless error tolerance (MACAbsoluteError); the paper's production value is 1e-5

	Kernel softening.Kernel
	Eps    float64

	G float64 // gravitational constant (cosmo.G for cosmological runs, 1 for unit tests)

	Periodic              bool
	BoxSize               float64
	BackgroundSubtraction bool
	WS                    int // explicit replica shells for periodic runs (paper: 2)
	LatticeOrder          int // far-lattice local expansion order (0 disables)

	Workers int // tree-build and traversal worker goroutines (0 = GOMAXPROCS)

	// Incremental makes consecutive Forces calls on the same solver reuse
	// the previous call's sorted particle order to seed the tree build
	// (tree.Options.Previous).  On a near-static snapshot the near-sorted
	// fast path then replaces the radix sort; the built tree — and hence
	// every force — is bit-identical to a from-scratch solve regardless.
	Incremental bool

	// SplitRS, when positive, runs every traversal in TreePM short-range
	// mode (traverse.Config.SplitRS): erfc-complement damping at split scale
	// SplitRS, exact pair truncation and cell pruning at SplitRCut (defaults
	// to 4.5*SplitRS).  A configuration composing with a mesh long range
	// must keep BackgroundSubtraction and LatticeOrder off — the mesh owns
	// the long-range field, including the mean density and the infinite
	// replica sum.
	SplitRS   float64
	SplitRCut float64
}

func (c *TreeConfig) defaults() {
	if c.Order == 0 {
		c.Order = 4
	}
	if c.LeafSize == 0 {
		c.LeafSize = 16
	}
	if c.Theta == 0 {
		c.Theta = 0.6
	}
	if c.ErrTol == 0 {
		c.ErrTol = 1e-5
	}
	if c.G == 0 {
		c.G = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Periodic && c.WS == 0 {
		c.WS = 1
	}
	if c.SplitRS > 0 && c.SplitRCut == 0 {
		c.SplitRCut = 4.5 * c.SplitRS
	}
}

// TreeSolver is the shared-memory 2HOT solver.  It is stateful across Forces
// calls: the previous call's tree seeds the incremental rebuild (when
// Cfg.Incremental is set), the walker — with its replica offsets, far-lattice
// sums and pooled traversal buffers — is retained, and the particle staging
// buffers are reused.  None of that state changes any result bit; it only
// removes per-step setup cost.  A TreeSolver must not be used from multiple
// goroutines concurrently.
type TreeSolver struct {
	Cfg TreeConfig

	// LastTree is the most recently built tree (for inspection by tests and
	// analysis tools, and the seed of the next incremental build).
	LastTree *tree.Tree

	// Persistent per-step state (see the type comment).
	walker     *traverse.Walker
	scratch    tree.BuildScratch
	cp         []vec.V3
	cm         []float64
	sinkWork   []float64
	workOut    []float64
	sinkActive []bool
}

// NewTreeSolver returns a solver with the given configuration.
func NewTreeSolver(cfg TreeConfig) *TreeSolver {
	cfg.defaults()
	return &TreeSolver{Cfg: cfg}
}

// ResetReuse drops the cross-step state (previous tree, cached walker), as
// after loading an unrelated particle set.  Purely a hygiene measure: stale
// state cannot change results, only waste the fast path.
func (s *TreeSolver) ResetReuse() {
	s.LastTree = nil
	s.walker = nil
}

// Name implements Solver.
func (s *TreeSolver) Name() string { return "2hot-tree" }

// RootBox returns the cubical root volume used for the given positions.
func (s *TreeSolver) RootBox(pos []vec.V3) vec.Box {
	if s.Cfg.Periodic {
		return vec.CubeBox(vec.V3{}, s.Cfg.BoxSize)
	}
	return vec.BoundingBox(pos).Cubed(1e-3)
}

// AccTolAbsolute converts the dimensionless error tolerance into an absolute
// acceleration tolerance using the characteristic acceleration
// G_internal * M_total / R^2 of the system (G is applied after traversal, so
// the traversal-level tolerance omits it).
func (s *TreeSolver) AccTolAbsolute(totalMass float64, box vec.Box) float64 {
	r := box.MaxSide() / 2
	if r == 0 {
		r = 1
	}
	return s.Cfg.ErrTol * totalMass / (r * r)
}

// Forces implements Solver.
func (s *TreeSolver) Forces(pos []vec.V3, mass []float64) (*Result, error) {
	return s.ForcesWithWork(pos, mass, nil)
}

// ForcesWithWork is Forces with per-particle work weights from the previous
// step (caller order, nil for none): the traversal then cuts its sink-subtree
// tasks into contiguous per-worker shards of near-equal predicted weight —
// the shared-memory counterpart of the paper's work-weighted domain
// decomposition.  The weights steer only the schedule, never a result bit.
// The returned Result.Work carries this step's per-particle interaction
// counts for the next call.
func (s *TreeSolver) ForcesWithWork(pos []vec.V3, mass []float64, work []float64) (*Result, error) {
	return s.ForcesActive(pos, mass, work, nil, nil)
}

// ForcesActive is the block-timestep entry point: ForcesWithWork restricted
// to the sink subset marked in active (caller order; nil means every
// particle).  Sources are always the full particle set, so for every active
// particle the returned Acc, Pot and Work are bit-identical to a full
// solve's; slots of inactive particles are unspecified except Work, which
// carries the input weight through so the feedback loop keeps a cost
// estimate for particles that have not been sinks recently.
//
// moved (caller order, nil for "unknown") marks the particles whose
// positions changed since this solver's previous call — the dirty set of the
// incremental rebuild: with Cfg.Incremental set, subtrees untouched by any
// moved particle are copied from the previous step's tree, cells and moments
// alike, instead of being rebuilt (tree.Options.Dirty).  Like every other
// reuse in this pipeline it changes no result bit; a conservative
// over-marking only shrinks the reuse.
func (s *TreeSolver) ForcesActive(pos []vec.V3, mass []float64, work []float64, active, moved []bool) (*Result, error) {
	cfg := s.Cfg
	if len(pos) != len(mass) {
		return nil, fmt.Errorf("core: %d positions but %d masses", len(pos), len(mass))
	}
	if work != nil && len(work) != len(pos) {
		return nil, fmt.Errorf("core: %d positions but %d work weights", len(pos), len(work))
	}
	if active != nil && len(active) != len(pos) {
		return nil, fmt.Errorf("core: %d positions but %d active flags", len(pos), len(active))
	}
	if moved != nil && len(moved) != len(pos) {
		return nil, fmt.Errorf("core: %d positions but %d moved flags", len(pos), len(moved))
	}
	if len(pos) == 0 {
		return &Result{}, nil
	}
	n := len(pos)
	start := time.Now()
	box := s.RootBox(pos)

	// The tree build reorders particles; stage copies in the solver's
	// persistent buffers so the caller's ordering is preserved.  The
	// previous tree only retains its SortIndex relevance — overwriting the
	// buffers its arrays alias is fine because the incremental build reads
	// the new positions through the previous *order*, not the previous
	// values.
	tree.GrowSlice(&s.cp, n)
	tree.GrowSlice(&s.cm, n)
	copy(s.cp, pos)
	copy(s.cm, mass)

	totalMass := 0.0
	for _, m := range s.cm {
		totalMass += m
	}
	rhoBar := 0.0
	if cfg.BackgroundSubtraction {
		rhoBar = totalMass / box.Volume()
	}

	opt := tree.Options{
		Order:    cfg.Order,
		LeafSize: cfg.LeafSize,
		RhoBar:   rhoBar,
		Workers:  cfg.Workers,
		Scratch:  &s.scratch,
	}
	if cfg.Incremental && s.LastTree != nil && len(s.LastTree.SortIndex) == n {
		opt.Previous = s.LastTree
		opt.Dirty = moved
	}
	tb := time.Now()
	tr, err := tree.Build(s.cp, s.cm, box, opt)
	if err != nil {
		return nil, err
	}
	s.LastTree = tr
	buildTime := time.Since(tb)

	walkCfg := traverse.Config{
		MAC:          cfg.MAC,
		Theta:        cfg.Theta,
		AccTol:       s.AccTolAbsolute(totalMass, box),
		Kernel:       cfg.Kernel,
		Eps:          cfg.Eps,
		G:            cfg.G,
		Periodic:     cfg.Periodic,
		BoxSize:      cfg.BoxSize,
		WS:           cfg.WS,
		LatticeOrder: cfg.LatticeOrder,
		SplitRS:      cfg.SplitRS,
		SplitRCut:    cfg.SplitRCut,
	}
	// Walker setup happens outside the traversal window so that
	// Timings.Total - Timings.TreeTraversal isolates the per-step rebuild
	// pipeline (staging, build, solver setup, scatter) the persistent state
	// amortizes — the quantity BENCH_step.json tracks.
	if s.walker == nil {
		s.walker = traverse.NewWalker(tr, walkCfg)
	} else {
		// Same Periodic/BoxSize/WS/LatticeOrder every call (they come from
		// s.Cfg), so the cached offsets and lattice stay valid.
		s.walker.ResetTree(tr, walkCfg)
	}
	w := s.walker
	if work != nil {
		tree.GrowSlice(&s.sinkWork, n)
		for i, orig := range tr.SortIndex {
			s.sinkWork[i] = work[orig]
		}
		w.SinkWork = s.sinkWork
	} else {
		w.SinkWork = nil
	}
	tree.GrowSlice(&s.workOut, n)
	w.WorkOut = s.workOut
	if active != nil {
		// Map the activity mask into sorted order for the traversal; the
		// walker field is cleared right after the solve so a later full
		// solve through the retained walker cannot inherit a stale mask.
		tree.GrowSlice(&s.sinkActive, n)
		for i, orig := range tr.SortIndex {
			s.sinkActive[i] = active[orig]
		}
		w.SinkActive = s.sinkActive
	} else {
		w.SinkActive = nil
	}

	tt := time.Now()
	accSorted, potSorted, counters := w.ForcesForAll(cfg.Workers)
	w.SinkActive = nil
	travTime := time.Since(tt)

	// Scatter back to the caller's order.  In a subset solve only the active
	// slots carry results; inactive ones stay zero and keep their incoming
	// work weight so the shard feedback never forgets a particle's cost.
	acc := make([]vec.V3, n)
	pot := make([]float64, n)
	outWork := make([]float64, n)
	if active == nil {
		for i, orig := range tr.SortIndex {
			acc[orig] = accSorted[i]
			pot[orig] = potSorted[i]
			outWork[orig] = s.workOut[i]
		}
	} else {
		for i, orig := range tr.SortIndex {
			if active[orig] {
				acc[orig] = accSorted[i]
				pot[orig] = potSorted[i]
				outWork[orig] = s.workOut[i]
			} else if work != nil {
				outWork[orig] = work[orig]
			}
		}
	}
	return &Result{
		Acc:       acc,
		Pot:       pot,
		Counters:  counters,
		Traversal: w.LastStats,
		Work:      outWork,
		Build:     tr.Stats,
		Timings: Timings{
			TreeBuild:       buildTime,
			TreeTraversal:   travTime,
			ForceEvaluation: travTime,
			Total:           time.Since(start),
		},
	}, nil
}

// ForceAt evaluates the field of the most recently built tree at an arbitrary
// position (for the multipole error experiments and lightcone sampling).
func (s *TreeSolver) ForceAt(x vec.V3) (vec.V3, float64, error) {
	if s.LastTree == nil {
		return vec.V3{}, 0, fmt.Errorf("core: no tree built yet")
	}
	cfg := s.Cfg
	totalMass := s.LastTree.TotalMass()
	walkCfg := traverse.Config{
		MAC:          cfg.MAC,
		Theta:        cfg.Theta,
		AccTol:       s.AccTolAbsolute(totalMass, s.LastTree.Box),
		Kernel:       cfg.Kernel,
		Eps:          cfg.Eps,
		G:            cfg.G,
		Periodic:     cfg.Periodic,
		BoxSize:      cfg.BoxSize,
		WS:           cfg.WS,
		LatticeOrder: cfg.LatticeOrder,
		SplitRS:      cfg.SplitRS,
		SplitRCut:    cfg.SplitRCut,
	}
	w := traverse.NewWalker(s.LastTree, walkCfg)
	a, p := w.ForceAt(x)
	return a, p, nil
}

// DirectSolver is the O(N^2) float64 reference solver.  For periodic
// configurations it uses brute-force Ewald summation, which is exact but very
// slow (verification only).
type DirectSolver struct {
	Kernel   softening.Kernel
	Eps      float64
	G        float64
	Periodic bool
	BoxSize  float64
	Ewald    ewald.Options
	Workers  int
}

// Name implements Solver.
func (s *DirectSolver) Name() string { return "direct-n2" }

// Forces implements Solver.
func (s *DirectSolver) Forces(pos []vec.V3, mass []float64) (*Result, error) {
	if len(pos) != len(mass) {
		return nil, fmt.Errorf("core: %d positions but %d masses", len(pos), len(mass))
	}
	g := s.G
	if g == 0 {
		g = 1
	}
	start := time.Now()
	n := len(pos)
	acc := make([]vec.V3, n)
	pot := make([]float64, n)

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s.Periodic {
		// Peculiar accelerations from Ewald images plus neutralizing
		// background.  Each sink's image sums are independent, so the rows
		// parallelize without changing a bit of the result.
		traverse.ParallelRange(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					d := pos[i].Sub(pos[j])
					a := ewald.Accel(d, s.BoxSize, s.Ewald)
					acc[i] = acc[i].Add(a.Scale(g * mass[j]))
					pot[i] += g * mass[j] * ewald.Potential(d, s.BoxSize, s.Ewald)
				}
			}
		})
	} else {
		traverse.ParallelRange(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var a vec.V3
				var p float64
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					d := pos[j].Sub(pos[i])
					r := d.Norm()
					ff := softening.ForceFactor(s.Kernel, r, s.Eps)
					pf := softening.PotentialFactor(s.Kernel, r, s.Eps)
					a = a.Add(d.Scale(g * mass[j] * ff))
					p += g * mass[j] * pf
				}
				acc[i] = a
				pot[i] = p
			}
		})
	}
	return &Result{
		Acc: acc, Pot: pot,
		Timings: Timings{ForceEvaluation: time.Since(start), Total: time.Since(start)},
	}, nil
}

// Direct32Forces computes accelerations in single precision (no softening),
// reproducing the "direct sum (float32)" reference of Figure 6.
func Direct32Forces(pos []vec.V3, mass []float64, at vec.V3) (vec.V3, float64) {
	var ax, ay, az, p float32
	x := [3]float32{float32(at[0]), float32(at[1]), float32(at[2])}
	for j := range pos {
		dx := float32(pos[j][0]) - x[0]
		dy := float32(pos[j][1]) - x[1]
		dz := float32(pos[j][2]) - x[2]
		r2 := dx*dx + dy*dy + dz*dz
		if r2 == 0 {
			continue
		}
		inv := 1 / float32(math.Sqrt(float64(r2)))
		m := float32(mass[j])
		p += m * inv
		mInv3 := m * inv * inv * inv
		ax += dx * mInv3
		ay += dy * mInv3
		az += dz * mInv3
	}
	return vec.V3{float64(ax), float64(ay), float64(az)}, float64(p)
}

// AccuracyStats summarizes the per-particle relative acceleration error of a
// solver against a reference.
type AccuracyStats struct {
	RMS, Median, Max, Mean float64
}

// CompareAccelerations computes error statistics of test against ref,
// normalizing by the rms reference acceleration (the convention of the
// paper's force-accuracy discussion).
func CompareAccelerations(test, ref []vec.V3) AccuracyStats {
	if len(test) != len(ref) {
		panic("core: acceleration slices differ in length")
	}
	n := len(ref)
	if n == 0 {
		return AccuracyStats{}
	}
	rms := 0.0
	for _, a := range ref {
		rms += a.Norm2()
	}
	rms = math.Sqrt(rms / float64(n))
	if rms == 0 {
		rms = 1
	}
	errs := make([]float64, n)
	var stats AccuracyStats
	for i := range ref {
		e := test[i].Sub(ref[i]).Norm() / rms
		errs[i] = e
		stats.Mean += e
		stats.RMS += e * e
		if e > stats.Max {
			stats.Max = e
		}
	}
	stats.Mean /= float64(n)
	stats.RMS = math.Sqrt(stats.RMS / float64(n))
	stats.Median = median(errs)
	return stats
}

func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// CosmoG returns the gravitational constant in internal units, re-exported
// for convenience of packages that already import core.
const CosmoG = cosmo.G
