package core

import (
	"fmt"
	"math"
	"time"

	"twohot/internal/comm"
	"twohot/internal/domain"
	"twohot/internal/keys"
	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/traverse"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// DistributedConfig configures a distributed (message-passing) force step.
type DistributedConfig struct {
	Tree TreeConfig

	NRanks int
	Curve  keys.Curve

	Alltoall comm.AlltoallAlgorithm
	// BranchExchange selects how the shared upper-tree branch cells are
	// distributed: "allgather" is the WS93 global concatenation, "ring" is
	// the 2HOT hierarchical pairwise aggregation that scales to very large
	// rank counts.
	BranchExchange string

	// UseWorkWeights balances domains by the per-particle interaction counts
	// of the previous step rather than by particle number.
	UseWorkWeights bool
}

// DistributedResult aggregates the outcome of a distributed step.
type DistributedResult struct {
	Timings      Timings
	Counters     traverse.Counters
	Comm         comm.Stats
	NRanks       int
	Imbalance    float64 // max/mean traversal time across ranks
	ParticlesOut *particle.Set
	// PerRankTraversal records each rank's traversal wall-clock time.
	PerRankTraversal []time.Duration
}

// DistributedStep performs one complete distributed force calculation for the
// particles in set: domain decomposition (parallel sample sort and particle
// exchange), local tree builds, branch exchange, shared upper-tree assembly,
// and the request/reply (ABM) dual traversal.  It returns the particles with
// their accelerations filled in (order is NOT preserved: particles come back
// grouped by owning rank) together with the stage timings of Table 2.
func DistributedStep(set *particle.Set, cfg DistributedConfig) (*DistributedResult, error) {
	cfg.Tree.defaults()
	if cfg.NRanks < 1 {
		cfg.NRanks = 1
	}
	if set.Len() < cfg.NRanks*2 {
		return nil, fmt.Errorf("core: %d particles is too few for %d ranks", set.Len(), cfg.NRanks)
	}
	world := comm.NewWorld(cfg.NRanks)

	var box vec.Box
	if cfg.Tree.Periodic {
		box = vec.CubeBox(vec.V3{}, cfg.Tree.BoxSize)
	} else {
		box = vec.BoundingBox(set.Pos).Cubed(1e-3)
	}
	totalMass := set.TotalMass()
	rhoBar := 0.0
	if cfg.Tree.BackgroundSubtraction {
		rhoBar = totalMass / box.Volume()
	}
	accTol := cfg.Tree.ErrTol * totalMass / (box.MaxSide() / 2 * box.MaxSide() / 2)

	// Initial ownership: contiguous chunks of the input ordering.
	perRank := make([]*particle.Set, cfg.NRanks)
	chunk := (set.Len() + cfg.NRanks - 1) / cfg.NRanks
	for r := 0; r < cfg.NRanks; r++ {
		lo, hi := r*chunk, (r+1)*chunk
		if hi > set.Len() {
			hi = set.Len()
		}
		perRank[r] = particle.New(hi - lo)
		for i := lo; i < hi; i++ {
			perRank[r].AppendFrom(set, i)
		}
	}

	type rankOutcome struct {
		timings   Timings
		counters  traverse.Counters
		traversal time.Duration
	}
	outcomes := make([]rankOutcome, cfg.NRanks)
	start := time.Now()

	world.Run(func(r *comm.Rank) {
		my := perRank[r.ID]
		out := &outcomes[r.ID]

		// --- Domain decomposition -------------------------------------
		t0 := time.Now()
		decomp := domain.Decompose(r, my, box, domain.Options{
			Curve:    cfg.Curve,
			Alltoall: cfg.Alltoall,
			UseWork:  cfg.UseWorkWeights,
		}, nil)
		out.timings.DomainDecomposition = time.Since(t0)

		// --- Local tree construction -----------------------------------
		t0 = time.Now()
		keyLo := uint64(1) << 63 // smallest body key (placeholder bit)
		keyHi := ^uint64(0)
		if r.ID > 0 {
			keyLo = decomp.Splitters[r.ID-1]
		}
		if r.ID < r.N()-1 {
			keyHi = decomp.Splitters[r.ID]
		}
		// Ranks already run on their own goroutines, so split the build
		// worker budget across them rather than oversubscribing.
		buildWorkers := cfg.Tree.Workers / cfg.NRanks
		if buildWorkers < 1 {
			buildWorkers = 1
		}
		dt, err := tree.NewDistributed(my.Pos, my.Mass, box, tree.Options{
			Order:    cfg.Tree.Order,
			LeafSize: cfg.Tree.LeafSize,
			RhoBar:   rhoBar,
			Rank:     r.ID,
			Workers:  buildWorkers,
		}, keyLo, keyHi)
		if err != nil {
			panic(err)
		}
		localBuild := time.Since(t0)

		// --- Branch exchange and shared upper tree ---------------------
		t0 = time.Now()
		exchangeBranches(r, dt, cfg.BranchExchange)
		dt.BuildUpper()
		out.timings.Communication += time.Since(t0)
		out.timings.TreeBuild = localBuild + time.Since(t0)

		// --- Traversal with ABM request/reply ---------------------------
		// The ABM handler runs concurrently with this rank's own traversal,
		// which grows the tree's cell table with fetched remote cells.  It
		// therefore serves requests from an immutable snapshot of the
		// *local* cells built here, never touching the live hash table.
		localChildren := make(map[uint64][]*tree.Cell)
		for _, c := range dt.Cell {
			if c.Remote || c.Owner != r.ID {
				continue
			}
			var kids []*tree.Cell
			for oct := 0; oct < 8; oct++ {
				if c.ChildIdx[oct] != tree.NoChild {
					kids = append(kids, dt.Cell[c.ChildIdx[oct]])
				}
			}
			localChildren[uint64(c.Key)] = kids
		}
		abm := r.NewABM(func(src int, reqKeys []uint64) [][]byte {
			replies := make([][]byte, len(reqKeys))
			for i, k := range reqKeys {
				replies[i] = dt.EncodeCells(localChildren[k])
			}
			return replies
		})
		var commWait time.Duration
		dt.FetchChildren = func(c *tree.Cell) []tree.Cell {
			tw := time.Now()
			reply := abm.RequestSync(c.Owner, []uint64{uint64(c.Key)})
			commWait += time.Since(tw)
			if len(reply) == 0 {
				return nil
			}
			cells, err := tree.DecodeCells(reply[0])
			if err != nil {
				panic(err)
			}
			return cells
		}

		walkCfg := traverse.Config{
			MAC:          cfg.Tree.MAC,
			Theta:        cfg.Tree.Theta,
			AccTol:       accTol,
			Kernel:       cfg.Tree.Kernel,
			Eps:          cfg.Tree.Eps,
			G:            cfg.Tree.G,
			Periodic:     cfg.Tree.Periodic,
			BoxSize:      cfg.Tree.BoxSize,
			WS:           cfg.Tree.WS,
			LatticeOrder: cfg.Tree.LatticeOrder,
		}
		t0 = time.Now()
		w := traverse.NewWalker(dt.Tree, walkCfg)
		w.WorkOut = make([]float64, len(dt.Tree.Pos))
		acc, pot, counters := w.ForcesForAll(1)
		out.traversal = time.Since(t0)
		out.timings.TreeTraversal = out.traversal - commWait
		out.timings.Communication += commWait
		out.timings.ForceEvaluation = out.timings.TreeTraversal
		out.counters = counters

		// Scatter the results back into the rank's particle set and record
		// each particle's actual interaction count for the next
		// decomposition (the splitters then balance real work, not the
		// rank-averaged estimate used previously).
		for i, orig := range dt.SortIndex {
			my.Acc[orig] = acc[i]
			my.Pot[orig] = pot[i]
			my.Work[orig] = w.WorkOut[i]
		}

		abm.Close()
	})

	// Aggregate.
	res := &DistributedResult{NRanks: cfg.NRanks, Comm: world.Statistics()}
	res.ParticlesOut = particle.New(set.Len())
	var maxTrav, sumTrav time.Duration
	for r := 0; r < cfg.NRanks; r++ {
		res.Counters.Add(outcomes[r].counters)
		res.PerRankTraversal = append(res.PerRankTraversal, outcomes[r].traversal)
		if outcomes[r].traversal > maxTrav {
			maxTrav = outcomes[r].traversal
		}
		sumTrav += outcomes[r].traversal
		res.Timings.DomainDecomposition = maxDuration(res.Timings.DomainDecomposition, outcomes[r].timings.DomainDecomposition)
		res.Timings.TreeBuild = maxDuration(res.Timings.TreeBuild, outcomes[r].timings.TreeBuild)
		res.Timings.TreeTraversal = maxDuration(res.Timings.TreeTraversal, outcomes[r].timings.TreeTraversal)
		res.Timings.Communication = maxDuration(res.Timings.Communication, outcomes[r].timings.Communication)
		res.Timings.ForceEvaluation = maxDuration(res.Timings.ForceEvaluation, outcomes[r].timings.ForceEvaluation)
		for i := 0; i < perRank[r].Len(); i++ {
			res.ParticlesOut.AppendFrom(perRank[r], i)
		}
	}
	meanTrav := sumTrav / time.Duration(cfg.NRanks)
	if meanTrav > 0 {
		res.Imbalance = float64(maxTrav) / float64(meanTrav)
	} else {
		res.Imbalance = 1
	}
	res.Timings.LoadImbalance = maxTrav - meanTrav
	res.Timings.Total = time.Since(start)
	return res, nil
}

// exchangeBranches distributes every rank's branch cells to every other rank.
func exchangeBranches(r *comm.Rank, dt *tree.Distributed, mode string) {
	local := dt.LocalBranches()
	encoded := dt.EncodeCells(local)

	switch mode {
	case "ring":
		// Hierarchical pairwise aggregation (Section 3.2): exchange the
		// accumulated branch set with the 2^i-th neighbor along the
		// space-filling curve, log2(N) times.
		known := [][]byte{encoded}
		n := r.N()
		const tagBranch = 7000
		for step := 1; step < n; step <<= 1 {
			dst := (r.ID + step) % n
			src := (r.ID - step%n + n) % n
			payload := concatBlocks(known)
			r.Send(dst, tagBranch+step, payload)
			data, _ := r.Recv(src, tagBranch+step)
			if b, ok := data.([]byte); ok && len(b) > 0 {
				known = append(known, b)
				for _, c := range decodeAll(b) {
					if c.Owner != r.ID {
						dt.AddRemoteCell(c)
					}
				}
			}
		}
		r.Barrier()
	default: // "allgather" (WS93 global concatenation)
		parts := r.Allgather(encoded)
		for src, p := range parts {
			if src == r.ID {
				continue
			}
			b, ok := p.([]byte)
			if !ok || len(b) == 0 {
				continue
			}
			for _, c := range decodeAll(b) {
				dt.AddRemoteCell(c)
			}
		}
	}
}

// concatBlocks merges several EncodeCells buffers into one (cells are
// length-prefixed so decodeAll below can parse the concatenation of decoded
// groups; we simply re-encode by decoding and re-counting).
func concatBlocks(blocks [][]byte) []byte {
	if len(blocks) == 1 {
		return blocks[0]
	}
	var all []tree.Cell
	for _, b := range blocks {
		all = append(all, decodeAll(b)...)
	}
	return reencode(all)
}

func decodeAll(b []byte) []tree.Cell {
	cells, err := tree.DecodeCells(b)
	if err != nil {
		panic(err)
	}
	return cells
}

// reencode rebuilds an EncodeCells buffer from decoded cells.  It round-trips
// through a throwaway tree because EncodeCell needs leaf particle access.
func reencode(cells []tree.Cell) []byte {
	t := &tree.Tree{}
	ptrs := make([]*tree.Cell, len(cells))
	for i := range cells {
		ptrs[i] = &cells[i]
	}
	return t.EncodeCells(ptrs)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// EffectiveGflops converts an interaction-count record and a wall-clock time
// into the paper's performance metric.
func EffectiveGflops(c traverse.Counters, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Flops()) / elapsed.Seconds() / 1e9
}

// VerifyAgainstShared recomputes forces for the distributed result's
// particles with the shared-memory solver and returns the error statistics
// (matching particles by ID).  Used by tests and the Table 2 harness to show
// the distributed and shared paths agree.
func VerifyAgainstShared(out *particle.Set, cfg TreeConfig) (AccuracyStats, error) {
	solver := NewTreeSolver(cfg)
	res, err := solver.Forces(out.Pos, out.Mass)
	if err != nil {
		return AccuracyStats{}, err
	}
	return CompareAccelerations(out.Acc, res.Acc), nil
}

// SofteningForDensity returns a reasonable softening length for a
// cosmological box: 1/20 of the mean interparticle separation (the order of
// magnitude used by production runs).
func SofteningForDensity(boxSize float64, np int) float64 {
	return boxSize / math.Cbrt(float64(np)) / 20
}

// DefaultKernel is the production smoothing kernel of the paper.
const DefaultKernel = softening.DehnenK1
