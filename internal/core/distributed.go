package core

import (
	"fmt"
	"math"
	"time"

	"twohot/internal/comm"
	"twohot/internal/domain"
	"twohot/internal/keys"
	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/traverse"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// DistributedConfig configures a distributed (message-passing) force step.
type DistributedConfig struct {
	Tree TreeConfig

	NRanks int
	Curve  keys.Curve

	Alltoall comm.AlltoallAlgorithm
	// BranchExchange selects how the shared upper-tree branch cells are
	// distributed: "allgather" is the WS93 global concatenation, "ring" is
	// the 2HOT hierarchical pairwise aggregation that scales to very large
	// rank counts.
	BranchExchange string

	// UseWorkWeights balances domains by the per-particle interaction counts
	// of the previous step rather than by particle number.
	UseWorkWeights bool

	// ActiveMask restricts the solve's sinks to the particles carrying
	// particle.FlagActive: the flags travel with the particles through the
	// domain exchange, each rank maps its post-exchange flags into tree order
	// and prunes the traversal to the active sink groups, and only the active
	// slots of Acc/Pot/Work are written back (inactive particles keep their
	// previous values, exactly like step.Scatter with a mask).  A set whose
	// particles are all flagged active degenerates to the full solve,
	// bit-identically.
	ActiveMask bool
}

// DistributedResult aggregates the outcome of a distributed step.
type DistributedResult struct {
	Timings      Timings
	Counters     traverse.Counters
	Comm         comm.Stats
	NRanks       int
	Imbalance    float64 // max/mean traversal time across ranks
	ParticlesOut *particle.Set
	// PerRankTraversal records each rank's traversal wall-clock time.
	PerRankTraversal []time.Duration
}

// RankOutcome is one rank's share of a distributed force calculation: the
// stage timings, interaction counters, and traversal wall-clock the
// aggregation of Table 2 needs.
type RankOutcome struct {
	Timings   Timings
	Counters  traverse.Counters
	Traversal time.Duration
}

// DistributedStep performs one complete distributed force calculation for the
// particles in set: domain decomposition (parallel sample sort and particle
// exchange), local tree builds, branch exchange, shared upper-tree assembly,
// and the request/reply (ABM) dual traversal.  It returns the particles with
// their accelerations filled in (order is NOT preserved: particles come back
// grouped by owning rank) together with the stage timings of Table 2.
func DistributedStep(set *particle.Set, cfg DistributedConfig) (*DistributedResult, error) {
	cfg.Tree.defaults()
	if cfg.NRanks < 1 {
		cfg.NRanks = 1
	}
	if set.Len() < cfg.NRanks*2 {
		return nil, fmt.Errorf("core: %d particles is too few for %d ranks", set.Len(), cfg.NRanks)
	}
	world := comm.NewWorld(cfg.NRanks)

	// Initial ownership: contiguous chunks of the input ordering.
	perRank := make([]*particle.Set, cfg.NRanks)
	chunk := (set.Len() + cfg.NRanks - 1) / cfg.NRanks
	for r := 0; r < cfg.NRanks; r++ {
		lo, hi := r*chunk, (r+1)*chunk
		if hi > set.Len() {
			hi = set.Len()
		}
		perRank[r] = particle.New(hi - lo)
		for i := lo; i < hi; i++ {
			perRank[r].AppendFrom(set, i)
		}
	}

	outcomes := make([]*RankOutcome, cfg.NRanks)
	start := time.Now()

	err := world.Run(func(r *comm.Rank) error {
		out, err := DistributedRankForces(r, perRank[r.ID], cfg)
		if err != nil {
			return err
		}
		outcomes[r.ID] = out
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate.
	res := &DistributedResult{NRanks: cfg.NRanks, Comm: world.Statistics()}
	res.ParticlesOut = particle.New(set.Len())
	var maxTrav, sumTrav time.Duration
	for r := 0; r < cfg.NRanks; r++ {
		res.Counters.Add(outcomes[r].Counters)
		res.PerRankTraversal = append(res.PerRankTraversal, outcomes[r].Traversal)
		if outcomes[r].Traversal > maxTrav {
			maxTrav = outcomes[r].Traversal
		}
		sumTrav += outcomes[r].Traversal
		res.Timings.DomainDecomposition = maxDuration(res.Timings.DomainDecomposition, outcomes[r].Timings.DomainDecomposition)
		res.Timings.TreeBuild = maxDuration(res.Timings.TreeBuild, outcomes[r].Timings.TreeBuild)
		res.Timings.TreeTraversal = maxDuration(res.Timings.TreeTraversal, outcomes[r].Timings.TreeTraversal)
		res.Timings.Communication = maxDuration(res.Timings.Communication, outcomes[r].Timings.Communication)
		res.Timings.ForceEvaluation = maxDuration(res.Timings.ForceEvaluation, outcomes[r].Timings.ForceEvaluation)
		for i := 0; i < perRank[r].Len(); i++ {
			res.ParticlesOut.AppendFrom(perRank[r], i)
		}
	}
	meanTrav := sumTrav / time.Duration(cfg.NRanks)
	if meanTrav > 0 {
		res.Imbalance = float64(maxTrav) / float64(meanTrav)
	} else {
		res.Imbalance = 1
	}
	res.Timings.LoadImbalance = maxTrav - meanTrav
	res.Timings.Total = time.Since(start)
	return res, nil
}

// fetchFailure carries a FetchChildren error out of the traversal (whose
// callback signature has no error path) to the recover in
// DistributedRankForces.
type fetchFailure struct{ err error }

// DistributedRankForces is one rank's share of DistributedStep: domain
// decomposition, local tree build, branch exchange, and the ABM dual
// traversal, all against the rank's own particle set (mutated in place: the
// rank ends up owning a contiguous key range with Acc/Pot/Work filled in).
// It is the body both the in-process world and the multi-process TCP workers
// run — the same code on both transports is what makes an N-process run
// bit-identical to the in-process one.
//
// Global quantities (total mass, bounding box) are computed by rank-ordered
// collective reductions, so no process ever needs the full particle set.
func DistributedRankForces(r *comm.Rank, my *particle.Set, cfg DistributedConfig) (*RankOutcome, error) {
	out, _, err := DistributedRankForcesReuse(r, my, cfg, nil)
	return out, err
}

// DistributedRankForcesReuse is DistributedRankForces with an explicit
// decomposition seam for block-stepped cluster runs: when frozen is non-nil
// its splitters are reused verbatim — particles that drifted across a domain
// boundary are shipped to their owner and re-sorted, but no new splitters are
// chosen — so the substeps of one block see a stable domain shape and the
// rechunk-at-synchronization contract of internal/cluster holds.  Freezing
// requires a periodic box (the key space must not change between substeps);
// pass nil to choose fresh splitters exactly like DistributedRankForces.
// The returned decomposition is the one used, for the caller to freeze.
func DistributedRankForcesReuse(r *comm.Rank, my *particle.Set, cfg DistributedConfig, frozen *domain.Decomposition) (out *RankOutcome, decomp *domain.Decomposition, err error) {
	cfg.Tree.defaults()
	out = &RankOutcome{}

	// --- Global scalars -------------------------------------------------
	var box vec.Box
	if cfg.Tree.Periodic {
		box = vec.CubeBox(vec.V3{}, cfg.Tree.BoxSize)
	} else {
		local := vec.BoundingBox(my.Pos)
		for axis := 0; axis < 3; axis++ {
			lo, rerr := r.AllreduceFloat64(local.Lo[axis], "min")
			if rerr != nil {
				return nil, nil, fmt.Errorf("core: bounding box reduce: %w", rerr)
			}
			hi, rerr := r.AllreduceFloat64(local.Hi[axis], "max")
			if rerr != nil {
				return nil, nil, fmt.Errorf("core: bounding box reduce: %w", rerr)
			}
			local.Lo[axis], local.Hi[axis] = lo, hi
		}
		box = local.Cubed(1e-3)
	}
	totalMass, err := r.AllreduceFloat64(my.TotalMass(), "sum")
	if err != nil {
		return nil, nil, fmt.Errorf("core: total mass reduce: %w", err)
	}
	rhoBar := 0.0
	if cfg.Tree.BackgroundSubtraction {
		rhoBar = totalMass / box.Volume()
	}
	accTol := cfg.Tree.ErrTol * totalMass / (box.MaxSide() / 2 * box.MaxSide() / 2)

	// --- Domain decomposition -------------------------------------------
	t0 := time.Now()
	if frozen == nil {
		decomp, err = domain.Decompose(r, my, box, domain.Options{
			Curve:    cfg.Curve,
			Alltoall: cfg.Alltoall,
			UseWork:  cfg.UseWorkWeights,
		}, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("core: domain decomposition: %w", err)
		}
	} else {
		// Reuse the frozen splitters: ship boundary-crossers to their owner
		// and restore key order, but keep the domain shape fixed.  The key
		// space is the frozen decomposition's box, which a periodic run
		// guarantees matches the box computed above.
		decomp = frozen
		box = decomp.Box
		if err := domain.ExchangeParticles(r, my, decomp, cfg.Alltoall); err != nil {
			return nil, nil, fmt.Errorf("core: frozen-domain exchange: %w", err)
		}
		my.SortByKey(decomp.Box, decomp.Curve)
	}
	out.Timings.DomainDecomposition = time.Since(t0)

	// --- Local tree construction -----------------------------------------
	t0 = time.Now()
	keyLo := uint64(1) << 63 // smallest body key (placeholder bit)
	keyHi := ^uint64(0)
	if r.ID > 0 {
		keyLo = decomp.Splitters[r.ID-1]
	}
	if r.ID < r.N()-1 {
		keyHi = decomp.Splitters[r.ID]
	}
	// The worker budget is a per-world total: in-process ranks run on their
	// own goroutines, so split it rather than oversubscribing.  (Worker
	// count never changes result bits — pinned since the build/traversal
	// parallelism PRs — so this is purely a scheduling choice; multi-process
	// deployments pass a per-process budget of Workers*N.)
	buildWorkers := cfg.Tree.Workers / r.N()
	if buildWorkers < 1 {
		buildWorkers = 1
	}
	dt, err := tree.NewDistributed(my.Pos, my.Mass, box, tree.Options{
		Order:    cfg.Tree.Order,
		LeafSize: cfg.Tree.LeafSize,
		RhoBar:   rhoBar,
		Rank:     r.ID,
		Workers:  buildWorkers,
	}, keyLo, keyHi)
	if err != nil {
		return nil, nil, fmt.Errorf("core: local tree build: %w", err)
	}
	localBuild := time.Since(t0)

	// --- Branch exchange and shared upper tree ---------------------------
	t0 = time.Now()
	if err := exchangeBranches(r, dt, cfg.BranchExchange); err != nil {
		return nil, nil, fmt.Errorf("core: branch exchange: %w", err)
	}
	dt.BuildUpper()
	out.Timings.Communication += time.Since(t0)
	out.Timings.TreeBuild = localBuild + time.Since(t0)

	// --- Traversal with ABM request/reply ---------------------------------
	// The ABM handler runs concurrently with this rank's own traversal,
	// which grows the tree's cell table with fetched remote cells.  It
	// therefore serves requests from an immutable snapshot of the *local*
	// cells built here, never touching the live hash table.
	localChildren := make(map[uint64][]*tree.Cell)
	for _, c := range dt.Cell {
		if c.Remote || c.Owner != r.ID {
			continue
		}
		var kids []*tree.Cell
		for oct := 0; oct < 8; oct++ {
			if c.ChildIdx[oct] != tree.NoChild {
				kids = append(kids, dt.Cell[c.ChildIdx[oct]])
			}
		}
		localChildren[uint64(c.Key)] = kids
	}
	abm, err := r.NewABM(func(src int, reqKeys []uint64) [][]byte {
		replies := make([][]byte, len(reqKeys))
		for i, k := range reqKeys {
			replies[i] = dt.EncodeCells(localChildren[k])
		}
		return replies
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: abm open: %w", err)
	}
	var commWait time.Duration
	dt.FetchChildren = func(c *tree.Cell) []tree.Cell {
		tw := time.Now()
		reply, rerr := abm.RequestSync(c.Owner, []uint64{uint64(c.Key)})
		commWait += time.Since(tw)
		if rerr != nil {
			panic(fetchFailure{fmt.Errorf("fetch children of cell %d from rank %d: %w", c.Key, c.Owner, rerr)})
		}
		if len(reply) == 0 {
			return nil
		}
		cells, derr := tree.DecodeCells(reply[0])
		if derr != nil {
			panic(fetchFailure{fmt.Errorf("decode children of cell %d: %w", c.Key, derr)})
		}
		return cells
	}

	walkCfg := traverse.Config{
		MAC:          cfg.Tree.MAC,
		Theta:        cfg.Tree.Theta,
		AccTol:       accTol,
		Kernel:       cfg.Tree.Kernel,
		Eps:          cfg.Tree.Eps,
		G:            cfg.Tree.G,
		Periodic:     cfg.Tree.Periodic,
		BoxSize:      cfg.Tree.BoxSize,
		WS:           cfg.Tree.WS,
		LatticeOrder: cfg.Tree.LatticeOrder,
	}
	t0 = time.Now()
	w := traverse.NewWalker(dt.Tree, walkCfg)
	w.WorkOut = make([]float64, len(dt.Tree.Pos))
	// Activity restriction: the flags traveled with the particles through the
	// exchange above, so the post-exchange set carries exactly the sinks the
	// stepping engine marked active.  Map them into tree (sorted) order.
	var sinkActive []bool
	if cfg.ActiveMask {
		sinkActive = make([]bool, my.Len())
		nAct := 0
		for i, orig := range dt.SortIndex {
			a := my.Flags[orig]&particle.FlagActive != 0
			sinkActive[i] = a
			if a {
				nAct++
			}
		}
		if nAct == my.Len() {
			sinkActive = nil // fully active: take the full-solve path bit for bit
		}
	}
	w.SinkActive = sinkActive
	acc, pot, counters, err := walkAll(w)
	w.SinkActive = nil
	if err != nil {
		// The transport is failing; Close would only fail on the same cause.
		_ = abm.Close()
		return nil, nil, err
	}
	out.Traversal = time.Since(t0)
	out.Timings.TreeTraversal = out.Traversal - commWait
	out.Timings.Communication += commWait
	out.Timings.ForceEvaluation = out.Timings.TreeTraversal
	out.Counters = counters

	// Scatter the results back into the rank's particle set and record
	// each particle's actual interaction count for the next decomposition
	// (the splitters then balance real work, not the rank-averaged estimate
	// used previously).  Under an active mask only the active slots are
	// written; inactive particles keep their previous values, like
	// step.Scatter with a mask.
	for i, orig := range dt.SortIndex {
		if sinkActive != nil && !sinkActive[i] {
			continue
		}
		my.Acc[orig] = acc[i]
		my.Pot[orig] = pot[i]
		my.Work[orig] = w.WorkOut[i]
	}

	if err := abm.Close(); err != nil {
		return nil, nil, fmt.Errorf("core: abm close: %w", err)
	}
	return out, decomp, nil
}

// walkAll runs the walker's full traversal, translating a FetchChildren
// failure (which surfaces as a typed panic through the error-less callback)
// back into an error.
func walkAll(w *traverse.Walker) (acc []vec.V3, pot []float64, counters traverse.Counters, err error) {
	defer func() {
		if p := recover(); p != nil {
			if ff, ok := p.(fetchFailure); ok {
				err = fmt.Errorf("core: traversal: %w", ff.err)
				return
			}
			panic(p)
		}
	}()
	acc, pot, counters = w.ForcesForAll(1)
	return acc, pot, counters, nil
}

// exchangeBranches distributes every rank's branch cells to every other rank.
func exchangeBranches(r *comm.Rank, dt *tree.Distributed, mode string) error {
	local := dt.LocalBranches()
	encoded := dt.EncodeCells(local)

	switch mode {
	case "ring":
		// Hierarchical pairwise aggregation (Section 3.2): exchange the
		// accumulated branch set with the 2^i-th neighbor along the
		// space-filling curve, log2(N) times.
		known := [][]byte{encoded}
		n := r.N()
		const tagBranch = 7000
		for step := 1; step < n; step <<= 1 {
			dst := (r.ID + step) % n
			src := (r.ID - step%n + n) % n
			payload, err := concatBlocks(known)
			if err != nil {
				return err
			}
			if err := r.Send(dst, tagBranch+step, payload); err != nil {
				return err
			}
			data, _, err := r.Recv(src, tagBranch+step)
			if err != nil {
				return err
			}
			if b, ok := data.([]byte); ok && len(b) > 0 {
				known = append(known, b)
				cells, err := tree.DecodeCells(b)
				if err != nil {
					return fmt.Errorf("branch cells from rank %d: %w", src, err)
				}
				for _, c := range cells {
					if c.Owner != r.ID {
						dt.AddRemoteCell(c)
					}
				}
			}
		}
		return r.Barrier()
	default: // "allgather" (WS93 global concatenation)
		parts, err := r.Allgather(encoded)
		if err != nil {
			return err
		}
		for src, p := range parts {
			if src == r.ID {
				continue
			}
			b, ok := p.([]byte)
			if !ok || len(b) == 0 {
				continue
			}
			cells, err := tree.DecodeCells(b)
			if err != nil {
				return fmt.Errorf("branch cells from rank %d: %w", src, err)
			}
			for _, c := range cells {
				dt.AddRemoteCell(c)
			}
		}
		return nil
	}
}

// concatBlocks merges several EncodeCells buffers into one (cells are
// length-prefixed so DecodeCells below can parse the concatenation of decoded
// groups; we simply re-encode by decoding and re-counting).
func concatBlocks(blocks [][]byte) ([]byte, error) {
	if len(blocks) == 1 {
		return blocks[0], nil
	}
	var all []tree.Cell
	for _, b := range blocks {
		cells, err := tree.DecodeCells(b)
		if err != nil {
			return nil, err
		}
		all = append(all, cells...)
	}
	return reencode(all), nil
}

// reencode rebuilds an EncodeCells buffer from decoded cells.  It round-trips
// through a throwaway tree because EncodeCell needs leaf particle access.
func reencode(cells []tree.Cell) []byte {
	t := &tree.Tree{}
	ptrs := make([]*tree.Cell, len(cells))
	for i := range cells {
		ptrs[i] = &cells[i]
	}
	return t.EncodeCells(ptrs)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// EffectiveGflops converts an interaction-count record and a wall-clock time
// into the paper's performance metric.
func EffectiveGflops(c traverse.Counters, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Flops()) / elapsed.Seconds() / 1e9
}

// VerifyAgainstShared recomputes forces for the distributed result's
// particles with the shared-memory solver and returns the error statistics
// (matching particles by ID).  Used by tests and the Table 2 harness to show
// the distributed and shared paths agree.
func VerifyAgainstShared(out *particle.Set, cfg TreeConfig) (AccuracyStats, error) {
	solver := NewTreeSolver(cfg)
	res, err := solver.Forces(out.Pos, out.Mass)
	if err != nil {
		return AccuracyStats{}, err
	}
	return CompareAccelerations(out.Acc, res.Acc), nil
}

// SofteningForDensity returns a reasonable softening length for a
// cosmological box: 1/20 of the mean interparticle separation (the order of
// magnitude used by production runs).
func SofteningForDensity(boxSize float64, np int) float64 {
	return boxSize / math.Cbrt(float64(np)) / 20
}

// DefaultKernel is the production smoothing kernel of the paper.
const DefaultKernel = softening.DehnenK1
