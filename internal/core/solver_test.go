package core

import (
	"math"
	"math/rand"
	"testing"

	"twohot/internal/ewald"
	"twohot/internal/softening"
	"twohot/internal/traverse"
	"twohot/internal/vec"
)

// randomCluster builds a clustered particle distribution (a few Gaussian
// blobs) inside the unit box.
func randomCluster(n int, seed int64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	nBlobs := 4
	centers := make([]vec.V3, nBlobs)
	for b := range centers {
		centers[b] = vec.V3{0.2 + 0.6*rng.Float64(), 0.2 + 0.6*rng.Float64(), 0.2 + 0.6*rng.Float64()}
	}
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(nBlobs)]
		for {
			p := vec.V3{
				c[0] + 0.08*rng.NormFloat64(),
				c[1] + 0.08*rng.NormFloat64(),
				c[2] + 0.08*rng.NormFloat64(),
			}
			if p[0] > 0 && p[0] < 1 && p[1] > 0 && p[1] < 1 && p[2] > 0 && p[2] < 1 {
				pos[i] = p
				break
			}
		}
		mass[i] = 1.0 / float64(n)
	}
	return pos, mass
}

func uniformBox(n int, l float64, seed int64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{l * rng.Float64(), l * rng.Float64(), l * rng.Float64()}
		mass[i] = 1
	}
	return pos, mass
}

func TestTreeSolverMatchesDirectOpenBoundary(t *testing.T) {
	pos, mass := randomCluster(2000, 1)
	eps := 0.002

	direct := &DirectSolver{Kernel: softening.Plummer, Eps: eps}
	ref, err := direct.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		cfg    TreeConfig
		maxRMS float64
	}{
		{"abs-err-1e-5-p4", TreeConfig{Order: 4, ErrTol: 1e-5, Kernel: softening.Plummer, Eps: eps}, 2e-4},
		{"abs-err-1e-3-p4", TreeConfig{Order: 4, ErrTol: 1e-3, Kernel: softening.Plummer, Eps: eps}, 5e-3},
		{"barnes-hut-0.5-p2", TreeConfig{Order: 2, MAC: traverse.MACBarnesHut, Theta: 0.5, Kernel: softening.Plummer, Eps: eps}, 5e-3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			solver := NewTreeSolver(tc.cfg)
			res, err := solver.Forces(pos, mass)
			if err != nil {
				t.Fatal(err)
			}
			stats := CompareAccelerations(res.Acc, ref.Acc)
			t.Logf("rms=%.3g median=%.3g max=%.3g interactions: p2p=%d cell=%d",
				stats.RMS, stats.Median, stats.Max, res.Counters.P2P, res.Counters.CellInteractions())
			if stats.RMS > tc.maxRMS {
				t.Errorf("rms relative error %.3g exceeds %.3g", stats.RMS, tc.maxRMS)
			}
			if !res.Acc[0].IsFinite() {
				t.Error("non-finite acceleration")
			}
		})
	}
}

func TestTreeSolverBackgroundSubtractionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force Ewald reference is too slow under -short/-race")
	}
	// A small periodic box: verify periodic tree forces (with background
	// subtraction, explicit ws=2 replicas and the far-lattice local
	// expansion) against brute-force Ewald summation.
	const n = 160
	const l = 1.0
	pos, mass := uniformBox(n, l, 3)

	ew := DirectSolver{Periodic: true, BoxSize: l}
	ew.Ewald.RealShell = 3
	ew.Ewald.KShell = 6
	ref, err := ew.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}

	solver := NewTreeSolver(TreeConfig{
		Order: 4, ErrTol: 1e-6,
		Periodic: true, BoxSize: l, BackgroundSubtraction: true,
		WS: 2, LatticeOrder: 4,
	})
	res, err := solver.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	stats := CompareAccelerations(res.Acc, ref.Acc)
	t.Logf("periodic bg-subtraction: rms=%.3g median=%.3g max=%.3g", stats.RMS, stats.Median, stats.Max)
	if stats.RMS > 2e-3 {
		t.Errorf("periodic rms error %.3g too large", stats.RMS)
	}
}

// perturbedGrid builds an "early time" configuration: particles on a regular
// lattice with small random displacements, the regime where background
// subtraction shines (density contrast much smaller than Poisson noise).
func perturbedGrid(nSide int, l, amplitude float64, seed int64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := nSide * nSide * nSide
	pos := make([]vec.V3, 0, n)
	mass := make([]float64, 0, n)
	h := l / float64(nSide)
	for i := 0; i < nSide; i++ {
		for j := 0; j < nSide; j++ {
			for k := 0; k < nSide; k++ {
				p := vec.V3{
					vec.PeriodicWrap((float64(i)+0.5)*h+amplitude*h*rng.NormFloat64(), l),
					vec.PeriodicWrap((float64(j)+0.5)*h+amplitude*h*rng.NormFloat64(), l),
					vec.PeriodicWrap((float64(k)+0.5)*h+amplitude*h*rng.NormFloat64(), l),
				}
				pos = append(pos, p)
				mass = append(mass, 1)
			}
		}
	}
	return pos, mass
}

func TestBackgroundSubtractionReducesInteractions(t *testing.T) {
	// The headline claim of Section 2.2.1: for a near-uniform (early time)
	// distribution at fixed absolute error tolerance, background subtraction
	// reduces the number of interactions substantially.
	if testing.Short() {
		t.Skip("two full periodic solves on a 16^3 grid are too slow under -short/-race")
	}
	pos, mass := perturbedGrid(16, 1.0, 0.02, 11)
	base := TreeConfig{Order: 4, ErrTol: 1e-5, Periodic: true, BoxSize: 1, WS: 1}

	withBG := base
	withBG.BackgroundSubtraction = true
	without := base
	without.BackgroundSubtraction = false

	rBG, err := NewTreeSolver(withBG).Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	rNo, err := NewTreeSolver(without).Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	totBG := rBG.Counters.P2P + rBG.Counters.CellInteractions()
	totNo := rNo.Counters.P2P + rNo.Counters.CellInteractions()
	ratio := float64(totNo) / float64(totBG)
	t.Logf("interactions with bg subtraction: %d, without: %d, ratio %.2f", totBG, totNo, ratio)
	// The full factor of 3-5 quoted by the paper needs cells spanning many
	// mean interparticle separations (4096^3 particles in Gpc boxes); at
	// unit-test scale (16^3) only the top levels cancel, so we assert a
	// smaller but still unambiguous reduction.  The benchmark harness
	// (BenchmarkAblationBackgroundSubtraction) runs the larger version.
	if ratio < 1.15 {
		t.Errorf("background subtraction should reduce interactions on an early-time box, got ratio %.2f", ratio)
	}
}

func TestDirect32MatchesDirect64Roughly(t *testing.T) {
	pos, mass := randomCluster(512, 5)
	direct := &DirectSolver{Kernel: softening.None}
	ref, err := direct.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	at := 17
	a32, _ := Direct32Forces(pos, mass, pos[at])
	rel := a32.Sub(ref.Acc[at]).Norm() / ref.Acc[at].Norm()
	if rel > 1e-4 || math.IsNaN(rel) {
		t.Errorf("float32 direct sum differs from float64 by %.3g", rel)
	}
}

func TestDirectSolverEwaldParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 24
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1
	}
	opt := ewald.Options{RealShell: 2, KShell: 4}
	serial := &DirectSolver{Periodic: true, BoxSize: 1, Ewald: opt, Workers: 1}
	par := &DirectSolver{Periodic: true, BoxSize: 1, Ewald: opt, Workers: 4}
	rs, err := serial.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Forces(pos, mass)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pos {
		if rs.Acc[i] != rp.Acc[i] || rs.Pot[i] != rp.Pot[i] {
			t.Fatalf("particle %d: parallel Ewald differs from serial", i)
		}
	}
}
