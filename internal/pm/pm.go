// Package pm implements a particle-mesh Poisson solver and a TreePM-style
// force split.  It plays the role of the GADGET-2 comparison code of
// Figure 7: the PM long-range force is computed on a mesh with a k-space
// Gaussian split, and the short-range force is summed directly over
// neighbors with the complementary erfc cutoff.  The characteristic
// "TreePM transition region" feature the paper discusses arises exactly from
// this split.
package pm

import (
	"math"
	"runtime"
	"sync"

	"twohot/internal/cosmo"
	"twohot/internal/fft"
	"twohot/internal/grid"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

// Options configures the PM / TreePM solver.
type Options struct {
	Mesh          int     // mesh cells per dimension (PMGRID)
	BoxSize       float64 // periodic box size
	DeconvolveCIC bool    // compensate the CIC assignment window (twice: deposit + interpolation)
	// Asmth is the force-split scale r_s in units of mesh cells (GADGET-2
	// uses 1.25).  Zero means pure PM (no split, no short-range force).
	Asmth float64
	// RCut is the short-range cutoff radius in units of r_s (GADGET-2 uses
	// 4.5).  Ignored for pure PM.
	RCut float64
	// Eps is the short-range Plummer-equivalent softening length.
	Eps float64
	// Workers caps the goroutines of the short-range sum; <= 0 means
	// GOMAXPROCS.  The result is bit-identical for every worker count (each
	// particle's neighbor sum is computed independently in a fixed order).
	Workers int
}

// Solver computes gravitational accelerations with PM or TreePM.
type Solver struct {
	Opt Options
}

// NewSolver validates the options and returns a solver.
func NewSolver(opt Options) *Solver {
	if opt.RCut == 0 {
		opt.RCut = 4.5
	}
	return &Solver{Opt: opt}
}

// SplitScale returns the force-split scale r_s in length units (0 for pure
// PM).
func (s *Solver) SplitScale() float64 {
	if s.Opt.Asmth == 0 {
		return 0
	}
	return s.Opt.Asmth * s.Opt.BoxSize / float64(s.Opt.Mesh)
}

// Accelerations returns the comoving accelerations (G=cosmo.G) of all
// particles, i.e. the same quantity the 2HOT tree solver produces, computed
// from the density contrast (the mean density exerts no force, as the
// periodic Poisson solve discards the DC mode).
func (s *Solver) Accelerations(pos []vec.V3, mass float64, acc []vec.V3) {
	s.LongRange(pos, mass, acc)
	if s.Opt.Asmth > 0 {
		s.ShortRange(pos, mass, acc)
	}
}

// LongRange overwrites acc with the mesh force alone.  With Asmth > 0 the
// Green's function carries the Gaussian long-range filter exp(-k^2 rs^2), and
// the result is exactly the long-range half of the TreePM split — the entry
// point the tree-short-range composite pairs with its rcut-truncated walk.
func (s *Solver) LongRange(pos []vec.V3, mass float64, acc []vec.V3) {
	long := s.longRange(pos, mass)
	copy(acc, long)
}

// longRange computes the mesh force.  With Asmth > 0 the Green's function is
// multiplied by the Gaussian long-range filter exp(-k^2 rs^2).
func (s *Solver) longRange(pos []vec.V3, mass float64) []vec.V3 {
	n := s.Opt.Mesh
	l := s.Opt.BoxSize
	rs := s.SplitScale()

	mesh := grid.NewMesh(n, l)
	masses := make([]float64, len(pos))
	for i := range masses {
		masses[i] = mass
	}
	mesh.DepositCIC(pos, masses)

	// Convert to density contrast times mean density: rho - rho_mean, in
	// mass per volume units.
	cellVol := math.Pow(l/float64(n), 3)
	mean := mesh.Total() / float64(len(mesh.Data))
	for i := range mesh.Data {
		mesh.Data[i] = (mesh.Data[i] - mean) / cellVol
	}

	g := mesh.ToComplex()
	g.Forward()

	kf := 2 * math.Pi / l
	// Potential: phi_k = -4 pi G delta rho_k / k^2 (comoving Poisson
	// equation for the peculiar potential).
	for i := 0; i < n; i++ {
		ki := float64(fft.FreqIndex(i, n)) * kf
		for j := 0; j < n; j++ {
			kj := float64(fft.FreqIndex(j, n)) * kf
			for k := 0; k < n; k++ {
				kk := float64(fft.FreqIndex(k, n)) * kf
				idx := g.Index(i, j, k)
				k2 := ki*ki + kj*kj + kk*kk
				if k2 == 0 {
					g.Data[idx] = 0
					continue
				}
				green := -4 * math.Pi * cosmo.G / k2
				if rs > 0 {
					green *= math.Exp(-k2 * rs * rs)
				}
				if s.Opt.DeconvolveCIC {
					w := grid.CICWindow(ki, kj, kk, l, n)
					if w > 1e-6 {
						green /= w * w
					}
				}
				g.Data[idx] *= complex(green, 0)
			}
		}
	}

	// Spectral gradient for each force component: a = -grad phi, i.e.
	// a_k = -i k phi_k.
	acc := make([]vec.V3, len(pos))
	compMesh := grid.NewMesh(n, l)
	vals := make([]float64, len(pos))
	for c := 0; c < 3; c++ {
		comp := fft.NewCube(n)
		for i := 0; i < n; i++ {
			ki := float64(fft.FreqIndex(i, n)) * kf
			for j := 0; j < n; j++ {
				kj := float64(fft.FreqIndex(j, n)) * kf
				for k := 0; k < n; k++ {
					kk := float64(fft.FreqIndex(k, n)) * kf
					idx := comp.Index(i, j, k)
					var kc float64
					switch c {
					case 0:
						kc = ki
					case 1:
						kc = kj
					default:
						kc = kk
					}
					comp.Data[idx] = complex(0, -kc) * g.Data[idx]
				}
			}
		}
		comp.Inverse()
		compMesh.FromComplex(comp)
		compMesh.InterpolateCIC(pos, vals)
		for i := range acc {
			acc[i][c] = vals[i]
		}
	}
	return acc
}

// ShortRange adds the erfc-complement short-range force using a cell-linked
// neighbor list, the direct-summation analogue of GADGET-2's short-range
// tree walk.  It is exact for the truncated short-range force (every pair
// within rcut is visited exactly once), which makes it the small-N oracle
// for the tree-walk short range of the TreePM composite.
func (s *Solver) ShortRange(pos []vec.V3, mass float64, acc []vec.V3) {
	l := s.Opt.BoxSize
	rs := s.SplitScale()
	rcut := s.Opt.RCut * rs
	eps := s.Opt.Eps

	// Cell-linked list with cells at least rcut wide.
	nc := int(l / rcut)
	if nc < 1 {
		nc = 1
	}
	if nc > 256 {
		nc = 256
	}
	// The +-1 neighbor sweep must visit each wrapped cell exactly once.  With
	// nc < 3 the periodic wraparound folds distinct offsets onto the same
	// cell (nc=1 maps all 27 offsets to the home cell; nc=2 maps -1 and +1 to
	// the same neighbor), which double-counts every pair in the folded cells.
	// Enumerate the distinct per-axis offsets up front — the 3-D neighbor set
	// is their Cartesian product, so per-axis deduplication is sufficient.
	offsets := []int{-1, 0, 1}
	switch nc {
	case 1:
		offsets = []int{0}
	case 2:
		offsets = []int{0, 1}
	}
	cellOf := func(p vec.V3) (int, int, int) {
		f := float64(nc) / l
		i := int(p[0] * f)
		j := int(p[1] * f)
		k := int(p[2] * f)
		if i >= nc {
			i = nc - 1
		}
		if j >= nc {
			j = nc - 1
		}
		if k >= nc {
			k = nc - 1
		}
		return i, j, k
	}
	heads := make([]int, nc*nc*nc)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int, len(pos))
	for i, p := range pos {
		ci, cj, ck := cellOf(p)
		idx := (ci*nc+cj)*nc + ck
		next[i] = heads[idx]
		heads[idx] = i
	}

	workers := s.Opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	chunk := (len(pos) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(pos) {
			hi = len(pos)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				pi := pos[i]
				ci, cj, ck := cellOf(pi)
				var a vec.V3
				for _, di := range offsets {
					for _, dj := range offsets {
						for _, dk := range offsets {
							ni := ((ci+di)%nc + nc) % nc
							nj := ((cj+dj)%nc + nc) % nc
							nk := ((ck+dk)%nc + nc) % nc
							for j := heads[(ni*nc+nj)*nc+nk]; j >= 0; j = next[j] {
								if j == i {
									continue
								}
								d := vec.MinImageV(pos[j].Sub(pi), l)
								r2 := d.Norm2()
								if r2 > rcut*rcut || r2 == 0 {
									continue
								}
								r := math.Sqrt(r2)
								// Short-range kernel: softened Newtonian force
								// times the erfc complement of the Gaussian
								// long-range filter (same factors as the tree
								// short-range walk).
								ff := softening.ForceFactor(softening.Plummer, r, eps)
								sff, _ := softening.SplitFactors(r, rs)
								a = a.Add(d.Scale(cosmo.G * mass * ff * sff))
							}
						}
					}
				}
				acc[i] = acc[i].Add(a)
			}
		}(lo, hi)
	}
	wg.Wait()
}
