package pm

import (
	"math"
	"math/rand"
	"testing"

	"twohot/internal/cosmo"
	"twohot/internal/ewald"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

func TestPMForcesAgainstEwald(t *testing.T) {
	// A small periodic system: PM long-range forces (with CIC deconvolution)
	// should agree with Ewald for well-separated particles to mesh accuracy.
	rng := rand.New(rand.NewSource(1))
	const n = 64
	const l = 100.0
	pos := make([]vec.V3, n)
	for i := range pos {
		pos[i] = vec.V3{l * rng.Float64(), l * rng.Float64(), l * rng.Float64()}
	}
	mass := 1.0

	s := NewSolver(Options{Mesh: 64, BoxSize: l, DeconvolveCIC: true})
	acc := make([]vec.V3, n)
	s.Accelerations(pos, mass, acc)

	masses := make([]float64, n)
	for i := range masses {
		masses[i] = mass
	}
	ref := ewald.ReferenceForces(pos, masses, l, ewald.Options{RealShell: 3, KShell: 6})
	// Scale reference by G to match the PM output.
	rms, refRMS := 0.0, 0.0
	for i := range ref {
		ref[i] = ref[i].Scale(cosmo.G)
		refRMS += ref[i].Norm2()
		rms += acc[i].Sub(ref[i]).Norm2()
	}
	rel := math.Sqrt(rms / refRMS)
	t.Logf("PM vs Ewald rms relative error: %.3f", rel)
	// Pure PM is only accurate for separations much larger than a mesh cell;
	// with 64 particles most pairs sit a few cells apart, so large errors
	// here are expected (this is exactly the force-error criticism the paper
	// levels at pure particle-mesh methods).  Just require finite, non-crazy
	// output.
	if math.IsNaN(rel) || rel > 2 {
		t.Errorf("pure PM error %.3f is pathological", rel)
	}

	// TreePM (mesh + erfc short range) must be far more accurate than pure
	// PM for the same mesh -- the whole point of the split.
	tp := NewSolver(Options{Mesh: 64, BoxSize: l, DeconvolveCIC: true, Asmth: 1.25, Eps: 0.05})
	acc2 := make([]vec.V3, n)
	tp.Accelerations(pos, mass, acc2)
	rms2 := 0.0
	for i := range ref {
		rms2 += acc2[i].Sub(ref[i]).Norm2()
	}
	rel2 := math.Sqrt(rms2 / refRMS)
	t.Logf("TreePM vs Ewald rms relative error: %.3f", rel2)
	if rel2 > 0.05 {
		t.Errorf("TreePM error %.3f too large", rel2)
	}
	if rel2 > rel/3 {
		t.Errorf("TreePM (%.3f) should be far more accurate than pure PM (%.3f)", rel2, rel)
	}
}

func TestMomentumConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200
	const l = 50.0
	pos := make([]vec.V3, n)
	for i := range pos {
		pos[i] = vec.V3{l * rng.Float64(), l * rng.Float64(), l * rng.Float64()}
	}
	s := NewSolver(Options{Mesh: 32, BoxSize: l, DeconvolveCIC: true, Asmth: 1.25, Eps: 0.1})
	acc := make([]vec.V3, n)
	s.Accelerations(pos, 2.0, acc)
	var net vec.V3
	var scale float64
	for _, a := range acc {
		net = net.Add(a)
		scale += a.Norm()
	}
	if net.Norm() > 1e-6*scale {
		t.Errorf("net force %v should vanish (total %g)", net, scale)
	}
}

// allPairsShortRange is the brute-force O(N^2) reference for the truncated
// erfc-complement short-range force: every minimum-image pair within rcut,
// evaluated with the same kernel factors as Solver.ShortRange.
func allPairsShortRange(s *Solver, pos []vec.V3, mass float64) []vec.V3 {
	l := s.Opt.BoxSize
	rs := s.SplitScale()
	rcut := s.Opt.RCut * rs
	acc := make([]vec.V3, len(pos))
	for i := range pos {
		for j := range pos {
			if j == i {
				continue
			}
			d := vec.MinImageV(pos[j].Sub(pos[i]), l)
			r2 := d.Norm2()
			if r2 > rcut*rcut || r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			ff := softening.ForceFactor(softening.Plummer, r, s.Opt.Eps)
			sff, _ := softening.SplitFactors(r, rs)
			acc[i] = acc[i].Add(d.Scale(cosmo.G * mass * ff * sff))
		}
	}
	return acc
}

// TestShortRangeCoarseCellGrid is the regression test for the nc < 3
// pair double-counting bug: with Mesh=16 (nc=2) the wraparound neighbor
// sweep used to fold the -1 and +1 offsets onto the same cell and count
// those pairs twice, and with Mesh=8 (nc=1) every pair was counted up to
// 27 times.  The cell-list sum must match the all-pairs reference in every
// cell-grid regime.
func TestShortRangeCoarseCellGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 96
	const l = 100.0
	pos := make([]vec.V3, n)
	for i := range pos {
		pos[i] = vec.V3{l * rng.Float64(), l * rng.Float64(), l * rng.Float64()}
	}
	// Mesh 16 -> rcut = 5.625*l/16 = 35.2, nc = 2;  Mesh 8 -> rcut = 70.3,
	// nc = 1;  Mesh 64 -> nc = 11 (sanity check on the uncollapsed grid).
	for _, mesh := range []int{16, 8, 64} {
		s := NewSolver(Options{Mesh: mesh, BoxSize: l, Asmth: 1.25, Eps: 0.05})
		acc := make([]vec.V3, n)
		s.ShortRange(pos, 2.0, acc)
		ref := allPairsShortRange(s, pos, 2.0)
		var maxRel, refRMS float64
		for i := range ref {
			refRMS += ref[i].Norm2()
		}
		scale := math.Sqrt(refRMS / float64(n))
		for i := range ref {
			if rel := acc[i].Sub(ref[i]).Norm() / scale; rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel > 1e-12 {
			t.Errorf("Mesh=%d: cell-list short range deviates from all-pairs reference (max rel %.3e)", mesh, maxRel)
		}
	}
}

// TestShortRangeWorkerDeterminism pins that the configured worker budget is
// honored and that chunking does not change bits: each particle's neighbor
// sum runs in a fixed order regardless of which goroutine owns it.
func TestShortRangeWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 150
	const l = 50.0
	pos := make([]vec.V3, n)
	for i := range pos {
		pos[i] = vec.V3{l * rng.Float64(), l * rng.Float64(), l * rng.Float64()}
	}
	ref := make([]vec.V3, n)
	NewSolver(Options{Mesh: 32, BoxSize: l, Asmth: 1.25, Eps: 0.1, Workers: 1}).ShortRange(pos, 1.5, ref)
	for _, workers := range []int{2, 3, 7, 0} {
		acc := make([]vec.V3, n)
		NewSolver(Options{Mesh: 32, BoxSize: l, Asmth: 1.25, Eps: 0.1, Workers: workers}).ShortRange(pos, 1.5, acc)
		for i := range acc {
			if acc[i] != ref[i] {
				t.Fatalf("workers=%d: particle %d differs from workers=1: %v vs %v", workers, i, acc[i], ref[i])
			}
		}
	}
}

func TestSplitScale(t *testing.T) {
	s := NewSolver(Options{Mesh: 64, BoxSize: 128, Asmth: 1.25})
	if math.Abs(s.SplitScale()-1.25*2) > 1e-12 {
		t.Errorf("split scale %g", s.SplitScale())
	}
	pure := NewSolver(Options{Mesh: 64, BoxSize: 128})
	if pure.SplitScale() != 0 {
		t.Error("pure PM should have no split scale")
	}
}
