package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicAlgebra(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{-2, 0.5, 4}
	if got := a.Add(b); got != (V3{-1, 2.5, 7}) {
		t.Errorf("Add: %v", got)
	}
	if got := a.Sub(b); got != (V3{3, 1.5, -1}) {
		t.Errorf("Sub: %v", got)
	}
	if got := a.Dot(b); got != -2+1+12 {
		t.Errorf("Dot: %v", got)
	}
	if got := a.Cross(b); math.Abs(got.Dot(a)) > 1e-14 || math.Abs(got.Dot(b)) > 1e-14 {
		t.Errorf("Cross not orthogonal: %v", got)
	}
	if a.Scale(2) != (V3{2, 4, 6}) {
		t.Error("Scale")
	}
	if a.Neg() != (V3{-1, -2, -3}) {
		t.Error("Neg")
	}
	if math.Abs(a.Norm()-math.Sqrt(14)) > 1e-15 {
		t.Error("Norm")
	}
}

func TestQuickNormProperties(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		v := V3{x, y, z}
		// Norm is non-negative and Norm2 = Norm^2 (within roundoff).
		n := v.Norm()
		if n < 0 {
			return false
		}
		if n > 0 && math.Abs(v.Norm2()-n*n)/v.Norm2() > 1e-12 {
			return false
		}
		// Triangle inequality with itself doubled.
		return v.Add(v).Norm() <= 2*n*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoxContainment(t *testing.T) {
	b := CubeBox(V3{0, 0, 0}, 2)
	if !b.Contains(V3{1.99, 0, 1}) {
		t.Error("Contains inside")
	}
	if b.Contains(V3{2, 0, 0}) {
		t.Error("half-open upper bound")
	}
	if b.Volume() != 8 {
		t.Error("volume")
	}
	if b.Center() != (V3{1, 1, 1}) {
		t.Error("center")
	}
}

func TestBoundingBoxAndCubed(t *testing.T) {
	pts := []V3{{0, 0, 0}, {1, 3, 2}, {-1, 0.5, 0.5}}
	b := BoundingBox(pts)
	for _, p := range pts {
		if !b.ContainsClosed(p) {
			t.Errorf("bounding box misses %v", p)
		}
	}
	c := b.Cubed(0.01)
	s := c.Size()
	if math.Abs(s[0]-s[1]) > 1e-12 || math.Abs(s[1]-s[2]) > 1e-12 {
		t.Error("Cubed must produce equal sides")
	}
	for _, p := range pts {
		if !c.ContainsClosed(p) {
			t.Errorf("cubed box misses %v", p)
		}
	}
}

func TestPeriodicHelpers(t *testing.T) {
	if got := PeriodicWrap(-0.25, 1); math.Abs(got-0.75) > 1e-15 {
		t.Errorf("PeriodicWrap: %v", got)
	}
	if got := PeriodicWrap(2.5, 1); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("PeriodicWrap: %v", got)
	}
	if got := MinImage(0.9, 1); math.Abs(got+0.1) > 1e-15 {
		t.Errorf("MinImage: %v", got)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e6 {
			return true
		}
		w := PeriodicWrap(x, 10)
		return w >= 0 && w < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
