// Package vec provides small fixed-size vector and bounding-box types used
// throughout the 2HOT reproduction.  All geometry in the code base is carried
// in float64; the interaction kernels downcast to float32 only where the
// paper does (single-precision force evaluation benchmarks).
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-vector of float64.
type V3 [3]float64

// Zero is the zero vector.
var Zero = V3{}

// New builds a V3 from components.
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

// Scale returns s * a.
func (a V3) Scale(s float64) V3 { return V3{s * a[0], s * a[1], s * a[2]} }

// Mul returns the component-wise product a*b.
func (a V3) Mul(b V3) V3 { return V3{a[0] * b[0], a[1] * b[1], a[2] * b[2]} }

// Dot returns the dot product a·b.
func (a V3) Dot(b V3) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Cross returns the cross product a×b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

// Norm2 returns |a|^2.
func (a V3) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Dist returns |a-b|.
func (a V3) Dist(b V3) float64 { return a.Sub(b).Norm() }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a[0], -a[1], -a[2]} }

// MaxAbs returns the maximum absolute component (infinity norm).
func (a V3) MaxAbs() float64 {
	m := math.Abs(a[0])
	if v := math.Abs(a[1]); v > m {
		m = v
	}
	if v := math.Abs(a[2]); v > m {
		m = v
	}
	return m
}

// String implements fmt.Stringer.
func (a V3) String() string {
	return fmt.Sprintf("(%g, %g, %g)", a[0], a[1], a[2])
}

// IsFinite reports whether all components are finite.
func (a V3) IsFinite() bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Min returns the component-wise minimum.
func Min(a, b V3) V3 {
	return V3{math.Min(a[0], b[0]), math.Min(a[1], b[1]), math.Min(a[2], b[2])}
}

// Max returns the component-wise maximum.
func Max(a, b V3) V3 {
	return V3{math.Max(a[0], b[0]), math.Max(a[1], b[1]), math.Max(a[2], b[2])}
}

// Box is an axis-aligned bounding box.
type Box struct {
	Lo, Hi V3
}

// NewBox returns the box spanning lo..hi.
func NewBox(lo, hi V3) Box { return Box{Lo: lo, Hi: hi} }

// UnitBox returns the unit cube [0,1)^3.
func UnitBox() Box { return Box{Lo: V3{0, 0, 0}, Hi: V3{1, 1, 1}} }

// CubeBox returns a cube with the given lower corner and side.
func CubeBox(lo V3, side float64) Box {
	return Box{Lo: lo, Hi: lo.Add(V3{side, side, side})}
}

// Center returns the box center.
func (b Box) Center() V3 { return b.Lo.Add(b.Hi).Scale(0.5) }

// Size returns the box extent per dimension.
func (b Box) Size() V3 { return b.Hi.Sub(b.Lo) }

// MaxSide returns the longest box side.
func (b Box) MaxSide() float64 { return b.Size().MaxAbs() }

// Volume returns the box volume.
func (b Box) Volume() float64 {
	s := b.Size()
	return s[0] * s[1] * s[2]
}

// Contains reports whether p lies in the half-open box [Lo, Hi).
func (b Box) Contains(p V3) bool {
	for i := 0; i < 3; i++ {
		if p[i] < b.Lo[i] || p[i] >= b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsClosed reports whether p lies in the closed box [Lo, Hi].
func (b Box) ContainsClosed(p V3) bool {
	for i := 0; i < 3; i++ {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Expand grows the box to include p, returning the result.
func (b Box) Expand(p V3) Box {
	return Box{Lo: Min(b.Lo, p), Hi: Max(b.Hi, p)}
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	return Box{Lo: Min(b.Lo, o.Lo), Hi: Max(b.Hi, o.Hi)}
}

// Cubed returns the smallest cube (equal sides) centered on the same center
// that contains the box, padded by the relative amount pad.
func (b Box) Cubed(pad float64) Box {
	side := b.MaxSide() * (1 + pad)
	c := b.Center()
	h := side / 2
	return Box{Lo: c.Sub(V3{h, h, h}), Hi: c.Add(V3{h, h, h})}
}

// BoundingBox returns the bounding box of a set of positions.  It returns the
// unit box when the set is empty.
func BoundingBox(pos []V3) Box {
	if len(pos) == 0 {
		return UnitBox()
	}
	b := Box{Lo: pos[0], Hi: pos[0]}
	for _, p := range pos[1:] {
		b = b.Expand(p)
	}
	return b
}

// PeriodicWrap maps x into [0, L) assuming |x| is at most a few box lengths
// away (the common case after a drift step).
func PeriodicWrap(x, L float64) float64 {
	for x < 0 {
		x += L
	}
	for x >= L {
		x -= L
	}
	return x
}

// MinImage returns the minimum-image separation dx for box size L.
func MinImage(dx, L float64) float64 {
	if dx > L/2 {
		dx -= L
	} else if dx < -L/2 {
		dx += L
	}
	return dx
}

// MinImageV applies MinImage per component.
func MinImageV(d V3, L float64) V3 {
	return V3{MinImage(d[0], L), MinImage(d[1], L), MinImage(d[2], L)}
}

// WrapV applies PeriodicWrap per component.
func WrapV(p V3, L float64) V3 {
	return V3{PeriodicWrap(p[0], L), PeriodicWrap(p[1], L), PeriodicWrap(p[2], L)}
}
