package traverse

// Equivalence suite for the list-inheriting traversal: ForcesForAll must
// reproduce the (now test-only) forcesForAllLegacy oracle bit for bit —
// accelerations, kernel sums and
// every interaction counter — across MAC types, periodic/non-periodic
// configurations, background subtraction, softening kernels and worker
// counts.  This mirrors the PR-1 methodology for the parallel tree build: the
// legacy path stays in the tree as the reference oracle, and CI runs this
// suite under -race.

import (
	"fmt"
	"math/rand"
	"testing"

	"twohot/internal/particle"
	"twohot/internal/softening"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// equivCase is one traversal configuration of the equivalence grid.
type equivCase struct {
	name   string
	rhoBar float64 // background subtraction when > 0
	cfg    Config
}

func equivCases() []equivCase {
	return []equivCase{
		{
			name: "abs/open/none",
			cfg:  Config{MAC: MACAbsoluteError, AccTol: 1e-4, Kernel: softening.None},
		},
		{
			name: "bh/open/plummer",
			cfg:  Config{MAC: MACBarnesHut, Theta: 0.7, Kernel: softening.Plummer, Eps: 0.01},
		},
		{
			name: "abs/open/spline-minorder",
			cfg: Config{MAC: MACAbsoluteError, AccTol: 3e-4, Kernel: softening.Spline, Eps: 0.02,
				MinimumOrder: 2},
		},
		{
			name: "abs/periodic-ws1/dehnen",
			cfg: Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.DehnenK1, Eps: 0.02,
				Periodic: true, BoxSize: 1, WS: 1},
		},
		{
			name:   "abs/periodic-ws1-bg/plummer",
			rhoBar: 1,
			cfg: Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01,
				Periodic: true, BoxSize: 1, WS: 1},
		},
		{
			name:   "bh/periodic-ws1-bg/none",
			rhoBar: 1,
			cfg: Config{MAC: MACBarnesHut, Theta: 0.6, Kernel: softening.None,
				Periodic: true, BoxSize: 1, WS: 1},
		},
		{
			name:   "abs/periodic-ws2-lattice-bg/plummer",
			rhoBar: 1,
			cfg: Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01,
				Periodic: true, BoxSize: 1, WS: 2, LatticeOrder: 2},
		},
		// TreePM short-range mode: the rcut pruning and split damping must be
		// applied identically by both paths.  The cutoff is chosen so the
		// walk genuinely prunes (rcut well inside the box) while plenty of
		// undecided cells cross the cutoff band at every sink level.
		{
			name: "abs/periodic-ws1-split/plummer",
			cfg: Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01,
				Periodic: true, BoxSize: 1, WS: 1, SplitRS: 0.04},
		},
		{
			name: "bh/open-split/none",
			cfg: Config{MAC: MACBarnesHut, Theta: 0.6, Kernel: softening.None,
				SplitRS: 0.05, SplitRCut: 0.2},
		},
	}
}

// equivTrees builds the particle distributions the grid runs over: a uniform
// random box and a heavily clustered snapshot (deep, uneven tree).
func equivTrees(t *testing.T, rhoBar float64) map[string]*tree.Tree {
	t.Helper()
	out := map[string]*tree.Tree{}

	n := 1800
	if testing.Short() {
		n = 700 // keep the -race CI run fast; the full grid runs without -short
	}
	rng := rand.New(rand.NewSource(4))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1.0 / float64(n)
	}
	box := vec.CubeBox(vec.V3{}, 1)
	tr, err := tree.Build(pos, mass, box, tree.Options{Order: 4, LeafSize: 8, RhoBar: rhoBar})
	if err != nil {
		t.Fatal(err)
	}
	out["uniform"] = tr

	nc := 1500
	if testing.Short() {
		nc = 600
	}
	set := particle.Clustered(nc, 9)
	cp := make([]vec.V3, len(set.Pos))
	cm := make([]float64, len(set.Mass))
	copy(cp, set.Pos)
	total := 0.0
	for _, m := range set.Mass {
		total += m
	}
	for i, m := range set.Mass {
		// Normalize to unit total mass so the absolute tolerances of the
		// cases above mean the same thing as for the uniform distribution.
		cm[i] = m / total
	}
	tr2, err := tree.Build(cp, cm, box, tree.Options{Order: 4, LeafSize: 8, RhoBar: rhoBar})
	if err != nil {
		t.Fatal(err)
	}
	out["clustered"] = tr2
	return out
}

func TestListInheritMatchesLegacyGather(t *testing.T) {
	for _, tc := range equivCases() {
		for dist, tr := range equivTrees(t, tc.rhoBar) {
			w := NewWalker(tr, tc.cfg)
			refAcc, refPot, refCnt := w.forcesForAllLegacy(2)
			legacyWalks := w.LastStats.ReplicaWalks
			workerCounts := []int{1, 2, 4}
			if testing.Short() {
				workerCounts = []int{1, 3}
			}
			for _, workers := range workerCounts {
				name := fmt.Sprintf("%s/%s/workers=%d", tc.name, dist, workers)
				acc, pot, cnt := w.ForcesForAll(workers)
				if cnt != refCnt {
					t.Errorf("%s: counters differ: %+v vs %+v", name, cnt, refCnt)
				}
				bad := 0
				for i := range acc {
					if acc[i] != refAcc[i] || pot[i] != refPot[i] {
						bad++
						if bad <= 3 {
							t.Errorf("%s: particle %d differs: acc %v vs %v, pot %v vs %v",
								name, i, acc[i], refAcc[i], pot[i], refPot[i])
						}
					}
				}
				if bad > 3 {
					t.Errorf("%s: %d particles differ in total", name, bad)
				}
				if w.LastStats.Groups != refCnt.SinkCells {
					t.Errorf("%s: stats groups %d, want %d", name, w.LastStats.Groups, refCnt.SinkCells)
				}
				if w.LastStats.ReplicaWalks > legacyWalks {
					t.Errorf("%s: replica walks %d exceed legacy %d",
						name, w.LastStats.ReplicaWalks, legacyWalks)
				}
				if tc.cfg.Periodic {
					if w.LastStats.ReplicaWalks >= legacyWalks {
						t.Errorf("%s: replica walks %d did not improve on legacy %d",
							name, w.LastStats.ReplicaWalks, legacyWalks)
					}
					if w.LastStats.InheritedItems == 0 {
						t.Errorf("%s: no items were inherited — the hierarchy is not reusing lists", name)
					}
				}
			}
		}
	}
}

// TestInheritDeterministicAcrossWorkerCounts double-checks that the parallel
// task split itself cannot perturb results, independently of the legacy
// comparison above.
func TestInheritDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := equivTrees(t, 1)["clustered"]
	cfg := Config{MAC: MACAbsoluteError, AccTol: 1e-4, Kernel: softening.Plummer, Eps: 0.01,
		Periodic: true, BoxSize: 1, WS: 1}
	w := NewWalker(tr, cfg)
	refAcc, refPot, refCnt := w.ForcesForAll(1)
	for _, workers := range []int{2, 3, 8} {
		acc, pot, cnt := w.ForcesForAll(workers)
		if cnt != refCnt {
			t.Errorf("workers=%d: counters differ", workers)
		}
		for i := range acc {
			if acc[i] != refAcc[i] || pot[i] != refPot[i] {
				t.Fatalf("workers=%d: particle %d differs", workers, i)
			}
		}
	}
}
