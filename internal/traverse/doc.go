// Package traverse implements the 2HOT tree traversal: the multipole
// acceptance criterion (both the Barnes–Hut opening angle and the
// absolute-error criterion built on the Salmon–Warren error machinery),
// interaction-list construction with the m-by-n blocking of Section 3.3,
// background subtraction in both the far field (delta moments) and the near
// field (analytic uniform-cube removal), explicit periodic replicas and the
// far-lattice local expansion of Section 2.4, and the interaction counters
// behind the paper's flop accounting.
//
// # Contract
//
// The production entry point is Walker.ForcesForAll (inherit.go): the sink
// tree is descended top-down carrying a work list whose entries are either
// decided (far cells, near sources, background boxes every descendant sink
// treats identically) or open (cells whose acceptance still depends on which
// descendant asks); child sinks inherit the decided entries and spend
// acceptance tests only on the open frontier.  Work lists are offset-sorted
// by construction — the initial list holds one open entry per replica
// offset, and refinement expands an entry only into entries of the same
// offset — an invariant the refinement loop exploits to hoist the replica
// shift per run.  Resolved lists are applied through batched SoA kernels
// with pooled per-worker buffers.
//
// Two orthogonal restrictions compose with all of that:
//
//   - Walker.SinkActive prunes the descent to the sink groups holding at
//     least one active particle (a block-timestep substep).  Because every
//     group's interaction list is independent of all other groups, the
//     subset solve is exact, not approximate.
//   - Walker.SinkWork cuts the sink-subtree tasks into contiguous
//     per-worker shards of near-equal predicted weight (work feedback from
//     the previous step); under SinkActive the weights of pruned groups are
//     masked out first (domain.MaskWeights).
//
// # Bit-identity invariants
//
// The suites in this package pin, with exact float comparisons:
//
//   - ForcesForAll == forcesForAllLegacy (the original walk-from-root-per-
//     group traversal, kept unexported as the reference oracle) — per
//     particle and per interaction counter, across MACs, kernels, periodic
//     settings and worker counts (equiv_test.go);
//   - every worker count and both schedules (dynamic task pull vs static
//     work-weighted shards) produce identical bits (workshard_test.go);
//   - a SinkActive subset solve equals the full solve on every active
//     particle (active_test.go);
//   - a walker whose sink-distance bounds were transplanted across a
//     dirty-set rebuild (tree.Tree.Reuse segments, cached on the walker
//     between ResetTree calls) solves identically to a fresh walker
//     (active_test.go).
//
// # Concurrency model
//
// A Walker is single-client: one ForcesForAll call at a time, and the
// pooled per-worker state it retains between calls makes the struct itself
// non-reentrant.  Inside a call, worker goroutines own disjoint sink-subtree
// tasks and write disjoint particle ranges; the shared tree is read-only —
// which is also why trees with unresolved remote cells (fetches mutate the
// cell table) must be traversed with a single worker.
package traverse
