package traverse

import (
	"math"
	"runtime"
	"sync"

	"twohot/internal/cube"
	"twohot/internal/ewald"
	"twohot/internal/multipole"
	"twohot/internal/softening"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// MACType selects the multipole acceptance criterion.
type MACType int

const (
	// MACAbsoluteError accepts an interaction when the estimated
	// acceleration error is below AccTol (2HOT's production criterion).
	MACAbsoluteError MACType = iota
	// MACBarnesHut accepts when cellSize/distance < Theta.
	MACBarnesHut
)

// Config controls a traversal.
type Config struct {
	MAC    MACType
	Theta  float64 // Barnes-Hut opening angle
	AccTol float64 // absolute acceleration error tolerance (before multiplying by G)

	Kernel softening.Kernel
	Eps    float64 // softening scale (kernel support, or Plummer eps)

	G float64 // gravitational constant applied to the final accelerations

	// Periodic boundary handling (Section 2.4).
	Periodic     bool
	BoxSize      float64
	WS           int // explicit replica shells (2 in the paper); 0 disables replicas
	LatticeOrder int // local-expansion order for the far lattice; 0 disables it
	LatticeShell int // lattice summation extent (defaults inside ewald)

	// MinimumOrder forces every accepted cell interaction to be evaluated at
	// at least this order (the adaptive-order selection still upgrades when
	// the estimate requires it).
	MinimumOrder int

	// GroupSize caps the number of sink particles treated as one block
	// (m x n blocking); 0 uses the tree leaf size.
	GroupSize int

	// SplitRS, when positive, runs the traversal in TreePM short-range mode:
	// every interaction — multipole and particle-particle — is damped by the
	// erfc complement of the Gaussian force split at scale SplitRS
	// (softening.SplitFactors), pairs beyond SplitRCut are dropped exactly,
	// and source cells whose every body lies beyond SplitRCut of every sink
	// of a group are pruned from the walk (the pruning is exact with respect
	// to the truncated short-range force, not an approximation).  Accepted
	// cells apply the split factors at the sink-to-cell-center distance, the
	// GADGET-style scalar approximation; the Newtonian MAC error estimate
	// stays valid because truncation only ever shrinks the interaction.
	// Short-range mode composes with a mesh long range, so it requires
	// background subtraction and the far lattice to be off.
	SplitRS float64
	// SplitRCut is the short-range truncation radius in length units;
	// defaults to 4.5 * SplitRS (ignored when SplitRS is zero).
	SplitRCut float64
}

func (c *Config) defaults() {
	if c.Theta == 0 {
		c.Theta = 0.6
	}
	if c.G == 0 {
		c.G = 1
	}
	if c.Kernel == 0 && c.Eps == 0 {
		c.Kernel = softening.None
	}
	if c.SplitRS > 0 && c.SplitRCut == 0 {
		c.SplitRCut = 4.5 * c.SplitRS
	}
}

// Counters accumulates interaction statistics for one force computation.
type Counters struct {
	P2P         int64                         // particle-particle interactions
	CellByOrder [multipole.MaxOrder + 1]int64 // cell-body interactions by evaluated order
	BgCubes     int64                         // analytic near-field background cube interactions
	SinkCells   int64
	Sinks       int64
}

// Add merges other into c.
func (c *Counters) Add(o Counters) {
	c.P2P += o.P2P
	for i := range c.CellByOrder {
		c.CellByOrder[i] += o.CellByOrder[i]
	}
	c.BgCubes += o.BgCubes
	c.SinkCells += o.SinkCells
	c.Sinks += o.Sinks
}

// CellInteractions returns the total number of cell-body interactions.
func (c *Counters) CellInteractions() int64 {
	var t int64
	for _, v := range c.CellByOrder {
		t += v
	}
	return t
}

// Flops estimates the floating-point work using the per-interaction costs of
// the paper's accounting (28 flops per monopole, and the Cartesian tensor
// costs for the higher orders).
func (c *Counters) Flops() int64 {
	var f int64
	f += c.P2P * multipole.FlopsPerMonopole
	for q, n := range c.CellByOrder {
		switch {
		case q == 0:
			f += n * multipole.FlopsPerMonopole
		case q <= 2:
			f += n * multipole.FlopsPerQuadrupole
		case q <= 4:
			f += n * multipole.FlopsPerHexadecapole
		default:
			f += n * multipole.FlopsPerHexadecapole * int64(q*q) / 16
		}
	}
	f += c.BgCubes * 96
	return f
}

// Walker performs traversals over one tree.
type Walker struct {
	Tree *tree.Tree
	Cfg  Config

	// SinkWork, when non-nil with one weight per (sorted) particle, makes
	// ForcesForAll partition its sink subtree tasks into contiguous
	// per-worker shards of near-equal predicted weight using
	// domain.SplitWeighted — the shared-memory analogue of the paper's
	// work-weighted domain decomposition, fed by the previous step's
	// per-particle interaction counts.  Tasks write disjoint particle
	// ranges, so the results are bit-identical to the dynamic schedule;
	// only which goroutine computes what changes.
	SinkWork []float64
	// WorkOut, when non-nil with one slot per (sorted) particle, receives
	// each particle's interaction count (far cells + direct pairs +
	// background cubes) — the work feedback the next step's shards and the
	// distributed decomposition rebalance on.
	WorkOut []float64

	// SinkActive, when non-nil with one flag per (sorted) particle,
	// restricts ForcesForAll to the sink groups containing at least one
	// active particle: sink subtrees with no active particle are pruned
	// from the descent and never refine a work list.  Results are
	// specified for ACTIVE particles only, and for those they are
	// bit-identical to a full solve — each group's interaction list is
	// independent of which other groups run, which is what makes the
	// subset solve exact.  Inactive slots are unspecified: pruned groups
	// never write theirs, and inactive members of processed groups skip
	// the far-lattice/G post-pass (postProcess), so their partial sums
	// must never be read.
	SinkActive []bool

	// LastStats describes the traversal-internal work of the most recent
	// ForcesForAll call (list reuse, frontier size); it is bookkeeping
	// about how the lists were built, not physics, so it is deliberately
	// kept out of Counters.
	LastStats TraversalStats

	lattice *ewald.Lattice
	local   *multipole.Local
	offsets []vec.V3

	// Pooled state of the list-inheriting traversal (inherit.go), reused
	// across ForcesForAll calls so steady-state allocations stay near zero.
	sb     sinkBounds
	initWL worklist
	pool   []*inheritWS
	tasks  []inheritTask

	// Sink-bound cache across trees: sbPrev holds the bounds computed for
	// sbPrevFor (the tree ForcesForAll last ran on before ResetTree), so
	// subtrees the dirty-set rebuild copied verbatim can copy their bounds
	// instead of re-deriving them (see buildSinkBounds).  sbFor names the
	// tree w.sb currently describes.
	sbPrev             sinkBounds
	sbFor, sbPrevFor   *tree.Tree
	boundsReusedLatest int64

	// Pooled activity state (SinkActive): prefix sums of the active flags
	// over the sorted particle order, the per-particle group-active mask
	// and the masked shard weights derived from it.
	activePrefix []int32
	groupMask    []bool
	maskedWork   []float64
}

// NewWalker prepares a walker; for periodic configurations it precomputes the
// replica offsets and the far-lattice local expansion of the whole box.
func NewWalker(t *tree.Tree, cfg Config) *Walker {
	cfg.defaults()
	w := &Walker{Tree: t, Cfg: cfg}
	if cfg.Periodic {
		ws := cfg.WS
		if ws < 1 {
			ws = 1
		}
		w.offsets = append([]vec.V3{{0, 0, 0}}, ewald.ReplicaOffsets(ws, cfg.BoxSize)...)
		if cfg.LatticeOrder > 0 {
			order := cfg.LatticeOrder + t.Opt.Order
			lat := ewald.NewLattice(order, ws, cfg.BoxSize, cfg.LatticeShell)
			w.lattice = lat
			w.local = multipole.NewLocal(cfg.LatticeOrder, t.Root().Exp.Center)
			w.local.AddM2L(t.Root().Exp, lat.T)
		}
	} else {
		w.offsets = []vec.V3{{0, 0, 0}}
	}
	return w
}

// ResetTree points an existing walker at a freshly built tree, retaining
// everything that does not depend on the particle distribution: the replica
// offsets, the far-lattice sums (NewLattice is the expensive part of walker
// construction), the pooled per-worker traversal buffers, and the previous
// tree's sink bounds (the seed of the clean-subtree bound cache).  cfg replaces
// the walker's Config and must agree with the original on the fields the
// retained state was derived from — Periodic, BoxSize, WS, LatticeOrder and
// LatticeShell; scalar fields (AccTol, G, kernel) may change freely.  The
// box-summed local expansion is recomputed from the new tree's root moments,
// so a traversal after ResetTree is bit-identical to one on a freshly
// constructed walker.
func (w *Walker) ResetTree(t *tree.Tree, cfg Config) {
	cfg.defaults()
	if t != w.Tree {
		// Retire the current bounds to the cache side: if the new tree's
		// dirty-set rebuild copied subtrees from the old one, buildSinkBounds
		// transplants their bounds from sbPrev.
		w.sb, w.sbPrev = w.sbPrev, w.sb
		w.sbPrevFor, w.sbFor = w.sbFor, nil
	}
	w.Tree = t
	w.Cfg = cfg
	if w.lattice != nil {
		w.local = multipole.NewLocal(cfg.LatticeOrder, t.Root().Exp.Center)
		w.local.AddM2L(t.Root().Exp, w.lattice.T)
	}
}

// interactionList is the per-sink-cell gathering of work.
type interactionList struct {
	cells     []*tree.Cell
	cellOff   []vec.V3
	srcPos    []vec.V3
	srcMass   []float64
	bgBoxes   []vec.Box
	bgOffsets []vec.V3
}

func (il *interactionList) reset() {
	il.cells = il.cells[:0]
	il.cellOff = il.cellOff[:0]
	il.srcPos = il.srcPos[:0]
	il.srcMass = il.srcMass[:0]
	il.bgBoxes = il.bgBoxes[:0]
	il.bgOffsets = il.bgOffsets[:0]
}

// sinkGroup describes one block of sink particles (normally a leaf cell).
type sinkGroup struct {
	center vec.V3
	radius float64
	first  int
	count  int
}

// forcesForAllLegacy computes forces with the original per-group traversal:
// every sink leaf cell walks the tree from the root once per replica offset.
// It survives only as the reference oracle for the list-inheriting path
// (ForcesForAll) — the equivalence suite proves the two are bit-identical —
// and as the baseline of the in-package traversal benchmark; production
// callers were retired after the PR 2 bake-in and the symbol is deliberately
// unexported.  SinkActive is ignored.  The returned slices are indexed like
// the tree's (key-sorted) particle arrays.
func (w *Walker) forcesForAllLegacy(nWorkers int) ([]vec.V3, []float64, Counters) {
	w.checkSplitConfig()
	t := w.Tree
	n := len(t.Pos)
	acc := make([]vec.V3, n)
	pot := make([]float64, n)
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	leaves := t.Leaves()
	groups := make([]sinkGroup, 0, len(leaves))
	for _, li := range leaves {
		c := t.Cell[li]
		groups = append(groups, sinkGroup{
			center: c.Center,
			radius: sinkRadius(t, c),
			first:  c.First,
			count:  c.NBodies,
		})
	}

	var total Counters
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int, len(groups))
	for i := range groups {
		next <- i
	}
	close(next)

	for wk := 0; wk < nWorkers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var il interactionList
			scratch := make([]float64, multipole.ScratchSize(t.Opt.Order))
			var local Counters
			for gi := range next {
				g := groups[gi]
				w.forcesForGroup(g, &il, scratch, acc, pot, &local)
			}
			mu.Lock()
			total.Add(local)
			mu.Unlock()
		}()
	}
	wg.Wait()

	w.postProcess(acc, pot, nWorkers)
	walks := int64(len(groups)) * int64(len(w.offsets))
	w.LastStats = TraversalStats{
		Groups:        int64(len(groups)),
		ReplicaWalks:  walks,
		FrontierWalks: walks,
	}
	return acc, pot, total
}

// postProcess adds the far-lattice local expansion and applies the final
// scaling by G, over nWorkers goroutines.  Every particle's contribution is
// independent, so the parallel split does not change a single bit.  Inactive
// particles of a subset solve are skipped — their slots are unspecified
// anyway, and the far-lattice evaluation is the one per-particle cost that
// would otherwise still scale with the full particle count.
func (w *Walker) postProcess(acc []vec.V3, pot []float64, nWorkers int) {
	t := w.Tree
	active := w.SinkActive
	ParallelRange(len(acc), nWorkers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if active != nil && !active[i] {
				continue
			}
			if w.local != nil {
				res := w.local.Evaluate(t.Pos[i])
				acc[i] = acc[i].Add(res.Acc)
				pot[i] += res.Phi
			}
			acc[i] = acc[i].Scale(w.Cfg.G)
			pot[i] *= w.Cfg.G
		}
	})
}

// ParallelRange splits [0,n) into contiguous chunks executed concurrently on
// up to `workers` goroutines (inline when workers <= 1 or n is small).  It is
// shared by the traversal post-pass and core's direct solvers for
// embarrassingly-parallel per-particle loops.
func ParallelRange(n, workers int, body func(lo, hi int)) {
	if workers <= 1 || n < 2*workers {
		body(0, n)
		return
	}
	done := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		launched++
		go func(lo, hi int) {
			body(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
}

// checkSplitConfig rejects short-range-mode configurations that silently
// double-count the long range: background subtraction folds the mean density
// into the walk and the far lattice sums the infinite replica field — both
// belong to the mesh half of a TreePM split, never to the rcut-truncated
// short range.
func (w *Walker) checkSplitConfig() {
	if w.Cfg.SplitRS <= 0 {
		return
	}
	if w.Tree.RhoBar() > 0 {
		panic("traverse: short-range split mode requires background subtraction off")
	}
	if w.local != nil {
		panic("traverse: short-range split mode requires the far lattice off")
	}
}

// sinkRadius is the maximum distance from the cell center to any of its
// bodies.
func sinkRadius(t *tree.Tree, c *tree.Cell) float64 {
	r := 0.0
	for i := c.First; i < c.First+c.NBodies; i++ {
		if d := t.Pos[i].Dist(c.Center); d > r {
			r = d
		}
	}
	return r
}

// forcesForGroup gathers the interaction list for one sink group and applies
// it to every sink particle in the group (the m x n blocking: the list
// construction cost is shared by all sinks of the group).
func (w *Walker) forcesForGroup(g sinkGroup, il *interactionList, scratch []float64,
	acc []vec.V3, pot []float64, counters *Counters) {
	t := w.Tree
	counters.SinkCells++
	counters.Sinks += int64(g.count)

	il.reset()
	for _, off := range w.offsets {
		w.gather(t.Root(), off, g, il)
	}

	if w.WorkOut != nil {
		gw := float64(len(il.cells)) + float64(len(il.srcPos)) + float64(len(il.bgBoxes))
		for i := g.first; i < g.first+g.count; i++ {
			w.WorkOut[i] = gw
		}
	}
	for i := g.first; i < g.first+g.count; i++ {
		a, p := w.applyList(t.Pos[i], il, scratch, counters)
		acc[i] = acc[i].Add(a)
		pot[i] += p
	}
}

// applyList applies a gathered interaction list to one sink position: the
// cell interactions (adaptively choosing the evaluation order), the direct
// particle-particle interactions, and the analytic near-field background
// cubes.  It is shared by forcesForGroup and ForceAt so the three application
// loops exist exactly once.
func (w *Walker) applyList(x vec.V3, il *interactionList, scratch []float64, counters *Counters) (vec.V3, float64) {
	var a vec.V3
	var p float64
	splitRS := w.Cfg.SplitRS
	for ci, c := range il.cells {
		xRel := x.Sub(il.cellOff[ci])
		dist := xRel.Dist(c.Exp.Center)
		q := w.chooseOrder(c, dist)
		res := c.Exp.EvaluateTruncated(xRel, q, scratch)
		if splitRS > 0 {
			// Scalar split damping at the cell-center distance (the
			// GADGET-style short-range multipole approximation).
			sff, spf := softening.SplitFactors(dist, splitRS)
			res.Acc = res.Acc.Scale(sff)
			res.Phi *= spf
		}
		a = a.Add(res.Acc)
		p += res.Phi
		counters.CellByOrder[q]++
	}
	// Direct particle-particle interactions.
	rcut2 := w.Cfg.SplitRCut * w.Cfg.SplitRCut
	for j := range il.srcPos {
		d := il.srcPos[j].Sub(x)
		r2 := d.Norm2()
		if r2 == 0 {
			continue
		}
		if splitRS > 0 && r2 > rcut2 {
			continue
		}
		r := math.Sqrt(r2)
		ff := softening.ForceFactor(w.Cfg.Kernel, r, w.Cfg.Eps)
		pf := softening.PotentialFactor(w.Cfg.Kernel, r, w.Cfg.Eps)
		if splitRS > 0 {
			sff, spf := softening.SplitFactors(r, splitRS)
			ff *= sff
			pf *= spf
		}
		m := il.srcMass[j]
		a = a.Add(d.Scale(m * ff))
		p += m * pf
	}
	counters.P2P += int64(len(il.srcPos))
	// Near-field background removal (analytic cubes of density -rhobar).
	for bi := range il.bgBoxes {
		xRel := x.Sub(il.bgOffsets[bi])
		ba, bp := cube.BackgroundAccel(il.bgBoxes[bi], w.Tree.RhoBar(), xRel)
		a = a.Add(ba)
		p += bp
		counters.BgCubes++
	}
	return a, p
}

// chooseOrder returns the lowest expansion order whose error estimate meets
// the tolerance (never below MinimumOrder, never above the stored order).
func (w *Walker) chooseOrder(c *tree.Cell, d float64) int {
	p := c.Exp.P
	if w.Cfg.MAC == MACBarnesHut {
		return p
	}
	for q := w.Cfg.MinimumOrder; q < p; q++ {
		if c.Exp.AccelErrorEstimate(q, d) <= w.Cfg.AccTol {
			return q
		}
	}
	return p
}

// gather walks the (possibly replica-shifted) tree and fills the interaction
// list for a sink group.  off is added to all source positions; equivalently
// the sink is evaluated at x-off against the unshifted sources.
func (w *Walker) gather(c *tree.Cell, off vec.V3, g sinkGroup, il *interactionList) {
	t := w.Tree
	srcCenter := c.Center.Add(off)
	dCenter := srcCenter.Dist(g.center)
	d := dCenter - g.radius

	// Short-range mode: the closest possible sink-body pair is at least
	// d - Bmax away, so beyond the cutoff the whole subtree contributes
	// nothing to the truncated force and is pruned.
	if w.Cfg.SplitRS > 0 && d > w.Cfg.SplitRCut+c.Exp.Bmax {
		return
	}

	if w.accept(c, d) {
		il.cells = append(il.cells, c)
		il.cellOff = append(il.cellOff, off)
		return
	}

	if c.Leaf {
		pos, mass := t.LeafParticles(c)
		for i := range pos {
			il.srcPos = append(il.srcPos, pos[i].Add(off))
			il.srcMass = append(il.srcMass, mass[i])
		}
		if t.RhoBar() > 0 {
			il.bgBoxes = append(il.bgBoxes, c.Box())
			il.bgOffsets = append(il.bgOffsets, off)
		}
		return
	}

	// Open the cell: recurse into present children and, when background
	// subtraction is active, account for the empty octants analytically.
	for oct := 0; oct < 8; oct++ {
		child := t.Child(c, oct)
		if child != nil {
			w.gather(child, off, g, il)
			continue
		}
		if t.RhoBar() > 0 {
			il.bgBoxes = append(il.bgBoxes, octantBox(c, oct))
			il.bgOffsets = append(il.bgOffsets, off)
		}
	}
}

// octantBox returns the spatial region of child octant oct of cell c.
func octantBox(c *tree.Cell, oct int) vec.Box {
	h := c.Size / 2
	lo := c.Center.Sub(vec.V3{h, h, h})
	half := c.Size / 2
	// Octant bit layout follows the Morton interleave: bit2 = x, bit1 = y,
	// bit0 = z.
	if oct&4 != 0 {
		lo[0] += half
	}
	if oct&2 != 0 {
		lo[1] += half
	}
	if oct&1 != 0 {
		lo[2] += half
	}
	return vec.CubeBox(lo, half)
}

// accept applies the multipole acceptance criterion for a source cell at
// effective distance d (center distance minus sink radius).
func (w *Walker) accept(c *tree.Cell, d float64) bool {
	// Never accept the interaction if the sink may be inside or touching the
	// source's body distribution.
	if d <= c.Exp.Bmax || d <= 0 {
		return false
	}
	// A cell with very few bodies is cheaper to open than to expand, unless
	// it is remote (remote leaves were already shipped with their bodies).
	if c.Leaf && c.NBodies <= 2 && !c.Remote && w.Tree.RhoBar() == 0 {
		return false
	}
	switch w.Cfg.MAC {
	case MACBarnesHut:
		return multipole.BHAccept(c.Size, c.Exp.Bmax, d, w.Cfg.Theta)
	default:
		return c.Exp.AccelErrorEstimate(c.Exp.P, d) <= w.Cfg.AccTol
	}
}

// ForceAt evaluates the field at an arbitrary position (e.g. a test point or
// a lightcone sample), without self-exclusion.
func (w *Walker) ForceAt(x vec.V3) (vec.V3, float64) {
	w.checkSplitConfig()
	t := w.Tree
	var il interactionList
	scratch := make([]float64, multipole.ScratchSize(t.Opt.Order))
	var counters Counters
	g := sinkGroup{center: x, radius: 0, first: 0, count: 0}
	for _, off := range w.offsets {
		w.gather(t.Root(), off, g, &il)
	}
	a, p := w.applyList(x, &il, scratch, &counters)
	if w.local != nil {
		res := w.local.Evaluate(x)
		a = a.Add(res.Acc)
		p += res.Phi
	}
	return a.Scale(w.Cfg.G), p * w.Cfg.G
}
