package traverse

// Equivalence suite for the activity-restricted traversal and the
// clean-subtree sink-bound cache: a subset solve must return, for every
// active particle, exactly the bits of a full solve, for every worker count;
// and a walker whose sink bounds were transplanted across a dirty-set
// rebuild must solve bit-identically to a fresh walker on the same tree.

import (
	"fmt"
	"math/rand"
	"testing"

	"twohot/internal/softening"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// activeCases is a subset of the equivalence grid that covers the paths the
// activity mask interacts with: plain open boundaries, periodic replicas
// with background subtraction, and the far-lattice post-pass.
func activeCases() []equivCase {
	all := equivCases()
	return []equivCase{all[0], all[4], all[6]}
}

func TestActiveSubsetMatchesFullSolve(t *testing.T) {
	for _, tc := range activeCases() {
		for dist, tr := range equivTrees(t, tc.rhoBar) {
			w := NewWalker(tr, tc.cfg)
			n := len(tr.Pos)
			workFull := make([]float64, n)
			w.WorkOut = workFull
			refAcc, refPot, _ := w.ForcesForAll(2)
			w.WorkOut = nil

			for _, frac := range []float64{0.05, 0.5, 1.0} {
				rng := rand.New(rand.NewSource(11))
				active := make([]bool, n)
				nActive := 0
				for i := range active {
					if rng.Float64() < frac {
						active[i] = true
						nActive++
					}
				}
				if nActive == 0 {
					active[0] = true
					nActive = 1
				}
				for _, workers := range []int{1, 2, 4} {
					name := fmt.Sprintf("%s/%s/frac=%g/workers=%d", tc.name, dist, frac, workers)
					workSub := make([]float64, n)
					w.SinkActive = active
					w.WorkOut = workSub
					acc, pot, _ := w.ForcesForAll(workers)
					w.SinkActive = nil
					w.WorkOut = nil
					for i := range acc {
						if !active[i] {
							continue
						}
						if acc[i] != refAcc[i] || pot[i] != refPot[i] {
							t.Fatalf("%s: active particle %d differs: acc %v vs %v, pot %v vs %v",
								name, i, acc[i], refAcc[i], pot[i], refPot[i])
						}
						if workSub[i] != workFull[i] {
							t.Fatalf("%s: active particle %d work differs: %g vs %g",
								name, i, workSub[i], workFull[i])
						}
					}
					if frac < 1 && nActive < n/2 && w.LastStats.PrunedInactive == 0 {
						t.Errorf("%s: sparse activity pruned nothing", name)
					}
					if frac == 1.0 && w.LastStats.PrunedInactive != 0 {
						t.Errorf("%s: fully active solve pruned %d subtrees",
							name, w.LastStats.PrunedInactive)
					}
				}
			}
		}
	}
}

// TestActiveSubsetAllInactive pins the degenerate case: no active sinks means
// no work and all-zero outputs.
func TestActiveSubsetAllInactive(t *testing.T) {
	tr := equivTrees(t, 1)["clustered"]
	cfg := Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01,
		Periodic: true, BoxSize: 1, WS: 1}
	w := NewWalker(tr, cfg)
	w.SinkActive = make([]bool, len(tr.Pos))
	acc, pot, cnt := w.ForcesForAll(2)
	w.SinkActive = nil
	if cnt != (Counters{}) {
		t.Errorf("all-inactive solve did work: %+v", cnt)
	}
	for i := range acc {
		if acc[i] != (vec.V3{}) || pot[i] != 0 {
			t.Fatalf("all-inactive solve wrote particle %d", i)
		}
	}
}

// driftSubsetPos mirrors the tree package's partial-drift helper.
func driftSubsetPos(pos []vec.V3, frac, sigma float64, seed int64) ([]vec.V3, []bool) {
	rng := rand.New(rand.NewSource(seed))
	out := append([]vec.V3(nil), pos...)
	dirty := make([]bool, len(pos))
	for i := range out {
		if rng.Float64() >= frac {
			continue
		}
		dirty[i] = true
		out[i] = vec.V3{
			vec.PeriodicWrap(out[i][0]+sigma*rng.NormFloat64(), 1),
			vec.PeriodicWrap(out[i][1]+sigma*rng.NormFloat64(), 1),
			vec.PeriodicWrap(out[i][2]+sigma*rng.NormFloat64(), 1),
		}
	}
	return out, dirty
}

// TestSinkBoundCacheMatchesFreshWalker drives the full cross-step pipeline:
// solve on step-0's tree, rebuild with the dirty-set path, ResetTree, solve
// again — the cached-bounds solve must be bit-identical to a fresh walker on
// an identically built tree, and must actually have transplanted bounds.
func TestSinkBoundCacheMatchesFreshWalker(t *testing.T) {
	n := 1500
	box := vec.CubeBox(vec.V3{}, 1)
	rng := rand.New(rand.NewSource(21))
	pos0 := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos0 {
		pos0[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1.0 / float64(n)
	}
	cfg := Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01,
		Periodic: true, BoxSize: 1, WS: 1}
	opt := tree.Options{Order: 4, LeafSize: 8, RhoBar: 1, Workers: 1}
	var sc tree.BuildScratch

	p0 := append([]vec.V3(nil), pos0...)
	m0 := append([]float64(nil), mass...)
	o0 := opt
	o0.Scratch = &sc
	t0, err := tree.Build(p0, m0, box, o0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(t0, cfg)
	w.ForcesForAll(2) // computes and retains t0's sink bounds

	pos1, dirty := driftSubsetPos(pos0, 0.03, 1e-4, 5)
	p1 := append([]vec.V3(nil), pos1...)
	m1 := append([]float64(nil), mass...)
	o1 := opt
	o1.Scratch = &sc
	o1.Previous = t0
	o1.Dirty = dirty
	t1, err := tree.Build(p1, m1, box, o1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Reuse) == 0 {
		t.Fatal("dirty rebuild recorded no reuse segments")
	}

	w.ResetTree(t1, cfg)
	acc, pot, cnt := w.ForcesForAll(2)
	if w.LastStats.BoundsReusedCells == 0 {
		t.Error("no sink bounds were transplanted across the rebuild")
	}

	// Reference: an identically built tree traversed by a fresh walker.
	pr := append([]vec.V3(nil), pos1...)
	mr := append([]float64(nil), mass...)
	tRef, err := tree.Build(pr, mr, box, opt)
	if err != nil {
		t.Fatal(err)
	}
	wRef := NewWalker(tRef, cfg)
	refAcc, refPot, refCnt := wRef.ForcesForAll(2)
	if cnt != refCnt {
		t.Errorf("counters differ: %+v vs %+v", cnt, refCnt)
	}
	for i := range acc {
		if acc[i] != refAcc[i] || pot[i] != refPot[i] {
			t.Fatalf("particle %d differs under cached sink bounds", i)
		}
	}
}

// BenchmarkLegacyVsInherit keeps the legacy-oracle timing baseline alive
// in-package now that forcesForAllLegacy is unexported (the root
// BenchmarkTraversal tracks only the production path).
func BenchmarkLegacyVsInherit(b *testing.B) {
	n := 4000
	rng := rand.New(rand.NewSource(17))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1.0 / float64(n)
	}
	box := vec.CubeBox(vec.V3{}, 1)
	tr, err := tree.Build(pos, mass, box, tree.Options{Order: 4, LeafSize: 16, RhoBar: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: 1e-4,
		Kernel: softening.Plummer, Eps: 0.01, Periodic: true, BoxSize: 1, WS: 1})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.forcesForAllLegacy(1)
		}
	})
	b.Run("inherit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.ForcesForAll(1)
		}
	})
}
