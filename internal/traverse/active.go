package traverse

// Activity-restricted traversal support (Walker.SinkActive).
//
// A block-timestep substep only needs forces for the particles on its active
// rungs.  Because every sink group's interaction list is built independently
// of all other groups, a subset solve that simply skips the sink subtrees
// without active particles returns, for every ACTIVE particle, exactly the
// bits a full solve would have produced — no re-derivation, no tolerance.
// (Inactive slots are unspecified even inside processed groups: they skip
// the far-lattice/G post-pass.)  This file holds the bookkeeping that makes the skip cheap: a
// prefix-sum over the active flags in sorted particle order decides in O(1)
// whether any cell's particle range holds an active sink, and the per-group
// activity mask feeds the work-weighted shard split so the static schedule
// balances only the work the substep will actually do.

import "twohot/internal/tree"

// prepareActivity builds the prefix-sum over SinkActive (sorted order) and
// returns the total number of active particles.  Must be called after the
// walker's tree is current.
func (w *Walker) prepareActivity() int {
	n := len(w.Tree.Pos)
	tree.GrowSlice(&w.activePrefix, n+1)
	w.activePrefix[0] = 0
	for i, a := range w.SinkActive {
		v := w.activePrefix[i]
		if a {
			v++
		}
		w.activePrefix[i+1] = v
	}
	return int(w.activePrefix[n])
}

// subtreeActive reports whether the cell's particle range contains at least
// one active sink (always true for full solves).
func (w *Walker) subtreeActive(idx int32) bool {
	if w.SinkActive == nil {
		return true
	}
	return w.cellActive(w.Tree.Cell[idx])
}

// cellActive is subtreeActive for a cell already in hand; the caller must
// have checked that an activity mask is present.
func (w *Walker) cellActive(c *tree.Cell) bool {
	return w.activePrefix[c.First+c.NBodies] > w.activePrefix[c.First]
}

// groupActiveMask fills the pooled per-particle mask that marks every
// particle belonging to a sink group with at least one active particle.
// Those are the particles a subset solve actually pays for — a processed
// group applies its lists to all of its members — so they, and only they,
// should contribute weight to the static shard split.
func (w *Walker) groupActiveMask() []bool {
	t := w.Tree
	n := len(t.Pos)
	mask := tree.GrowSlice(&w.groupMask, n)
	for i := range mask {
		mask[i] = false
	}
	for _, c := range t.Cell {
		if !c.Leaf || c.Remote || !w.cellActive(c) {
			continue
		}
		for p := c.First; p < c.First+c.NBodies; p++ {
			mask[p] = true
		}
	}
	return mask
}
