package traverse

import (
	"math"
	"math/rand"
	"testing"

	"twohot/internal/softening"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

func buildTestTree(t *testing.T, n int, opt tree.Options) *tree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1.0 / float64(n)
	}
	box := vec.CubeBox(vec.V3{}, 1)
	tr, err := tree.Build(pos, mass, box, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func directAccel(tr *tree.Tree, i int, kernel softening.Kernel, eps float64) vec.V3 {
	var a vec.V3
	for j := range tr.Pos {
		if j == i {
			continue
		}
		d := tr.Pos[j].Sub(tr.Pos[i])
		r := d.Norm()
		a = a.Add(d.Scale(tr.Mass[j] * softening.ForceFactor(kernel, r, eps)))
	}
	return a
}

func TestWalkerAccuracyScalesWithTolerance(t *testing.T) {
	tr := buildTestTree(t, 1500, tree.Options{Order: 4, LeafSize: 8})
	prev := 0.0
	for _, tol := range []float64{1e-2, 1e-4, 1e-6} {
		w := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: tol, Kernel: softening.Plummer, Eps: 0.01})
		acc, _, counters := w.ForcesForAll(2)
		// Measure the error on a sample of particles.
		rms := 0.0
		refRMS := 0.0
		for s := 0; s < 50; s++ {
			i := s * len(acc) / 50
			ref := directAccel(tr, i, softening.Plummer, 0.01)
			rms += acc[i].Sub(ref).Norm2()
			refRMS += ref.Norm2()
		}
		err := math.Sqrt(rms / refRMS)
		if prev != 0 && err > prev*2 {
			t.Errorf("error did not improve when tightening tolerance: %g -> %g", prev, err)
		}
		if counters.CellInteractions() == 0 || counters.P2P == 0 {
			t.Error("no interactions counted")
		}
		prev = err
	}
	if prev > 1e-4 {
		t.Errorf("error at the tightest tolerance is %g", prev)
	}
}

func TestCountersAndFlops(t *testing.T) {
	tr := buildTestTree(t, 800, tree.Options{Order: 4, LeafSize: 8})
	w := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: 1e-4, Kernel: softening.Plummer, Eps: 0.01})
	_, _, c := w.ForcesForAll(1)
	if c.Sinks != int64(len(tr.Pos)) {
		t.Errorf("sink count %d, want %d", c.Sinks, len(tr.Pos))
	}
	if c.Flops() <= 0 {
		t.Error("flop accounting is zero")
	}
	var sum Counters
	sum.Add(c)
	sum.Add(c)
	if sum.P2P != 2*c.P2P || sum.CellInteractions() != 2*c.CellInteractions() {
		t.Error("Counters.Add broken")
	}
}

func TestBarnesHutMACMatchesAbsolute(t *testing.T) {
	tr := buildTestTree(t, 1000, tree.Options{Order: 2, LeafSize: 8})
	bh := NewWalker(tr, Config{MAC: MACBarnesHut, Theta: 0.4, Kernel: softening.Plummer, Eps: 0.01})
	accBH, _, _ := bh.ForcesForAll(1)
	abs := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: 1e-6, Kernel: softening.Plummer, Eps: 0.01})
	accAbs, _, _ := abs.ForcesForAll(1)
	rms, ref := 0.0, 0.0
	for i := range accBH {
		rms += accBH[i].Sub(accAbs[i]).Norm2()
		ref += accAbs[i].Norm2()
	}
	if math.Sqrt(rms/ref) > 5e-3 {
		t.Errorf("BH theta=0.4 differs from tight absolute-error forces by %g rms", math.Sqrt(rms/ref))
	}
}

func TestForceAtMatchesDirectSum(t *testing.T) {
	tr := buildTestTree(t, 600, tree.Options{Order: 4, LeafSize: 8})
	w := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: 1e-7, Kernel: softening.None})
	x := vec.V3{1.7, 1.4, 1.9}
	a, phi := w.ForceAt(x)
	var ref vec.V3
	var refPhi float64
	for i := range tr.Pos {
		d := tr.Pos[i].Sub(x)
		r := d.Norm()
		ref = ref.Add(d.Scale(tr.Mass[i] / (r * r * r)))
		refPhi += tr.Mass[i] / r
	}
	if a.Sub(ref).Norm()/ref.Norm() > 1e-5 {
		t.Errorf("ForceAt %v vs direct %v", a, ref)
	}
	if math.Abs(phi-refPhi)/refPhi > 1e-5 {
		t.Errorf("potential %g vs direct %g", phi, refPhi)
	}
}
