package traverse

// Correctness suite for the TreePM short-range traversal mode (Config.SplitRS):
// the rcut-pruned walk must reproduce the truncated erfc-complement pair sum
// exactly when the MAC never accepts, must stay within MAC accuracy of it when
// it does, and the pruning must actually remove work.  The legacy/inherit
// bit-equivalence of the mode itself is covered by the split cases of
// equiv_test.go.

import (
	"math"
	"testing"

	"twohot/internal/softening"
	"twohot/internal/vec"
)

// directTruncated sums the short-range force over all pairs and the 27
// replica images with the same kernel factors as the traversal's split mode —
// the exact definition of the truncated short-range force the walk
// approximates.
func directTruncated(pos []vec.V3, mass []float64, box float64, kernel softening.Kernel, eps, rs, rcut float64) ([]vec.V3, []float64) {
	acc := make([]vec.V3, len(pos))
	pot := make([]float64, len(pos))
	rcut2 := rcut * rcut
	for i := range pos {
		for ox := -1; ox <= 1; ox++ {
			for oy := -1; oy <= 1; oy++ {
				for oz := -1; oz <= 1; oz++ {
					off := vec.V3{box * float64(ox), box * float64(oy), box * float64(oz)}
					for j := range pos {
						d := pos[j].Add(off).Sub(pos[i])
						r2 := d.Norm2()
						if r2 == 0 || r2 > rcut2 {
							continue
						}
						r := math.Sqrt(r2)
						ff, pf := softening.Factors(kernel, r, eps)
						sff, spf := softening.SplitFactors(r, rs)
						acc[i] = acc[i].Add(d.Scale(mass[j] * ff * sff))
						pot[i] += mass[j] * pf * spf
					}
				}
			}
		}
	}
	return acc, pot
}

func TestSplitShortRangeMatchesTruncatedDirect(t *testing.T) {
	trees := equivTrees(t, 0)
	const rs, rcut = 0.04, 0.18
	for dist, tr := range trees {
		ref, refPot := directTruncated(tr.Pos, tr.Mass, 1, softening.Plummer, 0.01, rs, rcut)

		// AccTol = 0: the MAC never accepts, so every unpruned cell opens to
		// particles and the walk evaluates exactly the truncated pair sum —
		// only the accumulation order differs from the direct reference.
		exact := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: 0,
			Kernel: softening.Plummer, Eps: 0.01,
			Periodic: true, BoxSize: 1, WS: 1, SplitRS: rs, SplitRCut: rcut})
		acc, pot, cnt := exact.ForcesForAll(2)
		if cnt.CellInteractions() != 0 {
			t.Errorf("%s: AccTol=0 walk still accepted %d cells", dist, cnt.CellInteractions())
		}
		scale := 0.0
		for i := range ref {
			scale += ref[i].Norm2()
		}
		scale = math.Sqrt(scale / float64(len(ref)))
		for i := range ref {
			if diff := acc[i].Sub(ref[i]).Norm(); diff > 1e-12*scale {
				t.Fatalf("%s: particle %d: exact walk deviates %g from direct truncated sum", dist, i, diff)
			}
			if dp := math.Abs(pot[i] - refPot[i]); dp > 1e-10*(math.Abs(refPot[i])+1e-30) {
				t.Fatalf("%s: particle %d: potential deviates %g", dist, i, dp)
			}
		}

		// A production tolerance must engage the multipole acceptance and stay
		// within MAC-class accuracy of the truncated sum.
		mac := NewWalker(tr, Config{MAC: MACAbsoluteError, AccTol: 1e-4,
			Kernel: softening.Plummer, Eps: 0.01,
			Periodic: true, BoxSize: 1, WS: 1, SplitRS: rs, SplitRCut: rcut})
		macc, _, mcnt := mac.ForcesForAll(2)
		if mcnt.CellInteractions() == 0 {
			t.Errorf("%s: production walk accepted no cells — the MAC never engaged", dist)
		}
		rms := 0.0
		for i := range ref {
			rms += macc[i].Sub(ref[i]).Norm2()
		}
		rms = math.Sqrt(rms / float64(len(ref)))
		if rel := rms / scale; rel > 2e-2 {
			t.Errorf("%s: MAC walk rms error %.3e vs truncated direct sum", dist, rel)
		}
		if mcnt.P2P >= cnt.P2P {
			t.Errorf("%s: MAC walk did not reduce P2P work (%d vs %d)", dist, mcnt.P2P, cnt.P2P)
		}
	}
}

// TestSplitPruningRemovesWork pins that the rcut cutoff prunes the walk, not
// just the per-pair sum: against an effectively infinite cutoff at the same
// split scale, the real cutoff must cut the direct interactions sharply.
func TestSplitPruningRemovesWork(t *testing.T) {
	tr := equivTrees(t, 0)["uniform"]
	base := Config{MAC: MACAbsoluteError, AccTol: 0, Kernel: softening.Plummer, Eps: 0.01,
		Periodic: true, BoxSize: 1, WS: 1, SplitRS: 0.04}

	pruned := base
	pruned.SplitRCut = 0.18
	wp := NewWalker(tr, pruned)
	_, _, cntP := wp.ForcesForAll(1)

	open := base
	open.SplitRCut = 100 // beyond every replica: nothing prunes
	wo := NewWalker(tr, open)
	_, _, cntO := wo.ForcesForAll(1)

	if cntP.P2P*10 >= cntO.P2P {
		t.Errorf("rcut pruning kept %d of %d direct interactions — the walk is not pruning", cntP.P2P, cntO.P2P)
	}
}
