package traverse

import (
	"math/rand"
	"testing"

	"twohot/internal/domain"
	"twohot/internal/softening"
)

// This file covers the work-feedback scheduling additions: per-particle work
// recording (WorkOut) and the static work-weighted shard schedule (SinkWork).
// The shard schedule changes only which goroutine runs which task, so it must
// be bit-identical to the dynamic schedule; the recorded work must reproduce
// the interaction counters when summed.

func workCfg() Config {
	return Config{MAC: MACAbsoluteError, AccTol: 1e-3, Kernel: softening.Plummer, Eps: 0.01,
		Periodic: true, BoxSize: 1, WS: 1}
}

func TestWorkOutSumsToCounters(t *testing.T) {
	tr := equivTrees(t, 1)["clustered"]
	w := NewWalker(tr, workCfg())
	w.WorkOut = make([]float64, len(tr.Pos))
	_, _, cnt := w.ForcesForAll(2)
	sum := 0.0
	for _, v := range w.WorkOut {
		sum += v
	}
	want := float64(cnt.P2P + cnt.CellInteractions() + cnt.BgCubes)
	if sum != want {
		t.Errorf("sum(WorkOut) = %v, want counters total %v", sum, want)
	}

	// The legacy oracle records the same per-particle work.
	legacy := NewWalker(tr, workCfg())
	legacy.WorkOut = make([]float64, len(tr.Pos))
	legacy.forcesForAllLegacy(2)
	for i := range w.WorkOut {
		if w.WorkOut[i] != legacy.WorkOut[i] {
			t.Fatalf("particle %d: inherit work %v, legacy work %v", i, w.WorkOut[i], legacy.WorkOut[i])
		}
	}
}

func TestWorkShardedScheduleBitIdentical(t *testing.T) {
	tr := equivTrees(t, 0)["clustered"]
	cfg := Config{MAC: MACAbsoluteError, AccTol: 1e-4, Kernel: softening.None}

	dyn := NewWalker(tr, cfg)
	refAcc, refPot, refCnt := dyn.ForcesForAll(4)

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		w := NewWalker(tr, cfg)
		w.SinkWork = make([]float64, len(tr.Pos))
		for i := range w.SinkWork {
			switch trial {
			case 0: // uniform weights
				w.SinkWork[i] = 1
			case 1: // realistic: skewed positive weights
				w.SinkWork[i] = 1 + 100*rng.Float64()*rng.Float64()
			default: // adversarial: zero and negative junk
				w.SinkWork[i] = float64(rng.Intn(3) - 1)
			}
		}
		for _, workers := range []int{2, 4, 7} {
			acc, pot, cnt := w.ForcesForAll(workers)
			if cnt != refCnt {
				t.Fatalf("trial %d workers=%d: counters differ", trial, workers)
			}
			for i := range acc {
				if acc[i] != refAcc[i] || pot[i] != refPot[i] {
					t.Fatalf("trial %d workers=%d: particle %d differs", trial, workers, i)
				}
			}
			if w.LastStats.ShardImbalance < 1 {
				t.Errorf("trial %d workers=%d: shard imbalance %v not recorded",
					trial, workers, w.LastStats.ShardImbalance)
			}
		}
	}

	// Without SinkWork the dynamic schedule reports no shard imbalance.
	if dyn.LastStats.ShardImbalance != 0 {
		t.Errorf("dynamic schedule reported shard imbalance %v", dyn.LastStats.ShardImbalance)
	}
}

// TestWorkFeedbackImprovesShardBalance records the real per-particle work of
// a clustered traversal, then compares how well two contiguous 4-way splits
// of the sorted particle sequence balance that actual work: the equal-count
// split every weightless scheduler would pick, and the work-weighted split
// the feedback loop picks.  The work-fed split must not be worse.
func TestWorkFeedbackImprovesShardBalance(t *testing.T) {
	tr := equivTrees(t, 1)["clustered"]
	w := NewWalker(tr, workCfg())
	w.WorkOut = make([]float64, len(tr.Pos))
	w.ForcesForAll(2)
	work := append([]float64(nil), w.WorkOut...)

	const workers = 4
	uniformBounds := make([]int, workers-1)
	for k := 1; k < workers; k++ {
		uniformBounds[k-1] = k * len(work) / workers
	}
	uniform := domain.ShardImbalance(work, uniformBounds)
	workFed := domain.ShardImbalance(work, domain.SplitWeighted(work, workers))

	t.Logf("actual-work imbalance over %d shards: equal-count %.4f, work-fed %.4f", workers, uniform, workFed)
	if workFed > uniform*1.0001 {
		t.Errorf("work feedback worsened the shard balance: %.4f -> %.4f", uniform, workFed)
	}
}
