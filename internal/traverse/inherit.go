package traverse

// List-inheriting tree traversal.
//
// The legacy traversal (ForcesForAllLegacy) walks the source tree from the
// root once per sink leaf cell *per replica offset* — 27 root walks per group
// at WS=1, 125 at WS=2 — re-deciding the same far interactions for every
// group.  This file implements the hierarchical alternative: the sink tree is
// descended top-down carrying, for each sink cell, a work list whose entries
// are either *decided* (far cells, near-leaf particle blocks and background
// boxes that every descendant sink treats identically) or *open* (cells whose
// acceptance still depends on which descendant asks).  A child sink cell
// inherits the decided entries with a copy and spends acceptance tests only
// on the open frontier; replica offsets whose shifted root is accepted at the
// top of the descent are never walked again.
//
// Decisions at an internal sink cell S use interval bounds on the effective
// sink distance.  For a source cell at shifted center y and a sink leaf g
// (center gc, body radius gr) the legacy test uses d_g = |y-gc| - gr.  With
//
//	R(S) = max over leaves g under S of (|gc - Sc| + gr)
//	U(S) = max over leaves g under S of (|gc - Sc| - gr)
//
// every d_g lies in [|y-Sc| - R(S), |y-Sc| + U(S)].  The acceptance criterion
// is monotone in d (larger distance can only help), so accept at the lower
// bound means every leaf accepts, and reject at the upper bound means every
// leaf opens.  Anything in between stays open and is re-tested by the child
// sinks; at the sink leaf the remaining frontier is resolved with the legacy
// test, bit for bit.  A small relative slack widens the undecided band so
// floating-point rounding in the bounds can never flip a decision a leaf
// would make differently — the equivalence suite pins the result to the
// legacy path with exact comparisons.
//
// Work lists and the per-group interaction lists are stored as
// structure-of-arrays index/offset slices (no []*tree.Cell), and are applied
// through batched kernels: multipole.EvaluateTruncatedBlock evaluates each
// accepted cell against the whole sink block while its moments stay hot, and
// p2pAccumulate fuses the force and potential factors into one pass with
// inlined fast paths for the None and Plummer kernels.  All buffers are
// pooled per worker on the Walker.

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"twohot/internal/cube"
	"twohot/internal/domain"
	"twohot/internal/multipole"
	"twohot/internal/softening"
	"twohot/internal/tree"
	"twohot/internal/vec"
)

// TraversalStats reports how a traversal built its interaction lists.  These
// are list-construction metrics (the quantities the ROADMAP item "list reuse
// across sibling groups" is about), not physics counters, so they live next
// to Counters rather than inside it.
type TraversalStats struct {
	Groups int64 // sink leaf groups processed
	// ReplicaWalks counts, summed over groups, the replica offsets that still
	// had at least one open work-list entry when the group resolved its list
	// — the offsets whose (shifted) tree the group actually had to descend.
	// The legacy traversal descends the root for every group and offset, so
	// its value is Groups * replicas; offsets decided high in the sink tree
	// never reach a leaf and drop out of this count.
	ReplicaWalks int64
	// FrontierWalks counts the open work-list entries that sink leaves
	// resolved with the exact per-group walk (the frontier is fragmented, so
	// one surviving replica offset usually contributes several shallow
	// entries).
	FrontierWalks int64
	// InheritedItems counts decided work-list entries that sink leaves
	// consumed without any acceptance test.
	InheritedItems int64
	// ShardImbalance is the max/mean predicted shard weight of the static
	// work-weighted schedule (1.0 is perfect); 0 when the dynamic schedule
	// ran (no SinkWork, or a single worker).
	ShardImbalance float64
	// BoundsReusedCells counts the cells whose sink-distance bounds were
	// transplanted from the previous tree's bounds via the clean-subtree
	// cache instead of being recomputed.
	BoundsReusedCells int64
	// PrunedInactive counts the sink subtrees the activity mask pruned from
	// the descent (SinkActive); 0 for full solves.
	PrunedInactive int64
}

func (s *TraversalStats) add(o TraversalStats) {
	s.Groups += o.Groups
	s.ReplicaWalks += o.ReplicaWalks
	s.FrontierWalks += o.FrontierWalks
	s.InheritedItems += o.InheritedItems
	s.PrunedInactive += o.PrunedInactive
}

// Work-list item kinds.
const (
	itOpen uint8 = iota // undecided: re-tested by descendant sinks
	itCell              // decided far cell (multipole interaction)
	itSrc               // decided near leaf: direct particle sources
	itBg                // decided background box (empty octant, or own box when oct < 0)
)

// worklist is the SoA refinement list carried down the sink tree.  Entries
// appear in the exact order the legacy depth-first walk would emit them, so
// resolving a list at a sink leaf reproduces the legacy interaction lists
// element for element.
type worklist struct {
	kind []uint8
	cell []int32 // tree cell index (for itBg with oct >= 0: the parent cell)
	off  []int32 // replica offset index into Walker.offsets
	oct  []int8  // empty octant for itBg; -1 otherwise
}

func (wl *worklist) reset() {
	wl.kind = wl.kind[:0]
	wl.cell = wl.cell[:0]
	wl.off = wl.off[:0]
	wl.oct = wl.oct[:0]
}

func (wl *worklist) push(kind uint8, cell, off int32, oct int8) {
	wl.kind = append(wl.kind, kind)
	wl.cell = append(wl.cell, cell)
	wl.off = append(wl.off, off)
	wl.oct = append(wl.oct, oct)
}

func (wl *worklist) copyFrom(o *worklist) {
	wl.kind = append(wl.kind[:0], o.kind...)
	wl.cell = append(wl.cell[:0], o.cell...)
	wl.off = append(wl.off[:0], o.off...)
	wl.oct = append(wl.oct[:0], o.oct...)
}

// applyLists is the fully resolved interaction list of one sink group, in
// batched SoA form: far cells as (cell index, offset index) pairs, direct
// sources as packed coordinate/mass arrays with the replica offset already
// applied, and background boxes with their offsets.
type applyLists struct {
	cells   []int32
	cellOff []int32

	srcX, srcY, srcZ, srcM []float64

	bgBoxes []vec.Box
	bgOff   []int32
}

func (al *applyLists) reset() {
	al.cells = al.cells[:0]
	al.cellOff = al.cellOff[:0]
	al.srcX = al.srcX[:0]
	al.srcY = al.srcY[:0]
	al.srcZ = al.srcZ[:0]
	al.srcM = al.srcM[:0]
	al.bgBoxes = al.bgBoxes[:0]
	al.bgOff = al.bgOff[:0]
}

func (al *applyLists) pushCell(cell, off int32) {
	al.cells = append(al.cells, cell)
	al.cellOff = append(al.cellOff, off)
}

func (al *applyLists) pushBg(b vec.Box, off int32) {
	al.bgBoxes = append(al.bgBoxes, b)
	al.bgOff = append(al.bgOff, off)
}

// sinkBounds caches, per tree cell, the sink-distance interval radii R and U
// described in the file comment, and the number of local sink leaves below
// each cell (zero marks subtrees with nothing to descend into: remote
// branches of a distributed tree).
type sinkBounds struct {
	r, u   []float64
	leaves []int32
}

// boundSlack is the relative widening of the undecided band.  It must cover
// the floating-point rounding of the bound recursion (a few ulps per tree
// level) while staying far below any physically meaningful scale; rounding
// noise sits ~1e-16 relative, the MAC varies over ~1e-11 across the band, so
// decisions inside the slack are identical at both ends.
const boundSlack = 1e-12

// buildSinkBounds fills sb for every cell reachable from the root without
// crossing a remote cell.  Leaves use the exact body radius (the same
// sinkRadius the legacy path uses for its groups); interior cells combine
// children through the triangle inequality, which only ever over-estimates —
// safe for both decision directions.
//
// Subtrees the dirty-set rebuild copied verbatim from the previous tree
// (tree.Tree.Reuse) copy their bounds from the previous call's arrays
// instead of recursing: r, u and the leaf counts are pure functions of a
// cell's particle content and subtree structure, both of which the copy
// preserved bit for bit, so the transplanted values equal a recomputation
// exactly.  The cache is only consulted when the walker's retired bounds
// were computed for the very tree the Reuse segments refer to.
func (w *Walker) buildSinkBounds(sb *sinkBounds) {
	t := w.Tree
	n := len(t.Cell)
	tree.GrowSlice(&sb.r, n)
	tree.GrowSlice(&sb.u, n)
	tree.GrowSlice(&sb.leaves, n)
	var segs []tree.ReusedSubtree
	var prev *sinkBounds
	if src := t.ReuseSource(); src != nil && src == w.sbPrevFor &&
		len(w.sbPrev.r) == len(src.Cell) {
		segs = t.Reuse
		prev = &w.sbPrev
	}
	reused := int64(0)
	var rec func(idx int32)
	rec = func(idx int32) {
		if prev != nil {
			// Reuse segments are emitted in ascending Root order; a subtree
			// root is matched by binary search.
			si := sort.Search(len(segs), func(i int) bool { return segs[i].Root >= idx })
			if si < len(segs) && segs[si].Root == idx &&
				int(segs[si].PrevRoot+segs[si].NumCells) <= len(prev.r) {
				seg := segs[si]
				copy(sb.r[seg.Root:seg.Root+seg.NumCells], prev.r[seg.PrevRoot:seg.PrevRoot+seg.NumCells])
				copy(sb.u[seg.Root:seg.Root+seg.NumCells], prev.u[seg.PrevRoot:seg.PrevRoot+seg.NumCells])
				copy(sb.leaves[seg.Root:seg.Root+seg.NumCells], prev.leaves[seg.PrevRoot:seg.PrevRoot+seg.NumCells])
				reused += int64(seg.NumCells)
				return
			}
		}
		c := t.Cell[idx]
		if c.Remote {
			sb.leaves[idx] = 0
			return
		}
		if c.Leaf {
			r := sinkRadius(t, c)
			sb.r[idx] = r
			sb.u[idx] = -r
			sb.leaves[idx] = 1
			return
		}
		var rMax, uMax float64
		var nl int32
		first := true
		for oct := 0; oct < 8; oct++ {
			ci := c.ChildIdx[oct]
			if ci == tree.NoChild {
				continue
			}
			rec(ci)
			if sb.leaves[ci] == 0 {
				continue
			}
			child := t.Cell[ci]
			dc := child.Center.Dist(c.Center)
			if r := dc + sb.r[ci]; first || r > rMax {
				rMax = r
			}
			if u := dc + sb.u[ci]; first || u > uMax {
				uMax = u
			}
			first = false
			nl += sb.leaves[ci]
		}
		sb.r[idx] = rMax
		sb.u[idx] = uMax
		sb.leaves[idx] = nl
	}
	rec(t.RootIdx)
	w.boundsReusedLatest = reused
	w.sbFor = t
}

// inheritWS is one worker's pooled traversal state.
type inheritWS struct {
	levels []worklist // refinement lists indexed by sink depth
	apply  applyLists

	scratch []float64
	xRel    []vec.V3
	qs      []uint8
	res     []multipole.Result
	accBuf  []vec.V3
	potBuf  []float64

	counters Counters
	stats    TraversalStats
}

func (ws *inheritWS) level(depth int) *worklist {
	for len(ws.levels) <= depth {
		ws.levels = append(ws.levels, worklist{})
	}
	return &ws.levels[depth]
}

func (ws *inheritWS) ensureGroup(m, scratchLen int) {
	if cap(ws.xRel) < m {
		ws.xRel = make([]vec.V3, m)
		ws.qs = make([]uint8, m)
		ws.res = make([]multipole.Result, m)
		ws.accBuf = make([]vec.V3, m)
		ws.potBuf = make([]float64, m)
	}
	if len(ws.scratch) < scratchLen {
		ws.scratch = make([]float64, scratchLen)
	}
}

func (w *Walker) workspace(i int) *inheritWS {
	for len(w.pool) <= i {
		w.pool = append(w.pool, &inheritWS{})
	}
	return w.pool[i]
}

// inheritTask is one subtree of the sink descent handed to a worker, with an
// owned snapshot of the work list inherited from the sequential prefix.
type inheritTask struct {
	sink  int32
	depth int
	wl    worklist
}

// ForcesForAll computes the acceleration and kernel sum for every particle in
// the tree with the list-inheriting traversal, using nWorkers goroutines over
// sink subtrees.  The returned slices are indexed like the tree's
// (key-sorted) particle arrays.  The result — accelerations, potentials and
// interaction counters — is bit-identical to ForcesForAllLegacy for every
// worker count.
//
// Trees with unresolved remote cells mutate while they are traversed (child
// fetches append to the cell table), so — exactly like the legacy path — they
// must be traversed with nWorkers = 1.
func (w *Walker) ForcesForAll(nWorkers int) ([]vec.V3, []float64, Counters) {
	w.checkSplitConfig()
	t := w.Tree
	n := len(t.Pos)
	acc := make([]vec.V3, n)
	pot := make([]float64, n)
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	if w.SinkActive != nil && len(w.SinkActive) != n {
		panic("traverse: SinkActive length does not match the tree's particle count")
	}
	w.buildSinkBounds(&w.sb)
	root := t.RootIdx

	if w.SinkActive != nil && w.prepareActivity() == 0 {
		// Nothing active: no group runs, every slot stays zero.
		w.LastStats = TraversalStats{BoundsReusedCells: w.boundsReusedLatest}
		return acc, pot, Counters{}
	}

	// The initial work list: every replica offset starts as one open entry
	// for the (shifted) root.  Offsets decided during the descent are exactly
	// the root walks the legacy path repeats per group.
	init := &w.initWL
	init.reset()
	for oi := range w.offsets {
		init.push(itOpen, root, int32(oi), -1)
	}

	var total Counters
	var stats TraversalStats
	if nWorkers == 1 || w.sb.leaves[root] <= 1 {
		ws := w.workspace(0)
		ws.counters = Counters{}
		ws.stats = TraversalStats{}
		w.descend(root, 0, init, ws, acc, pot)
		total = ws.counters
		stats = ws.stats
	} else {
		tasks := w.collectTasks(init, nWorkers, &stats)
		// Schedule: with per-particle work weights the tasks are cut into
		// contiguous per-worker shards of near-equal predicted weight (the
		// work-feedback rebalance); otherwise workers pull tasks
		// dynamically.  Either way every task runs exactly once and writes
		// a disjoint particle range, so the two schedules produce the same
		// bits.
		var shard func(wk int) (int, int)
		var next chan int
		if bounds := w.shardBounds(tasks, nWorkers, &stats); bounds != nil {
			shard = func(wk int) (int, int) {
				lo, hi := 0, len(tasks)
				if wk > 0 {
					lo = bounds[wk-1]
				}
				if wk < len(bounds) {
					hi = bounds[wk]
				}
				return lo, hi
			}
		} else {
			next = make(chan int, len(tasks))
			for i := range tasks {
				next <- i
			}
			close(next)
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for wk := 0; wk < nWorkers; wk++ {
			ws := w.workspace(wk)
			ws.counters = Counters{}
			ws.stats = TraversalStats{}
			wg.Add(1)
			go func(wk int, ws *inheritWS) {
				defer wg.Done()
				if shard != nil {
					lo, hi := shard(wk)
					for ti := lo; ti < hi; ti++ {
						tk := &tasks[ti]
						w.descend(tk.sink, tk.depth, &tk.wl, ws, acc, pot)
					}
				} else {
					for ti := range next {
						tk := &tasks[ti]
						w.descend(tk.sink, tk.depth, &tk.wl, ws, acc, pot)
					}
				}
				mu.Lock()
				total.Add(ws.counters)
				stats.add(ws.stats)
				mu.Unlock()
			}(wk, ws)
		}
		wg.Wait()
	}

	w.postProcess(acc, pot, nWorkers)
	stats.BoundsReusedCells = w.boundsReusedLatest
	w.LastStats = stats
	return acc, pot, total
}

// shardBounds computes the static work-weighted task partition: each task is
// weighted by the summed SinkWork of the particles under its sink subtree and
// the task sequence (which is in sink-tree DFS order, i.e. contiguous in the
// sorted particle arrays) is split into nWorkers contiguous shards of
// near-equal weight.  It returns nil — meaning "use the dynamic schedule" —
// when no usable weights are present.
func (w *Walker) shardBounds(tasks []inheritTask, nWorkers int, stats *TraversalStats) []int {
	if w.SinkWork == nil || len(w.SinkWork) != len(w.Tree.Pos) || len(tasks) < 2 {
		return nil
	}
	work := w.SinkWork
	if w.SinkActive != nil {
		// Partially-active solve: particles of pruned groups cost nothing,
		// so their carried work must not attract shard boundaries.  The
		// mask is per group, not per particle — a processed group applies
		// its lists to all of its members.
		work = domain.MaskWeights(w.maskedWork, work, w.groupActiveMask())
		w.maskedWork = work
	}
	weights := make([]float64, len(tasks))
	for i := range tasks {
		c := w.Tree.Cell[tasks[i].sink]
		sum := 0.0
		for p := c.First; p < c.First+c.NBodies; p++ {
			sum += work[p]
		}
		weights[i] = sum
	}
	bounds := domain.SplitWeighted(weights, nWorkers)
	stats.ShardImbalance = domain.ShardImbalance(weights, bounds)
	return bounds
}

// collectTasks runs the top of the sink descent sequentially, refining the
// work list level by level, and cuts the descent into independent subtree
// tasks once a subtree holds few enough sink leaves.  Refinement is a pure
// function of (sink cell, inherited list), so where the cut falls cannot
// change any result — only which goroutine computes it.  Sink subtrees the
// activity mask prunes never become tasks and never pay for a refinement.
func (w *Walker) collectTasks(init *worklist, nWorkers int, stats *TraversalStats) []inheritTask {
	t := w.Tree
	grain := w.sb.leaves[t.RootIdx] / int32(nWorkers*8)
	if grain < 1 {
		grain = 1
	}
	w.tasks = w.tasks[:0]
	ws := w.workspace(0)
	var rec func(sIdx int32, depth int, parent *worklist)
	rec = func(sIdx int32, depth int, parent *worklist) {
		c := t.Cell[sIdx]
		if c.Leaf || w.sb.leaves[sIdx] <= grain {
			if len(w.tasks) < cap(w.tasks) {
				w.tasks = w.tasks[:len(w.tasks)+1]
			} else {
				w.tasks = append(w.tasks, inheritTask{})
			}
			tk := &w.tasks[len(w.tasks)-1]
			tk.sink = sIdx
			tk.depth = depth
			tk.wl.copyFrom(parent)
			return
		}
		cur := ws.level(depth)
		cur.reset()
		w.refineInto(sIdx, parent, cur)
		for oct := 0; oct < 8; oct++ {
			if ci := c.ChildIdx[oct]; ci != tree.NoChild && w.sb.leaves[ci] > 0 {
				if !w.subtreeActive(ci) {
					stats.PrunedInactive++
					continue
				}
				rec(ci, depth+1, cur)
			}
		}
	}
	rec(t.RootIdx, 0, init)
	return w.tasks
}

// descend refines the inherited work list for one sink cell and recurses; at
// sink leaves it resolves the remaining frontier exactly and applies the
// interaction lists to the group's particles.
func (w *Walker) descend(sIdx int32, depth int, parent *worklist, ws *inheritWS, acc []vec.V3, pot []float64) {
	t := w.Tree
	c := t.Cell[sIdx]
	if c.Leaf {
		w.resolveAndApply(sIdx, parent, ws, acc, pot)
		return
	}
	cur := ws.level(depth)
	cur.reset()
	w.refineInto(sIdx, parent, cur)
	for oct := 0; oct < 8; oct++ {
		if ci := c.ChildIdx[oct]; ci != tree.NoChild && w.sb.leaves[ci] > 0 {
			if !w.subtreeActive(ci) {
				ws.stats.PrunedInactive++
				continue
			}
			w.descend(ci, depth+1, cur, ws, acc, pot)
		}
	}
}

// refineInto rebuilds the work list for sink cell sIdx from its parent's
// list: decided entries are copied through, open entries are re-tested
// against the tighter sink bounds.  Work lists are offset-sorted by
// construction — the initial list is one entry per replica offset and
// classification expands an entry only into entries of the same offset — so
// the open frontier arrives grouped by offset and the replica shift is
// resolved once per run instead of once per interval test.
func (w *Walker) refineInto(sIdx int32, parent, out *worklist) {
	sc := w.Tree.Cell[sIdx].Center
	r := w.sb.r[sIdx]
	u := w.sb.u[sIdx]
	n := len(parent.kind)
	lastOff := int32(-1)
	var off vec.V3
	for i := 0; i < n; i++ {
		if parent.kind[i] != itOpen {
			out.push(parent.kind[i], parent.cell[i], parent.off[i], parent.oct[i])
			continue
		}
		if parent.off[i] != lastOff {
			lastOff = parent.off[i]
			off = w.offsets[lastOff]
		}
		w.classify(parent.cell[i], parent.off[i], off, sc, r, u, out)
	}
}

// classify decides one source cell against a sink cell's distance interval:
// accepted for every descendant leaf, opened for every descendant leaf (the
// children are then classified recursively, in the legacy walk's emission
// order), or left open for the child sinks.  off is the resolved replica
// shift w.offsets[oi], hoisted by the caller across the offset-sorted run.
func (w *Walker) classify(ci, oi int32, off, sc vec.V3, r, u float64, out *worklist) {
	t := w.Tree
	c := t.Cell[ci]
	dc := c.Center.Add(off).Dist(sc)
	slack := boundSlack * (dc + r + c.Size)
	if w.Cfg.SplitRS > 0 {
		// Short-range mode: a sink leaf prunes this cell when its effective
		// distance d exceeds SplitRCut + Bmax (see gather).  d lies in
		// [dc-r, dc+u] for every descendant leaf, so beyond the interval's
		// lower bound every leaf prunes — drop the entry; beyond only the
		// upper bound some leaf might — defer so the leaves re-test exactly.
		prune := w.Cfg.SplitRCut + c.Exp.Bmax
		if dc-r-slack > prune {
			return
		}
		if dc+u+slack > prune {
			out.push(itOpen, ci, oi, -1)
			return
		}
	}
	if w.accept(c, dc-r-slack) {
		out.push(itCell, ci, oi, -1)
		return
	}
	if w.accept(c, dc+u+slack) {
		// Some descendant may accept while another opens: defer.
		out.push(itOpen, ci, oi, -1)
		return
	}
	// Every descendant opens this cell.
	if c.Leaf {
		out.push(itSrc, ci, oi, -1)
		if t.RhoBar() > 0 {
			out.push(itBg, ci, oi, -1)
		}
		return
	}
	for oct := 0; oct < 8; oct++ {
		child := t.Child(c, oct)
		if child != nil {
			w.classify(c.ChildIdx[oct], oi, off, sc, r, u, out)
			continue
		}
		if t.RhoBar() > 0 {
			out.push(itBg, ci, oi, int8(oct))
		}
	}
}

// resolveAndApply turns the inherited work list into the sink group's
// interaction lists — decided entries translate directly, open entries replay
// the legacy walk with the exact per-group test — and applies them to every
// particle of the group.
func (w *Walker) resolveAndApply(sIdx int32, parent *worklist, ws *inheritWS, acc []vec.V3, pot []float64) {
	t := w.Tree
	c := t.Cell[sIdx]
	g := sinkGroup{center: c.Center, radius: w.sb.r[sIdx], first: c.First, count: c.NBodies}
	al := &ws.apply
	al.reset()
	n := len(parent.kind)
	lastOpenOff := int32(-1)
	for i := 0; i < n; i++ {
		switch parent.kind[i] {
		case itCell:
			al.pushCell(parent.cell[i], parent.off[i])
			ws.stats.InheritedItems++
		case itSrc:
			w.pushLeafSources(al, parent.cell[i], parent.off[i])
			ws.stats.InheritedItems++
		case itBg:
			al.pushBg(w.bgBoxFor(parent.cell[i], parent.oct[i]), parent.off[i])
			ws.stats.InheritedItems++
		default: // itOpen
			w.exactGather(parent.cell[i], parent.off[i], g, al)
			ws.stats.FrontierWalks++
			// Entries of one offset stay contiguous through refinement, so a
			// change of offset marks a replica this group really descends.
			if parent.off[i] != lastOpenOff {
				ws.stats.ReplicaWalks++
				lastOpenOff = parent.off[i]
			}
		}
	}
	ws.stats.Groups++
	w.applyGroup(g, al, ws, acc, pot)
}

func (w *Walker) bgBoxFor(ci int32, oct int8) vec.Box {
	c := w.Tree.Cell[ci]
	if oct < 0 {
		return c.Box()
	}
	return octantBox(c, int(oct))
}

func (w *Walker) pushLeafSources(al *applyLists, ci, oi int32) {
	pos, mass := w.Tree.LeafParticles(w.Tree.Cell[ci])
	off := w.offsets[oi]
	for i := range pos {
		p := pos[i].Add(off)
		al.srcX = append(al.srcX, p[0])
		al.srcY = append(al.srcY, p[1])
		al.srcZ = append(al.srcZ, p[2])
		al.srcM = append(al.srcM, mass[i])
	}
}

// exactGather resolves one still-open frontier cell for a sink leaf with the
// legacy acceptance test (identical expressions, so identical decisions),
// emitting into the SoA apply lists in the legacy walk's order.
func (w *Walker) exactGather(ci, oi int32, g sinkGroup, al *applyLists) {
	t := w.Tree
	c := t.Cell[ci]
	off := w.offsets[oi]
	srcCenter := c.Center.Add(off)
	dCenter := srcCenter.Dist(g.center)
	d := dCenter - g.radius

	// Short-range mode: same exact pruning test as the legacy gather.
	if w.Cfg.SplitRS > 0 && d > w.Cfg.SplitRCut+c.Exp.Bmax {
		return
	}

	if w.accept(c, d) {
		al.pushCell(ci, oi)
		return
	}
	if c.Leaf {
		w.pushLeafSources(al, ci, oi)
		if t.RhoBar() > 0 {
			al.pushBg(c.Box(), oi)
		}
		return
	}
	for oct := 0; oct < 8; oct++ {
		child := t.Child(c, oct)
		if child != nil {
			w.exactGather(c.ChildIdx[oct], oi, g, al)
			continue
		}
		if t.RhoBar() > 0 {
			al.pushBg(octantBox(c, oct), oi)
		}
	}
}

// applyGroup applies the resolved SoA lists to every sink particle of the
// group.  Far cells run source-major through the block evaluator so each
// cell's moments are streamed once per group; direct sources run through the
// fused particle-particle kernel.  Per-sink accumulation order is cells, then
// sources, then background boxes, each in list order — the exact order of the
// legacy application, so the floating-point sums agree bit for bit.
func (w *Walker) applyGroup(g sinkGroup, al *applyLists, ws *inheritWS, acc []vec.V3, pot []float64) {
	t := w.Tree
	ws.counters.SinkCells++
	ws.counters.Sinks += int64(g.count)
	m := g.count
	if w.WorkOut != nil {
		// Every sink of the group consumes the same lists, so its work is
		// the group's list length: far cells + direct sources + background
		// cubes (summed over sinks this reproduces the step's counters).
		gw := float64(len(al.cells)) + float64(len(al.srcX)) + float64(len(al.bgBoxes))
		for s := 0; s < m; s++ {
			w.WorkOut[g.first+s] = gw
		}
	}
	ws.ensureGroup(m, multipole.ScratchSize(t.Opt.Order))
	accB := ws.accBuf[:m]
	potB := ws.potBuf[:m]
	for s := 0; s < m; s++ {
		accB[s] = vec.V3{}
		potB[s] = 0
	}

	for ci := range al.cells {
		c := t.Cell[al.cells[ci]]
		off := w.offsets[al.cellOff[ci]]
		e := c.Exp
		for s := 0; s < m; s++ {
			xRel := t.Pos[g.first+s].Sub(off)
			ws.xRel[s] = xRel
			q := w.chooseOrder(c, xRel.Dist(e.Center))
			ws.qs[s] = uint8(q)
			ws.counters.CellByOrder[q]++
		}
		e.EvaluateTruncatedBlock(ws.xRel[:m], ws.qs[:m], ws.scratch, ws.res[:m])
		if w.Cfg.SplitRS > 0 {
			// Scalar split damping at the cell-center distance, with the same
			// expressions as the legacy applyList so the two paths agree bit
			// for bit.
			for s := 0; s < m; s++ {
				sff, spf := softening.SplitFactors(ws.xRel[s].Dist(e.Center), w.Cfg.SplitRS)
				accB[s] = accB[s].Add(ws.res[s].Acc.Scale(sff))
				potB[s] += ws.res[s].Phi * spf
			}
		} else {
			for s := 0; s < m; s++ {
				accB[s] = accB[s].Add(ws.res[s].Acc)
				potB[s] += ws.res[s].Phi
			}
		}
	}

	nSrc := int64(len(al.srcX))
	rhoBar := t.RhoBar()
	for s := 0; s < m; s++ {
		i := g.first + s
		x := t.Pos[i]
		var a vec.V3
		var p float64
		if w.Cfg.SplitRS > 0 {
			a, p = p2pAccumulateSplit(w.Cfg.Kernel, w.Cfg.Eps, w.Cfg.SplitRS, w.Cfg.SplitRCut, x, al, accB[s], potB[s])
		} else {
			a, p = p2pAccumulate(w.Cfg.Kernel, w.Cfg.Eps, x, al, accB[s], potB[s])
		}
		ws.counters.P2P += nSrc
		for bi := range al.bgBoxes {
			xRel := x.Sub(w.offsets[al.bgOff[bi]])
			ba, bp := cube.BackgroundAccel(al.bgBoxes[bi], rhoBar, xRel)
			a = a.Add(ba)
			p += bp
			ws.counters.BgCubes++
		}
		acc[i] = acc[i].Add(a)
		pot[i] += p
	}
}

// p2pAccumulate adds every direct source of the list to one sink,
// accumulating onto (a, p).  The force and potential factors are fused into a
// single pass over each pair; the None and Plummer kernels are inlined (they
// share the square root between both factors), the remaining kernels go
// through softening.Factors.  All arithmetic reproduces the legacy per-pair
// expressions exactly.
func p2pAccumulate(kernel softening.Kernel, eps float64, x vec.V3, al *applyLists, a vec.V3, p float64) (vec.V3, float64) {
	sx, sy, sz, sm := al.srcX, al.srcY, al.srcZ, al.srcM
	x0, x1, x2 := x[0], x[1], x[2]
	switch kernel {
	case softening.None:
		for j := range sx {
			dx := sx[j] - x0
			dy := sy[j] - x1
			dz := sz[j] - x2
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			ff := 1 / (r * r * r)
			pf := 1 / r
			mj := sm[j]
			s := mj * ff
			a[0] += dx * s
			a[1] += dy * s
			a[2] += dz * s
			p += mj * pf
		}
	case softening.Plummer:
		e2 := eps * eps
		for j := range sx {
			dx := sx[j] - x0
			dy := sy[j] - x1
			dz := sz[j] - x2
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			d2 := r*r + e2
			sq := math.Sqrt(d2)
			var ff float64
			if d2 != 0 {
				ff = 1 / (d2 * sq)
			}
			pf := 1 / sq
			mj := sm[j]
			s := mj * ff
			a[0] += dx * s
			a[1] += dy * s
			a[2] += dz * s
			p += mj * pf
		}
	default:
		for j := range sx {
			dx := sx[j] - x0
			dy := sy[j] - x1
			dz := sz[j] - x2
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			ff, pf := softening.Factors(kernel, r, eps)
			mj := sm[j]
			s := mj * ff
			a[0] += dx * s
			a[1] += dy * s
			a[2] += dz * s
			p += mj * pf
		}
	}
	return a, p
}

// p2pAccumulateSplit is p2pAccumulate in TreePM short-range mode: pairs beyond
// rcut are dropped and every surviving pair is damped by the erfc-complement
// split factors at scale rs.  The kernel factors and the factor-multiplication
// order reproduce the legacy applyList expressions exactly, so the two paths
// stay bit-identical in split mode too.
func p2pAccumulateSplit(kernel softening.Kernel, eps, rs, rcut float64, x vec.V3, al *applyLists, a vec.V3, p float64) (vec.V3, float64) {
	sx, sy, sz, sm := al.srcX, al.srcY, al.srcZ, al.srcM
	x0, x1, x2 := x[0], x[1], x[2]
	rcut2 := rcut * rcut
	switch kernel {
	case softening.Plummer:
		e2 := eps * eps
		for j := range sx {
			dx := sx[j] - x0
			dy := sy[j] - x1
			dz := sz[j] - x2
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 || r2 > rcut2 {
				continue
			}
			r := math.Sqrt(r2)
			d2 := r*r + e2
			sq := math.Sqrt(d2)
			var ff float64
			if d2 != 0 {
				ff = 1 / (d2 * sq)
			}
			pf := 1 / sq
			sff, spf := softening.SplitFactors(r, rs)
			ff *= sff
			pf *= spf
			mj := sm[j]
			s := mj * ff
			a[0] += dx * s
			a[1] += dy * s
			a[2] += dz * s
			p += mj * pf
		}
	default:
		for j := range sx {
			dx := sx[j] - x0
			dy := sy[j] - x1
			dz := sz[j] - x2
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 || r2 > rcut2 {
				continue
			}
			r := math.Sqrt(r2)
			ff, pf := softening.Factors(kernel, r, eps)
			sff, spf := softening.SplitFactors(r, rs)
			ff *= sff
			pf *= spf
			mj := sm[j]
			s := mj * ff
			a[0] += dx * s
			a[1] += dy * s
			a[2] += dz * s
			p += mj * pf
		}
	}
	return a, p
}
