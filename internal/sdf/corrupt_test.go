package sdf

import (
	"bufio"
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twohot/internal/particle"
	"twohot/internal/vec"
)

// This file hardens the checkpoint reader the way PR 1 hardened DecodeCells:
// a truncated or mangled checkpoint must come back as an error from Read /
// ReadFrom, never as a panic or a runaway allocation.

func validSnapshotBytes(t *testing.T, n int) []byte {
	t.Helper()
	set := particle.New(n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		set.Append(
			vec.V3{rng.Float64(), rng.Float64(), rng.Float64()},
			vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			1.5, int64(i))
	}
	snap := &Snapshot{
		Particles:        set,
		ScaleFac:         0.25,
		MomentumScaleFac: 0.24,
		BoxSize:          100,
		Cosmology:        "planck2013",
		Extra:            map[string]string{"step": "7", "a_init": "0.05"},
	}
	path := filepath.Join(t.TempDir(), "snap.sdf")
	if err := Write(path, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// readBytes parses a snapshot from an in-memory byte slice.
func readBytes(data []byte) (*Snapshot, error) {
	return ReadFrom(bufio.NewReader(bytes.NewReader(data)))
}

func TestReadFromTruncatedAtEveryBoundary(t *testing.T) {
	data := validSnapshotBytes(t, 20)
	if _, err := readBytes(data); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	// Truncations across the header and at several body offsets, including
	// mid-record cuts.
	cuts := []int{0, 1, 10, 50, len(data) / 2, len(data) - 64, len(data) - 7, len(data) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(data) {
			continue
		}
		if _, err := readBytes(data[:cut]); err == nil {
			t.Errorf("truncation at %d of %d bytes read successfully", cut, len(data))
		}
	}
}

func TestReadFromMangledHeaders(t *testing.T) {
	data := validSnapshotBytes(t, 4)
	text := string(data)
	cases := map[string]string{
		"negative-count":  strings.Replace(text, "}[4];", "}[-4];", 1),
		"huge-count":      strings.Replace(text, "}[4];", "}[9000000000000000000];", 1),
		"garbage-count":   strings.Replace(text, "}[4];", "}[zz];", 1),
		"missing-count":   strings.Replace(text, "}[4];", "};", 1),
		"unknown-layout":  strings.Replace(text, "double x, y, z;", "float q, r;", 1),
		"no-terminator":   strings.Replace(text, headerTerminator, "# nothing\n", 1),
		"struct-unclosed": strings.Replace(text, "}[4];", "", 1),
	}
	for name, mangled := range cases {
		if _, err := readBytes([]byte(mangled)); err == nil {
			t.Errorf("%s: mangled snapshot read successfully", name)
		}
	}
}

func TestReadFromRandomCorruption(t *testing.T) {
	data := validSnapshotBytes(t, 16)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		cp := append([]byte(nil), data...)
		// Flip a handful of bytes anywhere in the file.
		for k := 0; k < 1+rng.Intn(8); k++ {
			cp[rng.Intn(len(cp))] ^= byte(1 + rng.Intn(255))
		}
		// Must not panic; error or success are both acceptable (body bytes
		// are raw float64s, so many flips still parse).
		snap, err := readBytes(cp)
		if err == nil && snap.Particles == nil {
			t.Fatal("nil particles on successful read")
		}
	}
}

func FuzzReadFrom(f *testing.F) {
	set := particle.New(2)
	set.Append(vec.V3{0.1, 0.2, 0.3}, vec.V3{1, 2, 3}, 1, 1)
	set.Append(vec.V3{0.4, 0.5, 0.6}, vec.V3{4, 5, 6}, 1, 2)
	path := filepath.Join(f.TempDir(), "seed.sdf")
	if err := Write(path, &Snapshot{Particles: set, ScaleFac: 0.5, MomentumScaleFac: 0.5, BoxSize: 1}); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("# SDF 1.0\nstruct {\n}[1];\n# SDF-EOH\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadFrom(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && snap == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}
