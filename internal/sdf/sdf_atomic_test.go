package sdf

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests pin the crash-safety contract of Write/Read: a checkpoint file
// under its final name is always complete and verified, a crash mid-write
// leaves the previous checkpoint untouched, and any truncation or corruption
// of the body is rejected by the checksum footer — including truncations that
// land exactly on a record boundary, which the record-count loop alone would
// accept when paired with a mangled count.

func TestWriteAnnouncesChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.sdf")
	if err := Write(path, sampleSnapshot(5)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("checksum = crc32;")) {
		t.Error("written file does not announce its checksum")
	}
}

func TestWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.sdf")
	for i := 0; i < 3; i++ { // overwrite path: still exactly one file
		if err := Write(path, sampleSnapshot(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.sdf" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory after writes: %v, want [snap.sdf]", names)
	}
}

func TestReadRejectsCorruptedBody(t *testing.T) {
	data := validSnapshotBytes(t, 8)
	body := bytes.Index(data, []byte(headerTerminator)) + len(headerTerminator)
	// Flip single body bytes at several offsets: raw float64 bits parse fine,
	// so without the checksum these would be silent data corruption.
	for _, off := range []int{body, body + 13, body + 8*8*4, len(data) - 5} {
		cp := append([]byte(nil), data...)
		cp[off] ^= 0x01
		if _, err := readBytes(cp); err == nil {
			t.Errorf("body byte %d flipped: read succeeded", off)
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("body byte %d flipped: error %v does not mention checksum", off, err)
		}
	}
}

func TestReadRejectsTruncatedFooter(t *testing.T) {
	data := validSnapshotBytes(t, 8)
	// Cut 1..4 trailing bytes: the body is intact and record-complete, only
	// the footer is short.
	for cut := 1; cut <= 4; cut++ {
		if _, err := readBytes(data[:len(data)-cut]); err == nil {
			t.Errorf("footer truncated by %d: read succeeded", cut)
		}
	}
}

func TestReadRejectsRecordBoundaryTruncation(t *testing.T) {
	// Truncate the body at an exact record boundary AND patch the header
	// count to match: the record loop sees a self-consistent file, but the
	// stored checksum no longer matches the bytes.
	data := validSnapshotBytes(t, 8)
	text := string(data)
	text = strings.Replace(text, "npart = 8;", "npart = 6;", 1)
	text = strings.Replace(text, "}[8];", "}[6];", 1)
	cut := []byte(text)[:len(text)-2*8*8-4] // drop 2 records + footer
	// Reattach the original footer, as a torn write interleaved with a
	// metadata edit would.
	cut = append(cut, data[len(data)-4:]...)
	if _, err := readBytes(cut); err == nil {
		t.Error("boundary-truncated body with patched count read successfully")
	}
}

func TestReadLegacyFileWithoutChecksum(t *testing.T) {
	// Strip the checksum announcement and the footer: the pre-checksum
	// format, which must remain readable.
	data := validSnapshotBytes(t, 6)
	legacy := strings.Replace(string(data), "checksum = crc32;\n", "", 1)
	legacy = legacy[:len(legacy)-4]
	snap, err := readBytes([]byte(legacy))
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if snap.Particles.Len() != 6 {
		t.Errorf("legacy read lost particles: %d", snap.Particles.Len())
	}
}

func TestReadRejectsUnknownChecksum(t *testing.T) {
	data := validSnapshotBytes(t, 3)
	mangled := strings.Replace(string(data), "checksum = crc32;", "checksum = md5ish;", 1)
	if _, err := readBytes([]byte(mangled)); err == nil {
		t.Error("unknown checksum algorithm accepted")
	}
}

func TestCrashMidWriteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.sdf")
	good := sampleSnapshot(17)
	if err := Write(path, good); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash partway through a subsequent Write: the new bytes
	// exist only in a temp file, truncated at an arbitrary point, and the
	// rename never happened.
	next := sampleSnapshot(23)
	nextPath := filepath.Join(t.TempDir(), "next.sdf")
	if err := Write(nextPath, next); err != nil {
		t.Fatal(err)
	}
	nextBytes, err := os.ReadFile(nextPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{1, 2, 3} {
		stray := filepath.Join(dir, "ckpt.sdf.tmp-crash")
		if err := os.WriteFile(stray, nextBytes[:len(nextBytes)*frac/4], 0o644); err != nil {
			t.Fatal(err)
		}
		// The half-written temp file is itself unreadable...
		if _, err := Read(stray); err == nil {
			t.Errorf("partial temp file (%d/4) read successfully", frac)
		}
		// ...and the checkpoint under the real name is still the old one.
		snap, err := Read(path)
		if err != nil {
			t.Fatalf("previous checkpoint unreadable after simulated crash: %v", err)
		}
		if snap.Particles.Len() != 17 {
			t.Fatalf("previous checkpoint clobbered: %d particles", snap.Particles.Len())
		}
		os.Remove(stray)
	}
}
