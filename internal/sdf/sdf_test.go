package sdf

import (
	"math"
	"path/filepath"
	"testing"

	"twohot/internal/particle"
	"twohot/internal/vec"
)

func sampleSnapshot(n int) *Snapshot {
	set := particle.New(n)
	for i := 0; i < n; i++ {
		f := float64(i)
		set.Append(vec.V3{f, 2 * f, 3 * f}, vec.V3{-f, 0.5 * f, f * f}, 1.5+f, int64(i*7))
	}
	return &Snapshot{
		Particles:        set,
		ScaleFac:         0.25,
		MomentumScaleFac: 0.245,
		BoxSize:          100,
		Cosmology:        "planck2013",
		Extra:            map[string]string{"git": "deadbeef"},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.sdf")
	s := sampleSnapshot(137)
	if err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Particles.Len() != 137 {
		t.Fatalf("particle count %d", got.Particles.Len())
	}
	if got.ScaleFac != 0.25 || got.MomentumScaleFac != 0.245 || got.BoxSize != 100 {
		t.Errorf("metadata lost: %+v", got)
	}
	if got.Cosmology != "planck2013" || got.Extra["git"] != "deadbeef" {
		t.Errorf("string metadata lost")
	}
	for i := 0; i < 137; i++ {
		if got.Particles.Pos[i] != s.Particles.Pos[i] ||
			got.Particles.Mom[i] != s.Particles.Mom[i] ||
			math.Abs(got.Particles.Mass[i]-s.Particles.Mass[i]) > 0 ||
			got.Particles.ID[i] != s.Particles.ID[i] {
			t.Fatalf("particle %d corrupted", i)
		}
	}
}

func TestStripedRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "striped.sdf")
	s := sampleSnapshot(101)
	if err := WriteStriped(base, s, 4); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStriped(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Particles.Len() != 101 {
		t.Fatalf("striped read lost particles: %d", got.Particles.Len())
	}
	// Total mass is preserved regardless of the interleaving order.
	if math.Abs(got.Particles.TotalMass()-s.Particles.TotalMass()) > 1e-9 {
		t.Error("striped mass not conserved")
	}
}

func TestReadRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.sdf")
	if err := Write(path, sampleSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
}
