// Package sdf implements the self-describing file format 2HOT uses for
// snapshots and checkpoints (Section 3.4.2): an ASCII header of parameter
// assignments plus a C-style struct declaration describing the raw binary
// particle records that follow.
//
// # Contract
//
// Write serializes a Snapshot — the particle set in structure-of-arrays
// form, the scale factors, box size, cosmology name and free-form Extra
// parameters — and Read/ReadFrom parse one back.  Checkpoints additionally
// record the leapfrog offset between positions and momenta
// (MomentumScaleFac) and, via Extra, the step-grid anchor, so a restarted
// run keeps second-order accuracy and continues the original step grid bit
// for bit (the checkpoint-continuity suite at the repository root pins
// this).  Block-timestep runs write checkpoints synchronized — Simulation
// closes the leapfrog before a snapshot is taken — so the single
// MomentumScaleFac remains sufficient.
//
// The reader treats input as untrusted: declared counts are validated
// against the actual byte length, preallocation is capped, and truncated or
// corrupted bodies return errors instead of panicking (corrupt_test.go and
// FuzzReadFrom pin this).
//
// # Bit-identity invariants
//
// Particle payloads are raw little-endian float64/int64 — no text round-trip
// — so Write∘Read is the identity on every particle bit; header floats use
// 17-significant-digit formatting for the same reason.  Nothing in this
// package may alter a value it transports.
//
// # Concurrency model
//
// Plain synchronous I/O with no package state; distinct files may be read
// and written concurrently, but a single Snapshot or stream belongs to one
// goroutine at a time.
package sdf
