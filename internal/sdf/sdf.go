package sdf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"twohot/internal/particle"
	"twohot/internal/vec"
)

// headerTerminator separates the ASCII header from the binary body.
const headerTerminator = "# SDF-EOH\n"

// checksumParam announces the integrity footer in the header.  Files written
// by this package carry checksumCRC32: a little-endian CRC32 (IEEE) of every
// byte from the start of the file through the last particle record, appended
// after the body.  Readers verify it, so a checkpoint truncated or corrupted
// anywhere — including cleanly at a record boundary, which the record loop
// alone cannot detect — is rejected instead of silently resuming a damaged
// simulation.  Files without the parameter (pre-checksum format) still read.
const (
	checksumParam = "checksum"
	checksumCRC32 = "crc32"
)

// Header holds the parsed metadata of an SDF file.
type Header struct {
	Parameters map[string]string
	// Struct fields in declaration order; this reproduction always writes
	// the canonical particle record below but will refuse to read layouts
	// it does not understand.
	Fields []string
	NBody  int64
}

// canonicalFields is the particle record layout written by this package.
var canonicalFields = []string{"x", "y", "z", "vx", "vy", "vz", "mass", "ident"}

// SetFloat stores a float64 parameter.
func (h *Header) SetFloat(key string, v float64) {
	h.Parameters[key] = strconv.FormatFloat(v, 'g', 17, 64)
}

// Float returns a float64 parameter.
func (h *Header) Float(key string) (float64, bool) {
	s, ok := h.Parameters[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Snapshot couples the particle data with the metadata needed to interpret
// it.
type Snapshot struct {
	Particles *particle.Set
	ScaleFac  float64 // scale factor of the positions
	// MomentumScaleFac is the scale factor at which the canonical momenta
	// are valid; it differs from ScaleFac by half a step in a leapfrog
	// checkpoint.
	MomentumScaleFac float64
	BoxSize          float64
	Cosmology        string
	Extra            map[string]string
}

// Write stores the snapshot at path atomically: the bytes go to a temporary
// file in the same directory, are fsynced, and are renamed over path only
// once complete.  A crash at any point leaves either the previous checkpoint
// or the new one — never a half-written file under the checkpoint's name.
func Write(path string, s *Snapshot) error {
	return WriteAtomic(path, func(f *os.File) error { return writeSnapshot(f, s) })
}

// WriteAtomic runs fill against a temporary file in path's directory and
// atomically renames it into place, with the same crash discipline Write
// gives snapshots: the data is fsynced before the rename and the directory
// entry after it, and the temporary is removed on any failure.  It is the
// write path for every file the simulation emits — snapshots, checkpoints
// and in-situ analysis catalogs — so a crash mid-write never leaves a
// half-written file under the final name.
func WriteAtomic(path string, fill func(f *os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := fill(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir flushes the directory entry so the rename itself survives a crash.
// Best-effort: not every platform supports fsync on a directory handle.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// writeSnapshot streams the header, body, and checksum footer to w.
func writeSnapshot(out io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(out)
	crc := crc32.NewIEEE()
	// Everything before the footer feeds the running checksum.
	w := io.MultiWriter(bw, crc)

	n := s.Particles.Len()
	fmt.Fprintf(w, "# SDF 1.0\n")
	params := map[string]string{
		"npart":       strconv.Itoa(n),
		"a":           strconv.FormatFloat(s.ScaleFac, 'g', 17, 64),
		"a_momentum":  strconv.FormatFloat(s.MomentumScaleFac, 'g', 17, 64),
		"boxsize":     strconv.FormatFloat(s.BoxSize, 'g', 17, 64),
		"cosmology":   s.Cosmology,
		"units_len":   "Mpc/h",
		"units_mass":  "1e10 Msun/h",
		"units_vel":   "km/s",
		"code":        "twohot",
		"sdf_version": "1.0",
		checksumParam: checksumCRC32,
	}
	for k, v := range s.Extra {
		params["x_"+k] = v
	}
	keysSorted := make([]string, 0, len(params))
	for k := range params {
		keysSorted = append(keysSorted, k)
	}
	sort.Strings(keysSorted)
	for _, k := range keysSorted {
		fmt.Fprintf(w, "%s = %s;\n", k, params[k])
	}
	fmt.Fprintf(w, "struct {\n")
	fmt.Fprintf(w, "\tdouble x, y, z;\n")
	fmt.Fprintf(w, "\tdouble vx, vy, vz;\n")
	fmt.Fprintf(w, "\tdouble mass;\n")
	fmt.Fprintf(w, "\tint64_t ident;\n")
	fmt.Fprintf(w, "}[%d];\n", n)
	fmt.Fprint(w, headerTerminator)

	p := s.Particles
	for i := 0; i < n; i++ {
		rec := []any{
			p.Pos[i][0], p.Pos[i][1], p.Pos[i][2],
			p.Mom[i][0], p.Mom[i][1], p.Mom[i][2],
			p.Mass[i], p.ID[i],
		}
		for _, v := range rec {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	// Footer: checksum of header + body, itself outside the checksum.
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read loads a snapshot from path.
func Read(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(bufio.NewReader(f))
}

// crcTeeReader feeds every byte consumed from the underlying reader into a
// running checksum, so ReadFrom can verify the footer against exactly the
// bytes it parsed.
type crcTeeReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (t *crcTeeReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.crc.Write(p[:n])
	return n, err
}

func (t *crcTeeReader) ReadString(delim byte) (string, error) {
	s, err := t.r.ReadString(delim)
	t.crc.Write([]byte(s))
	return s, err
}

// ReadFrom parses a snapshot from a reader.
func ReadFrom(br *bufio.Reader) (*Snapshot, error) {
	r := &crcTeeReader{r: br, crc: crc32.NewIEEE()}
	h := &Header{Parameters: map[string]string{}}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("sdf: unterminated header: %w", err)
		}
		if line == headerTerminator {
			break
		}
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "" || strings.HasPrefix(trimmed, "#"):
			continue
		case strings.HasPrefix(trimmed, "struct"):
			// parse the struct block to the closing brace line
			var structLines []string
			for {
				l, err := r.ReadString('\n')
				if err != nil {
					return nil, fmt.Errorf("sdf: unterminated struct: %w", err)
				}
				ls := strings.TrimSpace(l)
				if strings.HasPrefix(ls, "}") {
					// "}[N];"
					open := strings.Index(ls, "[")
					close := strings.Index(ls, "]")
					if open < 0 || close < open {
						return nil, fmt.Errorf("sdf: malformed struct count %q", ls)
					}
					n, err := strconv.ParseInt(ls[open+1:close], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("sdf: bad particle count: %w", err)
					}
					if n < 0 {
						return nil, fmt.Errorf("sdf: negative particle count %d", n)
					}
					h.NBody = n
					break
				}
				structLines = append(structLines, ls)
			}
			for _, sl := range structLines {
				sl = strings.TrimSuffix(sl, ";")
				parts := strings.Fields(sl)
				if len(parts) < 2 {
					continue
				}
				for _, name := range strings.Split(strings.Join(parts[1:], ""), ",") {
					if name != "" {
						h.Fields = append(h.Fields, name)
					}
				}
			}
		case strings.Contains(trimmed, "="):
			kv := strings.SplitN(strings.TrimSuffix(trimmed, ";"), "=", 2)
			h.Parameters[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
		}
	}
	if len(h.Fields) != len(canonicalFields) {
		return nil, fmt.Errorf("sdf: unsupported struct layout %v", h.Fields)
	}
	for i, f := range h.Fields {
		if f != canonicalFields[i] {
			return nil, fmt.Errorf("sdf: unsupported struct layout %v", h.Fields)
		}
	}

	// Preallocate conservatively: a corrupt header can claim any particle
	// count, and nothing before this point has validated it against the
	// actual body length.  The append loop below grows as needed and fails
	// cleanly on a truncated body.
	prealloc := h.NBody
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	s := &Snapshot{Particles: particle.New(int(prealloc)), Extra: map[string]string{}}
	if v, ok := h.Float("a"); ok {
		s.ScaleFac = v
	}
	if v, ok := h.Float("a_momentum"); ok {
		s.MomentumScaleFac = v
	} else {
		s.MomentumScaleFac = s.ScaleFac
	}
	if v, ok := h.Float("boxsize"); ok {
		s.BoxSize = v
	}
	s.Cosmology = h.Parameters["cosmology"]
	for k, v := range h.Parameters {
		if strings.HasPrefix(k, "x_") {
			s.Extra[strings.TrimPrefix(k, "x_")] = v
		}
	}

	buf := make([]byte, 8*8)
	for i := int64(0); i < h.NBody; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("sdf: truncated body at particle %d: %w", i, err)
		}
		vals := make([]float64, 7)
		for j := 0; j < 7; j++ {
			vals[j] = float64FromBytes(buf[8*j : 8*j+8])
		}
		id := int64(binary.LittleEndian.Uint64(buf[56:64]))
		s.Particles.Append(
			vec.V3{vals[0], vals[1], vals[2]},
			vec.V3{vals[3], vals[4], vals[5]},
			vals[6], id)
	}

	switch h.Parameters[checksumParam] {
	case "":
		// Pre-checksum file: nothing to verify.
	case checksumCRC32:
		want := r.crc.Sum32()
		var foot [4]byte
		if _, err := io.ReadFull(br, foot[:]); err != nil {
			return nil, fmt.Errorf("sdf: missing checksum footer (file truncated): %w", err)
		}
		if got := binary.LittleEndian.Uint32(foot[:]); got != want {
			return nil, fmt.Errorf("sdf: checksum mismatch (stored %08x, computed %08x): file corrupted or truncated", got, want)
		}
	default:
		return nil, fmt.Errorf("sdf: unsupported checksum algorithm %q", h.Parameters[checksumParam])
	}
	return s, nil
}

func float64FromBytes(b []byte) float64 {
	var v float64
	binary.Read(bytes.NewReader(b), binary.LittleEndian, &v)
	return v
}

// WriteStriped writes the snapshot across nFiles files (path.0, path.1, ...)
// to mimic the multi-file I/O used to bypass filesystem striping limits
// (Section 3.4.2).  File k receives particles k, k+nFiles, k+2*nFiles, ...
func WriteStriped(path string, s *Snapshot, nFiles int) error {
	if nFiles <= 1 {
		return Write(path, s)
	}
	for k := 0; k < nFiles; k++ {
		sub := &Snapshot{
			ScaleFac:         s.ScaleFac,
			MomentumScaleFac: s.MomentumScaleFac,
			BoxSize:          s.BoxSize,
			Cosmology:        s.Cosmology,
			Extra:            map[string]string{"stripe": fmt.Sprintf("%d/%d", k, nFiles)},
			Particles:        particle.New(s.Particles.Len()/nFiles + 1),
		}
		for i := k; i < s.Particles.Len(); i += nFiles {
			sub.Particles.AppendFrom(s.Particles, i)
		}
		if err := Write(fmt.Sprintf("%s.%d", path, k), sub); err != nil {
			return err
		}
	}
	return nil
}

// ReadStriped reads a snapshot written by WriteStriped.
func ReadStriped(path string, nFiles int) (*Snapshot, error) {
	if nFiles <= 1 {
		return Read(path)
	}
	var out *Snapshot
	for k := 0; k < nFiles; k++ {
		s, err := Read(fmt.Sprintf("%s.%d", path, k))
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = s
			continue
		}
		for i := 0; i < s.Particles.Len(); i++ {
			out.Particles.AppendFrom(s.Particles, i)
		}
	}
	return out, nil
}
