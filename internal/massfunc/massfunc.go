// Package massfunc measures the halo mass function from a halo catalog and
// evaluates the fitting functions it is compared against in Figure 8: the
// Tinker et al. (2008) spherical-overdensity fit and the Warren et al. (2006)
// FOF fit (the earlier calibration this group produced with HOT).
package massfunc

import (
	"math"

	"twohot/internal/cosmo"
	"twohot/internal/transfer"
)

// Bin is one logarithmic mass bin of a measured mass function.
type Bin struct {
	MLo, MHi float64 // bin edges [1e10 Msun/h]
	MCenter  float64 // geometric center
	Count    int
	NDensity float64 // dn/dlnM [h^3/Mpc^3]
	Poisson  float64 // Poisson uncertainty on NDensity
}

// Measure bins halo masses (1e10 Msun/h) from a simulation of volume
// boxSize^3 into nBins logarithmic bins between mMin and mMax and returns
// dn/dlnM per bin.
func Measure(masses []float64, boxSize float64, mMin, mMax float64, nBins int) []Bin {
	if nBins < 1 || mMax <= mMin {
		return nil
	}
	vol := boxSize * boxSize * boxSize
	dln := math.Log(mMax/mMin) / float64(nBins)
	bins := make([]Bin, nBins)
	for i := range bins {
		bins[i].MLo = mMin * math.Exp(float64(i)*dln)
		bins[i].MHi = mMin * math.Exp(float64(i+1)*dln)
		bins[i].MCenter = math.Sqrt(bins[i].MLo * bins[i].MHi)
	}
	for _, m := range masses {
		if m < mMin || m >= mMax {
			continue
		}
		b := int(math.Log(m/mMin) / dln)
		// The log/divide can round a mass just under an edge into the next
		// bin — including one past the last for m just below mMax.  Clamp
		// instead of dropping: every mass in [mMin, mMax) lands in exactly
		// one bin, so the bin counts always sum to the in-range mass count
		// (the partition property the property tests pin).
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		bins[b].Count++
	}
	for i := range bins {
		bins[i].NDensity = float64(bins[i].Count) / vol / dln
		bins[i].Poisson = math.Sqrt(float64(bins[i].Count)) / vol / dln
	}
	return bins
}

// Fit identifies an analytic mass-function fit.
type Fit int

const (
	// Tinker08 is the Delta=200 (mean) spherical-overdensity fit of Tinker
	// et al. (2008).
	Tinker08 Fit = iota
	// Warren06 is the FOF (b=0.2) fit of Warren et al. (2006).
	Warren06
)

// Predictor evaluates analytic mass functions for one cosmology.
type Predictor struct {
	Par  cosmo.Params
	Spec *transfer.Spectrum
	Z    float64
}

// NewPredictor builds a predictor at redshift z.
func NewPredictor(par cosmo.Params, spec *transfer.Spectrum, z float64) *Predictor {
	return &Predictor{Par: par, Spec: spec, Z: z}
}

// sigma returns sigma(M, z).
func (p *Predictor) sigma(m float64) float64 {
	d := p.Par.GrowthFactor(1 / (1 + p.Z))
	return p.Spec.SigmaM(m) * d
}

// dlnSigmaInvdlnM returns dln(1/sigma)/dlnM by finite difference.
func (p *Predictor) dlnSigmaInvdlnM(m float64) float64 {
	const h = 0.05
	s1 := p.sigma(m * math.Exp(-h))
	s2 := p.sigma(m * math.Exp(h))
	return -(math.Log(s2) - math.Log(s1)) / (2 * h)
}

// fTinker08 is the multiplicity function f(sigma) for Delta = 200 (mean).
func fTinker08(sigma, z float64) float64 {
	// Parameters at Delta=200 from Tinker et al. 2008, Table 2, with the
	// prescribed redshift evolution.
	A0, a0, b0, c0 := 0.186, 1.47, 2.57, 1.19
	A := A0 * math.Pow(1+z, -0.14)
	a := a0 * math.Pow(1+z, -0.06)
	alpha := math.Pow(10, -math.Pow(0.75/math.Log10(200.0/75.0), 1.2))
	b := b0 * math.Pow(1+z, -alpha)
	c := c0
	return A * (math.Pow(sigma/b, -a) + 1) * math.Exp(-c/(sigma*sigma))
}

// fWarren06 is the FOF multiplicity function of Warren et al. (2006).
func fWarren06(sigma float64) float64 {
	const (
		aW = 0.7234
		bW = 1.625
		cW = 0.2538
		dW = 1.1982
	)
	return aW * (math.Pow(sigma, -bW) + cW) * math.Exp(-dW/(sigma*sigma))
}

// DnDlnM returns the predicted dn/dlnM [h^3/Mpc^3] at halo mass m
// (1e10 Msun/h).
func (p *Predictor) DnDlnM(fit Fit, m float64) float64 {
	sigma := p.sigma(m)
	var f float64
	switch fit {
	case Warren06:
		f = fWarren06(sigma)
	default:
		f = fTinker08(sigma, p.Z)
	}
	rhoM := p.Par.MeanMatterDensity()
	return f * rhoM / m * p.dlnSigmaInvdlnM(m)
}

// RatioToFit divides a measured mass function by the analytic prediction,
// returning (mass, ratio, poisson error) triples — the quantity plotted in
// Figure 8.
func (p *Predictor) RatioToFit(fit Fit, bins []Bin) (m, ratio, errp []float64) {
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		pred := p.DnDlnM(fit, b.MCenter)
		if pred <= 0 {
			continue
		}
		m = append(m, b.MCenter)
		ratio = append(ratio, b.NDensity/pred)
		errp = append(errp, b.Poisson/pred)
	}
	return
}
