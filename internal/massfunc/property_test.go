package massfunc

import (
	"math"
	"math/rand"
	"testing"
)

// TestMeasurePartitionProperty drives Measure over seeded random mass samples
// and bin layouts and checks the binning invariants the analysis catalogs
// rely on:
//
//   - the bin edges partition [mMin, mMax): contiguous, increasing, first
//     edge at mMin, last within rounding of mMax;
//   - every mass in [mMin, mMax) lands in exactly one bin, so the counts sum
//     to the in-range sample count even when log/divide rounding pushes a
//     mass against a bin edge;
//   - NDensity and Poisson are consistent with the counts, and Poisson is
//     never negative (zero only for empty bins).
func TestMeasurePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		nBins := 1 + rng.Intn(24)
		mMin := math.Exp(rng.Float64()*8 - 2)
		mMax := mMin * math.Exp(0.1+rng.Float64()*6)
		boxSize := 10 + rng.Float64()*200

		n := rng.Intn(500)
		masses := make([]float64, n)
		inRange := 0
		for i := range masses {
			// Spread samples a little beyond the range so the out-of-range
			// rejection is exercised, and place a fraction exactly on edges.
			m := mMin * math.Exp((rng.Float64()*1.2-0.1)*math.Log(mMax/mMin))
			if rng.Intn(10) == 0 {
				dln := math.Log(mMax/mMin) / float64(nBins)
				m = mMin * math.Exp(float64(rng.Intn(nBins+1))*dln)
			}
			masses[i] = m
			if m >= mMin && m < mMax {
				inRange++
			}
		}

		bins := Measure(masses, boxSize, mMin, mMax, nBins)
		if len(bins) != nBins {
			t.Fatalf("trial %d: got %d bins, want %d", trial, len(bins), nBins)
		}

		if bins[0].MLo != mMin {
			t.Fatalf("trial %d: first edge %g, want mMin %g", trial, bins[0].MLo, mMin)
		}
		for i, b := range bins {
			if !(b.MLo < b.MHi) {
				t.Fatalf("trial %d: bin %d not increasing: [%g, %g)", trial, i, b.MLo, b.MHi)
			}
			if i > 0 && b.MLo != bins[i-1].MHi {
				t.Fatalf("trial %d: gap between bin %d and %d: %g vs %g",
					trial, i-1, i, bins[i-1].MHi, b.MLo)
			}
			if c := math.Sqrt(b.MLo * b.MHi); math.Abs(c-b.MCenter) > 1e-9*c {
				t.Fatalf("trial %d: bin %d center %g, want geometric %g", trial, i, b.MCenter, c)
			}
		}
		if last := bins[nBins-1].MHi; math.Abs(last-mMax) > 1e-9*mMax {
			t.Fatalf("trial %d: last edge %g, want mMax %g", trial, last, mMax)
		}

		total := 0
		vol := boxSize * boxSize * boxSize
		dln := math.Log(mMax/mMin) / float64(nBins)
		for i, b := range bins {
			total += b.Count
			if b.Count < 0 {
				t.Fatalf("trial %d: negative count in bin %d", trial, i)
			}
			wantN := float64(b.Count) / vol / dln
			if math.Abs(b.NDensity-wantN) > 1e-12*math.Max(wantN, 1) {
				t.Fatalf("trial %d: bin %d NDensity %g, want %g", trial, i, b.NDensity, wantN)
			}
			wantP := math.Sqrt(float64(b.Count)) / vol / dln
			if b.Poisson < 0 || math.Abs(b.Poisson-wantP) > 1e-12*math.Max(wantP, 1) {
				t.Fatalf("trial %d: bin %d Poisson %g, want %g", trial, i, b.Poisson, wantP)
			}
			if b.Count > 0 && b.Poisson <= 0 {
				t.Fatalf("trial %d: bin %d has %d counts but Poisson %g", trial, i, b.Count, b.Poisson)
			}
		}
		if total != inRange {
			t.Fatalf("trial %d: counts sum to %d, want %d in-range masses (nBins=%d, range [%g, %g))",
				trial, total, inRange, nBins, mMin, mMax)
		}
	}
}

// TestMeasureEdgeMassNeverDropped pins the rounding fix directly: a mass an
// ulp below a bin edge must not fall out of the histogram.
func TestMeasureEdgeMassNeverDropped(t *testing.T) {
	const mMin, mMax, nBins = 1.0, 1024.0, 10
	dln := math.Log(mMax/mMin) / nBins
	var masses []float64
	for i := 0; i <= nBins; i++ {
		edge := mMin * math.Exp(float64(i)*dln)
		masses = append(masses,
			math.Nextafter(edge, 0),           // just below
			edge,                              // exact
			math.Nextafter(edge, math.Inf(1))) // just above
	}
	inRange := 0
	for _, m := range masses {
		if m >= mMin && m < mMax {
			inRange++
		}
	}
	bins := Measure(masses, 100, mMin, mMax, nBins)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != inRange {
		t.Fatalf("edge masses: counts sum to %d, want %d", total, inRange)
	}
}

func TestMeasureDegenerateInputs(t *testing.T) {
	if bins := Measure([]float64{1, 2}, 100, 5, 5, 4); bins != nil {
		t.Error("mMax == mMin must return nil")
	}
	if bins := Measure([]float64{1, 2}, 100, 5, 1, 4); bins != nil {
		t.Error("mMax < mMin must return nil")
	}
	if bins := Measure(nil, 100, 1, 10, 0); bins != nil {
		t.Error("nBins < 1 must return nil")
	}
	bins := Measure(nil, 100, 1, 10, 3)
	if len(bins) != 3 {
		t.Fatal("empty sample must still return the requested empty bins")
	}
	for _, b := range bins {
		if b.Count != 0 || b.NDensity != 0 || b.Poisson != 0 {
			t.Error("empty sample produced nonzero bin statistics")
		}
	}
}
