package massfunc

import (
	"math"
	"testing"

	"twohot/internal/cosmo"
	"twohot/internal/transfer"
)

func TestMeasureCountsAndVolume(t *testing.T) {
	masses := []float64{1, 2, 4, 8, 16, 32, 64}
	bins := Measure(masses, 100, 1, 100, 7)
	totalCount := 0
	for _, b := range bins {
		totalCount += b.Count
		if b.Count > 0 && b.NDensity <= 0 {
			t.Error("non-empty bin with zero density")
		}
		if b.MCenter < b.MLo || b.MCenter > b.MHi {
			t.Error("bin center outside bin")
		}
	}
	if totalCount != len(masses) {
		t.Errorf("binned %d of %d halos", totalCount, len(masses))
	}
}

func TestTinker08ReasonableAbundance(t *testing.T) {
	par := cosmo.Planck2013()
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	p := NewPredictor(par, spec, 0)
	// dn/dlnM at 1e13 Msun/h (1e3 internal) should be around 1e-4 to 1e-3
	// halos per (Mpc/h)^3, and drop precipitously by 1e15.
	n13 := p.DnDlnM(Tinker08, 1e3)
	n15 := p.DnDlnM(Tinker08, 1e5)
	if n13 < 1e-5 || n13 > 1e-2 {
		t.Errorf("dn/dlnM(1e13) = %g", n13)
	}
	if n15 >= n13 {
		t.Error("mass function must decrease with mass")
	}
	if n15 < 1e-9 || n15 > 1e-4 {
		t.Errorf("dn/dlnM(1e15) = %g", n15)
	}
	// Warren06 (FOF) should be within a factor of a few of Tinker08.
	w := p.DnDlnM(Warren06, 1e3)
	if w/n13 < 0.3 || w/n13 > 3 {
		t.Errorf("Warren06/Tinker08 at 1e13 = %g", w/n13)
	}
}

func TestMassFunctionRedshiftEvolution(t *testing.T) {
	par := cosmo.Planck2013()
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	p0 := NewPredictor(par, spec, 0)
	p1 := NewPredictor(par, spec, 1)
	// Cluster-scale halos are far rarer at z=1 than today.
	if p1.DnDlnM(Tinker08, 3e4) >= p0.DnDlnM(Tinker08, 3e4) {
		t.Error("cluster abundance should decrease with redshift")
	}
}

func TestRatioToFit(t *testing.T) {
	par := cosmo.Planck2013()
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	p := NewPredictor(par, spec, 0)
	bins := []Bin{{MLo: 900, MHi: 1100, MCenter: 1000, Count: 10, NDensity: p.DnDlnM(Tinker08, 1000), Poisson: 1e-6}}
	m, ratio, _ := p.RatioToFit(Tinker08, bins)
	if len(m) != 1 || math.Abs(ratio[0]-1) > 1e-9 {
		t.Errorf("ratio of the prediction to itself must be 1, got %v", ratio)
	}
}
