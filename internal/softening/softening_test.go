package softening

import (
	"math"
	"testing"
)

func TestAllKernelsNewtonianFarField(t *testing.T) {
	eps := 0.1
	r := 5.0
	for _, k := range []Kernel{None, Plummer, Spline, DehnenK1} {
		ff := ForceFactor(k, r, eps)
		pf := PotentialFactor(k, r, eps)
		if math.Abs(ff-1/(r*r*r))/(1/(r*r*r)) > 2e-3 {
			t.Errorf("%v force factor at large r: %g", k, ff)
		}
		if math.Abs(pf-1/r)/(1/r) > 2e-3 {
			t.Errorf("%v potential factor at large r: %g", k, pf)
		}
	}
}

func TestCompactKernelsExactBeyondSupport(t *testing.T) {
	h := 0.5
	r := 0.5001
	for _, k := range []Kernel{Spline, DehnenK1} {
		if ForceFactor(k, r, h) != 1/(r*r*r) {
			t.Errorf("%v should be exactly Newtonian beyond the support", k)
		}
		if PotentialFactor(k, r, h) != 1/r {
			t.Errorf("%v potential should be exactly 1/r beyond the support", k)
		}
	}
}

func TestForceContinuity(t *testing.T) {
	h := 1.0
	for _, k := range []Kernel{Plummer, Spline, DehnenK1} {
		for _, r := range []float64{0.4999, 0.5001, 0.9999, 1.0001} {
			lo := ForceFactor(k, r*(1-1e-6), h)
			hi := ForceFactor(k, r*(1+1e-6), h)
			if lo == 0 && hi == 0 {
				continue
			}
			if math.Abs(hi-lo)/math.Max(math.Abs(hi), math.Abs(lo)) > 1e-3 {
				t.Errorf("%v force discontinuous at r=%g: %g vs %g", k, r, lo, hi)
			}
		}
	}
}

func TestForceVanishesAtZero(t *testing.T) {
	for _, k := range []Kernel{Plummer, Spline, DehnenK1} {
		// acceleration = m * g(r) * r; at r -> 0 it must go to zero.
		r := 1e-8
		a := ForceFactor(k, r, 1.0) * r
		if math.Abs(a) > 1e-3 {
			t.Errorf("%v force does not vanish at the origin: %g", k, a)
		}
	}
}

func TestCompensationProperty(t *testing.T) {
	// The paper adopts Dehnen's conclusion that the optimal kernel
	// compensates: its force exceeds Newtonian somewhere inside the support.
	if r := MaxForceRatio(DehnenK1, 1.0); r <= 1.0 {
		t.Errorf("compensating kernel max force ratio %g, want > 1", r)
	}
	if r := MaxForceRatio(Plummer, 1.0); r > 1.0+1e-12 {
		t.Errorf("plummer should never exceed Newtonian, got %g", r)
	}
	if r := MaxForceRatio(Spline, 1.0); r > 1.0+1e-9 {
		t.Errorf("spline should never exceed Newtonian, got %g", r)
	}
}

func TestSplineMatchesGadgetValues(t *testing.T) {
	// Spot-check the GADGET-2 piecewise polynomial at u = 0.25 and 0.75.
	h := 1.0
	u := 0.25
	want := 10.666666666666666 + u*u*(32.0*u-38.4)
	if got := ForceFactor(Spline, u, h); math.Abs(got-want) > 1e-12 {
		t.Errorf("spline at u=0.25: %g want %g", got, want)
	}
	u = 0.75
	want = 21.333333333333332 - 48.0*u + 38.4*u*u - 10.666666666666666*u*u*u - 0.06666666666666667/(u*u*u)
	if got := ForceFactor(Spline, u, h); math.Abs(got-want) > 1e-12 {
		t.Errorf("spline at u=0.75: %g want %g", got, want)
	}
}

func TestParseKernel(t *testing.T) {
	for _, tc := range []struct {
		s  string
		k  Kernel
		ok bool
	}{
		{"plummer", Plummer, true},
		{"spline", Spline, true},
		{"dehnen-k1", DehnenK1, true},
		{"k1", DehnenK1, true},
		{"", None, true},
		{"nonsense", None, false},
	} {
		k, ok := ParseKernel(tc.s)
		if ok != tc.ok || (ok && k != tc.k) {
			t.Errorf("ParseKernel(%q) = %v, %v", tc.s, k, ok)
		}
	}
	if DehnenK1.String() != "dehnen-k1" || Plummer.String() != "plummer" {
		t.Error("String()")
	}
}

func TestFactorsMatchSeparateCalls(t *testing.T) {
	// The fused entry point must agree bit-for-bit with the two separate
	// calls: the traversal equivalence suite compares new-path forces against
	// the legacy path with ==.
	rs := []float64{0, 1e-170, 1e-9, 0.01, 0.24, 0.25, 0.5, 0.74, 0.99, 1.0, 1.5, 7.3}
	epss := []float64{0, 0.01, 0.3, 1.0}
	for _, k := range []Kernel{None, Plummer, Spline, DehnenK1, Kernel(99)} {
		for _, r := range rs {
			for _, eps := range epss {
				ff, pf := Factors(k, r, eps)
				wantFF := ForceFactor(k, r, eps)
				wantPF := PotentialFactor(k, r, eps)
				ffSame := ff == wantFF || (math.IsNaN(ff) && math.IsNaN(wantFF))
				pfSame := pf == wantPF || (math.IsNaN(pf) && math.IsNaN(wantPF))
				if !ffSame || !pfSame {
					t.Errorf("Factors(%v, %g, %g) = (%g, %g), want (%g, %g)",
						k, r, eps, ff, pf, wantFF, wantPF)
				}
			}
		}
	}
}
