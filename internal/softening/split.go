package softening

import "math"

// TreePM force-split kernels (the GADGET-2-style Gaussian split the TreePM
// composite uses): the mesh long range carries the k-space Gaussian filter
// exp(-k^2 rs^2), and every real-space short-range interaction — pairwise or
// multipole — is damped by the complementary factors below so the two halves
// sum to the full Newtonian force.  With u = r/(2 rs):
//
//	potential:  1/r        -> erfc(u)/r
//	force:      1/r^2      -> [erfc(u) + (2u/sqrt(pi)) e^{-u^2}] / r^2
//
// The force factor is minus the derivative of the damped potential, so the
// split is exact for point masses.  Both the brute-force cell-list short
// range (internal/pm) and the tree-walk short range (internal/traverse)
// evaluate these through SplitFactors, keeping their per-pair arithmetic
// expression-identical — the property the small-N oracle comparison between
// the two paths relies on.

// SplitFactors returns the short-range damping factors at pair distance r for
// Gaussian split scale rs: ff multiplies the Newtonian (or softened) force
// factor, pf the potential factor.  The shared erfc and exponential are
// computed once.
func SplitFactors(r, rs float64) (ff, pf float64) {
	u := r / (2 * rs)
	pf = math.Erfc(u)
	ff = pf + 2*u/math.Sqrt(math.Pi)*math.Exp(-u*u)
	return ff, pf
}

// SplitForceFactor returns only the force damping factor of SplitFactors.
func SplitForceFactor(r, rs float64) float64 {
	ff, _ := SplitFactors(r, rs)
	return ff
}

// SplitPotentialFactor returns only the potential damping factor erfc(r/2rs).
func SplitPotentialFactor(r, rs float64) float64 {
	return math.Erfc(r / (2 * rs))
}
