// Package softening implements the force-smoothing kernels of Section 2.5:
// the Plummer kernel, the cubic-spline kernel of GADGET-2, and a compensating
// kernel of the Dehnen (2001) family (playing the role of his K1) whose force
// exceeds Newtonian near the kernel edge so that the net force bias of the
// smoothing is reduced.  2HOT uses the compensating kernel for production
// runs and the others when comparing against other codes.
package softening

import "math"

// Kernel identifies a force-smoothing law.
type Kernel int

const (
	// Plummer softening: F = m r / (r^2 + eps^2)^{3/2}.  eps is the Plummer
	// scale.
	Plummer Kernel = iota
	// Spline is the cubic-spline softening used by GADGET-2; the force is
	// exactly Newtonian beyond r = h (h is the kernel support handed to the
	// functions below).
	Spline
	// DehnenK1 is a compensating kernel of the Dehnen (2001) family: the
	// density changes sign inside the support so the enclosed mass (and
	// hence the force) overshoots Newtonian near the edge, cancelling the
	// interior bias.  We use the polynomial member with density
	// proportional to (1-x^2)(1-1.5x^2).
	DehnenK1
	// None disables smoothing (pure Newtonian 1/r^2).
	None
)

func (k Kernel) String() string {
	switch k {
	case Plummer:
		return "plummer"
	case Spline:
		return "spline"
	case DehnenK1:
		return "dehnen-k1"
	case None:
		return "none"
	default:
		return "unknown"
	}
}

// ParseKernel maps a configuration string to a Kernel.
func ParseKernel(s string) (Kernel, bool) {
	switch s {
	case "plummer":
		return Plummer, true
	case "spline":
		return Spline, true
	case "dehnen-k1", "dehnen", "k1":
		return DehnenK1, true
	case "none", "":
		return None, true
	default:
		return None, false
	}
}

// ForceFactor returns g(r) such that the pairwise acceleration is
// a = m * g(r) * (vector from sink to source); g approaches 1/r^3 for
// r >> eps and every kernel except Plummer is exactly Newtonian beyond its
// support.
func ForceFactor(k Kernel, r, eps float64) float64 {
	switch k {
	case None:
		if r == 0 {
			return 0
		}
		return 1 / (r * r * r)
	case Plummer:
		d2 := r*r + eps*eps
		if d2 == 0 {
			return 0
		}
		return 1 / (d2 * math.Sqrt(d2))
	case Spline:
		return splineForceFactor(r, eps)
	case DehnenK1:
		return compensatingForceFactor(r, eps)
	default:
		if r == 0 {
			return 0
		}
		return 1 / (r * r * r)
	}
}

// PotentialFactor returns p(r) such that the pairwise kernel-sum contribution
// is m * p(r); p approaches 1/r at large r.  (The physical potential is the
// negative of the kernel sum.)
func PotentialFactor(k Kernel, r, eps float64) float64 {
	switch k {
	case None:
		if r == 0 {
			return 0
		}
		return 1 / r
	case Plummer:
		return 1 / math.Sqrt(r*r+eps*eps)
	case Spline:
		return splinePotentialFactor(r, eps)
	case DehnenK1:
		return compensatingPotentialFactor(r, eps)
	default:
		if r == 0 {
			return 0
		}
		return 1 / r
	}
}

// Factors returns ForceFactor and PotentialFactor together.  The batched
// particle-particle kernels call it once per pair instead of switching on the
// kernel twice; for None and Plummer the shared intermediates (the inverse
// distance and the softened distance) are computed once.  The results are
// bit-identical to the two separate calls for every kernel, which the
// traversal equivalence suite relies on.
func Factors(k Kernel, r, eps float64) (ff, pf float64) {
	switch k {
	case None:
		if r == 0 {
			return 0, 0
		}
		return 1 / (r * r * r), 1 / r
	case Plummer:
		d2 := r*r + eps*eps
		if d2 == 0 {
			// ForceFactor guards the division; PotentialFactor does not and
			// yields +Inf, preserved here for exact agreement.
			return 0, math.Inf(1)
		}
		s := math.Sqrt(d2)
		return 1 / (d2 * s), 1 / s
	case Spline:
		return splineForceFactor(r, eps), splinePotentialFactor(r, eps)
	case DehnenK1:
		return compensatingForceFactor(r, eps), compensatingPotentialFactor(r, eps)
	default:
		if r == 0 {
			return 0, 0
		}
		return 1 / (r * r * r), 1 / r
	}
}

// splineForceFactor follows GADGET-2: h is the spline support radius and the
// acceleration is m*g(r)*r with the piecewise polynomial below.
func splineForceFactor(r, h float64) float64 {
	if h <= 0 || r >= h {
		if r == 0 {
			return 0
		}
		return 1 / (r * r * r)
	}
	u := r / h
	h3 := h * h * h
	if u < 0.5 {
		return (10.666666666666666 + u*u*(32.0*u-38.4)) / h3
	}
	return (21.333333333333332 - 48.0*u + 38.4*u*u - 10.666666666666666*u*u*u - 0.06666666666666667/(u*u*u)) / h3
}

func splinePotentialFactor(r, h float64) float64 {
	if h <= 0 || r >= h {
		if r == 0 {
			return 0
		}
		return 1 / r
	}
	u := r / h
	var wp float64
	if u < 0.5 {
		wp = -2.8 + u*u*(5.333333333333333+u*u*(6.4*u-9.6))
	} else {
		wp = -3.2 + 0.06666666666666667/u + u*u*(10.666666666666666+u*(-16.0+u*(9.6-2.1333333333333333*u)))
	}
	return -wp / h
}

// Compensating kernel: density rho(x) = A (1 - x^2)(1 - a x^2) for x = r/h < 1
// with a = 1.5, normalized to unit mass.  The enclosed mass peaks at about
// 1.09 of the total near x = 0.82, so the force there exceeds Newtonian —
// exactly the compensation property the paper adopts from Dehnen (2001).
const compA = 1.5

// compNorm is (14 - 6a)/105, the normalized total-mass integral.
const compNorm = (14.0 - 6.0*compA) / 105.0

func compEnclosed(u float64) float64 {
	u3 := u * u * u
	u5 := u3 * u * u
	u7 := u5 * u * u
	return u3/3 - (1+compA)*u5/5 + compA*u7/7
}

func compOuterPotential(u float64) float64 {
	// g(x) = x^2/2 - (1+a) x^4/4 + a x^6/6
	g := func(x float64) float64 {
		x2 := x * x
		x4 := x2 * x2
		x6 := x4 * x2
		return x2/2 - (1+compA)*x4/4 + compA*x6/6
	}
	return g(1) - g(u)
}

func compensatingForceFactor(r, h float64) float64 {
	if h <= 0 || r >= h {
		if r == 0 {
			return 0
		}
		return 1 / (r * r * r)
	}
	if r == 0 {
		return 0
	}
	u := r / h
	return compEnclosed(u) / compNorm / (r * r * r)
}

func compensatingPotentialFactor(r, h float64) float64 {
	if h <= 0 || r >= h {
		if r == 0 {
			return 0
		}
		return 1 / r
	}
	u := r / h
	if u == 0 {
		// Central potential: all mass outside.
		return compOuterPotential(0) / compNorm / h
	}
	return (compEnclosed(u)/u + compOuterPotential(u)) / compNorm / h
}

// MaxForceRatio returns the maximum of (kernel force)/(Newtonian force)
// inside the support, a diagnostic of the compensation property (> 1 for
// compensating kernels, <= 1 for Plummer and spline).
func MaxForceRatio(k Kernel, h float64) float64 {
	maxR := 0.0
	for i := 1; i <= 1000; i++ {
		r := h * float64(i) / 1000
		ratio := ForceFactor(k, r, h) * (r * r * r)
		if ratio > maxR {
			maxR = ratio
		}
	}
	return maxR
}
