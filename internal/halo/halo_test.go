package halo

import (
	"math"
	"math/rand"
	"testing"

	"twohot/internal/vec"
)

// mockUniverse places nHalo compact clumps plus a uniform background in a
// periodic box.
func mockUniverse(nHalo, perHalo, background int, box float64, seed int64) ([]vec.V3, []float64, []vec.V3) {
	rng := rand.New(rand.NewSource(seed))
	var pos []vec.V3
	var centers []vec.V3
	for h := 0; h < nHalo; h++ {
		c := vec.V3{box * rng.Float64(), box * rng.Float64(), box * rng.Float64()}
		centers = append(centers, c)
		for i := 0; i < perHalo; i++ {
			pos = append(pos, vec.WrapV(vec.V3{
				c[0] + 0.01*box*rng.NormFloat64(),
				c[1] + 0.01*box*rng.NormFloat64(),
				c[2] + 0.01*box*rng.NormFloat64(),
			}, box))
		}
	}
	for i := 0; i < background; i++ {
		pos = append(pos, vec.V3{box * rng.Float64(), box * rng.Float64(), box * rng.Float64()})
	}
	mass := make([]float64, len(pos))
	for i := range mass {
		mass[i] = 1
	}
	return pos, mass, centers
}

func TestFOFFindsPlantedHalos(t *testing.T) {
	const nHalo = 5
	pos, mass, centers := mockUniverse(nHalo, 200, 1000, 100, 1)
	halos := FOF(pos, mass, Options{BoxSize: 100, MinMembers: 50})
	if len(halos) != nHalo {
		t.Fatalf("found %d halos, planted %d", len(halos), nHalo)
	}
	for _, h := range halos {
		if h.N < 180 || h.N > 260 {
			t.Errorf("halo membership %d out of expected range", h.N)
		}
		// Each found halo must be near a planted center.
		best := math.Inf(1)
		for _, c := range centers {
			d := vec.MinImageV(h.Center.Sub(c), 100).Norm()
			if d < best {
				best = d
			}
		}
		if best > 3 {
			t.Errorf("halo center %v is %.1f Mpc/h from the nearest planted center", h.Center, best)
		}
	}
	// Halos are sorted by decreasing mass.
	for i := 1; i < len(halos); i++ {
		if halos[i].Mass > halos[i-1].Mass {
			t.Error("halos not sorted by mass")
		}
	}
}

func TestFOFPartitionProperties(t *testing.T) {
	pos, mass, _ := mockUniverse(3, 100, 300, 50, 2)
	halos := FOF(pos, mass, Options{BoxSize: 50, MinMembers: 20, KeepMembers: true})
	seen := map[int]bool{}
	for _, h := range halos {
		if len(h.Members) != h.N {
			t.Fatalf("member list length %d != N %d", len(h.Members), h.N)
		}
		for _, m := range h.Members {
			if seen[m] {
				t.Fatalf("particle %d assigned to two halos", m)
			}
			seen[m] = true
		}
	}
}

func TestSphericalOverdensityMass(t *testing.T) {
	pos, mass, _ := mockUniverse(2, 800, 200, 100, 3)
	opt := Options{BoxSize: 100, MinMembers: 100}
	halos := FOF(pos, mass, opt)
	SphericalOverdensity(pos, mass, halos, opt)
	for _, h := range halos {
		if h.M200b <= 0 || h.R200b <= 0 {
			t.Errorf("SO mass not computed for halo with %d members", h.N)
			continue
		}
		// The mean density inside R200b must be at least the 200x-mean
		// threshold (the mock clumps have hard edges, so the discrete
		// enclosed-density profile can overshoot right at the boundary).
		rhoMean := float64(len(pos)) / (100 * 100 * 100)
		got := h.M200b / (4.0 / 3.0 * math.Pi * math.Pow(h.R200b, 3))
		if got < 190*rhoMean {
			t.Errorf("enclosed density %.1f x mean, want >= 200x", got/rhoMean)
		}
		// The SO mass must be comparable to the FOF mass of the clump.
		if h.M200b < 0.5*h.Mass || h.M200b > 1.5*h.Mass {
			t.Errorf("M200b %.0f vs FOF mass %.0f", h.M200b, h.Mass)
		}
	}
}
