package halo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"twohot/internal/vec"
)

// TestFOFLinksAcrossPeriodicWrap plants one clump straddling a box corner:
// the finder must link its pieces across all three wrapped faces into a
// single group and report an in-box center consistent with the planted one.
func TestFOFLinksAcrossPeriodicWrap(t *testing.T) {
	const box = 50.0
	rng := rand.New(rand.NewSource(9))
	center := vec.V3{0.002 * box, 0.998 * box, 0.001 * box}
	var pos []vec.V3
	for i := 0; i < 400; i++ {
		pos = append(pos, vec.WrapV(vec.V3{
			center[0] + 0.008*box*rng.NormFloat64(),
			center[1] + 0.008*box*rng.NormFloat64(),
			center[2] + 0.008*box*rng.NormFloat64(),
		}, box))
	}
	mass := make([]float64, len(pos))
	for i := range mass {
		mass[i] = 1
	}
	halos := FOF(pos, mass, Options{BoxSize: box, MinMembers: 50})
	if len(halos) != 1 {
		t.Fatalf("corner clump split into %d groups; the wrap did not link", len(halos))
	}
	if halos[0].N != len(pos) {
		t.Errorf("group holds %d of %d particles", halos[0].N, len(pos))
	}
	for _, c := range [...]vec.V3{halos[0].Center, halos[0].CenterOfM} {
		for k := 0; k < 3; k++ {
			if c[k] < 0 || c[k] >= box {
				t.Fatalf("center %v outside the box", c)
			}
		}
		if d := vec.MinImageV(c.Sub(center), box).Norm(); d > 2 {
			t.Errorf("center %v is %.2f Mpc/h from the planted corner clump", c, d)
		}
	}
}

// TestFindersDeterministicAcrossWorkers pins the bit-determinism contract the
// in-situ analysis catalogs rely on: the FOF output and the parallel SO pass
// must be identical — field for field, in order — for every worker count.
func TestFindersDeterministicAcrossWorkers(t *testing.T) {
	pos, mass, _ := mockUniverse(4, 150, 800, 80, 5)
	var ref []Halo
	for _, workers := range []int{1, 2, 3, 8} {
		opt := Options{BoxSize: 80, MinMembers: 20, Workers: workers}
		halos := FOF(pos, mass, opt)
		SphericalOverdensity(pos, mass, halos, opt)
		if ref == nil {
			ref = halos
			if len(ref) < 2 {
				t.Fatalf("fixture found %d halos; determinism check needs a few", len(ref))
			}
			continue
		}
		if !reflect.DeepEqual(ref, halos) {
			t.Fatalf("catalog differs between 1 and %d workers", workers)
		}
	}
}

// TestFOFEqualMassTieBreakDeterministic plants two identical-count clumps of
// unit-mass particles (equal FOF mass) and checks the documented tie-break:
// equal mass and equal N order by lowest member index, which is unique.
func TestFOFEqualMassTieBreakDeterministic(t *testing.T) {
	const box = 40.0
	var pos []vec.V3
	add := func(c vec.V3) {
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 60; i++ {
			pos = append(pos, vec.WrapV(vec.V3{
				c[0] + 0.05*rng.NormFloat64(),
				c[1] + 0.05*rng.NormFloat64(),
				c[2] + 0.05*rng.NormFloat64(),
			}, box))
		}
	}
	add(vec.V3{10, 10, 10})
	add(vec.V3{30, 30, 30}) // same seed: identical shape, so identical N and mass
	mass := make([]float64, len(pos))
	for i := range mass {
		mass[i] = 1
	}
	opt := Options{BoxSize: box, MinMembers: 10}
	ref := FOF(pos, mass, opt)
	if len(ref) != 2 || ref[0].Mass != ref[1].Mass || ref[0].N != ref[1].N {
		t.Fatalf("fixture did not produce an exact tie: %+v", ref)
	}
	if ref[0].ID >= ref[1].ID {
		t.Errorf("tie not broken by ascending halo ID: %d then %d", ref[0].ID, ref[1].ID)
	}
	for i := 0; i < 5; i++ {
		if got := FOF(pos, mass, opt); !reflect.DeepEqual(ref, got) {
			t.Fatal("tied catalog order varies between runs")
		}
	}
}

// TestOptionsValidateAndDefaults covers the unset-vs-explicit-zero audit:
// zero means the documented default, negative and non-finite values are
// rejected by Validate, and the finders degrade out-of-range values to the
// defaults instead of misbehaving.
func TestOptionsValidateAndDefaults(t *testing.T) {
	ok := Options{BoxSize: 64}
	if err := ok.Validate(); err != nil {
		t.Errorf("zero-value options rejected: %v", err)
	}
	bad := []Options{
		{BoxSize: -1},
		{BoxSize: 64, LinkingLength: -0.2},
		{BoxSize: 64, LinkingLength: math.NaN()},
		{BoxSize: 64, MinMembers: -1},
		{BoxSize: 64, OverdensityB: -200},
		{BoxSize: 64, OverdensityB: math.Inf(1)},
		{BoxSize: 64, Workers: -2},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}

	// Zero linking length means b=0.2, not "link nothing": the finder over a
	// planted clump must behave identically to an explicit 0.2.
	pos, mass, _ := mockUniverse(2, 120, 200, 50, 7)
	def := FOF(pos, mass, Options{BoxSize: 50, MinMembers: 20})
	exp := FOF(pos, mass, Options{BoxSize: 50, MinMembers: 20, LinkingLength: 0.2})
	if !reflect.DeepEqual(def, exp) {
		t.Error("LinkingLength 0 is not the documented default 0.2")
	}
	// MinMembers 1 must be honored as "no cut" (every particle is a group),
	// distinct from 0 = default 20.
	nocut := FOF(pos, mass, Options{BoxSize: 50, MinMembers: 1})
	total := 0
	for _, h := range nocut {
		total += h.N
	}
	if total != len(pos) {
		t.Errorf("MinMembers 1 kept %d of %d particles; want all (no cut)", total, len(pos))
	}
}
