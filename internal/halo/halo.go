// Package halo identifies dark-matter halos in particle snapshots: the
// friends-of-friends (FOF) group finder used since the original HOT analysis
// pipeline (vfind), and spherical-overdensity (SO) masses (M200 with respect
// to the mean density) of the kind used by the Tinker et al. (2008)
// calibration that Figure 8 compares against.
package halo

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"twohot/internal/vec"
)

// Halo is one identified group.
type Halo struct {
	ID        int
	N         int     // member particle count (FOF)
	Mass      float64 // FOF mass
	M200b     float64 // spherical-overdensity mass at 200x mean density
	R200b     float64
	Center    vec.V3 // center (position of the minimum-potential proxy: densest neighborhood)
	CenterOfM vec.V3
	Members   []int // particle indices (only kept when Options.KeepMembers)
}

// Options configures the finders.
//
// Zero-value semantics: for LinkingLength, MinMembers and OverdensityB the
// zero value means "use the default" (0.2, 20 and 200 respectively), not an
// explicit zero — a plain struct field cannot distinguish the two.  An
// explicit zero would be meaningless anyway: a zero linking length links
// nothing and a zero overdensity threshold is unreachable, so no information
// is lost.  The one real request the sentinel could shadow — "no membership
// threshold" — is expressed as MinMembers = 1 (every FOF group has at least
// one member, so 1 disables the cut exactly).  Negative values are never
// defaults and never valid; Validate rejects them, and the finders apply it.
type Options struct {
	BoxSize       float64 // periodic box size (0 = non-periodic)
	LinkingLength float64 // FOF linking length in units of the mean interparticle separation (0 = default 0.2)
	MinMembers    int     // minimum FOF membership (0 = default 20; 1 disables the cut)
	KeepMembers   bool
	OverdensityB  float64 // SO overdensity with respect to the mean density (0 = default 200)
	// Workers bounds the goroutines of the parallel finders (currently the
	// spherical-overdensity pass, which is independent per halo).  0 means
	// GOMAXPROCS.  Results are bit-identical for every worker count.
	Workers int
}

// Validate rejects option values that are not expressible requests: negative
// or NaN lengths and thresholds, negative worker counts.  The zero value (and
// any mix of zero fields) is always valid — zeros mean defaults, as
// documented on the struct.
func (o Options) Validate() error {
	if o.BoxSize < 0 || math.IsNaN(o.BoxSize) || math.IsInf(o.BoxSize, 0) {
		return fmt.Errorf("halo: box size %g must be finite and >= 0 (0 = non-periodic)", o.BoxSize)
	}
	if o.LinkingLength < 0 || math.IsNaN(o.LinkingLength) || math.IsInf(o.LinkingLength, 0) {
		return fmt.Errorf("halo: linking length %g must be finite and >= 0 (0 = default 0.2)", o.LinkingLength)
	}
	if o.MinMembers < 0 {
		return fmt.Errorf("halo: min members %d must be >= 0 (0 = default 20, 1 = no cut)", o.MinMembers)
	}
	if o.OverdensityB < 0 || math.IsNaN(o.OverdensityB) || math.IsInf(o.OverdensityB, 0) {
		return fmt.Errorf("halo: overdensity %g must be finite and >= 0 (0 = default 200)", o.OverdensityB)
	}
	if o.Workers < 0 {
		return fmt.Errorf("halo: workers %d must be >= 0 (0 = GOMAXPROCS)", o.Workers)
	}
	return nil
}

func (o *Options) defaults(n int) {
	if o.LinkingLength == 0 {
		o.LinkingLength = 0.2
	}
	if o.MinMembers == 0 {
		o.MinMembers = 20
	}
	if o.OverdensityB == 0 {
		o.OverdensityB = 200
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// Out-of-range values degrade to the defaults as well, so the finders
	// (which cannot return an error) stay total; callers that want the
	// failure surfaced run Validate first — the simulation's configuration
	// path does.
	if o.LinkingLength < 0 || math.IsNaN(o.LinkingLength) {
		o.LinkingLength = 0.2
	}
	if o.MinMembers < 0 {
		o.MinMembers = 20
	}
	if o.OverdensityB < 0 || math.IsNaN(o.OverdensityB) {
		o.OverdensityB = 200
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// unionFind is a standard disjoint-set structure.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// FOF runs the friends-of-friends finder and returns halos above the
// membership threshold, sorted by decreasing mass.  mass may be nil for equal
// mass particles (mass 1 each).
//
// The catalog is deterministic: groups are enumerated in order of their
// lowest member index and the final sort breaks mass ties (common with
// equal-mass particles) by member count and then by that first-member index,
// so two runs over the same particle order produce byte-identical catalogs —
// the invariant the in-situ analysis determinism suite pins across worker
// counts and checkpoint-resume boundaries.
func FOF(pos []vec.V3, mass []float64, opt Options) []Halo {
	n := len(pos)
	opt.defaults(n)
	if n == 0 {
		return nil
	}
	// Mean interparticle separation.
	var l float64
	if opt.BoxSize > 0 {
		l = opt.BoxSize
	} else {
		l = vec.BoundingBox(pos).MaxSide()
	}
	sep := l / math.Cbrt(float64(n))
	link := opt.LinkingLength * sep

	// Cell-linked neighbor grid with cell size >= link.
	nc := int(l / link)
	if nc < 1 {
		nc = 1
	}
	if nc > 512 {
		nc = 512
	}
	cellSize := l / float64(nc)
	_ = cellSize
	cellOf := func(p vec.V3) (int, int, int) {
		f := float64(nc) / l
		i, j, k := int(p[0]*f), int(p[1]*f), int(p[2]*f)
		clamp := func(v int) int {
			if v < 0 {
				return 0
			}
			if v >= nc {
				return nc - 1
			}
			return v
		}
		return clamp(i), clamp(j), clamp(k)
	}
	heads := make([]int32, nc*nc*nc)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int32, n)
	for i, p := range pos {
		ci, cj, ck := cellOf(p)
		idx := (ci*nc+cj)*nc + ck
		next[i] = heads[idx]
		heads[idx] = int32(i)
	}

	uf := newUnionFind(n)
	link2 := link * link
	for i := 0; i < n; i++ {
		ci, cj, ck := cellOf(pos[i])
		for di := -1; di <= 1; di++ {
			for dj := -1; dj <= 1; dj++ {
				for dk := -1; dk <= 1; dk++ {
					ni, nj, nk := ci+di, cj+dj, ck+dk
					if opt.BoxSize > 0 {
						ni, nj, nk = (ni+nc)%nc, (nj+nc)%nc, (nk+nc)%nc
					} else if ni < 0 || nj < 0 || nk < 0 || ni >= nc || nj >= nc || nk >= nc {
						continue
					}
					for j := heads[(ni*nc+nj)*nc+nk]; j >= 0; j = next[j] {
						if int(j) <= i {
							continue
						}
						d := pos[int(j)].Sub(pos[i])
						if opt.BoxSize > 0 {
							d = vec.MinImageV(d, opt.BoxSize)
						}
						if d.Norm2() <= link2 {
							uf.union(int32(i), j)
						}
					}
				}
			}
		}
	}

	// Collect groups in first-seen (lowest member index) order — a map
	// iteration here would make the catalog order run-to-run random.
	slot := map[int32]int{}
	var groups [][]int
	for i := 0; i < n; i++ {
		r := uf.find(int32(i))
		gi, ok := slot[r]
		if !ok {
			gi = len(groups)
			slot[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	var halos []Halo
	for _, members := range groups {
		if len(members) < opt.MinMembers {
			continue
		}
		// ID temporarily holds the lowest member index (members ascend by
		// construction): the deterministic tie-break of the sort below.
		// Final IDs are assigned after sorting.
		h := Halo{ID: members[0], N: len(members)}
		ref := pos[members[0]]
		var com vec.V3
		for _, m := range members {
			mm := 1.0
			if mass != nil {
				mm = mass[m]
			}
			h.Mass += mm
			d := pos[m].Sub(ref)
			if opt.BoxSize > 0 {
				d = vec.MinImageV(d, opt.BoxSize)
			}
			com = com.Add(d.Scale(mm))
		}
		com = ref.Add(com.Scale(1 / h.Mass))
		if opt.BoxSize > 0 {
			com = vec.WrapV(com, opt.BoxSize)
		}
		h.CenterOfM = com
		h.Center = densestMember(pos, members, opt.BoxSize)
		if opt.KeepMembers {
			h.Members = append([]int(nil), members...)
		}
		halos = append(halos, h)
	}
	sort.Slice(halos, func(i, j int) bool {
		a, b := &halos[i], &halos[j]
		if a.Mass != b.Mass {
			return a.Mass > b.Mass
		}
		if a.N != b.N {
			return a.N > b.N
		}
		return a.ID < b.ID // lowest member index: unique per group
	})
	for i := range halos {
		halos[i].ID = i
	}
	return halos
}

// densestMember returns the position of the member with the most neighbors
// within a small radius — a cheap proxy for the density peak used as the SO
// center.
func densestMember(pos []vec.V3, members []int, boxSize float64) vec.V3 {
	if len(members) == 0 {
		return vec.V3{}
	}
	if len(members) > 400 {
		// Subsample for speed; the densest region dominates anyway.
		members = members[:400]
	}
	// Use the distance to the 7th nearest member as an inverse density
	// estimate.
	best := members[0]
	bestD := math.Inf(1)
	for _, m := range members {
		var dists []float64
		for _, o := range members {
			if o == m {
				continue
			}
			d := pos[o].Sub(pos[m])
			if boxSize > 0 {
				d = vec.MinImageV(d, boxSize)
			}
			dists = append(dists, d.Norm2())
		}
		sort.Float64s(dists)
		k := 7
		if k >= len(dists) {
			k = len(dists) - 1
		}
		if k < 0 {
			continue
		}
		if dists[k] < bestD {
			bestD = dists[k]
			best = m
		}
	}
	return pos[best]
}

// SphericalOverdensity fills in M200b/R200b for each halo by growing spheres
// about the halo centers over the full particle set.  Each halo's sphere is
// independent of every other, so the pass runs on Options.Workers goroutines;
// a halo's mass depends only on its own candidate gather and sort, so the
// results are bit-identical for every worker count.
func SphericalOverdensity(pos []vec.V3, mass []float64, halos []Halo, opt Options) {
	n := len(pos)
	opt.defaults(n)
	if n == 0 || len(halos) == 0 {
		return
	}
	var l float64
	if opt.BoxSize > 0 {
		l = opt.BoxSize
	} else {
		l = vec.BoundingBox(pos).MaxSide()
	}
	totalMass := 0.0
	for i := 0; i < n; i++ {
		if mass != nil {
			totalMass += mass[i]
		} else {
			totalMass++
		}
	}
	rhoMean := totalMass / (l * l * l)
	target := opt.OverdensityB * rhoMean

	// A coarse cell grid to find candidate particles near each center.
	nc := 32
	if opt.BoxSize == 0 {
		nc = 16
	}
	heads := make([]int32, nc*nc*nc)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int32, n)
	cellOf := func(p vec.V3) (int, int, int) {
		f := float64(nc) / l
		clamp := func(v int) int {
			if v < 0 {
				return 0
			}
			if v >= nc {
				return nc - 1
			}
			return v
		}
		return clamp(int(p[0] * f)), clamp(int(p[1] * f)), clamp(int(p[2] * f))
	}
	for i, p := range pos {
		ci, cj, ck := cellOf(p)
		idx := (ci*nc+cj)*nc + ck
		next[i] = heads[idx]
		heads[idx] = int32(i)
	}
	cellSide := l / float64(nc)

	workers := opt.Workers
	if workers > len(halos) {
		workers = len(halos)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hi := range work {
				soForHalo(&halos[hi], pos, mass, opt, l, target, heads, next, cellOf, nc, cellSide)
			}
		}()
	}
	for hi := range halos {
		work <- hi
	}
	close(work)
	wg.Wait()
}

// soForHalo grows the spherical-overdensity sphere of one halo: gather the
// candidate particles within an expanding set of cells, sort by radius, and
// walk outward until the mean enclosed density drops below the target.
func soForHalo(h *Halo, pos []vec.V3, mass []float64, opt Options, l, target float64,
	heads, next []int32, cellOf func(vec.V3) (int, int, int), nc int, cellSide float64) {
	maxR := 3.0 * math.Cbrt(h.Mass/(4.0/3.0*math.Pi*target))
	reach := int(maxR/cellSide) + 1
	ci, cj, ck := cellOf(h.Center)
	type pr struct{ r2, m float64 }
	var cand []pr
	for di := -reach; di <= reach; di++ {
		for dj := -reach; dj <= reach; dj++ {
			for dk := -reach; dk <= reach; dk++ {
				ni, nj, nk := ci+di, cj+dj, ck+dk
				if opt.BoxSize > 0 {
					ni, nj, nk = ((ni%nc)+nc)%nc, ((nj%nc)+nc)%nc, ((nk%nc)+nc)%nc
				} else if ni < 0 || nj < 0 || nk < 0 || ni >= nc || nj >= nc || nk >= nc {
					continue
				}
				for j := heads[(ni*nc+nj)*nc+nk]; j >= 0; j = next[j] {
					d := pos[j].Sub(h.Center)
					if opt.BoxSize > 0 {
						d = vec.MinImageV(d, opt.BoxSize)
					}
					r2 := d.Norm2()
					if r2 > maxR*maxR {
						continue
					}
					mm := 1.0
					if mass != nil {
						mm = mass[j]
					}
					cand = append(cand, pr{r2, mm})
				}
			}
		}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a].r2 < cand[b].r2 })
	enclosed := 0.0
	r200 := 0.0
	m200 := 0.0
	for _, c := range cand {
		enclosed += c.m
		r := math.Sqrt(c.r2)
		if r <= 0 {
			continue
		}
		vol := 4.0 / 3.0 * math.Pi * r * r * r
		if enclosed/vol >= target {
			r200 = r
			m200 = enclosed
		}
	}
	h.R200b = r200
	h.M200b = m200
}
