// Package cube provides the homogeneous-cube machinery needed by 2HOT's
// background-subtraction scheme (Section 2.2.1 of the paper):
//
//   - the analytic Newtonian potential and attraction of a homogeneous
//     rectangular parallelepiped at an arbitrary field point (Waldvogel 1976;
//     Seidov & Skvirsky 2000; the classic corner-sum "prism" formula), used
//     to remove the background contribution of the near field, and
//   - the multipole moments of a uniform cube about its own center, which are
//     subtracted from every cell's particle moments so that far interactions
//     act on the density contrast rather than on the always-positive mass.
package cube

import (
	"math"

	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// Prism describes an axis-aligned homogeneous rectangular parallelepiped.
type Prism struct {
	Box vec.Box
	Rho float64 // mass density (may be negative for background subtraction)
}

// NewCube returns a homogeneous cube with the given center, side and density.
func NewCube(center vec.V3, side, rho float64) Prism {
	h := side / 2
	return Prism{
		Box: vec.Box{Lo: center.Sub(vec.V3{h, h, h}), Hi: center.Add(vec.V3{h, h, h})},
		Rho: rho,
	}
}

// Mass returns the total mass of the prism.
func (p Prism) Mass() float64 { return p.Rho * p.Box.Volume() }

// safeLog returns log(x) guarded against the logarithmic corner singularity
// of the prism formulas; the terms it appears in vanish there.
func safeLog(x float64) float64 {
	if x <= 1e-300 {
		return 0
	}
	return math.Log(x)
}

// safeAtan returns atan(num/den), with the convention that a vanishing
// denominator (which only happens when the prefactor of the term vanishes
// too, or at the +-pi/2 limit) is handled via atan2 of the absolute
// magnitude.
func safeAtan(num, den float64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Copysign(math.Pi/2, num)
	}
	return math.Atan(num / den)
}

// Accel returns the gravitational acceleration (G=1) exerted by the prism on
// a field point at position x.  The formula is the classical corner sum valid
// for field points inside as well as outside the prism; the acceleration
// points toward the mass for positive density.
func (p Prism) Accel(x vec.V3) vec.V3 {
	// Work in the frame where the field point is the origin and the prism
	// spans [x1,x2]x[y1,y2]x[z1,z2].
	x1 := p.Box.Lo[0] - x[0]
	x2 := p.Box.Hi[0] - x[0]
	y1 := p.Box.Lo[1] - x[1]
	y2 := p.Box.Hi[1] - x[1]
	z1 := p.Box.Lo[2] - x[2]
	z2 := p.Box.Hi[2] - x[2]
	xs := [2]float64{x1, x2}
	ys := [2]float64{y1, y2}
	zs := [2]float64{z1, z2}

	var gx, gy, gz float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				sign := 1.0
				if (i+j+k)%2 == 1 {
					sign = -1
				}
				xi, yj, zk := xs[i], ys[j], zs[k]
				r := math.Sqrt(xi*xi + yj*yj + zk*zk)
				// Component along x: y ln(z+r) + z ln(y+r) - x atan(yz/(xr))
				gx += sign * (yj*safeLog(zk+r) + zk*safeLog(yj+r) - xi*safeAtan(yj*zk, xi*r))
				gy += sign * (zk*safeLog(xi+r) + xi*safeLog(zk+r) - yj*safeAtan(zk*xi, yj*r))
				gz += sign * (xi*safeLog(yj+r) + yj*safeLog(xi+r) - zk*safeAtan(xi*yj, zk*r))
			}
		}
	}
	// The corner sum above gives the attraction toward the mass in the
	// convention where acceleration a_c = G rho * sum; positive density
	// pulls the field point toward the prism.
	return vec.V3{gx, gy, gz}.Scale(p.Rho)
}

// Potential returns the kernel sum S = integral rho/|x-y| dV of the prism at
// the field point x.  The physical potential is -G*S.  The formula is the
// Waldvogel corner sum, valid inside and outside.
func (p Prism) Potential(x vec.V3) float64 {
	x1 := p.Box.Lo[0] - x[0]
	x2 := p.Box.Hi[0] - x[0]
	y1 := p.Box.Lo[1] - x[1]
	y2 := p.Box.Hi[1] - x[1]
	z1 := p.Box.Lo[2] - x[2]
	z2 := p.Box.Hi[2] - x[2]
	xs := [2]float64{x1, x2}
	ys := [2]float64{y1, y2}
	zs := [2]float64{z1, z2}

	var u float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				sign := 1.0
				if (i+j+k)%2 == 0 {
					sign = 1
				} else {
					sign = -1
				}
				xi, yj, zk := xs[i], ys[j], zs[k]
				r := math.Sqrt(xi*xi + yj*yj + zk*zk)
				term := xi*yj*safeLog(zk+r) + yj*zk*safeLog(xi+r) + zk*xi*safeLog(yj+r)
				term -= 0.5 * xi * xi * safeAtan(yj*zk, xi*r)
				term -= 0.5 * yj * yj * safeAtan(zk*xi, yj*r)
				term -= 0.5 * zk * zk * safeAtan(xi*yj, zk*r)
				u += sign * term
			}
		}
	}
	// The corner sum above evaluates to the negative of the kernel sum in
	// this sign convention; flip it so the far field approaches +M/r.
	return -u * p.Rho
}

// Moments returns the multipole moments of the homogeneous prism about the
// given center, truncated at order p.  For a cube centered on its own center
// only even multi-indices survive.
func (p Prism) Moments(order int, center vec.V3) *multipole.Expansion {
	e := multipole.NewExpansion(order, center)
	t := multipole.Table(order)
	lo := p.Box.Lo.Sub(center)
	hi := p.Box.Hi.Sub(center)
	// Per-dimension monomial integrals I_dim[k] = integral_{lo}^{hi} u^k du.
	ints := [3][]float64{}
	for c := 0; c < 3; c++ {
		v := make([]float64, order+1)
		for k := 0; k <= order; k++ {
			v[k] = (math.Pow(hi[c], float64(k+1)) - math.Pow(lo[c], float64(k+1))) / float64(k+1)
		}
		ints[c] = v
	}
	for i, mi := range t.Idx {
		e.M[i] = p.Rho * ints[0][mi[0]] * ints[1][mi[1]] * ints[2][mi[2]]
	}
	// Absolute moments and bmax for the error bound: the prism's mass is
	// |rho|*V spread within a half-diagonal radius.
	half := p.Box.Size().Scale(0.5)
	bmax := half.Norm()
	e.Bmax = bmax
	am := math.Abs(p.Rho) * p.Box.Volume()
	rp := 1.0
	for n := 0; n <= order+1; n++ {
		e.B[n] += am * rp
		rp *= bmax
	}
	e.Mass = p.Mass()
	return e
}

// BackgroundMoments returns the multipole moments, about the cell center, of
// a uniform cube of density -rhoBar filling a cell of the given side.  These
// are the moments added to every cell in 2HOT's background-subtraction
// scheme; they depend only on the cell size, so the tree caches one set per
// level.
func BackgroundMoments(order int, side, rhoBar float64) *multipole.Expansion {
	c := NewCube(vec.V3{}, side, -rhoBar)
	return c.Moments(order, vec.V3{})
}

// BackgroundAccel returns the acceleration and kernel sum, at field point x,
// of a uniform cube of density -rhoBar occupying cellBox.  This is the
// analytic near-field background term of Figure 2: cells close enough to a
// sink to be opened to the particle level (or empty regions of space that the
// traversal would otherwise ignore) have their background contribution
// removed exactly rather than through a truncated expansion.
func BackgroundAccel(cellBox vec.Box, rhoBar float64, x vec.V3) (vec.V3, float64) {
	p := Prism{Box: cellBox, Rho: -rhoBar}
	return p.Accel(x), p.Potential(x)
}
