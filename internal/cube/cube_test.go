package cube

import (
	"math"
	"testing"

	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// numericCube sums the field of a cube by subdividing it into k^3 point
// masses (midpoint rule); accurate to ~(1/k)^2 away from the surface.
func numericCube(p Prism, x vec.V3, k int) (vec.V3, float64) {
	size := p.Box.Size()
	dm := p.Rho * size[0] * size[1] * size[2] / float64(k*k*k)
	var acc vec.V3
	var pot float64
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			for l := 0; l < k; l++ {
				y := vec.V3{
					p.Box.Lo[0] + (float64(i)+0.5)/float64(k)*size[0],
					p.Box.Lo[1] + (float64(j)+0.5)/float64(k)*size[1],
					p.Box.Lo[2] + (float64(l)+0.5)/float64(k)*size[2],
				}
				d := y.Sub(x)
				r := d.Norm()
				if r == 0 {
					continue
				}
				pot += dm / r
				acc = acc.Add(d.Scale(dm / (r * r * r)))
			}
		}
	}
	return acc, pot
}

func TestCubeFieldOutside(t *testing.T) {
	p := NewCube(vec.V3{0.5, 0.5, 0.5}, 1.0, 2.0)
	for _, x := range []vec.V3{{3, 0.5, 0.5}, {2, 2, 2}, {-1, 0.2, 0.7}} {
		accN, potN := numericCube(p, x, 40)
		acc := p.Accel(x)
		pot := p.Potential(x)
		if acc.Sub(accN).Norm()/accN.Norm() > 2e-3 {
			t.Errorf("accel at %v: %v vs numeric %v", x, acc, accN)
		}
		if math.Abs(pot-potN)/math.Abs(potN) > 2e-3 {
			t.Errorf("potential at %v: %g vs numeric %g", x, pot, potN)
		}
	}
}

func TestCubeFieldInside(t *testing.T) {
	p := NewCube(vec.V3{0, 0, 0}, 2.0, 1.5)
	for _, x := range []vec.V3{{0.3, -0.2, 0.1}, {0.9, 0.9, 0.9}, {0, 0, 0}} {
		accN, _ := numericCube(p, x, 60)
		acc := p.Accel(x)
		if acc.Sub(accN).Norm() > 3e-2*math.Abs(p.Rho)*2 {
			t.Errorf("interior accel at %v: %v vs numeric %v", x, acc, accN)
		}
	}
	// By symmetry the force at the center vanishes.
	if p.Accel(vec.V3{0, 0, 0}).Norm() > 1e-12 {
		t.Error("force at cube center must vanish")
	}
}

func TestCubeFarFieldIsMonopole(t *testing.T) {
	p := NewCube(vec.V3{0, 0, 0}, 1.0, 3.0)
	x := vec.V3{50, 30, 20}
	r := x.Norm()
	m := p.Mass()
	acc := p.Accel(x)
	want := x.Scale(-m / (r * r * r))
	if acc.Sub(want).Norm()/want.Norm() > 1e-4 {
		t.Errorf("far field %v, want monopole %v", acc, want)
	}
}

func TestCubeMomentsMatchNumericalIntegrals(t *testing.T) {
	p := NewCube(vec.V3{0.5, 0.5, 0.5}, 1.0, 2.0)
	e := p.Moments(4, vec.V3{0.5, 0.5, 0.5})
	tab := multipole.Table(4)
	// Monopole = mass; all odd moments vanish; second moments = rho *
	// integral x^2 = rho * L^5/12 per axis.
	if math.Abs(e.M[tab.Pos[multipole.MultiIndex{0, 0, 0}]]-p.Mass()) > 1e-12 {
		t.Error("monopole moment")
	}
	for _, odd := range []multipole.MultiIndex{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}, {3, 0, 0}} {
		if math.Abs(e.M[tab.Pos[odd]]) > 1e-12 {
			t.Errorf("odd moment %v should vanish", odd)
		}
	}
	want := 2.0 * (1.0 / 12.0)
	if math.Abs(e.M[tab.Pos[multipole.MultiIndex{2, 0, 0}]]-want) > 1e-12 {
		t.Errorf("quadrupole moment %g, want %g", e.M[tab.Pos[multipole.MultiIndex{2, 0, 0}]], want)
	}
}

func TestBackgroundSubtractionCancelsUniformLattice(t *testing.T) {
	// A cell filled by a regular lattice of particles minus the uniform cube
	// of the same mean density must have a tiny far field: this is the key
	// cancellation behind Section 2.2.1.
	const nSide = 8
	side := 1.0
	rho := 1.0
	mass := rho * side * side * side / float64(nSide*nSide*nSide)
	center := vec.V3{0.5, 0.5, 0.5}
	e := multipole.NewExpansion(4, center)
	for i := 0; i < nSide; i++ {
		for j := 0; j < nSide; j++ {
			for k := 0; k < nSide; k++ {
				p := vec.V3{
					(float64(i) + 0.5) / nSide,
					(float64(j) + 0.5) / nSide,
					(float64(k) + 0.5) / nSide,
				}
				e.AddParticle(p, mass)
			}
		}
	}
	bg := BackgroundMoments(4, side, rho)
	e.AddExpansion(bg)
	e.FinalizeNorms()

	x := vec.V3{2.5, 2.0, 1.5}
	res := e.Evaluate(x)
	// Compare with the raw lattice's field magnitude.
	raw := multipole.NewExpansion(4, center)
	for i := 0; i < nSide; i++ {
		for j := 0; j < nSide; j++ {
			for k := 0; k < nSide; k++ {
				p := vec.V3{(float64(i) + 0.5) / nSide, (float64(j) + 0.5) / nSide, (float64(k) + 0.5) / nSide}
				raw.AddParticle(p, mass)
			}
		}
	}
	rawRes := raw.Evaluate(x)
	if res.Acc.Norm() > 1e-3*rawRes.Acc.Norm() {
		t.Errorf("background-subtracted far field %g should be tiny compared with raw %g",
			res.Acc.Norm(), rawRes.Acc.Norm())
	}
}

func TestBackgroundAccelMatchesPrism(t *testing.T) {
	box := vec.CubeBox(vec.V3{1, 2, 3}, 0.5)
	x := vec.V3{1.1, 2.2, 3.3}
	a1, p1 := BackgroundAccel(box, 2.5, x)
	pr := Prism{Box: box, Rho: -2.5}
	a2 := pr.Accel(x)
	p2 := pr.Potential(x)
	if a1.Sub(a2).Norm() > 1e-14 || math.Abs(p1-p2) > 1e-14 {
		t.Error("BackgroundAccel must equal the negative-density prism field")
	}
}
