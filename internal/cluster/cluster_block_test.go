package cluster_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"twohot/internal/cluster"
	"twohot/internal/comm"
)

// Distributed block-timestep matrix: the block engine composed with the rank
// exchange must collapse to the global rank body bit for bit when every
// particle stays on rung 0, and a genuinely multi-rung run must produce the
// same bytes on every transport (in-process channels, TCP loopback, TCP under
// recoverable chaos), across a checkpoint resume, and across a supervised
// mid-run process kill.  The rung schedule itself is pinned too: every rank
// must agree on the same global rung histogram at every block boundary.

// blockSpec is testSpec with block stepping enabled.  frac is the rung
// displacement criterion; 1e12 parks everyone on rung 0, 1e-5 splits this IC's
// velocity distribution across several rungs (pinned by the histogram test).
func blockSpec(t *testing.T, dir string, n int, frac float64) cluster.Spec {
	t.Helper()
	spec := testSpec(t, dir, n)
	spec.BlockSteps = 3
	spec.RungDisplacementFrac = frac
	return spec
}

// runChanHooked drives the per-rank body on the in-process channel world with
// per-rank block hooks installed.
func runChanHooked(t *testing.T, spec cluster.Spec, hook func(rank, stepsDone int, hist []int)) {
	t.Helper()
	world := comm.NewWorld(spec.N)
	if err := world.Run(func(r *comm.Rank) error {
		return cluster.RankRunHooked(r, spec, cluster.RunHooks{
			OnBlock: func(stepsDone int, hist []int) { hook(r.ID, stepsDone, hist) },
		})
	}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterBlockAllRungZeroBitIdenticalToGlobal pins the degenerate-case
// contract over the rank exchange: with every particle on rung 0, the block
// body executes exactly the global body's arithmetic — same solves, same
// rechunks, same checkpoint cadence — so result AND checkpoint files must be
// byte-identical, for every world size.
func TestClusterBlockAllRungZeroBitIdenticalToGlobal(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			dirRef, dirBlk := t.TempDir(), t.TempDir()
			ref := testSpec(t, dirRef, n)
			runChan(t, ref)

			blk := blockSpec(t, dirBlk, n, 1e12)
			runChanHooked(t, blk, func(rank, stepsDone int, hist []int) {
				if len(hist) != 1 {
					t.Errorf("rank %d step %d: loose criterion still occupied %d rungs", rank, stepsDone, len(hist))
				}
			})

			if got, want := readResult(t, blk.ResultPath), readResult(t, ref.ResultPath); !bytes.Equal(got, want) {
				t.Error("all-rung-0 block result differs from the global result")
			}
			if got, want := readResult(t, blk.CheckpointPath), readResult(t, ref.CheckpointPath); !bytes.Equal(got, want) {
				t.Error("all-rung-0 block checkpoint differs from the global checkpoint")
			}
		})
	}
}

// TestClusterBlockRungHistogramAgreement pins the rung-agreement protocol: at
// every block boundary every rank must report the identical global histogram,
// its counts must sum to the full particle load, and the multi-rung spec must
// actually occupy several rungs (otherwise the matrix above would be testing
// the degenerate path twice).
func TestClusterBlockRungHistogramAgreement(t *testing.T) {
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			spec := blockSpec(t, t.TempDir(), n, 1e-5)
			var mu sync.Mutex
			hists := map[int]map[int]string{} // step -> rank -> histogram key
			multi := false
			runChanHooked(t, spec, func(rank, stepsDone int, hist []int) {
				total := 0
				for _, c := range hist {
					total += c
				}
				if total != 96 {
					t.Errorf("rank %d step %d: histogram sums to %d particles, want 96", rank, stepsDone, total)
				}
				mu.Lock()
				defer mu.Unlock()
				if len(hist) > 1 {
					multi = true
				}
				if hists[stepsDone] == nil {
					hists[stepsDone] = map[int]string{}
				}
				hists[stepsDone][rank] = fmt.Sprint(hist)
			})
			for step, byRank := range hists {
				if len(byRank) != n {
					t.Errorf("step %d: %d of %d ranks reported a histogram", step, len(byRank), n)
				}
				for rank, h := range byRank {
					if h != byRank[0] {
						t.Errorf("step %d: rank %d histogram %s != rank 0 histogram %s", step, rank, h, byRank[0])
					}
				}
			}
			if !multi {
				t.Error("multi-rung spec never occupied more than one rung; loosen RungDisplacementFrac in blockSpec")
			}
		})
	}
}

// TestClusterBlockMultiRungBitIdenticalAcrossTransports is the multi-rung leg
// of the transport matrix: activity flags, rungs and momentum epochs now ride
// the wire on every substep, and the bytes must not care whether the wire is
// a channel, TCP loopback, or TCP under drops, delays, duplicates and
// corruption.
func TestClusterBlockMultiRungBitIdenticalAcrossTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster TCP test skipped in -short")
	}
	for _, n := range []int{2, 4} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			ref := blockSpec(t, t.TempDir(), n, 1e-5)
			runChan(t, ref)
			want := readResult(t, ref.ResultPath)

			tcp := blockSpec(t, t.TempDir(), n, 1e-5)
			runTCPInProcess(t, tcp)
			if got := readResult(t, tcp.ResultPath); !bytes.Equal(got, want) {
				t.Error("TCP block result differs from in-process block result")
			}

			chaotic := blockSpec(t, t.TempDir(), n, 1e-5)
			chaotic.RetryBase = 10 * time.Millisecond
			chaotic.Chaos = &comm.ChaosOptions{
				Seed: 7, DropRate: 0.05, DelayRate: 0.05,
				DuplicateRate: 0.05, CorruptRate: 0.05,
				MaxDelay: 3 * time.Millisecond,
			}
			runTCPInProcess(t, chaotic)
			if got := readResult(t, chaotic.ResultPath); !bytes.Equal(got, want) {
				t.Error("chaotic TCP block result differs from in-process block result")
			}
		})
	}
}

// TestClusterBlockCheckpointResumeBitIdentical pins the synchronized-boundary
// checkpoint rule end to end: a multi-rung run's checkpoints are written only
// after the world collectively closes the leapfrog, so a run resumed from the
// step-2 checkpoint must finish byte-identical to the uninterrupted run.
func TestClusterBlockCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := blockSpec(t, dir, 2, 1e-5)
	runChan(t, spec)
	want := readResult(t, spec.ResultPath)

	dir2 := t.TempDir()
	first := blockSpec(t, dir2, 2, 1e-5)
	first.NSteps = 2
	first.ResultPath = filepath.Join(dir2, "partial.sdf")
	runChan(t, first)

	resumed := blockSpec(t, dir2, 2, 1e-5)
	resumed.SnapshotIn = first.CheckpointPath // "step = 2" checkpoint
	resumed.ResultPath = filepath.Join(dir2, "resumed.sdf")
	runChan(t, resumed)
	if got := readResult(t, resumed.ResultPath); !bytes.Equal(got, want) {
		t.Error("resumed block run differs from uninterrupted block run")
	}
}

// TestClusterBlockSupervisedRecoveryBitIdentical extends the fault-tolerance
// pin to block stepping: two worker processes advance a multi-rung run, rank
// 1 chaos-kills itself between block synchronizations, and the supervisor's
// restart from the last synchronized checkpoint must converge to the same
// bytes as a never-faulted in-process run.
func TestClusterBlockSupervisedRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process supervision test skipped in -short")
	}
	dirRef := t.TempDir()
	ref := blockSpec(t, dirRef, 2, 1e-5)
	runChan(t, ref)
	want := readResult(t, ref.ResultPath)

	dirFault := t.TempDir()
	fault := blockSpec(t, dirFault, 2, 1e-5)
	fault.HeartbeatInterval = 100 * time.Millisecond
	fault.LivenessTimeout = time.Second
	fault.RetryBase = 10 * time.Millisecond
	fault.Chaos = &comm.ChaosOptions{
		Seed:      3,
		DropRate:  0.02,
		KillAfter: 300, // a multi-rung block is several substep exchanges: dies mid-block after checkpoints exist
	}
	fault.ChaosKillRank = 1
	restarts, fromCheckpoint := 0, 0
	if err := cluster.Supervise(fault, cluster.SuperviseOptions{
		Command:     []string{os.Args[0]},
		Dir:         dirFault,
		MaxRestarts: 4,
		OnRestart: func(int, error) {
			restarts++
			if _, err := os.Stat(fault.CheckpointPath); err == nil {
				fromCheckpoint++
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if restarts == 0 {
		t.Error("chaos kill never fired: the mid-block recovery path went unexercised")
	}
	if fromCheckpoint == 0 {
		t.Error("no checkpoint existed at restart: restore path went unexercised (lower KillAfter?)")
	}
	if got := readResult(t, fault.ResultPath); !bytes.Equal(got, want) {
		t.Error("supervised faulted block run differs from clean block run")
	}
}
