package cluster

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
)

// Worker processes are ordinary re-executions of the supervising binary: the
// supervisor sets these environment variables and WorkerMain, called early in
// main (or TestMain), diverts the process into Worker instead of its normal
// entry point.
const (
	envRank = "TWOHOT_CLUSTER_RANK"
	envSpec = "TWOHOT_CLUSTER_SPEC"
)

// WorkerMain checks whether this process was launched as a cluster worker
// and, if so, runs the worker to completion and exits — it never returns in
// that case.  Call it before normal argument handling in any binary that
// Supervise may re-execute.
func WorkerMain() {
	rankStr := os.Getenv(envRank)
	if rankStr == "" {
		return
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker: bad %s=%q\n", envRank, rankStr)
		os.Exit(1)
	}
	spec, err := LoadSpec(os.Getenv(envSpec))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster worker:", err)
		os.Exit(1)
	}
	if err := Worker(spec, rank); err != nil {
		fmt.Fprintf(os.Stderr, "cluster worker rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// SuperviseOptions configures the supervising run mode.
type SuperviseOptions struct {
	// Command is the argv used to launch each worker process; rank and spec
	// travel through the environment (WorkerMain).  Typically the supervising
	// binary itself: []string{os.Args[0]}.
	Command []string
	// MaxRestarts bounds how many times the world is restarted after a rank
	// death before giving up.  0 means the default of 3.
	MaxRestarts int
	// Dir receives the per-attempt spec files.  Empty means the directory of
	// the spec's result path.
	Dir string
	// Stderr receives worker process stderr (default os.Stderr).
	Stderr io.Writer
	// OnRestart, when non-nil, is called before each restart with the attempt
	// number just failed (0-based) and its cause.
	OnRestart func(attempt int, cause error)
}

// Supervise runs a cluster spec to completion as spec.N separate worker
// processes, restarting the whole world from the last good checkpoint when
// any rank dies.  Each attempt gets freshly reserved loopback addresses, so a
// lingering socket from a killed attempt cannot poison the next one.  An
// injected chaos kill (Spec.Chaos.KillAfter) is disarmed after the first
// death: it models one node failure, not a crash loop.
func Supervise(spec Spec, opt SuperviseOptions) error {
	if len(opt.Command) == 0 {
		return fmt.Errorf("cluster: SuperviseOptions.Command is required")
	}
	if spec.N < 1 {
		return fmt.Errorf("cluster: spec needs at least 1 rank")
	}
	maxRestarts := opt.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 3
	}
	dir := opt.Dir
	if dir == "" {
		dir = filepath.Dir(spec.ResultPath)
	}
	stderr := opt.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}

	for attempt := 0; ; attempt++ {
		addrs, err := freeLoopbackAddrs(spec.N)
		if err != nil {
			return fmt.Errorf("cluster: reserving addresses: %w", err)
		}
		spec.Addrs = addrs
		specPath := filepath.Join(dir, fmt.Sprintf("cluster-spec-%d.json", attempt))
		if err := spec.Save(specPath); err != nil {
			return err
		}
		err = runWorldOnce(spec, specPath, opt.Command, stderr)
		if err == nil {
			return nil
		}
		if attempt >= maxRestarts {
			return fmt.Errorf("cluster: giving up after %d attempts: %w", attempt+1, err)
		}
		if opt.OnRestart != nil {
			opt.OnRestart(attempt, err)
		}
		// Resume from the newest complete checkpoint, if one was written.
		// sdf.Write's atomic rename guarantees the file either is the
		// previous good checkpoint or the new one, never a torn write.
		if spec.CheckpointPath != "" {
			if _, statErr := os.Stat(spec.CheckpointPath); statErr == nil {
				spec.SnapshotIn = spec.CheckpointPath
			}
		}
		if spec.Chaos != nil && spec.Chaos.KillAfter > 0 {
			c := *spec.Chaos
			c.KillAfter = 0
			spec.Chaos = &c
		}
	}
}

// runWorldOnce launches one process per rank and waits for all of them.  On
// the first failure the survivors are killed — a world with a dead rank
// cannot make progress, only time out.
func runWorldOnce(spec Spec, specPath string, command []string, stderr io.Writer) error {
	type exit struct {
		rank int
		err  error
	}
	procs := make([]*exec.Cmd, spec.N)
	done := make(chan exit, spec.N)
	started := 0
	var startErr error
	for i := 0; i < spec.N; i++ {
		cmd := exec.Command(command[0], command[1:]...)
		cmd.Env = append(os.Environ(),
			envRank+"="+strconv.Itoa(i),
			envSpec+"="+specPath)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			startErr = fmt.Errorf("cluster: starting rank %d: %w", i, err)
			break
		}
		procs[i] = cmd
		started++
		go func(rank int, cmd *exec.Cmd) {
			done <- exit{rank, cmd.Wait()}
		}(i, cmd)
	}
	var firstErr error
	if startErr != nil {
		firstErr = startErr
		for _, p := range procs[:started] {
			p.Process.Kill()
		}
	}
	for remaining := started; remaining > 0; remaining-- {
		e := <-done
		if e.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: rank %d: %w", e.rank, e.err)
			for j, p := range procs[:started] {
				if j != e.rank {
					p.Process.Kill()
				}
			}
		}
	}
	return firstErr
}

// freeLoopbackAddrs reserves n distinct loopback addresses by briefly
// listening on port 0.  The small window between Close and the worker's own
// listen can collide; a collision fails the join loudly and the supervisor
// retries with fresh ports.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}
