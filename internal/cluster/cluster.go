// Package cluster runs a distributed simulation as N cooperating rank
// processes over the TCP transport, supervised for fault tolerance: ranks
// advance the comoving leapfrog in lockstep with forces from
// core.DistributedRankForces, rank 0 writes atomic checkpoints on a fixed
// cadence, and when any rank dies the supervisor kills the survivors and
// restarts the whole world from the last good checkpoint.
//
// The per-rank body (RankRun) is transport-agnostic: driving it on the
// in-process channel world and on TCP loopback runs the identical code, which
// is what makes an N-process run bit-identical to the in-process one.  A
// restart is bit-identical to an uninterrupted run because every step begins
// from the canonical layout (rechunk below) and checkpoints capture exactly
// that layout in full float64 precision.
package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"twohot/internal/comm"
	"twohot/internal/core"
	"twohot/internal/cosmo"
	"twohot/internal/domain"
	"twohot/internal/keys"
	"twohot/internal/particle"
	"twohot/internal/sdf"
	"twohot/internal/step"
	"twohot/internal/vec"
)

// Spec fully describes a cluster run.  It is plain JSON so the supervisor can
// hand it to worker processes through a file; every field that influences the
// physics round-trips exactly (Go's JSON encoding of float64 is lossless).
type Spec struct {
	// N is the number of ranks; Addrs their TCP listen addresses (filled by
	// the supervisor per attempt, one per rank).
	N     int      `json:"n"`
	Addrs []string `json:"addrs,omitempty"`

	// Physics and stepping.
	Cosmology string          `json:"cosmology"`
	Tree      core.TreeConfig `json:"tree"`
	Curve     keys.Curve      `json:"curve"`
	// BranchExchange selects the upper-tree branch distribution
	// ("allgather" or "ring"); see core.DistributedConfig.
	BranchExchange string  `json:"branch_exchange,omitempty"`
	NSteps         int     `json:"n_steps"`
	DlnA           float64 `json:"dln_a"`

	// Block stepping.  BlockSteps > 0 replaces each global step with a
	// hierarchical block step of that many rung levels (see step.Block): the
	// ranks agree on each block's substep schedule by summing their rung
	// histograms, the domain decomposition is frozen within a block, and
	// only the active particles are solved and kicked per substep.  Requires
	// a periodic box.  RungDisplacementFrac is the per-particle rung
	// criterion (0 = 0.1); RungSep the mean interparticle separation it is
	// measured against (0 = derived from the input particle count).
	BlockSteps           int     `json:"block_steps,omitempty"`
	RungDisplacementFrac float64 `json:"rung_displacement_frac,omitempty"`
	RungSep              float64 `json:"rung_sep,omitempty"`

	// Files.  SnapshotIn is the initial state (an SDF snapshot; its "step"
	// extra, when present, is the number of steps already completed — how a
	// checkpoint resumes mid-grid).  ResultPath receives the final gathered
	// snapshot.  CheckpointPath, with CheckpointEvery > 0, receives an atomic
	// checkpoint after every CheckpointEvery-th step.  All paths must be on a
	// filesystem every rank process can reach.
	SnapshotIn      string `json:"snapshot_in"`
	ResultPath      string `json:"result_path"`
	CheckpointPath  string `json:"checkpoint_path,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// Transport tuning (zero = comm.TCPOptions defaults); tests shrink these
	// to fail fast.
	RecvTimeout       time.Duration `json:"recv_timeout,omitempty"`
	HeartbeatInterval time.Duration `json:"heartbeat_interval,omitempty"`
	LivenessTimeout   time.Duration `json:"liveness_timeout,omitempty"`
	RetryBase         time.Duration `json:"retry_base,omitempty"`

	// Chaos, when set, enables fault injection on every rank's transport.  A
	// positive Chaos.KillAfter applies only to rank ChaosKillRank, so a test
	// can kill one specific rank; the supervisor disarms the kill on restart.
	Chaos         *comm.ChaosOptions `json:"chaos,omitempty"`
	ChaosKillRank int                `json:"chaos_kill_rank,omitempty"`
}

// LoadSpec reads a spec written by Spec.Save.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("cluster: spec %s: %w", path, err)
	}
	return s, nil
}

// Save writes the spec as JSON.
func (s Spec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Worker joins the TCP world as one rank and runs the stepping loop to
// completion.  It is the body of a worker process (see WorkerMain).
func Worker(spec Spec, rank int) error {
	opt := comm.TCPOptions{
		Rank:              rank,
		N:                 spec.N,
		Addrs:             spec.Addrs,
		RecvTimeout:       spec.RecvTimeout,
		HeartbeatInterval: spec.HeartbeatInterval,
		LivenessTimeout:   spec.LivenessTimeout,
		RetryBase:         spec.RetryBase,
	}
	if spec.Chaos != nil {
		c := *spec.Chaos
		if c.KillAfter > 0 && rank != spec.ChaosKillRank {
			c.KillAfter = 0
		}
		opt.Chaos = &c
	}
	r, err := comm.JoinTCP(opt)
	if err != nil {
		return fmt.Errorf("cluster: rank %d join: %w", rank, err)
	}
	runErr := RankRun(r, spec)
	if cerr := r.Close(); runErr == nil {
		runErr = cerr
	}
	return runErr
}

// tagGather is the application tag of the gather-to-rank-0 used for
// checkpoints and the final result.  One tag suffices: the collectives inside
// every step keep the world in lockstep, so a rank can never have two gather
// sends in flight to rank 0 at once.
const tagGather = 8000

// RunHooks lets callers observe a rank run; every field is optional.
type RunHooks struct {
	// OnBlock fires on each rank after every completed block step of a
	// block-stepped run (Spec.BlockSteps > 0) with the completed-step count
	// and the agreed global rung histogram of that block.
	OnBlock func(stepsDone int, hist []int)
}

// RankRun is the per-rank body of a cluster run, independent of the
// transport joining r to its world.  Each rank loads its contiguous chunk of
// the input snapshot, then repeats: distributed force solve, leapfrog
// kick-drift (identical scalar factors on every rank), and a rechunk back to
// the canonical contiguous layout.  Rank 0 writes checkpoints and the final
// result.  With Spec.BlockSteps > 0 the global leapfrog is replaced by the
// distributed block-stepping engine (see rankRunBlock).
//
// Domain decomposition runs without work weights: per-particle work is not
// part of the checkpoint format, and balancing on it would make a restarted
// run decompose differently from the uninterrupted one.
func RankRun(r *comm.Rank, spec Spec) error {
	return RankRunHooked(r, spec, RunHooks{})
}

// RankRunHooked is RankRun with observation hooks (used by the equivalence
// tests to watch per-block rung histograms).
func RankRunHooked(r *comm.Rank, spec Spec, hooks RunHooks) error {
	if spec.BlockSteps > 0 {
		return rankRunBlock(r, spec, hooks)
	}
	par, err := cosmo.ByName(spec.Cosmology)
	if err != nil {
		return err
	}
	snap, err := sdf.Read(spec.SnapshotIn)
	if err != nil {
		return fmt.Errorf("cluster: rank %d: %w", r.ID, err)
	}
	startStep := 0
	if v, err := strconv.Atoi(snap.Extra["step"]); err == nil && v > 0 {
		startStep = v
	}
	my := chunkOf(snap.Particles, r.ID, r.N())
	clk := step.Clock{A: snap.ScaleFac, AMom: snap.MomentumScaleFac}

	dcfg := core.DistributedConfig{
		Tree:           spec.Tree,
		NRanks:         r.N(),
		Curve:          spec.Curve,
		Alltoall:       comm.AlltoallDirect,
		BranchExchange: spec.BranchExchange,
		UseWorkWeights: false,
	}
	// Spec.Tree.Workers is a per-process budget; DistributedRankForces
	// divides its Workers by the rank count (an in-process world shares one
	// machine), so scale up to hand each process the full budget.
	if spec.Tree.Workers > 0 {
		dcfg.Tree.Workers = spec.Tree.Workers * r.N()
	}

	for s := startStep; s < spec.NSteps; s++ {
		if err := advanceOnce(r, my, &clk, par, spec, dcfg); err != nil {
			return fmt.Errorf("cluster: rank %d step %d: %w", r.ID, s, err)
		}
		if my, err = rechunk(r, my); err != nil {
			return fmt.Errorf("cluster: rank %d step %d rechunk: %w", r.ID, s, err)
		}
		if spec.CheckpointPath != "" && spec.CheckpointEvery > 0 && (s+1)%spec.CheckpointEvery == 0 {
			if err := writeGathered(r, my, spec.CheckpointPath, clk, spec, s+1); err != nil {
				return fmt.Errorf("cluster: rank %d checkpoint after step %d: %w", r.ID, s, err)
			}
		}
	}

	// Close the leapfrog: one more force solve kicks the momenta from the
	// trailing half step up to the position epoch, so the result snapshot is
	// synchronized (and a fresh run starting from it re-primes cleanly).
	if clk.AMom != clk.A {
		if _, err := core.DistributedRankForces(r, my, dcfg); err != nil {
			return fmt.Errorf("cluster: rank %d synchronize: %w", r.ID, err)
		}
		kick := par.KickFactor(clk.AMom, clk.A)
		for i := range my.Mom {
			my.Mom[i] = my.Mom[i].Add(my.Acc[i].Scale(kick))
		}
		clk.AMom = clk.A
		if my, err = rechunk(r, my); err != nil {
			return fmt.Errorf("cluster: rank %d synchronize rechunk: %w", r.ID, err)
		}
	}
	return writeGathered(r, my, spec.ResultPath, clk, spec, spec.NSteps)
}

// rankForcer adapts one rank's share of the distributed force pipeline to the
// step.Forcer contract, so the block engine can drive it like any other
// solver.  A non-nil active mask is stamped into the particle flags (they
// travel with each particle through the domain exchange) and prunes every
// rank's traversal; decomp, when non-nil, freezes the domain shape across the
// substeps of one block (the block loop clears it at every block boundary).
type rankForcer struct {
	r      *comm.Rank
	cfg    core.DistributedConfig
	decomp *domain.Decomposition
}

func (f *rankForcer) Accelerations(p *particle.Set) (*core.Result, error) {
	return f.ActiveForces(p, nil, nil)
}

func (f *rankForcer) ActiveForces(p *particle.Set, active, moved []bool) (*core.Result, error) {
	cfg := f.cfg
	if active != nil {
		for i := range p.Flags {
			if active[i] {
				p.Flags[i] |= particle.FlagActive
			} else {
				p.Flags[i] &^= particle.FlagActive
			}
		}
		cfg.ActiveMask = true
	}
	out, d, err := core.DistributedRankForcesReuse(f.r, p, cfg, f.decomp)
	if err != nil {
		return nil, err
	}
	f.decomp = d
	return &core.Result{
		Acc:      p.Acc,
		Pot:      p.Pot,
		Work:     p.Work,
		Counters: out.Counters,
		Timings:  out.Timings,
	}, nil
}

// rankRunBlock is the block-stepping rank body: a step.Block engine drives
// the distributed solve, with per-particle rungs, momentum epochs and
// activity flags traveling inside the particle set through every exchange.
// Compared to the global body, the canonical rechunk happens only at block
// boundaries (the domain decomposition is frozen across the substeps of one
// block, with boundary-crossers shipped on the frozen splitters), and a due
// checkpoint lands only at a synchronized boundary: if any rank holds
// per-particle epochs the snapshot cannot represent, the world collectively
// closes the leapfrog first.  A run whose particles all stay on rung 0
// executes exactly the global body's arithmetic, so its result, checkpoints
// and every wire byte are identical to a BlockSteps == 0 run.
func rankRunBlock(r *comm.Rank, spec Spec, hooks RunHooks) error {
	par, err := cosmo.ByName(spec.Cosmology)
	if err != nil {
		return err
	}
	if !spec.Tree.Periodic {
		return fmt.Errorf("cluster: block stepping requires a periodic box (the frozen-domain key space must not change between substeps)")
	}
	snap, err := sdf.Read(spec.SnapshotIn)
	if err != nil {
		return fmt.Errorf("cluster: rank %d: %w", r.ID, err)
	}
	startStep := 0
	if v, err := strconv.Atoi(snap.Extra["step"]); err == nil && v > 0 {
		startStep = v
	}
	my := chunkOf(snap.Particles, r.ID, r.N())
	clk := step.Clock{A: snap.ScaleFac, AMom: snap.MomentumScaleFac}

	dcfg := core.DistributedConfig{
		Tree:           spec.Tree,
		NRanks:         r.N(),
		Curve:          spec.Curve,
		Alltoall:       comm.AlltoallDirect,
		BranchExchange: spec.BranchExchange,
		UseWorkWeights: false,
	}
	if spec.Tree.Workers > 0 {
		dcfg.Tree.Workers = spec.Tree.Workers * r.N()
	}
	fz := &rankForcer{r: r, cfg: dcfg}

	sep := spec.RungSep
	if sep == 0 {
		sep = spec.Tree.BoxSize / math.Cbrt(float64(snap.Particles.Len()))
	}
	eng := step.NewBlock(par, spec.Tree.BoxSize, sep, spec.BlockSteps, spec.RungDisplacementFrac)
	// Work weights never steer the cluster decomposition (UseWorkWeights is
	// off above), so the between-block decay would only churn Work bytes a
	// checkpoint resume (which resets Work) could not reproduce.
	eng.WorkDecay = 0
	// Rung agreement: sum the per-rank histograms so every rank derives the
	// same substep schedule — and sees the same global rung occupancy.
	eng.AgreeRungs = func(local []int) ([]int, error) {
		enc := make([]uint64, len(local))
		for i, c := range local {
			enc[i] = uint64(c)
		}
		parts, err := r.AllgatherUint64(enc)
		if err != nil {
			return nil, fmt.Errorf("rung agreement: %w", err)
		}
		sum := make([]int, len(local))
		for i, v := range parts {
			sum[i%len(local)] += int(v)
		}
		return sum, nil
	}

	for s := startStep; s < spec.NSteps; s++ {
		fz.decomp = nil // fresh splitters at every block start
		if _, err := eng.Advance(fz, my, &clk, spec.DlnA); err != nil {
			return fmt.Errorf("cluster: rank %d block step %d: %w", r.ID, s, err)
		}
		if my, err = rechunk(r, my); err != nil {
			return fmt.Errorf("cluster: rank %d step %d rechunk: %w", r.ID, s, err)
		}
		if hooks.OnBlock != nil {
			hooks.OnBlock(s+1, eng.RungHistogram())
		}
		if spec.CheckpointPath != "" && spec.CheckpointEvery > 0 && (s+1)%spec.CheckpointEvery == 0 {
			if my, err = syncIfUnrepresentable(r, my, &clk, eng, fz); err != nil {
				return fmt.Errorf("cluster: rank %d checkpoint sync after step %d: %w", r.ID, s, err)
			}
			if err := writeGathered(r, my, spec.CheckpointPath, clk, spec, s+1); err != nil {
				return fmt.Errorf("cluster: rank %d checkpoint after step %d: %w", r.ID, s, err)
			}
		}
	}

	// Close the leapfrog with fresh splitters — the same final solve shape as
	// the global body — and gather the synchronized result.
	fz.decomp = nil
	res, err := eng.Synchronize(fz, my, &clk)
	if err != nil {
		return fmt.Errorf("cluster: rank %d synchronize: %w", r.ID, err)
	}
	if res != nil {
		if my, err = rechunk(r, my); err != nil {
			return fmt.Errorf("cluster: rank %d synchronize rechunk: %w", r.ID, err)
		}
	}
	return writeGathered(r, my, spec.ResultPath, clk, spec, spec.NSteps)
}

// syncIfUnrepresentable closes the leapfrog before a due checkpoint when the
// world holds per-particle momentum epochs a single-epoch snapshot cannot
// represent.  The verdict is collective (an allreduce over the ranks' local
// checks), so every rank takes the same branch.  An all-rung-0 block leaves
// one uniform trailing epoch, which the snapshot's two scale factors
// represent exactly; it is written unchanged, preserving byte-identity with
// the global path's mid-run checkpoints.
func syncIfUnrepresentable(r *comm.Rank, my *particle.Set, clk *step.Clock, eng *step.Block, fz *rankForcer) (*particle.Set, error) {
	local := 0.0
	for _, am := range my.MomEpoch {
		if am != clk.AMom {
			local = 1
			break
		}
	}
	global, err := r.AllreduceFloat64(local, "max")
	if err != nil {
		return nil, err
	}
	if global == 0 {
		return my, nil
	}
	fz.decomp = nil
	if _, err := eng.Synchronize(fz, my, clk); err != nil {
		return nil, err
	}
	return rechunk(r, my)
}

// advanceOnce is one kick-drift leapfrog step (step.Global.Advance) with the
// force solve distributed across the world.
func advanceOnce(r *comm.Rank, my *particle.Set, clk *step.Clock, par cosmo.Params, spec Spec, dcfg core.DistributedConfig) error {
	aNow := clk.A
	aNext := aNow * math.Exp(spec.DlnA)
	if aNext > 1 {
		aNext = 1
	}
	aHalfNext := math.Sqrt(aNow * aNext)

	if _, err := core.DistributedRankForces(r, my, dcfg); err != nil {
		return err
	}
	kick := par.KickFactor(clk.AMom, aHalfNext)
	for i := range my.Mom {
		my.Mom[i] = my.Mom[i].Add(my.Acc[i].Scale(kick))
	}
	clk.AMom = aHalfNext

	drift := par.DriftFactor(aNow, aNext)
	for i := range my.Pos {
		p := my.Pos[i].Add(my.Mom[i].Scale(drift))
		if spec.Tree.Periodic {
			p = vec.WrapV(p, spec.Tree.BoxSize)
		}
		my.Pos[i] = p
	}
	clk.A = aNext
	return nil
}

// chunkOf returns rank's contiguous chunk of all — the same initial
// ownership formula core.DistributedStep uses.
func chunkOf(all *particle.Set, rank, n int) *particle.Set {
	chunk := (all.Len() + n - 1) / n
	lo, hi := rank*chunk, (rank+1)*chunk
	if lo > all.Len() {
		lo = all.Len()
	}
	if hi > all.Len() {
		hi = all.Len()
	}
	my := particle.New(hi - lo)
	for i := lo; i < hi; i++ {
		my.AppendFrom(all, i)
	}
	return my
}

// rechunk restores the canonical layout after a force solve left each rank
// owning a key range: the global rank-order concatenation is re-split into
// contiguous even chunks, exactly the layout chunkOf hands out.  Every step
// therefore begins from the state a checkpoint captures, which is what makes
// a restart bit-identical to the uninterrupted run (and matches the per-call
// chunking of core.DistributedStep, pinning TCP runs to the in-process ones).
func rechunk(r *comm.Rank, my *particle.Set) (*particle.Set, error) {
	n := r.N()
	counts, err := r.AllgatherUint64([]uint64{uint64(my.Len())})
	if err != nil {
		return nil, err
	}
	total, myOff := 0, 0
	for rank, c := range counts {
		if rank == r.ID {
			myOff = total
		}
		total += int(c)
	}
	chunk := (total + n - 1) / n

	send := make([][]byte, n)
	for dst := 0; dst < n; dst++ {
		dstLo, dstHi := dst*chunk, (dst+1)*chunk
		if dstHi > total {
			dstHi = total
		}
		lo, hi := dstLo-myOff, dstHi-myOff
		if lo < 0 {
			lo = 0
		}
		if hi > my.Len() {
			hi = my.Len()
		}
		if hi <= lo {
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		send[dst] = my.EncodeRange(idx)
	}
	recv, err := r.AlltoallvBytes(send, comm.AlltoallDirect)
	if err != nil {
		return nil, err
	}
	// Global offsets ascend with source rank and each source ships one
	// contiguous range, so concatenating in source order restores ascending
	// global order.
	out := particle.New(chunk)
	for src := 0; src < n; src++ {
		if len(recv[src]) == 0 {
			continue
		}
		if err := out.DecodeAppend(recv[src]); err != nil {
			return nil, fmt.Errorf("rechunk from rank %d: %w", src, err)
		}
	}
	return out, nil
}

// writeGathered collects every rank's particles on rank 0 (in rank order,
// which after a rechunk is the canonical global order) and writes them
// atomically to path with the clock state and completed-step count.  Ranks
// other than 0 only send; the collectives of the next step keep them from
// racing ahead of the write in any way that matters — a crash meanwhile
// loses at most the newest checkpoint, never the previous one (sdf.Write
// renames only complete, checksummed files into place).
func writeGathered(r *comm.Rank, my *particle.Set, path string, clk step.Clock, spec Spec, stepsDone int) error {
	if r.ID != 0 {
		idx := make([]int, my.Len())
		for i := range idx {
			idx[i] = i
		}
		return r.Send(0, tagGather, my.EncodeRange(idx))
	}
	all := particle.New(my.Len() * r.N())
	for i := 0; i < my.Len(); i++ {
		all.AppendFrom(my, i)
	}
	for src := 1; src < r.N(); src++ {
		data, _, err := r.Recv(src, tagGather)
		if err != nil {
			return err
		}
		b, ok := data.([]byte)
		if !ok {
			return fmt.Errorf("gather from rank %d: unexpected payload %T", src, data)
		}
		if err := all.DecodeAppend(b); err != nil {
			return fmt.Errorf("gather from rank %d: %w", src, err)
		}
	}
	return sdf.Write(path, &sdf.Snapshot{
		Particles:        all,
		ScaleFac:         clk.A,
		MomentumScaleFac: clk.AMom,
		BoxSize:          spec.Tree.BoxSize,
		Cosmology:        spec.Cosmology,
		Extra:            map[string]string{"step": strconv.Itoa(stepsDone)},
	})
}
