package cluster_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"twohot/internal/cluster"
	"twohot/internal/comm"
	"twohot/internal/core"
	"twohot/internal/particle"
	"twohot/internal/sdf"
	"twohot/internal/softening"
	"twohot/internal/vec"
)

// TestMain diverts re-executed worker processes into the cluster worker
// before any test runs; a normal `go test` invocation falls through.
func TestMain(m *testing.M) {
	cluster.WorkerMain()
	os.Exit(m.Run())
}

// writeIC writes a small deterministic particle load and returns its path.
func writeIC(t *testing.T, dir string, n int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	set := particle.New(n)
	for i := 0; i < n; i++ {
		pos := vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mom := vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Scale(1e-3)
		set.Append(pos, mom, 1.0/float64(n), int64(i))
	}
	path := filepath.Join(dir, "ic.sdf")
	if err := sdf.Write(path, &sdf.Snapshot{
		Particles:        set,
		ScaleFac:         0.2,
		MomentumScaleFac: 0.2,
		BoxSize:          1,
		Cosmology:        "eds",
	}); err != nil {
		t.Fatal(err)
	}
	return path
}

// testSpec is the shared scenario: a 3-step leapfrog over the deterministic
// load, checkpointing after every step.
func testSpec(t *testing.T, dir string, n int) cluster.Spec {
	t.Helper()
	return cluster.Spec{
		N:         n,
		Cosmology: "eds",
		Tree: core.TreeConfig{
			Order: 2, ErrTol: 1e-3, Kernel: softening.Plummer, Eps: 0.02,
			Periodic: true, BoxSize: 1, BackgroundSubtraction: true, WS: 1,
			Workers: 1,
		},
		BranchExchange:  "ring",
		NSteps:          3,
		DlnA:            0.05,
		SnapshotIn:      writeIC(t, dir, 96),
		ResultPath:      filepath.Join(dir, "result.sdf"),
		CheckpointPath:  filepath.Join(dir, "ckpt.sdf"),
		CheckpointEvery: 1,
		RecvTimeout:     60 * time.Second,
	}
}

// runChan drives the per-rank body on the in-process channel world — the
// reference the TCP runs must match bit for bit.
func runChan(t *testing.T, spec cluster.Spec) {
	t.Helper()
	world := comm.NewWorld(spec.N)
	if err := world.Run(func(r *comm.Rank) error {
		return cluster.RankRun(r, spec)
	}); err != nil {
		t.Fatal(err)
	}
}

// runTCPInProcess drives the same body over real TCP loopback transports,
// one goroutine per rank within this process.
func runTCPInProcess(t *testing.T, spec cluster.Spec) {
	t.Helper()
	addrs := make([]string, spec.N)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	spec.Addrs = addrs
	errs := make([]error, spec.N)
	var wg sync.WaitGroup
	for i := 0; i < spec.N; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = cluster.Worker(spec, rank)
		}(i)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func readResult(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTCPRunBitIdenticalToInProcess is the tentpole pin: the same spec run on
// the in-process channel world and over TCP loopback produces byte-identical
// result snapshots — with and without injected transport faults.
func TestTCPRunBitIdenticalToInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster TCP test skipped in -short")
	}
	for _, n := range []int{2, 3} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			dirChan, dirTCP := t.TempDir(), t.TempDir()
			ref := testSpec(t, dirChan, n)
			runChan(t, ref)
			want := readResult(t, ref.ResultPath)

			tcp := testSpec(t, dirTCP, n)
			runTCPInProcess(t, tcp)
			if got := readResult(t, tcp.ResultPath); !bytes.Equal(got, want) {
				t.Error("TCP result differs from in-process result")
			}

			// Same run under recoverable chaos: drops, delays, duplicates and
			// corruption must not change a single bit.
			dirChaos := t.TempDir()
			chaotic := testSpec(t, dirChaos, n)
			chaotic.RetryBase = 10 * time.Millisecond
			chaotic.Chaos = &comm.ChaosOptions{
				Seed: 7, DropRate: 0.05, DelayRate: 0.05,
				DuplicateRate: 0.05, CorruptRate: 0.05,
				MaxDelay: 3 * time.Millisecond,
			}
			runTCPInProcess(t, chaotic)
			if got := readResult(t, chaotic.ResultPath); !bytes.Equal(got, want) {
				t.Error("chaotic TCP result differs from in-process result")
			}
		})
	}
}

// TestCheckpointResumeBitIdentical pins the restart path without processes:
// run steps 0..3 in one go, then replay from the step-2 checkpoint, and
// require the final snapshots to match byte for byte.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, dir, 2)
	runChan(t, spec)
	want := readResult(t, spec.ResultPath)

	// The final checkpoint is from after step 3 == NSteps; rewrite the
	// scenario to stop at step 2, then resume from its checkpoint.
	dir2 := t.TempDir()
	first := testSpec(t, dir2, 2)
	first.NSteps = 2
	first.ResultPath = filepath.Join(dir2, "partial.sdf")
	runChan(t, first)

	resumed := testSpec(t, dir2, 2)
	resumed.SnapshotIn = first.CheckpointPath // "step = 2" checkpoint
	resumed.ResultPath = filepath.Join(dir2, "resumed.sdf")
	runChan(t, resumed)
	if got := readResult(t, resumed.ResultPath); !bytes.Equal(got, want) {
		t.Error("resumed run differs from uninterrupted run")
	}
}

// TestSupervisedRecoveryBitIdentical is the fault-tolerance pin: N separate
// worker processes, one of which chaos-kills itself mid-run; the supervisor
// restarts the world from the last good checkpoint and the final result is
// byte-identical to a never-faulted run.
func TestSupervisedRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process supervision test skipped in -short")
	}
	dirRef := t.TempDir()
	ref := testSpec(t, dirRef, 2)
	runChan(t, ref)
	want := readResult(t, ref.ResultPath)

	// Clean supervised run first: processes, no faults.
	dirClean := t.TempDir()
	clean := testSpec(t, dirClean, 2)
	if err := cluster.Supervise(clean, cluster.SuperviseOptions{
		Command: []string{os.Args[0]},
		Dir:     dirClean,
	}); err != nil {
		t.Fatal(err)
	}
	if got := readResult(t, clean.ResultPath); !bytes.Equal(got, want) {
		t.Error("supervised clean run differs from in-process run")
	}

	// Faulted run: rank 1 kills itself after some frames (plus background
	// frame drops); the supervisor must restart and still converge to the
	// identical result.  KillAfter is tuned to land after the first
	// checkpoint, so the restart exercises restore-from-checkpoint, not just
	// restart-from-IC.
	dirFault := t.TempDir()
	fault := testSpec(t, dirFault, 2)
	fault.HeartbeatInterval = 100 * time.Millisecond
	fault.LivenessTimeout = time.Second
	fault.RetryBase = 10 * time.Millisecond
	fault.Chaos = &comm.ChaosOptions{
		Seed:      3,
		DropRate:  0.02,
		KillAfter: 200, // one step is ~100 data frames: dies mid-step-2, after checkpoints exist
	}
	fault.ChaosKillRank = 1
	restarts, fromCheckpoint := 0, 0
	if err := cluster.Supervise(fault, cluster.SuperviseOptions{
		Command:     []string{os.Args[0]},
		Dir:         dirFault,
		MaxRestarts: 4,
		OnRestart: func(int, error) {
			restarts++
			if _, err := os.Stat(fault.CheckpointPath); err == nil {
				fromCheckpoint++
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if restarts == 0 {
		t.Error("chaos kill never fired: the recovery path went unexercised")
	}
	if fromCheckpoint == 0 {
		t.Error("no checkpoint existed at restart: restore path went unexercised (lower KillAfter?)")
	}
	if got := readResult(t, fault.ResultPath); !bytes.Equal(got, want) {
		t.Error("supervised faulted run differs from clean run")
	}
}
