package tree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// This file pins the parallel level-by-level BuildUpper to the round-based
// serial reference (buildUpperSerial).  The serial reference creates upper
// cells in map-iteration order, which makes its cell indices — and, one
// level up, the order in which a parent sums its children — nondeterministic
// from run to run, so moments can only be compared to the reference at
// floating-point-reassociation tolerance.  The parallel pass removes that
// wart: it is pinned below to be bit-identical across worker counts and
// across repeated runs.

// upperScenario assembles the post-branch-exchange state of one rank: the
// rank's own distributed tree plus every other rank's branch cells shipped
// through the same encode/decode path the production exchange uses.
func upperScenario(t *testing.T, nRanks, rank, workers int, rhoBar float64) *Distributed {
	t.Helper()
	const n = 3000
	rng := rand.New(rand.NewSource(17))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		c := vec.V3{0.3, 0.5, 0.7}
		if i%3 == 0 {
			c = vec.V3{0.8, 0.2, 0.4}
		}
		pos[i] = vec.V3{
			vec.PeriodicWrap(c[0]+0.08*rng.NormFloat64(), 1),
			vec.PeriodicWrap(c[1]+0.08*rng.NormFloat64(), 1),
			vec.PeriodicWrap(c[2]+0.08*rng.NormFloat64(), 1),
		}
		mass[i] = 1 + rng.Float64()
	}
	box := vec.CubeBox(vec.V3{}, 1)
	probe, err := Build(append([]vec.V3(nil), pos...), append([]float64(nil), mass...), box,
		Options{Order: 2, LeafSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Contiguous key ranges, equal particle counts per rank.
	bounds := make([]uint64, nRanks+1)
	bounds[0] = uint64(1) << 63
	bounds[nRanks] = ^uint64(0)
	for r := 1; r < nRanks; r++ {
		bounds[r] = probe.Keys[r*n/nRanks]
	}

	build := func(r int) *Distributed {
		var rp []vec.V3
		var rm []float64
		for i, k := range probe.Keys {
			if k >= bounds[r] && (k < bounds[r+1] || r == nRanks-1) {
				rp = append(rp, probe.Pos[i])
				rm = append(rm, probe.Mass[i])
			}
		}
		d, err := NewDistributed(rp, rm, box,
			Options{Order: 2, LeafSize: 8, Workers: workers, RhoBar: rhoBar, Rank: r},
			bounds[r], bounds[r+1])
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	mine := build(rank)
	for r := 0; r < nRanks; r++ {
		if r == rank {
			continue
		}
		other := build(r)
		cells, err := DecodeCells(other.EncodeCells(other.LocalBranches()))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			mine.AddRemoteCell(c)
		}
	}
	return mine
}

// collectUpper returns every cell of the tree keyed by its key.
func collectUpper(d *Distributed) map[keys.Key]*Cell {
	out := make(map[keys.Key]*Cell, len(d.Cell))
	for _, c := range d.Cell {
		out[c.Key] = c
	}
	return out
}

// expansionsClose compares two expansions allowing floating-point
// reassociation noise (the serial reference sums upper-cell children in a
// nondeterministic order); structure and Bmax (a max, order-independent)
// stay exact.
func expansionsClose(t *testing.T, label string, a, b *multipole.Expansion) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: expansion presence differs", label)
	}
	if a == nil {
		return
	}
	if a.P != b.P || a.Center != b.Center || a.Bmax != b.Bmax {
		t.Fatalf("%s: expansion header differs", label)
	}
	const tol = 1e-12
	close := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= tol*(math.Abs(x)+math.Abs(y)) || d < 1e-300
	}
	if !close(a.Mass, b.Mass) {
		t.Fatalf("%s: mass differs: %v vs %v", label, a.Mass, b.Mass)
	}
	for i := range a.M {
		if !close(a.M[i], b.M[i]) {
			t.Fatalf("%s: moment M[%d] differs: %v vs %v", label, i, a.M[i], b.M[i])
		}
	}
	for i := range a.B {
		if !close(a.B[i], b.B[i]) {
			t.Fatalf("%s: absolute moment B[%d] differs: %v vs %v", label, i, a.B[i], b.B[i])
		}
	}
	for i := range a.Norms {
		if !close(a.Norms[i], b.Norms[i]) {
			t.Fatalf("%s: Norms[%d] differs: %v vs %v", label, i, a.Norms[i], b.Norms[i])
		}
	}
}

func TestBuildUpperMatchesSerialReference(t *testing.T) {
	for _, rhoBar := range []float64{0, 2.5} {
		for _, workers := range []int{1, 3, 8} {
			name := fmt.Sprintf("bg=%v/workers=%d", rhoBar > 0, workers)
			t.Run(name, func(t *testing.T) {
				const nRanks = 3
				ref := upperScenario(t, nRanks, 1, 1, rhoBar)
				ref.buildUpperSerial()

				got := upperScenario(t, nRanks, 1, workers, rhoBar)
				got.BuildUpper()

				refCells := collectUpper(ref)
				gotCells := collectUpper(got)
				if len(refCells) != len(gotCells) {
					t.Fatalf("cell count differs: serial %d, parallel %d", len(refCells), len(gotCells))
				}
				if ref.Cell[ref.RootIdx].Key != keys.RootKey || got.Cell[got.RootIdx].Key != keys.RootKey {
					t.Fatal("root cell missing after upper build")
				}
				for k, rc := range refCells {
					gc, ok := gotCells[k]
					if !ok {
						t.Fatalf("cell %x missing from parallel tree", uint64(k))
					}
					label := fmt.Sprintf("cell %x", uint64(k))
					if rc.Level != gc.Level || rc.NBodies != gc.NBodies || rc.Owner != gc.Owner ||
						rc.Remote != gc.Remote || rc.Center != gc.Center || rc.Size != gc.Size ||
						rc.ChildMask != gc.ChildMask {
						t.Fatalf("%s: metadata differs:\n  serial %+v\n  parallel %+v", label, rc, gc)
					}
					// Compare the child link sets by key (indices are not
					// comparable across the two implementations).
					for oct := 0; oct < 8; oct++ {
						rHas := rc.ChildIdx[oct] != NoChild
						gHas := gc.ChildIdx[oct] != NoChild
						if rHas != gHas {
							t.Fatalf("%s: child octant %d presence differs", label, oct)
						}
						if rHas && ref.Cell[rc.ChildIdx[oct]].Key != got.Cell[gc.ChildIdx[oct]].Key {
							t.Fatalf("%s: child octant %d links different keys", label, oct)
						}
					}
					expansionsClose(t, label, rc.Exp, gc.Exp)
				}
			})
		}
	}
}

// TestBuildUpperDeterministicAcrossWorkers pins the property the serial
// reference never had: the parallel upper build produces the same tree —
// cell order, links and bit-exact moments — for every worker count and on
// every run.
func TestBuildUpperDeterministicAcrossWorkers(t *testing.T) {
	const nRanks = 3
	mk := func(workers int) *Distributed {
		// The rank-local builds are bit-identical for every worker count
		// (build_equiv_test.go), so only BuildUpper varies here.
		d := upperScenario(t, nRanks, 1, workers, 2.5)
		d.BuildUpper()
		return d
	}
	ref := mk(1)
	for _, workers := range []int{1, 3, 8} {
		got := mk(workers)
		if len(ref.Cell) != len(got.Cell) {
			t.Fatalf("workers=%d: cell count differs: %d vs %d", workers, len(ref.Cell), len(got.Cell))
		}
		if ref.RootIdx != got.RootIdx {
			t.Fatalf("workers=%d: root index differs", workers)
		}
		for i := range ref.Cell {
			a, b := ref.Cell[i], got.Cell[i]
			label := fmt.Sprintf("workers=%d cell %d (key %x)", workers, i, uint64(a.Key))
			if a.Key != b.Key || a.ChildIdx != b.ChildIdx || a.ChildMask != b.ChildMask ||
				a.NBodies != b.NBodies || a.Owner != b.Owner {
				t.Fatalf("%s: metadata differs", label)
			}
			expansionsEqual(t, label, a.Exp, b.Exp)
		}
	}
}

// TestBuildUpperSingleRank checks the degenerate case where the root itself
// is the only branch cell and BuildUpper has nothing to do.
func TestBuildUpperSingleRank(t *testing.T) {
	d := upperScenario(t, 1, 0, 2, 0)
	before := len(d.Cell)
	d.BuildUpper()
	if len(d.Cell) != before {
		t.Fatalf("single-rank upper build created %d cells", len(d.Cell)-before)
	}
	if d.Cell[d.RootIdx].Key != keys.RootKey {
		t.Fatal("root lost")
	}
}
