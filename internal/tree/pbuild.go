package tree

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"twohot/internal/keys"
	"twohot/internal/parsort"
)

// This file implements the parallel build pipeline behind Build and
// NewDistributed.  The stages are
//
//  1. key computation over parallel chunks (element-wise keys.FromPosition),
//  2. a parallel sort of packed (key, index) records (parsort.SortKV),
//  3. a gather of the particle arrays into key order over parallel chunks,
//  4. concurrent subtree builds: the domain is split at a level chosen from
//     the worker count, each split cell's subtree is built into a private
//     arena, and a single-threaded stitch replays the upper walk to install
//     arenas and hash entries in the serial build's exact pre-order,
//  5. a final parallel internal-moment pass over the stitched upper cells,
//     level by level from the deepest.
//
// Every stage is deterministic independently of the worker count and of
// goroutine scheduling: stages 1 and 3 are element-wise, the sort order is
// total (ties broken by original index), the cell layout of stage 4 depends
// only on the sorted keys, and stage 5 computes each cell's moments from
// already-finished children with the same code the serial build uses.  The
// equivalence suite in build_equiv_test.go pins this bit-for-bit.

// GrowSlice resizes a pooled buffer to length n, reallocating only when the
// capacity is exhausted.  Contents are unspecified (callers overwrite every
// element).  Shared by the build scratch here and the solver's persistent
// staging buffers in internal/core.
func GrowSlice[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// workerCount resolves Options.Workers (0 = GOMAXPROCS).
func (o *Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelChunks runs body over contiguous chunks of [0, n) on up to workers
// goroutines and waits for completion.
func parallelChunks(n, workers int, body func(lo, hi int)) {
	if workers <= 1 || n < 2*workers {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortParticles computes body keys for t.Pos and reorders t.Pos/t.Mass in
// place into canonical (key, original index) order, filling t.Keys and
// t.SortIndex.  All stages run over parallel chunks.
//
// When Options.Previous carries a compatible prior tree, the records are
// emitted in that tree's sorted order instead of array order: record slot i
// re-keys the particle that ended up in sorted slot i last step, so on a
// near-static snapshot the array is already almost in (key, index) order and
// SortKVAdaptive's merge path replaces the radix sort.  Each record still
// carries the particle's index in the caller's ordering, so the sorted record
// sequence — a total order over (key, caller index) — is exactly the one the
// from-scratch path produces, and everything built from it is bit-identical.
func (t *Tree) sortParticles(workers int) (*BuildScratch, int) {
	n := len(t.Pos)
	sc := t.Opt.Scratch
	t.Opt.Scratch = nil // the tree must not retain the caller's scratch
	if sc == nil {
		sc = &BuildScratch{} // throwaway: plain allocations, nothing pooled
	}
	side := sc.flip
	sc.flip ^= 1
	recs := GrowSlice(&sc.recs, n)
	prev := t.Opt.Previous
	t.Opt.Previous = nil // never retain a chain of previous trees
	dirty := t.Opt.Dirty
	if prev != nil && len(prev.SortIndex) == n {
		order := prev.SortIndex
		// Key linearly (sequential reads of the fat position array), then
		// permute only the 8-byte keys into the previous order; permuting
		// during keying would turn every 24-byte position read into a cache
		// miss and hand back most of what the fast sort path saves.  keyTmp
		// borrows this build's retained key array — every record holds its
		// own key copy by the time the gather below overwrites it.
		keyTmp := GrowSlice(&sc.keys[side], n)
		parallelChunks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				keyTmp[i] = uint64(keys.FromPosition(t.Pos[i], t.Box, keys.Morton))
			}
		})
		// Arm the subtree-reuse path while keyTmp still holds this build's
		// keys in caller order (the gather below repurposes its backing).
		if dirty != nil && len(dirty) == n {
			t.prepareDirty(prev, dirty, keyTmp, sc)
		}
		parallelChunks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				j := order[i]
				recs[i] = parsort.KV{Key: keyTmp[j], Idx: int32(j)}
			}
		})
		t0 := time.Now()
		st := parsort.SortKVAdaptive(recs, workers)
		t.Stats = BuildStats{Reused: true, FastPath: st.FastPath, Displaced: st.Displaced,
			SortTime: time.Since(t0)}
	} else {
		parallelChunks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				recs[i] = parsort.KV{
					Key: uint64(keys.FromPosition(t.Pos[i], t.Box, keys.Morton)),
					Idx: int32(i),
				}
			}
		})
		t0 := time.Now()
		parsort.SortKV(recs, workers)
		t.Stats = BuildStats{SortTime: time.Since(t0)}
	}

	newPos := GrowSlice(&sc.gpos, n)
	newMass := GrowSlice(&sc.gmass, n)
	newKeys := GrowSlice(&sc.keys[side], n)
	idx := GrowSlice(&sc.idx[side], n)
	parallelChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := recs[i]
			newPos[i] = t.Pos[r.Idx]
			newMass[i] = t.Mass[r.Idx]
			newKeys[i] = r.Key
			idx[i] = int(r.Idx)
		}
	})
	parallelChunks(n, workers, func(lo, hi int) {
		copy(t.Pos[lo:hi], newPos[lo:hi])
		copy(t.Mass[lo:hi], newMass[lo:hi])
	})
	t.Keys = newKeys
	t.SortIndex = idx
	return sc, side
}

// buildRange constructs the subtree covering the key-sorted particle range
// [first, first+count) under key: serially for workers <= 1 (the reference
// implementation the equivalence suite compares against), through the
// arena pipeline otherwise.
func (t *Tree) buildRange(key keys.Key, first, count, workers int) int32 {
	if workers <= 1 {
		return t.buildCell(key, first, count)
	}
	return t.buildParallel(key, first, count, workers)
}

// splitLevelFor picks the absolute level at which the domain is cut into
// independent build tasks: deep enough for a few tasks per worker (so
// clustered inputs load-balance), capped so the serial plan/stitch walk over
// the upper cells stays negligible.
func splitLevelFor(rootLevel, workers int) int {
	level := rootLevel + 1
	tasks := 8
	for tasks < 4*workers && level < rootLevel+3 && level < keys.MaxDepth {
		level++
		tasks *= 8
	}
	return level
}

// buildTask is one independent subtree build: the cell key and its particle
// range.  Tasks are emitted and stitched in DFS (key) order.
type buildTask struct {
	key          keys.Key
	first, count int
}

// arenaReuseInfo is one arena's dirty-set reuse bookkeeping: the pre-order
// contiguous copies as arena-local segments (rebased and published by the
// stitch phase) plus the counters covering every copy.
type arenaReuseInfo struct {
	segments        []ReusedSubtree
	subtrees, cells int
}

// arena accumulates one task's subtree with arena-local child indices.
// Arena builds only read shared tree state (sorted particles, background
// moments, options); the global cell array and hash table are mutated solely
// by the stitch phase on the calling goroutine.
type arena struct {
	t     *Tree
	cells []*Cell
	reuse arenaReuseInfo
}

// build mirrors Tree.buildCell exactly — including the dirty-set reuse check
// at every level — appending into the arena instead of the tree and
// computing all leaf and internal moments of the subtree.
func (a *arena) build(key keys.Key, first, count int) int32 {
	t := a.t
	if pi, ok := t.reusable(key, count); ok {
		return a.copySubtree(pi, first)
	}
	level := key.Level()
	c := t.newCell(key, first, count)
	idx := int32(len(a.cells))
	a.cells = append(a.cells, &c)

	if count <= t.Opt.LeafSize || level >= keys.MaxDepth {
		c.Leaf = true
		t.leafMoments(&c)
		return idx
	}
	lo := first
	for oct := 0; oct < 8; oct++ {
		childKey := key.Child(oct)
		hi := lo + t.childUpperBound(childKey, lo, first+count)
		if hi > lo {
			ci := a.build(childKey, lo, hi-lo)
			c.ChildIdx[oct] = ci
			c.ChildMask |= 1 << uint(oct)
		}
		lo = hi
	}
	t.internalMoments(&c, func(oct int) *Cell {
		if ci := c.ChildIdx[oct]; ci != NoChild {
			return a.cells[ci]
		}
		return nil
	})
	return idx
}

// buildParallel is the concurrent counterpart of buildCell for the same
// (key, first, count) subtree.  See the file comment for the stages.
func (t *Tree) buildParallel(root keys.Key, first, count, workers int) int32 {
	splitLevel := splitLevelFor(root.Level(), workers)

	// taskHere decides, identically in the plan and stitch walks, whether a
	// cell is built whole by one task (leaves included: a range that the
	// serial build would turn into a leaf is a single-cell task).
	taskHere := func(level, count int) bool {
		return count <= t.Opt.LeafSize || level >= keys.MaxDepth || level >= splitLevel
	}

	// Phase 1: plan — walk the upper tree over key ranges only, emitting
	// tasks in DFS order.
	var tasks []buildTask
	var plan func(key keys.Key, first, count int)
	plan = func(key keys.Key, first, count int) {
		// A subtree the dirty-set path can copy whole is one task no matter
		// how high it sits: the copy is memory-bound and must not be split.
		if _, ok := t.reusable(key, count); ok || taskHere(key.Level(), count) {
			tasks = append(tasks, buildTask{key, first, count})
			return
		}
		lo := first
		for oct := 0; oct < 8; oct++ {
			childKey := key.Child(oct)
			hi := lo + t.childUpperBound(childKey, lo, first+count)
			if hi > lo {
				plan(childKey, lo, hi-lo)
			}
			lo = hi
		}
	}
	plan(root, first, count)

	// Phase 2: build every task's subtree into its own arena, workers
	// pulling tasks from an atomic cursor.
	arenas := make([][]*Cell, len(tasks))
	arenaReuse := make([]arenaReuseInfo, len(tasks))
	nw := workers
	if nw > len(tasks) {
		nw = len(tasks)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := int(cursor.Add(1)) - 1
				if ti >= len(tasks) {
					return
				}
				a := arena{t: t}
				a.build(tasks[ti].key, tasks[ti].first, tasks[ti].count)
				arenas[ti] = a.cells
				arenaReuse[ti] = a.reuse
			}
		}()
	}
	wg.Wait()

	// Phase 3: stitch — replay the planning walk on the calling goroutine,
	// appending upper cells and arena cells so that the cell array and the
	// hash-table insertion sequence match the serial build's pre-order
	// exactly.  Upper-cell moments are deferred to phase 4.
	var upper []int32
	nextTask := 0
	var stitch func(key keys.Key, first, count int) int32
	stitch = func(key keys.Key, first, count int) int32 {
		// The reuse check must replay the planning walk's decision exactly;
		// both read only immutable state, so they cannot diverge.
		if _, reused := t.reusable(key, count); reused || taskHere(key.Level(), count) {
			base := int32(len(t.Cell))
			for _, c := range arenas[nextTask] {
				for o := range c.ChildIdx {
					if c.ChildIdx[o] != NoChild {
						c.ChildIdx[o] += base
					}
				}
				idx := int32(len(t.Cell))
				t.Cell = append(t.Cell, c)
				t.Hash.Put(c.Key, idx)
			}
			// Adopt the arena's reuse records, rebased to the global layout.
			ar := &arenaReuse[nextTask]
			for _, seg := range ar.segments {
				t.Reuse = append(t.Reuse, ReusedSubtree{
					PrevRoot: seg.PrevRoot, Root: seg.Root + base, NumCells: seg.NumCells,
				})
			}
			t.Stats.ReusedSubtrees += ar.subtrees
			t.Stats.ReusedCells += ar.cells
			nextTask++
			return base
		}
		c := t.newCell(key, first, count)
		idx := int32(len(t.Cell))
		t.Cell = append(t.Cell, &c)
		t.Hash.Put(key, idx)
		lo := first
		for oct := 0; oct < 8; oct++ {
			childKey := key.Child(oct)
			hi := lo + t.childUpperBound(childKey, lo, first+count)
			if hi > lo {
				ci := stitch(childKey, lo, hi-lo)
				t.Cell[idx].ChildIdx[oct] = ci
				t.Cell[idx].ChildMask |= 1 << uint(oct)
			}
			lo = hi
		}
		upper = append(upper, idx)
		return idx
	}
	rootIdx := stitch(root, first, count)

	// Phase 4: parallel internal-moment pass over the upper cells, level by
	// level from the deepest.  A level-L upper cell's children are either
	// arena roots (finished in phase 2) or level-L+1 upper cells (finished in
	// the previous wave), and each cell's computation touches only its own
	// expansion, so the waves are race-free and order-independent.
	if len(upper) > 0 {
		maxLevel := root.Level()
		byLevel := map[int][]int32{}
		for _, ci := range upper {
			l := t.Cell[ci].Level
			byLevel[l] = append(byLevel[l], ci)
			if l > maxLevel {
				maxLevel = l
			}
		}
		for l := maxLevel; l >= root.Level(); l-- {
			cells := byLevel[l]
			if len(cells) == 0 {
				continue
			}
			parallelChunks(len(cells), workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					t.computeInternalMoments(cells[i])
				}
			})
		}
	}
	return rootIdx
}
