package tree

import (
	"fmt"
	"math"
	"sort"

	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// This file implements the distributed tree construction of Section 3.2:
// each rank owns a contiguous key range of particles, builds subtrees under
// its "branch" cells (the coarsest cells entirely inside its key range),
// exchanges branch cells with the other ranks, and assembles the shared
// upper-level cells whose moments combine contributions from every rank.
// Cells received from other ranks are Remote: when a traversal needs their
// children, Tree.FetchChildren ships them over the ABM layer.

// BranchKeys returns the minimal set of cell keys whose body-key ranges are
// entirely contained in [lo, hi) and which together cover it.  These are the
// branch cells of a rank owning the key range [lo, hi).
func BranchKeys(lo, hi uint64) []keys.Key {
	var out []keys.Key
	var walk func(k keys.Key)
	walk = func(k keys.Key) {
		klo, khi := k.BodyRange() // closed range of body keys under k
		if uint64(khi) < lo || uint64(klo) >= hi {
			return
		}
		if uint64(klo) >= lo && (uint64(khi) < hi || hi == ^uint64(0)) {
			out = append(out, k)
			return
		}
		if k.Level() >= keys.MaxDepth {
			// A single deepest-level cell straddling the range boundary is
			// assigned to the range that contains its first body key.
			if uint64(klo) >= lo && uint64(klo) < hi {
				out = append(out, k)
			}
			return
		}
		for oct := 0; oct < 8; oct++ {
			walk(k.Child(oct))
		}
	}
	walk(keys.RootKey)
	return out
}

// Distributed wraps a Tree with the bookkeeping of the distributed build:
// the particles of one rank organized into subtrees under that rank's branch
// cells, plus (after the branch exchange) the remote branch cells of every
// other rank and the shared upper tree above them.
type Distributed struct {
	*Tree
	KeyLo, KeyHi uint64
	BranchCells  []keys.Key // this rank's branch cell keys (with particles)
}

// NewDistributed builds the rank-local subtrees.  pos/mass are the rank's
// particles; they are sorted by key in place.  keyLo/keyHi delimit the rank's
// key range.  Call AddRemoteCell for every branch cell received from the
// other ranks and then BuildUpper to assemble the shared upper tree.
func NewDistributed(pos []vec.V3, mass []float64, box vec.Box, opt Options, keyLo, keyHi uint64) (*Distributed, error) {
	opt.defaults()
	if len(pos) == 0 {
		return nil, fmt.Errorf("tree: rank owns no particles")
	}
	if len(pos) > math.MaxInt32 {
		return nil, fmt.Errorf("tree: %d particles exceed the 2^31 sort-record limit", len(pos))
	}
	t := &Tree{
		Opt:  opt,
		Box:  box,
		Hash: NewHashTable(2*len(pos) + 1024),
		Pos:  pos,
		Mass: mass,
	}
	workers := opt.workerCount()
	t.sortParticles(workers)
	if opt.RhoBar > 0 {
		t.buildBackgroundMoments()
	}

	d := &Distributed{Tree: t, KeyLo: keyLo, KeyHi: keyHi}
	for _, bk := range BranchKeys(keyLo, keyHi) {
		lo, hi := bk.BodyRange()
		first := sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] >= uint64(lo) })
		last := sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] > uint64(hi) })
		if last <= first {
			continue
		}
		idx := t.buildRange(bk, first, last-first, workers)
		if bk == keys.RootKey {
			t.RootIdx = idx
		}
		d.BranchCells = append(d.BranchCells, bk)
	}
	if len(d.BranchCells) == 0 {
		return nil, fmt.Errorf("tree: no branch cells contain particles")
	}
	return d, nil
}

// LocalBranches returns the rank's branch cells.
func (d *Distributed) LocalBranches() []*Cell {
	out := make([]*Cell, 0, len(d.BranchCells))
	for _, k := range d.BranchCells {
		c, ok := d.CellByKey(k)
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// AddRemoteCell inserts a cell received from another rank (branch exchange or
// prefetch).  Existing cells are not overwritten.
func (d *Distributed) AddRemoteCell(c Cell) {
	if _, ok := d.Hash.Get(c.Key); ok {
		return
	}
	cc := c
	for i := range cc.ChildIdx {
		cc.ChildIdx[i] = NoChild
	}
	idx := int32(len(d.Cell))
	d.Cell = append(d.Cell, &cc)
	d.Hash.Put(cc.Key, idx)
}

// BuildUpper creates the shared upper-level cells above the branch cells
// (local and remote) and computes their moments by shifting the branch
// moments upward (M2M).  It must be called after all branch cells have been
// inserted.  Upper cells are owned by no rank and never require fetching.
func (d *Distributed) BuildUpper() {
	// Gather all cells that currently have no parent in the table, deepest
	// first.
	for {
		// Find the deepest level that still has an orphan non-root cell.
		orphans := map[keys.Key][]int32{}
		deepest := -1
		for i, c := range d.Cell {
			if c.Key == keys.RootKey {
				continue
			}
			parent := c.Key.Parent()
			if _, ok := d.Hash.Get(parent); ok {
				// Parent exists: make sure the link is recorded.
				pidx, _ := d.Hash.Get(parent)
				p := d.Cell[pidx]
				oct := c.Key.Octant()
				if p.ChildIdx[oct] == NoChild {
					p.ChildIdx[oct] = int32(i)
					p.ChildMask |= 1 << uint(oct)
				}
				continue
			}
			if c.Level > deepest {
				deepest = c.Level
			}
			orphans[parent] = append(orphans[parent], int32(i))
		}
		if len(orphans) == 0 {
			break
		}
		created := false
		for parent, children := range orphans {
			// Only create parents for the deepest orphans this round so that
			// moments propagate level by level.
			if children[0] >= 0 && d.Cell[children[0]].Level != deepest {
				continue
			}
			d.createUpperCell(parent, children)
			created = true
		}
		if !created {
			// All remaining orphans are shallower; loop again with the new
			// deepest level.
			continue
		}
	}
}

func (d *Distributed) createUpperCell(key keys.Key, children []int32) {
	box := key.CellBox(d.Box)
	c := Cell{
		Key:    key,
		Center: box.Center(),
		Size:   box.MaxSide(),
		Level:  key.Level(),
		Owner:  -1,
	}
	for i := range c.ChildIdx {
		c.ChildIdx[i] = NoChild
	}
	e := multipole.NewExpansion(d.Opt.Order, c.Center)
	n := 0
	for _, ci := range children {
		child := d.Cell[ci]
		oct := child.Key.Octant()
		c.ChildIdx[oct] = ci
		c.ChildMask |= 1 << uint(oct)
		raw := child.Exp
		if d.bgByLevel != nil {
			raw = cloneMinusBackground(child.Exp, d.bgByLevel[child.Level])
		}
		shift := multipole.NewExpansion(d.Opt.Order, c.Center)
		shift.AddShifted(raw)
		e.AddExpansion(shift)
		n += child.NBodies
	}
	c.NBodies = n
	d.addBackground(e, &c)
	e.FinalizeNorms()
	c.Exp = e
	idx := int32(len(d.Cell))
	d.Cell = append(d.Cell, &c)
	d.Hash.Put(key, idx)
	if key == keys.RootKey {
		d.RootIdx = idx
	}
}

// ChildrenOf returns the (local) children of the cell with the given key, for
// answering ABM requests from other ranks.
func (t *Tree) ChildrenOf(key keys.Key) []*Cell {
	idx, ok := t.Hash.Get(key)
	if !ok {
		return nil
	}
	c := t.Cell[idx]
	var out []*Cell
	for oct := 0; oct < 8; oct++ {
		if c.ChildIdx[oct] != NoChild {
			out = append(out, t.Cell[c.ChildIdx[oct]])
		}
	}
	return out
}
