package tree

import (
	"fmt"
	"math"
	"sort"

	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// This file implements the distributed tree construction of Section 3.2:
// each rank owns a contiguous key range of particles, builds subtrees under
// its "branch" cells (the coarsest cells entirely inside its key range),
// exchanges branch cells with the other ranks, and assembles the shared
// upper-level cells whose moments combine contributions from every rank.
// Cells received from other ranks are Remote: when a traversal needs their
// children, Tree.FetchChildren ships them over the ABM layer.

// BranchKeys returns the minimal set of cell keys whose body-key ranges are
// entirely contained in [lo, hi) and which together cover it.  These are the
// branch cells of a rank owning the key range [lo, hi).
func BranchKeys(lo, hi uint64) []keys.Key {
	var out []keys.Key
	var walk func(k keys.Key)
	walk = func(k keys.Key) {
		klo, khi := k.BodyRange() // closed range of body keys under k
		if uint64(khi) < lo || uint64(klo) >= hi {
			return
		}
		if uint64(klo) >= lo && (uint64(khi) < hi || hi == ^uint64(0)) {
			out = append(out, k)
			return
		}
		if k.Level() >= keys.MaxDepth {
			// A single deepest-level cell straddling the range boundary is
			// assigned to the range that contains its first body key.
			if uint64(klo) >= lo && uint64(klo) < hi {
				out = append(out, k)
			}
			return
		}
		for oct := 0; oct < 8; oct++ {
			walk(k.Child(oct))
		}
	}
	walk(keys.RootKey)
	return out
}

// Distributed wraps a Tree with the bookkeeping of the distributed build:
// the particles of one rank organized into subtrees under that rank's branch
// cells, plus (after the branch exchange) the remote branch cells of every
// other rank and the shared upper tree above them.
type Distributed struct {
	*Tree
	KeyLo, KeyHi uint64
	BranchCells  []keys.Key // this rank's branch cell keys (with particles)
}

// NewDistributed builds the rank-local subtrees.  pos/mass are the rank's
// particles; they are sorted by key in place.  keyLo/keyHi delimit the rank's
// key range.  Call AddRemoteCell for every branch cell received from the
// other ranks and then BuildUpper to assemble the shared upper tree.
func NewDistributed(pos []vec.V3, mass []float64, box vec.Box, opt Options, keyLo, keyHi uint64) (*Distributed, error) {
	opt.defaults()
	if len(pos) == 0 {
		return nil, fmt.Errorf("tree: rank owns no particles")
	}
	if len(pos) > math.MaxInt32 {
		return nil, fmt.Errorf("tree: %d particles exceed the 2^31 sort-record limit", len(pos))
	}
	t := &Tree{
		Opt:  opt,
		Box:  box,
		Hash: NewHashTable(2*len(pos) + 1024),
		Pos:  pos,
		Mass: mass,
	}
	workers := opt.workerCount()
	t.sortParticles(workers)
	if opt.RhoBar > 0 {
		t.buildBackgroundMoments()
	}

	d := &Distributed{Tree: t, KeyLo: keyLo, KeyHi: keyHi}
	for _, bk := range BranchKeys(keyLo, keyHi) {
		lo, hi := bk.BodyRange()
		first := sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] >= uint64(lo) })
		last := sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] > uint64(hi) })
		if last <= first {
			continue
		}
		idx := t.buildRange(bk, first, last-first, workers)
		if bk == keys.RootKey {
			t.RootIdx = idx
		}
		d.BranchCells = append(d.BranchCells, bk)
	}
	if len(d.BranchCells) == 0 {
		return nil, fmt.Errorf("tree: no branch cells contain particles")
	}
	return d, nil
}

// LocalBranches returns the rank's branch cells.
func (d *Distributed) LocalBranches() []*Cell {
	out := make([]*Cell, 0, len(d.BranchCells))
	for _, k := range d.BranchCells {
		c, ok := d.CellByKey(k)
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// AddRemoteCell inserts a cell received from another rank (branch exchange or
// prefetch).  Existing cells are not overwritten.
func (d *Distributed) AddRemoteCell(c Cell) {
	if _, ok := d.Hash.Get(c.Key); ok {
		return
	}
	cc := c
	for i := range cc.ChildIdx {
		cc.ChildIdx[i] = NoChild
	}
	idx := int32(len(d.Cell))
	d.Cell = append(d.Cell, &cc)
	d.Hash.Put(cc.Key, idx)
}

// BuildUpper creates the shared upper-level cells above the branch cells
// (local and remote) and computes their moments by shifting the branch
// moments upward (M2M).  It must be called after all branch cells have been
// inserted.  Upper cells are owned by no rank and never require fetching.
//
// The pass runs level by level from the deepest cell upward: a parallel scan
// classifies every cell of the level as linked (parent already in the table)
// or orphaned, parents for the orphans are created serially in cell-index
// order (deterministic, unlike the map-ordered serial reference), and the new
// parents' moments are computed in a parallel pass — each parent's expansion
// touches only its own storage and its (finished) children.  One cell is
// visited once per level it sits on, replacing the serial reference's
// repeated whole-table rounds, which rescanned every cell once per remaining
// orphan level.  buildUpperSerial keeps the reference implementation; the
// regression suite in dtree_upper_test.go pins the two to each other.
func (d *Distributed) BuildUpper() {
	workers := d.Opt.workerCount()
	maxLevel := 0
	for _, c := range d.Cell {
		if c.Level > maxLevel {
			maxLevel = c.Level
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	for i, c := range d.Cell {
		byLevel[c.Level] = append(byLevel[c.Level], int32(i))
	}
	for l := maxLevel; l >= 1; l-- {
		cells := byLevel[l]
		if len(cells) == 0 {
			continue
		}
		// Parallel scan: resolve each cell's parent in the hash table
		// (read-only; all writes happen below on the calling goroutine).
		parentIdx := make([]int32, len(cells))
		parallelChunks(len(cells), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c := d.Cell[cells[i]]
				if pi, ok := d.Hash.Get(c.Key.Parent()); ok {
					parentIdx[i] = pi
				} else {
					parentIdx[i] = NoChild
				}
			}
		})
		// Serial: record links into existing parents and group the orphans
		// by parent key, preserving cell-index order within each group (the
		// summation order of the serial reference's moment pass).
		type orphanGroup struct {
			key      keys.Key
			children []int32
		}
		var groups []orphanGroup
		groupOf := map[keys.Key]int{}
		for i, ci := range cells {
			c := d.Cell[ci]
			if pi := parentIdx[i]; pi != NoChild {
				p := d.Cell[pi]
				oct := c.Key.Octant()
				if p.ChildIdx[oct] == NoChild {
					p.ChildIdx[oct] = ci
					p.ChildMask |= 1 << uint(oct)
				}
				continue
			}
			pk := c.Key.Parent()
			gi, ok := groupOf[pk]
			if !ok {
				gi = len(groups)
				groups = append(groups, orphanGroup{key: pk})
				groupOf[pk] = gi
			}
			groups[gi].children = append(groups[gi].children, ci)
		}
		if len(groups) == 0 {
			continue
		}
		// Serial: append the parent shells (cell array and hash mutations).
		created := make([]int32, len(groups))
		for gi := range groups {
			idx := d.createUpperShell(groups[gi].key, groups[gi].children)
			created[gi] = idx
			byLevel[l-1] = append(byLevel[l-1], idx)
		}
		// Parallel: the new parents' moments.  Children are finished — they
		// are either original cells or parents created (and summed) one
		// level deeper — and each computation writes only its own cell.
		parallelChunks(len(groups), workers, func(lo, hi int) {
			for gi := lo; gi < hi; gi++ {
				d.upperMoments(d.Cell[created[gi]], groups[gi].children)
			}
		})
	}
}

// buildUpperSerial is the original round-based reference implementation of
// BuildUpper, kept verbatim so the regression suite can pin the parallel
// level pass to it.
func (d *Distributed) buildUpperSerial() {
	// Gather all cells that currently have no parent in the table, deepest
	// first.
	for {
		// Find the deepest level that still has an orphan non-root cell.
		orphans := map[keys.Key][]int32{}
		deepest := -1
		for i, c := range d.Cell {
			if c.Key == keys.RootKey {
				continue
			}
			parent := c.Key.Parent()
			if _, ok := d.Hash.Get(parent); ok {
				// Parent exists: make sure the link is recorded.
				pidx, _ := d.Hash.Get(parent)
				p := d.Cell[pidx]
				oct := c.Key.Octant()
				if p.ChildIdx[oct] == NoChild {
					p.ChildIdx[oct] = int32(i)
					p.ChildMask |= 1 << uint(oct)
				}
				continue
			}
			if c.Level > deepest {
				deepest = c.Level
			}
			orphans[parent] = append(orphans[parent], int32(i))
		}
		if len(orphans) == 0 {
			break
		}
		created := false
		for parent, children := range orphans {
			// Only create parents for the deepest orphans this round so that
			// moments propagate level by level.
			if children[0] >= 0 && d.Cell[children[0]].Level != deepest {
				continue
			}
			d.createUpperCell(parent, children)
			created = true
		}
		if !created {
			// All remaining orphans are shallower; loop again with the new
			// deepest level.
			continue
		}
	}
}

// createUpperCell creates one shared upper cell complete with moments; the
// serial reference path uses it round by round.
func (d *Distributed) createUpperCell(key keys.Key, children []int32) {
	idx := d.createUpperShell(key, children)
	d.upperMoments(d.Cell[idx], children)
}

// createUpperShell appends the metadata of a shared upper cell — child links,
// body count, hash entry — leaving the moments for upperMoments.  All cell
// array and hash mutations of BuildUpper funnel through here, on the calling
// goroutine.
func (d *Distributed) createUpperShell(key keys.Key, children []int32) int32 {
	box := key.CellBox(d.Box)
	c := Cell{
		Key:    key,
		Center: box.Center(),
		Size:   box.MaxSide(),
		Level:  key.Level(),
		Owner:  -1,
	}
	for i := range c.ChildIdx {
		c.ChildIdx[i] = NoChild
	}
	n := 0
	for _, ci := range children {
		child := d.Cell[ci]
		oct := child.Key.Octant()
		c.ChildIdx[oct] = ci
		c.ChildMask |= 1 << uint(oct)
		n += child.NBodies
	}
	c.NBodies = n
	idx := int32(len(d.Cell))
	d.Cell = append(d.Cell, &c)
	d.Hash.Put(key, idx)
	if key == keys.RootKey {
		d.RootIdx = idx
	}
	return idx
}

// upperMoments shifts the children's moments up to the shared upper cell c,
// in the given child order — the exact arithmetic sequence of the serial
// reference, so the two BuildUpper implementations agree bit for bit.  It
// reads shared tree state and finished children and writes only c.Exp, so
// concurrent calls on distinct cells are safe.
func (d *Distributed) upperMoments(c *Cell, children []int32) {
	e := multipole.NewExpansion(d.Opt.Order, c.Center)
	for _, ci := range children {
		child := d.Cell[ci]
		raw := child.Exp
		if d.bgByLevel != nil {
			raw = cloneMinusBackground(child.Exp, d.bgByLevel[child.Level])
		}
		shift := multipole.NewExpansion(d.Opt.Order, c.Center)
		shift.AddShifted(raw)
		e.AddExpansion(shift)
	}
	d.addBackground(e, c)
	e.FinalizeNorms()
	c.Exp = e
}

// ChildrenOf returns the (local) children of the cell with the given key, for
// answering ABM requests from other ranks.
func (t *Tree) ChildrenOf(key keys.Key) []*Cell {
	idx, ok := t.Hash.Get(key)
	if !ok {
		return nil
	}
	c := t.Cell[idx]
	var out []*Cell
	for oct := 0; oct < 8; oct++ {
		if c.ChildIdx[oct] != NoChild {
			out = append(out, t.Cell[c.ChildIdx[oct]])
		}
	}
	return out
}
