package tree

import "twohot/internal/keys"

// HashTable is the open-addressing hash table that gives the hashed oct-tree
// its name: cells are identified globally by their space-filling-curve key
// and located (whether locally built or fetched from a remote rank) through
// this table rather than through pointers, exactly as in WS93.
type HashTable struct {
	keys  []uint64
	vals  []int32
	mask  uint64
	count int
}

// NewHashTable creates a table sized for about n entries.
func NewHashTable(n int) *HashTable {
	size := 16
	for size < n*2 {
		size <<= 1
	}
	h := &HashTable{
		keys: make([]uint64, size),
		vals: make([]int32, size),
		mask: uint64(size - 1),
	}
	return h
}

// Len returns the number of stored entries.
func (h *HashTable) Len() int { return h.count }

// Put stores key -> val, replacing an existing entry.
func (h *HashTable) Put(key keys.Key, val int32) {
	if key == keys.InvalidKey {
		panic("tree: cannot store the invalid key")
	}
	if float64(h.count+1) > 0.7*float64(len(h.keys)) {
		h.grow()
	}
	slot := key.Hash() & h.mask
	for {
		if h.keys[slot] == 0 {
			h.keys[slot] = uint64(key)
			h.vals[slot] = val
			h.count++
			return
		}
		if h.keys[slot] == uint64(key) {
			h.vals[slot] = val
			return
		}
		slot = (slot + 1) & h.mask
	}
}

// Get returns the value for key and whether it is present.
func (h *HashTable) Get(key keys.Key) (int32, bool) {
	slot := key.Hash() & h.mask
	for {
		k := h.keys[slot]
		if k == 0 {
			return 0, false
		}
		if k == uint64(key) {
			return h.vals[slot], true
		}
		slot = (slot + 1) & h.mask
	}
}

func (h *HashTable) grow() {
	oldKeys, oldVals := h.keys, h.vals
	size := len(oldKeys) * 2
	h.keys = make([]uint64, size)
	h.vals = make([]int32, size)
	h.mask = uint64(size - 1)
	h.count = 0
	for i, k := range oldKeys {
		if k != 0 {
			h.Put(keys.Key(k), oldVals[i])
		}
	}
}

// Range calls fn for every (key, value) pair; iteration order is unspecified.
func (h *HashTable) Range(fn func(k keys.Key, v int32) bool) {
	for i, k := range h.keys {
		if k != 0 {
			if !fn(keys.Key(k), h.vals[i]) {
				return
			}
		}
	}
}
