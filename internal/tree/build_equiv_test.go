package tree

import (
	"fmt"
	"math/rand"
	"testing"

	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// This file pins the parallel build pipeline to the serial reference: for
// every worker count the built tree must be BIT-IDENTICAL — same reordered
// particle arrays, same SortIndex, same cell array in the same order, same
// hash contents, and exactly equal (==, no tolerance) multipole moments.

// equivWorkerCounts are the parallel worker counts checked against the
// serial (Workers: 1) reference.  3 is deliberately not a power of two so
// chunk boundaries never align with octant boundaries.
var equivWorkerCounts = []int{2, 3, 8}

// buildInput is a named particle distribution for the equivalence suite.
type buildInput struct {
	name string
	pos  []vec.V3
	mass []float64
}

func equivInputs(n int) []buildInput {
	rng := rand.New(rand.NewSource(99))
	uniform := buildInput{name: "uniform"}
	for i := 0; i < n; i++ {
		uniform.pos = append(uniform.pos, vec.V3{rng.Float64(), rng.Float64(), rng.Float64()})
		uniform.mass = append(uniform.mass, 1+rng.Float64())
	}

	clustered := buildInput{name: "clustered"}
	centers := make([]vec.V3, 5)
	for i := range centers {
		centers[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(len(centers))]
		clustered.pos = append(clustered.pos, vec.V3{
			vec.PeriodicWrap(c[0]+0.03*rng.NormFloat64(), 1),
			vec.PeriodicWrap(c[1]+0.03*rng.NormFloat64(), 1),
			vec.PeriodicWrap(c[2]+0.03*rng.NormFloat64(), 1),
		})
		clustered.mass = append(clustered.mass, 1+rng.Float64())
	}

	// Duplicate positions: many particles share exactly the same key, so the
	// sort can only be deterministic if ties are broken canonically, and some
	// leaves exceed LeafSize all the way down to MaxDepth.  Distinct masses
	// catch any permutation difference among the duplicates.
	dup := buildInput{name: "duplicates"}
	distinct := make([]vec.V3, 40)
	for i := range distinct {
		distinct[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for i := 0; i < n; i++ {
		dup.pos = append(dup.pos, distinct[rng.Intn(len(distinct))])
		dup.mass = append(dup.mass, float64(i+1))
	}

	return []buildInput{uniform, clustered, dup}
}

func cloneInput(in buildInput) ([]vec.V3, []float64) {
	return append([]vec.V3(nil), in.pos...), append([]float64(nil), in.mass...)
}

// expansionsEqual requires exact float equality on every stored moment.
func expansionsEqual(t *testing.T, label string, a, b *multipole.Expansion) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: expansion presence differs", label)
	}
	if a == nil {
		return
	}
	if a.P != b.P || a.Center != b.Center || a.Mass != b.Mass || a.Bmax != b.Bmax {
		t.Fatalf("%s: expansion header differs: P %d/%d center %v/%v mass %v/%v bmax %v/%v",
			label, a.P, b.P, a.Center, b.Center, a.Mass, b.Mass, a.Bmax, b.Bmax)
	}
	for i := range a.M {
		if a.M[i] != b.M[i] {
			t.Fatalf("%s: moment M[%d] differs: %v vs %v", label, i, a.M[i], b.M[i])
		}
	}
	for i := range a.B {
		if a.B[i] != b.B[i] {
			t.Fatalf("%s: absolute moment B[%d] differs: %v vs %v", label, i, a.B[i], b.B[i])
		}
	}
	if len(a.Norms) != len(b.Norms) {
		t.Fatalf("%s: Norms length differs: %d vs %d", label, len(a.Norms), len(b.Norms))
	}
	for i := range a.Norms {
		if a.Norms[i] != b.Norms[i] {
			t.Fatalf("%s: Norms[%d] differs: %v vs %v", label, i, a.Norms[i], b.Norms[i])
		}
	}
}

// treesEqual asserts that two trees are bit-identical in every observable:
// particle order, sort index, keys, cell layout and moments.
func treesEqual(t *testing.T, ref, got *Tree) {
	t.Helper()
	if len(ref.Pos) != len(got.Pos) {
		t.Fatalf("particle count differs: %d vs %d", len(ref.Pos), len(got.Pos))
	}
	for i := range ref.Pos {
		if ref.Pos[i] != got.Pos[i] || ref.Mass[i] != got.Mass[i] {
			t.Fatalf("sorted particle %d differs: %v/%v vs %v/%v", i, ref.Pos[i], ref.Mass[i], got.Pos[i], got.Mass[i])
		}
		if ref.Keys[i] != got.Keys[i] {
			t.Fatalf("sorted key %d differs: %x vs %x", i, ref.Keys[i], got.Keys[i])
		}
		if ref.SortIndex[i] != got.SortIndex[i] {
			t.Fatalf("SortIndex[%d] differs: %d vs %d", i, ref.SortIndex[i], got.SortIndex[i])
		}
	}
	if ref.NumCells() != got.NumCells() {
		t.Fatalf("cell count differs: %d vs %d", ref.NumCells(), got.NumCells())
	}
	if ref.RootIdx != got.RootIdx {
		t.Fatalf("root index differs: %d vs %d", ref.RootIdx, got.RootIdx)
	}
	for i := range ref.Cell {
		a, b := ref.Cell[i], got.Cell[i]
		label := fmt.Sprintf("cell %d (key %x)", i, uint64(a.Key))
		if a.Key != b.Key || a.Level != b.Level || a.First != b.First || a.NBodies != b.NBodies ||
			a.Leaf != b.Leaf || a.ChildMask != b.ChildMask || a.Owner != b.Owner ||
			a.Center != b.Center || a.Size != b.Size || a.ChildIdx != b.ChildIdx {
			t.Fatalf("%s: metadata differs:\n  ref %+v\n  got %+v", label, a, b)
		}
		expansionsEqual(t, label, a.Exp, b.Exp)
	}
	// The hash table must resolve every key to the same cell index.
	ref.Hash.Range(func(k keys.Key, v int32) bool {
		gv, ok := got.Hash.Get(k)
		if !ok || gv != v {
			t.Fatalf("hash entry %x: ref %d, got %d (present=%v)", uint64(k), v, gv, ok)
		}
		return true
	})
	if ref.Hash.Len() != got.Hash.Len() {
		t.Fatalf("hash length differs: %d vs %d", ref.Hash.Len(), got.Hash.Len())
	}
}

func TestParallelBuildMatchesSerialReference(t *testing.T) {
	n := 6000
	if testing.Short() {
		n = 2000
	}
	for _, in := range equivInputs(n) {
		for _, rhoBar := range []float64{0, 1.5} {
			name := in.name
			if rhoBar > 0 {
				name += "-bg"
			}
			t.Run(name, func(t *testing.T) {
				box := vec.CubeBox(vec.V3{}, 1)
				opt := Options{Order: 4, LeafSize: 16, RhoBar: rhoBar}

				optRef := opt
				optRef.Workers = 1
				refPos, refMass := cloneInput(in)
				ref, err := Build(refPos, refMass, box, optRef)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range equivWorkerCounts {
					t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
						optW := opt
						optW.Workers = w
						pos, mass := cloneInput(in)
						got, err := Build(pos, mass, box, optW)
						if err != nil {
							t.Fatal(err)
						}
						treesEqual(t, ref, got)
					})
				}
			})
		}
	}
}

// TestParallelBuildDeterministicAcrossRuns guards against scheduling
// sensitivity: repeated parallel builds of the same input must agree exactly
// with each other (not merely with the serial reference).
func TestParallelBuildDeterministicAcrossRuns(t *testing.T) {
	in := equivInputs(3000)[1] // clustered: the least balanced task split
	box := vec.CubeBox(vec.V3{}, 1)
	opt := Options{Order: 2, LeafSize: 8, Workers: 8}
	pos0, mass0 := cloneInput(in)
	first, err := Build(pos0, mass0, box, opt)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		pos, mass := cloneInput(in)
		again, err := Build(pos, mass, box, opt)
		if err != nil {
			t.Fatal(err)
		}
		treesEqual(t, first, again)
	}
}

// TestParallelBuildTinyInputs exercises the degenerate sizes where the whole
// domain is a single leaf or a single task.
func TestParallelBuildTinyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := vec.CubeBox(vec.V3{}, 1)
	for _, n := range []int{1, 2, 15, 16, 17, 130} {
		pos := make([]vec.V3, n)
		mass := make([]float64, n)
		for i := range pos {
			pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
			mass[i] = float64(i + 1)
		}
		ref, err := Build(append([]vec.V3(nil), pos...), append([]float64(nil), mass...), box,
			Options{Order: 2, LeafSize: 16, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Build(append([]vec.V3(nil), pos...), append([]float64(nil), mass...), box,
			Options{Order: 2, LeafSize: 16, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		treesEqual(t, ref, got)
	}
}

// TestDistributedBuildWorkerEquivalence pins the rank-local distributed
// build (branch subtrees) to its serial reference as well.
func TestDistributedBuildWorkerEquivalence(t *testing.T) {
	in := equivInputs(4000)[0]
	box := vec.CubeBox(vec.V3{}, 1)

	// Key range covering roughly the middle half of the sorted keys.
	pos, mass := cloneInput(in)
	probe, err := Build(pos, mass, box, Options{Order: 2, LeafSize: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	keyLo := probe.Keys[len(probe.Keys)/4]
	keyHi := probe.Keys[3*len(probe.Keys)/4]
	var rp []vec.V3
	var rm []float64
	for i, k := range probe.Keys {
		if k >= keyLo && k < keyHi {
			rp = append(rp, probe.Pos[i])
			rm = append(rm, probe.Mass[i])
		}
	}

	build := func(workers int) *Distributed {
		d, err := NewDistributed(append([]vec.V3(nil), rp...), append([]float64(nil), rm...), box,
			Options{Order: 2, LeafSize: 8, Workers: workers}, keyLo, keyHi)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ref := build(1)
	for _, w := range equivWorkerCounts {
		got := build(w)
		if len(ref.BranchCells) != len(got.BranchCells) {
			t.Fatalf("workers=%d: branch count differs: %d vs %d", w, len(ref.BranchCells), len(got.BranchCells))
		}
		for i := range ref.BranchCells {
			if ref.BranchCells[i] != got.BranchCells[i] {
				t.Fatalf("workers=%d: branch %d differs", w, i)
			}
		}
		treesEqual(t, ref.Tree, got.Tree)
	}
}
