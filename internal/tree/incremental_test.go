package tree

import (
	"fmt"
	"math/rand"
	"testing"

	"twohot/internal/vec"
)

// This file pins the incremental rebuild (Options.Previous) to the
// from-scratch build: for every drift amplitude — including none at all and
// a complete shuffle that defeats the near-sorted fast path — and for every
// worker count, the rebuilt tree must be BIT-IDENTICAL to a fresh build of
// the same positions.

// driftedClone returns a copy of pos with every coordinate perturbed by a
// Gaussian of width sigma (periodically wrapped into the unit box).
func driftedClone(pos []vec.V3, sigma float64, seed int64) []vec.V3 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vec.V3, len(pos))
	for i, p := range pos {
		out[i] = vec.V3{
			vec.PeriodicWrap(p[0]+sigma*rng.NormFloat64(), 1),
			vec.PeriodicWrap(p[1]+sigma*rng.NormFloat64(), 1),
			vec.PeriodicWrap(p[2]+sigma*rng.NormFloat64(), 1),
		}
	}
	return out
}

func TestIncrementalBuildMatchesScratch(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 1500
	}
	box := vec.CubeBox(vec.V3{}, 1)
	in := equivInputs(n)[1] // clustered

	for _, rhoBar := range []float64{0, 1.5} {
		for _, sigma := range []float64{0, 1e-5, 1e-3, 0.3} {
			name := fmt.Sprintf("bg=%v/sigma=%g", rhoBar > 0, sigma)
			t.Run(name, func(t *testing.T) {
				opt := Options{Order: 4, LeafSize: 16, RhoBar: rhoBar, Workers: 1}

				// Step 0: the previous step's tree.
				pPos, pMass := cloneInput(in)
				prev, err := Build(pPos, pMass, box, opt)
				if err != nil {
					t.Fatal(err)
				}
				if prev.Stats.Reused {
					t.Fatal("from-scratch build claims reuse")
				}

				// Step 1: drifted positions, in the caller's original order.
				// prev.SortIndex maps sorted slots back to that order, so the
				// drift is applied in caller order for both builds.
				drift := driftedClone(in.pos, sigma, 42)

				refPos := append([]vec.V3(nil), drift...)
				refMass := append([]float64(nil), in.mass...)
				scratchOpt := opt
				ref, err := Build(refPos, refMass, box, scratchOpt)
				if err != nil {
					t.Fatal(err)
				}

				for _, w := range []int{1, 2, 3, 8} {
					incPos := append([]vec.V3(nil), drift...)
					incMass := append([]float64(nil), in.mass...)
					incOpt := opt
					incOpt.Workers = w
					incOpt.Previous = prev
					got, err := Build(incPos, incMass, box, incOpt)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Stats.Reused {
						t.Fatalf("workers=%d: incremental build did not reuse the previous order", w)
					}
					if got.Opt.Previous != nil {
						t.Fatalf("workers=%d: built tree retains Options.Previous", w)
					}
					if sigma == 0 && (got.Stats.Displaced != 0 || !got.Stats.FastPath) {
						t.Errorf("workers=%d: static snapshot reported displaced=%d fastpath=%v",
							w, got.Stats.Displaced, got.Stats.FastPath)
					}
					if sigma == 1e-5 && !got.Stats.FastPath {
						t.Errorf("workers=%d: near-static snapshot fell back to the radix sort (displaced=%d)",
							w, got.Stats.Displaced)
					}
					treesEqual(t, ref, got)
				}
			})
		}
	}
}

// TestIncrementalBuildRejectsIncompatiblePrevious checks that a previous tree
// of the wrong particle count is ignored rather than trusted.
func TestIncrementalBuildRejectsIncompatiblePrevious(t *testing.T) {
	box := vec.CubeBox(vec.V3{}, 1)
	rng := rand.New(rand.NewSource(3))
	mk := func(n int) ([]vec.V3, []float64) {
		pos := make([]vec.V3, n)
		mass := make([]float64, n)
		for i := range pos {
			pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
			mass[i] = 1
		}
		return pos, mass
	}
	pPos, pMass := mk(500)
	prev, err := Build(pPos, pMass, box, Options{Order: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pos, mass := mk(800)
	ref, err := Build(append([]vec.V3(nil), pos...), append([]float64(nil), mass...), box, Options{Order: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(pos, mass, box, Options{Order: 2, Workers: 1, Previous: prev})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Reused {
		t.Error("mismatched Previous was not rejected")
	}
	treesEqual(t, ref, got)
}

// TestIncrementalBuildChain drives several consecutive rebuilds, each seeded
// by the one before — the steady state of the stepping pipeline — and checks
// every link against a fresh build.
func TestIncrementalBuildChain(t *testing.T) {
	n := 2000
	box := vec.CubeBox(vec.V3{}, 1)
	in := equivInputs(n)[0]
	pos := append([]vec.V3(nil), in.pos...)
	opt := Options{Order: 2, LeafSize: 8, Workers: 2}

	pPos, pMass := cloneInput(in)
	prev, err := Build(pPos, pMass, box, opt)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 4; step++ {
		pos = driftedClone(pos, 5e-6, int64(step))

		refPos := append([]vec.V3(nil), pos...)
		refMass := append([]float64(nil), in.mass...)
		ref, err := Build(refPos, refMass, box, opt)
		if err != nil {
			t.Fatal(err)
		}

		incPos := append([]vec.V3(nil), pos...)
		incMass := append([]float64(nil), in.mass...)
		incOpt := opt
		incOpt.Previous = prev
		got, err := Build(incPos, incMass, box, incOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Stats.Reused || !got.Stats.FastPath {
			t.Fatalf("step %d: reuse=%v fastpath=%v (displaced=%d)",
				step, got.Stats.Reused, got.Stats.FastPath, got.Stats.Displaced)
		}
		treesEqual(t, ref, got)
		prev = got
	}
}
