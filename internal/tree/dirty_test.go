package tree

// This file pins the dirty-set subtree reuse (Options.Dirty) to the
// from-scratch build: for any dirty fraction — none, a few, most, all — any
// drift amplitude and any worker count, the reusing build must be
// BIT-IDENTICAL to a fresh build of the same positions, while actually
// copying subtrees whenever anything is clean.

import (
	"fmt"
	"math/rand"
	"testing"

	"twohot/internal/vec"
)

// driftSubset moves the marked particles of pos by a Gaussian of width sigma
// (periodically wrapped) and returns the new positions plus the dirty mask.
func driftSubset(pos []vec.V3, frac, sigma float64, seed int64) ([]vec.V3, []bool) {
	rng := rand.New(rand.NewSource(seed))
	out := append([]vec.V3(nil), pos...)
	dirty := make([]bool, len(pos))
	for i := range out {
		if rng.Float64() >= frac {
			continue
		}
		dirty[i] = true
		out[i] = vec.V3{
			vec.PeriodicWrap(out[i][0]+sigma*rng.NormFloat64(), 1),
			vec.PeriodicWrap(out[i][1]+sigma*rng.NormFloat64(), 1),
			vec.PeriodicWrap(out[i][2]+sigma*rng.NormFloat64(), 1),
		}
	}
	return out, dirty
}

func TestDirtyBuildMatchesScratch(t *testing.T) {
	n := 4000
	if testing.Short() {
		n = 1500
	}
	box := vec.CubeBox(vec.V3{}, 1)
	in := equivInputs(n)[1] // clustered

	for _, rhoBar := range []float64{0, 1.5} {
		for _, tc := range []struct {
			frac, sigma float64
		}{
			{0, 0},       // nothing dirty: the whole tree is one copy
			{0.02, 1e-4}, // near-static partial drift, small steps
			{0.02, 0.3},  // few movers, but they travel across the box
			{0.5, 1e-3},  // half the particles move
			{1, 1e-3},    // everything dirty: reuse must disarm cleanly
		} {
			name := fmt.Sprintf("bg=%v/frac=%g/sigma=%g", rhoBar > 0, tc.frac, tc.sigma)
			t.Run(name, func(t *testing.T) {
				opt := Options{Order: 4, LeafSize: 16, RhoBar: rhoBar, Workers: 1}

				pPos, pMass := cloneInput(in)
				prev, err := Build(pPos, pMass, box, opt)
				if err != nil {
					t.Fatal(err)
				}

				drift, dirty := driftSubset(in.pos, tc.frac, tc.sigma, 7)

				refPos := append([]vec.V3(nil), drift...)
				refMass := append([]float64(nil), in.mass...)
				ref, err := Build(refPos, refMass, box, opt)
				if err != nil {
					t.Fatal(err)
				}

				for _, w := range []int{1, 2, 3, 8} {
					incPos := append([]vec.V3(nil), drift...)
					incMass := append([]float64(nil), in.mass...)
					incOpt := opt
					incOpt.Workers = w
					incOpt.Previous = prev
					incOpt.Dirty = dirty
					got, err := Build(incPos, incMass, box, incOpt)
					if err != nil {
						t.Fatal(err)
					}
					if got.Opt.Dirty != nil {
						t.Fatalf("workers=%d: built tree retains Options.Dirty", w)
					}
					allDirty := tc.frac >= 1
					if !allDirty && got.Stats.ReusedCells == 0 {
						t.Errorf("workers=%d: no subtrees reused at dirty frac %g",
							w, tc.frac)
					}
					if allDirty && got.Stats.ReusedCells != 0 {
						t.Errorf("workers=%d: fully dirty build claims %d reused cells",
							w, got.Stats.ReusedCells)
					}
					if tc.frac == 0 && got.Stats.ReusedCells != ref.NumCells() {
						t.Errorf("workers=%d: static snapshot reused %d of %d cells",
							w, got.Stats.ReusedCells, ref.NumCells())
					}
					for _, seg := range got.Reuse {
						if seg.NumCells <= 0 || int(seg.Root+seg.NumCells) > got.NumCells() ||
							int(seg.PrevRoot+seg.NumCells) > prev.NumCells() {
							t.Fatalf("workers=%d: reuse segment out of range: %+v", w, seg)
						}
						if got.ReuseSource() != prev {
							t.Fatalf("workers=%d: ReuseSource does not name the copy source", w)
						}
					}
					treesEqual(t, ref, got)
				}
			})
		}
	}
}

// TestDirtyBuildSharedMoments makes sure copied expansions never alias the
// previous tree's pooled storage: after two further builds through the same
// scratch (which recycles the arena side the source tree used), the copied
// tree's moments must be untouched.
func TestDirtyBuildNoAliasing(t *testing.T) {
	n := 2000
	box := vec.CubeBox(vec.V3{}, 1)
	in := equivInputs(n)[1]
	opt := Options{Order: 4, LeafSize: 16, Workers: 1}
	var sc BuildScratch

	pPos, pMass := cloneInput(in)
	sOpt := opt
	sOpt.Scratch = &sc
	prev, err := Build(pPos, pMass, box, sOpt)
	if err != nil {
		t.Fatal(err)
	}

	drift, dirty := driftSubset(in.pos, 0.02, 1e-4, 3)
	incPos := append([]vec.V3(nil), drift...)
	incMass := append([]float64(nil), in.mass...)
	incOpt := opt
	incOpt.Scratch = &sc
	incOpt.Previous = prev
	incOpt.Dirty = dirty
	got, err := Build(incPos, incMass, box, incOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.ReusedCells == 0 {
		t.Fatal("no subtrees reused")
	}
	snapshot := make([]float64, 0, got.NumCells())
	for _, c := range got.Cell {
		snapshot = append(snapshot, c.Exp.M[0])
	}

	// One more build through the same scratch recycles the retained side the
	// copy source (prev) lived on.  Under the scratch contract the two most
	// recent trees — got and the new one — must stay fully valid, so if any
	// of got's copied expansions aliased prev's storage this build clobbers
	// them.
	pos, dirty := driftSubset(drift, 0.02, 1e-4, 11)
	p := append([]vec.V3(nil), pos...)
	m := append([]float64(nil), in.mass...)
	o := opt
	o.Scratch = &sc
	o.Previous = got
	o.Dirty = dirty
	if _, err := Build(p, m, box, o); err != nil {
		t.Fatal(err)
	}
	for i, c := range got.Cell {
		if c.Exp.M[0] != snapshot[i] {
			t.Fatalf("cell %d moments were clobbered by the next build through the shared scratch", i)
		}
	}
}

// TestDirtyBuildChain drives consecutive partial-drift rebuilds, each seeded
// by the one before — the steady state of a block-stepped run — and checks
// every link against a fresh build.
func TestDirtyBuildChain(t *testing.T) {
	n := 2000
	box := vec.CubeBox(vec.V3{}, 1)
	in := equivInputs(n)[0]
	pos := append([]vec.V3(nil), in.pos...)
	opt := Options{Order: 2, LeafSize: 8, Workers: 2, RhoBar: 1.5}
	var sc BuildScratch

	pPos, pMass := cloneInput(in)
	sOpt := opt
	sOpt.Scratch = &sc
	prev, err := Build(pPos, pMass, box, sOpt)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 4; step++ {
		var dirty []bool
		pos, dirty = driftSubset(pos, 0.05, 5e-5, int64(step))

		refPos := append([]vec.V3(nil), pos...)
		refMass := append([]float64(nil), in.mass...)
		ref, err := Build(refPos, refMass, box, opt)
		if err != nil {
			t.Fatal(err)
		}

		incPos := append([]vec.V3(nil), pos...)
		incMass := append([]float64(nil), in.mass...)
		incOpt := opt
		incOpt.Scratch = &sc
		incOpt.Previous = prev
		incOpt.Dirty = dirty
		got, err := Build(incPos, incMass, box, incOpt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.ReusedCells == 0 {
			t.Fatalf("step %d: no subtrees reused", step)
		}
		treesEqual(t, ref, got)
		prev = got
	}
}

// TestDirtyBuildRejectsIncompatiblePrevious checks the gates of the reuse
// path: a previous tree with different order, leaf size, background density
// or box must not be used as a copy source even when Dirty is supplied.
func TestDirtyBuildRejectsIncompatiblePrevious(t *testing.T) {
	n := 1200
	box := vec.CubeBox(vec.V3{}, 1)
	in := equivInputs(n)[0]
	base := Options{Order: 4, LeafSize: 16, RhoBar: 1.5, Workers: 1}

	pPos, pMass := cloneInput(in)
	prev, err := Build(pPos, pMass, box, base)
	if err != nil {
		t.Fatal(err)
	}
	drift, dirty := driftSubset(in.pos, 0.02, 1e-4, 5)

	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"order", func(o *Options) { o.Order = 2 }},
		{"leafsize", func(o *Options) { o.LeafSize = 8 }},
		{"rhobar", func(o *Options) { o.RhoBar = 0 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			tc.mutate(&opt)

			refPos := append([]vec.V3(nil), drift...)
			refMass := append([]float64(nil), in.mass...)
			ref, err := Build(refPos, refMass, box, opt)
			if err != nil {
				t.Fatal(err)
			}

			incPos := append([]vec.V3(nil), drift...)
			incMass := append([]float64(nil), in.mass...)
			incOpt := opt
			incOpt.Previous = prev
			incOpt.Dirty = dirty
			got, err := Build(incPos, incMass, box, incOpt)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats.ReusedCells != 0 {
				t.Fatalf("incompatible previous tree was used as a copy source (%d cells)",
					got.Stats.ReusedCells)
			}
			treesEqual(t, ref, got)
		})
	}
}
