package tree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// maxDecodeOrder bounds the multipole order accepted from the wire.  Orders
// beyond multipole.MaxOrder would not just over-allocate: evaluating such an
// expansion panics inside multipole.Table, so a corrupt buffer must be
// rejected here, at decode time.
const maxDecodeOrder = multipole.MaxOrder

// EncodeCell serializes a cell (including its expansion and, for leaves, its
// particle payload) for shipment to another rank, either during the branch
// exchange of the shared upper tree or in reply to an ABM child request.
func (t *Tree) EncodeCell(c *Cell) []byte {
	buf := &bytes.Buffer{}
	w := func(v any) { binary.Write(buf, binary.LittleEndian, v) }
	w(uint64(c.Key))
	w(c.Center)
	w(c.Size)
	w(int64(c.Level))
	w(int64(c.NBodies))
	var leaf uint8
	if c.Leaf {
		leaf = 1
	}
	w(leaf)
	w(c.ChildMask)
	w(int32(c.Owner))
	// Expansion.
	e := c.Exp
	w(int32(e.P))
	w(e.M)
	w(e.B)
	w(e.Bmax)
	w(e.Mass)
	w(e.Norms)
	// Leaf payload.
	if c.Leaf {
		pos, mass := t.LeafParticles(c)
		w(int64(len(pos)))
		w(pos)
		w(mass)
	}
	return buf.Bytes()
}

// DecodeCell reconstructs a cell serialized by EncodeCell.  The cell is
// marked Remote so its children are fetched on demand.
func DecodeCell(data []byte) (Cell, error) {
	r := bytes.NewReader(data)
	var c Cell
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var key uint64
	if err := rd(&key); err != nil {
		return c, fmt.Errorf("tree: decode cell: %w", err)
	}
	c.Key = keys.Key(key)
	var level, nbodies int64
	var leaf uint8
	var owner, p int32
	if err := firstErr(
		rd(&c.Center), rd(&c.Size), rd(&level), rd(&nbodies),
		rd(&leaf), rd(&c.ChildMask), rd(&owner), rd(&p),
	); err != nil {
		return c, fmt.Errorf("tree: decode cell: %w", err)
	}
	c.Level = int(level)
	c.NBodies = int(nbodies)
	c.Leaf = leaf == 1
	c.Owner = int(owner)
	c.Remote = true
	if p < 0 || p > maxDecodeOrder {
		return c, fmt.Errorf("tree: decode cell: invalid multipole order %d", p)
	}
	e := multipole.NewExpansion(int(p), c.Center)
	e.Norms = make([]float64, int(p)+1)
	if err := firstErr(rd(e.M), rd(e.B), rd(&e.Bmax), rd(&e.Mass), rd(e.Norms)); err != nil {
		return c, fmt.Errorf("tree: decode expansion: %w", err)
	}
	c.Exp = e
	for i := range c.ChildIdx {
		c.ChildIdx[i] = NoChild
	}
	if c.Leaf {
		var n int64
		if err := rd(&n); err != nil {
			return c, fmt.Errorf("tree: decode leaf payload: %w", err)
		}
		// A V3 + mass is 32 bytes per body: reject counts the remaining
		// buffer cannot possibly hold before allocating.
		if n < 0 || n > int64(r.Len())/32 {
			return c, fmt.Errorf("tree: decode leaf payload: implausible body count %d", n)
		}
		c.RemotePos = make([]vec.V3, n)
		c.RemoteMass = make([]float64, n)
		if err := firstErr(rd(c.RemotePos), rd(c.RemoteMass)); err != nil {
			return c, fmt.Errorf("tree: decode leaf payload: %w", err)
		}
	}
	return c, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// EncodeCells concatenates length-prefixed encodings of several cells.
func (t *Tree) EncodeCells(cells []*Cell) []byte {
	buf := &bytes.Buffer{}
	binary.Write(buf, binary.LittleEndian, int64(len(cells)))
	for _, c := range cells {
		b := t.EncodeCell(c)
		binary.Write(buf, binary.LittleEndian, int64(len(b)))
		buf.Write(b)
	}
	return buf.Bytes()
}

// DecodeCells reverses EncodeCells.  Truncated or corrupt buffers yield an
// error, never a partial success or a panic.
func DecodeCells(data []byte) ([]Cell, error) {
	r := bytes.NewReader(data)
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("tree: decode cells: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("tree: decode cells: negative cell count %d", n)
	}
	var out []Cell
	for i := int64(0); i < n; i++ {
		var sz int64
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return nil, fmt.Errorf("tree: decode cells: %w", err)
		}
		if sz < 0 || sz > int64(r.Len()) {
			return nil, fmt.Errorf("tree: decode cells: cell %d: size %d exceeds remaining %d bytes", i, sz, r.Len())
		}
		b := make([]byte, sz)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("tree: decode cells: %w", err)
		}
		c, err := DecodeCell(b)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
