package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// randomWireCell fabricates an arbitrary cell of the kind that crosses the
// wire: internal cells with moments only, leaves with a particle payload.
func randomWireCell(rng *rand.Rand) Cell {
	level := rng.Intn(keys.MaxDepth + 1)
	key := keys.RootKey
	for l := 0; l < level; l++ {
		key = key.Child(rng.Intn(8))
	}
	c := Cell{
		Key:       key,
		Center:    vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
		Size:      rng.Float64() + 1e-6,
		Level:     level,
		NBodies:   rng.Intn(1000),
		Leaf:      rng.Intn(2) == 0,
		ChildMask: uint8(rng.Intn(256)),
		Owner:     rng.Intn(64),
	}
	p := rng.Intn(9)
	e := multipole.NewExpansion(p, c.Center)
	for i := range e.M {
		e.M[i] = rng.NormFloat64()
	}
	for i := range e.B {
		e.B[i] = rng.Float64()
	}
	e.Bmax = rng.Float64()
	e.Mass = rng.NormFloat64()
	e.Norms = make([]float64, p+1)
	for i := range e.Norms {
		e.Norms[i] = rng.Float64()
	}
	c.Exp = e
	if c.Leaf {
		n := rng.Intn(40)
		c.RemotePos = make([]vec.V3, n)
		c.RemoteMass = make([]float64, n)
		for i := 0; i < n; i++ {
			c.RemotePos[i] = vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			c.RemoteMass[i] = rng.Float64()
		}
	}
	return c
}

func wireCellsEqual(a, b *Cell) bool {
	if a.Key != b.Key || a.Center != b.Center || a.Size != b.Size || a.Level != b.Level ||
		a.NBodies != b.NBodies || a.Leaf != b.Leaf || a.ChildMask != b.ChildMask || a.Owner != b.Owner {
		return false
	}
	if a.Exp.P != b.Exp.P || a.Exp.Bmax != b.Exp.Bmax || a.Exp.Mass != b.Exp.Mass {
		return false
	}
	for i := range a.Exp.M {
		if a.Exp.M[i] != b.Exp.M[i] {
			return false
		}
	}
	for i := range a.Exp.B {
		if a.Exp.B[i] != b.Exp.B[i] {
			return false
		}
	}
	for i := range a.Exp.Norms {
		if a.Exp.Norms[i] != b.Exp.Norms[i] {
			return false
		}
	}
	if len(a.RemotePos) != len(b.RemotePos) || len(a.RemoteMass) != len(b.RemoteMass) {
		return false
	}
	for i := range a.RemotePos {
		if a.RemotePos[i] != b.RemotePos[i] || a.RemoteMass[i] != b.RemoteMass[i] {
			return false
		}
	}
	return true
}

// TestEncodeDecodeArbitraryCellsRoundTrip is the property-test version of the
// round trip: arbitrary cells, not just ones produced by a particular build.
func TestEncodeDecodeArbitraryCellsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCells := 1 + rng.Intn(12)
		cells := make([]*Cell, nCells)
		for i := range cells {
			c := randomWireCell(rng)
			cells[i] = &c
		}
		// An empty Tree suffices: remote leaf payloads carry their own data.
		tr := &Tree{}
		decoded, err := DecodeCells(tr.EncodeCells(cells))
		if err != nil || len(decoded) != nCells {
			return false
		}
		for i := range decoded {
			if !decoded[i].Remote || !wireCellsEqual(cells[i], &decoded[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDecodeCellsTruncated verifies the error paths: every proper prefix of a
// valid encoding must fail cleanly (no panic, no silent partial success).
func TestDecodeCellsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cells := make([]*Cell, 3)
	for i := range cells {
		c := randomWireCell(rng)
		cells[i] = &c
	}
	tr := &Tree{}
	blob := tr.EncodeCells(cells)
	if _, err := DecodeCells(blob); err != nil {
		t.Fatalf("full blob must decode: %v", err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeCells(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded without error", cut, len(blob))
		}
	}
}

// TestDecodeCellsCorruptHeaders checks the defensive bounds on the framing
// fields: hostile counts and sizes must error out, not allocate or panic.
func TestDecodeCellsCorruptHeaders(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomWireCell(rng)
	tr := &Tree{}
	blob := tr.EncodeCells([]*Cell{&c})

	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), blob...)
		mutate(b)
		if _, err := DecodeCells(b); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	corrupt("negative cell count", func(b []byte) { b[7] = 0x80 })
	corrupt("huge cell count", func(b []byte) { b[6] = 0x7f })
	corrupt("negative cell size", func(b []byte) { b[15] = 0x80 })
	corrupt("oversized cell size", func(b []byte) { b[12] = 0x7f })
}

// FuzzDecodeCells asserts DecodeCells never panics on arbitrary input; the
// seeds cover a valid encoding and mutations of its framing.
func FuzzDecodeCells(f *testing.F) {
	rng := rand.New(rand.NewSource(10))
	tr := &Tree{}
	var cs []*Cell
	for i := 0; i < 3; i++ {
		c := randomWireCell(rng)
		cs = append(cs, &c)
	}
	valid := tr.EncodeCells(cs)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[40] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		cells, err := DecodeCells(data)
		if err == nil {
			// Whatever decodes must re-encode without panicking.
			ptrs := make([]*Cell, len(cells))
			for i := range cells {
				ptrs[i] = &cells[i]
			}
			(&Tree{}).EncodeCells(ptrs)
		}
	})
}
