package tree

// Dirty-set subtree reuse.
//
// The incremental sort (Options.Previous) removes the re-sort cost of a
// near-static step, but the build still re-derives every cell and every
// moment.  This file removes that cost too for the parts of the tree that
// cannot have changed: when the caller marks exactly which particles moved
// since the previous build (Options.Dirty), whole subtrees whose particle
// content is untouched are copied from the previous tree — cell structure
// and multipole moments alike — and only the dirty spine (cells with at
// least one moved particle underneath) is rebuilt.
//
// Why a key-interval test is sufficient: the sort order is total over
// (body key, caller index), and an unmoved particle keeps its position,
// mass, key and caller index, so its sort record is bit-identical between
// steps.  A cell covers a body-key interval, so the set of unmoved records
// inside a cell is decided by their (unchanged) keys alone.  Collect the
// previous and the new body key of every dirty particle into a sorted set D;
// a cell whose body-key interval contains no element of D therefore holds
// exactly the records it held last step — same values, same relative order —
// merely shifted within the sorted arrays by however many dirty records
// crossed it.  Everything the build derives below such a cell (subdivision,
// leaf decisions, moments, Bmax, error norms) is a pure function of those
// records, so copying the previous subtree and shifting First by the
// crossing count is bit-identical to rebuilding it.
//
// The reuse decision is a pure function of (cell key, D, previous tree), so
// the serial recursion, the parallel planner and the stitch replay all make
// it at the same points and the built tree is bit-identical for every worker
// count — the same discipline as the rest of the pipeline, pinned by
// dirty_test.go.

import (
	"sort"

	"twohot/internal/keys"
)

// ReusedSubtree records one subtree the dirty-set build copied verbatim from
// the previous tree: NumCells cells in pre-order, starting at index PrevRoot
// in the previous tree's cell array and at Root in this one (cell i of the
// segment maps PrevRoot+i -> Root+i).  Consumers may transplant any per-cell
// quantity that is a pure function of a cell's particle content and subtree
// structure across the segment — the traversal's sink-bound cache does
// exactly that.  Copies that are not pre-order contiguous in the previous
// tree (possible only for trees not built by this package) are performed but
// not recorded.
type ReusedSubtree struct {
	PrevRoot, Root, NumCells int32
}

// prepareDirty arms the subtree-reuse path for this build: prev becomes the
// copy source and t.dirtyKeys the sorted set D of old and new body keys of
// the dirty particles.  newKeys holds this build's body keys in the caller's
// particle order.  A fully dirty set is detected up front and disables the
// path (nothing could be reused, and the D lookups would only slow the
// recursion down).
func (t *Tree) prepareDirty(prev *Tree, dirty []bool, newKeys []uint64, sc *BuildScratch) {
	if !t.dirtyCompatible(prev) {
		return
	}
	nd := 0
	for _, d := range dirty {
		if d {
			nd++
		}
	}
	if nd == len(dirty) {
		return
	}
	d := sc.dirty[:0]
	for s, orig := range prev.SortIndex {
		if dirty[orig] {
			d = append(d, prev.Keys[s])
		}
	}
	for i, isDirty := range dirty {
		if isDirty {
			d = append(d, newKeys[i])
		}
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	sc.dirty = d
	t.dirtyKeys = d
	t.prev = prev
	t.reuseFrom = prev
	// Break the chain: prev's own reuse source was only needed while prev
	// was the current tree.  Without this, every step would retain the whole
	// history of trees.
	prev.reuseFrom = nil
}

// dirtyCompatible reports whether prev's cells and moments are valid copy
// sources for this build: same expansion order, leaf size, background
// density, root box and rank, and a purely local tree (a distributed tree's
// fetched remote cells carry state this build cannot reproduce).
func (t *Tree) dirtyCompatible(prev *Tree) bool {
	return prev != nil &&
		prev.Opt.Order == t.Opt.Order &&
		prev.Opt.LeafSize == t.Opt.LeafSize &&
		prev.Opt.RhoBar == t.Opt.RhoBar &&
		prev.Opt.Rank == t.Opt.Rank &&
		prev.Box == t.Box &&
		prev.FetchChildren == nil
}

// reusable decides whether the cell covering [first, first+count) of the
// sorted particle arrays can be copied from the previous tree, returning the
// previous tree's cell index.  The decision reads only immutable state (the
// sorted dirty-key set, the previous tree), so the parallel planner and the
// stitch replay reach identical verdicts.
func (t *Tree) reusable(key keys.Key, count int) (int32, bool) {
	if t.prev == nil {
		return 0, false
	}
	lo, hi := key.BodyRange()
	d := t.dirtyKeys
	i := sort.Search(len(d), func(i int) bool { return d[i] >= uint64(lo) })
	if i < len(d) && d[i] <= uint64(hi) {
		return 0, false
	}
	pi, ok := t.prev.Hash.Get(key)
	if !ok {
		return 0, false
	}
	pc := t.prev.Cell[pi]
	if pc.Remote || pc.RemotePos != nil || pc.NBodies != count {
		return 0, false
	}
	return pi, true
}

// copySubtree transplants the previous tree's subtree rooted at pIdx into
// this tree, with the particle range now starting at first.  Cells are
// appended in the previous subtree's pre-order (which is the order the
// serial build would have produced), First is shifted uniformly, and each
// cell's expansion is copied value-for-value into this build's expansion
// storage — never aliased, because the previous tree's pooled arenas are
// recycled two builds later.  Returns the new root index.
func (t *Tree) copySubtree(pIdx int32, first int) int32 {
	prev := t.prev
	delta := first - prev.Cell[pIdx].First
	base := int32(len(t.Cell))
	contiguous := true
	var rec func(pi int32) int32
	rec = func(pi int32) int32 {
		pc := prev.Cell[pi]
		idx := int32(len(t.Cell))
		if pi-pIdx != idx-base {
			contiguous = false
		}
		cp := t.allocCell()
		*cp = *pc
		cp.First += delta
		e := t.newExpansion(pc.Exp.Center)
		e.CopyFrom(pc.Exp)
		cp.Exp = e
		t.Cell = append(t.Cell, cp)
		t.Hash.Put(cp.Key, idx)
		for oct := 0; oct < 8; oct++ {
			if ci := pc.ChildIdx[oct]; ci != NoChild {
				cp.ChildIdx[oct] = rec(ci)
			}
		}
		return idx
	}
	root := rec(pIdx)
	t.recordReuse(pIdx, base, int32(len(t.Cell))-base, contiguous)
	return root
}

// copySubtree (arena form) mirrors the tree-level copy for one parallel
// build task: the subtree is copied into the arena with arena-local child
// indices, and the copy is logged in the arena's reuse info (segments with
// arena-local Root; the stitch phase rebases and publishes them).  Returns
// the arena-local root index.
func (a *arena) copySubtree(pIdx int32, first int) int32 {
	t := a.t
	prev := t.prev
	delta := first - prev.Cell[pIdx].First
	base := int32(len(a.cells))
	contiguous := true
	var rec func(pi int32) int32
	rec = func(pi int32) int32 {
		pc := prev.Cell[pi]
		idx := int32(len(a.cells))
		if pi-pIdx != idx-base {
			contiguous = false
		}
		c := *pc
		c.First += delta
		e := t.newExpansion(pc.Exp.Center)
		e.CopyFrom(pc.Exp)
		c.Exp = e
		a.cells = append(a.cells, &c)
		for oct := 0; oct < 8; oct++ {
			if ci := pc.ChildIdx[oct]; ci != NoChild {
				c.ChildIdx[oct] = rec(ci)
			}
		}
		return idx
	}
	root := rec(pIdx)
	n := int32(len(a.cells)) - base
	a.reuse.subtrees++
	a.reuse.cells += int(n)
	if contiguous {
		a.reuse.segments = append(a.reuse.segments,
			ReusedSubtree{PrevRoot: pIdx, Root: base, NumCells: n})
	}
	return root
}

// recordReuse updates the reuse statistics and, for pre-order contiguous
// copies, the Reuse segment list.
func (t *Tree) recordReuse(prevRoot, root, numCells int32, contiguous bool) {
	t.Stats.ReusedSubtrees++
	t.Stats.ReusedCells += int(numCells)
	if contiguous {
		t.Reuse = append(t.Reuse, ReusedSubtree{PrevRoot: prevRoot, Root: root, NumCells: numCells})
	}
}

// ReuseSource returns the tree whose cells this build's Reuse segments refer
// to (nil when the dirty-set path did not run).  It is cleared when the
// source itself becomes a copy source, so holding the newest tree never
// retains more than one predecessor.
func (t *Tree) ReuseSource() *Tree { return t.reuseFrom }
