package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twohot/internal/keys"
	"twohot/internal/vec"
)

func randomParticles(n int, seed int64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1 + rng.Float64()
	}
	return pos, mass
}

func TestHashTableBasics(t *testing.T) {
	h := NewHashTable(4)
	n := 5000
	for i := 0; i < n; i++ {
		h.Put(keys.RootKey.Child(i%8).Child((i/8)%8).Child((i/64)%8)<<uint(3*(i%3)), int32(i))
	}
	if h.Len() == 0 {
		t.Fatal("empty table after puts")
	}
	// Put/Get round trip with distinct keys.
	h2 := NewHashTable(2)
	kset := map[keys.Key]int32{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k := keys.Key(rng.Uint64() | 1<<63)
		kset[k] = int32(i)
		h2.Put(k, int32(i))
	}
	for k, v := range kset {
		got, ok := h2.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", uint64(k), got, ok, v)
		}
	}
	if _, ok := h2.Get(keys.Key(3)); ok {
		t.Error("found a key that was never stored")
	}
	count := 0
	h2.Range(func(k keys.Key, v int32) bool { count++; return true })
	if count != h2.Len() {
		t.Errorf("Range visited %d, Len %d", count, h2.Len())
	}
}

func TestTreeStructureInvariants(t *testing.T) {
	pos, mass := randomParticles(3000, 2)
	box := vec.BoundingBox(pos).Cubed(1e-3)
	tr, err := Build(pos, mass, box, Options{Order: 2, LeafSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	// Mass conservation.
	total := 0.0
	for _, m := range mass {
		total += m
	}
	if math.Abs(root.Exp.Mass-total)/total > 1e-12 {
		t.Errorf("root mass %g, want %g", root.Exp.Mass, total)
	}
	// Every particle is inside exactly one leaf, and leaves respect LeafSize
	// (or are at max depth).
	covered := 0
	for _, li := range tr.Leaves() {
		c := tr.Cell[li]
		covered += c.NBodies
		if c.NBodies > 10 && c.Level < keys.MaxDepth {
			t.Errorf("leaf with %d bodies exceeds LeafSize", c.NBodies)
		}
		// Particles of the leaf actually lie inside the leaf's box.
		cb := c.Box()
		p, _ := tr.LeafParticles(c)
		for _, x := range p {
			if !cb.ContainsClosed(x) {
				t.Fatalf("particle %v outside its leaf box %v", x, cb)
			}
		}
	}
	if covered != len(pos) {
		t.Errorf("leaves cover %d particles, want %d", covered, len(pos))
	}
	// Every cell's children masses sum to the cell's mass.
	for _, c := range tr.Cell {
		if c.Leaf {
			continue
		}
		sum := 0.0
		for oct := 0; oct < 8; oct++ {
			if ci := c.ChildIdx[oct]; ci != NoChild {
				sum += tr.Cell[ci].Exp.Mass
			}
		}
		if math.Abs(sum-c.Exp.Mass) > 1e-9*total {
			t.Errorf("cell %x: children mass %g vs cell %g", uint64(c.Key), sum, c.Exp.Mass)
		}
	}
	// The hash table finds every cell by key.
	for _, c := range tr.Cell {
		got, ok := tr.CellByKey(c.Key)
		if !ok || got.Key != c.Key {
			t.Fatalf("hash lookup failed for %x", uint64(c.Key))
		}
	}
}

func TestTreeQuickMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		n := 50 + int(seed%400+400)%400
		pos, mass := randomParticles(n, seed)
		box := vec.BoundingBox(pos).Cubed(1e-3)
		tr, err := Build(pos, mass, box, Options{Order: 2, LeafSize: 8})
		if err != nil {
			return false
		}
		total := 0.0
		for _, m := range mass {
			total += m
		}
		return math.Abs(tr.Root().Exp.Mass-total) < 1e-9*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBackgroundSubtractedRootIsNearlyNeutral(t *testing.T) {
	pos, mass := randomParticles(2000, 3)
	box := vec.CubeBox(vec.V3{}, 1)
	rho := 0.0
	for _, m := range mass {
		rho += m
	}
	tr, err := Build(pos, mass, box, Options{Order: 4, LeafSize: 16, RhoBar: rho})
	if err != nil {
		t.Fatal(err)
	}
	// With RhoBar = totalMass/V (V=1 here), the root's delta monopole is 0.
	if math.Abs(tr.Root().Exp.Mass) > 1e-9*rho {
		t.Errorf("delta monopole of the root = %g, want ~0", tr.Root().Exp.Mass)
	}
	if tr.BackgroundMomentsForLevel(3) == nil {
		t.Error("background moments for level 3 missing")
	}
}

func TestCellSerializationRoundTrip(t *testing.T) {
	pos, mass := randomParticles(300, 4)
	box := vec.BoundingBox(pos).Cubed(1e-3)
	tr, err := Build(pos, mass, box, Options{Order: 4, LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var cells []*Cell
	for _, c := range tr.Cell {
		cells = append(cells, c)
		if len(cells) == 20 {
			break
		}
	}
	blob := tr.EncodeCells(cells)
	decoded, err := DecodeCells(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(cells) {
		t.Fatalf("decoded %d cells, want %d", len(decoded), len(cells))
	}
	for i, d := range decoded {
		c := cells[i]
		if d.Key != c.Key || d.NBodies != c.NBodies || d.Leaf != c.Leaf || d.ChildMask != c.ChildMask {
			t.Errorf("cell %d metadata mismatch", i)
		}
		if math.Abs(d.Exp.Mass-c.Exp.Mass) > 1e-12 {
			t.Errorf("cell %d mass mismatch", i)
		}
		if !d.Remote {
			t.Error("decoded cells must be marked remote")
		}
		if c.Leaf {
			p, m := tr.LeafParticles(c)
			if len(d.RemotePos) != len(p) || len(d.RemoteMass) != len(m) {
				t.Errorf("cell %d leaf payload lost", i)
			}
		}
	}
}

func TestBranchKeysCoverRangeDisjointly(t *testing.T) {
	// Split the key space at an arbitrary body key and verify the branch
	// cells of the two halves are disjoint and cover everything.
	split := uint64(keys.RootKey.Child(3).Child(5).Child(1)) << uint(3*(keys.MaxDepth-3))
	lo := uint64(1) << 63
	hi := ^uint64(0)
	left := BranchKeys(lo, split)
	right := BranchKeys(split, hi)
	seen := map[keys.Key]bool{}
	for _, k := range append(append([]keys.Key{}, left...), right...) {
		if seen[k] {
			t.Fatalf("duplicate branch key %x", uint64(k))
		}
		seen[k] = true
	}
	// No branch on one side may be an ancestor of a branch on the other.
	for _, a := range left {
		for _, b := range right {
			if a.IsAncestorOf(b) || b.IsAncestorOf(a) {
				t.Fatalf("overlapping branches %x and %x", uint64(a), uint64(b))
			}
		}
	}
}

func TestDistributedMatchesLocalTreeMoments(t *testing.T) {
	// Build two "ranks" by splitting the key-sorted particles in half, then
	// verify that after exchanging branches and building the upper tree, the
	// root moments agree with a single shared tree.
	pos, mass := randomParticles(2000, 5)
	box := vec.BoundingBox(pos).Cubed(1e-3)
	shared, err := Build(append([]vec.V3(nil), pos...), append([]float64(nil), mass...), box, Options{Order: 2, LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Split at the median key.
	sortedKeys := shared.Keys
	split := sortedKeys[len(sortedKeys)/2]

	build := func(lo, hi uint64, sel func(k uint64) bool) *Distributed {
		var p []vec.V3
		var m []float64
		for i, k := range sortedKeys {
			if sel(k) {
				p = append(p, shared.Pos[i])
				m = append(m, shared.Mass[i])
			}
		}
		d, err := NewDistributed(p, m, box, Options{Order: 2, LeafSize: 8, Rank: 0}, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d0 := build(uint64(1)<<63, split, func(k uint64) bool { return k < split })
	d1 := build(split, ^uint64(0), func(k uint64) bool { return k >= split })

	// Exchange branches both ways.
	for _, b := range d1.LocalBranches() {
		cells, _ := DecodeCells(d1.EncodeCells([]*Cell{b}))
		d0.AddRemoteCell(cells[0])
	}
	for _, b := range d0.LocalBranches() {
		cells, _ := DecodeCells(d0.EncodeCells([]*Cell{b}))
		d1.AddRemoteCell(cells[0])
	}
	d0.BuildUpper()
	d1.BuildUpper()

	for _, d := range []*Distributed{d0, d1} {
		if math.Abs(d.Root().Exp.Mass-shared.Root().Exp.Mass) > 1e-9*shared.Root().Exp.Mass {
			t.Errorf("distributed root mass %g, shared %g", d.Root().Exp.Mass, shared.Root().Exp.Mass)
		}
		// Compare a low-order moment of the root as well.
		for i := 0; i < 10; i++ {
			if math.Abs(d.Root().Exp.M[i]-shared.Root().Exp.M[i]) > 1e-6*(1+math.Abs(shared.Root().Exp.M[i])) {
				t.Errorf("root moment %d differs: %g vs %g", i, d.Root().Exp.M[i], shared.Root().Exp.M[i])
			}
		}
	}
}
