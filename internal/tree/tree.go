// Package tree implements the hashed oct-tree (HOT) data structure: cells
// named by space-filling-curve keys, stored in an open-addressing hash table,
// built from key-sorted particle arrays, carrying Cartesian multipole moments
// about their geometric centers (so that the uniform-background moments of
// 2HOT's background subtraction can be folded in), and supporting remote
// cells whose children are fetched on demand from the owning rank during a
// distributed traversal.
package tree

import (
	"fmt"
	"math"
	"sort"
	"time"

	"twohot/internal/cube"
	"twohot/internal/keys"
	"twohot/internal/multipole"
	"twohot/internal/parsort"
	"twohot/internal/vec"
)

// NoChild marks an absent child slot.
const NoChild int32 = -1

// Cell is one node ("hcell") of the hashed oct-tree.
type Cell struct {
	Key    keys.Key
	Center vec.V3  // geometric center of the cell cube
	Size   float64 // cube side length
	Level  int

	NBodies int
	First   int // index of the first particle of this cell in the tree's sorted particle arrays (local cells only)
	Leaf    bool

	ChildMask uint8 // octants that contain bodies (known even for remote cells)
	ChildIdx  [8]int32

	Owner  int  // owning rank in a distributed tree (== tree.Rank for local cells)
	Remote bool // true if this cell's children live on another rank and must be fetched

	Exp *multipole.Expansion // delta moments (particles minus uniform background when background subtraction is on)

	// Remote leaf payload: particle data shipped along with a fetched leaf.
	RemotePos  []vec.V3
	RemoteMass []float64
}

// Box returns the spatial extent of the cell.
func (c *Cell) Box() vec.Box {
	h := c.Size / 2
	return vec.Box{Lo: c.Center.Sub(vec.V3{h, h, h}), Hi: c.Center.Add(vec.V3{h, h, h})}
}

// Options configures tree construction.
type Options struct {
	Order    int // multipole expansion order p
	LeafSize int // maximum bodies per leaf cell
	// RhoBar, when positive, enables background subtraction: the moments of
	// a uniform cube of density -RhoBar are added to every cell so that far
	// interactions act on the density contrast (Section 2.2.1).
	RhoBar float64
	Rank   int // owning rank id (0 for shared-memory trees)
	// Workers is the number of goroutines used by the build pipeline
	// (key computation, record sort, subtree construction, moment pass).
	// 0 means GOMAXPROCS; 1 forces the serial reference build.  The built
	// tree is bit-identical for every worker count.
	Workers int
	// Previous, when non-nil, seeds the incremental rebuild: particles are
	// re-keyed in the previous tree's sorted record order, so on a
	// near-static snapshot the record array arrives almost sorted and the
	// near-sorted fast path of parsort.SortKVAdaptive replaces the full
	// radix sort.  The previous order is a pure performance hint — the sort
	// order is total, so the built tree is bit-identical to a from-scratch
	// build no matter how stale (or wrong) Previous is.  Previous must
	// describe the same particle count; anything else disables the reuse.
	// Build clears this field on the new tree so retained trees never chain.
	Previous *Tree
	// Dirty, when non-nil alongside a compatible Previous (same length as
	// the particle arrays, indexed in the caller's particle order), marks
	// the particles whose position or mass changed since Previous was
	// built and arms the subtree-reuse path: subtrees whose body-key
	// interval contains no dirty particle (old or new key) are copied from
	// Previous — cells and moments — instead of being rebuilt, and only
	// the dirty spine is re-derived.  Marking an unchanged particle dirty
	// is safe (it only shrinks the reuse); failing to mark a changed one
	// violates the contract and silently corrupts the tree.  The built
	// tree is bit-identical to a from-scratch build for every worker
	// count (dirty_test.go).  Build clears this field on the new tree.
	Dirty []bool
	// Scratch, when non-nil, supplies reusable allocations for the sort and
	// gather stages of the build (see BuildScratch).  Passing the same
	// scratch to successive builds transfers ownership of the retained
	// key/index arrays between them: only the two most recent trees built
	// from one scratch stay valid, older ones see their Keys/SortIndex
	// overwritten.  The stepping pipeline, which keeps exactly the previous
	// step's tree, satisfies that contract; callers that retain more trees
	// must not share a scratch.
	Scratch *BuildScratch
}

// BuildScratch pools the large transient slices of the build pipeline — the
// sort records and the gather staging buffers — plus double buffers for the
// storage the built tree retains: the sorted key/index arrays, the cell
// structs and the per-cell expansions.  A steady-state near-static step
// allocates almost nothing.  The zero value is ready to use; the first build
// through a scratch sizes the retained arenas for the ones after it.
type BuildScratch struct {
	recs  []parsort.KV
	gpos  []vec.V3
	gmass []float64
	dirty []uint64 // sorted dirty-key set of the subtree-reuse path
	// Double-buffered retained storage: build k hands out side k%2, so the
	// previous build's tree (side (k-1)%2) stays fully intact while it
	// seeds the incremental sort.
	keys  [2][]uint64
	idx   [2][]int
	cells [2][]Cell
	exps  [2]*multipole.ExpansionArena
	flip  int
	// cellEstimate is the cell count of the most recent build, used to size
	// the retained arenas of the next one.
	cellEstimate int
}

// retainedAlloc is the per-build view of the scratch's retained-storage side:
// cell slots and expansions are handed out sequentially, falling back to the
// heap when the side's capacity (sized from the previous build) runs out.
// Only the serial build path allocates through it; parallel arena tasks keep
// their private allocations.
type retainedAlloc struct {
	cells []Cell
	used  int
	exps  *multipole.ExpansionArena
}

func (a *retainedAlloc) newCell() *Cell {
	if a == nil || a.used >= len(a.cells) {
		return &Cell{}
	}
	c := &a.cells[a.used]
	a.used++
	*c = Cell{}
	return c
}

// allocCell returns storage for one cell (pooled when a scratch side is
// active, heap otherwise).
func (t *Tree) allocCell() *Cell { return t.alloc.newCell() }

// newExpansion returns a zeroed expansion of the tree's order (pooled when a
// scratch side is active).
func (t *Tree) newExpansion(center vec.V3) *multipole.Expansion {
	if t.alloc != nil && t.alloc.exps != nil {
		return t.alloc.exps.Alloc(center)
	}
	return multipole.NewExpansion(t.Opt.Order, center)
}

// attachRetained prepares the scratch's next retained side for this build,
// growing the arenas to fit the previous build's cell count (with slack).
// nEstimate <= 0 leaves the arenas empty (first build through the scratch:
// everything falls back to the heap, and the count observed sizes the side
// for the build after next).
func (t *Tree) attachRetained(sc *BuildScratch, side, nEstimate int) {
	if nEstimate > 0 {
		want := nEstimate + nEstimate/4 + 64
		if cap(sc.cells[side]) < want {
			sc.cells[side] = make([]Cell, want)
		}
		if sc.exps[side] == nil || sc.exps[side].Cap() < want || sc.exps[side].Order() != t.Opt.Order {
			sc.exps[side] = multipole.NewExpansionArena(t.Opt.Order, want)
		}
		sc.exps[side].Reset()
		t.alloc = &retainedAlloc{cells: sc.cells[side][:cap(sc.cells[side])], exps: sc.exps[side]}
		return
	}
	t.alloc = nil
}

// BuildStats reports how a build's sort phase ran (see Options.Previous).
type BuildStats struct {
	// Reused is true when a previous tree's sorted order seeded the re-key.
	Reused bool
	// FastPath is true when the near-sorted merge path sorted the records
	// (always false for from-scratch builds).
	FastPath bool
	// Displaced is the number of sort records that had left the previous
	// order (the disorder the fast path absorbed or aborted on).
	Displaced int
	// SortTime is the wall-clock of the record sort alone — the stage the
	// incremental fast path replaces — so the step benchmark can compare
	// the two strategies on exactly the work that differs between them.
	SortTime time.Duration
	// ReusedSubtrees and ReusedCells count the subtree copies the
	// dirty-set path performed (see Options.Dirty); both zero when the
	// path was disabled or nothing was clean.
	ReusedSubtrees int
	ReusedCells    int
}

func (o *Options) defaults() {
	if o.Order == 0 {
		o.Order = 4
	}
	if o.LeafSize == 0 {
		o.LeafSize = 16
	}
}

// Tree is a hashed oct-tree over a key-sorted particle array.
type Tree struct {
	Opt  Options
	Box  vec.Box // root cube
	Hash *HashTable
	Cell []*Cell

	// Particle arrays sorted by key (referenced by First/NBodies of local
	// cells).
	Pos  []vec.V3
	Mass []float64
	Keys []uint64
	// SortIndex maps sorted particle slot -> index in the caller's original
	// ordering, so solvers can scatter results back.
	SortIndex []int

	// Stats describes how the sort phase of this build ran (incremental
	// reuse, near-sorted fast path) and how much of the tree the dirty-set
	// path copied from the previous one.
	Stats BuildStats

	// Reuse lists the subtrees copied verbatim from the previous tree
	// (empty unless Options.Dirty armed the subtree-reuse path); see
	// ReusedSubtree for what consumers may do with the segments.
	Reuse []ReusedSubtree

	// alloc is the transient retained-storage allocator of the current
	// build (nil outside serial scratch-backed builds).
	alloc *retainedAlloc

	// Transient dirty-set state of the current build (see dirty.go):
	// the copy source, and the sorted old+new body keys of the dirty
	// particles.  Both are cleared before Build returns; reuseFrom
	// survives so consumers can validate the Reuse segments against the
	// tree they refer to.
	prev      *Tree
	dirtyKeys []uint64
	reuseFrom *Tree

	// Background moments per level (index = level), present when RhoBar>0.
	bgByLevel []*multipole.Expansion

	// FetchChildren, if set, is called when a traversal needs the children
	// of a remote cell; it must return the child cells (fully populated,
	// including moments and leaf payloads) which are then cached in the
	// hash table.  Used by the distributed solver via ABM.
	FetchChildren func(c *Cell) []Cell // returned cells are copied into the tree

	RootIdx int32
}

// Build constructs a tree for the given particles.  The particle arrays are
// reordered in place into canonical (key, original index) order; the tree
// retains references to them.  box must be the cubical root volume containing
// all positions.
//
// Construction is a parallel pipeline over opt.Workers goroutines: keys are
// computed in chunks, the (key, index) records are sorted with the parsort
// record sort, the domain is split into subtrees built concurrently into
// per-task arenas, and the stitched upper cells get their moments in a final
// parallel pass.  The result is bit-identical for every worker count: the
// sort order is total, the arena/stitch layout reproduces the serial
// pre-order exactly, and every moment is computed by the same code over the
// same operands in the same sequence.
func Build(pos []vec.V3, mass []float64, box vec.Box, opt Options) (*Tree, error) {
	opt.defaults()
	if len(pos) != len(mass) {
		return nil, fmt.Errorf("tree: position and mass lengths differ")
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("tree: cannot build a tree with no particles")
	}
	if len(pos) > math.MaxInt32 {
		return nil, fmt.Errorf("tree: %d particles exceed the 2^31 sort-record limit", len(pos))
	}
	t := &Tree{
		Opt:  opt,
		Box:  box,
		Hash: NewHashTable(2 * len(pos)),
		Pos:  pos,
		Mass: mass,
	}
	workers := opt.workerCount()
	sc, side := t.sortParticles(workers)

	if opt.RhoBar > 0 {
		t.buildBackgroundMoments()
	}

	// The serial path allocates its retained cell and expansion storage
	// from the scratch side the sorted arrays came from; the parallel path
	// keeps per-task allocations (concurrent arenas would need locking).
	if workers <= 1 {
		t.attachRetained(sc, side, sc.cellEstimate)
	}
	t.RootIdx = t.buildRange(keys.RootKey, 0, len(pos), workers)
	t.alloc = nil
	t.prev = nil
	t.dirtyKeys = nil
	t.Opt.Dirty = nil // the tree must not retain the caller's dirty mask
	sc.cellEstimate = len(t.Cell)
	return t, nil
}

// buildBackgroundMoments caches, per level, the multipole moments of a
// uniform cube of density -RhoBar with the cell size of that level.
func (t *Tree) buildBackgroundMoments() {
	t.bgByLevel = make([]*multipole.Expansion, keys.MaxDepth+1)
	rootSide := t.Box.MaxSide()
	for l := 0; l <= keys.MaxDepth; l++ {
		side := rootSide / float64(uint64(1)<<uint(l))
		t.bgByLevel[l] = cube.BackgroundMoments(t.Opt.Order, side, t.Opt.RhoBar)
	}
}

// BackgroundMomentsForLevel exposes the cached background moments (nil when
// background subtraction is off).
func (t *Tree) BackgroundMomentsForLevel(level int) *multipole.Expansion {
	if t.bgByLevel == nil || level < 0 || level >= len(t.bgByLevel) {
		return nil
	}
	return t.bgByLevel[level]
}

// RhoBar returns the background density (0 when subtraction is off).
func (t *Tree) RhoBar() float64 { return t.Opt.RhoBar }

// newCell initializes the common fields of a local cell covering the given
// particle range.  Every build path (serial recursion, parallel arenas, the
// stitch walk) must construct cells through this single helper so their
// layouts cannot diverge.
func (t *Tree) newCell(key keys.Key, first, count int) Cell {
	box := key.CellBox(t.Box)
	c := Cell{
		Key:     key,
		Center:  box.Center(),
		Size:    box.MaxSide(),
		Level:   key.Level(),
		NBodies: count,
		First:   first,
		Owner:   t.Opt.Rank,
	}
	for i := range c.ChildIdx {
		c.ChildIdx[i] = NoChild
	}
	return c
}

// buildCell recursively constructs the cell covering the given particle range
// and returns its index.  When the dirty-set path is armed and the range is
// untouched since the previous build, the whole subtree is copied instead.
func (t *Tree) buildCell(key keys.Key, first, count int) int32 {
	if pi, ok := t.reusable(key, count); ok {
		return t.copySubtree(pi, first)
	}
	level := key.Level()
	cp := t.allocCell()
	*cp = t.newCell(key, first, count)
	idx := int32(len(t.Cell))
	t.Cell = append(t.Cell, cp)
	t.Hash.Put(key, idx)

	if count <= t.Opt.LeafSize || level >= keys.MaxDepth {
		t.Cell[idx].Leaf = true
		t.computeLeafMoments(idx)
		return idx
	}

	// Partition the key-sorted range among the eight children.
	lo := first
	for oct := 0; oct < 8; oct++ {
		childKey := key.Child(oct)
		hi := lo + t.childUpperBound(childKey, lo, first+count)
		if hi > lo {
			ci := t.buildCell(childKey, lo, hi-lo)
			t.Cell[idx].ChildIdx[oct] = ci
			t.Cell[idx].ChildMask |= 1 << uint(oct)
		}
		lo = hi
	}
	t.computeInternalMoments(idx)
	return idx
}

// childUpperBound returns how many of the sorted keys in t.Keys[lo:hi] fall
// inside childKey's body-key range (lo being the first candidate slot).
func (t *Tree) childUpperBound(childKey keys.Key, lo, hi int) int {
	_, hiKey := childKey.BodyRange()
	return sort.Search(hi-lo, func(i int) bool { return t.Keys[lo+i] > uint64(hiKey) })
}

func (t *Tree) computeLeafMoments(idx int32) { t.leafMoments(t.Cell[idx]) }

// leafMoments computes the delta moments of a leaf cell from its particle
// range.  It only reads shared tree state, so concurrent calls on distinct
// cells are safe.
func (t *Tree) leafMoments(c *Cell) {
	e := t.newExpansion(c.Center)
	for i := c.First; i < c.First+c.NBodies; i++ {
		e.AddParticle(t.Pos[i], t.Mass[i])
	}
	t.addBackground(e, c)
	e.FinalizeNorms()
	c.Exp = e
}

func (t *Tree) computeInternalMoments(idx int32) {
	c := t.Cell[idx]
	t.internalMoments(c, func(oct int) *Cell {
		if ci := c.ChildIdx[oct]; ci != NoChild {
			return t.Cell[ci]
		}
		return nil
	})
}

// internalMoments shifts the children's moments (resolved through child, so
// callers can supply arena-local children) up to cell c.  The octant loop and
// the arithmetic are shared by the serial build, the arena builds and the
// stitched upper-cell pass, which keeps every path bit-identical.
func (t *Tree) internalMoments(c *Cell, childAt func(oct int) *Cell) {
	e := t.newExpansion(c.Center)
	for oct := 0; oct < 8; oct++ {
		child := childAt(oct)
		if child == nil {
			continue
		}
		// The children carry delta moments (background already added); to
		// avoid double counting, shift the raw particle moments instead:
		// rebuild the parent from the children's delta moments minus their
		// background, then add the parent's own background.  Equivalent and
		// cheaper: shift child moments and subtract the shifted child
		// backgrounds, but since the background of the parent equals the
		// sum of the backgrounds of all 8 octants (empty ones included),
		// the clean formulation is: parent_delta = sum(shifted child raw)
		// + parent background.  We therefore keep raw moments during the
		// upward pass and add backgrounds in a final pass -- implemented by
		// subtracting the child's background before shifting.
		raw := child.Exp
		if t.bgByLevel != nil {
			raw = cloneMinusBackground(child.Exp, t.bgByLevel[child.Level])
		}
		shift := multipole.NewExpansion(t.Opt.Order, c.Center)
		shift.AddShifted(raw)
		e.AddExpansion(shift)
	}
	t.addBackground(e, c)
	// Tighten bmax: it can never exceed the distance from the center to the
	// cell corner (all bodies lie inside the cell).
	half := c.Size / 2
	corner := math.Sqrt(3) * half
	if e.Bmax > corner {
		e.Bmax = corner
	}
	e.FinalizeNorms()
	c.Exp = e
}

func cloneMinusBackground(e, bg *multipole.Expansion) *multipole.Expansion {
	out := multipole.NewExpansion(e.P, e.Center)
	out.AddExpansion(e)
	for i := range out.M {
		out.M[i] -= bg.M[i]
	}
	// Absolute moments of the raw particles: remove the background's
	// contribution (they were added in addBackground).
	for n := range out.B {
		out.B[n] -= bg.B[n]
		if out.B[n] < 0 {
			out.B[n] = 0
		}
	}
	out.Mass -= bg.Mass
	return out
}

func (t *Tree) addBackground(e *multipole.Expansion, c *Cell) {
	if t.bgByLevel == nil {
		return
	}
	e.AddExpansion(t.bgByLevel[c.Level])
}

// Root returns the root cell.
func (t *Tree) Root() *Cell { return t.Cell[t.RootIdx] }

// CellByKey returns the cell with the given key, if present.
func (t *Tree) CellByKey(k keys.Key) (*Cell, bool) {
	idx, ok := t.Hash.Get(k)
	if !ok {
		return nil, false
	}
	return t.Cell[idx], true
}

// Child returns child oct of cell c, fetching remote children on demand.
// It returns nil if the octant is empty.  Fetching mutates the tree, so a
// tree with remote cells must only be traversed by its owning rank's
// goroutine.
func (t *Tree) Child(c *Cell, oct int) *Cell {
	if c.ChildMask&(1<<uint(oct)) == 0 {
		return nil
	}
	if c.ChildIdx[oct] != NoChild {
		return t.Cell[c.ChildIdx[oct]]
	}
	// Remote cell: fetch all children at once and cache them.
	if t.FetchChildren == nil {
		panic(fmt.Sprintf("tree: cell %x has unresolved children and no fetcher", uint64(c.Key)))
	}
	children := t.FetchChildren(c)
	for i := range children {
		child := children[i]
		octant := child.Key.Octant()
		idx := int32(len(t.Cell))
		for j := range child.ChildIdx {
			child.ChildIdx[j] = NoChild
		}
		t.Cell = append(t.Cell, &child)
		t.Hash.Put(child.Key, idx)
		c.ChildIdx[octant] = idx
	}
	if c.ChildIdx[oct] == NoChild {
		return nil
	}
	return t.Cell[c.ChildIdx[oct]]
}

// LeafParticles returns the positions and masses of the bodies in a leaf
// cell, whether local or fetched from a remote rank.
func (t *Tree) LeafParticles(c *Cell) ([]vec.V3, []float64) {
	if c.RemotePos != nil {
		return c.RemotePos, c.RemoteMass
	}
	return t.Pos[c.First : c.First+c.NBodies], t.Mass[c.First : c.First+c.NBodies]
}

// Leaves returns the indices of all local leaf cells.
func (t *Tree) Leaves() []int32 {
	var out []int32
	for i := range t.Cell {
		if t.Cell[i].Leaf && !t.Cell[i].Remote {
			out = append(out, int32(i))
		}
	}
	return out
}

// NumCells returns the number of cells currently held (including fetched
// remote cells).
func (t *Tree) NumCells() int { return len(t.Cell) }

// TotalMass returns the total particle mass under the root (excluding any
// background-subtraction contribution).
func (t *Tree) TotalMass() float64 {
	m := 0.0
	for _, mm := range t.Mass {
		m += mm
	}
	return m
}

// Depth returns the maximum cell level present.
func (t *Tree) Depth() int {
	d := 0
	for i := range t.Cell {
		if t.Cell[i].Level > d {
			d = t.Cell[i].Level
		}
	}
	return d
}
