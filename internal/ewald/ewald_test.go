package ewald

import (
	"math"
	"testing"

	"twohot/internal/multipole"
	"twohot/internal/vec"
)

func TestEwaldIndependentOfAlpha(t *testing.T) {
	// The Ewald sum must not depend on the splitting parameter.
	l := 1.0
	dx := vec.V3{0.31, -0.12, 0.22}
	a1 := Accel(dx, l, Options{Alpha: 2, RealShell: 4, KShell: 8})
	a2 := Accel(dx, l, Options{Alpha: 3, RealShell: 5, KShell: 10})
	if a1.Sub(a2).Norm()/a1.Norm() > 1e-5 {
		t.Errorf("Ewald force depends on alpha: %v vs %v", a1, a2)
	}
	p1 := Potential(dx, l, Options{Alpha: 2, RealShell: 4, KShell: 8})
	p2 := Potential(dx, l, Options{Alpha: 3, RealShell: 5, KShell: 10})
	if math.Abs(p1-p2)/math.Abs(p1) > 1e-5 {
		t.Errorf("Ewald potential depends on alpha: %g vs %g", p1, p2)
	}
}

func TestEwaldShortDistanceLimit(t *testing.T) {
	// At separations much smaller than the box, the Ewald force approaches
	// the isolated Newtonian force.
	l := 1.0
	dx := vec.V3{0.01, 0.005, -0.008}
	a := Accel(dx, l, Options{})
	newton := dx.Scale(-1 / math.Pow(dx.Norm(), 3))
	if a.Sub(newton).Norm()/newton.Norm() > 0.01 {
		t.Errorf("short-distance Ewald force %v differs from Newtonian %v", a, newton)
	}
}

func TestEwaldSymmetry(t *testing.T) {
	l := 1.0
	dx := vec.V3{0.3, 0.1, 0.45}
	a := Accel(dx, l, Options{})
	b := Accel(dx.Neg(), l, Options{})
	if a.Add(b).Norm() > 1e-10 {
		t.Errorf("Ewald force must be odd under dx -> -dx")
	}
	// A particle at exactly half the box from another feels zero net force
	// along that axis by symmetry.
	c := Accel(vec.V3{0.5, 0, 0}, l, Options{})
	if math.Abs(c[0]) > 1e-8 {
		t.Errorf("force at half-box separation should vanish by symmetry, got %v", c)
	}
}

func TestReferenceForcesMomentumConservation(t *testing.T) {
	pos := []vec.V3{{0.1, 0.2, 0.3}, {0.7, 0.4, 0.9}, {0.5, 0.55, 0.1}}
	mass := []float64{1, 2, 3}
	acc := ReferenceForces(pos, mass, 1.0, Options{})
	var net vec.V3
	for i := range acc {
		net = net.Add(acc[i].Scale(mass[i]))
	}
	if net.Norm() > 1e-6 {
		t.Errorf("net momentum change %v should vanish", net)
	}
}

func TestLatticeTensorSymmetries(t *testing.T) {
	lat := NewLattice(6, 1, 1.0, 8)
	tab := multipole.Table(6)
	// Odd-order components vanish by inversion symmetry.
	for i, mi := range tab.Idx {
		if mi.Order()%2 == 1 && math.Abs(lat.T.D[i]) > 1e-10 {
			t.Errorf("odd lattice tensor component %v = %g", mi, lat.T.D[i])
		}
	}
	// The order-2 trace equals 4 pi / V in the tinfoil convention.
	trace := lat.T.D[tab.Pos[multipole.MultiIndex{2, 0, 0}]] +
		lat.T.D[tab.Pos[multipole.MultiIndex{0, 2, 0}]] +
		lat.T.D[tab.Pos[multipole.MultiIndex{0, 0, 2}]]
	want := 4 * math.Pi
	if math.Abs(trace-want)/want > 1e-6 {
		t.Errorf("lattice tensor trace %g, want %g", trace, want)
	}
	// Cubic symmetry: the three diagonal components are equal.
	xx := lat.T.D[tab.Pos[multipole.MultiIndex{2, 0, 0}]]
	yy := lat.T.D[tab.Pos[multipole.MultiIndex{0, 2, 0}]]
	if math.Abs(xx-yy) > 1e-8*math.Abs(xx) {
		t.Errorf("cubic symmetry violated: %g vs %g", xx, yy)
	}
}

func TestReplicaOffsets(t *testing.T) {
	if got := len(ReplicaOffsets(1, 2.0)); got != 26 {
		t.Errorf("ws=1 replicas: %d, want 26", got)
	}
	if got := len(ReplicaOffsets(2, 2.0)); got != 124 {
		t.Errorf("ws=2 replicas: %d, want 124 (the paper's boundary cubes)", got)
	}
}
