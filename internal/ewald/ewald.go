// Package ewald provides two independent treatments of periodic boundary
// conditions:
//
//  1. A brute-force Ewald summation (Hernquist, Bouchet & Suto 1991) used as
//     the accuracy reference of the paper's "distance ladder" (Section 5):
//     it is far too slow for production but verifies the fast method.
//
//  2. The production approach of Section 2.4: the infinite lattice of box
//     replicas beyond the explicitly-traversed neighbor images is folded
//     into a local (Taylor) expansion about the box center whose
//     coefficients are lattice sums of the derivative tensors of 1/r
//     (Nijboer & De Wette 1957; Challacombe et al. 1997; Metchnik 2009).
//     The coefficients are geometry-only, so they are computed once and
//     cached.
package ewald

import (
	"math"
	"sync"

	"twohot/internal/multipole"
	"twohot/internal/vec"
)

// Options for the reference Ewald summation.
type Options struct {
	Alpha     float64 // splitting parameter in units of 1/L (default 2)
	RealShell int     // real-space replicas per dimension (default 4)
	KShell    int     // k-space modes per dimension (default 8)
}

func (o *Options) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 2
	}
	if o.RealShell == 0 {
		o.RealShell = 4
	}
	if o.KShell == 0 {
		o.KShell = 8
	}
}

// Accel returns the acceleration at separation dx (sink position minus source
// position) produced by a unit point mass, all of its periodic images in a
// box of side L, and the uniform neutralizing background.  The result is the
// "peculiar" acceleration appropriate for comoving coordinates.
func Accel(dx vec.V3, L float64, opt Options) vec.V3 {
	opt.defaults()
	alpha := opt.Alpha / L
	var acc vec.V3
	// Real-space sum.
	for nx := -opt.RealShell; nx <= opt.RealShell; nx++ {
		for ny := -opt.RealShell; ny <= opt.RealShell; ny++ {
			for nz := -opt.RealShell; nz <= opt.RealShell; nz++ {
				r := vec.V3{dx[0] - float64(nx)*L, dx[1] - float64(ny)*L, dx[2] - float64(nz)*L}
				rr := r.Norm()
				if rr < 1e-12 {
					continue
				}
				fac := math.Erfc(alpha*rr) + 2*alpha*rr/math.Sqrt(math.Pi)*math.Exp(-alpha*alpha*rr*rr)
				acc = acc.Add(r.Scale(-fac / (rr * rr * rr)))
			}
		}
	}
	// k-space sum.
	twoPiL := 2 * math.Pi / L
	pref := 4 * math.Pi / (L * L * L)
	for hx := -opt.KShell; hx <= opt.KShell; hx++ {
		for hy := -opt.KShell; hy <= opt.KShell; hy++ {
			for hz := -opt.KShell; hz <= opt.KShell; hz++ {
				if hx == 0 && hy == 0 && hz == 0 {
					continue
				}
				k := vec.V3{float64(hx) * twoPiL, float64(hy) * twoPiL, float64(hz) * twoPiL}
				k2 := k.Norm2()
				damp := math.Exp(-k2 / (4 * alpha * alpha))
				s := math.Sin(k.Dot(dx))
				acc = acc.Add(k.Scale(-pref * damp * s / k2))
			}
		}
	}
	return acc
}

// Potential returns the kernel sum (positive, 1/r-like) at separation dx from
// a unit source with all periodic images and the neutralizing background.
func Potential(dx vec.V3, L float64, opt Options) float64 {
	opt.defaults()
	alpha := opt.Alpha / L
	sum := 0.0
	for nx := -opt.RealShell; nx <= opt.RealShell; nx++ {
		for ny := -opt.RealShell; ny <= opt.RealShell; ny++ {
			for nz := -opt.RealShell; nz <= opt.RealShell; nz++ {
				r := vec.V3{dx[0] - float64(nx)*L, dx[1] - float64(ny)*L, dx[2] - float64(nz)*L}
				rr := r.Norm()
				if rr < 1e-12 {
					continue
				}
				sum += math.Erfc(alpha*rr) / rr
			}
		}
	}
	twoPiL := 2 * math.Pi / L
	pref := 4 * math.Pi / (L * L * L)
	for hx := -opt.KShell; hx <= opt.KShell; hx++ {
		for hy := -opt.KShell; hy <= opt.KShell; hy++ {
			for hz := -opt.KShell; hz <= opt.KShell; hz++ {
				if hx == 0 && hy == 0 && hz == 0 {
					continue
				}
				k := vec.V3{float64(hx) * twoPiL, float64(hy) * twoPiL, float64(hz) * twoPiL}
				k2 := k.Norm2()
				sum += pref * math.Exp(-k2/(4*alpha*alpha)) * math.Cos(k.Dot(dx)) / k2
			}
		}
	}
	sum -= math.Pi / (alpha * alpha * L * L * L)
	return sum
}

// ReferenceForces computes the exact periodic accelerations (G=1, unit box
// scale handled by the caller) for a small particle set by direct Ewald
// summation over all pairs.  Cost is O(N^2) with a large constant; intended
// only for verification.
func ReferenceForces(pos []vec.V3, mass []float64, L float64, opt Options) []vec.V3 {
	acc := make([]vec.V3, len(pos))
	for i := range pos {
		for j := range pos {
			if i == j {
				continue
			}
			d := pos[i].Sub(pos[j])
			acc[i] = acc[i].Add(Accel(d, L, opt).Scale(mass[j]))
		}
	}
	return acc
}

// Lattice holds the cached lattice-sum derivative tensors for the production
// periodic-boundary method.  T_alpha = sum over replica offsets n (with
// max_i |n_i| > WS) of D_alpha(n L), where D_alpha are the derivative
// tensors of 1/r.  Odd orders vanish by symmetry; the order-0 and order-2
// partial sums converge because complete cubic shells are summed.
type Lattice struct {
	Order    int // tensor order (must be >= local order + source order)
	WS       int // well-separated shell: replicas with max|n_i| <= WS are traversed explicitly
	L        float64
	MaxShell int
	T        multipole.DerivTensor
}

var latticeCache sync.Map // map[latticeKey]*Lattice

type latticeKey struct {
	order, ws, maxShell int
	l                   float64
}

// NewLattice computes (or fetches from cache) the lattice tensor of the given
// order for box size L, excluding replicas with max|n_i| <= ws, summing
// complete cubic shells out to maxShell (default 16).
func NewLattice(order, ws int, L float64, maxShell int) *Lattice {
	if maxShell == 0 {
		maxShell = 16
	}
	key := latticeKey{order, ws, maxShell, L}
	if v, ok := latticeCache.Load(key); ok {
		return v.(*Lattice)
	}
	lat := &Lattice{Order: order, WS: ws, L: L, MaxShell: maxShell}
	lat.T = multipole.ZeroDeriv(order)
	scratch := make([]float64, multipole.NumTerms(order))
	for shell := ws + 1; shell <= maxShell; shell++ {
		for nx := -shell; nx <= shell; nx++ {
			for ny := -shell; ny <= shell; ny++ {
				for nz := -shell; nz <= shell; nz++ {
					if maxAbs3(nx, ny, nz) != shell {
						continue
					}
					r := vec.V3{float64(nx) * L, float64(ny) * L, float64(nz) * L}
					multipole.DerivativesInto(r, order, scratch)
					for i := range scratch {
						lat.T.D[i] += scratch[i]
					}
				}
			}
		}
	}
	// Convert the conditionally convergent order-2 components from the
	// shell-summation ("vacuum") convention to the tinfoil convention used
	// by Ewald summation and by cosmological codes: away from the image
	// charges the Ewald kernel satisfies Laplace's equation with the
	// neutralizing background, grad^2 psi = 4 pi / V, while the bare shell
	// sum is harmonic, so the trace of the second-derivative lattice tensor
	// must be shifted by 4 pi / V (split equally over the diagonal by cubic
	// symmetry).  All higher orders are absolutely convergent and agree in
	// both conventions; odd orders vanish by symmetry.
	if order >= 2 {
		t := multipole.Table(order)
		corr := 4 * math.Pi / (3 * L * L * L)
		for _, mi := range []multipole.MultiIndex{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}} {
			lat.T.D[t.Pos[mi]] += corr
		}
	}
	latticeCache.Store(key, lat)
	return lat
}

func maxAbs3(a, b, c int) int {
	m := a
	if m < 0 {
		m = -m
	}
	if b < 0 {
		b = -b
	}
	if c < 0 {
		c = -c
	}
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

// BuildLocal converts the multipole expansion of the full box (about the box
// center) into a local Taylor expansion of the far-lattice field about the
// same center, of the given order.
func (lat *Lattice) BuildLocal(box *multipole.Expansion, order int) *multipole.Local {
	loc := multipole.NewLocal(order, box.Center)
	loc.AddM2L(box, lat.T)
	return loc
}

// ReplicaOffsets returns the explicit image offsets with max|n_i| <= ws,
// excluding the origin, i.e. the 26 (ws=1) or 124 (ws=2) boundary cubes the
// paper traverses explicitly.
func ReplicaOffsets(ws int, L float64) []vec.V3 {
	var out []vec.V3
	for nx := -ws; nx <= ws; nx++ {
		for ny := -ws; ny <= ws; ny++ {
			for nz := -ws; nz <= ws; nz++ {
				if nx == 0 && ny == 0 && nz == 0 {
					continue
				}
				out = append(out, vec.V3{float64(nx) * L, float64(ny) * L, float64(nz) * L})
			}
		}
	}
	return out
}
