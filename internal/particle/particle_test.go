package particle

import (
	"math/rand"
	"testing"

	"twohot/internal/keys"
	"twohot/internal/parsort"
	"twohot/internal/vec"
)

func randomSet(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New(n)
	for i := 0; i < n; i++ {
		s.Append(
			vec.V3{rng.Float64(), rng.Float64(), rng.Float64()},
			vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			1+rng.Float64(), int64(i))
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := randomSet(57, 1)
	idx := []int{3, 17, 44}
	blob := s.EncodeRange(idx)
	dst := New(0)
	if err := dst.DecodeAppend(blob); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("decoded %d particles", dst.Len())
	}
	for k, i := range idx {
		if dst.Pos[k] != s.Pos[i] || dst.Mom[k] != s.Mom[i] || dst.ID[k] != s.ID[i] || dst.Mass[k] != s.Mass[i] {
			t.Fatalf("particle %d corrupted in transit", i)
		}
	}
	if err := dst.DecodeAppend([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for truncated record")
	}
}

func TestSortByKeyOrdersAlongCurve(t *testing.T) {
	s := randomSet(500, 2)
	box := vec.CubeBox(vec.V3{}, 1)
	ks := s.SortByKey(box, keys.Morton)
	if !parsort.IsSorted(ks) {
		t.Fatal("keys not sorted")
	}
	// Sorted keys must correspond to the (reordered) positions.
	for i := range ks {
		if uint64(keys.FromPosition(s.Pos[i], box, keys.Morton)) != ks[i] {
			t.Fatalf("key %d does not match its particle", i)
		}
	}
	// IDs are a permutation of 0..n-1.
	seen := map[int64]bool{}
	for _, id := range s.ID {
		if seen[id] {
			t.Fatal("duplicate ID after sort")
		}
		seen[id] = true
	}
}

func TestSelectRemovesAndReturns(t *testing.T) {
	s := randomSet(20, 3)
	total := s.TotalMass()
	sel := s.Select([]int{0, 5, 19})
	if sel.Len() != 3 || s.Len() != 17 {
		t.Fatalf("select sizes: %d, %d", sel.Len(), s.Len())
	}
	if diff := total - s.TotalMass() - sel.TotalMass(); diff > 1e-12 || diff < -1e-12 {
		t.Error("mass not conserved by Select")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := randomSet(5, 4)
	c := s.Clone()
	c.Pos[0][0] = 999
	if s.Pos[0][0] == 999 {
		t.Error("Clone shares storage with the original")
	}
}
