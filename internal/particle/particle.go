// Package particle defines the particle storage shared by the force solvers,
// the domain decomposition and the I/O layer.  Storage is a structure of
// arrays, the layout the paper's m-by-n interaction blocking and SIMD
// swizzling assume.
package particle

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"twohot/internal/keys"
	"twohot/internal/vec"
)

// Set is a structure-of-arrays particle container.
type Set struct {
	Pos  []vec.V3  // comoving positions [Mpc/h]
	Mom  []vec.V3  // canonical momenta a^2 dx/dt [Mpc/h km/s] (or plain velocities in non-cosmological runs)
	Mass []float64 // particle masses [1e10 Msun/h]
	ID   []int64   // unique particle identifiers
	Acc  []vec.V3  // last computed accelerations
	Pot  []float64 // last computed kernel sums (potential = -G * Pot)
	Work []float64 // per-particle work estimate from the previous step (interaction counts), used for load balancing

	// Block-timestep integrator state.  These travel with the particle
	// through every exchange (EncodeRange/DecodeAppend) so a distributed
	// block-stepping engine keeps per-particle rungs and momentum epochs
	// coherent across rank boundaries.  All zero for global stepping.
	Rung     []int8    // current timestep rung (0 = coarsest)
	MomEpoch []float64 // scale factor the momentum is synchronized to (0 = unset)
	Flags    []uint8   // activity bits, see FlagActive/FlagMoved
}

// Activity flag bits carried in Set.Flags.
const (
	FlagActive uint8 = 1 << iota // particle is a sink of the current substep's solve
	FlagMoved                    // particle drifted since the previous solve
)

// New allocates an empty set with capacity n.
func New(n int) *Set {
	return &Set{
		Pos:  make([]vec.V3, 0, n),
		Mom:  make([]vec.V3, 0, n),
		Mass: make([]float64, 0, n),
		ID:   make([]int64, 0, n),
		Acc:  make([]vec.V3, 0, n),
		Pot:  make([]float64, 0, n),
		Work: make([]float64, 0, n),

		Rung:     make([]int8, 0, n),
		MomEpoch: make([]float64, 0, n),
		Flags:    make([]uint8, 0, n),
	}
}

// Len returns the number of particles.
func (s *Set) Len() int { return len(s.Pos) }

// Append adds one particle.
func (s *Set) Append(pos, mom vec.V3, mass float64, id int64) {
	s.Pos = append(s.Pos, pos)
	s.Mom = append(s.Mom, mom)
	s.Mass = append(s.Mass, mass)
	s.ID = append(s.ID, id)
	s.Acc = append(s.Acc, vec.V3{})
	s.Pot = append(s.Pot, 0)
	s.Work = append(s.Work, 1)
	s.Rung = append(s.Rung, 0)
	s.MomEpoch = append(s.MomEpoch, 0)
	s.Flags = append(s.Flags, 0)
}

// AppendFrom copies particle i of src into s.
func (s *Set) AppendFrom(src *Set, i int) {
	s.Pos = append(s.Pos, src.Pos[i])
	s.Mom = append(s.Mom, src.Mom[i])
	s.Mass = append(s.Mass, src.Mass[i])
	s.ID = append(s.ID, src.ID[i])
	s.Acc = append(s.Acc, src.Acc[i])
	s.Pot = append(s.Pot, src.Pot[i])
	s.Work = append(s.Work, src.Work[i])
	s.Rung = append(s.Rung, src.Rung[i])
	s.MomEpoch = append(s.MomEpoch, src.MomEpoch[i])
	s.Flags = append(s.Flags, src.Flags[i])
}

// Swap exchanges particles i and j.
func (s *Set) Swap(i, j int) {
	s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
	s.Mom[i], s.Mom[j] = s.Mom[j], s.Mom[i]
	s.Mass[i], s.Mass[j] = s.Mass[j], s.Mass[i]
	s.ID[i], s.ID[j] = s.ID[j], s.ID[i]
	s.Acc[i], s.Acc[j] = s.Acc[j], s.Acc[i]
	s.Pot[i], s.Pot[j] = s.Pot[j], s.Pot[i]
	s.Work[i], s.Work[j] = s.Work[j], s.Work[i]
	s.Rung[i], s.Rung[j] = s.Rung[j], s.Rung[i]
	s.MomEpoch[i], s.MomEpoch[j] = s.MomEpoch[j], s.MomEpoch[i]
	s.Flags[i], s.Flags[j] = s.Flags[j], s.Flags[i]
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.Len())
	for i := 0; i < s.Len(); i++ {
		c.AppendFrom(s, i)
	}
	return c
}

// TotalMass returns the summed particle mass.
func (s *Set) TotalMass() float64 {
	t := 0.0
	for _, m := range s.Mass {
		t += m
	}
	return t
}

// Keys computes the space-filling-curve key of every particle for the given
// root box and curve.
func (s *Set) Keys(box vec.Box, curve keys.Curve) []uint64 {
	out := make([]uint64, s.Len())
	for i, p := range s.Pos {
		out[i] = uint64(keys.FromPosition(p, box, curve))
	}
	return out
}

// SortByKey reorders the particles in place into ascending key order (the
// spatial-locality ordering used to update particles, Section 3.3).  It
// returns the sorted keys.
func (s *Set) SortByKey(box vec.Box, curve keys.Curve) []uint64 {
	ks := s.Keys(box, curve)
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ks[idx[a]] < ks[idx[b]] })
	s.Permute(idx)
	sorted := make([]uint64, len(ks))
	for i, j := range idx {
		sorted[i] = ks[j]
	}
	return sorted
}

// Permute reorders the set so that new position i holds old particle idx[i].
func (s *Set) Permute(idx []int) {
	n := s.Len()
	if len(idx) != n {
		panic("particle: Permute index length mismatch")
	}
	newSet := New(n)
	for _, j := range idx {
		newSet.AppendFrom(s, j)
	}
	*s = *newSet
}

// particleRecordSize is the encoded byte size of one particle.
const particleRecordSize = 3*8 + 3*8 + 8 + 8 + 8 + 8 + 1 + 1 // pos, mom, mass, id, work, mom epoch, rung, flags

// EncodeRange serializes particles [lo, hi) into a byte slice for exchange.
func (s *Set) EncodeRange(indices []int) []byte {
	buf := bytes.NewBuffer(make([]byte, 0, len(indices)*particleRecordSize))
	for _, i := range indices {
		binary.Write(buf, binary.LittleEndian, s.Pos[i])
		binary.Write(buf, binary.LittleEndian, s.Mom[i])
		binary.Write(buf, binary.LittleEndian, s.Mass[i])
		binary.Write(buf, binary.LittleEndian, s.ID[i])
		binary.Write(buf, binary.LittleEndian, s.Work[i])
		binary.Write(buf, binary.LittleEndian, s.MomEpoch[i])
		binary.Write(buf, binary.LittleEndian, s.Rung[i])
		binary.Write(buf, binary.LittleEndian, s.Flags[i])
	}
	return buf.Bytes()
}

// DecodeAppend appends particles serialized by EncodeRange.
func (s *Set) DecodeAppend(data []byte) error {
	if len(data)%particleRecordSize != 0 {
		return fmt.Errorf("particle: encoded data length %d is not a multiple of record size", len(data))
	}
	r := bytes.NewReader(data)
	n := len(data) / particleRecordSize
	for i := 0; i < n; i++ {
		var pos, mom vec.V3
		var mass, work, epoch float64
		var id int64
		var rung int8
		var flags uint8
		binary.Read(r, binary.LittleEndian, &pos)
		binary.Read(r, binary.LittleEndian, &mom)
		binary.Read(r, binary.LittleEndian, &mass)
		binary.Read(r, binary.LittleEndian, &id)
		binary.Read(r, binary.LittleEndian, &work)
		binary.Read(r, binary.LittleEndian, &epoch)
		binary.Read(r, binary.LittleEndian, &rung)
		binary.Read(r, binary.LittleEndian, &flags)
		s.Append(pos, mom, mass, id)
		j := s.Len() - 1
		s.Work[j] = work
		s.MomEpoch[j] = epoch
		s.Rung[j] = rung
		s.Flags[j] = flags
	}
	return nil
}

// Select removes the particles at the given (sorted, unique) indices and
// returns them as a new set.
func (s *Set) Select(indices []int) *Set {
	sel := New(len(indices))
	mark := make(map[int]bool, len(indices))
	for _, i := range indices {
		sel.AppendFrom(s, i)
		mark[i] = true
	}
	keep := New(s.Len() - len(indices))
	for i := 0; i < s.Len(); i++ {
		if !mark[i] {
			keep.AppendFrom(s, i)
		}
	}
	*s = *keep
	return sel
}
