package particle

import (
	"math/rand"

	"twohot/internal/vec"
)

// Clustered returns the standard clustered benchmark snapshot: n unit-mass
// particles in the unit box, one quarter uniform and the rest drawn from six
// Gaussian blobs (sigma 0.05), periodically wrapped.  The root bench_test.go
// harnesses and cmd/2hot-bench share this generator so BENCH_treebuild.json
// and the go-test benchmarks measure the same workload.
func Clustered(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	set := New(n)
	nBlob := 6
	centers := make([]vec.V3, nBlob)
	for i := range centers {
		centers[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for i := 0; i < n; i++ {
		var p vec.V3
		if i%4 == 0 {
			p = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		} else {
			c := centers[rng.Intn(nBlob)]
			p = vec.V3{
				vec.PeriodicWrap(c[0]+0.05*rng.NormFloat64(), 1),
				vec.PeriodicWrap(c[1]+0.05*rng.NormFloat64(), 1),
				vec.PeriodicWrap(c[2]+0.05*rng.NormFloat64(), 1),
			}
		}
		set.Append(p, vec.V3{}, 1, int64(i))
	}
	return set
}
