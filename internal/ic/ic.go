// Package ic generates cosmological initial conditions: a Gaussian random
// realization of the linear power spectrum displaced onto a particle grid
// with first-order (Zel'dovich) or second-order (2LPT) Lagrangian
// perturbation theory.  It reproduces the controls exercised by Figure 7 of
// the paper: the 2LPT correction can be disabled, the discreteness correction
// (DEC, a CIC-deconvolution-like compensation of the improper growth of modes
// near the Nyquist frequency) can be toggled, and modes outside the Nyquist
// sphere can be zeroed ("SphereMode").
package ic

import (
	"fmt"
	"math"
	"math/rand"

	"twohot/internal/cosmo"
	"twohot/internal/fft"
	"twohot/internal/grid"
	"twohot/internal/transfer"
	"twohot/internal/vec"
)

// Options configures the generator.
type Options struct {
	NGrid    int     // particles per dimension (total N = NGrid^3)
	BoxSize  float64 // comoving box side in Mpc/h
	ZInit    float64 // starting redshift
	Seed     int64   // random seed for the Gaussian field
	Use2LPT  bool    // apply the second-order correction
	UseDEC   bool    // discreteness (CIC-deconvolution-like) correction
	Sphere   bool    // zero modes beyond the Nyquist sphere ("SphereMode 1")
	MeshOver int     // displacement mesh oversampling factor (1 = same as particle grid)
}

// Particles is the output of the generator, in internal code units
// (positions in Mpc/h inside [0, BoxSize); Mom is the canonical momentum
// p = a^2 dx/dt used by the symplectic integrator; Vel() converts to the
// peculiar velocity a*dx/dt in km/s).
type Particles struct {
	Pos  []vec.V3
	Mom  []vec.V3
	Mass float64 // single particle mass (1e10 Msun/h)
	A    float64 // scale factor the data corresponds to
	Box  float64
}

// N returns the particle count.
func (p *Particles) N() int { return len(p.Pos) }

// PeculiarVelocity returns the peculiar velocity a*dx/dt of particle i in
// km/s.
func (p *Particles) PeculiarVelocity(i int) vec.V3 {
	return p.Mom[i].Scale(1 / p.A)
}

// Generate builds a particle realization of the spectrum at the requested
// starting redshift.
func Generate(par cosmo.Params, spec *transfer.Spectrum, opt Options) (*Particles, error) {
	if opt.NGrid < 2 {
		return nil, fmt.Errorf("ic: NGrid must be at least 2, got %d", opt.NGrid)
	}
	if opt.BoxSize <= 0 {
		return nil, fmt.Errorf("ic: BoxSize must be positive")
	}
	if opt.MeshOver <= 0 {
		opt.MeshOver = 1
	}
	n := opt.NGrid
	l := opt.BoxSize
	aInit := 1 / (1 + opt.ZInit)

	// Linear density contrast at z=0 scaled to the starting epoch by the
	// growth factor (the standard back-scaling procedure).
	d1 := par.GrowthFactor(aInit)
	f1 := par.GrowthRate(aInit)
	// Second-order growth factor and rate (standard approximations).  The
	// textbook convention is D2 = -3/7 D1^2 Omega^(-1/143) applied to a
	// field psi2 with div(psi2) = +source; displacementFromDelta below
	// returns a field with div = -source, so the two sign flips cancel and
	// d2 here is positive.
	omA := par.OmegaMatterAt(aInit)
	d2 := 3.0 / 7.0 * d1 * d1 * math.Pow(omA, -1.0/143.0)
	f2 := 2 * math.Pow(omA, 6.0/11.0)

	deltaK := gaussianFieldK(spec, n, l, opt)

	// First-order displacement potential: psi1_k = i k / k^2 * delta_k.
	psi1 := displacementFromDelta(deltaK, n, l)

	var psi2 [3]*grid.Mesh
	if opt.Use2LPT {
		src := secondOrderSource(deltaK, n, l)
		src2k := src.ToComplex()
		src2k.Forward()
		psi2 = displacementFromDelta(src2k, n, l)
	}

	// Build particles on the Lagrangian grid.
	np := n * n * n
	p := &Particles{
		Pos:  make([]vec.V3, np),
		Mom:  make([]vec.V3, np),
		Mass: par.ParticleMass(l, np),
		A:    aInit,
		Box:  l,
	}
	h := l / float64(n)
	hubble := par.Hubble(aInit)
	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				q := vec.V3{(float64(i) + 0.5) * h, (float64(j) + 0.5) * h, (float64(k) + 0.5) * h}
				gi := (i*n+j)*n + k
				disp := vec.V3{psi1[0].Data[gi], psi1[1].Data[gi], psi1[2].Data[gi]}.Scale(d1)
				// Peculiar velocity u = a dx/dt.
				velComoving := vec.V3{psi1[0].Data[gi], psi1[1].Data[gi], psi1[2].Data[gi]}.Scale(d1 * f1 * hubble * aInit)
				if opt.Use2LPT {
					disp2 := vec.V3{psi2[0].Data[gi], psi2[1].Data[gi], psi2[2].Data[gi]}.Scale(d2)
					disp = disp.Add(disp2)
					velComoving = velComoving.Add(
						vec.V3{psi2[0].Data[gi], psi2[1].Data[gi], psi2[2].Data[gi]}.Scale(d2 * f2 * hubble * aInit))
				}
				pos := vec.WrapV(q.Add(disp), l)
				p.Pos[idx] = pos
				// Canonical momentum p = a^2 dx/dt = a * (a dx/dt).
				p.Mom[idx] = velComoving.Scale(aInit)
				idx++
			}
		}
	}
	return p, nil
}

// gaussianFieldK returns delta_k at z=0 on an n^3 grid for box size l, in the
// discrete convention <|delta_k|^2> = P(k) N^6 / V (so that the grid.Mesh
// power estimator recovers P directly).
func gaussianFieldK(spec *transfer.Spectrum, n int, l float64, opt Options) *fft.Grid3 {
	rng := rand.New(rand.NewSource(opt.Seed))
	// White Gaussian noise in real space guarantees Hermitian symmetry of
	// the transform and unit variance per mode after FFT normalization.
	g := fft.NewCube(n)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	g.Forward()

	kf := 2 * math.Pi / l
	kny := kf * float64(n) / 2
	vol := l * l * l
	n3 := float64(n * n * n)
	for i := 0; i < n; i++ {
		ki := float64(fft.FreqIndex(i, n)) * kf
		for j := 0; j < n; j++ {
			kj := float64(fft.FreqIndex(j, n)) * kf
			for k := 0; k < n; k++ {
				kk := float64(fft.FreqIndex(k, n)) * kf
				idx := g.Index(i, j, k)
				if i == 0 && j == 0 && k == 0 {
					g.Data[idx] = 0
					continue
				}
				kmag := math.Sqrt(ki*ki + kj*kj + kk*kk)
				if opt.Sphere && kmag > kny {
					g.Data[idx] = 0
					continue
				}
				amp := math.Sqrt(spec.P(kmag) * n3 / vol)
				if opt.UseDEC {
					// Compensate the discrete representation of the
					// continuous modes near the Nyquist frequency by the
					// same form as a cloud-in-cell deconvolution.
					w := grid.CICWindow(ki, kj, kk, l, n)
					if w > 1e-3 {
						amp /= w
					}
				}
				g.Data[idx] *= complex(amp, 0)
			}
		}
	}
	return g
}

// displacementFromDelta computes the (first-order form of the) displacement
// field psi_k = i k / k^2 * delta_k and returns its three real-space
// components.
func displacementFromDelta(deltaK *fft.Grid3, n int, l float64) [3]*grid.Mesh {
	kf := 2 * math.Pi / l
	var out [3]*grid.Mesh
	for c := 0; c < 3; c++ {
		comp := fft.NewCube(n)
		for i := 0; i < n; i++ {
			ki := float64(fft.FreqIndex(i, n)) * kf
			for j := 0; j < n; j++ {
				kj := float64(fft.FreqIndex(j, n)) * kf
				for k := 0; k < n; k++ {
					kk := float64(fft.FreqIndex(k, n)) * kf
					idx := comp.Index(i, j, k)
					k2 := ki*ki + kj*kj + kk*kk
					if k2 == 0 {
						comp.Data[idx] = 0
						continue
					}
					var kc float64
					switch c {
					case 0:
						kc = ki
					case 1:
						kc = kj
					default:
						kc = kk
					}
					// psi = -grad phi with phi_k = -delta_k/k^2, so
					// psi_k = i k delta_k / k^2.
					comp.Data[idx] = complex(0, kc/k2) * deltaK.Data[idx]
				}
			}
		}
		comp.Inverse()
		m := grid.NewMesh(n, l)
		for i := range m.Data {
			m.Data[i] = real(comp.Data[i])
		}
		out[c] = m
	}
	return out
}

// secondOrderSource builds the 2LPT source field
//
//	delta2(x) = sum_{i<j} [phi_,ii phi_,jj - (phi_,ij)^2]
//
// in real space, where phi is the first-order displacement potential
// (phi_k = -delta_k / k^2).
func secondOrderSource(deltaK *fft.Grid3, n int, l float64) *grid.Mesh {
	kf := 2 * math.Pi / l
	// Compute the six independent second derivatives phi_,ij.
	derivs := make([]*grid.Mesh, 6)
	pairs := [6][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {0, 2}, {1, 2}}
	for d, pr := range pairs {
		comp := fft.NewCube(n)
		for i := 0; i < n; i++ {
			kvec0 := float64(fft.FreqIndex(i, n)) * kf
			for j := 0; j < n; j++ {
				kvec1 := float64(fft.FreqIndex(j, n)) * kf
				for k := 0; k < n; k++ {
					kvec2 := float64(fft.FreqIndex(k, n)) * kf
					idx := comp.Index(i, j, k)
					kv := [3]float64{kvec0, kvec1, kvec2}
					k2 := kv[0]*kv[0] + kv[1]*kv[1] + kv[2]*kv[2]
					if k2 == 0 {
						comp.Data[idx] = 0
						continue
					}
					// phi_,ij in Fourier space: (-k_i k_j)(-delta/k^2) = k_i k_j delta / k^2.
					comp.Data[idx] = complex(kv[pr[0]]*kv[pr[1]]/k2, 0) * deltaK.Data[idx]
				}
			}
		}
		comp.Inverse()
		m := grid.NewMesh(n, l)
		for i := range m.Data {
			m.Data[i] = real(comp.Data[i])
		}
		derivs[d] = m
	}
	src := grid.NewMesh(n, l)
	xx, yy, zz, xy, xz, yz := derivs[0], derivs[1], derivs[2], derivs[3], derivs[4], derivs[5]
	for i := range src.Data {
		src.Data[i] = xx.Data[i]*yy.Data[i] - xy.Data[i]*xy.Data[i] +
			xx.Data[i]*zz.Data[i] - xz.Data[i]*xz.Data[i] +
			yy.Data[i]*zz.Data[i] - yz.Data[i]*yz.Data[i]
	}
	return src
}

// LinearDelta returns the real-space linear density contrast at z=0 for the
// same random realization, useful for tests and for the Zel'dovich plane-wave
// validation.
func LinearDelta(spec *transfer.Spectrum, n int, l float64, opt Options) *grid.Mesh {
	g := gaussianFieldK(spec, n, l, opt)
	g.Inverse()
	m := grid.NewMesh(n, l)
	for i := range m.Data {
		m.Data[i] = real(g.Data[i])
	}
	return m
}
