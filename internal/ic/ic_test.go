package ic

import (
	"math"
	"testing"

	"twohot/internal/cosmo"
	"twohot/internal/grid"
	"twohot/internal/transfer"
	"twohot/internal/vec"
)

func TestGenerateBasicProperties(t *testing.T) {
	par := cosmo.Planck2013()
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	opt := Options{NGrid: 16, BoxSize: 200, ZInit: 49, Seed: 1, Use2LPT: true}
	p, err := Generate(par, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 16*16*16 {
		t.Fatalf("N = %d", p.N())
	}
	// All particles inside the box, displacements small at z=49.
	h := 200.0 / 16
	for i, x := range p.Pos {
		for d := 0; d < 3; d++ {
			if x[d] < 0 || x[d] >= 200 {
				t.Fatalf("particle %d outside box: %v", i, x)
			}
		}
	}
	// Mean momentum ~ 0 (no bulk flow).
	var mean vec.V3
	for _, m := range p.Mom {
		mean = mean.Add(m)
	}
	mean = mean.Scale(1 / float64(p.N()))
	if mean.Norm() > 20 {
		t.Errorf("bulk flow %v km/s too large", mean)
	}
	// Displacement rms should be well below a cell at z=49.
	rms := 0.0
	idx := 0
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			for k := 0; k < 16; k++ {
				q := vec.V3{(float64(i) + 0.5) * h, (float64(j) + 0.5) * h, (float64(k) + 0.5) * h}
				d := vec.MinImageV(p.Pos[idx].Sub(q), 200)
				rms += d.Norm2()
				idx++
			}
		}
	}
	rms = math.Sqrt(rms / float64(p.N()))
	if rms > h || rms == 0 {
		t.Errorf("rms displacement %g vs cell size %g", rms, h)
	}
}

func TestRealizationMatchesInputSpectrum(t *testing.T) {
	par := cosmo.Planck2013()
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	n := 32
	l := 500.0
	opt := Options{NGrid: n, BoxSize: l, ZInit: 0, Seed: 3}
	delta := LinearDelta(spec, n, l, opt)
	ps := delta.MeasurePower(grid.PowerSpectrumOptions{NBins: 8})
	// Compare the measured band powers with the input spectrum (cosmic
	// variance per bin is ~1/sqrt(modes)).
	for _, b := range ps[:4] {
		want := spec.P(b.K)
		if b.Modes < 10 {
			continue
		}
		tol := 4 / math.Sqrt(float64(b.Modes))
		if math.Abs(b.P-want)/want > tol+0.3 {
			t.Errorf("k=%.3f: measured P=%.4g, input %.4g (modes %d)", b.K, b.P, want, b.Modes)
		}
	}
}

func Test2LPTChangesDisplacements(t *testing.T) {
	par := cosmo.Planck2013()
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	base := Options{NGrid: 16, BoxSize: 100, ZInit: 9, Seed: 5}
	zel, err := Generate(par, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	with := base
	with.Use2LPT = true
	lpt, err := Generate(par, spec, with)
	if err != nil {
		t.Fatal(err)
	}
	// The second-order term must change positions, but only slightly
	// compared to the first-order displacement at this redshift.
	maxShift := 0.0
	for i := range zel.Pos {
		d := vec.MinImageV(lpt.Pos[i].Sub(zel.Pos[i]), 100).Norm()
		if d > maxShift {
			maxShift = d
		}
	}
	if maxShift == 0 {
		t.Error("2LPT correction had no effect")
	}
	if maxShift > 100.0/16 {
		t.Errorf("2LPT correction %g larger than a grid cell", maxShift)
	}
}
