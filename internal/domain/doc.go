// Package domain implements the work-balanced partitioning of the paper's
// Section 3.1, at both of the granularities the codebase schedules on.
//
// # Contract
//
// Distributed: Decompose sorts particle keys along the space-filling curve
// (a sample sort with an American-flag radix sort on-node), chooses splitter
// keys so that each rank's domain receives approximately equal work —
// particle counts, or the per-particle interaction counts recorded by the
// previous force solve (Options.UseWork) — and exchanges particles with a
// selectable Alltoallv (direct, pairwise or hierarchical).  A previous
// Decomposition seeds the splitter sampling, the cheap refinement path for
// near-static steps.
//
// Shared-memory: SplitWeighted is the same idea for an already-ordered
// sequence — it cuts per-item work weights into contiguous shards of
// near-equal cumulative weight by an exact quantile walk, deterministically.
// The tree traversal uses it to shard its sink-subtree tasks across worker
// goroutines; MaskWeights adapts the inputs to partially-active substeps by
// zeroing the weights of items that will not run, so block-timestep solves
// balance only the work that actually executes.  ShardImbalance and
// Imbalance report the max/mean balance quality the benchmarks track.
//
// # Bit-identity invariants
//
// Every function in this package steers scheduling — which rank or worker
// computes what — and must never influence a result bit.  Splitter choice,
// shard boundaries and weight masks are deterministic functions of their
// inputs; the traversal's workshard suite pins that the static shard
// schedule produces bits identical to the dynamic one, and the distributed
// equivalence suite pins the decomposed solve against the serial solver.
//
// # Concurrency model
//
// Decompose, ExchangeParticles and Imbalance are collectives: every rank of
// the communicator must call them together.  SplitWeighted, MaskWeights and
// ShardImbalance are pure functions, safe from any goroutine as long as the
// caller owns the slices.
package domain
