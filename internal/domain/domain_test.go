package domain

import (
	"math/rand"
	"testing"

	"twohot/internal/comm"
	"twohot/internal/keys"
	"twohot/internal/particle"
	"twohot/internal/vec"
)

func clustered(n int, seed int64) *particle.Set {
	rng := rand.New(rand.NewSource(seed))
	set := particle.New(n)
	for i := 0; i < n; i++ {
		var p vec.V3
		if i%2 == 0 {
			p = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		} else {
			p = vec.V3{
				vec.PeriodicWrap(0.3+0.05*rng.NormFloat64(), 1),
				vec.PeriodicWrap(0.7+0.05*rng.NormFloat64(), 1),
				vec.PeriodicWrap(0.2+0.05*rng.NormFloat64(), 1),
			}
		}
		set.Append(p, vec.V3{}, 1, int64(i))
	}
	return set
}

func TestDecomposePreservesParticlesAndBalances(t *testing.T) {
	const nRanks = 3
	const n = 9000
	all := clustered(n, 1)
	box := vec.CubeBox(vec.V3{}, 1)

	world := comm.NewWorld(nRanks)
	perRank := make([]*particle.Set, nRanks)
	chunk := (n + nRanks - 1) / nRanks
	for r := 0; r < nRanks; r++ {
		perRank[r] = particle.New(chunk)
		for i := r * chunk; i < (r+1)*chunk && i < n; i++ {
			perRank[r].AppendFrom(all, i)
		}
	}
	decomps := make([]*Decomposition, nRanks)
	err := world.Run(func(r *comm.Rank) error {
		d, err := Decompose(r, perRank[r.ID], box, Options{Curve: keys.Hilbert}, nil)
		if err != nil {
			return err
		}
		decomps[r.ID] = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every particle still exists exactly once (check by ID) and lives on
	// the rank that owns its key.
	seen := map[int64]bool{}
	total := 0
	for r := 0; r < nRanks; r++ {
		total += perRank[r].Len()
		d := decomps[r]
		for i := 0; i < perRank[r].Len(); i++ {
			id := perRank[r].ID[i]
			if seen[id] {
				t.Fatalf("particle %d duplicated", id)
			}
			seen[id] = true
			if owner := d.OwnerOfPosition(perRank[r].Pos[i]); owner != r {
				t.Fatalf("particle %d on rank %d but owned by %d", id, r, owner)
			}
		}
	}
	if total != n {
		t.Fatalf("particles lost: %d of %d", total, n)
	}
	// Balance within a factor of 2 of the mean for this clustered input.
	for r := 0; r < nRanks; r++ {
		frac := float64(perRank[r].Len()) * nRanks / float64(n)
		if frac < 0.4 || frac > 2.0 {
			t.Errorf("rank %d holds %.2fx the mean load", r, frac)
		}
	}
	// Splitters must agree across ranks.
	for r := 1; r < nRanks; r++ {
		for i := range decomps[0].Splitters {
			if decomps[r].Splitters[i] != decomps[0].Splitters[i] {
				t.Fatal("ranks disagree on the splitters")
			}
		}
	}
}

func TestImbalanceMetric(t *testing.T) {
	world := comm.NewWorld(2)
	err := world.Run(func(r *comm.Rank) error {
		count := 100
		if r.ID == 1 {
			count = 300
		}
		imb, err := Imbalance(r, count)
		if err != nil {
			return err
		}
		if imb < 1.49 || imb > 1.51 {
			t.Errorf("imbalance %.2f, want 1.5", imb)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitWeightedBalancesSkewedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Heavily skewed weights: a flat floor plus a few hot spots, the shape of
	// per-particle interaction counts in a clustered snapshot.
	n := 5000
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	for h := 0; h < 5; h++ {
		c := rng.Intn(n)
		for i := c; i < c+200 && i < n; i++ {
			weights[i] += 50
		}
	}
	for _, parts := range []int{2, 4, 7, 16} {
		bounds := SplitWeighted(weights, parts)
		if len(bounds) != parts-1 {
			t.Fatalf("parts=%d: got %d bounds", parts, len(bounds))
		}
		lo := 0
		for _, b := range bounds {
			if b < lo || b > n {
				t.Fatalf("parts=%d: bound %d out of order", parts, b)
			}
			lo = b
		}
		got := ShardImbalance(weights, bounds)
		uniformBounds := make([]int, parts-1)
		for k := 1; k < parts; k++ {
			uniformBounds[k-1] = k * n / parts
		}
		uniform := ShardImbalance(weights, uniformBounds)
		t.Logf("parts=%d: weighted imbalance %.4f, equal-count %.4f", parts, got, uniform)
		if got > uniform {
			t.Errorf("parts=%d: weighted split (%.4f) worse than equal-count (%.4f)", parts, got, uniform)
		}
		// The greedy quantile walk can overshoot by at most the largest
		// single weight per shard.
		maxW := 0.0
		total := 0.0
		for _, w := range weights {
			if w > maxW {
				maxW = w
			}
			total += w
		}
		if got > 1+float64(parts)*maxW/(total/float64(parts)) {
			t.Errorf("parts=%d: imbalance %.4f beyond the greedy bound", parts, got)
		}
	}
}

func TestSplitWeightedDegenerateInputs(t *testing.T) {
	if b := SplitWeighted(nil, 4); len(b) != 3 {
		t.Errorf("nil weights: got %v", b)
	}
	if b := SplitWeighted([]float64{0, 0, 0, 0}, 2); len(b) != 1 || b[0] != 2 {
		t.Errorf("all-zero weights should fall back to equal counts: got %v", b)
	}
	if b := SplitWeighted([]float64{5}, 3); len(b) != 2 {
		t.Errorf("single item: got %v", b)
	}
	if b := SplitWeighted([]float64{1, 2, 3}, 1); b != nil {
		t.Errorf("parts=1: got %v", b)
	}
	// One giant weight: every boundary lands right after it or at the ends.
	b := SplitWeighted([]float64{1, 1, 1000, 1, 1}, 2)
	if b[0] != 3 {
		t.Errorf("giant weight: boundary at %d, want 3", b[0])
	}
	if ShardImbalance([]float64{1, 1, 1, 1}, []int{2}) != 1 {
		t.Errorf("even split should report imbalance 1")
	}
}

func TestMaskWeights(t *testing.T) {
	w := []float64{3, 1, 4, 1, 5, 9}
	active := []bool{true, false, true, false, false, true}
	got := MaskWeights(nil, w, active)
	want := []float64{3, 0, 4, 0, 0, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %g, want %g", i, got[i], want[i])
		}
	}
	// A pooled destination is reused in place when large enough.
	dst := make([]float64, 8)
	got2 := MaskWeights(dst, w, active)
	if &got2[0] != &dst[0] || len(got2) != len(w) {
		t.Error("sufficiently large destination was not reused")
	}
	// Shard boundaries over masked weights land where the active work is:
	// with all the active weight in the back half, the two-shard boundary
	// must not sit at the midpoint.
	masked := MaskWeights(nil, []float64{5, 5, 0, 0, 6, 4}, []bool{false, false, false, false, true, true})
	b := SplitWeighted(masked, 2)
	if b[0] != 5 {
		t.Errorf("masked split boundary at %d, want 5", b[0])
	}
}
