package domain

import (
	"twohot/internal/comm"
	"twohot/internal/keys"
	"twohot/internal/parsort"
	"twohot/internal/particle"
	"twohot/internal/vec"
)

// Decomposition describes the key-space split among ranks.
type Decomposition struct {
	Box       vec.Box
	Curve     keys.Curve
	Splitters []uint64 // len NRanks-1, ascending
}

// Owner returns the rank owning the given key.
func (d *Decomposition) Owner(k uint64) int {
	return parsort.OwnerOf(k, d.Splitters)
}

// OwnerOfPosition returns the rank owning a position.
func (d *Decomposition) OwnerOfPosition(p vec.V3) int {
	return d.Owner(uint64(keys.FromPosition(p, d.Box, d.Curve)))
}

// Options configures the decomposition.
type Options struct {
	Curve          keys.Curve
	SamplesPerRank int
	Alltoall       comm.AlltoallAlgorithm
	// UseWork weights the splits by the per-particle work recorded during
	// the previous force calculation (the paper's load-balancing strategy)
	// instead of plain particle counts.
	UseWork bool
}

// Decompose chooses splitters for the particles currently held by each rank
// and exchanges particles so that every rank ends up owning a contiguous key
// range.  prev, if non-nil, seeds the splitter sampling with the previous
// decomposition (cheap refinement when particles have moved little).
// The particles of each rank are left sorted by key.
func Decompose(r *comm.Rank, set *particle.Set, box vec.Box, opt Options, prev *Decomposition) (*Decomposition, error) {
	if opt.SamplesPerRank == 0 {
		opt.SamplesPerRank = 64
	}
	ks := set.Keys(box, opt.Curve)
	var weights []float64
	if opt.UseWork {
		weights = set.Work
	}
	var prevSplit []uint64
	if prev != nil {
		prevSplit = prev.Splitters
	}
	splitters, err := parsort.ChooseSplitters(r, ks, weights, opt.SamplesPerRank, prevSplit)
	if err != nil {
		return nil, err
	}
	d := &Decomposition{Box: box, Curve: opt.Curve, Splitters: splitters}
	if err := ExchangeParticles(r, set, d, opt.Alltoall); err != nil {
		return nil, err
	}
	set.SortByKey(box, opt.Curve)
	return d, nil
}

// ExchangeParticles moves every particle to the rank that owns its key under
// the decomposition.  After the initial decomposition the exchange pattern is
// very sparse (particles only drift into neighboring domains), which the
// Alltoallv implementations exploit by sending empty blocks cheaply.
func ExchangeParticles(r *comm.Rank, set *particle.Set, d *Decomposition, algo comm.AlltoallAlgorithm) error {
	n := r.N()
	outgoing := make([][]int, n)
	ks := set.Keys(d.Box, d.Curve)
	for i, k := range ks {
		owner := d.Owner(k)
		if owner != r.ID {
			outgoing[owner] = append(outgoing[owner], i)
		}
	}
	send := make([][]byte, n)
	var toRemove []int
	for dst := 0; dst < n; dst++ {
		if len(outgoing[dst]) == 0 {
			send[dst] = nil
			continue
		}
		send[dst] = set.EncodeRange(outgoing[dst])
		toRemove = append(toRemove, outgoing[dst]...)
	}
	recv, err := r.AlltoallvBytes(send, algo)
	if err != nil {
		return err
	}
	if len(toRemove) > 0 {
		set.Select(toRemove) // drop the particles we shipped away
	}
	for src := 0; src < n; src++ {
		if src == r.ID || len(recv[src]) == 0 {
			continue
		}
		if err := set.DecodeAppend(recv[src]); err != nil {
			return err
		}
	}
	return nil
}

// SplitWeighted chooses parts-1 split points over a sequence of per-item
// work weights so that the cumulative weight of each contiguous shard is as
// equal as a greedy quantile walk can make it.  It is the shared-memory twin
// of ChooseSplitters: where the distributed decomposition splits the
// space-filling curve among ranks by sampled key quantiles, this splits an
// already-ordered sequence (traversal tasks, particle ranges) among worker
// goroutines by exact weight quantiles.  The returned boundaries b satisfy
// 0 <= b[0] <= ... <= b[parts-2] <= len(weights); shard k is
// [b[k-1], b[k]) with b[-1] = 0 and b[parts-1] = len(weights).
// Non-positive weights are treated as zero.  The choice is deterministic.
func SplitWeighted(weights []float64, parts int) []int {
	if parts < 2 {
		return nil
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	bounds := make([]int, parts-1)
	if total <= 0 {
		// Degenerate weights: fall back to equal item counts.
		for k := 1; k < parts; k++ {
			bounds[k-1] = k * len(weights) / parts
		}
		return bounds
	}
	cum := 0.0
	k := 1
	target := total * float64(k) / float64(parts)
	for i, w := range weights {
		if w > 0 {
			cum += w
		}
		for k < parts && cum >= target {
			// Place the boundary after item i: the shard ending here is the
			// first whose weight reaches its quantile.
			bounds[k-1] = i + 1
			k++
			target = total * float64(k) / float64(parts)
		}
	}
	for ; k < parts; k++ {
		bounds[k-1] = len(weights)
	}
	return bounds
}

// MaskWeights writes into dst the weights of the active items, zero for the
// rest, and returns the destination (grown when dst is too small, so callers
// can pool it).  It adapts SplitWeighted's inputs to partially-active solves:
// a block-timestep substep only computes forces for the sink groups holding
// active particles, so the carried per-particle work of everything else must
// not attract shard boundaries — a shard full of inactive particles predicts
// zero cost, and the quantile walk then spends the workers on the work that
// actually runs.  Like the weights themselves, the mask steers only the
// schedule, never a result bit.
func MaskWeights(dst, weights []float64, active []bool) []float64 {
	if cap(dst) < len(weights) {
		dst = make([]float64, len(weights))
	}
	dst = dst[:len(weights)]
	for i, w := range weights {
		if active[i] {
			dst[i] = w
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// ShardImbalance returns the max/mean shard weight of a SplitWeighted
// partition (1.0 is perfect balance), the rebalance-quality metric reported
// by the stepping benchmark.
func ShardImbalance(weights []float64, bounds []int) float64 {
	parts := len(bounds) + 1
	if parts < 2 || len(weights) == 0 {
		return 1
	}
	maxW, total := 0.0, 0.0
	lo := 0
	for k := 0; k < parts; k++ {
		hi := len(weights)
		if k < len(bounds) {
			hi = bounds[k]
		}
		w := 0.0
		for i := lo; i < hi; i++ {
			if weights[i] > 0 {
				w += weights[i]
			}
		}
		if w > maxW {
			maxW = w
		}
		total += w
		lo = hi
	}
	if total == 0 {
		return 1
	}
	return maxW / (total / float64(parts))
}

// Imbalance returns the ratio of the largest to the mean particle count
// across ranks (1.0 is perfect balance).
func Imbalance(r *comm.Rank, localCount int) (float64, error) {
	maxC, err := r.AllreduceFloat64(float64(localCount), "max")
	if err != nil {
		return 0, err
	}
	sum, err := r.AllreduceFloat64(float64(localCount), "sum")
	if err != nil {
		return 0, err
	}
	mean := sum / float64(r.N())
	if mean == 0 {
		return 1, nil
	}
	return maxC / mean, nil
}
