package analysis

import (
	"math"
	"testing"
)

// zGrid builds the redshift sequence of an NSteps logarithmic step grid from
// zInit to zFinal — the same grid Simulation.Run walks.
func zGrid(zInit, zFinal float64, nSteps int) []float64 {
	aInit := 1 / (1 + zInit)
	aFinal := 1 / (1 + zFinal)
	dlnA := math.Log(aFinal/aInit) / float64(nSteps)
	zs := make([]float64, nSteps+1)
	for i := 0; i <= nSteps; i++ {
		zs[i] = 1/(aInit*math.Exp(float64(i)*dlnA)) - 1
	}
	return zs
}

// walk collects every trigger a schedule fires over a step grid, starting
// after completed step `from` (0 = the whole run).
func walk(s Schedule, zs []float64, from int) []Trigger {
	var fired []Trigger
	for stp := from + 1; stp < len(zs); stp++ {
		fired = append(fired, s.Due(stp, zs[stp-1], zs[stp])...)
	}
	return fired
}

func TestScheduleRedshiftCrossingsFireExactlyOnce(t *testing.T) {
	zs := zGrid(24, 0, 16)
	s := Schedule{Redshifts: []float64{10, 2, 0.5, 0}}
	fired := walk(s, zs, 0)
	if len(fired) != len(s.Redshifts) {
		t.Fatalf("fired %d triggers, want %d: %+v", len(fired), len(s.Redshifts), fired)
	}
	seen := map[float64]Trigger{}
	for _, trig := range fired {
		if trig.Kind != TriggerRedshift {
			t.Errorf("trigger kind %q, want redshift", trig.Kind)
		}
		if _, dup := seen[trig.Z]; dup {
			t.Errorf("redshift %g fired twice", trig.Z)
		}
		seen[trig.Z] = trig
	}
	// Each firing must land on the step that crossed the request: the state
	// at the firing step is at or below the requested z, the prior above.
	for _, z := range s.Redshifts {
		trig, ok := seen[z]
		if !ok {
			t.Fatalf("redshift %g never fired", z)
		}
		if zs[trig.Step] > z+zSlack || zs[trig.Step-1] <= z {
			t.Errorf("z=%g fired at step %d (z %g -> %g); not a crossing",
				z, trig.Step, zs[trig.Step-1], zs[trig.Step])
		}
	}
}

func TestScheduleFinalRedshiftFiresWithinSlack(t *testing.T) {
	// A run to z_final = 0 lands within a few ulps of 0; an output requested
	// at exactly 0 must still fire on the final step.
	zs := zGrid(24, 0, 8)
	fired := walk(Schedule{Redshifts: []float64{0}}, zs, 0)
	if len(fired) != 1 || fired[0].Step != 8 {
		t.Fatalf("z=0 fired %+v, want once at the final step", fired)
	}
}

func TestScheduleOutOfRangeRedshiftNeverFires(t *testing.T) {
	zs := zGrid(24, 1, 8)
	fired := walk(Schedule{Redshifts: []float64{30, 24, 0.5}}, zs, 0)
	if len(fired) != 0 {
		t.Fatalf("out-of-range redshifts fired: %+v", fired)
	}
}

func TestScheduleCadence(t *testing.T) {
	zs := zGrid(24, 0, 12)
	fired := walk(Schedule{EverySteps: 4}, zs, 0)
	if len(fired) != 3 {
		t.Fatalf("cadence fired %d times, want 3: %+v", len(fired), fired)
	}
	for i, trig := range fired {
		if trig.Kind != TriggerCadence || trig.Step != 4*(i+1) {
			t.Errorf("firing %d = %+v, want cadence at step %d", i, trig, 4*(i+1))
		}
	}
}

// TestScheduleResumeFiresSameSuffix is the statelessness contract: a run
// resumed from a mid-grid checkpoint fires on exactly the steps the
// uninterrupted run fires on from that point, without re-firing earlier
// triggers.
func TestScheduleResumeFiresSameSuffix(t *testing.T) {
	zs := zGrid(24, 0, 16)
	s := Schedule{Redshifts: []float64{10, 2, 0.5}, EverySteps: 5}
	full := walk(s, zs, 0)
	for from := 1; from < 16; from++ {
		resumed := walk(s, zs, from)
		// The resumed sequence must equal the suffix of the full sequence
		// with Step > from.
		var want []Trigger
		for _, trig := range full {
			if trig.Step > from {
				want = append(want, trig)
			}
		}
		if len(resumed) != len(want) {
			t.Fatalf("resume from step %d fired %d triggers, want %d", from, len(resumed), len(want))
		}
		for i := range want {
			if resumed[i] != want[i] {
				t.Fatalf("resume from step %d: firing %d = %+v, want %+v", from, i, resumed[i], want[i])
			}
		}
	}
}

func TestScheduleEmptyAndEnd(t *testing.T) {
	var s Schedule
	if !s.Empty() {
		t.Error("zero schedule not Empty")
	}
	if got := s.End(7); got != nil {
		t.Errorf("End on AtEnd=false = %+v, want nil", got)
	}
	s.AtEnd = true
	if s.Empty() {
		t.Error("AtEnd schedule reported Empty")
	}
	end := s.End(7)
	if len(end) != 1 || end[0].Kind != TriggerEnd || end[0].Step != 7 {
		t.Errorf("End = %+v, want one end trigger at step 7", end)
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{Redshifts: []float64{math.NaN()}}).Validate(); err == nil {
		t.Error("NaN redshift accepted")
	}
	if err := (Schedule{Redshifts: []float64{-1}}).Validate(); err == nil {
		t.Error("negative redshift accepted")
	}
	if err := (Schedule{EverySteps: -2}).Validate(); err == nil {
		t.Error("negative cadence accepted")
	}
	if err := (Schedule{Redshifts: []float64{3, 0}, EverySteps: 4, AtEnd: true}).Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestTriggerLabelsStable(t *testing.T) {
	cases := []struct {
		trig Trigger
		want string
	}{
		{Trigger{Kind: TriggerRedshift, Z: 0.5, Step: 9}, "z0.5"},
		{Trigger{Kind: TriggerRedshift, Z: 0, Step: 16}, "z0"},
		{Trigger{Kind: TriggerCadence, Step: 12}, "step00012"},
		{Trigger{Kind: TriggerEnd, Step: 16}, "final"},
		{Trigger{Kind: TriggerManual, Step: 3}, "manual00003"},
	}
	for _, tc := range cases {
		if got := tc.trig.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.trig, got, tc.want)
		}
	}
}
