package analysis

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"twohot/internal/grid"
	"twohot/internal/halo"
	"twohot/internal/massfunc"
	"twohot/internal/particle"
	"twohot/internal/sdf"
	"twohot/internal/vec"
)

// Options selects and parameterizes the built-in analyzers.  BoxSize is
// required; everything else has working defaults.
type Options struct {
	BoxSize float64 // periodic box size [Mpc/h]
	Workers int     // goroutines for the parallel passes (0 = GOMAXPROCS)

	// Which sections the catalog carries.  MassFunction implies the FOF/SO
	// pass even when Halos is false (the catalog then carries the binned
	// function without the per-halo entries).
	Halos         bool
	MassFunction  bool
	PowerSpectrum bool

	// Halo configures the FOF/SO finders; zero fields mean the documented
	// halo.Options defaults, and BoxSize/Workers are inherited from above
	// when unset.
	Halo halo.Options
	// MassBins is the number of logarithmic mass bins (0 = 16).
	MassBins int
	// Mesh is the P(k) CIC deposit grid per side (0 = 64).
	Mesh int
	// MaxHalos caps the per-halo entries recorded in the catalog (0 = all).
	// The mass function is always measured over the full finder output.
	MaxHalos int
}

func (o *Options) defaults() {
	if o.Halo.BoxSize == 0 {
		o.Halo.BoxSize = o.BoxSize
	}
	if o.Halo.Workers == 0 {
		o.Halo.Workers = o.Workers
	}
	if o.MassBins == 0 {
		o.MassBins = 16
	}
	if o.Mesh == 0 {
		o.Mesh = 64
	}
}

// Validate rejects option values that are not expressible requests.
func (o Options) Validate() error {
	if o.BoxSize <= 0 {
		return fmt.Errorf("analysis: box size must be positive")
	}
	if !o.Halos && !o.MassFunction && !o.PowerSpectrum {
		return fmt.Errorf("analysis: no analyzer enabled (want halos, mass function or power spectrum)")
	}
	if o.MassBins < 0 {
		return fmt.Errorf("analysis: mass bins must not be negative")
	}
	if o.Mesh < 0 {
		return fmt.Errorf("analysis: mesh must not be negative")
	}
	if o.MaxHalos < 0 {
		return fmt.Errorf("analysis: max halos must not be negative")
	}
	return o.Halo.Validate()
}

// Theory supplies the analytic curves the measurements are compared against
// in the catalog.  Both fields are optional: without them the catalog
// carries the raw measurements with zero predictions.
type Theory struct {
	// Pred evaluates the mass-function fits at the catalog's redshift.
	Pred *massfunc.Predictor
	// LinearPk is the linear-theory power spectrum at the catalog's
	// redshift [(Mpc/h)^3 vs k in h/Mpc].
	LinearPk func(k float64) float64
}

// Meta identifies the simulation state a catalog describes.
type Meta struct {
	Name    string  // configuration name
	Step    int     // completed-step count
	A       float64 // scale factor of the positions
	Trigger Trigger
}

// HaloEntry is one catalog halo.  Member indices are deliberately absent:
// they refer to the transient in-memory particle order, which differs across
// rank layouts while the physical catalog does not.
type HaloEntry struct {
	ID        int     `json:"id"`
	N         int     `json:"n"`
	Mass      float64 `json:"m_fof"`  // FOF mass [1e10 Msun/h]
	M200b     float64 `json:"m200b"`  // SO mass at OverdensityB x mean [1e10 Msun/h]
	R200b     float64 `json:"r200b"`  // SO radius [Mpc/h]
	Center    vec.V3  `json:"center"` // density-peak proxy [Mpc/h]
	CenterOfM vec.V3  `json:"center_of_mass"`
}

// MassFuncBin is one bin of a measured mass function with its analytic
// prediction (0 without a Theory.Pred).
type MassFuncBin struct {
	MLo      float64 `json:"m_lo"` // [1e10 Msun/h]
	MHi      float64 `json:"m_hi"`
	MCenter  float64 `json:"m_center"`
	Count    int     `json:"count"`
	NDensity float64 `json:"dn_dlnm"` // [h^3/Mpc^3]
	Poisson  float64 `json:"poisson"`
	Pred     float64 `json:"pred,omitempty"` // analytic dn/dlnM of the matching fit
}

// MassFunctionResult pairs the two measured mass functions with the fits
// they are calibrated against: FOF masses against the Warren et al. (2006)
// FOF fit, spherical-overdensity masses against the Tinker et al. (2008)
// Delta=200 (mean) fit — the Figure 8 comparison.
type MassFunctionResult struct {
	FOF []MassFuncBin `json:"fof,omitempty"`
	SO  []MassFuncBin `json:"so,omitempty"`
}

// PowerEntry is one k bin of the measured spectrum with the linear-theory
// prediction at the same k (0 without a Theory.LinearPk).
type PowerEntry struct {
	K      float64 `json:"k"` // [h/Mpc]
	P      float64 `json:"p"` // [(Mpc/h)^3]
	Modes  int     `json:"modes"`
	Linear float64 `json:"linear,omitempty"`
}

// Catalog is the JSON-serializable output of one in-situ analysis pass.  Its
// encoding is deterministic: for a given particle order and options the
// bytes are identical across runs, worker counts and checkpoint resumes —
// the property the Tier-2 determinism suite pins.
type Catalog struct {
	Name         string  `json:"name"`
	Step         int     `json:"step"`
	A            float64 `json:"a"`
	Z            float64 `json:"z"`
	Trigger      Trigger `json:"trigger"`
	NumParticles int     `json:"num_particles"`
	BoxSize      float64 `json:"box_size"`
	// NumHalos is the full finder output count (Halos may be capped by
	// Options.MaxHalos).
	NumHalos     int                 `json:"num_halos,omitempty"`
	Halos        []HaloEntry         `json:"halos,omitempty"`
	MassFunction *MassFunctionResult `json:"mass_function,omitempty"`
	Power        []PowerEntry        `json:"power,omitempty"`
}

// Run measures the enabled analyzers over the live particle set and
// assembles the catalog.  The set is read-only to the pass; positions and
// masses are consumed as they are (synchronizing the leapfrog first is the
// caller's policy, see the package contract in doc.go).
//
// The pass works on an ID-canonical view of the set: positions and masses
// are gathered in ascending particle-ID order before any measurement.  The
// in-memory order is a property of the execution layout (the tree solver
// keeps particles key-sorted, the distributed solvers regroup them by rank),
// not of the physical state — canonicalizing makes the catalog a function of
// the state alone, so the same state measured under any layout produces the
// same bytes.
func Run(p *particle.Set, meta Meta, opt Options, th Theory) (*Catalog, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt.defaults()
	if p == nil {
		return nil, fmt.Errorf("analysis: no particles")
	}
	pos, mass := canonicalView(p)
	z := 1/meta.A - 1
	cat := &Catalog{
		Name:         meta.Name,
		Step:         meta.Step,
		A:            meta.A,
		Z:            z,
		Trigger:      meta.Trigger,
		NumParticles: p.Len(),
		BoxSize:      opt.BoxSize,
	}

	if opt.Halos || opt.MassFunction {
		halos := halo.FOF(pos, mass, opt.Halo)
		halo.SphericalOverdensity(pos, mass, halos, opt.Halo)
		cat.NumHalos = len(halos)
		if opt.Halos {
			limit := len(halos)
			if opt.MaxHalos > 0 && opt.MaxHalos < limit {
				limit = opt.MaxHalos
			}
			cat.Halos = make([]HaloEntry, limit)
			for i, h := range halos[:limit] {
				cat.Halos[i] = HaloEntry{
					ID: h.ID, N: h.N, Mass: h.Mass,
					M200b: h.M200b, R200b: h.R200b,
					Center: h.Center, CenterOfM: h.CenterOfM,
				}
			}
		}
		if opt.MassFunction {
			cat.MassFunction = measureMassFunction(halos, opt, th)
		}
	}

	if opt.PowerSpectrum {
		ps := grid.MeasureParticlePower(pos, opt.BoxSize, opt.Mesh, grid.PowerSpectrumOptions{
			NumParticles: p.Len(),
			Workers:      opt.Workers,
		})
		cat.Power = make([]PowerEntry, len(ps))
		for i, b := range ps {
			e := PowerEntry{K: b.K, P: b.P, Modes: b.Modes}
			if th.LinearPk != nil {
				e.Linear = th.LinearPk(b.K)
			}
			cat.Power[i] = e
		}
	}
	return cat, nil
}

// canonicalView gathers positions and masses in ascending particle-ID order.
// When the set is already ID-sorted (the common serial case right after IC
// generation) the original slices are returned without copying.
func canonicalView(p *particle.Set) (pos []vec.V3, mass []float64) {
	n := p.Len()
	sorted := true
	for i := 1; i < n; i++ {
		if p.ID[i] < p.ID[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return p.Pos, p.Mass
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return p.ID[perm[i]] < p.ID[perm[j]] })
	pos = make([]vec.V3, n)
	mass = make([]float64, n)
	for i, j := range perm {
		pos[i] = p.Pos[j]
		mass[i] = p.Mass[j]
	}
	return pos, mass
}

// measureMassFunction bins the FOF and SO masses of the finder output and
// attaches the matching fit predictions.  FOF masses carry the Warren et al.
// (2006) discreteness correction m -> m (1 - N^-0.6): small-N FOF groups
// systematically overlink, and the fit the measurement is compared against
// was calibrated with exactly this correction applied.  SO masses need none.
func measureMassFunction(halos []halo.Halo, opt Options, th Theory) *MassFunctionResult {
	var fof, so []float64
	for _, h := range halos {
		if h.Mass > 0 && h.N > 1 {
			fof = append(fof, h.Mass*(1-math.Pow(float64(h.N), -0.6)))
		}
		if h.M200b > 0 {
			so = append(so, h.M200b)
		}
	}
	res := &MassFunctionResult{
		FOF: binMasses(fof, opt, th, massfunc.Warren06),
		SO:  binMasses(so, opt, th, massfunc.Tinker08),
	}
	if res.FOF == nil && res.SO == nil {
		return res
	}
	return res
}

// binMasses measures one mass function over [min, max*(1+eps)) with the
// catalog's bin count and attaches fit predictions at the bin centers.
func binMasses(masses []float64, opt Options, th Theory, fit massfunc.Fit) []MassFuncBin {
	if len(masses) == 0 {
		return nil
	}
	minM, maxM := masses[0], masses[0]
	for _, m := range masses {
		if m < minM {
			minM = m
		}
		if m > maxM {
			maxM = m
		}
	}
	bins := massfunc.Measure(masses, opt.BoxSize, minM, maxM*1.0001, opt.MassBins)
	out := make([]MassFuncBin, len(bins))
	for i, b := range bins {
		e := MassFuncBin{
			MLo: b.MLo, MHi: b.MHi, MCenter: b.MCenter,
			Count: b.Count, NDensity: b.NDensity, Poisson: b.Poisson,
		}
		if th.Pred != nil {
			e.Pred = th.Pred.DnDlnM(fit, b.MCenter)
		}
		out[i] = e
	}
	return out
}

// EncodeCatalog renders the catalog as indented JSON — the exact bytes
// WriteCatalog persists, exposed so equivalence tests can compare outputs
// without touching the filesystem.
func EncodeCatalog(c *Catalog) ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteCatalog persists the catalog as JSON through the same atomic
// temp-fsync-rename path snapshots use, so a crash mid-write never leaves a
// truncated catalog under the final name.
func WriteCatalog(path string, c *Catalog) error {
	data, err := EncodeCatalog(c)
	if err != nil {
		return err
	}
	return sdf.WriteAtomic(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// ReadCatalog loads a catalog written by WriteCatalog.
func ReadCatalog(path string) (*Catalog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return &c, nil
}
