package analysis

import (
	"fmt"
	"math"
	"sort"
)

// zSlack absorbs the floating-point error of the step grid's final epoch: a
// run to z_final = 0 lands within a few ulps of z = 0, and a requested output
// at exactly z_final must still fire.  The slack is fixed (not derived from
// the grid), so crossing decisions are deterministic across runs, worker
// counts and resumes.
const zSlack = 1e-9

// Schedule describes when in-situ analysis outputs fire during a run.  All
// three trigger families compose; the zero value never fires.
type Schedule struct {
	// Redshifts fire on the first completed step whose redshift reaches the
	// requested value (crossing detection on the step grid: the step that
	// moves the state from zPrev > z to zCur <= z).  A redshift above the
	// grid's starting epoch never fires; one below z_final fires never, one
	// at z_final fires on the final step.
	Redshifts []float64
	// EverySteps fires after every k-th completed step (the cadence
	// CheckpointEvery uses), counted on the same step grid checkpoints
	// preserve, so a resumed run fires on exactly the steps the
	// uninterrupted run would have.
	EverySteps int
	// AtEnd fires once after the run's final synchronize.
	AtEnd bool
}

// Empty reports whether the schedule can never fire.
func (s Schedule) Empty() bool {
	return len(s.Redshifts) == 0 && s.EverySteps <= 0 && !s.AtEnd
}

// Validate rejects schedules that are not expressible requests.
func (s Schedule) Validate() error {
	for _, z := range s.Redshifts {
		if math.IsNaN(z) || math.IsInf(z, 0) || z < 0 {
			return fmt.Errorf("analysis: output redshift %g must be finite and >= 0", z)
		}
	}
	if s.EverySteps < 0 {
		return fmt.Errorf("analysis: every_steps %d must not be negative", s.EverySteps)
	}
	return nil
}

// TriggerKind identifies why an output fired.
type TriggerKind string

const (
	// TriggerRedshift is a Schedule.Redshifts crossing.
	TriggerRedshift TriggerKind = "redshift"
	// TriggerCadence is a Schedule.EverySteps firing.
	TriggerCadence TriggerKind = "cadence"
	// TriggerEnd is the Schedule.AtEnd firing.
	TriggerEnd TriggerKind = "end"
	// TriggerManual marks an output requested outside the schedule
	// (Simulation.Analyze).
	TriggerManual TriggerKind = "manual"
)

// Trigger describes one firing of the schedule.
type Trigger struct {
	Kind TriggerKind `json:"kind"`
	// Z is the requested redshift of a TriggerRedshift firing (the state's
	// actual redshift lands at or just past it; the catalog records both).
	Z float64 `json:"z,omitempty"`
	// Step is the completed-step count at which the trigger fired.
	Step int `json:"step"`
}

// Label is the file-name stem of the trigger — stable across runs and
// resumes, so a re-emitted output overwrites its earlier self instead of
// accumulating duplicates.
func (t Trigger) Label() string {
	switch t.Kind {
	case TriggerRedshift:
		return fmt.Sprintf("z%.4g", t.Z)
	case TriggerCadence:
		return fmt.Sprintf("step%05d", t.Step)
	case TriggerEnd:
		return "final"
	default:
		return fmt.Sprintf("manual%05d", t.Step)
	}
}

// Due returns the triggers that fire on the completed step that moved the
// state from redshift zPrev to zCur (zCur <= zPrev on an expanding grid) and
// left the completed-step count at step.  The decision depends only on its
// arguments — the schedule keeps no cursor — so a run resumed from a
// checkpoint fires on exactly the steps the uninterrupted run fires on from
// that point, and never re-fires crossings that predate the checkpoint.
// Triggers are returned in a deterministic order: redshift crossings in
// decreasing z (the order they are reached), then the cadence firing.
func (s Schedule) Due(step int, zPrev, zCur float64) []Trigger {
	var due []Trigger
	for _, z := range s.Redshifts {
		if zCur <= z+zSlack && z+zSlack < zPrev {
			due = append(due, Trigger{Kind: TriggerRedshift, Z: z, Step: step})
		}
	}
	sort.SliceStable(due, func(i, j int) bool { return due[i].Z > due[j].Z })
	if s.EverySteps > 0 && step > 0 && step%s.EverySteps == 0 {
		due = append(due, Trigger{Kind: TriggerCadence, Step: step})
	}
	return due
}

// End returns the AtEnd trigger for the run's final state, or nil when the
// schedule does not request one.
func (s Schedule) End(step int) []Trigger {
	if !s.AtEnd {
		return nil
	}
	return []Trigger{{Kind: TriggerEnd, Step: step}}
}
