package analysis

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"twohot/internal/particle"
	"twohot/internal/vec"
)

// clusteredSet builds a deterministic particle set with a few tight planted
// clumps plus a uniform background — enough structure for the FOF/SO pass to
// find halos and the P(k) estimator to see power.
func clusteredSet(seed int64, n int, box float64) *particle.Set {
	rng := rand.New(rand.NewSource(seed))
	set := particle.New(n)
	centers := []vec.V3{
		{0.1 * box, 0.2 * box, 0.3 * box},
		{0.7 * box, 0.6 * box, 0.8 * box},
		{0.01 * box, 0.95 * box, 0.5 * box}, // near a face: exercises the wrap
	}
	for i := 0; i < n; i++ {
		var p vec.V3
		if i < n/2 {
			c := centers[i%len(centers)]
			r := 0.01 * box
			p = vec.V3{
				mod(c[0]+rng.NormFloat64()*r, box),
				mod(c[1]+rng.NormFloat64()*r, box),
				mod(c[2]+rng.NormFloat64()*r, box),
			}
		} else {
			p = vec.V3{rng.Float64() * box, rng.Float64() * box, rng.Float64() * box}
		}
		set.Append(p, vec.V3{}, 1.0, int64(i))
	}
	return set
}

func mod(x, box float64) float64 {
	x = math.Mod(x, box)
	if x < 0 {
		x += box
	}
	return x
}

func testOptions(box float64) Options {
	return Options{
		BoxSize:       box,
		Halos:         true,
		MassFunction:  true,
		PowerSpectrum: true,
		Mesh:          32,
	}
}

// TestRunCanonicalizesParticleOrder is the layout-invariance contract: the
// same physical state presented in a different in-memory order (as after a
// distributed run's rank regrouping, or a gathered snapshot) must produce a
// byte-identical catalog.
func TestRunCanonicalizesParticleOrder(t *testing.T) {
	const box = 64.0
	meta := Meta{Name: "canon", Step: 3, A: 0.5, Trigger: Trigger{Kind: TriggerManual, Step: 3}}
	opt := testOptions(box)

	set := clusteredSet(42, 600, box)
	ref, err := Run(set, meta, opt, Theory{})
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := EncodeCatalog(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Deterministically shuffle the same state into a different layout.
	shuffled := clusteredSet(42, 600, box)
	rng := rand.New(rand.NewSource(7))
	n := shuffled.Len()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled.Pos[i], shuffled.Pos[j] = shuffled.Pos[j], shuffled.Pos[i]
		shuffled.Mass[i], shuffled.Mass[j] = shuffled.Mass[j], shuffled.Mass[i]
		shuffled.ID[i], shuffled.ID[j] = shuffled.ID[j], shuffled.ID[i]
	}
	got, err := Run(shuffled, meta, opt, Theory{})
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := EncodeCatalog(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatalf("catalog depends on particle layout:\nref %d halos, got %d halos", ref.NumHalos, got.NumHalos)
	}
	if ref.NumHalos == 0 {
		t.Fatal("fixture produced no halos; the invariance check is vacuous")
	}
}

// TestRunDeterministicAcrossWorkers pins the parallel passes (SO, P(k)): the
// catalog bytes must not depend on the worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const box = 64.0
	meta := Meta{Name: "workers", Step: 1, A: 0.5, Trigger: Trigger{Kind: TriggerManual, Step: 1}}
	set := clusteredSet(11, 800, box)

	var ref []byte
	for _, workers := range []int{1, 2, 5, 8} {
		opt := testOptions(box)
		opt.Workers = workers
		cat, err := Run(set, meta, opt, Theory{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeCatalog(cat)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("catalog bytes differ between 1 and %d workers", workers)
		}
	}
}

func TestCatalogFileRoundTrip(t *testing.T) {
	const box = 32.0
	set := clusteredSet(3, 300, box)
	meta := Meta{Name: "roundtrip", Step: 2, A: 0.25, Trigger: Trigger{Kind: TriggerCadence, Step: 2}}
	cat, err := Run(set, meta, testOptions(box), Theory{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cat.json")
	if err := WriteCatalog(path, cat); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := EncodeCatalog(cat)
	b, _ := EncodeCatalog(back)
	if !bytes.Equal(a, b) {
		t.Fatal("catalog did not survive the file round trip")
	}
	if back.Z != 1/meta.A-1 {
		t.Errorf("catalog z = %v, want %v", back.Z, 1/meta.A-1)
	}
}

func TestOptionsValidate(t *testing.T) {
	ok := testOptions(64)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.BoxSize = 0 },
		func(o *Options) { o.Halos, o.MassFunction, o.PowerSpectrum = false, false, false },
		func(o *Options) { o.MassBins = -1 },
		func(o *Options) { o.Mesh = -8 },
		func(o *Options) { o.MaxHalos = -1 },
		func(o *Options) { o.Halo.LinkingLength = -0.2 },
	}
	for i, mutate := range bad {
		o := testOptions(64)
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestRunMaxHalosCapsEntriesNotCount(t *testing.T) {
	const box = 64.0
	set := clusteredSet(42, 600, box)
	meta := Meta{Name: "cap", Step: 1, A: 0.5, Trigger: Trigger{Kind: TriggerManual, Step: 1}}
	opt := testOptions(box)
	full, err := Run(set, meta, opt, Theory{})
	if err != nil {
		t.Fatal(err)
	}
	if full.NumHalos < 2 {
		t.Skipf("fixture found %d halos; cap test needs at least 2", full.NumHalos)
	}
	opt.MaxHalos = 1
	capped, err := Run(set, meta, opt, Theory{})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Halos) != 1 {
		t.Errorf("capped catalog carries %d halo entries, want 1", len(capped.Halos))
	}
	if capped.NumHalos != full.NumHalos {
		t.Errorf("cap changed NumHalos: %d vs %d", capped.NumHalos, full.NumHalos)
	}
	if capped.Halos[0] != full.Halos[0] {
		t.Error("cap changed the leading (most massive) entry")
	}
}
