// Package analysis is the in-situ measurement pipeline of the simulation:
// scheduled outputs (halo catalogs, mass functions, power spectra) produced
// while the run advances, from the live particle set, instead of a separate
// pass over dumped snapshots — the operating mode Warren (2013) treats as
// integral to the production code.
//
// # Schedule contract
//
// A Schedule fires on three kinds of trigger: redshift crossings, step
// cadences and the end of the run.  Crossing detection is stateless — Due
// decides from (step, zPrev, zCur) alone — which is what makes scheduled
// outputs compose with checkpoints: a resumed run re-walks the same step
// grid (anchored at AInit, preserved by checkpoints) and therefore fires on
// exactly the steps the uninterrupted run fires on, without re-emitting
// outputs that predate the checkpoint.  Trigger labels are stable across
// resumes, so a re-emitted file overwrites its earlier self.
//
// # When hooks fire, and what state they may read
//
// The simulation runs a due analysis after the step that crossed the
// trigger completes, and after a due synchronize (below) — never mid-step
// and never mid-block: with block timesteps every particle's position sits
// on the block boundary when an analysis runs.  The pass reads the live
// particle set (positions, momenta, masses) and must treat it as read-only;
// everything it emits is a copy.  Analysis observers run synchronously from
// the stepping loop in registration order — a slow observer slows the run
// but cannot corrupt it.
//
// # Synchronization policy
//
// Positions and canonical momenta are half a leapfrog step apart during a
// run (per-particle with block timesteps).  Position-only measurements —
// FOF groups, SO masses, the CIC density and P(k) — are exact either way,
// but anything built on momenta (velocity statistics, exact energy tallies)
// is not.  The scheduler therefore synchronizes before measuring when (a)
// the run's analysis configuration asks for it (Config.Analysis.Synchronize)
// or (b) the stepper's state cannot be represented at a single momentum
// epoch (mid-grid block stepping — the same gate checkpoints use), and
// otherwise measures the trailing state as-is.  The closing kick of a
// mid-run synchronize restarts the leapfrog at the output epoch: the
// trajectory afterwards is second-order accurate but not bit-identical to a
// run without the output — while two runs with the same schedule are
// bit-identical to each other, which is the invariant the determinism suite
// pins (across worker counts, transports and checkpoint resume).
//
// # Determinism
//
// For a given particle order and options the catalog bytes are identical
// across runs, worker counts and resumes: FOF enumerates groups in lowest-
// member-index order with deterministic tie-breaks, the SO pass is
// independent per halo, and the P(k) mode sweep reduces per-k-plane partials
// in plane order.  Catalog entries never carry in-memory particle indices
// (member lists), which would differ across rank layouts while the physical
// catalog does not.
package analysis
