package multipole

import (
	"math"

	"twohot/internal/vec"
)

// FlopsPerMonopole is the conventional operation count per monopole
// interaction used by the paper (Table 3) when converting interaction counts
// into flop rates.
const FlopsPerMonopole = 28

// FlopsPerQuadrupole and FlopsPerHexadecapole are the per-interaction
// operation counts used for the flop accounting of Table 2.  They follow the
// cost model of the Cartesian expansions (number of independent tensor
// components touched by the force contraction).
const (
	FlopsPerQuadrupole   = 112
	FlopsPerHexadecapole = 450
)

// MonopoleAccel accumulates the softened monopole (particle-particle)
// acceleration and kernel sum at the sink position from a single source.
// eps2 is the square of the Plummer-equivalent softening handed to the
// kernel; callers using non-Plummer kernels apply them separately.
func MonopoleAccel(sink, src vec.V3, m, eps2 float64) Result {
	d := src.Sub(sink) // points from sink toward source
	r2 := d.Norm2() + eps2
	inv := 1 / math.Sqrt(r2)
	inv3 := m * inv * inv * inv
	return Result{
		Phi: m * inv,
		Acc: d.Scale(inv3),
	}
}

// Source32 is the packed single-precision source used by the blocked
// ("m x n") interaction kernels.  This is the structure-of-arrays layout the
// paper swizzles sources into for SIMD and GPU execution.
type Source32 struct {
	X, Y, Z, M []float32
}

// NewSource32 allocates a packed source block of capacity n.
func NewSource32(n int) *Source32 {
	return &Source32{
		X: make([]float32, 0, n),
		Y: make([]float32, 0, n),
		Z: make([]float32, 0, n),
		M: make([]float32, 0, n),
	}
}

// Append adds a source.
func (s *Source32) Append(x, y, z, m float32) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Z = append(s.Z, z)
	s.M = append(s.M, m)
}

// Reset empties the block keeping capacity.
func (s *Source32) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
	s.Z = s.Z[:0]
	s.M = s.M[:0]
}

// Len returns the number of sources in the block.
func (s *Source32) Len() int { return len(s.X) }

// Sink32 is a block of sink particles with their accumulated accelerations,
// in single precision.
type Sink32 struct {
	X, Y, Z       []float32
	Ax, Ay, Az    []float32
	Pot           []float32
	countComputed int64
}

// NewSink32 builds a sink block from positions.
func NewSink32(x, y, z []float32) *Sink32 {
	n := len(x)
	return &Sink32{
		X: x, Y: y, Z: z,
		Ax: make([]float32, n), Ay: make([]float32, n), Az: make([]float32, n),
		Pot: make([]float32, n),
	}
}

// Interactions returns the number of pairwise interactions accumulated.
func (s *Sink32) Interactions() int64 { return s.countComputed }

// BlockedMonopole32 performs the full m x n monopole interaction between a
// source block and a sink block in single precision.  This is the
// micro-kernel measured in Table 3 (28 flops per interaction) and the
// building block of the GPU/SIMD execution model described in Section 3.3.
func BlockedMonopole32(src *Source32, snk *Sink32, eps2 float32) {
	n := len(snk.X)
	m := len(src.X)
	for i := 0; i < n; i++ {
		xi, yi, zi := snk.X[i], snk.Y[i], snk.Z[i]
		var ax, ay, az, pot float32
		for j := 0; j < m; j++ {
			dx := src.X[j] - xi
			dy := src.Y[j] - yi
			dz := src.Z[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			inv := 1 / float32(math.Sqrt(float64(r2)))
			mj := src.M[j]
			pot += mj * inv
			mInv3 := mj * inv * inv * inv
			ax += dx * mInv3
			ay += dy * mInv3
			az += dz * mInv3
		}
		snk.Ax[i] += ax
		snk.Ay[i] += ay
		snk.Az[i] += az
		snk.Pot[i] += pot
		snk.countComputed += int64(m)
	}
}

// BlockedMonopole64 is the double-precision variant of the blocked kernel,
// used when accumulating reference forces.
func BlockedMonopole64(srcX, srcY, srcZ, srcM []float64, snkX, snkY, snkZ []float64,
	ax, ay, az, pot []float64, eps2 float64) {
	for i := range snkX {
		xi, yi, zi := snkX[i], snkY[i], snkZ[i]
		var axi, ayi, azi, poti float64
		for j := range srcX {
			dx := srcX[j] - xi
			dy := srcY[j] - yi
			dz := srcZ[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			inv := 1 / math.Sqrt(r2)
			mj := srcM[j]
			poti += mj * inv
			mInv3 := mj * inv * inv * inv
			axi += dx * mInv3
			ayi += dy * mInv3
			azi += dz * mInv3
		}
		ax[i] += axi
		ay[i] += ayi
		az[i] += azi
		pot[i] += poti
	}
}

// ScalarMonopole32 is the non-blocked (one sink at a time, one source at a
// time, re-reading sink coordinates from memory each interaction) variant,
// used as the baseline in the blocking ablation benchmark.
func ScalarMonopole32(src *Source32, snk *Sink32, eps2 float32) {
	m := len(src.X)
	for j := 0; j < m; j++ {
		for i := range snk.X {
			dx := src.X[j] - snk.X[i]
			dy := src.Y[j] - snk.Y[i]
			dz := src.Z[j] - snk.Z[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			inv := 1 / float32(math.Sqrt(float64(r2)))
			mj := src.M[j]
			snk.Pot[i] += mj * inv
			mInv3 := mj * inv * inv * inv
			snk.Ax[i] += dx * mInv3
			snk.Ay[i] += dy * mInv3
			snk.Az[i] += dz * mInv3
			snk.countComputed++
		}
	}
}
