package multipole

import (
	"math"

	"twohot/internal/vec"
)

// FinalizeNorms computes and caches the contraction norms of the moments at
// every order,
//
//	Norm_n = sqrt( sum_{|alpha|=n} (n!/alpha!) M_alpha^2 ),
//
// which the absolute-error multipole acceptance criterion uses to estimate
// the size of the truncated terms.  Unlike the absolute moments B_n, these
// norms reflect the cancellation achieved by background subtraction: the
// delta moments of a nearly uniform cell are tiny even though its absolute
// moments are large, which is precisely why the 2HOT MAC accepts far more
// cells at a given tolerance once the background is removed.
//
// Call after the moments are final (the tree build does this); the traversal
// then reads the cached norms concurrently.
func (e *Expansion) FinalizeNorms() {
	t := Table(e.P)
	if cap(e.Norms) >= e.P+1 {
		e.Norms = e.Norms[:e.P+1] // every entry is overwritten below
	} else {
		e.Norms = make([]float64, e.P+1)
	}
	for n := 0; n <= e.P; n++ {
		sum := 0.0
		for i := t.Offset[n]; i < t.Offset[n+1]; i++ {
			w := t.Fact[n] * t.InvAF[i]
			sum += w * e.M[i] * e.M[i]
		}
		e.Norms[n] = math.Sqrt(sum)
	}
}

// AccelErrorEstimate returns an estimate of the acceleration error committed
// by truncating this expansion at order q (q <= P) when evaluated at distance
// d from the center.  For q < P the estimate uses the norm of the first
// neglected moments; for q = P (nothing retained beyond the stored order) the
// order-P norm is scaled by bmax as a proxy for the order-(P+1) moments.
// It returns +Inf when d <= bmax or when FinalizeNorms has not been called.
func (e *Expansion) AccelErrorEstimate(q int, d float64) float64 {
	if e.Norms == nil || d <= e.Bmax {
		return math.Inf(1)
	}
	if q > e.P {
		q = e.P
	}
	denom := (d - e.Bmax) * (d - e.Bmax)
	var lead float64
	if q < e.P {
		lead = e.Norms[q+1] / math.Pow(d, float64(q+1))
	} else {
		lead = e.Norms[e.P] * e.Bmax / math.Pow(d, float64(e.P+1))
	}
	return float64(q+2) * lead / denom
}

// EvaluateTruncatedBlock evaluates the expansion at a block of sink
// positions, each truncated at its own order qs[i], writing the results into
// out (len(out) >= len(xs)).  This is the batch-friendly entry point used by
// the list-inheriting traversal: the index table and the moment slice are
// resolved once per source cell and stay hot across the whole sink block.
// Each element is bit-identical to the corresponding EvaluateTruncated call.
func (e *Expansion) EvaluateTruncatedBlock(xs []vec.V3, qs []uint8, scratch []float64, out []Result) {
	t := Table(e.P)
	for s := range xs {
		q := int(qs[s])
		if q > e.P {
			q = e.P
		}
		r := xs[s].Sub(e.Center)
		DerivativesInto(r, q+1, scratch[:NumTerms(q+1)])
		var res Result
		for n := 0; n <= q; n++ {
			for i := t.Offset[n]; i < t.Offset[n+1]; i++ {
				c := t.Coef[i] * e.M[i]
				if c == 0 {
					continue
				}
				res.Phi += c * scratch[i]
				raise := t.Raise[i]
				res.Acc[0] += c * scratch[raise[0]]
				res.Acc[1] += c * scratch[raise[1]]
				res.Acc[2] += c * scratch[raise[2]]
			}
		}
		out[s] = res
	}
}

// EvaluateTruncated is Evaluate restricted to moments of order <= q, writing
// the derivative tensors into the provided scratch slice (length at least
// NumTerms(P+1)).  This is how the traversal spends monopole or quadrupole
// work on interactions whose error estimate already meets the tolerance at
// low order, reproducing the mixed interaction counts of Table 2.
func (e *Expansion) EvaluateTruncated(x vec.V3, q int, scratch []float64) Result {
	if q > e.P {
		q = e.P
	}
	t := Table(e.P)
	r := x.Sub(e.Center)
	DerivativesInto(r, q+1, scratch[:NumTerms(q+1)])
	var res Result
	for n := 0; n <= q; n++ {
		for i := t.Offset[n]; i < t.Offset[n+1]; i++ {
			c := t.Coef[i] * e.M[i]
			if c == 0 {
				continue
			}
			res.Phi += c * scratch[i]
			raise := t.Raise[i]
			res.Acc[0] += c * scratch[raise[0]]
			res.Acc[1] += c * scratch[raise[1]]
			res.Acc[2] += c * scratch[raise[2]]
		}
	}
	return res
}
