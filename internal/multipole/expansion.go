package multipole

import (
	"math"

	"twohot/internal/vec"
)

// Expansion is a Cartesian multipole expansion of a mass distribution about a
// center: M_alpha = sum_j m_j (y_j - center)^alpha, together with the
// quantities needed by the Salmon–Warren error bounds (absolute moments B_n
// and the cell radius bmax).
//
// Note that 2HOT expands about the geometric cell center (not the center of
// mass) so that the background-subtraction moments of a uniform cube can be
// combined with the particle moments; dipole terms are therefore present.
type Expansion struct {
	P      int
	Center vec.V3
	M      []float64 // multipole moments, indexed per Table(P)
	B      []float64 // absolute moments B_n = sum_j m_j |d_j|^n, n = 0..P+1
	Bmax   float64   // maximum |d_j| over contributing bodies
	Mass   float64   // total (signed) mass = M_0
	Norms  []float64 // per-order contraction norms, filled by FinalizeNorms
}

// NewExpansion returns an empty expansion of order p about the given center.
func NewExpansion(p int, center vec.V3) *Expansion {
	return &Expansion{
		P:      p,
		Center: center,
		M:      make([]float64, NumTerms(p)),
		B:      make([]float64, p+2),
	}
}

// ExpansionArena hands out zeroed expansions of one order from flat backing
// arrays, so a caller building many expansions of the same order (a tree's
// cell moments) performs three slice allocations instead of four per
// expansion.  Capacity is fixed at construction; Alloc falls back to an
// individual NewExpansion when the arena is exhausted, so callers only ever
// see a fresh zeroed expansion.  Not safe for concurrent use.
type ExpansionArena struct {
	p     int
	exps  []Expansion
	m     []float64
	b     []float64
	norms []float64
	used  int
}

// NewExpansionArena returns an arena for up to capacity expansions of order p.
func NewExpansionArena(p, capacity int) *ExpansionArena {
	return &ExpansionArena{
		p:     p,
		exps:  make([]Expansion, capacity),
		m:     make([]float64, capacity*NumTerms(p)),
		b:     make([]float64, capacity*(p+2)),
		norms: make([]float64, capacity*(p+1)),
	}
}

// Cap returns the arena's capacity; Used how many expansions were handed
// out; Order the expansion order it was built for.
func (a *ExpansionArena) Cap() int   { return len(a.exps) }
func (a *ExpansionArena) Used() int  { return a.used }
func (a *ExpansionArena) Order() int { return a.p }

// Reset recycles the whole arena.  Expansions handed out before the reset are
// overwritten by subsequent Alloc calls; the caller must ensure they are no
// longer referenced.
func (a *ExpansionArena) Reset() { a.used = 0 }

// Alloc returns a zeroed expansion of the arena's order about center.
func (a *ExpansionArena) Alloc(center vec.V3) *Expansion {
	if a.used >= len(a.exps) {
		return NewExpansion(a.p, center)
	}
	nm, nb, nn := NumTerms(a.p), a.p+2, a.p+1
	e := &a.exps[a.used]
	e.P = a.p
	e.Center = center
	e.M = a.m[a.used*nm : (a.used+1)*nm : (a.used+1)*nm]
	e.B = a.b[a.used*nb : (a.used+1)*nb : (a.used+1)*nb]
	e.Norms = a.norms[a.used*nn : (a.used+1)*nn : (a.used+1)*nn][:0]
	a.used++
	for i := range e.M {
		e.M[i] = 0
	}
	for i := range e.B {
		e.B[i] = 0
	}
	e.Bmax = 0
	e.Mass = 0
	return e
}

// Reset clears the expansion in place, keeping the order and changing the
// center.
func (e *Expansion) Reset(center vec.V3) {
	e.Center = center
	for i := range e.M {
		e.M[i] = 0
	}
	for i := range e.B {
		e.B[i] = 0
	}
	e.Bmax = 0
	e.Mass = 0
}

// CopyFrom makes e a value copy of src (same order required): moments,
// absolute moments, Bmax, mass, center and the finalized norms.  A copied
// expansion is bit-identical to recomputing src's moments from the same
// operands, which is what the tree build's subtree-reuse path relies on when
// it transplants the moments of an unchanged cell instead of re-deriving
// them.
func (e *Expansion) CopyFrom(src *Expansion) {
	if e.P != src.P {
		panic("multipole: CopyFrom across expansion orders")
	}
	e.Center = src.Center
	copy(e.M, src.M)
	copy(e.B, src.B)
	e.Bmax = src.Bmax
	e.Mass = src.Mass
	e.Norms = append(e.Norms[:0], src.Norms...)
}

// AddParticle accumulates a point mass at position pos (P2M).
func (e *Expansion) AddParticle(pos vec.V3, m float64) {
	t := Table(e.P)
	d := pos.Sub(e.Center)
	// Monomial powers d^alpha computed incrementally per order.
	pow := powersBuffer(e.P, d)
	for i, mi := range t.Idx {
		e.M[i] += m * pow[0][mi[0]] * pow[1][mi[1]] * pow[2][mi[2]]
	}
	r := d.Norm()
	if r > e.Bmax {
		e.Bmax = r
	}
	am := math.Abs(m)
	rp := 1.0
	for n := 0; n <= e.P+1; n++ {
		e.B[n] += am * rp
		rp *= r
	}
	e.Mass += m
}

// AddParticles accumulates a set of point masses (P2M over a slice).
func (e *Expansion) AddParticles(pos []vec.V3, m []float64) {
	for i := range pos {
		e.AddParticle(pos[i], m[i])
	}
}

// powersBuffer returns per-dimension power tables pow[dim][k] = d[dim]^k for
// k = 0..p.
func powersBuffer(p int, d vec.V3) [3][]float64 {
	var pow [3][]float64
	for c := 0; c < 3; c++ {
		pw := make([]float64, p+1)
		pw[0] = 1
		for k := 1; k <= p; k++ {
			pw[k] = pw[k-1] * d[c]
		}
		pow[c] = pw
	}
	return pow
}

// AddShifted accumulates a child expansion into this one, translating the
// child moments to this expansion's center (M2M):
//
//	M'_alpha(z') = sum_{beta <= alpha} C(alpha,beta) (z - z')^{alpha-beta} M_beta(z)
func (e *Expansion) AddShifted(child *Expansion) {
	if child.P != e.P {
		panic("multipole: M2M order mismatch")
	}
	t := Table(e.P)
	s := child.Center.Sub(e.Center) // z - z'
	pow := powersBuffer(e.P, s)
	for ia, a := range t.Idx {
		sum := 0.0
		for ib, b := range t.Idx {
			if b[0] > a[0] || b[1] > a[1] || b[2] > a[2] {
				continue
			}
			c := Binomial3(a, b)
			sum += c * pow[0][a[0]-b[0]] * pow[1][a[1]-b[1]] * pow[2][a[2]-b[2]] * child.M[ib]
		}
		e.M[ia] += sum
	}
	// Absolute moments: bodies of the child are at distance at most
	// |s| + child.Bmax from the new center.  Use the binomial bound
	// B'_n <= sum_k C(n,k) |s|^{n-k} B_k, which is exact for collinear
	// worst cases and conservative otherwise.
	smag := s.Norm()
	newB := make([]float64, e.P+2)
	for n := 0; n <= e.P+1; n++ {
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += binom(n, k) * math.Pow(smag, float64(n-k)) * child.B[k]
		}
		newB[n] = sum
	}
	for n := range e.B {
		e.B[n] += newB[n]
	}
	if b := smag + child.Bmax; b > e.Bmax {
		e.Bmax = b
	}
	e.Mass += child.Mass
}

// AddExpansion adds another expansion with the same center term by term
// (used for background subtraction: particle moments + (negative) uniform
// cube moments).  Absolute moments are accumulated as well so the error
// bound covers the combined source.
func (e *Expansion) AddExpansion(o *Expansion) {
	if o.P != e.P {
		panic("multipole: order mismatch")
	}
	for i := range e.M {
		e.M[i] += o.M[i]
	}
	for n := range e.B {
		e.B[n] += o.B[n]
	}
	if o.Bmax > e.Bmax {
		e.Bmax = o.Bmax
	}
	e.Mass += o.Mass
}

// Result is the outcome of evaluating an expansion at a field point: the
// kernel sum S = sum_j m_j/|x-y_j| (so the physical potential is -G*S) and
// the acceleration a = grad S (attractive for positive masses).
type Result struct {
	Phi float64 // kernel sum S; potential = -G*S
	Acc vec.V3  // acceleration (G=1), i.e. grad S
}

// Evaluate computes the field of the expansion at position x (M2P).
// R = x - center must be outside the source distribution for the expansion to
// converge.
func (e *Expansion) Evaluate(x vec.V3) Result {
	tEval := Table(e.P + 1)
	r := x.Sub(e.Center)
	d := make([]float64, NumTerms(e.P+1))
	DerivativesInto(r, e.P+1, d)
	return e.evaluateWithDeriv(tEval, d)
}

// EvaluateWithScratch is Evaluate reusing a caller-provided scratch slice of
// length at least NumTerms(P+1).
func (e *Expansion) EvaluateWithScratch(x vec.V3, scratch []float64) Result {
	tEval := Table(e.P + 1)
	r := x.Sub(e.Center)
	DerivativesInto(r, e.P+1, scratch[:NumTerms(e.P+1)])
	return e.evaluateWithDeriv(tEval, scratch)
}

func (e *Expansion) evaluateWithDeriv(tEval *IndexTable, d []float64) Result {
	t := Table(e.P)
	_ = tEval
	var res Result
	for i := range t.Idx {
		c := t.Coef[i] * e.M[i]
		if c == 0 {
			continue
		}
		res.Phi += c * d[i]
		raise := t.Raise[i]
		res.Acc[0] += c * d[raise[0]]
		res.Acc[1] += c * d[raise[1]]
		res.Acc[2] += c * d[raise[2]]
	}
	return res
}

// ScratchSize returns the derivative-tensor scratch length needed to evaluate
// an expansion of order p.
func ScratchSize(p int) int { return NumTerms(p + 1) }

// Local is a local (Taylor) expansion of the far field about a center:
// S(center + h) = sum_gamma (1/gamma!) h^gamma L_gamma.
type Local struct {
	P      int
	Center vec.V3
	L      []float64
}

// NewLocal returns an empty local expansion of order p.
func NewLocal(p int, center vec.V3) *Local {
	return &Local{P: p, Center: center, L: make([]float64, NumTerms(p))}
}

// AddM2L accumulates the far field of a source expansion into the local
// expansion using a (possibly lattice-summed) derivative tensor evaluated at
// the separation between the local center and the source center.  The tensor
// must have order at least loc.P + src.P.
//
//	L_gamma = sum_alpha (-1)^{|alpha|}/alpha! M_alpha T_{alpha+gamma}
func (loc *Local) AddM2L(src *Expansion, T DerivTensor) {
	if T.P < loc.P+src.P {
		panic("multipole: M2L derivative tensor order too small")
	}
	tT := Table(T.P)
	tS := Table(src.P)
	tL := Table(loc.P)
	for ig, g := range tL.Idx {
		sum := 0.0
		for ia, a := range tS.Idx {
			m := src.M[ia]
			if m == 0 {
				continue
			}
			idx := MultiIndex{a[0] + g[0], a[1] + g[1], a[2] + g[2]}
			sum += tS.Coef[ia] * m * T.D[tT.Pos[idx]]
		}
		loc.L[ig] += sum
	}
}

// Evaluate computes the kernel sum and acceleration represented by the local
// expansion at position x (L2P).
func (loc *Local) Evaluate(x vec.V3) Result {
	t := Table(loc.P)
	h := x.Sub(loc.Center)
	pow := powersBuffer(loc.P, h)
	var res Result
	for i, g := range t.Idx {
		c := t.InvAF[i] * loc.L[i]
		if c == 0 {
			continue
		}
		res.Phi += c * pow[0][g[0]] * pow[1][g[1]] * pow[2][g[2]]
		// Gradient: d/dx_ax of h^gamma is gamma_ax h^{gamma - e_ax}.
		for ax := 0; ax < 3; ax++ {
			if g[ax] == 0 {
				continue
			}
			gm := g
			gm[ax]--
			res.Acc[ax] += c * float64(g[ax]) * pow[0][gm[0]] * pow[1][gm[1]] * pow[2][gm[2]]
		}
	}
	return res
}
