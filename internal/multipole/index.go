// Package multipole implements the Cartesian multipole machinery of 2HOT:
// moment tensors of arbitrary order up to p=8 stored as symmetric tensors in
// multi-index form, the derivative-tensor recurrence for the 1/r Green's
// function, the P2M / M2M / M2P / M2L / L2P operators, the Salmon–Warren
// style truncation error bounds used by the multipole acceptance criterion,
// and the specialized monopole interaction kernels (scalar and m-by-n
// blocked) used by the micro-kernel benchmark of Table 3.
//
// In the paper the order p=8 interaction routines are emitted by a computer
// algebra system; here the same symmetric-tensor algebra is driven by
// runtime-generated multi-index tables, with hand-specialized kernels for the
// low orders that dominate production runs.
package multipole

import (
	"fmt"
	"sync"
)

// MaxOrder is the highest supported expansion order (hexadecapole is p=4; the
// paper uses up to p=8).
const MaxOrder = 8

// MultiIndex is a Cartesian multi-index (alpha_x, alpha_y, alpha_z).
type MultiIndex [3]int

// Order returns |alpha|.
func (a MultiIndex) Order() int { return a[0] + a[1] + a[2] }

// IndexTable enumerates all multi-indices with |alpha| <= P and caches the
// combinatorial factors used by the expansion operators.
type IndexTable struct {
	P      int
	Idx    []MultiIndex       // all multi-indices, ordered by order then lexicographically
	Pos    map[MultiIndex]int // inverse of Idx
	Offset []int              // Offset[n] is the first slot of order n; Offset[P+1] == len(Idx)
	Fact   []float64          // Fact[n] = n!
	AFact  []float64          // AFact[i] = alpha! for Idx[i]
	Coef   []float64          // Coef[i] = (-1)^{|alpha|} / alpha!
	InvAF  []float64          // InvAF[i] = 1 / alpha!

	// Raise[i][ax] is the canonical position of Idx[i]+e_ax.  The enumeration
	// order of multi-indices is independent of the table order, so the value
	// is valid in any table of sufficient order; it lets the force
	// contraction avoid map lookups in the inner loop.
	Raise [][3]int32
	// DRec[i] lists the recurrence terms for the derivative tensor of 1/r at
	// Idx[i] (see DerivativesInto): d[i] = (1/(|alpha| r^2)) * sum of terms,
	// each term being Coef * d[Src] (Axis < 0) or Coef * r[Axis] * d[Src].
	DRec [][]DerivTerm
}

// DerivTerm is one precomputed term of the derivative-tensor recurrence.
type DerivTerm struct {
	Src  int32
	Axis int8 // -1: no position factor
	Coef float64
}

// CanonicalPos returns the position of a multi-index in the order-independent
// enumeration used by all tables.
func CanonicalPos(a MultiIndex) int {
	n := a.Order()
	pos := NumTerms(n - 1)
	// Within an order, indices are enumerated with ax descending, then ay
	// descending.
	for ax := n; ax > a[0]; ax-- {
		pos += n - ax + 1
	}
	pos += a[1] // ay runs from n-ax down to 0; offset = (n-ax) - ay
	pos = pos + (n - a[0]) - a[1] - a[1]
	return pos
}

var (
	tableMu    sync.Mutex
	tableCache = map[int]*IndexTable{}
)

// Table returns the (cached) index table for order p.
func Table(p int) *IndexTable {
	if p < 0 || p > MaxOrder+2 {
		panic(fmt.Sprintf("multipole: unsupported order %d", p))
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tableCache[p]; ok {
		return t
	}
	t := newTable(p)
	tableCache[p] = t
	return t
}

func newTable(p int) *IndexTable {
	t := &IndexTable{
		P:      p,
		Pos:    make(map[MultiIndex]int),
		Offset: make([]int, p+2),
		Fact:   make([]float64, p+2),
	}
	t.Fact[0] = 1
	for n := 1; n <= p+1; n++ {
		t.Fact[n] = t.Fact[n-1] * float64(n)
	}
	for n := 0; n <= p; n++ {
		t.Offset[n] = len(t.Idx)
		for ax := n; ax >= 0; ax-- {
			for ay := n - ax; ay >= 0; ay-- {
				az := n - ax - ay
				mi := MultiIndex{ax, ay, az}
				t.Pos[mi] = len(t.Idx)
				t.Idx = append(t.Idx, mi)
			}
		}
	}
	t.Offset[p+1] = len(t.Idx)
	t.AFact = make([]float64, len(t.Idx))
	t.Coef = make([]float64, len(t.Idx))
	t.InvAF = make([]float64, len(t.Idx))
	for i, mi := range t.Idx {
		af := factorial(mi[0]) * factorial(mi[1]) * factorial(mi[2])
		t.AFact[i] = af
		t.InvAF[i] = 1 / af
		sign := 1.0
		if mi.Order()%2 == 1 {
			sign = -1
		}
		t.Coef[i] = sign / af
	}
	t.Raise = make([][3]int32, len(t.Idx))
	t.DRec = make([][]DerivTerm, len(t.Idx))
	for i, mi := range t.Idx {
		for ax := 0; ax < 3; ax++ {
			up := mi
			up[ax]++
			t.Raise[i][ax] = int32(CanonicalPos(up))
		}
		n := mi.Order()
		if n == 0 {
			continue
		}
		var terms []DerivTerm
		for c := 0; c < 3; c++ {
			if mi[c] == 0 {
				continue
			}
			am := mi
			am[c]--
			terms = append(terms, DerivTerm{
				Src:  int32(t.Pos[am]),
				Axis: int8(c),
				Coef: -(2*float64(n) - 1) * float64(mi[c]),
			})
			if mi[c] > 1 {
				am2 := mi
				am2[c] -= 2
				terms = append(terms, DerivTerm{
					Src:  int32(t.Pos[am2]),
					Axis: -1,
					Coef: -(float64(n) - 1) * float64(mi[c]) * float64(mi[c]-1),
				})
			}
		}
		t.DRec[i] = terms
	}
	return t
}

// NumTerms returns the number of multi-indices with |alpha| <= p, i.e.
// (p+1)(p+2)(p+3)/6.
func NumTerms(p int) int { return (p + 1) * (p + 2) * (p + 3) / 6 }

// NumTermsOfOrder returns the number of multi-indices with |alpha| == n.
func NumTermsOfOrder(n int) int { return (n + 1) * (n + 2) / 2 }

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// Binomial3 returns the product of per-component binomial coefficients
// C(a_x,b_x) C(a_y,b_y) C(a_z,b_z); it is zero unless b <= a component-wise.
func Binomial3(a, b MultiIndex) float64 {
	prod := 1.0
	for i := 0; i < 3; i++ {
		if b[i] > a[i] || b[i] < 0 {
			return 0
		}
		prod *= binom(a[i], b[i])
	}
	return prod
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}
