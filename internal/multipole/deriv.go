package multipole

import (
	"math"

	"twohot/internal/vec"
)

// DerivTensor holds the partial derivatives D_alpha = d^alpha (1/r) of the
// Newtonian Green's function evaluated at a separation R, for all
// |alpha| <= P.  It is the "source side" of an M2P interaction and the
// translation operator of an M2L interaction.
type DerivTensor struct {
	P int
	D []float64 // indexed per Table(P)
}

// Derivatives evaluates D_alpha(R) for |alpha| <= p using the standard
// recurrence for derivatives of 1/r:
//
//	|n| r^2 D_n = -(2|n|-1) sum_i n_i R_i D_{n-e_i} - (|n|-1) sum_i n_i(n_i-1) D_{n-2e_i}
//
// which follows from Laplace's equation applied to r^2 * (1/r).
func Derivatives(r vec.V3, p int) DerivTensor {
	t := Table(p)
	d := make([]float64, len(t.Idx))
	DerivativesInto(r, p, d)
	return DerivTensor{P: p, D: d}
}

// DerivativesInto is like Derivatives but writes into a caller-provided slice
// of length NumTerms(p), avoiding allocation in hot loops.
func DerivativesInto(r vec.V3, p int, d []float64) {
	t := Table(p)
	r2 := r.Norm2()
	if r2 == 0 {
		panic("multipole: Derivatives at zero separation")
	}
	invR2 := 1 / r2
	d[0] = 1 / math.Sqrt(r2)
	for n := 1; n <= p; n++ {
		scale := invR2 / float64(n)
		for i := t.Offset[n]; i < t.Offset[n+1]; i++ {
			sum := 0.0
			for _, term := range t.DRec[i] {
				v := term.Coef * d[term.Src]
				if term.Axis >= 0 {
					v *= r[term.Axis]
				}
				sum += v
			}
			d[i] = sum * scale
		}
	}
}

// Add accumulates other into the tensor (used to sum lattice replicas).
func (d *DerivTensor) Add(other DerivTensor) {
	if d.P != other.P {
		panic("multipole: DerivTensor order mismatch")
	}
	for i := range d.D {
		d.D[i] += other.D[i]
	}
}

// Zero returns a zero derivative tensor of order p.
func ZeroDeriv(p int) DerivTensor {
	return DerivTensor{P: p, D: make([]float64, NumTerms(p))}
}
