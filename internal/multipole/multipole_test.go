package multipole

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twohot/internal/vec"
)

func randomSources(n int, rng *rand.Rand) ([]vec.V3, []float64) {
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 0.5 + rng.Float64()
	}
	return pos, mass
}

func directField(pos []vec.V3, mass []float64, x vec.V3) Result {
	var r Result
	for i := range pos {
		d := pos[i].Sub(x)
		rr := d.Norm()
		r.Phi += mass[i] / rr
		r.Acc = r.Acc.Add(d.Scale(mass[i] / (rr * rr * rr)))
	}
	return r
}

func TestTableSizes(t *testing.T) {
	for p := 0; p <= MaxOrder; p++ {
		tab := Table(p)
		if len(tab.Idx) != NumTerms(p) {
			t.Errorf("p=%d: %d terms, want %d", p, len(tab.Idx), NumTerms(p))
		}
		for n := 0; n <= p; n++ {
			if tab.Offset[n+1]-tab.Offset[n] != NumTermsOfOrder(n) {
				t.Errorf("p=%d order %d count wrong", p, n)
			}
		}
	}
	if NumTerms(8) != 165 {
		t.Errorf("NumTerms(8) = %d", NumTerms(8))
	}
}

func TestCanonicalPositionMatchesEnumeration(t *testing.T) {
	tab := Table(MaxOrder + 1)
	for i, mi := range tab.Idx {
		if CanonicalPos(mi) != i {
			t.Fatalf("CanonicalPos(%v) = %d, want %d", mi, CanonicalPos(mi), i)
		}
	}
}

func TestDerivativesAgainstClosedForms(t *testing.T) {
	r := vec.V3{1.3, -0.7, 2.1}
	rr := r.Norm()
	d := Derivatives(r, 3)
	tab := Table(3)
	check := func(mi MultiIndex, want float64) {
		got := d.D[tab.Pos[mi]]
		if math.Abs(got-want) > 1e-12*math.Abs(want)+1e-15 {
			t.Errorf("D_%v = %g, want %g", mi, got, want)
		}
	}
	check(MultiIndex{0, 0, 0}, 1/rr)
	check(MultiIndex{1, 0, 0}, -r[0]/math.Pow(rr, 3))
	check(MultiIndex{0, 1, 0}, -r[1]/math.Pow(rr, 3))
	check(MultiIndex{2, 0, 0}, 3*r[0]*r[0]/math.Pow(rr, 5)-1/math.Pow(rr, 3))
	check(MultiIndex{1, 1, 0}, 3*r[0]*r[1]/math.Pow(rr, 5))
	check(MultiIndex{1, 0, 1}, 3*r[0]*r[2]/math.Pow(rr, 5))
}

func TestDerivativesAreHarmonic(t *testing.T) {
	// 1/r is harmonic, so the trace over any pair of derivative indices
	// must vanish: D_{a+2ex} + D_{a+2ey} + D_{a+2ez} = 0.
	f := func(x, y, z float64) bool {
		r := vec.V3{1 + math.Abs(x), 0.5 + math.Abs(y), 0.3 + math.Abs(z)}
		d := Derivatives(r, 6)
		tab := Table(6)
		for _, base := range []MultiIndex{{0, 0, 0}, {1, 0, 0}, {0, 1, 1}, {2, 1, 0}} {
			sum := 0.0
			scale := 0.0
			for ax := 0; ax < 3; ax++ {
				up := base
				up[ax] += 2
				v := d.D[tab.Pos[up]]
				sum += v
				scale += math.Abs(v)
			}
			if scale > 0 && math.Abs(sum)/scale > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExpansionConvergesWithOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pos, mass := randomSources(64, rng)
	center := vec.V3{0.5, 0.5, 0.5}
	x := vec.V3{3.5, 3.0, 2.5}
	ref := directField(pos, mass, x)

	prevErr := math.Inf(1)
	for _, p := range []int{0, 2, 4, 6, 8} {
		e := NewExpansion(p, center)
		e.AddParticles(pos, mass)
		e.FinalizeNorms()
		res := e.Evaluate(x)
		err := res.Acc.Sub(ref.Acc).Norm() / ref.Acc.Norm()
		if err > prevErr*1.5 {
			t.Errorf("error did not decrease with order: p=%d err=%g prev=%g", p, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-6 {
		t.Errorf("p=8 expansion error too large: %g", prevErr)
	}
}

func TestErrorBoundIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		pos, mass := randomSources(32, rng)
		center := vec.V3{0.5, 0.5, 0.5}
		for _, p := range []int{0, 2, 4} {
			e := NewExpansion(p, center)
			e.AddParticles(pos, mass)
			e.FinalizeNorms()
			d := 1.5 + 3*rng.Float64()
			dir := vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			dir = dir.Scale(1 / dir.Norm())
			x := center.Add(dir.Scale(d))
			ref := directField(pos, mass, x)
			res := e.Evaluate(x)
			actual := res.Acc.Sub(ref.Acc).Norm()
			bound := e.AccelErrorBound(d)
			if actual > bound*1.0001 {
				t.Errorf("p=%d d=%.2f: actual error %g exceeds Salmon-Warren bound %g", p, d, actual, bound)
			}
		}
	}
}

func TestErrorEstimateTracksActualError(t *testing.T) {
	// The norm-based estimate used by the MAC is not a strict bound, but it
	// must be within a modest factor of the true error (so that the errtol
	// parameter maps predictably onto delivered accuracy).
	rng := rand.New(rand.NewSource(3))
	worstUnder := 0.0
	for trial := 0; trial < 50; trial++ {
		pos, mass := randomSources(48, rng)
		center := vec.V3{0.5, 0.5, 0.5}
		e := NewExpansion(4, center)
		e.AddParticles(pos, mass)
		e.FinalizeNorms()
		d := 2 + 3*rng.Float64()
		x := center.Add(vec.V3{d, 0, 0})
		ref := directField(pos, mass, x)
		res := e.Evaluate(x)
		actual := res.Acc.Sub(ref.Acc).Norm()
		est := e.AccelErrorEstimate(4, d)
		if actual > 0 && est/actual < 0.2 {
			if actual/est > worstUnder {
				worstUnder = actual / est
			}
		}
	}
	if worstUnder > 20 {
		t.Errorf("error estimate underestimates the true error by up to %gx", worstUnder)
	}
}

func TestM2MShiftPreservesField(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pos, mass := randomSources(40, rng)
	childCenter := vec.V3{0.25, 0.25, 0.25}
	parentCenter := vec.V3{0.5, 0.5, 0.5}
	x := vec.V3{4, 3, 5}

	child := NewExpansion(4, childCenter)
	child.AddParticles(pos, mass)
	parent := NewExpansion(4, parentCenter)
	parent.AddShifted(child)

	directParent := NewExpansion(4, parentCenter)
	directParent.AddParticles(pos, mass)

	a := parent.Evaluate(x)
	b := directParent.Evaluate(x)
	if a.Acc.Sub(b.Acc).Norm()/b.Acc.Norm() > 1e-12 {
		t.Errorf("M2M-shifted expansion differs from directly built one: %v vs %v", a.Acc, b.Acc)
	}
	// Mass conservation under shift.
	if math.Abs(parent.Mass-directParent.Mass) > 1e-12 {
		t.Error("M2M does not conserve mass")
	}
}

func TestM2LAndL2P(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pos, mass := randomSources(30, rng)
	srcCenter := vec.V3{0.5, 0.5, 0.5}
	locCenter := vec.V3{6, 5, 4}

	src := NewExpansion(4, srcCenter)
	src.AddParticles(pos, mass)

	T := Derivatives(locCenter.Sub(srcCenter), 8)
	loc := NewLocal(4, locCenter)
	loc.AddM2L(src, T)

	for _, h := range []vec.V3{{0.1, 0, 0}, {-0.2, 0.3, 0.1}, {0, 0, 0.25}} {
		x := locCenter.Add(h)
		ref := directField(pos, mass, x)
		got := loc.Evaluate(x)
		if got.Acc.Sub(ref.Acc).Norm()/ref.Acc.Norm() > 1e-4 {
			t.Errorf("local expansion at %v: %v vs %v", h, got.Acc, ref.Acc)
		}
	}
}

func TestEvaluateTruncatedMatchesLowerOrderExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pos, mass := randomSources(20, rng)
	center := vec.V3{0.5, 0.5, 0.5}
	full := NewExpansion(4, center)
	full.AddParticles(pos, mass)
	quad := NewExpansion(2, center)
	quad.AddParticles(pos, mass)
	x := vec.V3{3, 2, 4}
	scratch := make([]float64, ScratchSize(4))
	a := full.EvaluateTruncated(x, 2, scratch)
	b := quad.Evaluate(x)
	if a.Acc.Sub(b.Acc).Norm() > 1e-13 {
		t.Errorf("truncated evaluation differs from genuine low-order expansion")
	}
}

func TestBlockedMonopoleMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 64, 32
	src := NewSource32(m)
	for j := 0; j < m; j++ {
		src.Append(rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()+0.5)
	}
	xs := make([]float32, n)
	ys := make([]float32, n)
	zs := make([]float32, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i], zs[i] = rng.Float32()+2, rng.Float32()+2, rng.Float32()+2
	}
	a := NewSink32(xs, ys, zs)
	b := NewSink32(xs, ys, zs)
	BlockedMonopole32(src, a, 1e-6)
	ScalarMonopole32(src, b, 1e-6)
	for i := 0; i < n; i++ {
		if math.Abs(float64(a.Ax[i]-b.Ax[i])) > 1e-5 || math.Abs(float64(a.Pot[i]-b.Pot[i])) > 1e-4 {
			t.Fatalf("blocked and scalar kernels disagree at sink %d", i)
		}
	}
	if a.Interactions() != int64(m*n) {
		t.Errorf("interaction count %d, want %d", a.Interactions(), m*n)
	}
}

func TestBinomial3(t *testing.T) {
	if Binomial3(MultiIndex{2, 1, 0}, MultiIndex{1, 1, 0}) != 2 {
		t.Error("C(2,1)*C(1,1)*C(0,0) should be 2")
	}
	if Binomial3(MultiIndex{1, 0, 0}, MultiIndex{2, 0, 0}) != 0 {
		t.Error("beta > alpha must give 0")
	}
}

func TestEvaluateTruncatedBlockMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pos, mass := randomSources(40, rng)
	center := vec.V3{0.5, 0.5, 0.5}
	e := NewExpansion(4, center)
	e.AddParticles(pos, mass)
	e.FinalizeNorms()
	var xs []vec.V3
	var qs []uint8
	for i := 0; i < 24; i++ {
		d := vec.V3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, center.Add(d.Scale((2+3*rng.Float64())/d.Norm())))
		qs = append(qs, uint8(rng.Intn(6))) // includes q > P, clamped like the scalar path
	}
	scratch := make([]float64, ScratchSize(4))
	out := make([]Result, len(xs))
	e.EvaluateTruncatedBlock(xs, qs, scratch, out)
	for i := range xs {
		want := e.EvaluateTruncated(xs[i], int(qs[i]), scratch)
		if out[i] != want {
			t.Errorf("block eval %d (q=%d): %+v want %+v", i, qs[i], out[i], want)
		}
	}
}
