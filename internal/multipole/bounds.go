package multipole

import "math"

// AccelErrorBound returns the Salmon–Warren style upper bound on the
// acceleration error committed by truncating the multipole expansion of this
// source at order P, when evaluated at distance d from the expansion center
// (d must exceed Bmax).
//
// The bound follows Warren & Salmon (1995), eq. (24) specialised to
// multipole-only (Delta = 0) interactions:
//
//	|da| <= 1/(d - bmax)^2 * ( (p+2) B_{p+1}/d^{p+1} - (p+1) B_{p+2}/d^{p+2} )
//
// where B_n = sum_j |m_j| |d_j|^n.  Since the expansion only stores B up to
// order P+1, the second term uses B_{p+2} <= bmax * B_{p+1}; dropping a
// positive correction keeps the bound conservative.
func (e *Expansion) AccelErrorBound(d float64) float64 {
	if d <= e.Bmax {
		return math.Inf(1)
	}
	p := float64(e.P)
	bNext := e.B[e.P+1]
	bNext2 := e.Bmax * bNext
	dp1 := math.Pow(d, p+1)
	bound := ((p+2)*bNext/dp1 - (p+1)*bNext2/(dp1*d)) / ((d - e.Bmax) * (d - e.Bmax))
	if bound < 0 {
		bound = 0
	}
	return bound
}

// PotentialErrorBound is the analogous bound on the error in the kernel sum
// (potential) itself.
func (e *Expansion) PotentialErrorBound(d float64) float64 {
	if d <= e.Bmax {
		return math.Inf(1)
	}
	p := float64(e.P)
	bNext := e.B[e.P+1]
	return bNext / (math.Pow(d, p+1) * (d - e.Bmax))
}

// BHAccept implements the classic Barnes–Hut opening criterion: the cell of
// size `size` at distance d is accepted when size/d < theta, with the
// additional WS93 safety that d must exceed bmax.
func BHAccept(size, bmax, d, theta float64) bool {
	if d <= bmax {
		return false
	}
	return size < theta*d
}
