// Package transfer provides the linear matter power spectrum used to generate
// initial conditions and to normalize the mass-function fits.  The paper
// obtains P(k) from the CLASS Boltzmann code; the stdlib-only substitution
// here is the Eisenstein & Hu (1998) analytic transfer function, in both its
// full (baryon acoustic oscillation) and "no-wiggle" forms.  Every experiment
// in the paper compares runs that share the same input spectrum, so the few
// per-cent difference between EH98 and CLASS does not affect the reproduced
// shapes.
package transfer

import (
	"math"

	"twohot/internal/cosmo"
)

// Variant selects the transfer-function approximation.
type Variant int

const (
	// EisensteinHu is the full EH98 fitting formula including baryon
	// acoustic oscillations.
	EisensteinHu Variant = iota
	// EisensteinHuNoWiggle is the smooth ("zero baryon oscillation") form.
	EisensteinHuNoWiggle
	// BBKS is the classic Bardeen et al. (1986) form with the Sugiyama
	// (1995) shape parameter, retained for cross-checks against older
	// simulations (e.g. the WMAP1-era runs of Figure 8).
	BBKS
)

// Spectrum evaluates the linear matter power spectrum for a cosmology,
// normalized to sigma8 at z=0.
type Spectrum struct {
	Par     cosmo.Params
	Variant Variant
	eh      ehParams
	norm    float64 // amplitude so that sigma(8 Mpc/h) = sigma8
}

// NewSpectrum builds a normalized spectrum for the given cosmology.
func NewSpectrum(par cosmo.Params, v Variant) *Spectrum {
	s := &Spectrum{Par: par, Variant: v}
	s.eh = newEHParams(par)
	s.norm = 1
	sig := s.SigmaR(8)
	s.norm = (par.Sigma8 / sig) * (par.Sigma8 / sig)
	return s
}

// Transfer returns the transfer function T(k) for k in h/Mpc.
func (s *Spectrum) Transfer(k float64) float64 {
	if k <= 0 {
		return 1
	}
	kMpc := k * s.Par.H // EH98 formulas use k in 1/Mpc
	switch s.Variant {
	case EisensteinHu:
		return s.eh.full(kMpc)
	case EisensteinHuNoWiggle:
		return s.eh.noWiggle(kMpc)
	case BBKS:
		return s.bbks(k)
	default:
		return s.eh.full(kMpc)
	}
}

// P returns the linear power spectrum at z=0 for k in h/Mpc, in (Mpc/h)^3.
func (s *Spectrum) P(k float64) float64 {
	if k <= 0 {
		return 0
	}
	t := s.Transfer(k)
	return s.norm * math.Pow(k, s.Par.Ns) * t * t
}

// PAt returns the linear power spectrum at redshift z using the growth
// factor of the background.
func (s *Spectrum) PAt(k, z float64) float64 {
	d := s.Par.GrowthFactor(1 / (1 + z))
	return s.P(k) * d * d
}

// SigmaR returns the rms linear density fluctuation in top-hat spheres of
// comoving radius R (Mpc/h) at z=0.
func (s *Spectrum) SigmaR(R float64) float64 {
	// integrate in ln k
	const (
		lnkMin = -9.0
		lnkMax = 6.0
		n      = 2048
	)
	h := (lnkMax - lnkMin) / n
	sum := 0.0
	for i := 0; i <= n; i++ {
		lnk := lnkMin + float64(i)*h
		k := math.Exp(lnk)
		w := topHatWindow(k * R)
		f := s.P(k) * w * w * k * k * k // extra k from dlnk measure
		weight := 1.0
		if i == 0 || i == n {
			weight = 0.5
		}
		sum += weight * f
	}
	sum *= h / (2 * math.Pi * math.Pi)
	return math.Sqrt(sum)
}

// SigmaM returns sigma(M) for halo mass M (1e10 Msun/h) at z=0, using the
// mean matter density to convert mass to Lagrangian radius.
func (s *Spectrum) SigmaM(m float64) float64 {
	rho := s.Par.MeanMatterDensity()
	r := math.Cbrt(3 * m / (4 * math.Pi * rho))
	return s.SigmaR(r)
}

// topHatWindow is the Fourier transform of the real-space spherical top hat.
func topHatWindow(x float64) float64 {
	if x < 1e-4 {
		return 1 - x*x/10
	}
	return 3 * (math.Sin(x) - x*math.Cos(x)) / (x * x * x)
}

func (s *Spectrum) bbks(k float64) float64 {
	p := s.Par
	gamma := p.OmegaM * p.H * math.Exp(-p.OmegaB*(1+math.Sqrt(2*p.H)/p.OmegaM))
	q := k / gamma
	return math.Log(1+2.34*q) / (2.34 * q) *
		math.Pow(1+3.89*q+math.Pow(16.1*q, 2)+math.Pow(5.46*q, 3)+math.Pow(6.71*q, 4), -0.25)
}

// ehParams caches the Eisenstein & Hu (1998) fit coefficients.
type ehParams struct {
	omh2, obh2 float64
	fBaryon    float64
	theta      float64

	zEq, kEq      float64
	zDrag         float64
	soundHorizon  float64
	kSilk         float64
	alphaC, betaC float64
	alphaB, betaB float64
	betaNode      float64

	// no-wiggle
	sNW, alphaGamma float64
}

func newEHParams(p cosmo.Params) ehParams {
	var e ehParams
	h := p.H
	e.omh2 = p.OmegaM * h * h
	e.obh2 = p.OmegaB * h * h
	e.fBaryon = p.OmegaB / p.OmegaM
	tcmb := p.TCMB
	if tcmb == 0 {
		tcmb = 2.7255
	}
	e.theta = tcmb / 2.7
	t4 := math.Pow(e.theta, 4)

	e.zEq = 2.50e4 * e.omh2 / t4
	e.kEq = 7.46e-2 * e.omh2 / (e.theta * e.theta)

	b1 := 0.313 * math.Pow(e.omh2, -0.419) * (1 + 0.607*math.Pow(e.omh2, 0.674))
	b2 := 0.238 * math.Pow(e.omh2, 0.223)
	e.zDrag = 1291 * math.Pow(e.omh2, 0.251) / (1 + 0.659*math.Pow(e.omh2, 0.828)) *
		(1 + b1*math.Pow(e.obh2, b2))

	rd := 31.5 * e.obh2 / t4 * (1e3 / e.zDrag)
	req := 31.5 * e.obh2 / t4 * (1e3 / e.zEq)
	e.soundHorizon = 2.0 / (3.0 * e.kEq) * math.Sqrt(6.0/req) *
		math.Log((math.Sqrt(1+rd)+math.Sqrt(rd+req))/(1+math.Sqrt(req)))

	e.kSilk = 1.6 * math.Pow(e.obh2, 0.52) * math.Pow(e.omh2, 0.73) *
		(1 + math.Pow(10.4*e.omh2, -0.95))

	a1 := math.Pow(46.9*e.omh2, 0.670) * (1 + math.Pow(32.1*e.omh2, -0.532))
	a2 := math.Pow(12.0*e.omh2, 0.424) * (1 + math.Pow(45.0*e.omh2, -0.582))
	e.alphaC = math.Pow(a1, -e.fBaryon) * math.Pow(a2, -e.fBaryon*e.fBaryon*e.fBaryon)

	bb1 := 0.944 / (1 + math.Pow(458*e.omh2, -0.708))
	bb2 := math.Pow(0.395*e.omh2, -0.0266)
	fc := 1 - e.fBaryon
	e.betaC = 1 / (1 + bb1*(math.Pow(fc, bb2)-1))

	y := (1 + e.zEq) / (1 + e.zDrag)
	gy := y * (-6*math.Sqrt(1+y) + (2+3*y)*math.Log((math.Sqrt(1+y)+1)/(math.Sqrt(1+y)-1)))
	e.alphaB = 2.07 * e.kEq * e.soundHorizon * math.Pow(1+rd, -0.75) * gy

	e.betaB = 0.5 + e.fBaryon + (3-2*e.fBaryon)*math.Sqrt(math.Pow(17.2*e.omh2, 2)+1)
	e.betaNode = 8.41 * math.Pow(e.omh2, 0.435)

	// No-wiggle shape.
	e.sNW = 44.5 * math.Log(9.83/e.omh2) / math.Sqrt(1+10*math.Pow(e.obh2, 0.75))
	e.alphaGamma = 1 - 0.328*math.Log(431*e.omh2)*e.fBaryon +
		0.38*math.Log(22.3*e.omh2)*e.fBaryon*e.fBaryon

	return e
}

// t0tilde is the pressureless CDM transfer shape of EH98 eq. (19-20).
func (e ehParams) t0tilde(k, alphaC, betaC float64) float64 {
	q := k / (13.41 * e.kEq)
	c := 14.2/alphaC + 386.0/(1+69.9*math.Pow(q, 1.08))
	l := math.Log(math.E + 1.8*betaC*q)
	return l / (l + c*q*q)
}

// full evaluates the full EH98 transfer function; k in 1/Mpc.
func (e ehParams) full(k float64) float64 {
	if k <= 0 {
		return 1
	}
	ks := k * e.soundHorizon
	// CDM part.
	f := 1 / (1 + math.Pow(ks/5.4, 4))
	tc := f*e.t0tilde(k, 1, e.betaC) + (1-f)*e.t0tilde(k, e.alphaC, e.betaC)
	// Baryon part.
	sTilde := e.soundHorizon / math.Cbrt(1+math.Pow(e.betaNode/ks, 3))
	x := k * sTilde
	var j0 float64
	if x < 1e-6 {
		j0 = 1 - x*x/6
	} else {
		j0 = math.Sin(x) / x
	}
	tb := (e.t0tilde(k, 1, 1)/(1+math.Pow(ks/5.2, 2)) +
		e.alphaB/(1+math.Pow(e.betaB/ks, 3))*math.Exp(-math.Pow(k/e.kSilk, 1.4))) * j0
	return e.fBaryon*tb + (1-e.fBaryon)*tc
}

// noWiggle evaluates the smooth EH98 form; k in 1/Mpc.
func (e ehParams) noWiggle(k float64) float64 {
	if k <= 0 {
		return 1
	}
	// q_eff = k theta^2 / (Omega_m h^2 * shape), with the shape suppression
	// of the effective Gamma from EH98 eq. (30-31).
	shape := e.alphaGamma + (1-e.alphaGamma)/(1+math.Pow(0.43*k*e.sNW, 4))
	q := k * e.theta * e.theta / (e.omh2 * shape)
	l0 := math.Log(2*math.E + 1.8*q)
	c0 := 14.2 + 731.0/(1+62.5*q)
	return l0 / (l0 + c0*q*q)
}
