package transfer

import (
	"math"
	"testing"

	"twohot/internal/cosmo"
)

func TestTransferLimits(t *testing.T) {
	par := cosmo.Planck2013()
	for _, v := range []Variant{EisensteinHu, EisensteinHuNoWiggle, BBKS} {
		s := NewSpectrum(par, v)
		if math.Abs(s.Transfer(1e-5)-1) > 0.02 {
			t.Errorf("variant %d: T(k->0) = %g, want ~1", v, s.Transfer(1e-5))
		}
		if s.Transfer(10) > 1e-2 {
			t.Errorf("variant %d: T(k=10) = %g, should be strongly suppressed", v, s.Transfer(10))
		}
		// Transfer function should be positive and decreasing overall.
		if s.Transfer(0.1) <= s.Transfer(1.0) {
			t.Errorf("variant %d: transfer function not decreasing", v)
		}
	}
}

func TestSigma8Normalization(t *testing.T) {
	par := cosmo.Planck2013()
	s := NewSpectrum(par, EisensteinHu)
	got := s.SigmaR(8)
	if math.Abs(got-par.Sigma8)/par.Sigma8 > 1e-6 {
		t.Errorf("sigma(8) = %g, want %g", got, par.Sigma8)
	}
}

func TestBAOWiggles(t *testing.T) {
	// The full EH98 transfer function oscillates around the no-wiggle form
	// in the BAO regime (k ~ 0.05 - 0.3 h/Mpc).
	par := cosmo.Planck2013()
	full := NewSpectrum(par, EisensteinHu)
	smooth := NewSpectrum(par, EisensteinHuNoWiggle)
	signChanges := 0
	prev := 0.0
	for k := 0.05; k < 0.3; k *= 1.03 {
		diff := full.P(k)/smooth.P(k) - 1
		if prev != 0 && diff*prev < 0 {
			signChanges++
		}
		prev = diff
	}
	if signChanges < 3 {
		t.Errorf("expected BAO oscillations around the no-wiggle spectrum, got %d sign changes", signChanges)
	}
}

func TestSigmaMMonotonic(t *testing.T) {
	par := cosmo.Planck2013()
	s := NewSpectrum(par, EisensteinHu)
	prev := math.Inf(1)
	for _, m := range []float64{1e2, 1e3, 1e4, 1e5} { // 1e12 .. 1e15 Msun/h
		sig := s.SigmaM(m)
		if sig >= prev {
			t.Errorf("sigma(M) must decrease with mass: sigma(%g)=%g", m, sig)
		}
		prev = sig
	}
	// sigma at cluster scales (1e15 Msun/h = 1e5 internal) should be below 1
	// and above 0.3 for Planck-like cosmology.
	sig := s.SigmaM(1e5)
	if sig < 0.3 || sig > 1.2 {
		t.Errorf("sigma(1e15 Msun/h) = %g", sig)
	}
}

func TestPAtRedshiftScalesWithGrowth(t *testing.T) {
	par := cosmo.Planck2013()
	s := NewSpectrum(par, EisensteinHu)
	k := 0.1
	d := par.GrowthFactor(1 / (1 + 2.0))
	want := s.P(k) * d * d
	if math.Abs(s.PAt(k, 2)-want)/want > 1e-12 {
		t.Error("PAt must scale as the squared growth factor")
	}
}
