// Package stask is the task-management substrate of Section 3.4.1: a small
// dependency-aware task queue that runs many smaller jobs (data analysis,
// parameter sweeps, MapReduce-style post-processing) inside one large
// allocation, with support for the pre-emption notice the paper wishes
// queueing systems provided ("send a signal at least 600 seconds in
// advance").
package stask

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// State describes a task's lifecycle.
type State int

const (
	Pending State = iota
	Running
	Done
	Failed
	Skipped // dependencies failed
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	default:
		return "unknown"
	}
}

// Task is one unit of work.
type Task struct {
	Name     string
	Deps     []string
	Priority int // higher runs earlier among ready tasks
	Run      func(ctx context.Context) error

	state State
	err   error
}

// State returns the task's current state.
func (t *Task) State() State { return t.state }

// Err returns the task's failure, if any.
func (t *Task) Err() error { return t.err }

// Queue executes tasks respecting dependencies with a bounded worker pool.
type Queue struct {
	mu       sync.Mutex
	tasks    map[string]*Task
	order    []string
	finished chan struct{}
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{tasks: map[string]*Task{}, finished: make(chan struct{}, 1024)}
}

// Add registers a task.  Names must be unique.
func (q *Queue) Add(t *Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.Name == "" {
		return errors.New("stask: task must have a name")
	}
	if _, dup := q.tasks[t.Name]; dup {
		return fmt.Errorf("stask: duplicate task %q", t.Name)
	}
	q.tasks[t.Name] = t
	q.order = append(q.order, t.Name)
	return nil
}

// AddFunc is a convenience wrapper around Add.
func (q *Queue) AddFunc(name string, deps []string, fn func(ctx context.Context) error) error {
	return q.Add(&Task{Name: name, Deps: deps, Run: fn})
}

// Task returns a registered task.
func (q *Queue) Task(name string) (*Task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[name]
	return t, ok
}

// Run executes all tasks with the given number of workers.  It returns an
// error if any task failed or if the dependency graph is unsatisfiable
// (cycle or missing dependency).  Cancelling the context stops launching new
// tasks (the pre-emption path: running tasks observe ctx themselves, e.g. by
// writing a checkpoint).
func (q *Queue) Run(ctx context.Context, workers int) error {
	if workers < 1 {
		workers = 1
	}
	q.mu.Lock()
	for _, name := range q.order {
		for _, d := range q.tasks[name].Deps {
			if _, ok := q.tasks[d]; !ok {
				q.mu.Unlock()
				return fmt.Errorf("stask: task %q depends on unknown task %q", name, d)
			}
		}
	}
	// Ensure the completion channel can hold one notification per task so
	// that none is ever dropped (which could strand the scheduler loop).
	if cap(q.finished) < len(q.tasks)+1 {
		q.finished = make(chan struct{}, len(q.tasks)+1)
	}
	q.mu.Unlock()

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	var firstErr error
	var errMu sync.Mutex

	for {
		ready := q.nextReady()
		if ready == nil {
			// Either everything is finished, something is still running, or
			// the remainder is blocked.
			if q.allSettled() {
				break
			}
			if ctx.Err() != nil && q.noneRunning() {
				break
			}
			// Wait for a running task to finish before rescanning.  The
			// channel is buffered with room for every completion, so a task
			// finishing between the scan above and this receive is never
			// missed.
			<-q.finished
			continue
		}
		if ctx.Err() != nil {
			q.setState(ready, Skipped, ctx.Err())
			continue
		}
		q.setState(ready, Running, nil)
		wg.Add(1)
		sem <- struct{}{}
		go func(t *Task) {
			defer wg.Done()
			defer func() { <-sem }()
			err := t.Run(ctx)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("stask: task %q: %w", t.Name, err)
				}
				errMu.Unlock()
				q.setState(t, Failed, err)
			} else {
				q.setState(t, Done, nil)
			}
		}(ready)
	}
	wg.Wait()
	// Mark any tasks blocked on failures as skipped.
	q.mu.Lock()
	for _, name := range q.order {
		t := q.tasks[name]
		if t.state == Pending {
			t.state = Skipped
		}
	}
	q.mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

func (q *Queue) setState(t *Task, s State, err error) {
	q.mu.Lock()
	t.state = s
	t.err = err
	q.mu.Unlock()
	if s == Done || s == Failed || s == Skipped {
		select {
		case q.finished <- struct{}{}:
		default:
		}
	}
}

// nextReady returns the highest-priority pending task whose dependencies are
// all done, or nil.
func (q *Queue) nextReady() *Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	var best *Task
	for _, name := range q.order {
		t := q.tasks[name]
		if t.state != Pending {
			continue
		}
		ok := true
		failedDep := false
		for _, d := range t.Deps {
			switch q.tasks[d].state {
			case Done:
			case Failed, Skipped:
				failedDep = true
			default:
				ok = false
			}
		}
		if failedDep {
			t.state = Skipped
			continue
		}
		if !ok {
			continue
		}
		if best == nil || t.Priority > best.Priority {
			best = t
		}
	}
	return best
}

func (q *Queue) allSettled() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, name := range q.order {
		s := q.tasks[name].state
		if s == Pending || s == Running {
			return false
		}
	}
	return true
}

func (q *Queue) noneRunning() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, name := range q.order {
		if q.tasks[name].state == Running {
			return false
		}
	}
	return true
}

// States returns a name -> state snapshot.
func (q *Queue) States() map[string]State {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]State, len(q.tasks))
	for n, t := range q.tasks {
		out[n] = t.state
	}
	return out
}
