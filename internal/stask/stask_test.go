package stask

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestDependenciesRespected(t *testing.T) {
	q := NewQueue()
	var order []string
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(name string) func(ctx context.Context) error {
		return func(ctx context.Context) error {
			<-mu
			order = append(order, name)
			mu <- struct{}{}
			return nil
		}
	}
	q.AddFunc("ic", nil, record("ic"))
	q.AddFunc("evolve", []string{"ic"}, record("evolve"))
	q.AddFunc("halos", []string{"evolve"}, record("halos"))
	q.AddFunc("power", []string{"evolve"}, record("power"))
	if err := q.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	posOf := func(n string) int {
		for i, v := range order {
			if v == n {
				return i
			}
		}
		return -1
	}
	if posOf("ic") > posOf("evolve") || posOf("evolve") > posOf("halos") || posOf("evolve") > posOf("power") {
		t.Errorf("dependency order violated: %v", order)
	}
	for name, s := range q.States() {
		if s != Done {
			t.Errorf("task %s state %v", name, s)
		}
	}
}

func TestFailurePropagatesAndSkipsDependents(t *testing.T) {
	q := NewQueue()
	boom := errors.New("boom")
	q.AddFunc("a", nil, func(ctx context.Context) error { return boom })
	var ran int64
	q.AddFunc("b", []string{"a"}, func(ctx context.Context) error { atomic.AddInt64(&ran, 1); return nil })
	err := q.Run(context.Background(), 2)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected failure, got %v", err)
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Error("dependent task ran despite failed dependency")
	}
	states := q.States()
	if states["a"] != Failed || states["b"] != Skipped {
		t.Errorf("states %v", states)
	}
}

func TestMissingDependencyRejected(t *testing.T) {
	q := NewQueue()
	q.AddFunc("x", []string{"ghost"}, func(ctx context.Context) error { return nil })
	if err := q.Run(context.Background(), 1); err == nil {
		t.Error("expected missing-dependency error")
	}
}

func TestManyIndependentTasks(t *testing.T) {
	q := NewQueue()
	var count int64
	for i := 0; i < 200; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		q.AddFunc(name, nil, func(ctx context.Context) error { atomic.AddInt64(&count, 1); return nil })
	}
	if err := q.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Errorf("ran %d of 200 tasks", count)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	q := NewQueue()
	if err := q.AddFunc("same", nil, func(ctx context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := q.AddFunc("same", nil, func(ctx context.Context) error { return nil }); err == nil {
		t.Error("duplicate task name accepted")
	}
}
