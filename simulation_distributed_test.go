package twohot

import (
	"fmt"
	"math"
	"testing"
)

// Distributed-vs-serial equivalence: the same particle load solved through
// Simulation's single-rank tree path and through the message-passing
// DistributedStep pipeline (Cfg.Ranks > 1) must agree on every force and
// potential to force-error tolerance.  The distributed path re-decomposes the
// box, builds per-rank trees, exchanges branches and fetches remote cells
// over ABM — none of which may move a result beyond the solver's own error
// bar.  Runs in -short mode so CI exercises it under -race.

func distributedConfig() Config {
	cfg := DefaultConfig()
	cfg.NGrid = 10 // 1000 particles
	cfg.BoxSize = 100
	cfg.ZInit = 9
	cfg.ZFinal = 1
	cfg.NSteps = 4
	cfg.ErrTol = 1e-5
	cfg.WS = 1
	cfg.LatticeOrder = 2
	return cfg
}

// byID indexes accelerations and potentials by particle ID.
func byID(s *Simulation) map[int64]int {
	m := make(map[int64]int, s.P.Len())
	for i, id := range s.P.ID {
		m[id] = i
	}
	return m
}

func TestDistributedStepMatchesSerialAccelerations(t *testing.T) {
	cfg := distributedConfig()
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.GenerateICs(); err != nil {
		t.Fatal(err)
	}
	initial := serial.P.Clone()
	if _, err := serial.Accelerations(); err != nil {
		t.Fatal(err)
	}
	// Normalization: the rms acceleration, the convention of the paper's
	// force-accuracy discussion.
	sum := 0.0
	for _, a := range serial.P.Acc {
		sum += a.Norm2()
	}
	rms := math.Sqrt(sum / float64(serial.P.Len()))
	potScale := 0.0
	for _, p := range serial.P.Pot {
		if v := math.Abs(p); v > potScale {
			potScale = v
		}
	}

	for _, ranks := range []int{2, 4} {
		rcfg := cfg
		rcfg.Ranks = ranks
		dist, err := New(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		dist.SetParticles(initial.Clone(), serial.A)
		if _, err := dist.Accelerations(); err != nil {
			t.Fatal(err)
		}
		if dist.P.Len() != serial.P.Len() {
			t.Fatalf("ranks=%d: particle count changed: %d vs %d", ranks, dist.P.Len(), serial.P.Len())
		}
		idx := byID(serial)
		sumSq, maxRel, maxPot := 0.0, 0.0, 0.0
		for i, id := range dist.P.ID {
			j, ok := idx[id]
			if !ok {
				t.Fatalf("ranks=%d: particle ID %d lost", ranks, id)
			}
			rel := dist.P.Acc[i].Sub(serial.P.Acc[j]).Norm() / rms
			sumSq += rel * rel
			if rel > maxRel {
				maxRel = rel
			}
			if dp := math.Abs(dist.P.Pot[i]-serial.P.Pot[j]) / potScale; dp > maxPot {
				maxPot = dp
			}
		}
		rmsErr := math.Sqrt(sumSq / float64(dist.P.Len()))
		t.Logf("ranks=%d: acc error rms %.3e max %.3e, pot error max %.3e", ranks, rmsErr, maxRel, maxPot)
		if rmsErr > 5e-4 {
			t.Errorf("ranks=%d: distributed accelerations differ from serial: rms %.3e", ranks, rmsErr)
		}
		if maxRel > 2e-2 {
			t.Errorf("ranks=%d: distributed acceleration outlier: max %.3e", ranks, maxRel)
		}
		if maxPot > 5e-3 {
			t.Errorf("ranks=%d: distributed potentials differ from serial: max %.3e", ranks, maxPot)
		}
	}
}

// assertBitIdenticalByID fails unless both simulations hold the same epochs
// and, particle by particle (matched by ID — the distributed path regroups
// the set every solve), bitwise-equal positions and momenta.
func assertBitIdenticalByID(t *testing.T, name string, ref, got *Simulation) {
	t.Helper()
	if ref.A != got.A || ref.AMom != got.AMom || ref.StepCount != got.StepCount {
		t.Fatalf("%s: epochs differ: A %v/%v AMom %v/%v steps %d/%d",
			name, ref.A, got.A, ref.AMom, got.AMom, ref.StepCount, got.StepCount)
	}
	if ref.P.Len() != got.P.Len() {
		t.Fatalf("%s: particle counts differ: %d vs %d", name, ref.P.Len(), got.P.Len())
	}
	idx := byID(ref)
	for i, id := range got.P.ID {
		j, ok := idx[id]
		if !ok {
			t.Fatalf("%s: particle ID %d lost", name, id)
		}
		if ref.P.Pos[j] != got.P.Pos[i] || ref.P.Mom[j] != got.P.Mom[i] {
			t.Fatalf("%s: particle %d differs:\n  pos %v vs %v\n  mom %v vs %v",
				name, id, ref.P.Pos[j], got.P.Pos[i], ref.P.Mom[j], got.P.Mom[i])
		}
	}
}

// TestDistributedBlockAllRungZeroBitIdenticalToGlobal is the distributed leg
// of the block engine's degenerate-case contract: with every particle on rung
// 0, a block-stepped run over N ranks must reproduce the global-stepped run
// over the same N ranks BIT FOR BIT — same solves (the engine hands the
// solver a nil mask when everyone is active), same splitters (Work history
// identical), same kicks and drifts.  Covers ranks 2 and 4 so the matrix
// includes an uneven chunking.
func TestDistributedBlockAllRungZeroBitIdenticalToGlobal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run distributed equivalence matrix")
	}
	base := distributedConfig()
	base.NSteps = 3
	for _, ranks := range []int{2, 4} {
		cfg := base
		cfg.Ranks = ranks
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.GenerateICs(); err != nil {
			t.Fatal(err)
		}
		initial := ref.P.Clone()
		a0 := ref.A
		if err := ref.Run(); err != nil {
			t.Fatal(err)
		}

		blk := cfg
		blk.BlockSteps = 4
		blk.RungDisplacementFrac = 1e12 // so loose nobody leaves rung 0
		got, err := New(blk)
		if err != nil {
			t.Fatal(err)
		}
		got.SetParticles(initial.Clone(), a0)
		if err := got.Run(); err != nil {
			t.Fatal(err)
		}
		if bs := blockState(got); bs == nil {
			t.Fatal("block-step run kept no block state")
		} else if bs.MaxRung() != 0 {
			t.Fatalf("ranks=%d: loose criterion still assigned rungs up to %d", ranks, bs.MaxRung())
		}
		assertBitIdenticalByID(t, fmt.Sprintf("ranks=%d", ranks), ref, got)
	}
}

// TestDistributedBlockMultiRungMatchesSerialBlock runs a genuinely multi-rung
// block configuration once on a single rank and once over two ranks: the
// activity masks, rungs and momentum epochs now cross the exchange on every
// substep, and the trajectories must stay within the solver's own error bar
// of each other — the same bound the global-step distributed run is held to.
func TestDistributedBlockMultiRungMatchesSerialBlock(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run distributed equivalence matrix")
	}
	cfg := distributedConfig()
	cfg.NSteps = 3
	cfg.BlockSteps = 3
	cfg.RungDisplacementFrac = 0.01

	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.GenerateICs(); err != nil {
		t.Fatal(err)
	}
	initial := serial.P.Clone()
	a0 := serial.A
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	occupied := map[int8]bool{}
	for _, r := range blockState(serial).Rung {
		occupied[r] = true
	}
	if len(occupied) < 2 {
		t.Fatalf("displacement criterion produced a single rung (%v); tighten the test config", occupied)
	}

	rcfg := cfg
	rcfg.Ranks = 2
	dist, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	dist.SetParticles(initial, a0)
	if err := dist.Run(); err != nil {
		t.Fatal(err)
	}
	if dist.A != serial.A || dist.AMom != serial.AMom {
		t.Fatalf("final epochs differ: A %g/%g AMom %g/%g", dist.A, serial.A, dist.AMom, serial.AMom)
	}

	idx := byID(serial)
	maxPos := 0.0
	for i, id := range dist.P.ID {
		j := idx[id]
		if d := dist.P.Pos[i].Sub(serial.P.Pos[j]).Norm(); d > maxPos {
			maxPos = d
		}
	}
	t.Logf("ranks=2 multi-rung (%d rungs occupied): max position difference %.3e Mpc/h",
		len(occupied), maxPos)
	if maxPos > 1e-3*cfg.BoxSize {
		t.Errorf("distributed block trajectory diverged from the serial block run by %.3e Mpc/h", maxPos)
	}
}

// TestDistributedRunStepsMatchSerial drives the multi-rank loop through
// Simulation.StepOnce — the tentpole's "Simulation drives DistributedStep
// directly" — and checks the trajectories stay together.  The particle order
// changes every distributed step (regrouped by rank), so positions are
// compared by ID.
func TestDistributedRunStepsMatchSerial(t *testing.T) {
	cfg := distributedConfig()
	cfg.NSteps = 2

	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.GenerateICs(); err != nil {
		t.Fatal(err)
	}
	initial := serial.P.Clone()
	a0 := serial.A

	rcfg := cfg
	rcfg.Ranks = 2
	dist, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	dist.SetParticles(initial, a0)

	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dist.Run(); err != nil {
		t.Fatal(err)
	}
	if dist.A != serial.A {
		t.Fatalf("final epochs differ: %g vs %g", dist.A, serial.A)
	}

	idx := byID(serial)
	maxPos := 0.0
	for i, id := range dist.P.ID {
		j := idx[id]
		if d := dist.P.Pos[i].Sub(serial.P.Pos[j]).Norm(); d > maxPos {
			maxPos = d
		}
	}
	t.Logf("ranks=2 after %d steps: max position difference %.3e Mpc/h", cfg.NSteps, maxPos)
	if maxPos > 1e-3*cfg.BoxSize {
		t.Errorf("distributed trajectory diverged from serial by %.3e Mpc/h", maxPos)
	}

	// The work feedback must have flowed through the exchange: after a
	// distributed solve every particle carries its actual interaction count.
	nontrivial := 0
	for _, w := range dist.P.Work {
		if w > 1 {
			nontrivial++
		}
	}
	if nontrivial < dist.P.Len()/2 {
		t.Errorf("per-particle work not recorded: only %d/%d particles carry counts", nontrivial, dist.P.Len())
	}
}
