// Command 2hot-ic generates cosmological initial conditions (Zel'dovich or
// 2LPT) and writes them to an SDF file, playing the role of the modified
// 2LPTIC code in the paper's pipeline.
package main

import (
	"flag"
	"fmt"
	"os"

	"twohot/internal/cosmo"
	"twohot/internal/ic"
	"twohot/internal/particle"
	"twohot/internal/sdf"
	"twohot/internal/transfer"
)

func main() {
	cosmoName := flag.String("cosmology", "planck2013", "cosmology preset (planck2013, wmap7, wmap1, eds)")
	n := flag.Int("n", 32, "particles per dimension")
	box := flag.Float64("box", 128, "box size in Mpc/h")
	z := flag.Float64("z", 49, "starting redshift")
	seed := flag.Int64("seed", 12345, "random seed")
	use2lpt := flag.Bool("2lpt", true, "apply the second-order (2LPT) correction")
	dec := flag.Bool("dec", true, "apply the discreteness (CIC-deconvolution-like) correction")
	sphere := flag.Bool("sphere", false, "zero modes outside the Nyquist sphere")
	out := flag.String("o", "ics.sdf", "output SDF file")
	flag.Parse()

	par, err := cosmo.ByName(*cosmoName)
	if err != nil {
		fatal(err)
	}
	spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
	parts, err := ic.Generate(par, spec, ic.Options{
		NGrid: *n, BoxSize: *box, ZInit: *z, Seed: *seed,
		Use2LPT: *use2lpt, UseDEC: *dec, Sphere: *sphere,
	})
	if err != nil {
		fatal(err)
	}
	set := particle.New(parts.N())
	for i := 0; i < parts.N(); i++ {
		set.Append(parts.Pos[i], parts.Mom[i], parts.Mass, int64(i))
	}
	snap := &sdf.Snapshot{
		Particles:        set,
		ScaleFac:         parts.A,
		MomentumScaleFac: parts.A,
		BoxSize:          *box,
		Cosmology:        *cosmoName,
		Extra:            map[string]string{"generator": "2hot-ic", "2lpt": fmt.Sprint(*use2lpt)},
	}
	if err := sdf.Write(*out, snap); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d particles at z=%g to %s (particle mass %.3e Msun/h)\n",
		parts.N(), *z, *out, parts.Mass*1e10)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "2hot-ic:", err)
	os.Exit(1)
}
