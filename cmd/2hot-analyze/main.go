// Command 2hot-analyze post-processes an SDF snapshot: it measures the matter
// power spectrum, finds FOF halos with spherical-overdensity masses, and
// prints the mass function together with the Tinker08 prediction — the
// analysis half of the paper's pipeline (Section 3.4.5).
package main

import (
	"flag"
	"fmt"
	"os"

	"twohot/internal/cosmo"
	"twohot/internal/grid"
	"twohot/internal/halo"
	"twohot/internal/massfunc"
	"twohot/internal/sdf"
	"twohot/internal/transfer"
)

func main() {
	mesh := flag.Int("mesh", 64, "power-spectrum mesh size")
	minMembers := flag.Int("min-members", 20, "minimum FOF halo membership")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: 2hot-analyze [flags] snapshot.sdf")
		os.Exit(2)
	}
	snap, err := sdf.Read(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot: %d particles, a=%.4f, L=%g Mpc/h, cosmology %s\n",
		snap.Particles.Len(), snap.ScaleFac, snap.BoxSize, snap.Cosmology)

	ps := grid.MeasureParticlePower(snap.Particles.Pos, snap.BoxSize, *mesh, grid.PowerSpectrumOptions{})
	fmt.Println("\npower spectrum:")
	for i, p := range ps {
		if i%4 == 0 {
			fmt.Printf("  k=%.4f h/Mpc  P=%.5g (Mpc/h)^3  (%d modes)\n", p.K, p.P, p.Modes)
		}
	}

	opt := halo.Options{BoxSize: snap.BoxSize, MinMembers: *minMembers}
	halos := halo.FOF(snap.Particles.Pos, snap.Particles.Mass, opt)
	halo.SphericalOverdensity(snap.Particles.Pos, snap.Particles.Mass, halos, opt)
	fmt.Printf("\n%d FOF halos (>= %d members)\n", len(halos), *minMembers)
	for i, h := range halos {
		if i >= 10 {
			break
		}
		fmt.Printf("  %3d  N=%6d  M_FOF=%.3e  M200b=%.3e Msun/h  R200b=%.3f Mpc/h\n",
			i, h.N, h.Mass*1e10, h.M200b*1e10, h.R200b)
	}

	if snap.Cosmology != "" {
		if par, err := cosmo.ByName(snap.Cosmology); err == nil {
			spec := transfer.NewSpectrum(par, transfer.EisensteinHu)
			pred := massfunc.NewPredictor(par, spec, 1/snap.ScaleFac-1)
			var masses []float64
			for _, h := range halos {
				if h.M200b > 0 {
					masses = append(masses, h.M200b)
				}
			}
			if len(masses) > 1 {
				bins := massfunc.Measure(masses, snap.BoxSize, masses[len(masses)-1], masses[0]*1.001, 6)
				m, ratio, perr := pred.RatioToFit(massfunc.Tinker08, bins)
				fmt.Println("\nmass function / Tinker08:")
				for i := range m {
					fmt.Printf("  M200b=%.3e Msun/h  ratio=%.2f +- %.2f\n", m[i]*1e10, ratio[i], perr[i])
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "2hot-analyze:", err)
	os.Exit(1)
}
