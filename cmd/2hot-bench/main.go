// Command 2hot-bench regenerates the cheap tables/figures of the paper
// without going through `go test -bench`.  The complete set of harnesses
// (Tables 1-3, Figures 5-8, and the ablations) lives in bench_test.go at the
// repository root; this tool exposes the ones that finish in seconds for
// quick interactive use.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"twohot/internal/core"
	"twohot/internal/multipole"
	"twohot/internal/vec"
)

func main() {
	fig6 := flag.Bool("fig6", true, "print the Figure 6 multipole error table")
	table3 := flag.Bool("table3", true, "run the Table 3 monopole micro-kernel")
	ablation := flag.Bool("ablation-bg", false, "run the background-subtraction ablation (slower)")
	flag.Parse()

	if *table3 {
		runTable3()
	}
	if *fig6 {
		runFigure6()
	}
	if *ablation {
		runAblation()
	}
	fmt.Println("\nFor Tables 1-2 and Figures 5, 7, 8 run:  go test -bench=. -benchtime=1x .")
}

func runTable3() {
	const m, n = 256, 64
	rng := rand.New(rand.NewSource(1))
	src := multipole.NewSource32(m)
	for j := 0; j < m; j++ {
		src.Append(rng.Float32(), rng.Float32(), rng.Float32(), 1)
	}
	xs := make([]float32, n)
	ys := make([]float32, n)
	zs := make([]float32, n)
	for i := range xs {
		xs[i], ys[i], zs[i] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	snk := multipole.NewSink32(xs, ys, zs)
	iters := 3000
	start := time.Now()
	for i := 0; i < iters; i++ {
		multipole.BlockedMonopole32(src, snk, 1e-6)
	}
	el := time.Since(start).Seconds()
	flops := float64(iters) * float64(m*n) * multipole.FlopsPerMonopole
	fmt.Printf("Table 3 (this machine): blocked monopole micro-kernel %.2f Gflop/s (28 flops/interaction)\n", flops/el/1e9)
}

func runFigure6() {
	rng := rand.New(rand.NewSource(42))
	const n = 512
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{rng.Float64(), rng.Float64(), rng.Float64()}
		mass[i] = 1.0 / n
	}
	center := vec.V3{0.5, 0.5, 0.5}
	fmt.Println("\nFigure 6: relative error of a single multipole vs distance (512 particles)")
	fmt.Printf("%6s %12s %12s %12s %12s %12s %12s\n", "r", "p=0", "p=2", "p=4", "p=6", "p=8", "float32")
	for _, r := range []float64{1.0, 2.0, 3.0, 4.0} {
		x := center.Add(vec.V3{r, 0, 0})
		var ref vec.V3
		for i := range pos {
			d := pos[i].Sub(x)
			rr := d.Norm()
			ref = ref.Add(d.Scale(mass[i] / (rr * rr * rr)))
		}
		row := fmt.Sprintf("%6.2f", r)
		for _, p := range []int{0, 2, 4, 6, 8} {
			e := multipole.NewExpansion(p, center)
			e.AddParticles(pos, mass)
			res := e.Evaluate(x)
			row += fmt.Sprintf(" %12.3e", res.Acc.Sub(ref).Norm()/ref.Norm())
		}
		a32, _ := core.Direct32Forces(pos, mass, x)
		row += fmt.Sprintf(" %12.3e", a32.Sub(ref).Norm()/ref.Norm())
		fmt.Println(row)
	}
}

func runAblation() {
	rng := rand.New(rand.NewSource(7))
	nSide := 20
	h := 1.0 / float64(nSide)
	var pos []vec.V3
	var mass []float64
	for i := 0; i < nSide; i++ {
		for j := 0; j < nSide; j++ {
			for k := 0; k < nSide; k++ {
				pos = append(pos, vec.V3{
					vec.PeriodicWrap((float64(i)+0.5)*h+0.02*h*rng.NormFloat64(), 1),
					vec.PeriodicWrap((float64(j)+0.5)*h+0.02*h*rng.NormFloat64(), 1),
					vec.PeriodicWrap((float64(k)+0.5)*h+0.02*h*rng.NormFloat64(), 1),
				})
				mass = append(mass, 1)
			}
		}
	}
	base := core.TreeConfig{Order: 4, ErrTol: 1e-5, Periodic: true, BoxSize: 1, WS: 1}
	with := base
	with.BackgroundSubtraction = true
	rBG, _ := core.NewTreeSolver(with).Forces(pos, mass)
	rNo, _ := core.NewTreeSolver(base).Forces(pos, mass)
	tBG := rBG.Counters.P2P + rBG.Counters.CellInteractions()
	tNo := rNo.Counters.P2P + rNo.Counters.CellInteractions()
	fmt.Printf("\nBackground-subtraction ablation (N=%d^3): %d vs %d interactions, factor %.2f\n",
		nSide, tBG, tNo, float64(tNo)/float64(tBG))
}
